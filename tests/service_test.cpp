//===- tests/service_test.cpp - Advisory daemon service tests -------------===//
//
// The SLO-as-a-service contract (DESIGN.md §13), exercised over the
// socketpair transport so every test is deterministic and in-process:
//
//  - serve-equals-oneshot: N concurrent clients race their uploads and
//    every GET_ADVICE answer is byte-identical to a monolithic
//    runIncrementalAdvice over the union of the ingested TUs;
//  - profile merging through the daemon matches a local
//    FeedbackFile::merge of the same payloads, byte-for-byte through
//    serializeFeedback;
//  - corrupt summaries and profiles are rejected atomically — the
//    state fingerprint does not move;
//  - backpressure: with the ingest queue full, the next ingest is
//    answered RetryAfter and NOT applied; honoring the backoff
//    succeeds (TestIngestHook makes the scenario deterministic);
//  - per-request timeout: a peer stalling mid-frame gets Error(Timeout)
//    and its connection closed; the daemon moves on;
//  - graceful drain: a Shutdown request lets the in-flight ingest
//    finish and flush its Ok before the daemon stops;
//  - the TCP path: connection cap answered with Error(Busy).
//
//===----------------------------------------------------------------------===//

#include "service/AdvisoryDaemon.h"
#include "service/ServiceClient.h"

#include "frontend/Frontend.h"
#include "observability/CounterRegistry.h"
#include "observability/Histogram.h"
#include "pipeline/Incremental.h"
#include "profile/FeedbackIO.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>

using namespace slo;
using namespace slo::service;

namespace {

// The three-TU program of incremental_test: `a` defines struct S, `b`
// uses it through externs, `c` is self-contained.
const char *TuA = R"(extern void print_i64(long v);
struct S { long x; long y; };
struct S* s_make() {
  struct S *p = (struct S*) malloc(4 * sizeof(struct S));
  for (long i = 0; i < 4; i++) { p[i].x = i; p[i].y = 2 * i; }
  return p;
}
long s_sum(struct S *p) {
  long t = 0;
  for (long i = 0; i < 4; i++) { t = t + p[i].x; }
  return t;
}
)";

const char *TuB = R"(extern void print_i64(long v);
extern struct S* s_make();
extern long s_sum(struct S *p);
extern long t_work();
int main() {
  struct S *p = s_make();
  print_i64(s_sum(p) + t_work());
  free(p);
  return 0;
}
)";

const char *TuC = R"(extern void print_i64(long v);
struct T { long a; long b; };
long t_work() {
  struct T *q = (struct T*) malloc(8 * sizeof(struct T));
  for (long i = 0; i < 8; i++) { q[i].a = i; q[i].b = i + 1; }
  long s = 0;
  for (long i = 0; i < 8; i++) { s = s + q[i].a; }
  free(q);
  return s;
}
)";

std::vector<TuSource> corpus() {
  return {{"a.minic", TuA}, {"b.minic", TuB}, {"c.minic", TuC}};
}

SummaryOptions testSummaryOptions() {
  SummaryOptions O;
  O.Lint = false; // Matches the slo_served default.
  return O;
}

/// The monolithic oracle: one-shot incremental advice, no cache, same
/// SummaryOptions as the daemon, TUs sorted by name (the daemon's
/// canonical order).
IncrementalResult oneshot(std::vector<TuSource> TUs) {
  std::sort(TUs.begin(), TUs.end(),
            [](const TuSource &A, const TuSource &B) { return A.Name < B.Name; });
  IncrementalOptions O;
  O.Summary = testSummaryOptions();
  O.Threads = 1;
  IncrementalResult R = runIncrementalAdvice(TUs, O);
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "?" : R.Errors.front());
  return R;
}

class ServiceTest : public ::testing::Test {
protected:
  std::unique_ptr<AdvisoryDaemon> makeDaemon(
      const std::function<void(DaemonConfig &)> &Tweak = nullptr) {
    DaemonConfig Config;
    Config.Summary = testSummaryOptions();
    Config.Counters = &Counters;
    if (Tweak)
      Tweak(Config);
    return std::make_unique<AdvisoryDaemon>(std::move(Config));
  }

  /// A socketpair connection served by \p D; returns the client side.
  std::unique_ptr<ServiceClient> connect(AdvisoryDaemon &D,
                                         int TimeoutMillis = 10000) {
    int Fds[2];
    if (!makeSocketPair(Fds))
      return nullptr;
    if (!D.adoptConnection(Fds[0])) {
      ::close(Fds[1]);
      return nullptr;
    }
    return std::make_unique<ServiceClient>(Fds[1], TimeoutMillis);
  }

  CounterRegistry Counters;
};

/// A serialized feedback payload for module (Name, Source): per-field
/// cache events plus an entry count, scaled by \p Scale so distinct
/// payloads merge into distinct sums.
std::string makeProfilePayload(const std::string &Name,
                               const std::string &Source,
                               const std::string &Record,
                               const std::string &EntryFn, uint64_t Scale,
                               FeedbackFile *AccumOut = nullptr,
                               const Module *AccumModule = nullptr) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  std::unique_ptr<Module> M = compileMiniC(Ctx, Name, Source, Diags);
  EXPECT_TRUE(M) << (Diags.empty() ? "?" : Diags.front());
  FeedbackFile FB;
  RecordType *Rec = Ctx.getTypes().lookupRecord(Record);
  EXPECT_NE(Rec, nullptr);
  FieldCacheStats &F0 = FB.fieldStats(Rec, 0);
  F0.Loads = 10 * Scale;
  F0.Stores = 2 * Scale;
  F0.Misses = Scale;
  F0.TotalLatency = 40.0 * static_cast<double>(Scale);
  FieldCacheStats &F1 = FB.fieldStats(Rec, 1);
  F1.Loads = 3 * Scale;
  FB.countEntry(M->lookupFunction(EntryFn), Scale);
  std::string Text = serializeFeedback(*M, FB);
  if (AccumOut && AccumModule) {
    // Re-key through the symbolic round trip against the accumulation
    // module, exactly like the daemon does.
    FeedbackFile Delta;
    FeedbackMatchResult MR =
        deserializeFeedback(*AccumModule, Text, Delta, nullptr);
    EXPECT_TRUE(MR.Ok) << MR.Error;
    AccumOut->merge(Delta);
  }
  return Text;
}

//===----------------------------------------------------------------------===//
// Basics
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, PingAnswersProtocolVersion) {
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  ServiceReply R = C->ping();
  ASSERT_TRUE(R.Transport);
  EXPECT_EQ(R.Op, Opcode::Pong);
  EXPECT_EQ(R.Version, ProtocolVersion);
}

TEST_F(ServiceTest, ServeEqualsOneshotSingleClient) {
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  for (const TuSource &Tu : corpus())
    ASSERT_TRUE(C->putSource(Tu.Name, Tu.Source).ok());
  IncrementalResult Expect = oneshot(corpus());

  ServiceReply Text = C->getAdvice(false);
  ASSERT_TRUE(Text.Transport);
  ASSERT_EQ(Text.Op, Opcode::Advice);
  EXPECT_EQ(Text.Text, Expect.AdviceText);

  ServiceReply Json = C->getAdvice(true);
  ASSERT_TRUE(Json.Transport);
  ASSERT_EQ(Json.Op, Opcode::Advice);
  EXPECT_EQ(Json.Text, Expect.AdviceJson);
}

TEST_F(ServiceTest, ServeEqualsOneshotOracleIsNonVacuous) {
  // The byte-compare must be able to fail: a daemon holding a strict
  // subset of the corpus cannot render the full-union oracle's bytes.
  // If this ever passes with EXPECT_EQ semantics, the oracle above is
  // comparing trivially equal things and proves nothing.
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  const std::vector<TuSource> TUs = corpus();
  for (size_t I = 0; I + 1 < TUs.size(); ++I) // All but the last TU.
    ASSERT_TRUE(C->putSource(TUs[I].Name, TUs[I].Source).ok());
  IncrementalResult Full = oneshot(TUs);
  ServiceReply Text = C->getAdvice(false);
  ASSERT_TRUE(Text.Transport);
  ASSERT_EQ(Text.Op, Opcode::Advice);
  EXPECT_NE(Text.Text, Full.AdviceText);
}

//===----------------------------------------------------------------------===//
// The tentpole oracle: N concurrent clients, byte-identical advice
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, ServeEqualsOneshotUnderConcurrentClients) {
  auto D = makeDaemon();
  const std::vector<TuSource> TUs = corpus();
  constexpr unsigned NumClients = 6;
  constexpr unsigned Rounds = 5;

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < NumClients; ++T) {
    Clients.emplace_back([&, T] {
      auto C = connect(*D);
      if (!C) {
        ++Failures;
        return;
      }
      // Every client repeatedly re-uploads every TU, racing the others;
      // upserts of identical content must be idempotent.
      for (unsigned R = 0; R < Rounds; ++R) {
        const TuSource &Tu = TUs[(T + R) % TUs.size()];
        ServiceReply PR =
            C->putWithRetry(Opcode::PutSource,
                            encodePutSource(Tu.Name, Tu.Source));
        if (!PR.ok())
          ++Failures;
      }
      for (const TuSource &Tu : TUs) {
        ServiceReply PR = C->putWithRetry(
            Opcode::PutSource, encodePutSource(Tu.Name, Tu.Source));
        if (!PR.ok())
          ++Failures;
      }
    });
  }
  for (auto &T : Clients)
    T.join();
  ASSERT_EQ(Failures.load(), 0u);

  IncrementalResult Expect = oneshot(TUs);
  // Several readers, all byte-identical to the monolithic run.
  for (unsigned I = 0; I < 3; ++I) {
    auto C = connect(*D);
    ASSERT_TRUE(C);
    ServiceReply Text = C->getAdvice(false);
    ASSERT_TRUE(Text.Transport);
    ASSERT_EQ(Text.Op, Opcode::Advice);
    EXPECT_EQ(Text.Text, Expect.AdviceText);
    ServiceReply Json = C->getAdvice(true);
    ASSERT_TRUE(Json.Transport);
    EXPECT_EQ(Json.Text, Expect.AdviceJson);
  }
}

TEST_F(ServiceTest, BatchIngestMatchesSequential) {
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  std::vector<std::pair<Opcode, std::string>> Items;
  for (const TuSource &Tu : corpus())
    Items.push_back({Opcode::PutSource, encodePutSource(Tu.Name, Tu.Source)});
  ServiceReply R = C->batch(Items);
  ASSERT_TRUE(R.Transport);
  ASSERT_EQ(R.Op, Opcode::BatchReply);
  ASSERT_EQ(R.Inner.size(), corpus().size());
  for (const ServiceReply &I : R.Inner)
    EXPECT_TRUE(I.ok());

  IncrementalResult Expect = oneshot(corpus());
  ServiceReply Text = C->getAdvice(false);
  ASSERT_TRUE(Text.Transport);
  EXPECT_EQ(Text.Text, Expect.AdviceText);
}

//===----------------------------------------------------------------------===//
// Profile merging under the daemon
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, ProfileMergeMatchesMonolithicMerge) {
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  ASSERT_TRUE(C->putSource("a.minic", TuA).ok());

  // The local accumulation the daemon must reproduce: both payloads
  // re-keyed against one module and merged (the PR 5 path).
  IRContext Ctx;
  std::vector<std::string> Diags;
  std::unique_ptr<Module> M = compileMiniC(Ctx, "a.minic", TuA, Diags);
  ASSERT_TRUE(M);
  FeedbackFile Expect;

  std::string P1 = makeProfilePayload("a.minic", TuA, "S", "s_make", 1,
                                      &Expect, M.get());
  std::string P2 = makeProfilePayload("a.minic", TuA, "S", "s_make", 7,
                                      &Expect, M.get());

  // Two clients race their payloads (merge is commutative, so the
  // result is order-independent).
  auto C2 = connect(*D);
  ASSERT_TRUE(C2);
  std::thread T1([&] { EXPECT_TRUE(C->putProfile("a.minic", P1).ok()); });
  std::thread T2([&] { EXPECT_TRUE(C2->putProfile("a.minic", P2).ok()); });
  T1.join();
  T2.join();

  ServiceReply R = C->getProfile("a.minic");
  ASSERT_TRUE(R.Transport);
  ASSERT_EQ(R.Op, Opcode::Profile);
  EXPECT_EQ(R.Text, serializeFeedback(*M, Expect));
}

//===----------------------------------------------------------------------===//
// Atomic rejection
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, CorruptPayloadsRejectedWithoutStateChange) {
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  ASSERT_TRUE(C->putSource("a.minic", TuA).ok());
  uint64_t Before = D->state().fingerprint();

  ServiceReply BadSummary = C->putSummary("slo-summary-v1 CORRUPT\n");
  ASSERT_TRUE(BadSummary.Transport);
  EXPECT_EQ(BadSummary.Op, Opcode::Error);
  EXPECT_EQ(BadSummary.Code, static_cast<uint16_t>(ErrCode::CorruptPayload));

  ServiceReply BadProfile =
      C->putProfile("a.minic", "slo-feedback-v2\ngarbage garbage\n");
  ASSERT_TRUE(BadProfile.Transport);
  EXPECT_EQ(BadProfile.Op, Opcode::Error);

  ServiceReply NoModule = C->putProfile("zzz.minic", "whatever");
  ASSERT_TRUE(NoModule.Transport);
  EXPECT_EQ(NoModule.Op, Opcode::Error);
  EXPECT_EQ(NoModule.Code, static_cast<uint16_t>(ErrCode::UnknownModule));

  ServiceReply BadSource = C->putSource("bad.minic", "struct {");
  ASSERT_TRUE(BadSource.Transport);
  EXPECT_EQ(BadSource.Op, Opcode::Error);
  EXPECT_EQ(BadSource.Code, static_cast<uint16_t>(ErrCode::CompileFailed));

  EXPECT_EQ(D->state().fingerprint(), Before);
  EXPECT_EQ(D->state().moduleCount(), 1u);
}

TEST_F(ServiceTest, SummaryUploadFeedsAdvice) {
  // Serialize a.minic's summary out of a one-shot run, upload it
  // summary-only, and the daemon's advice must match the oracle's.
  IncrementalResult R = oneshot(corpus());
  ASSERT_EQ(R.Summaries.size(), 3u);

  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  for (const ModuleSummary &S : R.Summaries)
    ASSERT_TRUE(C->putSummary(serializeModuleSummary(S)).ok());
  EXPECT_EQ(D->state().moduleCount(), 3u);

  ServiceReply Text = C->getAdvice(false);
  ASSERT_TRUE(Text.Transport);
  EXPECT_EQ(Text.Text, R.AdviceText);

  // Summary-only modules cannot accept profiles: no IR to match.
  ServiceReply P = C->putProfile("a.minic", "slo-feedback-v2\n");
  ASSERT_TRUE(P.Transport);
  EXPECT_EQ(P.Op, Opcode::Error);
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, IngestQueueFullAnswersRetryAfterAndDropsNothing) {
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Hold = true;
  std::atomic<unsigned> InHook{0};

  auto D = makeDaemon([&](DaemonConfig &Config) {
    Config.IngestQueueDepth = 1;
    Config.RetryAfterMillis = 5;
    Config.TestIngestHook = [&] {
      ++InHook;
      std::unique_lock<std::mutex> Lock(Mutex);
      Cv.wait(Lock, [&] { return !Hold; });
    };
  });

  auto C1 = connect(*D);
  auto C2 = connect(*D);
  ASSERT_TRUE(C1 && C2);

  // Client 1 occupies the only ingest slot (parked in the hook).
  std::thread T1([&] { EXPECT_TRUE(C1->putSource("a.minic", TuA).ok()); });
  while (InHook.load() == 0)
    std::this_thread::yield();

  // Client 2 must be shed with the configured backoff, NOT queued.
  ServiceReply R = C2->putSource("c.minic", TuC);
  ASSERT_TRUE(R.Transport);
  EXPECT_EQ(R.Op, Opcode::RetryAfter);
  EXPECT_EQ(R.RetryMillis, 5u);
  EXPECT_EQ(D->state().moduleCount(), 0u); // Not applied.
  EXPECT_GE(Counters.value("service.retry_after"), 1u);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Hold = false;
  }
  Cv.notify_all();
  T1.join();

  // Honoring the backoff succeeds once the slot frees up.
  ServiceReply R2 = C2->putWithRetry(Opcode::PutSource,
                                     encodePutSource("c.minic", TuC));
  EXPECT_TRUE(R2.ok());
  EXPECT_EQ(D->state().moduleCount(), 2u);
}

//===----------------------------------------------------------------------===//
// Timeouts
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, MidFrameStallGetsTimeoutAndClose) {
  auto D = makeDaemon([](DaemonConfig &Config) {
    Config.FrameTimeoutMillis = 100;
  });
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  ASSERT_TRUE(D->adoptConnection(Fds[0]));

  // Declare a 64-byte frame, deliver 3 bytes, stall.
  std::string Partial;
  appendU32(Partial, 64);
  Partial += "\x02xy";
  ASSERT_TRUE(writeAll(Fds[1], Partial, 1000));

  Frame F;
  ReadStatus S = readFrame(Fds[1], F, DefaultMaxFrameBytes, 5000, 5000);
  ASSERT_EQ(S, ReadStatus::Ok);
  EXPECT_EQ(F.Op, Opcode::Error);
  BodyReader B(F.Body);
  uint16_t Code = 0;
  ASSERT_TRUE(B.readU16(Code));
  EXPECT_EQ(Code, static_cast<uint16_t>(ErrCode::Timeout));
  EXPECT_GE(Counters.value("service.timeouts"), 1u);

  // The connection is closed after the error.
  EXPECT_EQ(readFrame(Fds[1], F, DefaultMaxFrameBytes, 5000, 5000),
            ReadStatus::Eof);
  ::close(Fds[1]);

  // The daemon moves on: a fresh connection still serves.
  auto C = connect(*D);
  ASSERT_TRUE(C);
  EXPECT_EQ(C->ping().Op, Opcode::Pong);
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, ShutdownDrainsInFlightIngest) {
  std::atomic<unsigned> InHook{0};
  auto D = makeDaemon([&](DaemonConfig &Config) {
    Config.TestIngestHook = [&] {
      if (InHook.fetch_add(1) == 0) // Stall only the first ingest.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    };
  });

  auto Ingest = connect(*D);
  auto Admin = connect(*D);
  ASSERT_TRUE(Ingest && Admin);

  // The in-flight ingest must complete and flush Ok even though the
  // drain starts while it runs.
  std::thread T([&] { EXPECT_TRUE(Ingest->putSource("a.minic", TuA).ok()); });
  while (InHook.load() == 0)
    std::this_thread::yield();

  ServiceReply R = Admin->shutdown();
  ASSERT_TRUE(R.Transport);
  EXPECT_EQ(R.Op, Opcode::Ok);
  T.join();

  while (!D->stopping())
    std::this_thread::yield();
  D->stop(); // Idempotent; joins the drain.
  EXPECT_EQ(D->state().moduleCount(), 1u);
  EXPECT_EQ(D->liveConnections(), 0u);

  // A stopped daemon adopts nothing.
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  EXPECT_FALSE(D->adoptConnection(Fds[0]));
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Request-scoped telemetry: trace propagation, metrics, flight recorder
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, TracedCallEchoesIdsAndReturnsStageSpans) {
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  for (const TuSource &Tu : corpus())
    ASSERT_TRUE(C->putSource(Tu.Name, Tu.Source).ok());

  std::string Body;
  Body.push_back(0); // GetAdvice, text form.
  ServiceReply R = C->tracedCall(Opcode::GetAdvice, Body, 0xDEADBEEFull,
                                 42);
  ASSERT_TRUE(R.Transport);
  EXPECT_EQ(R.Op, Opcode::Advice);
  ASSERT_TRUE(R.WasTraced);
  EXPECT_EQ(R.TraceId, 0xDEADBEEFull);
  EXPECT_EQ(R.RequestId, 42u);

  // The span tree covers the request's stages: the outer frame read plus
  // the advice path (state lock, merge, render). Starts are relative to
  // receipt and non-decreasing.
  ASSERT_FALSE(R.Spans.empty());
  std::vector<std::string> Names;
  for (const DaemonSpan &S : R.Spans)
    Names.push_back(S.Name);
  EXPECT_NE(std::find(Names.begin(), Names.end(), "read"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "lock-wait"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "merge"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "render"), Names.end());
  for (size_t I = 1; I < R.Spans.size(); ++I)
    EXPECT_GE(R.Spans[I].StartMicros, R.Spans[I - 1].StartMicros);
}

TEST_F(ServiceTest, TracedAdviceBytesMatchUntracedAndOneshot) {
  // The propagated trace context must never influence a single advice
  // byte: traced and untraced GetAdvice, under different trace ids, all
  // render the monolithic oracle's exact bytes.
  auto D = makeDaemon();
  auto C = connect(*D);
  ASSERT_TRUE(C);
  for (const TuSource &Tu : corpus())
    ASSERT_TRUE(C->putSource(Tu.Name, Tu.Source).ok());
  IncrementalResult Expect = oneshot(corpus());

  std::string Body;
  Body.push_back(0);
  ServiceReply Plain = C->getAdvice(false);
  ASSERT_TRUE(Plain.Transport);
  EXPECT_FALSE(Plain.WasTraced);
  EXPECT_EQ(Plain.Text, Expect.AdviceText);
  const uint64_t Ids[] = {1, 0, UINT64_MAX};
  for (uint64_t Id : Ids) {
    ServiceReply Traced = C->tracedCall(Opcode::GetAdvice, Body, Id, Id);
    ASSERT_TRUE(Traced.Transport);
    ASSERT_EQ(Traced.Op, Opcode::Advice);
    EXPECT_TRUE(Traced.WasTraced);
    EXPECT_EQ(Traced.Text, Expect.AdviceText);
  }
}

TEST_F(ServiceTest, TracedRejectsNestedBatchAndShutdown) {
  // Traced(Traced), Traced(Batch) and Traced(Shutdown) are malformed:
  // an Error reply, no drain started, no state moved.
  auto D = makeDaemon();
  {
    auto C = connect(*D);
    ASSERT_TRUE(C);
    ASSERT_TRUE(C->putSource("a.minic", TuA).ok());
  }
  uint64_t Before = D->state().fingerprint();

  TraceContext Ctx;
  Ctx.TraceId = 7;
  Ctx.RequestId = 7;
  const std::pair<Opcode, std::string> Banned[] = {
      {Opcode::Traced, encodeTraced(Ctx, Opcode::Ping, "")},
      {Opcode::Batch, std::string(4, '\0')},
      {Opcode::Shutdown, ""},
  };
  for (const auto &[Op, Body] : Banned) {
    auto C = connect(*D); // Each rejection closes its connection.
    ASSERT_TRUE(C);
    ServiceReply R = C->tracedCall(Op, Body, 7, 7);
    ASSERT_TRUE(R.Transport);
    EXPECT_EQ(R.Op, Opcode::Error);
    EXPECT_EQ(R.Code, static_cast<uint16_t>(ErrCode::Malformed));
  }
  EXPECT_FALSE(D->stopping()); // Traced(Shutdown) must not drain.
  EXPECT_EQ(D->state().fingerprint(), Before);

  auto C = connect(*D);
  ASSERT_TRUE(C);
  EXPECT_EQ(C->ping().Op, Opcode::Pong);
}

TEST_F(ServiceTest, GetMetricsRendersRegistriesAndRejectsUnknownFormat) {
  HistogramRegistry Hist;
  auto D = makeDaemon([&](DaemonConfig &Config) { Config.Hist = &Hist; });
  auto C = connect(*D);
  ASSERT_TRUE(C);
  ASSERT_TRUE(C->putSource("a.minic", TuA).ok());

  ServiceReply Json = C->getMetrics(0);
  ASSERT_TRUE(Json.Transport);
  ASSERT_EQ(Json.Op, Opcode::Metrics);
  EXPECT_NE(Json.Text.find("\"counters\": "), std::string::npos);
  EXPECT_NE(Json.Text.find("\"service.frames\": "), std::string::npos);
  EXPECT_NE(Json.Text.find("\"histograms\": "), std::string::npos);
  EXPECT_NE(Json.Text.find("\"service.latency.PutSource\": {\"count\": 1"),
            std::string::npos);

  ServiceReply Prom = C->getMetrics(1);
  ASSERT_TRUE(Prom.Transport);
  ASSERT_EQ(Prom.Op, Opcode::Metrics);
  EXPECT_NE(Prom.Text.find("# TYPE slo_service_frames counter\n"),
            std::string::npos);
  EXPECT_NE(
      Prom.Text.find("# TYPE slo_service_latency_PutSource histogram\n"),
      std::string::npos);
  EXPECT_NE(Prom.Text.find("slo_service_latency_PutSource_count 1\n"),
            std::string::npos);

  ServiceReply Bad = C->getMetrics(2);
  ASSERT_TRUE(Bad.Transport);
  EXPECT_EQ(Bad.Op, Opcode::Error);
  EXPECT_EQ(Bad.Code, static_cast<uint16_t>(ErrCode::Malformed));
}

TEST_F(ServiceTest, FlightRecorderDumpsOnMidFrameTimeout) {
  // The always-on ring must surface the connection's last frames when
  // the peer stalls: one dump, reason "timeout", valid JSON shape.
  std::mutex DumpMutex;
  std::vector<std::string> Dumps;
  auto D = makeDaemon([&](DaemonConfig &Config) {
    Config.FrameTimeoutMillis = 100;
    Config.FlightDumpSink = [&](const std::string &Json) {
      std::lock_guard<std::mutex> Lock(DumpMutex);
      Dumps.push_back(Json);
    };
  });

  // A healthy request first, so the ring has traffic to replay.
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  ASSERT_TRUE(D->adoptConnection(Fds[0]));
  {
    ServiceClient C(Fds[1]); // Owns and closes Fds[1] when done.
    ASSERT_EQ(C.ping().Op, Opcode::Pong);

    // Declare a 64-byte frame, deliver 3 bytes, stall past the timeout.
    std::string Partial;
    appendU32(Partial, 64);
    Partial += "\x02xy";
    ASSERT_TRUE(writeAll(C.fd(), Partial, 1000));
    Frame F;
    ASSERT_EQ(readFrame(C.fd(), F, DefaultMaxFrameBytes, 5000, 5000),
              ReadStatus::Ok);
    EXPECT_EQ(F.Op, Opcode::Error);
  }
  while (D->liveConnections() != 0)
    std::this_thread::yield();

  std::lock_guard<std::mutex> Lock(DumpMutex);
  ASSERT_EQ(Dumps.size(), 1u);
  const std::string &Dump = Dumps.front();
  EXPECT_NE(Dump.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(Dump.find("\"reason\": \"timeout\""), std::string::npos);
  EXPECT_NE(Dump.find("\"frame-in\""), std::string::npos); // The Ping.
  EXPECT_NE(Dump.find("\"reply-out\""), std::string::npos); // The Pong.
}

TEST_F(ServiceTest, FlightRecorderDepthZeroNeverDumps) {
  // Depth 0 disables the ring: the same stall produces no dump (and the
  // request path reads no clock — the PR 3 off-is-free contract).
  std::atomic<unsigned> DumpCount{0};
  auto D = makeDaemon([&](DaemonConfig &Config) {
    Config.FrameTimeoutMillis = 100;
    Config.FlightRecorderDepth = 0;
    Config.FlightDumpSink = [&](const std::string &) { ++DumpCount; };
  });
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  ASSERT_TRUE(D->adoptConnection(Fds[0]));
  std::string Partial;
  appendU32(Partial, 64);
  Partial += "\x02xy";
  ASSERT_TRUE(writeAll(Fds[1], Partial, 1000));
  Frame F;
  ASSERT_EQ(readFrame(Fds[1], F, DefaultMaxFrameBytes, 5000, 5000),
            ReadStatus::Ok);
  EXPECT_EQ(F.Op, Opcode::Error);
  ::close(Fds[1]);
  while (D->liveConnections() != 0)
    std::this_thread::yield();
  EXPECT_EQ(DumpCount.load(), 0u);
}

//===----------------------------------------------------------------------===//
// TCP transport
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, TcpConnectionCapAnswersBusy) {
  auto D = makeDaemon([](DaemonConfig &Config) {
    Config.MaxConnections = 1;
  });
  ASSERT_TRUE(D->listenTcp(0));
  ASSERT_NE(D->port(), 0);

  int Fd1 = connectTcpLocalhost(D->port());
  ASSERT_GE(Fd1, 0);
  ServiceClient C1(Fd1);
  ASSERT_EQ(C1.ping().Op, Opcode::Pong); // Guarantees Live >= 1.

  int Fd2 = connectTcpLocalhost(D->port());
  ASSERT_GE(Fd2, 0);
  Frame F;
  ASSERT_EQ(readFrame(Fd2, F, DefaultMaxFrameBytes, 5000, 5000),
            ReadStatus::Ok);
  EXPECT_EQ(F.Op, Opcode::Error);
  BodyReader B(F.Body);
  uint16_t Code = 0;
  ASSERT_TRUE(B.readU16(Code));
  EXPECT_EQ(Code, static_cast<uint16_t>(ErrCode::Busy));
  ::close(Fd2);

  // The capped daemon still serves its live connection.
  EXPECT_EQ(C1.ping().Op, Opcode::Pong);
  C1.close();
  D->stop();
}

} // namespace
