//===- tests/Oracles.h - Shared differential/determinism oracles ----------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// gtest-facing wrappers over the fuzz subsystem's differential harness,
// shared by the hand-written property tests and the fuzzer tests so the
// "pipeline round-trip preserves behaviour" and "repeated runs are
// identical" checks exist exactly once.
//
//===----------------------------------------------------------------------===//

#ifndef SLO_TESTS_ORACLES_H
#define SLO_TESTS_ORACLES_H

#include "frontend/Frontend.h"
#include "fuzz/DifferentialHarness.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

namespace slo {
namespace oracles {

/// Renders a differential outcome as a gtest assertion: success when all
/// four oracles passed, the failing oracle and detail otherwise.
inline ::testing::AssertionResult passes(const DifferentialOutcome &O) {
  if (O.Passed)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "oracle '" << fuzzOracleName(O.Oracle) << "' failed: " << O.Detail;
}

/// The pipeline round-trip oracle: compile twice, transform one copy,
/// require identical observable behaviour plus the verifier, legality,
/// and attribution invariants. \p Out (optional) receives the outcome
/// for extra assertions (e.g. that transforms actually fired).
inline ::testing::AssertionResult
transformEquivalent(const std::string &Name, const std::string &Source,
                    DifferentialOutcome *Out = nullptr,
                    const DifferentialOptions &Opts = DifferentialOptions()) {
  DifferentialOutcome O = runDifferential(Name, Source, Opts);
  if (Out)
    *Out = O;
  return passes(O);
}

/// The determinism oracle: one module, \p Times runs, every observable
/// and every simulation statistic identical.
inline ::testing::AssertionResult
deterministicRuns(const std::string &Name, const std::string &Source,
                  unsigned Times = 2) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, Name, {Source}, Diags);
  if (!M)
    return ::testing::AssertionFailure()
           << "compile failed: " << (Diags.empty() ? "?" : Diags.front());
  RunResult First = runProgram(*M);
  if (First.Trapped)
    return ::testing::AssertionFailure() << "trapped: " << First.TrapReason;
  for (unsigned I = 1; I < Times; ++I) {
    RunResult R = runProgram(*M);
    if (R.ExitCode != First.ExitCode)
      return ::testing::AssertionFailure() << "exit code diverged on run " << I;
    if (R.Instructions != First.Instructions || R.Cycles != First.Cycles)
      return ::testing::AssertionFailure()
             << "instruction/cycle counts diverged on run " << I;
    if (R.PrintedInts != First.PrintedInts ||
        R.PrintedFloats != First.PrintedFloats)
      return ::testing::AssertionFailure() << "output diverged on run " << I;
    if (R.L1.Misses != First.L1.Misses ||
        R.FirstLevelMisses != First.FirstLevelMisses)
      return ::testing::AssertionFailure() << "miss counts diverged on run "
                                           << I;
    if (R.HeapLiveAllocs != First.HeapLiveAllocs ||
        R.HeapLiveBytes != First.HeapLiveBytes)
      return ::testing::AssertionFailure() << "leak census diverged on run "
                                           << I;
  }
  return ::testing::AssertionSuccess();
}

} // namespace oracles
} // namespace slo

#endif // SLO_TESTS_ORACLES_H
