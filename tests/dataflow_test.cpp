//===- tests/dataflow_test.cpp - Generic dataflow solver unit tests -------===//

#include "analysis/Dataflow.h"
#include "frontend/Frontend.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace slo;

namespace {

struct Compiled {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

Compiled compile(const char *Src) {
  Compiled C;
  C.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  C.M = compileMiniC(*C.Ctx, "t", Src, Diags);
  EXPECT_TRUE(C.M) << (Diags.empty() ? "?" : Diags[0]);
  return C;
}

const Function *fn(const Compiled &C, const std::string &Name) {
  for (const auto &F : C.M->functions())
    if (F->getName() == Name)
      return F.get();
  ADD_FAILURE() << "no function " << Name;
  return nullptr;
}

/// A may-analysis over the opcodes on paths through the program: the
/// flow-union of opcode sets. Run forward it answers "which opcodes can
/// execute before this block"; run backward, "which can execute after".
struct OpcodeSetClient {
  using State = std::set<unsigned>;
  State boundary() const { return {}; }
  void join(State &Dst, const State &Src) const {
    Dst.insert(Src.begin(), Src.end());
  }
  void transfer(const Instruction *I, State &S) const {
    S.insert(static_cast<unsigned>(I->getOpcode()));
  }
  void edge(const BasicBlock *, const BasicBlock *, State &) const {}
};

/// A client whose only effect is its edge() hook: each state is the set
/// of edge labels refined into it, so the test can assert that the two
/// successors of a conditional branch receive different flow-in.
struct EdgeLabelClient {
  using State = std::set<std::string>;
  State boundary() const { return {}; }
  void join(State &Dst, const State &Src) const {
    Dst.insert(Src.begin(), Src.end());
  }
  void transfer(const Instruction *, State &) const {}
  void edge(const BasicBlock *From, const BasicBlock *To, State &S) const {
    S.insert(From->getName() + "->" + To->getName());
  }
};

const char *kBranchy = R"(
  extern void print_i64(long v);
  long pick(long n) {
    long r = 0;
    if (n > 3) {
      r = n * 2;
    } else {
      r = n + 7;
    }
    print_i64(r);
    return r;
  }
  int main() {
    pick(5);
    return 0;
  }
)";

TEST(DataflowTest, ForwardReachesFixpointAndOrdersStates) {
  Compiled C = compile(kBranchy);
  const Function *F = fn(C, "pick");
  ASSERT_NE(F, nullptr);
  DominatorTree DT(*F);
  OpcodeSetClient Client;
  DataflowSolver<OpcodeSetClient> Solver(*F, DT, Client,
                                         DataflowDirection::Forward);
  DataflowStats Stats = Solver.run();
  EXPECT_TRUE(Stats.Converged);
  EXPECT_GT(Stats.BlockVisits, 0u);

  // Entry flow-in is the boundary state; its exit contains what it ran.
  const auto *Entry = Solver.get(F->getEntry());
  ASSERT_NE(Entry, nullptr);
  EXPECT_TRUE(Entry->Entry.empty());
  EXPECT_TRUE(Entry->Exit.count(Instruction::OpAlloca));

  // Every reachable block was solved (unreachable ones stay null), and
  // the reachable return block has seen the multiply (then-branch), the
  // add (else-branch), and the call.
  for (const auto &BB : F->blocks()) {
    const auto *BS = Solver.get(BB.get());
    if (!BS)
      continue; // unreachable (e.g. the dead block after a return)
    if (isExitBlock(*BB)) {
      EXPECT_TRUE(BS->Exit.count(Instruction::OpMul));
      EXPECT_TRUE(BS->Exit.count(Instruction::OpAdd));
      EXPECT_TRUE(BS->Exit.count(Instruction::OpCall));
      EXPECT_TRUE(BS->Exit.count(Instruction::OpRet));
    }
  }
}

TEST(DataflowTest, BackwardMirrorsForward) {
  Compiled C = compile(kBranchy);
  const Function *F = fn(C, "pick");
  ASSERT_NE(F, nullptr);
  DominatorTree DT(*F);
  OpcodeSetClient Client;
  DataflowSolver<OpcodeSetClient> Solver(*F, DT, Client,
                                         DataflowDirection::Backward);
  DataflowStats Stats = Solver.run();
  EXPECT_TRUE(Stats.Converged);

  // Program-order semantics: the entry block's Entry state is the full
  // backward solution — everything that can execute after (= from) the
  // top of the function, i.e. both branch bodies and the return.
  const auto *Entry = Solver.get(F->getEntry());
  ASSERT_NE(Entry, nullptr);
  EXPECT_TRUE(Entry->Entry.count(Instruction::OpMul));
  EXPECT_TRUE(Entry->Entry.count(Instruction::OpAdd));
  EXPECT_TRUE(Entry->Entry.count(Instruction::OpRet));
  // The backward boundary: an exit block's flow-in (program-order Exit)
  // is empty; nothing executes after the return.
  for (const auto &BB : F->blocks())
    if (isExitBlock(*BB)) {
      const auto *BS = Solver.get(BB.get());
      if (!BS)
        continue; // unreachable exit block
      EXPECT_TRUE(BS->Exit.empty());
    }
}

TEST(DataflowTest, EdgeHookRefinesPerSuccessor) {
  Compiled C = compile(kBranchy);
  const Function *F = fn(C, "pick");
  ASSERT_NE(F, nullptr);
  DominatorTree DT(*F);
  EdgeLabelClient Client;
  DataflowSolver<EdgeLabelClient> Solver(*F, DT, Client,
                                         DataflowDirection::Forward);
  ASSERT_TRUE(Solver.run().Converged);

  const BasicBlock *Branch = nullptr;
  const CondBrInst *CB = nullptr;
  for (const auto &BB : F->blocks())
    if (const auto *Cand = dyn_cast<CondBrInst>(BB->getTerminator()))
      if (Cand->getTrueTarget() != Cand->getFalseTarget()) {
        Branch = BB.get();
        CB = Cand;
        break;
      }
  ASSERT_NE(CB, nullptr);
  const BasicBlock *T = CB->getTrueTarget();
  const BasicBlock *E = CB->getFalseTarget();
  std::string TrueLabel = Branch->getName() + "->" + T->getName();
  std::string FalseLabel = Branch->getName() + "->" + E->getName();
  const auto *TS = Solver.get(T);
  const auto *ES = Solver.get(E);
  ASSERT_NE(TS, nullptr);
  ASSERT_NE(ES, nullptr);
  // Each successor sees exactly its own edge refinement.
  EXPECT_TRUE(TS->Entry.count(TrueLabel));
  EXPECT_FALSE(TS->Entry.count(FalseLabel));
  EXPECT_TRUE(ES->Entry.count(FalseLabel));
  EXPECT_FALSE(ES->Entry.count(TrueLabel));
}

TEST(DataflowTest, LoopConvergesAndBudgetBails) {
  Compiled C = compile(R"(
    long sum(long n) {
      long s = 0;
      for (long i = 0; i < n; i++) {
        s = s + i;
      }
      return s;
    }
    int main() { return (int) sum(4); }
  )");
  const Function *F = fn(C, "sum");
  ASSERT_NE(F, nullptr);
  DominatorTree DT(*F);
  OpcodeSetClient Client;
  {
    DataflowSolver<OpcodeSetClient> Solver(*F, DT, Client,
                                           DataflowDirection::Forward);
    DataflowStats Stats = Solver.run();
    EXPECT_TRUE(Stats.Converged);
    // The loop forces at least one block to be revisited.
    EXPECT_GT(Stats.BlockVisits, static_cast<unsigned>(F->blocks().size()));
  }
  {
    DataflowSolver<OpcodeSetClient> Solver(*F, DT, Client,
                                           DataflowDirection::Forward);
    DataflowStats Stats = Solver.run(/*VisitBudget=*/1);
    EXPECT_FALSE(Stats.Converged);
  }
}

TEST(DataflowTest, DirectionNames) {
  EXPECT_STREQ(dataflowDirectionName(DataflowDirection::Forward), "forward");
  EXPECT_STREQ(dataflowDirectionName(DataflowDirection::Backward), "backward");
}

} // namespace
