//===- tests/sampledpmu_test.cpp - Sampled PMU emulation tests ------------===//
//
// Pins the two invariants the sampled collection layer is built around:
//
//  * Identity: at period 1 with no skid the Caliper stand-in reproduces
//    the exact per-field statistics bit for bit, on every workload. The
//    sampled path is the exact path plus sampling — never a different
//    accounting.
//  * Determinism: a sampled profile is a pure function of
//    (module, params, seed). Collecting under a thread pool produces
//    byte-identical serialized profiles to collecting serially.
//
// Plus unit coverage of the PMU mechanics themselves (jitter, skid,
// DLAT, scaling, telemetry) on synthetic event streams.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "observability/CounterRegistry.h"
#include "observability/SampledPmu.h"
#include "profile/FeedbackIO.h"
#include "runtime/Interpreter.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct Built {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Built buildWorkload(const Workload &W) {
  Built B;
  B.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  B.M = compileProgram(*B.Ctx, W.Name, W.Sources, Diags);
  EXPECT_TRUE(B.M) << W.Name << ": " << (Diags.empty() ? "?" : Diags[0]);
  return B;
}

/// Collects one profile for \p W's training input and returns it
/// serialized. With \p Pmu null the collection is exact.
static std::string collectProfile(const Built &B, const Workload &W,
                                  SampledPmu *Pmu) {
  FeedbackFile FB;
  RunOptions O;
  O.IntParams = W.TrainParams;
  O.Profile = &FB;
  O.Pmu = Pmu;
  RunResult R = runProgram(*B.M, std::move(O));
  EXPECT_FALSE(R.Trapped) << W.Name << ": " << R.TrapReason;
  return serializeFeedback(*B.M, FB);
}

//===----------------------------------------------------------------------===//
// Identity invariant
//===----------------------------------------------------------------------===//

class SampledPmuWorkloads : public ::testing::TestWithParam<size_t> {};

TEST_P(SampledPmuWorkloads, PeriodOneReproducesExactProfileBitForBit) {
  const Workload &W = allWorkloads()[GetParam()];
  Built B = buildWorkload(W);
  ASSERT_TRUE(B.M);

  std::string Exact = collectProfile(B, W, nullptr);

  SampledPmuConfig Cfg;
  Cfg.Period = 1;
  Cfg.Skid = 0;
  Cfg.Jitter = true; // Jitter degenerates to gap 1 at period 1.
  SampledPmu Pmu(Cfg);
  std::string Sampled = collectProfile(B, W, &Pmu);

  // Byte equality covers edge counts, field loads/stores/misses, and the
  // double latency totals (same accumulation order, scaled by exactly 1).
  EXPECT_EQ(Exact, Sampled) << W.Name;
  // Every event was sampled.
  EXPECT_EQ(Pmu.accessSamples(), Pmu.eventsSeen()) << W.Name;
  EXPECT_EQ(Pmu.missSamples(), Pmu.missEventsSeen()) << W.Name;
  EXPECT_EQ(Pmu.skidDisplaced(), 0u) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SampledPmuWorkloads,
                         ::testing::Range<size_t>(0, 12),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string N = allWorkloads()[Info.param].Name;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// Determinism invariant
//===----------------------------------------------------------------------===//

TEST(SampledPmuDeterminism, ThreadPoolCollectionIsByteIdenticalToSerial) {
  // The three hand-written kernels plus one generated workload: enough
  // to catch any shared mutable state without running the whole table.
  const char *Names[] = {"181.mcf", "179.art", "moldyn", "povray"};
  std::vector<const Workload *> Ws;
  for (const char *N : Names) {
    const Workload *W = findWorkload(N);
    ASSERT_NE(W, nullptr) << N;
    Ws.push_back(W);
  }

  auto CollectSampled = [](const Workload &W) {
    Built B = buildWorkload(W);
    SampledPmuConfig Cfg;
    Cfg.Period = 61;
    Cfg.Skid = 2;
    Cfg.Seed = 0xFEEDBEEF;
    SampledPmu Pmu(Cfg);
    return collectProfile(B, W, &Pmu);
  };

  std::vector<std::string> Serial(Ws.size());
  for (size_t I = 0; I < Ws.size(); ++I)
    Serial[I] = CollectSampled(*Ws[I]);

  for (unsigned Round = 0; Round < 2; ++Round) {
    std::vector<std::string> Pooled(Ws.size());
    ThreadPool Pool(4);
    for (size_t I = 0; I < Ws.size(); ++I)
      Pool.enqueue(
          [&Pooled, &Ws, &CollectSampled, I] { Pooled[I] = CollectSampled(*Ws[I]); });
    Pool.wait();
    for (size_t I = 0; I < Ws.size(); ++I)
      EXPECT_EQ(Serial[I], Pooled[I])
          << Ws[I]->Name << " (round " << Round << ")";
  }
}

TEST(SampledPmuDeterminism, SeedChangesTheSampleStream) {
  const Workload *W = findWorkload("181.mcf");
  ASSERT_NE(W, nullptr);
  Built B = buildWorkload(*W);

  auto Collect = [&](uint64_t Seed) {
    SampledPmuConfig Cfg;
    Cfg.Period = 257;
    Cfg.Seed = Seed;
    SampledPmu Pmu(Cfg);
    return collectProfile(B, *W, &Pmu);
  };
  std::string A = Collect(1);
  std::string A2 = Collect(1);
  std::string C = Collect(2);
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, C) << "different seeds should jitter differently";
}

//===----------------------------------------------------------------------===//
// PMU mechanics on synthetic event streams
//===----------------------------------------------------------------------===//

TEST(SampledPmuUnit, RegisterSiteInternsAndPeriodZeroClamps) {
  SampledPmuConfig Cfg;
  Cfg.Period = 0;
  SampledPmu Pmu(Cfg);
  EXPECT_EQ(Pmu.config().Period, 1u);

  int KeyA = 0, KeyB = 0;
  SampledPmu::SiteId A0 = Pmu.registerSite(&KeyA, 0);
  SampledPmu::SiteId A1 = Pmu.registerSite(&KeyA, 1);
  SampledPmu::SiteId B0 = Pmu.registerSite(&KeyB, 0);
  EXPECT_NE(A0, SampledPmu::UntypedSite);
  EXPECT_NE(A0, A1);
  EXPECT_NE(A0, B0);
  EXPECT_EQ(Pmu.registerSite(&KeyA, 0), A0);
}

TEST(SampledPmuUnit, EstimatesScaleByPeriod) {
  SampledPmuConfig Cfg;
  Cfg.Period = 10;
  Cfg.Jitter = false; // Exactly every 10th event.
  SampledPmu Pmu(Cfg);
  int Key = 0;
  SampledPmu::SiteId S = Pmu.registerSite(&Key, 0);
  for (unsigned I = 0; I < 1000; ++I)
    Pmu.observeAccess(S, /*IsStore=*/false, /*FirstLevelMiss=*/true,
                      /*Latency=*/7);
  Pmu.finishRun();
  ASSERT_EQ(Pmu.estimates().size(), 1u);
  const SampledPmu::SiteEstimate &E = Pmu.estimates()[0];
  EXPECT_EQ(E.Loads, 1000u);  // 100 samples * period 10.
  EXPECT_EQ(E.Misses, 1000u); // Every access missed.
  EXPECT_DOUBLE_EQ(E.TotalLatency, 7000.0);
  EXPECT_EQ(E.Stores, 0u);
  EXPECT_EQ(Pmu.accessSamples(), 100u);
}

TEST(SampledPmuUnit, JitteredSamplingTracksTrafficSplit) {
  // 90/10 split of misses across two sites; a jittered period-16
  // collection must preserve the ranking and land near the true counts.
  SampledPmuConfig Cfg;
  Cfg.Period = 16;
  SampledPmu Pmu(Cfg);
  int KeyA = 0, KeyB = 0;
  SampledPmu::SiteId A = Pmu.registerSite(&KeyA, 0);
  SampledPmu::SiteId B = Pmu.registerSite(&KeyB, 0);
  for (unsigned I = 0; I < 100000; ++I) {
    SampledPmu::SiteId S = (I % 10 == 9) ? B : A;
    Pmu.observeAccess(S, /*IsStore=*/false, /*FirstLevelMiss=*/true, 5);
  }
  Pmu.finishRun();
  uint64_t MissA = 0, MissB = 0;
  for (const auto &E : Pmu.estimates())
    (E.RecordKey == &KeyA ? MissA : MissB) = E.Misses;
  EXPECT_GT(MissA, MissB);
  EXPECT_NEAR(static_cast<double>(MissA), 90000.0, 9000.0);
  EXPECT_NEAR(static_cast<double>(MissB), 10000.0, 3000.0);
}

TEST(SampledPmuUnit, SkidDisplacesMissSamplesToLaterSites) {
  // Misses happen only at site A, but every following access is at
  // site B: with skid, some miss samples must land on B — the
  // Itanium-style misattribution the quality harness measures.
  SampledPmuConfig Cfg;
  Cfg.Period = 4;
  Cfg.Skid = 3;
  SampledPmu Pmu(Cfg);
  int KeyA = 0, KeyB = 0;
  SampledPmu::SiteId A = Pmu.registerSite(&KeyA, 0);
  SampledPmu::SiteId B = Pmu.registerSite(&KeyB, 0);
  for (unsigned I = 0; I < 10000; ++I) {
    Pmu.observeAccess(A, false, /*FirstLevelMiss=*/true, 5);
    for (unsigned J = 0; J < 4; ++J)
      Pmu.observeAccess(B, false, /*FirstLevelMiss=*/false, 1);
  }
  Pmu.finishRun();
  EXPECT_GT(Pmu.skidDisplaced(), 0u);
  uint64_t MissB = 0;
  for (const auto &E : Pmu.estimates())
    if (E.RecordKey == &KeyB)
      MissB = E.Misses;
  EXPECT_GT(MissB, 0u) << "displaced samples should credit site B";

  // With skid 0 the same stream attributes every miss sample to A.
  SampledPmuConfig Cfg0 = Cfg;
  Cfg0.Skid = 0;
  SampledPmu Pmu0(Cfg0);
  SampledPmu::SiteId A0 = Pmu0.registerSite(&KeyA, 0);
  SampledPmu::SiteId B0 = Pmu0.registerSite(&KeyB, 0);
  for (unsigned I = 0; I < 10000; ++I) {
    Pmu0.observeAccess(A0, false, true, 5);
    for (unsigned J = 0; J < 4; ++J)
      Pmu0.observeAccess(B0, false, false, 1);
  }
  Pmu0.finishRun();
  EXPECT_EQ(Pmu0.skidDisplaced(), 0u);
  for (const auto &E : Pmu0.estimates())
    if (E.RecordKey == &KeyB) {
      EXPECT_EQ(E.Misses, 0u);
    }
}

TEST(SampledPmuUnit, SkidOntoUntypedTrafficDropsTheSample) {
  // Misses at a typed site, followed only by untyped traffic: skidded
  // samples land outside any field and are dropped (and counted) —
  // profile mass a real PMU loses the same way.
  SampledPmuConfig Cfg;
  Cfg.Period = 2;
  Cfg.Skid = 2;
  SampledPmu Pmu(Cfg);
  int Key = 0;
  SampledPmu::SiteId S = Pmu.registerSite(&Key, 0);
  for (unsigned I = 0; I < 4000; ++I) {
    Pmu.observeAccess(S, false, /*FirstLevelMiss=*/true, 5);
    for (unsigned J = 0; J < 3; ++J)
      Pmu.observeAccess(SampledPmu::UntypedSite, true, false, 1);
  }
  Pmu.finishRun();
  EXPECT_GT(Pmu.samplesDroppedUntyped(), 0u);
}

TEST(SampledPmuUnit, DlatModeCapturesOnlyThresholdLatencies) {
  SampledPmuConfig Cfg;
  Cfg.Period = 1;
  Cfg.LatencyThreshold = 50;
  SampledPmu Pmu(Cfg);
  int Key = 0;
  SampledPmu::SiteId S = Pmu.registerSite(&Key, 0);
  // 100 short loads (latency 3) and 10 long ones (latency 200).
  for (unsigned I = 0; I < 100; ++I)
    Pmu.observeAccess(S, false, false, 3);
  for (unsigned I = 0; I < 10; ++I)
    Pmu.observeAccess(S, false, true, 200);
  Pmu.finishRun();
  ASSERT_EQ(Pmu.estimates().size(), 1u);
  const SampledPmu::SiteEstimate &E = Pmu.estimates()[0];
  // Latency comes from the DLAT counter alone: the short loads' cycles
  // are not in the total.
  EXPECT_DOUBLE_EQ(E.TotalLatency, 2000.0);
  EXPECT_EQ(E.Loads, 110u);
  EXPECT_EQ(Pmu.latencySamples(), 10u);
}

TEST(SampledPmuUnit, EndOfRunDropsInFlightSampleAndPublishesTelemetry) {
  SampledPmuConfig Cfg;
  Cfg.Period = 1;
  Cfg.Skid = 8;
  SampledPmu Pmu(Cfg);
  int Key = 0;
  SampledPmu::SiteId S = Pmu.registerSite(&Key, 0);
  // One miss at the very end: its sample may still be in flight.
  for (unsigned I = 0; I < 10; ++I)
    Pmu.observeAccess(S, false, false, 1);
  Pmu.observeAccess(S, false, true, 90);
  Pmu.finishRun();
  Pmu.finishRun(); // Idempotent.
  EXPECT_LE(Pmu.samplesDroppedEndOfRun(), 1u);
  EXPECT_EQ(Pmu.missSamples(), 1u);

  CounterRegistry Counters;
  Pmu.publishCounters(Counters);
  auto Snap = Counters.snapshot();
  EXPECT_EQ(Snap.at("profile.samples_events"), 11u);
  EXPECT_EQ(Snap.at("profile.samples_miss_events"), 1u);
  EXPECT_EQ(Snap.at("profile.samples_period"), 1u);
}

} // namespace
