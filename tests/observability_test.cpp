//===- tests/observability_test.cpp - Tracer/counters/attribution ---------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// Covers the observability layer's three contracts:
//  - the miss-attribution partition invariant: site misses sum exactly
//    to the simulator's first-level miss event count, on every workload;
//  - CounterRegistry merges deterministically under the ThreadPool;
//  - attaching any hook never perturbs the simulated execution.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "observability/CounterRegistry.h"
#include "observability/MissAttribution.h"
#include "observability/Tracer.h"
#include "runtime/Interpreter.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct Built {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Built buildWorkload(const Workload &W) {
  Built B;
  B.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  B.M = compileProgram(*B.Ctx, W.Name, W.Sources, Diags);
  EXPECT_TRUE(B.M) << W.Name << ": " << (Diags.empty() ? "?" : Diags[0]);
  return B;
}

//===----------------------------------------------------------------------===//
// Miss attribution
//===----------------------------------------------------------------------===//

class AttributionSuite : public ::testing::TestWithParam<size_t> {};

// The acceptance invariant: per-field (plus pseudo-site) miss counts
// partition the simulator's first-level miss event total exactly.
TEST_P(AttributionSuite, SiteMissesPartitionSimulatorTotal) {
  const Workload &W = allWorkloads()[GetParam()];
  Built B = buildWorkload(W);
  ASSERT_TRUE(B.M);

  MissAttribution Sink;
  RunOptions O;
  O.IntParams = W.TrainParams;
  O.Cache = CacheConfig::scaledItanium();
  O.Attribution = &Sink;
  RunResult R = runProgram(*B.M, std::move(O));
  ASSERT_FALSE(R.Trapped) << W.Name << ": " << R.TrapReason;

  EXPECT_EQ(Sink.totalMisses(), R.FirstLevelMisses) << W.Name;

  uint64_t SiteSum = 0, PcSum = 0;
  for (const AttributedSiteStats &S : Sink.collect()) {
    SiteSum += S.Misses;
    for (const auto &[Label, N] : S.MissesByPc)
      PcSum += N;
  }
  EXPECT_EQ(SiteSum, R.FirstLevelMisses) << W.Name;
  EXPECT_EQ(PcSum, R.FirstLevelMisses) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, AttributionSuite,
                         ::testing::Range<size_t>(0, allWorkloads().size()),
                         [](const ::testing::TestParamInfo<size_t> &I) {
                           std::string N = allWorkloads()[I.param].Name;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(MissAttributionTest, PseudoSitesAndFieldsAreDistinct) {
  MissAttribution Sink;
  MissAttribution::SiteId S1 = Sink.registerField("node", "next");
  MissAttribution::SiteId S2 = Sink.registerField("node", "key");
  EXPECT_NE(S1, S2);
  EXPECT_EQ(Sink.registerField("node", "next"), S1);
  EXPECT_GT(S1, MissAttribution::MemcpySite);

  Sink.notePcLabel(7, "f+3");
  Sink.recordAccess(S1, 7, /*IsStore=*/false, /*Miss=*/true, 9);
  Sink.recordAccess(S1, 7, /*IsStore=*/false, /*Miss=*/false, 1);
  Sink.recordAccess(MissAttribution::MemsetSite, 0, /*IsStore=*/true,
                    /*Miss=*/true, 9);
  EXPECT_EQ(Sink.totalMisses(), 2u);

  std::vector<AttributedSiteStats> Sites = Sink.collect();
  ASSERT_EQ(Sites.size(), 2u); // Zero-traffic sites are dropped.
  bool SawField = false, SawMemset = false;
  for (const AttributedSiteStats &S : Sites) {
    if (S.Record == "node") {
      SawField = true;
      EXPECT_EQ(S.Field, "next");
      EXPECT_EQ(S.Loads, 2u);
      EXPECT_EQ(S.Misses, 1u);
      ASSERT_EQ(S.MissesByPc.size(), 1u);
      EXPECT_EQ(S.MissesByPc.at("f+3"), 1u);
    } else if (S.Record == "(memset)") {
      SawMemset = true;
      EXPECT_EQ(S.Stores, 1u);
      EXPECT_EQ(S.Misses, 1u);
    }
  }
  EXPECT_TRUE(SawField);
  EXPECT_TRUE(SawMemset);

  std::string Json = Sink.renderHeatmapJson();
  EXPECT_NE(Json.find("\"total_misses\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"record\": \"node\""), std::string::npos);
  EXPECT_NE(Json.find("\"f+3\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CounterRegistry
//===----------------------------------------------------------------------===//

TEST(CounterRegistryTest, InternAndMerge) {
  CounterRegistry C;
  CounterRegistry::CounterId A = C.id("alpha");
  EXPECT_EQ(C.id("alpha"), A);
  C.add(A, 3);
  C.add("alpha", 4);
  C.add("beta", 1);
  EXPECT_EQ(C.value(A), 7u);
  EXPECT_EQ(C.value("beta"), 1u);
  EXPECT_EQ(C.value("never-registered"), 0u);

  std::map<std::string, uint64_t> Snap = C.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap["alpha"], 7u);
  EXPECT_EQ(Snap["beta"], 1u);
  EXPECT_EQ(C.renderJson(), "{\"alpha\": 7, \"beta\": 1}");
}

// The merge must be deterministic no matter how the pool schedules the
// bumps: exact sums, identical across repeated runs.
TEST(CounterRegistryTest, MergeIsDeterministicUnderThreadPool) {
  constexpr unsigned Threads = 8;
  constexpr unsigned Tasks = 200;
  constexpr unsigned BumpsPerTask = 1000;

  std::map<std::string, uint64_t> Previous;
  for (int Round = 0; Round < 3; ++Round) {
    CounterRegistry C;
    CounterRegistry::CounterId Even = C.id("even");
    CounterRegistry::CounterId Odd = C.id("odd");
    ThreadPool Pool(Threads);
    for (unsigned T = 0; T < Tasks; ++T)
      Pool.enqueue([&C, Even, Odd, T] {
        for (unsigned I = 0; I < BumpsPerTask; ++I)
          C.add(T % 2 ? Odd : Even, 1);
        C.add("per_task", T);
      });
    Pool.wait();

    std::map<std::string, uint64_t> Snap = C.snapshot();
    EXPECT_EQ(Snap["even"], uint64_t(Tasks / 2) * BumpsPerTask);
    EXPECT_EQ(Snap["odd"], uint64_t(Tasks / 2) * BumpsPerTask);
    EXPECT_EQ(Snap["per_task"], uint64_t(Tasks) * (Tasks - 1) / 2);
    if (Round > 0) {
      EXPECT_EQ(Snap, Previous);
    }
    Previous = std::move(Snap);
  }
}

// Two registries alive at once: thread-local shard caches must not leak
// bumps across them.
TEST(CounterRegistryTest, ConcurrentRegistriesStayIsolated) {
  CounterRegistry A, B;
  ThreadPool Pool(4);
  for (unsigned T = 0; T < 32; ++T)
    Pool.enqueue([&A, &B] {
      for (int I = 0; I < 100; ++I) {
        A.add("x", 1);
        B.add("x", 2);
      }
    });
  Pool.wait();
  EXPECT_EQ(A.value("x"), 3200u);
  EXPECT_EQ(B.value("x"), 6400u);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(TracerTest, RecordsNestedSpans) {
  Tracer T;
  {
    TraceSpan Outer(&T, "outer", "phase");
    TraceSpan Inner(&T, "inner", "phase");
  }
  std::vector<Tracer::Event> Events = T.events();
  ASSERT_EQ(Events.size(), 2u);
  // Destruction order: inner completes first.
  EXPECT_EQ(Events[0].Name, "inner");
  EXPECT_EQ(Events[1].Name, "outer");
  EXPECT_LE(Events[1].StartMicros, Events[0].StartMicros);
  EXPECT_GE(Events[1].DurMicros, Events[0].DurMicros);

  std::string Json = T.renderChromeJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);

  std::string Summary = T.renderTextSummary();
  EXPECT_NE(Summary.find("outer"), std::string::npos);
  EXPECT_NE(Summary.find("inner"), std::string::npos);
}

TEST(TracerTest, NullTracerSpanIsInert) {
  // The tracing-off fast path: must not crash, allocate into a tracer,
  // or read the clock (the latter is not observable here, but the span
  // must at least be a no-op).
  TraceSpan S(nullptr, "unseen", "phase");
}

//===----------------------------------------------------------------------===//
// Observability must not perturb the simulation
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, HooksDoNotPerturbSimulation) {
  const Workload *W = findWorkload("179.art");
  ASSERT_NE(W, nullptr);

  auto Run = [&](bool Hooks, Tracer *T, CounterRegistry *C,
                 MissAttribution *A) {
    Built B = buildWorkload(*W);
    RunOptions O;
    O.IntParams = W->TrainParams;
    O.Cache = CacheConfig::scaledItanium();
    if (Hooks) {
      O.Trace = T;
      O.Counters = C;
      O.Attribution = A;
    }
    return runProgram(*B.M, std::move(O));
  };

  RunResult Plain = Run(false, nullptr, nullptr, nullptr);
  Tracer T;
  CounterRegistry C;
  MissAttribution A;
  RunResult Hooked = Run(true, &T, &C, &A);

  EXPECT_EQ(Plain.Instructions, Hooked.Instructions);
  EXPECT_EQ(Plain.Cycles, Hooked.Cycles);
  EXPECT_EQ(Plain.MemStallCycles, Hooked.MemStallCycles);
  EXPECT_EQ(Plain.L1.Misses, Hooked.L1.Misses);
  EXPECT_EQ(Plain.FirstLevelMisses, Hooked.FirstLevelMisses);
  EXPECT_EQ(Plain.PrintedInts, Hooked.PrintedInts);

  // And the hooks actually saw the run. The counter namespace is the
  // one engine-visible difference: the walker publishes "interp.*", the
  // bytecode VM "vm.*" (this suite runs under both via SLO_ENGINE).
  EXPECT_EQ(C.value("interp.cycles") + C.value("vm.cycles"), Hooked.Cycles);
  EXPECT_EQ(A.totalMisses(), Hooked.FirstLevelMisses);
  EXPECT_FALSE(T.events().empty());
}

} // namespace
