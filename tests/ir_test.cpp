//===- tests/ir_test.cpp - IR substrate unit tests ------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Linker.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

TEST(TypeTest, PrimitiveSizes) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  EXPECT_EQ(T.getI8()->getSize(), 1u);
  EXPECT_EQ(T.getI16()->getSize(), 2u);
  EXPECT_EQ(T.getI32()->getSize(), 4u);
  EXPECT_EQ(T.getI64()->getSize(), 8u);
  EXPECT_EQ(T.getF32()->getSize(), 4u);
  EXPECT_EQ(T.getF64()->getSize(), 8u);
  EXPECT_EQ(T.getPointerType(T.getI32())->getSize(), 8u);
  EXPECT_EQ(T.getI1()->getSize(), 1u);
}

TEST(TypeTest, TypesAreUniqued) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  EXPECT_EQ(T.getI32(), T.getI32());
  EXPECT_EQ(T.getPointerType(T.getI32()), T.getPointerType(T.getI32()));
  EXPECT_NE(T.getPointerType(T.getI32()), T.getPointerType(T.getI64()));
  EXPECT_EQ(T.getArrayType(T.getF64(), 4), T.getArrayType(T.getF64(), 4));
  EXPECT_EQ(T.getFunctionType(T.getI32(), {T.getI64()}),
            T.getFunctionType(T.getI32(), {T.getI64()}));
}

TEST(TypeTest, RecordLayoutFollowsCRules) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  RecordType *R = T.getOrCreateRecord("mixed");
  R->setFields({{"a", T.getI8(), 0, 0},
                {"b", T.getI32(), 0, 0},
                {"c", T.getI8(), 0, 0},
                {"d", T.getF64(), 0, 0}});
  EXPECT_EQ(R->getField(0).Offset, 0u);
  EXPECT_EQ(R->getField(1).Offset, 4u); // aligned to 4
  EXPECT_EQ(R->getField(2).Offset, 8u);
  EXPECT_EQ(R->getField(3).Offset, 16u); // aligned to 8
  EXPECT_EQ(R->getSize(), 24u);          // rounded up to align 8
  EXPECT_EQ(R->getAlign(), 8u);
}

TEST(TypeTest, RecordLookupByName) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  RecordType *R = T.getOrCreateRecord("node");
  EXPECT_EQ(T.getOrCreateRecord("node"), R);
  EXPECT_EQ(T.lookupRecord("node"), R);
  EXPECT_EQ(T.lookupRecord("nothere"), nullptr);
  RecordType *U = T.createUniqueRecord("node");
  EXPECT_NE(U, R);
  EXPECT_NE(U->getRecordName(), "node");
}

TEST(ValueTest, SizeofConstantsAreAttributedAndDistinct) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  RecordType *R = T.getOrCreateRecord("s");
  R->setFields({{"x", T.getI64(), 0, 0}});
  ConstantInt *Tagged = Ctx.getSizeOf(R);
  ConstantInt *Plain = Ctx.getInt64(8);
  EXPECT_EQ(Tagged->getValue(), 8);
  EXPECT_NE(Tagged, Plain);
  EXPECT_EQ(Tagged->getSizeOfRecord(), R);
  EXPECT_EQ(Plain->getSizeOfRecord(), nullptr);
  EXPECT_EQ(Ctx.getSizeOf(R), Tagged); // Uniqued.
}

// Builds: define i64 @f(i64 %a) { ret (a + 1) }
static Function *buildAddOne(Module &M) {
  IRContext &Ctx = M.getContext();
  TypeContext &T = Ctx.getTypes();
  FunctionType *FnTy = T.getFunctionType(T.getI64(), {T.getI64()});
  Function *F = M.createFunction(FnTy, "addone");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx);
  B.setInsertPoint(BB);
  Value *Sum =
      B.createBinary(Instruction::OpAdd, F->getArg(0), Ctx.getInt64(1));
  B.createRet(Sum);
  return F;
}

TEST(IRTest, UseListsTrackOperands) {
  IRContext Ctx;
  Module M(Ctx, "m");
  Function *F = buildAddOne(M);
  Argument *A = F->getArg(0);
  ASSERT_EQ(A->users().size(), 1u);
  Instruction *Add = A->users().front();
  EXPECT_EQ(Add->getOpcode(), Instruction::OpAdd);
  EXPECT_EQ(Add->users().size(), 1u); // The ret.
}

TEST(IRTest, ReplaceAllUsesWith) {
  IRContext Ctx;
  Module M(Ctx, "m");
  Function *F = buildAddOne(M);
  Argument *A = F->getArg(0);
  Value *C = Ctx.getInt64(42);
  A->replaceAllUsesWith(C);
  EXPECT_TRUE(A->users().empty());
  ASSERT_EQ(C->users().size(), 1u);
  EXPECT_EQ(C->users().front()->getOpcode(), Instruction::OpAdd);
}

TEST(IRTest, VerifierAcceptsWellFormed) {
  IRContext Ctx;
  Module M(Ctx, "m");
  buildAddOne(M);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors)) << (Errors.empty() ? "" : Errors[0]);
}

TEST(IRTest, VerifierRejectsMissingTerminator) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  Module M(Ctx, "m");
  Function *F =
      M.createFunction(T.getFunctionType(T.getVoidType(), {}), "f");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx);
  B.setInsertPoint(BB);
  B.createAlloca(T.getI32(), "x");
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(IRTest, VerifierRejectsTypeMismatchedStore) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  Module M(Ctx, "m");
  Function *F =
      M.createFunction(T.getFunctionType(T.getVoidType(), {}), "f");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx);
  B.setInsertPoint(BB);
  AllocaInst *Slot = B.createAlloca(T.getI32(), "x");
  B.createStore(Ctx.getInt64(1), Slot); // i64 into i32 slot.
  B.createRet();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(IRTest, PrinterMentionsRecordsAndOpcodes) {
  IRContext Ctx;
  Module M(Ctx, "m");
  buildAddOne(M);
  std::string S = printModule(M);
  EXPECT_NE(S.find("@addone"), std::string::npos);
  EXPECT_NE(S.find("add"), std::string::npos);
  EXPECT_NE(S.find("ret"), std::string::npos);
}

TEST(LinkerTest, ResolvesDeclarationToDefinition) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  auto A = std::make_unique<Module>(Ctx, "a");
  auto Bm = std::make_unique<Module>(Ctx, "b");
  FunctionType *FnTy = T.getFunctionType(T.getI64(), {T.getI64()});

  // Module a: declaration + caller.
  Function *Decl = A->createFunction(FnTy, "addone");
  Function *Caller =
      A->createFunction(T.getFunctionType(T.getI64(), {}), "caller");
  IRBuilder B(Ctx);
  B.setInsertPoint(Caller->createBlock("entry"));
  Value *R = B.createCall(Decl, {Ctx.getInt64(1)});
  B.createRet(R);

  // Module b: definition.
  buildAddOne(*Bm);

  std::vector<std::unique_ptr<Module>> TUs;
  TUs.push_back(std::move(A));
  TUs.push_back(std::move(Bm));
  auto Linked = linkModules(Ctx, std::move(TUs), "prog");

  Function *Def = Linked->lookupFunction("addone");
  ASSERT_NE(Def, nullptr);
  EXPECT_FALSE(Def->isDeclaration());
  Function *C = Linked->lookupFunction("caller");
  ASSERT_NE(C, nullptr);
  // The call inside caller must now point at the definition.
  for (const auto &BB : C->blocks())
    for (const auto &I : BB->instructions())
      if (auto *Call = dyn_cast<CallInst>(I.get())) {
        EXPECT_EQ(Call->getCallee(), Def);
      }
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*Linked, Errors));
}

TEST(LinkerTest, MergesDuplicateGlobals) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  auto A = std::make_unique<Module>(Ctx, "a");
  auto Bm = std::make_unique<Module>(Ctx, "b");
  A->createGlobal(T.getI64(), "counter");
  Bm->createGlobal(T.getI64(), "counter");
  std::vector<std::unique_ptr<Module>> TUs;
  TUs.push_back(std::move(A));
  TUs.push_back(std::move(Bm));
  auto Linked = linkModules(Ctx, std::move(TUs), "prog");
  EXPECT_EQ(Linked->globals().size(), 1u);
}

} // namespace
