//===- tests/cfg_analysis_test.cpp - CFG analysis detail tests ------------===//
//
// Detailed checks of dominators, loop nesting, call-graph SCCs, branch
// probabilities, and block frequencies on hand-written control flow.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/StaticEstimator.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct Compiled {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Compiled compile(const char *Src) {
  Compiled C;
  C.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  C.M = compileMiniC(*C.Ctx, "t", Src, Diags);
  EXPECT_TRUE(C.M) << (Diags.empty() ? "?" : Diags[0]);
  return C;
}

TEST(DominatorsTest, EntryDominatesEverything) {
  Compiled C = compile(R"(
    long f(long a) {
      long r = 0;
      if (a > 0) r = 1; else r = 2;
      while (a > 0) { a--; }
      return r;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  const BasicBlock *Entry = F->getEntry();
  for (const auto &BB : F->blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    EXPECT_TRUE(DT.dominates(Entry, BB.get())) << BB->getName();
    EXPECT_TRUE(DT.dominates(BB.get(), BB.get())); // Reflexive.
  }
}

TEST(DominatorsTest, BranchArmsDoNotDominateJoin) {
  Compiled C = compile(R"(
    long f(long a) {
      long r = 0;
      if (a > 0) { r = 1; } else { r = 2; }
      return r;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  const BasicBlock *Then = nullptr, *Else = nullptr, *End = nullptr;
  for (const auto &BB : F->blocks()) {
    if (BB->getName().rfind("if.then", 0) == 0)
      Then = BB.get();
    if (BB->getName().rfind("if.else", 0) == 0)
      Else = BB.get();
    if (BB->getName().rfind("if.end", 0) == 0)
      End = BB.get();
  }
  ASSERT_TRUE(Then && Else && End);
  EXPECT_FALSE(DT.dominates(Then, End));
  EXPECT_FALSE(DT.dominates(Else, End));
  EXPECT_TRUE(DT.dominates(F->getEntry(), End));
  EXPECT_EQ(DT.getIdom(End), F->getEntry());
}

TEST(LoopInfoTest, TripleNestDepths) {
  Compiled C = compile(R"(
    long f(long n) {
      long s = 0;
      for (long i = 0; i < n; i++)
        for (long j = 0; j < n; j++)
          for (long k = 0; k < n; k++)
            s += 1;
      return s;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 3u);
  unsigned MaxDepth = 0;
  for (const auto &L : LI.loops())
    MaxDepth = std::max(MaxDepth, L->getDepth());
  EXPECT_EQ(MaxDepth, 3u);
  EXPECT_EQ(LI.topLevel().size(), 1u);
  // The innermost loop is contained in both outer loops.
  std::vector<Loop *> Inner = LI.loopsInnermostFirst();
  EXPECT_EQ(Inner.front()->getDepth(), 3u);
  EXPECT_TRUE(LI.topLevel()[0]->contains(Inner.front()));
}

TEST(LoopInfoTest, SiblingsShareAParent) {
  Compiled C = compile(R"(
    long f(long n) {
      long s = 0;
      for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) s += 1;
        for (long k = 0; k < n; k++) s += 2;
      }
      return s;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 3u);
  ASSERT_EQ(LI.topLevel().size(), 1u);
  EXPECT_EQ(LI.topLevel()[0]->subLoops().size(), 2u);
}

TEST(LoopInfoTest, BackEdgeDetection) {
  Compiled C = compile(R"(
    long f(long n) {
      long s = 0;
      while (n > 0) { s += n; n--; }
      return s;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop *L = LI.loops()[0].get();
  ASSERT_EQ(L->latches().size(), 1u);
  EXPECT_TRUE(LI.isBackEdge(L->latches()[0], L->getHeader()));
  EXPECT_FALSE(LI.isBackEdge(F->getEntry(), L->getHeader()));
}

TEST(CallGraphTest, SccsAndTopologicalOrder) {
  Compiled C = compile(R"(
    long pong(long n);
    long ping(long n) { if (n <= 0) return 0; return pong(n - 1); }
    long pong(long n) { return ping(n - 1); }
    long leaf(long n) { return n; }
    int main() { return (int) (ping(4) + leaf(1)); }
  )");
  CallGraph CG(*C.M);
  const Function *Ping = C.M->lookupFunction("ping");
  const Function *Pong = C.M->lookupFunction("pong");
  const Function *Leaf = C.M->lookupFunction("leaf");
  const Function *Main = C.M->lookupFunction("main");
  // ping and pong form one SCC; leaf and main are their own.
  EXPECT_EQ(CG.getSccId(Ping), CG.getSccId(Pong));
  EXPECT_NE(CG.getSccId(Ping), CG.getSccId(Leaf));
  EXPECT_NE(CG.getSccId(Main), CG.getSccId(Ping));
  EXPECT_TRUE(CG.isIntraScc(Ping, Pong));
  EXPECT_FALSE(CG.isIntraScc(Main, Ping));
  // Topological order: main's SCC before ping/pong's SCC.
  size_t MainPos = 0, PingPos = 0;
  const auto &Sccs = CG.sccsTopological();
  for (size_t I = 0; I < Sccs.size(); ++I)
    for (const Function *F : Sccs[I]) {
      if (F == Main)
        MainPos = I;
      if (F == Ping)
        PingPos = I;
    }
  EXPECT_LT(MainPos, PingPos);
  // Call sites: main has two, ping one, pong one.
  EXPECT_EQ(CG.callersOf(Leaf).size(), 1u);
  EXPECT_EQ(CG.callersOf(Ping).size(), 2u); // main and pong.
}

TEST(BranchProbTest, LoopBackEdgeGetsLoopProbability) {
  Compiled C = compile(R"(
    long f(long n) {
      long s = 0;
      for (long i = 0; i < n; i++) s += i;
      return s;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  BranchProbabilities BP(*F, LI);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop *L = LI.loops()[0].get();
  // The loop header's conditional branch: staying in the loop has the
  // back-edge probability (0.88 integer default).
  const BasicBlock *Header = L->getHeader();
  double StayProb = 0;
  for (const BasicBlock *S : Header->successors())
    if (L->contains(S))
      StayProb = BP.getEdgeProb(Header, S);
  EXPECT_NEAR(StayProb, 0.88, 1e-9);
}

TEST(BranchProbTest, FpLoopGetsHigherProbability) {
  Compiled C = compile(R"(
    double f(long n) {
      double s = 0.0;
      for (long i = 0; i < n; i++) s = s + 0.5;
      return s;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  BranchProbabilities BP(*F, LI);
  const Loop *L = LI.loops()[0].get();
  const BasicBlock *Header = L->getHeader();
  double StayProb = 0;
  for (const BasicBlock *S : Header->successors())
    if (L->contains(S))
      StayProb = BP.getEdgeProb(Header, S);
  EXPECT_NEAR(StayProb, 0.93, 1e-9); // FP loop default.
}

TEST(BranchProbTest, ProbabilitiesSumToOne) {
  Compiled C = compile(R"(
    long f(long a, long b) {
      long s = 0;
      if (a > b) s = 1;
      for (long i = 0; i < a; i++)
        if (i % 2 == 0) s += i;
      return s;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  BranchProbabilities BP(*F, LI);
  for (const auto &BB : F->blocks()) {
    auto Succs = BB->successors();
    if (Succs.empty())
      continue;
    double Sum = 0;
    for (const BasicBlock *S : Succs)
      Sum += BP.getEdgeProb(BB.get(), S);
    EXPECT_NEAR(Sum, 1.0, 1e-9) << BB->getName();
  }
}

TEST(BlockFreqTest, DiamondSplitsFlow) {
  Compiled C = compile(R"(
    long f(long a) {
      long r = 0;
      if (a > 0) { r = 1; } else { r = 2; }
      return r;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  StaticEstimator SE(*C.M);
  const auto &A = SE.get(F);
  double ThenFreq = 0, EndFreq = 0;
  for (const auto &BB : F->blocks()) {
    if (BB->getName().rfind("if.then", 0) == 0)
      ThenFreq = A.BF->get(BB.get());
    if (BB->getName().rfind("if.end", 0) == 0)
      EndFreq = A.BF->get(BB.get());
  }
  EXPECT_NEAR(ThenFreq, 0.5, 0.25); // Heuristics may skew, but < 1.
  EXPECT_NEAR(EndFreq, 1.0, 1e-6);  // Flow reconverges.
}

TEST(BlockFreqTest, FrequenciesConserveFlow) {
  Compiled C = compile(R"(
    long f(long n) {
      long s = 0;
      for (long i = 0; i < n; i++) {
        if (i % 2 == 0) s += i;
        else s -= i;
      }
      return s;
    }
    int main() { return 0; }
  )");
  const Function *F = C.M->lookupFunction("f");
  StaticEstimator SE(*C.M);
  const auto &A = SE.get(F);
  // Every non-entry reachable block's frequency equals its inflow.
  for (const BasicBlock *BB : A.DT->reversePostOrder()) {
    if (BB == F->getEntry())
      continue;
    double In = 0;
    for (const BasicBlock *P : A.DT->predecessors(BB))
      In += A.BF->get(P) * A.BP->getEdgeProb(P, BB);
    EXPECT_NEAR(A.BF->get(BB), In, 1e-6) << BB->getName();
  }
}

} // namespace
