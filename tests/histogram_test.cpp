//===- tests/histogram_test.cpp - Log-bucketed histogram tests ------------===//
//
// The shared observability Histogram (DESIGN.md §14):
//
//  - bucket geometry: values below ExactLimit get exact buckets, every
//    reported bound is >= the recorded value with bounded relative
//    rounding error, and bucketFor/bucketUpperBound are inverses in the
//    sense every value maps into a bucket whose bound covers it;
//  - merged snapshots are deterministic under ThreadPool contention:
//    the same multiset of recordings renders byte-identical JSON no
//    matter how the threads interleaved;
//  - quantiles come from the merged buckets: exact below ExactLimit,
//    clamped to the true maximum above it, 0 for an empty histogram;
//  - the registry renders JSON and Prometheus text exposition with
//    cumulative le-buckets, a +Inf bucket equal to _count, and _sum.
//
//===----------------------------------------------------------------------===//

#include "observability/Histogram.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace slo;

namespace {

//===----------------------------------------------------------------------===//
// Bucket geometry
//===----------------------------------------------------------------------===//

TEST(HistogramTest, ExactBucketsBelowLimit) {
  for (uint64_t V = 0; V < Histogram::ExactLimit; ++V) {
    EXPECT_EQ(Histogram::bucketFor(V), V);
    EXPECT_EQ(Histogram::bucketUpperBound(static_cast<unsigned>(V)), V);
  }
}

TEST(HistogramTest, BoundsCoverValuesWithBoundedError) {
  // Sweep boundaries of every octave plus a spread inside: the bucket's
  // upper bound must cover the value and overshoot by at most 1/16 of
  // it (16 sub-buckets per octave).
  std::vector<uint64_t> Values;
  for (unsigned Shift = 5; Shift < 63; ++Shift) {
    uint64_t Base = 1ull << Shift;
    Values.push_back(Base - 1);
    Values.push_back(Base);
    Values.push_back(Base + 1);
    Values.push_back(Base + Base / 3);
    Values.push_back(2 * Base - 1);
  }
  Values.push_back(UINT64_MAX);
  for (uint64_t V : Values) {
    unsigned B = Histogram::bucketFor(V);
    ASSERT_LT(B, Histogram::NumBuckets) << V;
    uint64_t Bound = Histogram::bucketUpperBound(B);
    EXPECT_GE(Bound, V) << "bucket bound below the value it holds";
    if (V >= Histogram::ExactLimit && Bound != UINT64_MAX) {
      EXPECT_LE(Bound - V, V / Histogram::SubBuckets)
          << "bound overshoots " << V << " by more than one sub-bucket";
    }
    if (B > 0) {
      EXPECT_LT(Histogram::bucketUpperBound(B - 1), V)
          << "value " << V << " fits the previous bucket too";
    }
  }
}

TEST(HistogramTest, BucketBoundsStrictlyIncrease) {
  for (unsigned B = 1; B < Histogram::NumBuckets; ++B)
    ASSERT_GT(Histogram::bucketUpperBound(B),
              Histogram::bucketUpperBound(B - 1))
        << "at bucket " << B;
}

//===----------------------------------------------------------------------===//
// Quantiles
//===----------------------------------------------------------------------===//

TEST(HistogramTest, EmptyHistogramRendersZeros) {
  Histogram H;
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Sum, 0u);
  EXPECT_EQ(S.Max, 0u);
  EXPECT_EQ(S.quantile(0.50), 0u);
  EXPECT_EQ(S.quantile(0.99), 0u);
  EXPECT_EQ(renderHistogramSnapshotJson(S),
            "{\"count\": 0, \"sum\": 0, \"max\": 0, \"p50\": 0, "
            "\"p90\": 0, \"p99\": 0}");
}

TEST(HistogramTest, QuantilesExactBelowExactLimit) {
  // 1..20 recorded once each: every value has its own bucket, so the
  // quantiles are the exact order statistics at rank ceil(Q*N).
  Histogram H;
  for (uint64_t V = 1; V <= 20; ++V)
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 20u);
  EXPECT_EQ(S.Sum, 210u);
  EXPECT_EQ(S.Max, 20u);
  EXPECT_EQ(S.quantile(0.50), 10u);
  EXPECT_EQ(S.quantile(0.90), 18u);
  EXPECT_EQ(S.quantile(0.95), 19u);
  EXPECT_EQ(S.quantile(1.00), 20u);
  EXPECT_EQ(S.quantile(0.00), 1u); // Rank clamps to 1.
}

TEST(HistogramTest, QuantileClampsToExactMax) {
  // One large value: its bucket bound overshoots, but the reported
  // quantile must never exceed the largest recorded value.
  Histogram H;
  H.record(1000);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Max, 1000u);
  EXPECT_EQ(S.quantile(0.50), 1000u);
  EXPECT_EQ(S.quantile(0.99), 1000u);
}

//===----------------------------------------------------------------------===//
// Determinism under contention
//===----------------------------------------------------------------------===//

TEST(HistogramTest, MergedSnapshotDeterministicUnderThreadPool) {
  // The same multiset of recordings from racing pool workers must
  // render byte-identical JSON across rounds: addition commutes, so the
  // merge cannot depend on scheduling.
  constexpr unsigned Threads = 8;
  constexpr unsigned Tasks = 64;
  constexpr unsigned OpsPerTask = 500;

  std::string Previous;
  for (int Round = 0; Round < 3; ++Round) {
    HistogramRegistry Reg;
    ThreadPool Pool(Threads);
    for (unsigned T = 0; T < Tasks; ++T)
      Pool.enqueue([&Reg, T] {
        for (unsigned I = 0; I < OpsPerTask; ++I) {
          // A deterministic value stream independent of scheduling.
          uint64_t V = (static_cast<uint64_t>(T) * OpsPerTask + I) % 4096;
          Reg.record(T % 2 ? "odd" : "even", V);
        }
      });
    Pool.wait();

    std::map<std::string, HistogramSnapshot> Snap = Reg.snapshotAll();
    ASSERT_EQ(Snap.size(), 2u);
    EXPECT_EQ(Snap["even"].Count, uint64_t(Tasks / 2) * OpsPerTask);
    EXPECT_EQ(Snap["odd"].Count, uint64_t(Tasks / 2) * OpsPerTask);
    std::string Json = Reg.renderJson();
    if (Round > 0) {
      EXPECT_EQ(Json, Previous);
    }
    Previous = std::move(Json);
  }
}

TEST(HistogramTest, ConcurrentHistogramsStayIsolated) {
  // Two live histograms: the thread-local shard caches must not leak
  // recordings across them (the generation-tag contract).
  Histogram A, B;
  ThreadPool Pool(4);
  for (unsigned T = 0; T < 32; ++T)
    Pool.enqueue([&A, &B] {
      for (int I = 0; I < 100; ++I) {
        A.record(1);
        B.record(2);
      }
    });
  Pool.wait();
  EXPECT_EQ(A.snapshot().Count, 3200u);
  EXPECT_EQ(A.snapshot().Sum, 3200u);
  EXPECT_EQ(B.snapshot().Count, 3200u);
  EXPECT_EQ(B.snapshot().Sum, 6400u);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(HistogramTest, RegistryJsonSchema) {
  HistogramRegistry Reg;
  Reg.record("service.latency.Ping", 5);
  Reg.record("service.latency.Ping", 7);
  EXPECT_EQ(Reg.renderJson(),
            "{\"service.latency.Ping\": {\"count\": 2, \"sum\": 12, "
            "\"max\": 7, \"p50\": 5, \"p90\": 7, \"p99\": 7}}");
  EXPECT_EQ(Reg.get("service.latency.Ping").snapshot().Count, 2u);
}

TEST(HistogramTest, PrometheusRenderIsCumulativeAndComplete) {
  HistogramRegistry Reg;
  Reg.record("service.latency.Ping", 3);
  Reg.record("service.latency.Ping", 3);
  Reg.record("service.latency.Ping", 9);
  std::string Text = Reg.renderPrometheus();
  // Name mangled, TYPE declared, sparse cumulative buckets, +Inf equal
  // to the count, exact _sum/_count.
  EXPECT_NE(Text.find("# TYPE slo_service_latency_Ping histogram\n"),
            std::string::npos);
  EXPECT_NE(Text.find("slo_service_latency_Ping_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("slo_service_latency_Ping_bucket{le=\"9\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("slo_service_latency_Ping_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("slo_service_latency_Ping_sum 15\n"), std::string::npos);
  EXPECT_NE(Text.find("slo_service_latency_Ping_count 3\n"),
            std::string::npos);
}

} // namespace
