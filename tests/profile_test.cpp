//===- tests/profile_test.cpp - Feedback persistence and GVL tests --------===//

#include "frontend/Frontend.h"
#include "profile/FeedbackIO.h"
#include "runtime/Interpreter.h"
#include "analysis/WeightSchemes.h"
#include "support/Diagnostics.h"
#include "transform/GlobalVarLayout.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace slo;

namespace {

const char *ProfiledProgram = R"(
  extern void print_i64(long v);
  struct pt { long x; long y; };
  struct pt *arr;
  long hot_counter;
  long cold_counter;
  int main() {
    arr = (struct pt*) malloc(128 * sizeof(struct pt));
    long s = 0;
    for (long i = 0; i < 128; i++) {
      arr[i].x = i;
      arr[i].y = 2 * i;
      hot_counter = hot_counter + 1;
    }
    for (long r = 0; r < 16; r++)
      for (long i = 0; i < 128; i++) {
        s += arr[i].x;
        hot_counter = hot_counter + 1;
      }
    cold_counter = s % 7;
    print_i64(s + hot_counter + cold_counter);
    free(arr);
    return 0;
  }
)";

struct Compiled {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Compiled compile(const char *Src) {
  Compiled C;
  C.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  C.M = compileMiniC(*C.Ctx, "t", Src, Diags);
  EXPECT_TRUE(C.M) << (Diags.empty() ? "?" : Diags[0]);
  return C;
}

TEST(FeedbackIoTest, RoundTripPreservesCounts) {
  Compiled C = compile(ProfiledProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  RunResult R = runProgram(*C.M, std::move(O));
  ASSERT_FALSE(R.Trapped) << R.TrapReason;

  std::string Text = serializeFeedback(*C.M, FB);
  EXPECT_EQ(Text.rfind("slo-feedback-v2", 0), 0u);

  FeedbackFile Restored;
  FeedbackMatchResult MR = deserializeFeedback(*C.M, Text, Restored);
  ASSERT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.DroppedEntries, 0u);
  EXPECT_GT(MR.MatchedEntries, 0u);

  const Function *Main = C.M->lookupFunction("main");
  EXPECT_EQ(Restored.getEntryCount(Main), FB.getEntryCount(Main));
  for (const auto &BB : Main->blocks())
    EXPECT_EQ(Restored.getBlockCount(BB.get()), FB.getBlockCount(BB.get()))
        << BB->getName();

  RecordType *Pt = C.Ctx->getTypes().lookupRecord("pt");
  const FieldCacheStats *A = FB.getFieldStats(Pt, 0);
  const FieldCacheStats *B = Restored.getFieldStats(Pt, 0);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->Loads, B->Loads);
  EXPECT_EQ(A->Misses, B->Misses);
  EXPECT_NEAR(A->TotalLatency, B->TotalLatency,
              1e-6 * (1.0 + A->TotalLatency));
}

TEST(FeedbackIoTest, MatchesAcrossRecompilation) {
  // The PBO use phase: the profile is collected by one compilation and
  // consumed by a fresh one (different IR objects, same symbols).
  Compiled A = compile(ProfiledProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  runProgram(*A.M, std::move(O));
  std::string Text = serializeFeedback(*A.M, FB);

  Compiled B = compile(ProfiledProgram);
  FeedbackFile Restored;
  FeedbackMatchResult MR = deserializeFeedback(*B.M, Text, Restored);
  ASSERT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.DroppedEntries, 0u);
  EXPECT_EQ(Restored.getEntryCount(B.M->lookupFunction("main")), 1u);
}

/// Collects a profile for \p Src and returns its serialized text.
static std::string collectProfileText(const Compiled &C) {
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  RunResult R = runProgram(*C.M, std::move(O));
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  return serializeFeedback(*C.M, FB);
}

/// Splices extra record lines before the "end" trailer, fixing up the
/// declared record count — the shape of a legitimately edited file.
static std::string spliceRecords(std::string Text, const std::string &Extra,
                                 unsigned ExtraRecords) {
  size_t EndPos = Text.rfind("end ");
  EXPECT_NE(EndPos, std::string::npos);
  unsigned Declared = 0;
  EXPECT_EQ(std::sscanf(Text.c_str() + EndPos, "end %u", &Declared), 1);
  return Text.substr(0, EndPos) + Extra + "end " +
         std::to_string(Declared + ExtraRecords) + "\n";
}

TEST(FeedbackIoTest, StaleSymbolsAreDroppedSoftly) {
  Compiled A = compile(ProfiledProgram);
  std::string Text = spliceRecords(collectProfileText(A),
                                   "entry no_such_function 99\n"
                                   "field no_such_record 0 1 2 3 4.5\n",
                                   2);

  Compiled B = compile(ProfiledProgram);
  FeedbackFile Restored;
  DiagnosticEngine Diags;
  FeedbackMatchResult MR = deserializeFeedback(*B.M, Text, Restored, &Diags);
  ASSERT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.DroppedEntries, 2u);
  // Soft drops surface as one summarizing warning, not an error.
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.count(DiagSeverity::Warning), 1u);
}

TEST(FeedbackIoTest, MalformedInputRejected) {
  Compiled A = compile(ProfiledProgram);
  FeedbackFile FB;
  EXPECT_FALSE(deserializeFeedback(*A.M, "not-a-feedback-file", FB).Ok);
  EXPECT_FALSE(deserializeFeedback(*A.M, "slo-feedback-v1\nend 0\n", FB).Ok)
      << "old format version must be rejected";
  EXPECT_FALSE(
      deserializeFeedback(*A.M, "slo-feedback-v2\nbogus line\nend 1\n", FB)
          .Ok);
  EXPECT_FALSE(
      deserializeFeedback(*A.M, "slo-feedback-v2\nentry onlyname\nend 1\n",
                          FB)
          .Ok);
}

TEST(FeedbackIoTest, CorruptFilesAreStructuredErrorsNotCrashes) {
  // Regression: the load path used to feed counts through istream's
  // unsigned extraction (which silently wraps "-1" to 2^64-1) and had no
  // way to notice a file cut off on a line boundary. Every corruption
  // here must come back as a structured "feedback" error diagnostic.
  Compiled A = compile(ProfiledProgram);
  std::string Good = collectProfileText(A);

  auto ExpectRejected = [&](const std::string &Text, const char *What) {
    FeedbackFile FB;
    DiagnosticEngine Diags;
    FeedbackMatchResult MR = deserializeFeedback(*A.M, Text, FB, &Diags);
    EXPECT_FALSE(MR.Ok) << What;
    EXPECT_FALSE(MR.Error.empty()) << What;
    ASSERT_TRUE(Diags.hasErrors()) << What;
    EXPECT_EQ(Diags.all().back().Code, "feedback") << What;
  };

  // Truncation: cut the file after the first few records. With the end
  // trailer gone the parser must flag the file rather than accept the
  // partial profile.
  size_t Cut = Good.find('\n', Good.size() / 2);
  ASSERT_NE(Cut, std::string::npos);
  ExpectRejected(Good.substr(0, Cut + 1), "truncated file");

  // Truncation that eats whole records but keeps the trailer shape is
  // caught by the declared-count mismatch.
  ExpectRejected("slo-feedback-v2\nend 5\n", "count mismatch");

  // Negative counts must not wrap to huge unsigned values.
  ExpectRejected("slo-feedback-v2\nentry main -1\nend 1\n", "negative count");

  // Overflowing counts are rejected, not wrapped.
  ExpectRejected(
      "slo-feedback-v2\nentry main 99999999999999999999999\nend 1\n",
      "overflow");

  // Records after the end marker mean a spliced/corrupt file.
  ExpectRejected(Good + "entry main 1\n", "record after end");

  // Non-finite latency is rejected.
  ExpectRejected("slo-feedback-v2\nfield pt 0 1 0 0 nan\nend 1\n",
                 "nan latency");

  // The good text still parses, and parses clean.
  FeedbackFile FB;
  DiagnosticEngine Diags;
  EXPECT_TRUE(deserializeFeedback(*A.M, Good, FB, &Diags).Ok);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(FeedbackIoTest, LoadFeedbackFileReportsIoErrors) {
  Compiled A = compile(ProfiledProgram);
  FeedbackFile FB;
  DiagnosticEngine Diags;
  FeedbackMatchResult MR = loadFeedbackFile(
      *A.M, "/nonexistent/dir/profile.fdo", FB, Diags);
  EXPECT_FALSE(MR.Ok);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.all().back().Code, "feedback");
}

TEST(FeedbackFileTest, MergeAccumulatesAllSections) {
  Compiled C = compile(ProfiledProgram);
  FeedbackFile A, B;
  {
    RunOptions O;
    O.Profile = &A;
    ASSERT_FALSE(runProgram(*C.M, std::move(O)).Trapped);
  }
  {
    RunOptions O;
    O.Profile = &B;
    ASSERT_FALSE(runProgram(*C.M, std::move(O)).Trapped);
  }
  FeedbackFile Sum = A;
  Sum.merge(B);

  const Function *Main = C.M->lookupFunction("main");
  EXPECT_EQ(Sum.getEntryCount(Main), 2 * A.getEntryCount(Main));
  for (const auto &BB : Main->blocks())
    EXPECT_EQ(Sum.getBlockCount(BB.get()), 2 * A.getBlockCount(BB.get()));

  RecordType *Pt = C.Ctx->getTypes().lookupRecord("pt");
  const FieldCacheStats *SA = A.getFieldStats(Pt, 0);
  const FieldCacheStats *SS = Sum.getFieldStats(Pt, 0);
  ASSERT_NE(SA, nullptr);
  ASSERT_NE(SS, nullptr);
  EXPECT_EQ(SS->Loads, 2 * SA->Loads);
  EXPECT_EQ(SS->Stores, 2 * SA->Stores);
  EXPECT_EQ(SS->Misses, 2 * SA->Misses);
  EXPECT_NEAR(SS->TotalLatency, 2.0 * SA->TotalLatency,
              1e-9 * (1.0 + SA->TotalLatency));

  // Merging is how multi-run sampled collections accumulate; the merged
  // file must serialize identically to a file that held the sums all
  // along (byte determinism of the writer).
  FeedbackFile Twice;
  Twice.merge(A);
  Twice.merge(B);
  EXPECT_EQ(serializeFeedback(*C.M, Sum), serializeFeedback(*C.M, Twice));
}

TEST(FeedbackFileTest, MergeOfCorruptProfileLeavesTargetUntouched) {
  // The multi-run merge flow folds serialized per-run profiles into one
  // accumulation. A rejected file must not half-apply: every record
  // before the corruption point would otherwise leak into the target.
  Compiled C = compile(ProfiledProgram);
  FeedbackFile Acc;
  {
    RunOptions O;
    O.Profile = &Acc;
    ASSERT_FALSE(runProgram(*C.M, std::move(O)).Trapped);
  }
  std::string Good = serializeFeedback(*C.M, Acc);
  std::string Before = Good;

  auto ExpectAtomicReject = [&](const std::string &Text, const char *What) {
    DiagnosticEngine Diags;
    FeedbackMatchResult MR = deserializeFeedback(*C.M, Text, Acc, &Diags);
    EXPECT_FALSE(MR.Ok) << What;
    EXPECT_TRUE(Diags.hasErrors()) << What;
    EXPECT_EQ(serializeFeedback(*C.M, Acc), Before)
        << What << ": rejected merge modified the accumulation";
  };

  // Corrupt v2 trailer: the end line declares the wrong record count
  // (spliced file), or is garbled outright.
  size_t EndPos = Good.rfind("end ");
  ASSERT_NE(EndPos, std::string::npos);
  ExpectAtomicReject(Good.substr(0, EndPos) + "end 999999\n",
                     "trailer count mismatch");
  ExpectAtomicReject(Good.substr(0, EndPos) + "end not-a-number\n",
                     "garbled trailer");

  // Truncated body: cut mid-record (malformed line) and cut on a line
  // boundary (missing trailer). Both have valid records before the cut.
  size_t Mid = Good.find('\n', Good.size() / 2);
  ASSERT_NE(Mid, std::string::npos);
  ExpectAtomicReject(Good.substr(0, Mid - 2), "cut mid-record");
  ExpectAtomicReject(Good.substr(0, Mid + 1), "cut on line boundary");

  // And the intact text still merges: the accumulation exactly doubles.
  DiagnosticEngine Diags;
  ASSERT_TRUE(deserializeFeedback(*C.M, Good, Acc, &Diags).Ok);
  const Function *Main = C.M->lookupFunction("main");
  FeedbackFile One;
  ASSERT_TRUE(deserializeFeedback(*C.M, Good, One, &Diags).Ok);
  EXPECT_EQ(Acc.getEntryCount(Main), 2 * One.getEntryCount(Main));
}

TEST(FeedbackFileTest, MergeAcrossMismatchedRecordSchemas) {
  // A profile collected on a compilation whose record schema has since
  // changed: field records that no longer resolve (renamed record,
  // out-of-range field index) are dropped softly — the merge succeeds,
  // reports the drops, and applies everything that still matches.
  Compiled C = compile(ProfiledProgram);
  FeedbackFile Acc;
  {
    RunOptions O;
    O.Profile = &Acc;
    ASSERT_FALSE(runProgram(*C.M, std::move(O)).Trapped);
  }
  RecordType *Pt = C.Ctx->getTypes().lookupRecord("pt");
  ASSERT_NE(Pt, nullptr);
  const FieldCacheStats *Before = Acc.getFieldStats(Pt, 0);
  ASSERT_NE(Before, nullptr);
  uint64_t LoadsBefore = Before->Loads;

  // 'pt' has two fields; index 7 is from a fatter schema. 'ghost' is a
  // record this module never had.
  std::string Text = "slo-feedback-v2\n"
                     "field pt 0 10 0 0 12.5\n"
                     "field pt 7 99 99 99 1.0\n"
                     "field ghost 0 5 5 5 2.0\n"
                     "end 3\n";
  DiagnosticEngine Diags;
  FeedbackMatchResult MR = deserializeFeedback(*C.M, Text, Acc, &Diags);
  EXPECT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.MatchedEntries, 1u);
  EXPECT_EQ(MR.DroppedEntries, 2u);
  EXPECT_FALSE(Diags.hasErrors());
  // The drop summary surfaces as a warning, not silence.
  bool SawDropWarning = false;
  for (const Diagnostic &D : Diags.all())
    SawDropWarning |= D.Severity == DiagSeverity::Warning;
  EXPECT_TRUE(SawDropWarning);
  // The matching record applied; the mismatched ones left no trace.
  EXPECT_EQ(Acc.getFieldStats(Pt, 0)->Loads, LoadsBefore + 10);
  EXPECT_EQ(Acc.getFieldStats(Pt, 7), nullptr);
}

//===----------------------------------------------------------------------===//
// Global variable layout (GVL)
//===----------------------------------------------------------------------===//

const char *GvlProgram = R"(
  extern void print_i64(long v);
  long pad_a[64];
  long hot1;
  long pad_b[64];
  long hot2;
  long pad_c[64];
  long cold1;
  int main() {
    long s = 0;
    for (long r = 0; r < 4; r++)
      for (long k = 0; k < 4; k++)
        for (long i = 0; i < 256; i++) {
          hot1 = hot1 + 1;
          hot2 = hot2 + 2;
        }
    cold1 = hot1 % 13;
    s = hot1 + hot2 + cold1;
    print_i64(s);
    return 0;
  }
)";

TEST(GvlTest, HotScalarsMoveToTheFront) {
  Compiled C = compile(GvlProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  RunResult Before = runProgram(*C.M, std::move(O));
  ASSERT_FALSE(Before.Trapped);

  ProfileWeightSource WS(FB);
  GvlResult R = applyGlobalVariableLayout(*C.M, WS);
  EXPECT_TRUE(R.Changed);
  // Hot scalars first, aggregates last.
  ASSERT_GE(R.NewOrder.size(), 6u);
  EXPECT_EQ(R.NewOrder[0]->getName().substr(0, 3), "hot");
  EXPECT_EQ(R.NewOrder[1]->getName().substr(0, 3), "hot");
  EXPECT_TRUE(R.NewOrder.back()->getValueType()->isArray());
  // Module order now matches.
  EXPECT_EQ(C.M->globals()[0]->getName().substr(0, 3), "hot");

  RunResult After = runProgram(*C.M);
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts);
}

TEST(GvlTest, WeightsReflectAccessCounts) {
  Compiled C = compile(GvlProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  runProgram(*C.M, std::move(O));
  ProfileWeightSource WS(FB);
  auto Weights = computeGlobalWeights(*C.M, WS);
  double Hot1 = 0, Cold1 = 0;
  for (const auto &[G, W] : Weights) {
    if (G->getName() == "hot1")
      Hot1 = W;
    if (G->getName() == "cold1")
      Cold1 = W;
  }
  EXPECT_GT(Hot1, Cold1 * 100);
}

TEST(GvlTest, NoopWhenAlreadyOrdered) {
  Compiled C = compile(R"(
    long a;
    int main() { a = 1; return (int) a; }
  )");
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  runProgram(*C.M, std::move(O));
  ProfileWeightSource WS(FB);
  GvlResult R = applyGlobalVariableLayout(*C.M, WS);
  EXPECT_FALSE(R.Changed);
}

} // namespace
