//===- tests/profile_test.cpp - Feedback persistence and GVL tests --------===//

#include "frontend/Frontend.h"
#include "profile/FeedbackIO.h"
#include "runtime/Interpreter.h"
#include "analysis/WeightSchemes.h"
#include "transform/GlobalVarLayout.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

const char *ProfiledProgram = R"(
  extern void print_i64(long v);
  struct pt { long x; long y; };
  struct pt *arr;
  long hot_counter;
  long cold_counter;
  int main() {
    arr = (struct pt*) malloc(128 * sizeof(struct pt));
    long s = 0;
    for (long i = 0; i < 128; i++) {
      arr[i].x = i;
      arr[i].y = 2 * i;
      hot_counter = hot_counter + 1;
    }
    for (long r = 0; r < 16; r++)
      for (long i = 0; i < 128; i++) {
        s += arr[i].x;
        hot_counter = hot_counter + 1;
      }
    cold_counter = s % 7;
    print_i64(s + hot_counter + cold_counter);
    free(arr);
    return 0;
  }
)";

struct Compiled {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Compiled compile(const char *Src) {
  Compiled C;
  C.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  C.M = compileMiniC(*C.Ctx, "t", Src, Diags);
  EXPECT_TRUE(C.M) << (Diags.empty() ? "?" : Diags[0]);
  return C;
}

TEST(FeedbackIoTest, RoundTripPreservesCounts) {
  Compiled C = compile(ProfiledProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  RunResult R = runProgram(*C.M, std::move(O));
  ASSERT_FALSE(R.Trapped) << R.TrapReason;

  std::string Text = serializeFeedback(*C.M, FB);
  EXPECT_EQ(Text.rfind("slo-feedback-v1", 0), 0u);

  FeedbackFile Restored;
  FeedbackMatchResult MR = deserializeFeedback(*C.M, Text, Restored);
  ASSERT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.DroppedEntries, 0u);
  EXPECT_GT(MR.MatchedEntries, 0u);

  const Function *Main = C.M->lookupFunction("main");
  EXPECT_EQ(Restored.getEntryCount(Main), FB.getEntryCount(Main));
  for (const auto &BB : Main->blocks())
    EXPECT_EQ(Restored.getBlockCount(BB.get()), FB.getBlockCount(BB.get()))
        << BB->getName();

  RecordType *Pt = C.Ctx->getTypes().lookupRecord("pt");
  const FieldCacheStats *A = FB.getFieldStats(Pt, 0);
  const FieldCacheStats *B = Restored.getFieldStats(Pt, 0);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->Loads, B->Loads);
  EXPECT_EQ(A->Misses, B->Misses);
  EXPECT_NEAR(A->TotalLatency, B->TotalLatency,
              1e-6 * (1.0 + A->TotalLatency));
}

TEST(FeedbackIoTest, MatchesAcrossRecompilation) {
  // The PBO use phase: the profile is collected by one compilation and
  // consumed by a fresh one (different IR objects, same symbols).
  Compiled A = compile(ProfiledProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  runProgram(*A.M, std::move(O));
  std::string Text = serializeFeedback(*A.M, FB);

  Compiled B = compile(ProfiledProgram);
  FeedbackFile Restored;
  FeedbackMatchResult MR = deserializeFeedback(*B.M, Text, Restored);
  ASSERT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.DroppedEntries, 0u);
  EXPECT_EQ(Restored.getEntryCount(B.M->lookupFunction("main")), 1u);
}

TEST(FeedbackIoTest, StaleSymbolsAreDroppedSoftly) {
  Compiled A = compile(ProfiledProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  runProgram(*A.M, std::move(O));
  std::string Text = serializeFeedback(*A.M, FB);
  Text += "entry no_such_function 99\n";
  Text += "field no_such_record 0 1 2 3 4.5\n";

  Compiled B = compile(ProfiledProgram);
  FeedbackFile Restored;
  FeedbackMatchResult MR = deserializeFeedback(*B.M, Text, Restored);
  ASSERT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.DroppedEntries, 2u);
}

TEST(FeedbackIoTest, MalformedInputRejected) {
  Compiled A = compile(ProfiledProgram);
  FeedbackFile FB;
  EXPECT_FALSE(deserializeFeedback(*A.M, "not-a-feedback-file", FB).Ok);
  EXPECT_FALSE(
      deserializeFeedback(*A.M, "slo-feedback-v1\nbogus line\n", FB).Ok);
  EXPECT_FALSE(
      deserializeFeedback(*A.M, "slo-feedback-v1\nentry onlyname\n", FB)
          .Ok);
}

//===----------------------------------------------------------------------===//
// Global variable layout (GVL)
//===----------------------------------------------------------------------===//

const char *GvlProgram = R"(
  extern void print_i64(long v);
  long pad_a[64];
  long hot1;
  long pad_b[64];
  long hot2;
  long pad_c[64];
  long cold1;
  int main() {
    long s = 0;
    for (long r = 0; r < 4; r++)
      for (long k = 0; k < 4; k++)
        for (long i = 0; i < 256; i++) {
          hot1 = hot1 + 1;
          hot2 = hot2 + 2;
        }
    cold1 = hot1 % 13;
    s = hot1 + hot2 + cold1;
    print_i64(s);
    return 0;
  }
)";

TEST(GvlTest, HotScalarsMoveToTheFront) {
  Compiled C = compile(GvlProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  RunResult Before = runProgram(*C.M, std::move(O));
  ASSERT_FALSE(Before.Trapped);

  ProfileWeightSource WS(FB);
  GvlResult R = applyGlobalVariableLayout(*C.M, WS);
  EXPECT_TRUE(R.Changed);
  // Hot scalars first, aggregates last.
  ASSERT_GE(R.NewOrder.size(), 6u);
  EXPECT_EQ(R.NewOrder[0]->getName().substr(0, 3), "hot");
  EXPECT_EQ(R.NewOrder[1]->getName().substr(0, 3), "hot");
  EXPECT_TRUE(R.NewOrder.back()->getValueType()->isArray());
  // Module order now matches.
  EXPECT_EQ(C.M->globals()[0]->getName().substr(0, 3), "hot");

  RunResult After = runProgram(*C.M);
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts);
}

TEST(GvlTest, WeightsReflectAccessCounts) {
  Compiled C = compile(GvlProgram);
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  runProgram(*C.M, std::move(O));
  ProfileWeightSource WS(FB);
  auto Weights = computeGlobalWeights(*C.M, WS);
  double Hot1 = 0, Cold1 = 0;
  for (const auto &[G, W] : Weights) {
    if (G->getName() == "hot1")
      Hot1 = W;
    if (G->getName() == "cold1")
      Cold1 = W;
  }
  EXPECT_GT(Hot1, Cold1 * 100);
}

TEST(GvlTest, NoopWhenAlreadyOrdered) {
  Compiled C = compile(R"(
    long a;
    int main() { a = 1; return (int) a; }
  )");
  FeedbackFile FB;
  RunOptions O;
  O.Profile = &FB;
  runProgram(*C.M, std::move(O));
  ProfileWeightSource WS(FB);
  GvlResult R = applyGlobalVariableLayout(*C.M, WS);
  EXPECT_FALSE(R.Changed);
}

} // namespace
