//===- tests/workloads_test.cpp - Benchmark workload integration tests ----===//

#include "frontend/Frontend.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct Built {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Built buildWorkload(const Workload &W) {
  Built B;
  B.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  B.M = compileProgram(*B.Ctx, W.Name, W.Sources, Diags);
  EXPECT_TRUE(B.M) << W.Name << ": "
                   << (Diags.empty() ? "?" : Diags[0]);
  return B;
}

static RunOptions paramsOf(const std::map<std::string, int64_t> &P) {
  RunOptions O;
  O.IntParams = P;
  return O;
}

class WorkloadSuite : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadSuite, CompilesAndRunsClean) {
  const Workload &W = allWorkloads()[GetParam()];
  Built B = buildWorkload(W);
  ASSERT_TRUE(B.M);
  RunResult R = runProgram(*B.M, paramsOf(W.TrainParams));
  EXPECT_FALSE(R.Trapped) << W.Name << ": " << R.TrapReason;
  EXPECT_GT(R.Instructions, 1000u) << W.Name;
}

TEST_P(WorkloadSuite, Table1CensusMatchesPaper) {
  const Workload &W = allWorkloads()[GetParam()];
  Built B = buildWorkload(W);
  ASSERT_TRUE(B.M);
  LegalityResult Legal = analyzeLegality(*B.M);
  EXPECT_EQ(Legal.types().size(), W.Paper.Types) << W.Name;
  EXPECT_EQ(Legal.legalTypes(false).size(), W.Paper.Legal) << W.Name;
  EXPECT_EQ(Legal.legalTypes(true).size(), W.Paper.Relax) << W.Name;
}

TEST_P(WorkloadSuite, StaticTransformPreservesSemantics) {
  const Workload &W = allWorkloads()[GetParam()];
  Built Ref = buildWorkload(W);
  ASSERT_TRUE(Ref.M);
  RunResult Before = runProgram(*Ref.M, paramsOf(W.TrainParams));
  ASSERT_FALSE(Before.Trapped) << W.Name << ": " << Before.TrapReason;

  Built B = buildWorkload(W);
  ASSERT_TRUE(B.M);
  PipelineOptions Opts; // ISPBO static heuristics.
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts);
  RunResult After = runProgram(*B.M, paramsOf(W.TrainParams));
  ASSERT_FALSE(After.Trapped) << W.Name << ": " << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts) << W.Name;
  ASSERT_EQ(Before.PrintedFloats.size(), After.PrintedFloats.size());
  for (size_t I = 0; I < Before.PrintedFloats.size(); ++I)
    EXPECT_DOUBLE_EQ(Before.PrintedFloats[I], After.PrintedFloats[I])
        << W.Name;
  (void)P;
}

TEST_P(WorkloadSuite, PboTransformPreservesSemantics) {
  const Workload &W = allWorkloads()[GetParam()];
  Built Ref = buildWorkload(W);
  ASSERT_TRUE(Ref.M);
  RunResult Before = runProgram(*Ref.M, paramsOf(W.TrainParams));
  ASSERT_FALSE(Before.Trapped);

  Built B = buildWorkload(W);
  ASSERT_TRUE(B.M);
  // Collect the training profile, then compile with PBO.
  FeedbackFile Train;
  RunOptions ProfOpts = paramsOf(W.TrainParams);
  ProfOpts.Profile = &Train;
  RunResult ProfRun = runProgram(*B.M, std::move(ProfOpts));
  ASSERT_FALSE(ProfRun.Trapped) << W.Name << ": " << ProfRun.TrapReason;

  PipelineOptions Opts;
  Opts.Scheme = WeightScheme::PBO;
  runStructLayoutPipeline(*B.M, Opts, &Train);
  RunResult After = runProgram(*B.M, paramsOf(W.TrainParams));
  ASSERT_FALSE(After.Trapped) << W.Name << ": " << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts) << W.Name;
  ASSERT_EQ(Before.PrintedFloats.size(), After.PrintedFloats.size());
  for (size_t I = 0; I < Before.PrintedFloats.size(); ++I)
    EXPECT_DOUBLE_EQ(Before.PrintedFloats[I], After.PrintedFloats[I])
        << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSuite,
                         ::testing::Range<size_t>(0, 12),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string N =
                               allWorkloads()[Info.param].Name;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(WorkloadDetails, McfNodeIsTheLegalType) {
  const Workload *W = findWorkload("181.mcf");
  ASSERT_NE(W, nullptr);
  Built B = buildWorkload(*W);
  ASSERT_TRUE(B.M);
  LegalityResult Legal = analyzeLegality(*B.M);
  std::vector<RecordType *> LegalTypes = Legal.legalTypes(false);
  ASSERT_EQ(LegalTypes.size(), 1u);
  EXPECT_EQ(LegalTypes[0]->getRecordName(), "node");
  EXPECT_EQ(LegalTypes[0]->getNumFields(), 15u);
  // The relaxed set adds arc (ATKN) and basket (CSTT).
  std::vector<RecordType *> Relaxed = Legal.legalTypes(true);
  EXPECT_EQ(Relaxed.size(), 3u);
}

TEST(WorkloadDetails, McfSplitsNodeUnderPbo) {
  const Workload *W = findWorkload("181.mcf");
  Built B = buildWorkload(*W);
  ASSERT_TRUE(B.M);
  FeedbackFile Train;
  RunOptions ProfOpts = paramsOf(W->TrainParams);
  ProfOpts.Profile = &Train;
  runProgram(*B.M, std::move(ProfOpts));

  PipelineOptions Opts;
  Opts.Scheme = WeightScheme::PBO;
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts, &Train);
  ASSERT_EQ(P.Summary.TypesTransformed, 1u);
  const AppliedTransform &A = P.Summary.Applied[0];
  EXPECT_EQ(A.Plan.Rec->getRecordName(), "node");
  EXPECT_EQ(A.Plan.Kind, TransformKind::Split);
  // ident is unused; several cold fields split out.
  EXPECT_EQ(A.Plan.UnusedFields.size(), 1u);
  EXPECT_GE(A.Plan.ColdFields.size(), 2u);
  // The hot record must be smaller than the original 15-field node.
  ASSERT_NE(A.Split.HotRec, nullptr);
  EXPECT_LT(A.Split.HotRec->getSize(), A.Plan.Rec->getSize());
}

TEST(WorkloadDetails, ArtPeelsF1Neuron) {
  const Workload *W = findWorkload("179.art");
  Built B = buildWorkload(*W);
  ASSERT_TRUE(B.M);
  PipelineOptions Opts; // Static heuristics suffice: peel is structural.
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts);
  ASSERT_EQ(P.Summary.TypesTransformed, 1u);
  const AppliedTransform &A = P.Summary.Applied[0];
  EXPECT_EQ(A.Plan.Rec->getRecordName(), "f1_neuron");
  EXPECT_EQ(A.Plan.Kind, TransformKind::Peel);
  EXPECT_EQ(A.Peel.GroupRecs.size(), 8u);
}

TEST(WorkloadDetails, MoldynSplitsParticle) {
  const Workload *W = findWorkload("moldyn");
  Built B = buildWorkload(*W);
  ASSERT_TRUE(B.M);
  FeedbackFile Train;
  RunOptions ProfOpts = paramsOf(W->TrainParams);
  ProfOpts.Profile = &Train;
  runProgram(*B.M, std::move(ProfOpts));
  PipelineOptions Opts;
  Opts.Scheme = WeightScheme::PBO;
  PipelineResult P = runStructLayoutPipeline(*B.M, Opts, &Train);
  // particle splits; neighbor_rec is admitted by the points-to proofs
  // (its ATKN site is discharged) and gets dead-field removal.
  ASSERT_EQ(P.Summary.TypesTransformed, 2u);
  const AppliedTransform *A = nullptr;
  for (const AppliedTransform &T : P.Summary.Applied)
    if (T.Plan.Rec->getRecordName() == "particle")
      A = &T;
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Plan.Kind, TransformKind::Split);
  // Velocities and mass go cold.
  EXPECT_GE(A->Plan.ColdFields.size(), 3u);
}

TEST(WorkloadDetails, CaseStudiesCompileAndRun) {
  for (const Workload *W :
       {&caseStudyHotStruct(), &caseStudyTwoField()}) {
    Built B = buildWorkload(*W);
    ASSERT_TRUE(B.M) << W->Name;
    RunResult R = runProgram(*B.M, paramsOf(W->TrainParams));
    EXPECT_FALSE(R.Trapped) << W->Name << ": " << R.TrapReason;
  }
}

TEST(WorkloadDetails, GeneratorIsDeterministic) {
  const Workload *A = findWorkload("povray");
  ASSERT_NE(A, nullptr);
  // Re-fetching produces the identical source text.
  const Workload *B = findWorkload("povray");
  EXPECT_EQ(A->Sources, B->Sources);
}

} // namespace
