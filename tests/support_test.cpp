//===- tests/support_test.cpp - Support + lexer/parser detail tests -------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "transform/RewriteUtils.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace slo;

namespace {

TEST(FormatTest, BasicFormatting) {
  EXPECT_EQ(formatString("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(formatString("%.2f", 3.14159), "3.14");
  EXPECT_EQ(formatString("%s", "x"), "x");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(FormatTest, LongStringsAreNotTruncated) {
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 500u);
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(RngTest, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, ChanceBoundsAreExact) {
  Rng R(11);
  for (int I = 0; I < 200; ++I) {
    EXPECT_FALSE(R.nextChance(0.0));
    EXPECT_TRUE(R.nextChance(1.0));
  }
  // A mid probability must produce both outcomes over a long run.
  Rng S(12);
  int Trues = 0;
  for (int I = 0; I < 1000; ++I)
    Trues += S.nextChance(0.5);
  EXPECT_GT(Trues, 300);
  EXPECT_LT(Trues, 700);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng A(99), B(99);
  for (int I = 0; I < 10; ++I) {
    Rng CA = A.split();
    Rng CB = B.split();
    for (int J = 0; J < 20; ++J)
      EXPECT_EQ(CA.next(), CB.next());
  }
}

TEST(RngTest, SplitChildrenAreDecorrelated) {
  // Children split from one parent must differ from each other and from
  // the parent's own continuation stream.
  Rng Parent(123);
  Rng C1 = Parent.split();
  Rng C2 = Parent.split();
  bool ChildrenDiffer = false, ParentDiffers = false;
  for (int I = 0; I < 20; ++I) {
    uint64_t V1 = C1.next(), V2 = C2.next();
    ChildrenDiffer |= V1 != V2;
    ParentDiffers |= V1 != Parent.next();
  }
  EXPECT_TRUE(ChildrenDiffer);
  EXPECT_TRUE(ParentDiffers);
}

TEST(RngTest, SplitUpFrontIsConsumptionOrderIndependent) {
  // The fuzz driver splits all shard streams up front; each child's
  // sequence must not depend on when (or whether) the other children are
  // consumed.
  Rng P1(777);
  Rng A1 = P1.split();
  Rng B1 = P1.split();
  std::vector<uint64_t> AFirst, BSecond;
  for (int I = 0; I < 16; ++I)
    AFirst.push_back(A1.next());
  for (int I = 0; I < 16; ++I)
    BSecond.push_back(B1.next());

  Rng P2(777);
  Rng A2 = P2.split();
  Rng B2 = P2.split();
  // Consume in the opposite order this time.
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(B2.next(), BSecond[I]);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(A2.next(), AFirst[I]);
}

static std::vector<Token> lex(const char *Src, std::string &Err) {
  Lexer L(Src);
  return L.lexAll(Err);
}

TEST(LexerTest, TokenKinds) {
  std::string Err;
  auto Toks = lex("struct foo { int a; } x->y += 0x1F 2.5e3 // c\n != <=",
                  Err);
  ASSERT_TRUE(Err.empty()) << Err;
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds[0], TokKind::KwStruct);
  EXPECT_EQ(Kinds[1], TokKind::Identifier);
  EXPECT_EQ(Kinds[2], TokKind::LBrace);
  EXPECT_EQ(Kinds[3], TokKind::KwInt);
  EXPECT_EQ(Kinds[6], TokKind::RBrace);
  EXPECT_EQ(Kinds[8], TokKind::Arrow);
  EXPECT_EQ(Kinds[10], TokKind::PlusAssign);
}

TEST(LexerTest, NumericLiterals) {
  std::string Err;
  auto Toks = lex("0x1F 42 2.5 1e3 7", Err);
  ASSERT_TRUE(Err.empty());
  EXPECT_EQ(Toks[0].Kind, TokKind::IntLiteral);
  EXPECT_EQ(Toks[0].IntValue, 31);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].Kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Toks[2].FloatValue, 2.5);
  EXPECT_EQ(Toks[3].Kind, TokKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Toks[3].FloatValue, 1000.0);
  EXPECT_EQ(Toks[4].IntValue, 7);
}

TEST(LexerTest, CommentsAreSkipped) {
  std::string Err;
  auto Toks = lex("a /* block \n comment */ b // line\nc", Err);
  ASSERT_TRUE(Err.empty());
  ASSERT_GE(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[2].Text, "c");
}

TEST(LexerTest, UnterminatedCommentErrors) {
  std::string Err;
  lex("a /* never closed", Err);
  EXPECT_FALSE(Err.empty());
}

TEST(LexerTest, UnknownCharacterErrors) {
  std::string Err;
  lex("a $ b", Err);
  EXPECT_FALSE(Err.empty());
}

TEST(LexerTest, LineNumbersTracked) {
  std::string Err;
  auto Toks = lex("a\nbb\n  c", Err);
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[2].Line, 3u);
}

static std::unique_ptr<TranslationUnit> parse(const char *Src,
                                              std::vector<std::string> &D) {
  Lexer L(Src);
  std::string Err;
  auto Toks = L.lexAll(Err);
  EXPECT_TRUE(Err.empty());
  Parser P(std::move(Toks), D);
  return P.parse();
}

TEST(ParserTest, TopLevelShapes) {
  std::vector<std::string> D;
  auto TU = parse(R"(
    struct s { long a; long b[4]; long (*cb)(long); };
    long g;
    long arr[8];
    extern void ext(long v);
    long f(long x, struct s *p) { return x; }
  )",
                  D);
  ASSERT_TRUE(TU) << (D.empty() ? "?" : D[0]);
  EXPECT_EQ(TU->Structs.size(), 1u);
  EXPECT_EQ(TU->Structs[0].Fields.size(), 3u);
  EXPECT_EQ(TU->Structs[0].Fields[1].ArraySize, 4u);
  EXPECT_EQ(TU->Structs[0].Fields[2].Ty.Base, TypeSpec::BK_FnPtr);
  EXPECT_EQ(TU->Globals.size(), 2u);
  EXPECT_EQ(TU->Globals[1].ArraySize, 8u);
  ASSERT_EQ(TU->Functions.size(), 2u);
  EXPECT_TRUE(TU->Functions[0].IsExtern);
  EXPECT_FALSE(TU->Functions[1].IsExtern);
  EXPECT_EQ(TU->Functions[1].Params.size(), 2u);
}

TEST(ParserTest, PrecedenceNesting) {
  std::vector<std::string> D;
  auto TU = parse("long f() { return 1 + 2 * 3 - 4 / 2; }", D);
  ASSERT_TRUE(TU);
  const auto *Body = static_cast<BlockStmt *>(TU->Functions[0].Body.get());
  const auto *Ret = static_cast<ReturnStmt *>(Body->Stmts[0].get());
  // Top node is the subtraction.
  const auto *Sub = static_cast<BinaryExpr *>(Ret->E.get());
  ASSERT_EQ(Sub->Kind, Expr::EK_Binary);
  EXPECT_EQ(Sub->Op, BinaryExpr::BO_Sub);
  const auto *Add = static_cast<BinaryExpr *>(Sub->LHS.get());
  EXPECT_EQ(Add->Op, BinaryExpr::BO_Add);
  const auto *Div = static_cast<BinaryExpr *>(Sub->RHS.get());
  EXPECT_EQ(Div->Op, BinaryExpr::BO_Div);
}

TEST(ParserTest, DanglingElseBindsInner) {
  std::vector<std::string> D;
  auto TU = parse("long f(long a) { if (a) if (a > 1) return 1; "
                  "else return 2; return 3; }",
                  D);
  ASSERT_TRUE(TU);
  const auto *Body = static_cast<BlockStmt *>(TU->Functions[0].Body.get());
  const auto *Outer = static_cast<IfStmt *>(Body->Stmts[0].get());
  EXPECT_EQ(Outer->Else, nullptr); // else bound to the inner if.
  const auto *Inner = static_cast<IfStmt *>(Outer->Then.get());
  EXPECT_NE(Inner->Else, nullptr);
}

TEST(ParserTest, ErrorsReported) {
  std::vector<std::string> D;
  auto TU = parse("long f( { return 0; }", D);
  EXPECT_FALSE(TU);
  EXPECT_FALSE(D.empty());
}

TEST(RemapTypeTest, RecursiveSubstitution) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  RecordType *Old = T.getOrCreateRecord("old");
  Old->setFields({{"a", T.getI64(), 0, 0}});
  RecordType *New = T.getOrCreateRecord("new");
  New->setFields({{"a", T.getI64(), 0, 0}});

  EXPECT_EQ(remapType(T, Old, Old, New), New);
  EXPECT_EQ(remapType(T, T.getPointerType(Old), Old, New),
            T.getPointerType(New));
  EXPECT_EQ(remapType(T, T.getPointerType(T.getPointerType(Old)), Old, New),
            T.getPointerType(T.getPointerType(New)));
  EXPECT_EQ(remapType(T, T.getArrayType(Old, 3), Old, New),
            T.getArrayType(New, 3));
  FunctionType *FT =
      T.getFunctionType(T.getPointerType(Old), {T.getI32()});
  auto *Remapped = static_cast<FunctionType *>(remapType(T, FT, Old, New));
  EXPECT_EQ(Remapped->getReturnType(), T.getPointerType(New));
  // Types not involving Old are returned unchanged (same pointer).
  EXPECT_EQ(remapType(T, T.getI64(), Old, New), T.getI64());
  EXPECT_EQ(remapType(T, T.getPointerType(T.getF64()), Old, New),
            T.getPointerType(T.getF64()));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.enqueue([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.enqueue([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.enqueue([&Count] { ++Count; });
  Pool.enqueue([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I < 50; ++I)
      Pool.enqueue([&Count] { ++Count; });
    // No wait(): the destructor must still run every queued task.
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPoolTest, IndexAddressedResultsAreDeterministic) {
  // The bench harness pattern: each task owns one output slot, so the
  // reduced result is independent of scheduling order.
  ThreadPool Pool(4);
  std::vector<int> Out(64, 0);
  for (size_t I = 0; I < Out.size(); ++I)
    Pool.enqueue([&Out, I] { Out[I] = static_cast<int>(I * I); });
  Pool.wait();
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], static_cast<int>(I * I));
}

TEST(DiagnosticsTest, EscapeJsonHandlesHostileStrings) {
  EXPECT_EQ(escapeJson("plain"), "plain");
  EXPECT_EQ(escapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeJson("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(escapeJson(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(escapeJson("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(escapeJson("tab\there"), "tab\\there");
}

TEST(DiagnosticsTest, RenderJsonEscapesRecordAndFieldNames) {
  // Record/field names come from user source; a hostile name must not
  // be able to break the JSON array the tooling consumes.
  DiagnosticEngine E;
  Diagnostic &D =
      E.report(DiagSeverity::Warning, "CSTT", "cast of \"rec\"\nto char*");
  D.RecordName = "rec\"ord\\1";
  D.Function = "f\tn";
  D.Site = "bitcast 'p' in \"g\"";

  std::string Json = E.renderJson();
  EXPECT_NE(Json.find("rec\\\"ord\\\\1"), std::string::npos);
  EXPECT_NE(Json.find("f\\tn"), std::string::npos);
  EXPECT_NE(Json.find("cast of \\\"rec\\\"\\nto char*"), std::string::npos);
  // No raw control characters or unescaped quotes survive into the
  // output: every '"' is either structural or preceded by a backslash.
  for (size_t I = 0; I < Json.size(); ++I)
    EXPECT_GE(static_cast<unsigned char>(Json[I]), 0x20u) << "at " << I;
}

} // namespace
