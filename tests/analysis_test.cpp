//===- tests/analysis_test.cpp - Analysis library unit tests --------------===//

#include "analysis/Legality.h"
#include "analysis/StaticEstimator.h"
#include "analysis/WeightSchemes.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct Compiled {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Compiled compile(const char *Src) {
  Compiled C;
  C.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  C.M = compileMiniC(*C.Ctx, "t", Src, Diags);
  EXPECT_TRUE(C.M) << (Diags.empty() ? "?" : Diags[0]);
  return C;
}

static uint32_t violationsOf(const char *Src, const char *RecName) {
  Compiled C = compile(Src);
  if (!C.M)
    return ~0u;
  LegalityResult L = analyzeLegality(*C.M);
  RecordType *R = C.Ctx->getTypes().lookupRecord(RecName);
  EXPECT_NE(R, nullptr);
  return L.get(R).Violations;
}

TEST(LegalityTest, CleanHeapTypeIsLegal) {
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; long c; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(16 * sizeof(struct s));
      p[3].a = 1;
      return 0;
    }
  )", "s");
  EXPECT_EQ(V, 0u) << violationMaskToString(V);
}

TEST(LegalityTest, MallocCastIsTolerated) {
  // The (struct s*) cast of the malloc result must NOT be CSTT.
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; };
    struct s *p;
    int main() { p = (struct s*) malloc(10 * sizeof(struct s)); return 0; }
  )", "s");
  EXPECT_FALSE(V & violationBit(Violation::CSTT));
}

TEST(LegalityTest, WrapperAllocationIsInvalidated) {
  // Paper: "types allocated in wrapper functions returning (void*) will
  // be invalidated" -- the cast source is a call, not a malloc.
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; };
    struct s *p;
    void *wrap(long bytes) { return malloc(bytes); }
    int main() {
      p = (struct s*) wrap(10 * sizeof(struct s));
      return 0;
    }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::CSTT)) << violationMaskToString(V);
}

TEST(LegalityTest, CastFromRecordIsCSTF) {
  uint32_t V = violationsOf(R"(
    struct s { long a; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      long *raw = (long*) p;
      return (int) raw[0];
    }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::CSTF)) << violationMaskToString(V);
}

TEST(LegalityTest, CastBetweenRecordsFlagsBoth) {
  Compiled C = compile(R"(
    struct a { long x; long y; };
    struct b { long u; long v; };
    struct a *pa;
    int main() {
      pa = (struct a*) malloc(4 * sizeof(struct a));
      struct b *pb = (struct b*) pa;
      pb->u = 1;
      return 0;
    }
  )");
  LegalityResult L = analyzeLegality(*C.M);
  EXPECT_TRUE(L.get(C.Ctx->getTypes().lookupRecord("a"))
                  .hasViolation(Violation::CSTF));
  EXPECT_TRUE(L.get(C.Ctx->getTypes().lookupRecord("b"))
                  .hasViolation(Violation::CSTT));
}

TEST(LegalityTest, AddressOfFieldIsATKN) {
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; };
    struct s *p;
    long *stash;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      stash = &p->b;   // address stored: ATKN
      return 0;
    }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::ATKN)) << violationMaskToString(V);
}

TEST(LegalityTest, FieldAddressInCallIsTolerated) {
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; };
    struct s *p;
    void sink(long *x) { *x = 3; }
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      sink(&p->b);   // tolerated per the paper
      return 0;
    }
  )", "s");
  EXPECT_FALSE(V & violationBit(Violation::ATKN)) << violationMaskToString(V);
}

TEST(LegalityTest, EscapeToLibFunctionIsLIBC) {
  uint32_t V = violationsOf(R"(
    extern void fwrite_like(struct s *p);
    struct s { long a; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      fwrite_like(p);
      return 0;
    }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::LIBC)) << violationMaskToString(V);
}

TEST(LegalityTest, EscapeToIndirectCallIsIND) {
  uint32_t V = violationsOf(R"(
    struct s { long a; };
    struct s *p;
    void taker(struct s *q) { q->a = 1; }
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      void (*fn)(struct s*);
      fn = taker;
      fn(p);
      return 0;
    }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::IND)) << violationMaskToString(V);
}

TEST(LegalityTest, SmallConstantAllocationIsSMAL) {
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; };
    struct s *p;
    int main() { p = (struct s*) malloc(sizeof(struct s)); return 0; }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::SMAL)) << violationMaskToString(V);
}

TEST(LegalityTest, MemsetOnTypeIsMSET) {
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(8 * sizeof(struct s));
      memset(p, 0, 8 * sizeof(struct s));
      return 0;
    }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::MSET)) << violationMaskToString(V);
}

TEST(LegalityTest, NestedRecordsAreNEST) {
  Compiled C = compile(R"(
    struct inner { long a; };
    struct outer { struct inner in; long b; };
    int main() { struct outer o; o.b = 1; return 0; }
  )");
  LegalityResult L = analyzeLegality(*C.M);
  EXPECT_TRUE(L.get(C.Ctx->getTypes().lookupRecord("outer"))
                  .hasViolation(Violation::NEST));
  EXPECT_TRUE(L.get(C.Ctx->getTypes().lookupRecord("inner"))
                  .hasViolation(Violation::NEST));
}

TEST(LegalityTest, UnanalyzableAllocSizeIsUNSZ) {
  uint32_t V = violationsOf(R"(
    struct s { long a; long b; };
    struct s *p;
    long param_n;
    int main() {
      p = (struct s*) malloc(param_n * 16 + 8);
      return 0;
    }
  )", "s");
  EXPECT_TRUE(V & violationBit(Violation::UNSZ)) << violationMaskToString(V);
}

TEST(LegalityTest, RelaxToleratesCastsAndAddresses) {
  Compiled C = compile(R"(
    struct s { long a; long b; };
    struct s *p;
    long *stash;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      stash = &p->b;
      long *raw = (long*) p;
      return (int) raw[0];
    }
  )");
  LegalityResult L = analyzeLegality(*C.M);
  const TypeLegality &TL = L.get(C.Ctx->getTypes().lookupRecord("s"));
  EXPECT_FALSE(TL.isLegal(false));
  EXPECT_TRUE(TL.isLegal(true));
}

TEST(LegalityTest, AttributesCollected) {
  Compiled C = compile(R"(
    struct s { long a; };
    struct s g;             // global instance
    struct s *gp;           // global pointer
    int main() {
      struct s l;           // local instance
      struct s *lp = &l;    // local pointer
      lp->a = 1;
      g.a = 2;
      gp = (struct s*) malloc(4 * sizeof(struct s));
      free(gp);
      return 0;
    }
  )");
  LegalityResult L = analyzeLegality(*C.M);
  const TypeAttributes &A =
      L.get(C.Ctx->getTypes().lookupRecord("s")).Attrs;
  EXPECT_TRUE(A.HasGlobalVar);
  EXPECT_TRUE(A.HasGlobalPtr);
  EXPECT_TRUE(A.HasLocalVar);
  EXPECT_TRUE(A.HasLocalPtr);
  EXPECT_TRUE(A.DynamicallyAllocated);
  EXPECT_TRUE(A.Freed);
  EXPECT_FALSE(A.Reallocated);
}

TEST(StaticEstimatorTest, LoopBlocksAreHotterThanEntry) {
  Compiled C = compile(R"(
    long f(long n) {
      long s = 0;
      for (long i = 0; i < n; i++) s += i;
      return s;
    }
    int main() { return (int) f(10); }
  )");
  StaticEstimator SE(*C.M);
  const Function *F = C.M->lookupFunction("f");
  const auto &A = SE.get(F);
  double EntryFreq = A.BF->get(F->getEntry());
  EXPECT_NEAR(EntryFreq, 1.0, 1e-9);
  double MaxFreq = 0;
  for (const auto &BB : F->blocks())
    MaxFreq = std::max(MaxFreq, A.BF->get(BB.get()));
  // Loop body should run ~ 1/(1-0.88) ~ 8.3 times.
  EXPECT_GT(MaxFreq, 4.0);
  EXPECT_LT(MaxFreq, 20.0);
}

TEST(StaticEstimatorTest, NestedLoopsMultiply) {
  Compiled C = compile(R"(
    long f(long n) {
      long s = 0;
      for (long i = 0; i < n; i++)
        for (long j = 0; j < n; j++)
          s += i * j;
      return s;
    }
    int main() { return (int) f(3); }
  )");
  StaticEstimator SE(*C.M);
  const Function *F = C.M->lookupFunction("f");
  const auto &A = SE.get(F);
  double MaxFreq = 0;
  for (const auto &BB : F->blocks())
    MaxFreq = std::max(MaxFreq, A.BF->get(BB.get()));
  // Inner body ~ 8.3^2 ~ 69.
  EXPECT_GT(MaxFreq, 30.0);
}

TEST(InterProcTest, CalleeInLoopIsHotterThanCaller) {
  Compiled C = compile(R"(
    struct s { long a; long b; };
    struct s *p;
    long leaf(long i) { return i * 2; }
    int main() {
      p = (struct s*) malloc(8 * sizeof(struct s));
      long s = 0;
      for (long i = 0; i < 100; i++)
        for (long j = 0; j < 100; j++)
          s += leaf(j);
      return (int) s;
    }
  )");
  StaticEstimator SE(*C.M);
  CallGraph CG(*C.M);
  InterProcFrequencies IPF(SE, CG);
  const Function *Main = C.M->lookupFunction("main");
  const Function *Leaf = C.M->lookupFunction("leaf");
  EXPECT_NEAR(IPF.getGlobalCount(Main), 1.0, 1e-9);
  EXPECT_GT(IPF.getGlobalCount(Leaf), 10.0);
  EXPECT_GT(IPF.getScale(Leaf), IPF.getScale(Main));
}

TEST(InterProcTest, RecursionDoesNotDiverge) {
  Compiled C = compile(R"(
    long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { return (int) fib(10); }
  )");
  StaticEstimator SE(*C.M);
  CallGraph CG(*C.M);
  InterProcFrequencies IPF(SE, CG);
  const Function *Fib = C.M->lookupFunction("fib");
  double N = IPF.getGlobalCount(Fib);
  EXPECT_GT(N, 0.0);
  EXPECT_LT(N, 1e6); // Bounded (single relaxation pass).
}

TEST(AffinityTest, SameLoopFieldsAreAffine) {
  Compiled C = compile(R"(
    struct s { long a; long b; long c; };
    struct s *p;
    long param_n;
    int main() {
      p = (struct s*) malloc(param_n * sizeof(struct s));
      long s = 0;
      for (long i = 0; i < param_n; i++)
        s += p[i].a + p[i].b;   // a,b affine
      for (long i = 0; i < param_n; i++)
        s += p[i].c;            // c alone
      return (int) s;
    }
  )");
  SchemeInputs In;
  In.M = C.M.get();
  FieldStatsResult Stats = computeSchemeFieldStats(WeightScheme::SPBO, In);
  const TypeFieldStats *S =
      Stats.get(C.Ctx->getTypes().lookupRecord("s"));
  ASSERT_NE(S, nullptr);
  EXPECT_GT(S->Affinity.count({0, 1}), 0u);
  EXPECT_EQ(S->Affinity.count({0, 2}), 0u);
  EXPECT_EQ(S->Affinity.count({1, 2}), 0u);
  EXPECT_GT(S->Affinity.count({2, 2}), 0u); // Self-edge for the singleton.
  EXPECT_GT(S->Hotness[0], 0.0);
  EXPECT_GT(S->Hotness[2], 0.0);
}

TEST(AffinityTest, HotterLoopDominatesHotness) {
  Compiled C = compile(R"(
    struct s { long hot; long cold; };
    struct s *p;
    long param_n;
    int main() {
      p = (struct s*) malloc(param_n * sizeof(struct s));
      long s = 0;
      for (long r = 0; r < 100; r++)
        for (long i = 0; i < param_n; i++)
          s += p[i].hot;
      for (long i = 0; i < param_n; i++)
        s += p[i].cold;
      return (int) s;
    }
  )");
  SchemeInputs In;
  In.M = C.M.get();
  FieldStatsResult Stats = computeSchemeFieldStats(WeightScheme::ISPBO, In);
  const TypeFieldStats *S =
      Stats.get(C.Ctx->getTypes().lookupRecord("s"));
  ASSERT_NE(S, nullptr);
  EXPECT_GT(S->Hotness[0], S->Hotness[1] * 2.0);
  std::vector<double> Rel = S->relativeHotness();
  EXPECT_NEAR(Rel[0], 100.0, 1e-9);
  EXPECT_LT(Rel[1], 50.0);
}

TEST(AffinityTest, ReadsAndWritesAreSeparated) {
  Compiled C = compile(R"(
    struct s { long r_only; long w_only; };
    struct s *p;
    long param_n;
    int main() {
      p = (struct s*) malloc(param_n * sizeof(struct s));
      long s = 0;
      for (long i = 0; i < param_n; i++) {
        s += p[i].r_only;
        p[i].w_only = i;
      }
      return (int) s;
    }
  )");
  SchemeInputs In;
  In.M = C.M.get();
  FieldStatsResult Stats = computeSchemeFieldStats(WeightScheme::SPBO, In);
  const TypeFieldStats *S =
      Stats.get(C.Ctx->getTypes().lookupRecord("s"));
  ASSERT_NE(S, nullptr);
  EXPECT_GT(S->Reads[0], 0.0);
  EXPECT_EQ(S->Writes[0], 0.0);
  EXPECT_EQ(S->Reads[1], 0.0);
  EXPECT_GT(S->Writes[1], 0.0);
}

} // namespace
