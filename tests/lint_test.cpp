//===- tests/lint_test.cpp - Layout-hazard lint suite unit tests ----------===//

#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "analysis/PointsTo.h"
#include "analysis/lint/Lint.h"
#include "frontend/Frontend.h"
#include "ir/Module.h"
#include "observability/CounterRegistry.h"
#include "support/Diagnostics.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace slo;

namespace {

struct Linted {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
  LegalityResult Legal;
  PointsToResult PT;
  LintResult R;
};

Linted lint(const std::vector<std::string> &Sources,
            const LintOptions &Opts = LintOptions()) {
  Linted L;
  L.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  L.M = compileProgram(*L.Ctx, "t", Sources, Diags);
  EXPECT_TRUE(L.M) << (Diags.empty() ? "?" : Diags[0]);
  L.Legal = analyzeLegality(*L.M);
  L.PT = analyzePointsTo(*L.M);
  L.R = runLint(*L.M, &L.PT, &L.Legal, Opts);
  return L;
}

Linted lint(const char *Src, const LintOptions &Opts = LintOptions()) {
  return lint(std::vector<std::string>{Src}, Opts);
}

TEST(LintTest, UseAfterFreeAndKindNames) {
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(2 * sizeof(struct s));
      p->a = 7;
      free(p);
      print_i64(p->a);
      return 0;
    }
  )");
  EXPECT_EQ(L.R.count(LintKind::UseAfterFree), 1u);
  EXPECT_TRUE(L.R.hasErrors());
  EXPECT_STREQ(lintKindName(LintKind::UseAfterFree), "use-after-free");
  ASSERT_FALSE(L.R.Findings.empty());
  EXPECT_EQ(L.R.Findings[0].Function, "main");
}

TEST(LintTest, DoubleFree) {
  Linted L = lint(R"(
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(4 * sizeof(struct s));
      p->a = 1;
      free(p);
      free(p);
      return 0;
    }
  )");
  EXPECT_EQ(L.R.count(LintKind::DoubleFree), 1u);
  // The first free is fine; only the second is flagged.
  EXPECT_EQ(L.R.count(LintKind::InvalidFree), 0u);
}

TEST(LintTest, InteriorFreeIsInvalid) {
  Linted L = lint(R"(
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(4 * sizeof(struct s));
      p->a = 1;
      long *q = &p[1].a;
      free(q);
      free(p);
      return 0;
    }
  )");
  EXPECT_EQ(L.R.count(LintKind::InvalidFree), 1u);
}

TEST(LintTest, UninitReadOfHeapField) {
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; long c; };
    int main() {
      struct s *p = (struct s*) malloc(2 * sizeof(struct s));
      p->a = 1;
      print_i64(p[1].b);
      free(p);
      return 0;
    }
  )");
  EXPECT_EQ(L.R.count(LintKind::UninitRead), 1u);
}

TEST(LintTest, CallocAndMemsetSuppressUninit) {
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) calloc(2, sizeof(struct s));
      print_i64(p[1].b);
      struct s *q = (struct s*) malloc(2 * sizeof(struct s));
      memset(q, 0, 2 * sizeof(struct s));
      print_i64(q[1].a);
      free(p);
      free(q);
      return 0;
    }
  )");
  EXPECT_EQ(L.R.count(LintKind::UninitRead), 0u);
  EXPECT_FALSE(L.R.hasErrors());
}

TEST(LintTest, LoopInitializationIsNotUninit) {
  // The init store's index is a loop variable, so the whole allocation
  // becomes may-initialized: no definite claim survives.
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(8 * sizeof(struct s));
      for (long i = 0; i < 8; i++) { p[i].a = i; p[i].b = i * 2; }
      long t = 0;
      for (long i = 0; i < 8; i++) { t += p[i].b; }
      print_i64(t);
      free(p);
      return 0;
    }
  )");
  EXPECT_FALSE(L.R.hasErrors());
}

TEST(LintTest, MustNullDerefAndEdgeRefinement) {
  Linted Bad = lint(R"(
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) 0;
      p->a = 1;
      return 0;
    }
  )");
  EXPECT_EQ(Bad.R.count(LintKind::NullDeref), 1u);

  // The guarded dereference happens only on the non-null edge: silent.
  Linted Guarded = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; };
    long go(struct s *p) {
      if (p == (struct s*) 0) {
        return -1;
      }
      return p->a;
    }
    int main() {
      struct s *p = (struct s*) malloc(sizeof(struct s));
      p->a = 3;
      print_i64(go(p));
      free(p);
      return 0;
    }
  )");
  EXPECT_EQ(Guarded.R.count(LintKind::NullDeref), 0u);

  // Dereferencing on the null edge itself is definite.
  Linted OnNullEdge = lint(R"(
    struct s { long a; long b; };
    long go(struct s *p) {
      if (p == (struct s*) 0) {
        return p->a;
      }
      return 0;
    }
    int main() {
      return (int) go((struct s*) 0);
    }
  )");
  EXPECT_EQ(OnNullEdge.R.count(LintKind::NullDeref), 1u);
}

TEST(LintTest, DefiniteLeakIsAWarningNotAnError) {
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(2 * sizeof(struct s));
      p->a = 5;
      print_i64(p->a);
      return 0;
    }
  )");
  EXPECT_EQ(L.R.count(LintKind::Leak), 1u);
  EXPECT_FALSE(L.R.hasErrors());
  EXPECT_EQ(L.R.countSeverity(DiagSeverity::Warning), 1u);
  EXPECT_TRUE(L.R.HeapCoverageComplete);
}

TEST(LintTest, EscapedAllocationMakesNoClaims) {
  // The pointer escapes through a call, so neither a leak nor any
  // lifetime claim is valid — and coverage is reported incomplete.
  Linted L = lint(R"(
    extern void keep(long *p);
    int main() {
      long *p = (long*) malloc(8 * sizeof(long));
      keep(p);
      return 0;
    }
  )");
  EXPECT_TRUE(L.R.Findings.empty());
  EXPECT_FALSE(L.R.HeapCoverageComplete);
}

TEST(LintTest, InjectLifetimeBugSilencesFreeTracking) {
  const char *Src = R"(
    extern void print_i64(long v);
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(2 * sizeof(struct s));
      p->a = 7;
      free(p);
      print_i64(p->a);
      return 0;
    }
  )";
  LintOptions Buggy;
  Buggy.InjectLifetimeBug = true;
  EXPECT_EQ(lint(Src).R.count(LintKind::UseAfterFree), 1u);
  EXPECT_EQ(lint(Src, Buggy).R.count(LintKind::UseAfterFree), 0u);
}

TEST(LintTest, CastPunPinsTheRecordLayout) {
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; long c; };
    int main() {
      struct s *p = (struct s*) malloc(4 * sizeof(struct s));
      for (long i = 0; i < 4; i++) { p[i].a = i; p[i].b = i; p[i].c = i; }
      long *raw = (long*) p;
      long t = 0;
      for (long i = 0; i < 12; i++) { t += raw[i]; }
      print_i64(t);
      free(p);
      return 0;
    }
  )");
  EXPECT_EQ(L.R.count(LintKind::LayoutPin), 1u);
  RecordType *Rec = L.Ctx->getTypes().lookupRecord("s");
  ASSERT_NE(Rec, nullptr);
  EXPECT_TRUE(L.R.Pinnings.isPinned(Rec));
  // Pins are notes: advisory in the report, load-bearing in refinement.
  EXPECT_FALSE(L.R.hasErrors());
}

TEST(LintTest, OutOfBoundsFieldArithmeticPins) {
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct s { long a; long b; long c; };
    int main() {
      struct s *p = (struct s*) malloc(2 * sizeof(struct s));
      p->a = 1; p->b = 2; p->c = 3;
      long *q = &p->a;
      print_i64(q[1]);
      free(p);
      return 0;
    }
  )");
  EXPECT_GE(L.R.count(LintKind::LayoutPin), 1u);
  RecordType *Rec = L.Ctx->getTypes().lookupRecord("s");
  ASSERT_NE(Rec, nullptr);
  EXPECT_TRUE(L.R.Pinnings.isPinned(Rec));
}

TEST(LintTest, PinningDemotesAProvenTypeOutOfProven) {
  // The reverse pun: the record view arrives via a cast from a heap
  // long* (CSTT, dischargeable — heap-only, no external escape, single
  // record view), so without pinning the type is Proven. The coexisting
  // raw long* indexed reads pin the layout, and the refinement must
  // demote it.
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct pun { long f0; long f1; long f2; };
    int main() {
      long *q = (long*) malloc(4 * sizeof(struct pun));
      struct pun *a = (struct pun*) q;
      for (long i = 0; i < 4; i++) { a[i].f0 = i; a[i].f1 = i; a[i].f2 = i; }
      long t = 0;
      for (long i = 0; i < 4; i++) { t += a[i].f0; }
      t += q[2];
      print_i64(t);
      free(a);
      return 0;
    }
  )");
  RecordType *Rec = L.Ctx->getTypes().lookupRecord("pun");
  ASSERT_NE(Rec, nullptr);
  ASSERT_TRUE(L.R.Pinnings.isPinned(Rec));

  // Without the pinnings the discharge proofs admit the type.
  RefinementResult Plain = refineLegality(*L.M, L.Legal, L.PT);
  ASSERT_TRUE(Plain.isProvenLegal(Rec))
      << "test premise: the pun type must be Proven before demotion";

  // With them it is demoted, with a PINNED diagnostic.
  DiagnosticEngine Diags;
  RefinementResult Pinned =
      refineLegality(*L.M, L.Legal, L.PT, &Diags, &L.R.Pinnings);
  EXPECT_FALSE(Pinned.isProvenLegal(Rec));
  EXPECT_FALSE(Pinned.isTransformSafe(Rec));
  bool SawPinned = false;
  for (const Diagnostic &D : Diags.all())
    SawPinned |= D.Code == "PINNED" && D.RecordName == "pun";
  EXPECT_TRUE(SawPinned);
}

TEST(LintTest, StrictlyLegalTypesAreNeverDemoted) {
  // A clean type plus an artificial pin entry: the demotion must skip
  // strictly legal types so Legal <= Proven can never break.
  Linted L = lint(R"(
    extern void print_i64(long v);
    struct clean { long a; long b; };
    int main() {
      struct clean *p = (struct clean*) malloc(2 * sizeof(struct clean));
      p->a = 1;
      p->b = 2;
      print_i64(p->a + p->b);
      free(p);
      return 0;
    }
  )");
  RecordType *Rec = L.Ctx->getTypes().lookupRecord("clean");
  ASSERT_NE(Rec, nullptr);
  ASSERT_TRUE(L.Legal.get(Rec).isLegal(/*Relax=*/false));
  LayoutPinnings Pins;
  Pins.Reasons[Rec] = "artificial pin for the exemption test";
  RefinementResult Refined =
      refineLegality(*L.M, L.Legal, L.PT, nullptr, &Pins);
  EXPECT_TRUE(Refined.isProvenLegal(Rec));
}

TEST(LintTest, CountersAndDiagnosticsRender) {
  CounterRegistry Counters;
  LintOptions Opts;
  Opts.Counters = &Counters;
  Linted L = lint(R"(
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(2 * sizeof(struct s));
      p->a = 1;
      free(p);
      free(p);
      return 0;
    }
  )",
                  Opts);
  EXPECT_EQ(L.R.count(LintKind::DoubleFree), 1u);
  EXPECT_EQ(Counters.value("lint.findings"), L.R.Findings.size());
  EXPECT_EQ(Counters.value("lint.double-free"), 1u);

  DiagnosticEngine Diags;
  reportLintFindings(L.R, Diags);
  ASSERT_EQ(Diags.all().size(), L.R.Findings.size());
  EXPECT_EQ(Diags.all()[0].Code, "lint.double-free");
  EXPECT_NE(Diags.renderText().find("double free"), std::string::npos);
  EXPECT_NE(Diags.renderJson().find("lint.double-free"), std::string::npos);
}

TEST(LintTest, WorkloadsAndCorpusAreErrorClean) {
  // The acceptance bar: zero Error-severity findings across the 12
  // Table-1 workloads and the committed fuzz corpus. Every memory claim
  // the suite makes is definite, so one error here is a checker bug.
  for (const Workload &W : allWorkloads()) {
    Linted L = lint(W.Sources);
    EXPECT_FALSE(L.R.hasErrors()) << "workload " << W.Name;
  }
  std::filesystem::path Corpus(SLO_CORPUS_DIR);
  unsigned Files = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Corpus)) {
    if (Entry.path().extension() != ".minic")
      continue;
    ++Files;
    std::ifstream In(Entry.path());
    std::stringstream Buf;
    Buf << In.rdbuf();
    Linted L = lint(Buf.str().c_str());
    EXPECT_FALSE(L.R.hasErrors()) << "corpus " << Entry.path();
  }
  EXPECT_GT(Files, 0u);
}

} // namespace
