//===- tests/incremental_test.cpp - Incremental pipeline tests ------------===//
//
// Covers the incremental FE->IPA->BE pipeline and its on-disk summary
// cache:
//  - ModuleSummary serialization round-trips byte-exactly (the property
//    the cold/warm equivalence contract reduces to);
//  - a warm run reuses every summary and renders advice byte-identical
//    to the cold run that populated the cache;
//  - mutating one TU recomputes exactly that TU, and the result matches
//    a from-scratch cold run;
//  - corrupt, truncated, and version-mismatched cache entries are each
//    ignored with a diagnostic and a cold fallback — never a crash, and
//    never different advice;
//  - changing a record schema in a *dependency* TU invalidates the
//    cached summaries of the TUs that use it (the ResolvedFingerprint
//    stamp), while unrelated TUs stay warm.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Incremental.h"
#include "pipeline/Summary.h"
#include "pipeline/SummaryCache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace slo;

namespace {

// A three-TU program: `a` defines struct S, `b` uses it only through an
// opaque pointer (the dependency edge the schema-invalidation test
// exercises), `c` is self-contained and must stay warm throughout.
const char *TuA = R"(extern void print_i64(long v);
struct S { long x; long y; };
struct S* s_make() {
  struct S *p = (struct S*) malloc(4 * sizeof(struct S));
  for (long i = 0; i < 4; i++) { p[i].x = i; p[i].y = 2 * i; }
  return p;
}
long s_sum(struct S *p) {
  long t = 0;
  for (long i = 0; i < 4; i++) { t = t + p[i].x; }
  return t;
}
)";

const char *TuB = R"(extern void print_i64(long v);
extern struct S* s_make();
extern long s_sum(struct S *p);
extern long t_work();
int main() {
  struct S *p = s_make();
  print_i64(s_sum(p) + t_work());
  free(p);
  return 0;
}
)";

const char *TuC = R"(extern void print_i64(long v);
struct T { long a; long b; };
long t_work() {
  struct T *q = (struct T*) malloc(8 * sizeof(struct T));
  for (long i = 0; i < 8; i++) { q[i].a = i; q[i].b = i + 1; }
  long s = 0;
  for (long i = 0; i < 8; i++) { s = s + q[i].a; }
  free(q);
  return s;
}
)";

std::vector<TuSource> corpus() {
  return {{"a.minic", TuA}, {"b.minic", TuB}, {"c.minic", TuC}};
}

class IncrementalTest : public ::testing::Test {
protected:
  void SetUp() override {
    Scratch = std::filesystem::temp_directory_path() /
              ("slo_incremental_test_" +
               std::string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name()));
    std::error_code Ec;
    std::filesystem::remove_all(Scratch, Ec);
  }
  void TearDown() override {
    std::error_code Ec;
    std::filesystem::remove_all(Scratch, Ec);
  }

  IncrementalResult run(const std::vector<TuSource> &TUs, bool Cached = true) {
    IncrementalOptions O;
    if (Cached)
      O.CacheDir = Scratch.string();
    O.Threads = 2;
    IncrementalResult R = runIncrementalAdvice(TUs, O);
    EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "?" : R.Errors.front());
    return R;
  }

  std::filesystem::path Scratch;
};

TEST_F(IncrementalTest, SerializationRoundTripsExactly) {
  IncrementalResult Cold = run(corpus(), /*Cached=*/false);
  ASSERT_EQ(Cold.Summaries.size(), 3u);
  for (const ModuleSummary &S : Cold.Summaries) {
    std::string Text = serializeModuleSummary(S);
    ModuleSummary Back;
    std::string Error;
    ASSERT_TRUE(deserializeModuleSummary(Text, Back, Error))
        << S.ModuleName << ": " << Error;
    // Byte-exact re-serialization is the whole contract: warm merges
    // deserialized values where cold merges computed ones.
    EXPECT_EQ(serializeModuleSummary(Back), Text) << S.ModuleName;
  }
}

TEST_F(IncrementalTest, WarmRunIsByteIdenticalAndReusesEverySummary) {
  IncrementalResult Cold = run(corpus());
  EXPECT_EQ(Cold.TusRecomputed, 3u);
  EXPECT_EQ(Cold.Cache.Stores, 3u);

  IncrementalResult Warm = run(corpus());
  EXPECT_EQ(Warm.TusReused, 3u);
  EXPECT_EQ(Warm.TusRecomputed, 0u);
  EXPECT_EQ(Warm.AdviceText, Cold.AdviceText);
  EXPECT_EQ(Warm.AdviceJson, Cold.AdviceJson);
  // The advice renderings must not leak cache state, or warm could
  // never equal cold.
  EXPECT_EQ(Cold.AdviceText.find("cache"), std::string::npos);
}

TEST_F(IncrementalTest, MutatingOneTuRecomputesExactlyThatTu) {
  run(corpus());

  std::vector<TuSource> Mutated = corpus();
  Mutated[2].Source = std::string(TuC) + "// trailing comment\n";
  IncrementalResult Warm = run(Mutated);
  EXPECT_EQ(Warm.TusReused, 2u);
  EXPECT_EQ(Warm.TusRecomputed, 1u);
  ASSERT_EQ(Warm.TuStates.size(), 3u);
  EXPECT_EQ(Warm.TuStates[2], TuState::Recomputed);

  IncrementalResult Ref = run(Mutated, /*Cached=*/false);
  EXPECT_EQ(Warm.AdviceText, Ref.AdviceText);
  EXPECT_EQ(Warm.AdviceJson, Ref.AdviceJson);
}

TEST_F(IncrementalTest, CorruptCacheEntryFallsBackColdWithDiagnostic) {
  IncrementalResult Cold = run(corpus());

  SummaryCache Cache(Scratch.string());
  std::ofstream(Cache.pathFor("b.minic"), std::ios::trunc)
      << "not a summary at all\n";

  IncrementalResult Warm = run(corpus());
  EXPECT_EQ(Warm.TusReused, 2u);
  EXPECT_EQ(Warm.TusRecomputed, 1u);
  EXPECT_GE(Warm.Cache.Corrupt, 1u);
  EXPECT_EQ(Warm.AdviceText, Cold.AdviceText);
  EXPECT_EQ(Warm.AdviceJson, Cold.AdviceJson);

  bool Reported = false;
  for (const Diagnostic &D : Warm.CacheDiags)
    Reported |= D.Code == "summary-cache" &&
                D.Message.find("ignoring unusable cache entry") !=
                    std::string::npos;
  EXPECT_TRUE(Reported) << "corrupt entry was ignored silently";

  // The recomputation re-stored a good entry: the next run is fully warm.
  IncrementalResult Healed = run(corpus());
  EXPECT_EQ(Healed.TusReused, 3u);
}

TEST_F(IncrementalTest, TruncatedCacheEntryFallsBackCold) {
  IncrementalResult Cold = run(corpus());

  SummaryCache Cache(Scratch.string());
  std::string Path = Cache.pathFor("a.minic");
  std::string Text;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }
  ASSERT_GT(Text.size(), 64u);
  // Chop mid-record: the checksum line is gone, so deserialization must
  // refuse before parsing a single field.
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      << Text.substr(0, Text.size() / 2);

  IncrementalResult Warm = run(corpus());
  EXPECT_EQ(Warm.TusRecomputed, 1u);
  EXPECT_GE(Warm.Cache.Corrupt, 1u);
  EXPECT_EQ(Warm.AdviceText, Cold.AdviceText);
  EXPECT_EQ(Warm.AdviceJson, Cold.AdviceJson);
}

TEST_F(IncrementalTest, VersionMismatchedEntryFallsBackCold) {
  IncrementalResult Cold = run(corpus());

  // Rewrite c.minic's entry claiming a future format version, with a
  // *valid* checksum — the version check itself must reject it, not the
  // corruption check.
  SummaryCache Cache(Scratch.string());
  std::string Path = Cache.pathFor("c.minic");
  std::string Text;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }
  std::string Marker = "SLOSUM " + std::to_string(SummaryFormatVersion);
  ASSERT_EQ(Text.compare(0, Marker.size(), Marker), 0);
  std::string Bumped = "SLOSUM 999" + Text.substr(Marker.size());
  size_t EndLine = Bumped.rfind("end ");
  ASSERT_NE(EndLine, std::string::npos);
  Bumped.resize(EndLine);
  char Hex[24];
  std::snprintf(Hex, sizeof Hex, "%016llx",
                static_cast<unsigned long long>(fnv1a(Bumped)));
  Bumped += "end " + std::string(Hex) + "\n";
  std::ofstream(Path, std::ios::binary | std::ios::trunc) << Bumped;

  IncrementalResult Warm = run(corpus());
  EXPECT_EQ(Warm.TusRecomputed, 1u);
  EXPECT_GE(Warm.Cache.Corrupt, 1u);
  EXPECT_EQ(Warm.AdviceText, Cold.AdviceText);

  bool VersionDiag = false;
  for (const Diagnostic &D : Warm.CacheDiags)
    VersionDiag |=
        D.Message.find("format version mismatch") != std::string::npos;
  EXPECT_TRUE(VersionDiag);
}

TEST_F(IncrementalTest, DependencySchemaChangeInvalidatesUsers) {
  run(corpus());

  // Grow struct S in its *defining* TU. b.minic's source is unchanged,
  // but its cached summary was stamped with the old program-wide
  // fingerprint of S, so it must be recomputed; c.minic never mentions
  // S and must stay warm.
  std::vector<TuSource> Mutated = corpus();
  Mutated[0].Source = std::string(TuA);
  size_t Pos = Mutated[0].Source.find("long y; };");
  ASSERT_NE(Pos, std::string::npos);
  Mutated[0].Source.replace(Pos, 10, "long y; long z; };");

  IncrementalResult Warm = run(Mutated);
  ASSERT_EQ(Warm.TuStates.size(), 3u);
  EXPECT_EQ(Warm.TuStates[0], TuState::Recomputed);
  EXPECT_EQ(Warm.TuStates[1], TuState::SchemaInvalidated);
  EXPECT_EQ(Warm.TuStates[2], TuState::Reused);
  EXPECT_EQ(Warm.TusSchemaInvalidated, 1u);

  IncrementalResult Ref = run(Mutated, /*Cached=*/false);
  EXPECT_EQ(Warm.AdviceText, Ref.AdviceText);
  EXPECT_EQ(Warm.AdviceJson, Ref.AdviceJson);
}

TEST_F(IncrementalTest, DisabledCacheMissesAndStoresNothing) {
  SummaryCache Cache("");
  EXPECT_FALSE(Cache.enabled());
  ModuleSummary S;
  S.ModuleName = "x";
  EXPECT_TRUE(Cache.store(S, nullptr));
  ModuleSummary Out;
  EXPECT_EQ(Cache.load("x", Out, nullptr), SummaryCache::LoadStatus::Miss);

  // An enabled cache in a directory that does not exist yet: a miss,
  // then a store that creates the directory, then a hit.
  SummaryCache OnDisk((Scratch / "deep" / "nested").string());
  EXPECT_EQ(OnDisk.load("x", Out, nullptr), SummaryCache::LoadStatus::Miss);
  EXPECT_TRUE(OnDisk.store(S, nullptr));
  EXPECT_EQ(OnDisk.load("x", Out, nullptr), SummaryCache::LoadStatus::Hit);
  EXPECT_EQ(Out.ModuleName, "x");
}

} // namespace
