//===- tests/cachesim_test.cpp - Cache simulator unit tests ---------------===//
//
// Direct unit tests for the three-level simulator, focused on the
// size-aware access path: an access that crosses a line boundary at its
// first level fills both lines, is charged the worse fill, and fires at
// most one first-level miss event. The straddle tests are regressions
// against the old width-blind access(), which charged every access as if
// it fit inside one line.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "runtime/CacheSim.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace slo;

namespace {

TEST(CacheSimUnitTest, LruEvictsLeastRecentlyUsedWay) {
  CacheConfig Cfg;
  Cfg.L1 = {128, 64, 2, 1}; // 1 set, 2 ways.
  CacheSim C(Cfg);
  C.access(0x10000, 8, false, false); // line A (miss, fill)
  C.access(0x20000, 8, false, false); // line B (miss, fill)
  C.access(0x10000, 8, false, false); // A again: now MRU
  C.access(0x30000, 8, false, false); // line C evicts B, the LRU way
  EXPECT_FALSE(C.access(0x10000, 8, false, false).FirstLevelMiss);
  EXPECT_TRUE(C.access(0x20000, 8, false, false).FirstLevelMiss);
}

TEST(CacheSimUnitTest, CapacityEviction) {
  CacheConfig Cfg;
  Cfg.L1 = {1024, 64, 2, 1}; // Tiny L1: 16 lines.
  CacheSim C(Cfg);
  for (uint64_t I = 0; I < 64; ++I)
    C.access((1 << 20) | (I * 64), 8, false, false);
  EXPECT_TRUE(C.access(1 << 20, 8, false, false).FirstLevelMiss);
}

TEST(CacheSimUnitTest, FpBypassesL1) {
  CacheSim C;
  CacheAccessResult First = C.access(1 << 21, 8, false, /*IsFp=*/true);
  EXPECT_TRUE(First.FirstLevelMiss); // The FP first level is L2.
  EXPECT_EQ(C.l1Stats().Hits + C.l1Stats().Misses, 0u);
  CacheAccessResult Second = C.access(1 << 21, 8, false, /*IsFp=*/true);
  EXPECT_FALSE(Second.FirstLevelMiss);
  EXPECT_EQ(Second.Latency, C.config().L2.HitLatency);
}

TEST(CacheSimUnitTest, StoreDivisorAppliedToLatencyAndStall) {
  CacheSim C;
  CacheAccessResult Load = C.access(1 << 22, 8, false, false);
  C.reset();
  CacheAccessResult Store = C.access(1 << 22, 8, true, false);
  unsigned Div = C.config().StoreCostDivisor;
  ASSERT_GT(Div, 1u);
  EXPECT_EQ(Store.Latency, Load.Latency / Div);
  EXPECT_EQ(Store.Stall, Load.Stall / Div);
}

// The headline regression from the issue: an 8-byte load at line offset
// 60 spans bytes 60..67, i.e. two 64-byte L1 lines. The old width-blind
// access() filled only the first line; now both fills must show up in
// the L1 statistics while the access itself counts as a single
// first-level miss event.
TEST(CacheSimUnitTest, StraddlingLoadFillsBothLines) {
  CacheSim C;
  CacheAccessResult R = C.access(4096 + 60, 8, false, false);
  EXPECT_TRUE(R.FirstLevelMiss);
  EXPECT_EQ(C.l1Stats().Misses, 2u); // Two cold lines, two fills.
  EXPECT_EQ(C.l1Stats().Hits, 0u);
  // Both spans live in the same 128-byte L2/L3 line: the second walk
  // hits the line the first walk just brought in.
  EXPECT_EQ(C.l2Stats().Misses, 1u);
  EXPECT_EQ(C.l2Stats().Hits, 1u);
  EXPECT_EQ(C.l3Stats().Misses, 1u);
  // Worse of the two fills: the first went all the way to memory.
  EXPECT_EQ(R.Latency, C.config().MemoryLatency);

  // Once both lines are resident the straddle is two L1 hits and costs
  // a plain first-level hit.
  CacheAccessResult Again = C.access(4096 + 60, 8, false, false);
  EXPECT_FALSE(Again.FirstLevelMiss);
  EXPECT_EQ(C.l1Stats().Hits, 2u);
  EXPECT_EQ(Again.Latency, C.config().L1.HitLatency);
}

TEST(CacheSimUnitTest, AlignedLoadFillsOneLine) {
  CacheSim C;
  // Same line, but the span 56..63 stays inside it: exactly one fill.
  C.access(4096 + 56, 8, false, false);
  EXPECT_EQ(C.l1Stats().Misses, 1u);
}

TEST(CacheSimUnitTest, StraddleChargesWorseOfTwoFills) {
  CacheSim C;
  C.access(4096, 8, false, false); // Warm the first line (and its L2/L3 lines).
  CacheAccessResult R = C.access(4096 + 60, 8, false, false);
  // First span hits L1; the second span misses L1 and fills from the
  // (already resident) L2 line. Worse fill: the L2 hit latency.
  EXPECT_TRUE(R.FirstLevelMiss);
  EXPECT_EQ(R.Latency, C.config().L2.HitLatency);
  EXPECT_EQ(R.Stall, C.config().L2.HitLatency - C.config().L1.HitLatency);
}

TEST(CacheSimUnitTest, FpStraddleCrossesL2Line) {
  CacheSim C;
  ASSERT_TRUE(C.config().FpBypassesL1);
  // FP first level is L2 with 128-byte lines: an 8-byte access at line
  // offset 124 spans two L2 lines; one at offset 60 does not.
  CacheAccessResult R = C.access(8192 + 124, 8, false, /*IsFp=*/true);
  EXPECT_TRUE(R.FirstLevelMiss);
  EXPECT_EQ(C.l1Stats().Hits + C.l1Stats().Misses, 0u);
  EXPECT_EQ(C.l2Stats().Misses, 2u);
  C.reset();
  C.access(8192 + 60, 8, false, /*IsFp=*/true);
  EXPECT_EQ(C.l2Stats().Misses, 1u);
}

TEST(CacheSimUnitTest, ZeroWidthTreatedAsOneByte) {
  CacheSim C;
  C.access(4096 + 63, 0, false, false); // Must not straddle into 4160.
  EXPECT_EQ(C.l1Stats().Misses, 1u);
}

/// Compiles and runs one source; fails the test on compile errors.
static RunResult runSource(const char *Src, RunOptions Opts = RunOptions()) {
  static std::vector<std::unique_ptr<IRContext>> Contexts;
  static std::vector<std::unique_ptr<Module>> Modules;
  Contexts.push_back(std::make_unique<IRContext>());
  std::vector<std::string> Diags;
  auto M = compileMiniC(*Contexts.back(), "t", Src, Diags);
  EXPECT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);
  if (!M) {
    RunResult R;
    R.Trapped = true;
    return R;
  }
  Modules.push_back(std::move(M));
  return runProgram(*Modules.back(), std::move(Opts));
}

// End-to-end regression: model an array of 192-byte (3-line) records
// whose hot 8-byte field ended up at record offset 60 after a careless
// reorder, so every record's hot field straddles into the next line.
// Under the scaled hierarchy (8K L1 = 128 lines) 100 records' hot lines
// fit L1 when the field is aligned (offset 56: 100 lines), but the
// straddling layout touches 200 lines, overflows the 4-way sets, and
// thrashes on every pass. The old width-blind access() priced both
// layouts identically.
TEST(CacheSimUnitTest, InterpreterPaysForStraddlingHotField) {
  const char *Fmt = R"(
    int main() {
      long a = (long) malloc(32768);
      long base = a + (64 - a %% 64) %% 64; // 64-aligned start
      long s = 0;
      for (long pass = 0; pass < 50; pass++) {
        for (long i = 0; i < 100; i++) {
          long *hot = (long*)(base + i * 192 + %d);
          s = s + *hot;
        }
      }
      return 0;
    }
  )";
  char Aligned[1024], Straddling[1024];
  std::snprintf(Aligned, sizeof(Aligned), Fmt, 56);
  std::snprintf(Straddling, sizeof(Straddling), Fmt, 60);

  RunOptions Opts;
  Opts.Cache = CacheConfig::scaledItanium(); // 8K L1 = 128 lines.
  RunResult Ali = runSource(Aligned, Opts);
  RunResult Str = runSource(Straddling, Opts);
  ASSERT_FALSE(Ali.Trapped) << Ali.TrapReason;
  ASSERT_FALSE(Str.Trapped) << Str.TrapReason;

  // Identical code shape: only the field offset constant differs.
  EXPECT_EQ(Str.Instructions, Ali.Instructions);
  // The aligned layout settles into L1 after the first pass; the
  // straddling layout keeps missing on every pass.
  EXPECT_GT(Str.L1.Misses, 2 * Ali.L1.Misses);
  EXPECT_GT(Str.MemStallCycles, Ali.MemStallCycles);
  EXPECT_GT(Str.Cycles, Ali.Cycles);
}

} // namespace
