//===- tests/service_stress_test.cpp - Concurrency stress / soak ----------===//
//
// A bounded mixed-operation soak against the advisory daemon, designed
// to run under TSan and ASan (the sanitizer CI legs build this test
// like any other): many client threads race source upserts, profile
// merges, advice reads, stats reads, pings, and deliberate protocol
// violations on their own connections. At the end the daemon must
// answer advice byte-identical to the monolithic one-shot run over the
// final TU set — concurrency may reorder work, never change bytes —
// and drain cleanly with every handler thread joined.
//
// The soak is deterministic in its work list (fixed thread/round
// counts, per-thread operation schedule derived from the thread index)
// even though the interleaving is not; there is nothing to "reproduce"
// beyond re-running the binary.
//
//===----------------------------------------------------------------------===//

#include "service/AdvisoryDaemon.h"
#include "service/ServiceClient.h"

#include "frontend/Frontend.h"
#include "pipeline/Incremental.h"
#include "profile/FeedbackIO.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unistd.h>

using namespace slo;
using namespace slo::service;

namespace {

const char *TuA = R"(extern void print_i64(long v);
struct S { long x; long y; };
struct S* s_make() {
  struct S *p = (struct S*) malloc(4 * sizeof(struct S));
  for (long i = 0; i < 4; i++) { p[i].x = i; p[i].y = 2 * i; }
  return p;
}
long s_sum(struct S *p) {
  long t = 0;
  for (long i = 0; i < 4; i++) { t = t + p[i].x; }
  return t;
}
)";

const char *TuB = R"(extern void print_i64(long v);
extern struct S* s_make();
extern long s_sum(struct S *p);
extern long t_work();
int main() {
  struct S *p = s_make();
  print_i64(s_sum(p) + t_work());
  free(p);
  return 0;
}
)";

const char *TuC = R"(extern void print_i64(long v);
struct T { long a; long b; };
long t_work() {
  struct T *q = (struct T*) malloc(8 * sizeof(struct T));
  for (long i = 0; i < 8; i++) { q[i].a = i; q[i].b = i + 1; }
  long s = 0;
  for (long i = 0; i < 8; i++) { s = s + q[i].a; }
  free(q);
  return s;
}
)";

std::vector<TuSource> corpus() {
  return {{"a.minic", TuA}, {"b.minic", TuB}, {"c.minic", TuC}};
}

/// One serialized feedback payload for a.minic.
std::string makePayload(uint64_t Scale) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  std::unique_ptr<Module> M = compileMiniC(Ctx, "a.minic", TuA, Diags);
  EXPECT_TRUE(M);
  FeedbackFile FB;
  RecordType *Rec = Ctx.getTypes().lookupRecord("S");
  EXPECT_NE(Rec, nullptr);
  FieldCacheStats &F = FB.fieldStats(Rec, 0);
  F.Loads = Scale;
  F.Misses = Scale / 2;
  return serializeFeedback(*M, FB);
}

TEST(ServiceStressTest, MixedOpSoakStaysCoherent) {
  DaemonConfig Config;
  Config.Summary.Lint = false;
  Config.IngestQueueDepth = 4; // Small: backpressure actually fires.
  Config.RetryAfterMillis = 1;
  Config.FrameTimeoutMillis = 2000;
  auto D = std::make_unique<AdvisoryDaemon>(std::move(Config));

  const std::vector<TuSource> TUs = corpus();
  const std::string Payload = makePayload(8);

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  constexpr unsigned NumThreads = 6;
  constexpr unsigned Rounds = 12;
#else
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Rounds = 25;
#endif
#else
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Rounds = 25;
#endif

  auto Connect = [&]() -> std::unique_ptr<ServiceClient> {
    int Fds[2];
    if (!makeSocketPair(Fds))
      return nullptr;
    if (!D->adoptConnection(Fds[0])) {
      ::close(Fds[1]);
      return nullptr;
    }
    return std::make_unique<ServiceClient>(Fds[1], 10000);
  };

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      auto C = Connect();
      if (!C) {
        ++Failures;
        return;
      }
      // Every thread seeds every TU before the mixed schedule, so the
      // final module set is the full corpus regardless of interleaving.
      for (const TuSource &Tu : TUs) {
        ServiceReply PR = C->putWithRetry(
            Opcode::PutSource, encodePutSource(Tu.Name, Tu.Source), 200);
        if (!PR.ok())
          ++Failures;
      }
      for (unsigned R = 0; R < Rounds; ++R) {
        switch ((T + R) % 6) {
        case 0:
        case 1: { // Source upsert.
          const TuSource &Tu = TUs[(T + R) % TUs.size()];
          ServiceReply PR = C->putWithRetry(
              Opcode::PutSource, encodePutSource(Tu.Name, Tu.Source), 200);
          if (!PR.ok())
            ++Failures;
          break;
        }
        case 2: { // Profile merge; UnknownModule is a legal race
                  // (another thread may not have put a.minic yet and
                  // upserts reset the accumulation anyway).
          ServiceReply PR = C->putWithRetry(
              Opcode::PutProfile, encodePutProfile("a.minic", Payload), 200);
          bool Legal =
              PR.ok() ||
              (PR.Transport && PR.Op == Opcode::Error &&
               PR.Code == static_cast<uint16_t>(ErrCode::UnknownModule));
          if (!Legal)
            ++Failures;
          break;
        }
        case 3: { // Advice read, racing the writers.
          ServiceReply AR = C->getAdvice((T + R) % 2 == 0);
          if (!AR.Transport || AR.Op != Opcode::Advice)
            ++Failures;
          break;
        }
        case 4: { // Stats read.
          ServiceReply SR = C->getStats();
          if (!SR.Transport || SR.Op != Opcode::Stats)
            ++Failures;
          break;
        }
        default: { // A protocol violation on a throwaway connection:
                   // never takes the daemon or this thread's own
                   // connection down.
          auto Bad = Connect();
          if (!Bad) {
            ++Failures;
            break;
          }
          std::string Garbage;
          appendU32(Garbage, 3);
          Garbage += "\x7f\x00\x01"; // Unassigned opcode.
          (void)writeAll(Bad->fd(), Garbage, 1000);
          Bad->close();
          ServiceReply Pong = C->ping();
          if (!Pong.Transport || Pong.Op != Opcode::Pong)
            ++Failures;
          break;
        }
        }
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  // Every TU was upserted at least once, profiles never change advice
  // (static schemes), so the final answer must be byte-identical to the
  // monolithic run.
  std::vector<TuSource> Sorted = TUs;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const TuSource &A, const TuSource &B) { return A.Name < B.Name; });
  IncrementalOptions O;
  O.Summary.Lint = false;
  O.Threads = 1;
  IncrementalResult Expect = runIncrementalAdvice(Sorted, O);
  ASSERT_TRUE(Expect.Ok);

  auto C = Connect();
  ASSERT_TRUE(C);
  ServiceReply Text = C->getAdvice(false);
  ASSERT_TRUE(Text.Transport);
  EXPECT_EQ(Text.Text, Expect.AdviceText);

  D->stop();
  EXPECT_EQ(D->liveConnections(), 0u);
}

TEST(ServiceStressTest, StopRacesAdoptWithoutLeaks) {
  // Hammers the stop/adopt race: threads adopt fresh connections while
  // another stops the daemon. Every fd is either served or refused —
  // TSan/ASan hold the accounting honest.
  for (unsigned Round = 0; Round < 8; ++Round) {
    DaemonConfig Config;
    Config.Summary.Lint = false;
    auto D = std::make_unique<AdvisoryDaemon>(std::move(Config));

    std::atomic<bool> Go{false};
    std::vector<std::thread> Adopters;
    for (unsigned T = 0; T < 4; ++T) {
      Adopters.emplace_back([&] {
        while (!Go.load())
          std::this_thread::yield();
        for (unsigned I = 0; I < 20; ++I) {
          int Fds[2];
          if (!makeSocketPair(Fds))
            continue;
          if (!D->adoptConnection(Fds[0])) {
            ::close(Fds[1]);
            break; // Stopping: later adopts would also be refused.
          }
          ServiceClient C(Fds[1], 5000);
          (void)C.ping(); // May fail mid-drain; must not crash/hang.
        }
      });
    }
    std::thread Stopper([&] {
      while (!Go.load())
        std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::milliseconds(Round));
      D->stop();
    });
    Go = true;
    for (auto &T : Adopters)
      T.join();
    Stopper.join();
    EXPECT_EQ(D->liveConnections(), 0u);
  }
}

} // namespace
