//===- tests/property_test.cpp - Property-based invariant tests -----------===//
//
// Parameterized sweeps over generated programs and configurations:
//  - every generated benchmark census is classified exactly as configured;
//  - the full pipeline preserves observable behaviour on every seed;
//  - split layouts conserve live fields and never grow;
//  - the cache simulator obeys capacity/LRU invariants across geometries.
//
//===----------------------------------------------------------------------===//

#include "Oracles.h"
#include "analysis/Legality.h"
#include "frontend/Frontend.h"
#include "runtime/CacheSim.h"
#include "runtime/Interpreter.h"
#include "transform/Transform.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

//===----------------------------------------------------------------------===//
// Generated-census properties
//===----------------------------------------------------------------------===//

struct CensusCase {
  uint64_t Seed;
  unsigned Total, Legal, RelaxOnly, Candidates;
};

class CensusProperty : public ::testing::TestWithParam<CensusCase> {};

TEST_P(CensusProperty, LegalityClassifiesExactly) {
  const CensusCase &C = GetParam();
  GeneratorConfig Cfg;
  Cfg.Name = "prop";
  Cfg.Seed = C.Seed;
  Cfg.TotalTypes = C.Total;
  Cfg.LegalTypes = C.Legal;
  Cfg.RelaxOnlyTypes = C.RelaxOnly;
  Cfg.TransformCandidates = C.Candidates;
  Cfg.HotElements = 512;
  Cfg.HotIterations = 2;
  std::string Src = generateBenchmarkSource(Cfg);

  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "prop", Src, Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);

  LegalityResult Legal = analyzeLegality(*M);
  EXPECT_EQ(Legal.types().size(), C.Total);
  EXPECT_EQ(Legal.legalTypes(false).size(), C.Legal);
  EXPECT_EQ(Legal.legalTypes(true).size(), C.Legal + C.RelaxOnly);
}

TEST_P(CensusProperty, PipelineRoundTripPreservesOutput) {
  const CensusCase &C = GetParam();
  GeneratorConfig Cfg;
  Cfg.Name = "prop";
  Cfg.Seed = C.Seed;
  Cfg.TotalTypes = C.Total;
  Cfg.LegalTypes = C.Legal;
  Cfg.RelaxOnlyTypes = C.RelaxOnly;
  Cfg.TransformCandidates = C.Candidates;
  Cfg.HotElements = 512;
  Cfg.HotIterations = 2;
  std::string Src = generateBenchmarkSource(Cfg);

  // The shared differential oracle checks output, leak census, the
  // verifier, the legality inclusion chain, and the miss-attribution
  // partition in one pass.
  DifferentialOutcome O;
  EXPECT_TRUE(oracles::transformEquivalent("prop", Src, &O));
  // Transform candidates must actually be transformed.
  EXPECT_GE(O.TypesTransformed, C.Candidates);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CensusProperty,
    ::testing::Values(CensusCase{1, 8, 2, 3, 1},
                      CensusCase{2, 12, 4, 4, 2},
                      CensusCase{3, 15, 3, 6, 1},
                      CensusCase{42, 25, 6, 10, 3},
                      CensusCase{0xdead, 10, 2, 0, 1},
                      CensusCase{0xbeef, 18, 5, 9, 2},
                      CensusCase{7, 9, 0, 4, 0},
                      CensusCase{99, 30, 8, 12, 4}),
    [](const ::testing::TestParamInfo<CensusCase> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_t" +
             std::to_string(Info.param.Total);
    });

//===----------------------------------------------------------------------===//
// Split-layout conservation properties
//===----------------------------------------------------------------------===//

TEST(SplitLayoutProperty, LiveFieldsConservedAndNoGrowth) {
  // Sweep several hot/cold partitions of an 8-field record; in every
  // case the new layouts must (a) contain each live field exactly once,
  // (b) have combined size <= original + link pointer.
  const char *Src = R"(
    extern void print_i64(long v);
    struct rec { long f0; long f1; long f2; long f3;
                 long f4; long f5; long f6; long f7; };
    struct rec *p;
    void pin(struct rec *q) { }
    int main() {
      p = (struct rec*) malloc(64 * sizeof(struct rec));
      pin(p);
      long s = 0;
      for (long i = 0; i < 64; i++) {
        p[i].f0 = i; p[i].f1 = i; p[i].f2 = i; p[i].f3 = i;
        p[i].f4 = i; p[i].f5 = i; p[i].f6 = i; p[i].f7 = i;
      }
      for (long i = 0; i < 64; i++)
        s += p[i].f0 + p[i].f1 + p[i].f2 + p[i].f3
           + p[i].f4 + p[i].f5 + p[i].f6 + p[i].f7;
      print_i64(s);
      free(p);
      return 0;
    }
  )";

  for (unsigned Mask = 1; Mask < 255; Mask += 23) {
    IRContext Ctx;
    std::vector<std::string> Diags;
    auto M = compileMiniC(Ctx, "t", Src, Diags);
    ASSERT_TRUE(M);
    RecordType *Rec = Ctx.getTypes().lookupRecord("rec");
    LegalityResult Legal = analyzeLegality(*M);

    TypePlan Plan;
    Plan.Rec = Rec;
    Plan.Kind = TransformKind::Split;
    for (unsigned F = 0; F < 8; ++F) {
      if (Mask & (1u << F))
        Plan.HotFields.push_back(F);
      else
        Plan.ColdFields.push_back(F);
    }
    if (Plan.HotFields.empty() || Plan.ColdFields.empty())
      continue;

    IRContext CtxRef;
    auto Ref = compileMiniC(CtxRef, "t", Src, Diags);
    RunResult Before = runProgram(*Ref);

    TransformSummary S = applyPlans(*M, {Plan}, Legal);
    ASSERT_EQ(S.Applied.size(), 1u) << "mask " << Mask;
    const SplitResult &R = S.Applied[0].Split;
    ASSERT_NE(R.HotRec, nullptr);
    ASSERT_NE(R.ColdRec, nullptr);
    // Conservation: every original field appears exactly once.
    EXPECT_EQ(R.HotRec->getNumFields() + R.ColdRec->getNumFields(),
              8u + 1u /* link */);
    // No growth beyond the link pointer.
    EXPECT_LE(R.HotRec->getSize() + R.ColdRec->getSize(),
              Rec->getSize() + 8);

    RunResult After = runProgram(*M);
    ASSERT_FALSE(After.Trapped) << After.TrapReason;
    EXPECT_EQ(Before.PrintedInts, After.PrintedInts) << "mask " << Mask;
  }
}

//===----------------------------------------------------------------------===//
// Cache simulator properties across geometries
//===----------------------------------------------------------------------===//

struct CacheGeometry {
  uint64_t L1Size;
  unsigned L1Line;
  unsigned L1Ways;
};

class CacheProperty : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheProperty, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  const CacheGeometry &G = GetParam();
  CacheConfig Cfg;
  Cfg.L1 = {G.L1Size, G.L1Line, G.L1Ways, 1};
  CacheSim C(Cfg);
  // Touch half the capacity twice; second pass must be all hits.
  uint64_t Lines = (G.L1Size / G.L1Line) / 2;
  for (uint64_t I = 0; I < Lines; ++I)
    C.access(1 << 20 | (I * G.L1Line), 8, false, false);
  uint64_t MissesAfterWarmup = C.l1Stats().Misses;
  for (uint64_t I = 0; I < Lines; ++I)
    C.access(1 << 20 | (I * G.L1Line), 8, false, false);
  EXPECT_EQ(C.l1Stats().Misses, MissesAfterWarmup)
      << "size=" << G.L1Size << " line=" << G.L1Line
      << " ways=" << G.L1Ways;
}

TEST_P(CacheProperty, StridedOverCapacityAlwaysMisses) {
  const CacheGeometry &G = GetParam();
  CacheConfig Cfg;
  Cfg.L1 = {G.L1Size, G.L1Line, G.L1Ways, 1};
  CacheSim C(Cfg);
  // Cycle over 4x the capacity repeatedly: LRU guarantees every access
  // at line granularity misses (the reuse distance exceeds capacity).
  uint64_t Lines = (G.L1Size / G.L1Line) * 4;
  for (int Pass = 0; Pass < 3; ++Pass)
    for (uint64_t I = 0; I < Lines; ++I)
      C.access(1 << 22 | (I * G.L1Line), 8, false, false);
  EXPECT_EQ(C.l1Stats().Misses, 3 * Lines);
  EXPECT_EQ(C.l1Stats().Hits, 0u);
}

TEST_P(CacheProperty, ResetClearsEverything) {
  const CacheGeometry &G = GetParam();
  CacheConfig Cfg;
  Cfg.L1 = {G.L1Size, G.L1Line, G.L1Ways, 1};
  CacheSim C(Cfg);
  C.access(0x100000, 8, false, false);
  C.access(0x100000, 8, false, false);
  C.reset();
  EXPECT_EQ(C.l1Stats().Hits, 0u);
  EXPECT_EQ(C.l1Stats().Misses, 0u);
  EXPECT_TRUE(C.access(0x100000, 8, false, false).FirstLevelMiss);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(CacheGeometry{1024, 64, 1},
                      CacheGeometry{4096, 64, 2},
                      CacheGeometry{8192, 128, 4},
                      CacheGeometry{16384, 64, 4},
                      CacheGeometry{65536, 128, 8},
                      CacheGeometry{32768, 32, 16}),
    [](const ::testing::TestParamInfo<CacheGeometry> &Info) {
      return "s" + std::to_string(Info.param.L1Size) + "_l" +
             std::to_string(Info.param.L1Line) + "_w" +
             std::to_string(Info.param.L1Ways);
    });

//===----------------------------------------------------------------------===//
// Interpreter determinism
//===----------------------------------------------------------------------===//

TEST(DeterminismProperty, RepeatedRunsAreIdentical) {
  GeneratorConfig Cfg;
  Cfg.Name = "det";
  Cfg.Seed = 321;
  Cfg.TotalTypes = 10;
  Cfg.LegalTypes = 3;
  Cfg.RelaxOnlyTypes = 3;
  Cfg.TransformCandidates = 2;
  Cfg.HotElements = 256;
  Cfg.HotIterations = 2;
  EXPECT_TRUE(oracles::deterministicRuns("det", generateBenchmarkSource(Cfg),
                                         /*Times=*/3));
}

} // namespace
