//===- tests/fuzz_test.cpp - Differential fuzzing subsystem tests ---------===//
//
// Covers the fuzz subsystem end to end:
//  - the generator is deterministic and only emits valid, terminating,
//    trap-free programs;
//  - the differential harness passes all four oracles across a seed
//    sweep, and transforms actually fire within the sweep (the oracles
//    are vacuous if nothing is ever rewritten);
//  - a deliberately broken legality analysis (the InjectLegalityBug
//    hook) is caught by the behavioural oracles and minimized to a
//    sub-30-line repro by the delta-debugging reducer;
//  - injected memory hazards (dangling use, uninitialized read) that
//    are dynamically silent are flagged by the lint oracle, and a
//    deliberately broken lint (InjectLintBug) fails it; the repro
//    minimizes below 30 lines against the honest lint verdict;
//  - the engine-parity oracle (tree walker vs bytecode VM) passes a
//    seed sweep and catches a deliberately mis-charging VM
//    (--inject-vm-bug);
//  - the committed seed corpus passes;
//  - the interpreter's heap-leak census (the LeakCensus oracle's input)
//    counts unfreed allocations exactly.
//
//===----------------------------------------------------------------------===//

#include "Oracles.h"
#include "analysis/lint/Lint.h"
#include "fuzz/DifferentialHarness.h"
#include "fuzz/ProgramFuzzer.h"
#include "fuzz/Reducer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace slo;

namespace {

/// Lines of actual MiniC: non-blank, non-comment.
unsigned countCodeLines(const std::string &Source) {
  std::istringstream In(Source);
  std::string L;
  unsigned N = 0;
  while (std::getline(In, L)) {
    size_t First = L.find_first_not_of(" \t");
    if (First == std::string::npos)
      continue;
    if (L.compare(First, 2, "//") == 0)
      continue;
    ++N;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Generator properties
//===----------------------------------------------------------------------===//

TEST(ProgramFuzzer, GenerationIsDeterministic) {
  for (uint64_t Seed : {1ull, 7ull, 1234ull}) {
    FuzzConfig A = randomFuzzConfig(Seed);
    FuzzConfig B = randomFuzzConfig(Seed);
    EXPECT_EQ(A.describe(), B.describe()) << "seed " << Seed;
    EXPECT_EQ(generateFuzzProgram(A).render(), generateFuzzProgram(B).render())
        << "seed " << Seed;
  }
  EXPECT_NE(generateFuzzProgram(randomFuzzConfig(5)).render(),
            generateFuzzProgram(randomFuzzConfig(6)).render());
}

TEST(ProgramFuzzer, GeneratedProgramsAlwaysCompile) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    FuzzProgram P = generateFuzzProgram(randomFuzzConfig(Seed));
    IRContext Ctx;
    std::vector<std::string> Diags;
    auto M = compileProgram(Ctx, P.Name, {P.render()}, Diags);
    ASSERT_TRUE(M) << "seed " << Seed << ": "
                   << (Diags.empty() ? "?" : Diags.front()) << "\n"
                   << P.render();
    RunResult R = runProgram(*M);
    EXPECT_FALSE(R.Trapped)
        << "seed " << Seed << ": " << R.TrapReason << "\n" << P.render();
    EXPECT_GT(R.Instructions, 0u) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Differential sweep
//===----------------------------------------------------------------------===//

TEST(DifferentialHarness, SeedSweepPassesAllOracles) {
  unsigned TotalTransformed = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    FuzzProgram P = generateFuzzProgram(randomFuzzConfig(Seed));
    DifferentialOutcome O;
    EXPECT_TRUE(oracles::transformEquivalent(P.Name, P.render(), &O))
        << "seed " << Seed << "\n" << P.render();
    TotalTransformed += O.TypesTransformed;
  }
  // The sweep must exercise the BE: if nothing is ever transformed, the
  // equivalence oracles are vacuously true and the fuzzer tests nothing.
  EXPECT_GT(TotalTransformed, 0u);
}

TEST(DifferentialHarness, GeneratedProgramsRunDeterministically) {
  for (uint64_t Seed : {3ull, 11ull, 19ull}) {
    FuzzProgram P = generateFuzzProgram(randomFuzzConfig(Seed));
    EXPECT_TRUE(oracles::deterministicRuns(P.Name, P.render()))
        << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Engine parity: tree walker vs bytecode VM
//===----------------------------------------------------------------------===//

TEST(DifferentialHarness, EngineParitySweepPasses) {
  // Both the base and the transformed module of every seed run under
  // the walker and the VM; the oracle demands bit-identical results,
  // attribution heatmaps, and profiles (see also tests/vm_test.cpp for
  // the per-opcode and all-workload parity coverage).
  DifferentialOptions Opts;
  Opts.CheckEngineParity = true;
  unsigned TotalTransformed = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    FuzzProgram P = generateFuzzProgram(randomFuzzConfig(Seed));
    DifferentialOutcome O = runDifferential(P.Name, P.render(), Opts);
    EXPECT_TRUE(O.Passed) << "seed " << Seed << ": "
                          << fuzzOracleName(O.Oracle) << ": " << O.Detail
                          << "\n"
                          << P.render();
    TotalTransformed += O.TypesTransformed;
  }
  // The transform-on half of the oracle is vacuous if the BE never
  // rewrote anything across the sweep.
  EXPECT_GT(TotalTransformed, 0u);
}

TEST(DifferentialHarness, InjectedVmBugIsCaughtByEngineParity) {
  // The deliberate VM cycle mis-charge must flip a clean program into an
  // EngineParity failure — proving the oracle actually compares.
  FuzzProgram P = generateFuzzProgram(randomFuzzConfig(7));
  std::string Src = P.render();

  DifferentialOptions Honest;
  Honest.CheckEngineParity = true;
  DifferentialOutcome HO = runDifferential(P.Name, Src, Honest);
  ASSERT_TRUE(HO.Passed) << fuzzOracleName(HO.Oracle) << ": " << HO.Detail;

  DifferentialOptions Broken = Honest;
  Broken.InjectVmBug = true;
  DifferentialOutcome BO = runDifferential(P.Name, Src, Broken);
  ASSERT_FALSE(BO.Passed);
  EXPECT_EQ(BO.Oracle, FuzzOracle::EngineParity) << BO.Detail;
  // Without the parity oracle the same injection passes silently: the
  // bug only perturbs VM cycle accounting, never program semantics.
  DifferentialOptions NoParity;
  NoParity.InjectVmBug = true;
  DifferentialOutcome NO = runDifferential(P.Name, Src, NoParity);
  EXPECT_TRUE(NO.Passed) << fuzzOracleName(NO.Oracle) << ": " << NO.Detail;
}

//===----------------------------------------------------------------------===//
// Fault injection + minimization (the acceptance-criteria test)
//===----------------------------------------------------------------------===//

/// A configuration whose programs keep the pun struct free of planner
/// blockers: with the legality bits stripped, the planner admits the
/// punned type and the split breaks the raw long* reads observably.
FuzzConfig injectionConfig(uint64_t Seed) {
  FuzzConfig C;
  C.Seed = Seed;
  C.Name = "inj" + std::to_string(Seed);
  C.MinStructs = 1;
  C.MaxStructs = 1;
  C.MinFields = 5;
  C.MaxFields = 7;
  C.CastPunChance = 1.0;
  C.DeadFieldChance = 0.2;
  C.HeapCallocChance = 0.0;
  C.WrapperAllocChance = 0.0;
  C.MemcpyChance = 0.0;
  C.AddrTakenChance = 0.0;
  C.AddrArgChance = 0.0;
  C.MaxLoopNest = 2;
  C.MinElements = 8;
  C.MaxElements = 16;
  C.MaxIterations = 2;
  return C;
}

TEST(DifferentialHarness, InjectedLegalityBugIsCaughtAndMinimized) {
  DifferentialOptions Broken;
  Broken.InjectLegalityBug = true;

  FuzzProgram Witness;
  DifferentialOutcome Failure;
  bool Found = false;
  for (uint64_t Seed = 1; Seed <= 40 && !Found; ++Seed) {
    FuzzProgram P = generateFuzzProgram(injectionConfig(Seed));
    std::string Src = P.render();
    // The same program must be clean under the honest pipeline: the
    // divergence below is the injected bug's doing, not the program's.
    DifferentialOutcome Honest = runDifferential(P.Name, Src);
    ASSERT_TRUE(Honest.Passed)
        << "seed " << Seed << ": " << Honest.Detail << "\n" << Src;
    DifferentialOutcome O = runDifferential(P.Name, Src, Broken);
    if (!O.Passed) {
      // The mis-transformation must surface behaviourally: wrong output,
      // or an out-of-bounds trap from the shrunken hot records.
      EXPECT_TRUE(O.Oracle == FuzzOracle::Output ||
                  O.Oracle == FuzzOracle::OptTrap ||
                  O.Oracle == FuzzOracle::LeakCensus)
          << fuzzOracleName(O.Oracle) << ": " << O.Detail;
      Witness = P;
      Failure = O;
      Found = true;
    }
  }
  ASSERT_TRUE(Found)
      << "no seed in 1..40 tripped the injected legality bug — the "
         "fuzzer has lost its ability to detect broken legality analyses";

  // Delta-debug the witness down to a small repro that still fails the
  // same oracle under the broken pipeline.
  FuzzOracle Want = Failure.Oracle;
  auto StillFails = [&](const FuzzProgram &Candidate) {
    return runDifferential(Candidate.Name, Candidate.render(), Broken)
               .Oracle == Want;
  };
  ReduceStats Stats;
  FuzzProgram Reduced = reduceProgram(Witness, StillFails, &Stats);
  std::string ReducedSrc = Reduced.render();

  EXPECT_TRUE(StillFails(Reduced)) << ReducedSrc;
  EXPECT_GT(Stats.Attempts, 0u);
  EXPECT_LT(countCodeLines(ReducedSrc), 30u)
      << "repro not minimal enough (" << countCodeLines(ReducedSrc)
      << " code lines):\n"
      << ReducedSrc;
  // And the honest pipeline still accepts the reduced program.
  DifferentialOutcome Honest = runDifferential(Reduced.Name, ReducedSrc);
  EXPECT_TRUE(Honest.Passed) << Honest.Detail << "\n" << ReducedSrc;
}

//===----------------------------------------------------------------------===//
// Lint oracle: injected memory hazards
//===----------------------------------------------------------------------===//

/// The honest lint verdict on a candidate: does a fresh compile + lint
/// still claim a use-after-free? (The reducer's predicate.)
bool lintStillFlagsUaf(const FuzzProgram &Candidate) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, Candidate.Name, {Candidate.render()}, Diags);
  if (!M)
    return false;
  return runLint(*M).has(LintKind::UseAfterFree);
}

TEST(DifferentialHarness, InjectedHazardsAreFlaggedByLint) {
  // Both hazard kinds are dynamically silent by construction (the heap
  // fill is deterministic and free() does not poison), so only the lint
  // oracle can tell an injected program from a clean one. ExpectedHazard
  // makes the harness DEMAND the matching lint finding.
  for (HazardKind K : {HazardKind::DanglingUse, HazardKind::UninitRead}) {
    for (uint64_t Seed : {1ull, 2ull, 3ull}) {
      FuzzProgram P = generateFuzzProgram(randomFuzzConfig(Seed));
      injectHazard(P, K);
      std::string Src = P.render();

      // The static verdict itself names the right hazard class.
      IRContext Ctx;
      std::vector<std::string> Diags;
      auto M = compileProgram(Ctx, P.Name, {Src}, Diags);
      ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags.front());
      LintResult L = runLint(*M);
      EXPECT_TRUE(L.has(K == HazardKind::DanglingUse
                            ? LintKind::UseAfterFree
                            : LintKind::UninitRead))
          << hazardKindName(K) << " seed " << Seed << "\n" << Src;

      // And the full harness passes: lint flags the hazard (satisfying
      // the expected-hazard check) while the behavioural oracles stay
      // green on the dynamically-silent program.
      DifferentialOptions Opts;
      Opts.ExpectedHazard = K;
      DifferentialOutcome O = runDifferential(P.Name, Src, Opts);
      EXPECT_TRUE(O.Passed) << hazardKindName(K) << " seed " << Seed << ": "
                            << fuzzOracleName(O.Oracle) << ": " << O.Detail;
    }
  }
}

TEST(DifferentialHarness, InjectedLintBugIsCaughtAndMinimized) {
  // Break the lint lifetime tracking and hand it a program with a real
  // dangling use: the lint oracle must be the one that fails.
  FuzzProgram P = generateFuzzProgram(randomFuzzConfig(3));
  injectHazard(P, HazardKind::DanglingUse);
  ASSERT_TRUE(lintStillFlagsUaf(P));

  DifferentialOptions Broken;
  Broken.InjectLintBug = true;
  Broken.ExpectedHazard = HazardKind::DanglingUse;
  DifferentialOutcome O = runDifferential(P.Name, P.render(), Broken);
  ASSERT_FALSE(O.Passed);
  EXPECT_EQ(O.Oracle, FuzzOracle::Lint) << O.Detail;

  // Delta-debug against the honest lint verdict: the minimized repro
  // still carries the use-after-free claim and stays tiny.
  ReduceStats Stats;
  FuzzProgram Reduced = reduceProgram(P, lintStillFlagsUaf, &Stats);
  std::string ReducedSrc = Reduced.render();
  EXPECT_TRUE(lintStillFlagsUaf(Reduced)) << ReducedSrc;
  EXPECT_GT(Stats.Attempts, 0u);
  EXPECT_LT(countCodeLines(ReducedSrc), 30u)
      << "repro not minimal enough (" << countCodeLines(ReducedSrc)
      << " code lines):\n"
      << ReducedSrc;
  // The reduced repro still trips the broken harness the same way...
  DifferentialOutcome RO = runDifferential(Reduced.Name, ReducedSrc, Broken);
  EXPECT_FALSE(RO.Passed);
  EXPECT_EQ(RO.Oracle, FuzzOracle::Lint) << RO.Detail;
  // ...and passes the honest one.
  DifferentialOptions Honest;
  Honest.ExpectedHazard = HazardKind::DanglingUse;
  DifferentialOutcome HO = runDifferential(Reduced.Name, ReducedSrc, Honest);
  EXPECT_TRUE(HO.Passed) << fuzzOracleName(HO.Oracle) << ": " << HO.Detail;
}

//===----------------------------------------------------------------------===//
// Reducer unit behaviour
//===----------------------------------------------------------------------===//

TEST(Reducer, LineReducerFindsSingleCulprit) {
  std::ostringstream Src;
  for (int I = 0; I < 63; ++I)
    Src << "line " << I << "\n";
  Src << "CULPRIT\n";
  for (int I = 63; I < 100; ++I)
    Src << "line " << I << "\n";
  ReduceStats Stats;
  std::string Reduced = reduceSourceLines(
      Src.str(),
      [](const std::string &S) {
        return S.find("CULPRIT") != std::string::npos;
      },
      &Stats);
  EXPECT_EQ(Reduced, "CULPRIT\n");
  EXPECT_GT(Stats.Accepted, 0u);
}

TEST(Reducer, RespectsAttemptBudget) {
  std::ostringstream Src;
  for (int I = 0; I < 100; ++I)
    Src << "line " << I << "\n";
  ReduceStats Stats;
  reduceSourceLines(
      Src.str(), [](const std::string &) { return true; }, &Stats,
      /*MaxAttempts=*/10);
  EXPECT_LE(Stats.Attempts, 10u);
}

TEST(Reducer, StructuredReducerDropsUnrelatedUnits) {
  // Two units; the predicate only cares about unit 0's print call. The
  // reducer must drop unit 1's function entirely (with its main call).
  FuzzConfig C = randomFuzzConfig(2);
  C.MinStructs = 2;
  C.MaxStructs = 2;
  FuzzProgram P = generateFuzzProgram(C);
  ASSERT_EQ(P.MainBody.size(), 2u);
  auto Pred = [](const FuzzProgram &Candidate) {
    for (const std::string &S : Candidate.MainBody)
      if (S.find("fz_use_0") != std::string::npos)
        return true;
    return false;
  };
  FuzzProgram Reduced = reduceProgram(P, Pred);
  EXPECT_EQ(Reduced.MainBody.size(), 1u);
  for (const FuzzFunction &F : Reduced.Functions)
    EXPECT_EQ(F.Decl.find("fz_use_1"), std::string::npos) << F.Decl;
}

//===----------------------------------------------------------------------===//
// Seed corpus
//===----------------------------------------------------------------------===//

TEST(Corpus, EveryCorpusFilePassesTheDifferentialOracles) {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SLO_CORPUS_DIR))
    if (Entry.path().extension() == ".minic")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 5u) << "seed corpus went missing";
  for (const auto &Path : Files) {
    std::ifstream In(Path);
    std::stringstream Buf;
    Buf << In.rdbuf();
    EXPECT_TRUE(
        oracles::transformEquivalent(Path.stem().string(), Buf.str()))
        << Path;
  }
}

//===----------------------------------------------------------------------===//
// Heap-leak census (the LeakCensus oracle's input)
//===----------------------------------------------------------------------===//

TEST(LeakCensus, CountsUnfreedAllocationsExactly) {
  const char *Src = R"(
    extern void print_i64(long v);
    struct rec { long a; long b; };
    int main() {
      struct rec *p = (struct rec*) malloc(4 * sizeof(struct rec));
      struct rec *q = (struct rec*) malloc(2 * sizeof(struct rec));
      struct rec *r = (struct rec*) malloc(8 * sizeof(struct rec));
      p[0].a = 1; q[0].a = 2; r[0].a = 3;
      print_i64(p[0].a + q[0].a + r[0].a);
      free(q);
      return 0;
    }
  )";
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, "leak", {Src}, Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.HeapLiveAllocs, 2u);
  // 4*16 + 8*16 bytes leaked (both sizes already 16-aligned).
  EXPECT_EQ(R.HeapLiveBytes, 4u * 16 + 8u * 16);
  EXPECT_EQ(R.HeapAllocations, 3u);
}

TEST(LeakCensus, BalancedProgramReportsZero) {
  const char *Src = R"(
    extern void print_i64(long v);
    struct rec { long a; long b; };
    int main() {
      struct rec *p = (struct rec*) malloc(4 * sizeof(struct rec));
      p[0].a = 7;
      print_i64(p[0].a);
      free(p);
      return 0;
    }
  )";
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, "noleak", {Src}, Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.HeapLiveAllocs, 0u);
  EXPECT_EQ(R.HeapLiveBytes, 0u);
}

} // namespace
