//===- tests/semantics_test.cpp - MiniC language semantics, executed ------===//
//
// End-to-end semantic checks of the hand-rolled frontend + interpreter:
// each case is a MiniC program whose main() returns a value computed
// independently in the test. Parameterized so each construct is its own
// test case.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct SemCase {
  const char *Name;
  const char *Source;
  int64_t Expected;
};

class Semantics : public ::testing::TestWithParam<SemCase> {};

TEST_P(Semantics, MainReturnsExpected) {
  const SemCase &C = GetParam();
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, C.Name, C.Source, Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);
  RunOptions O;
  O.SimulateCache = false; // Pure semantics; keep it fast.
  RunResult R = runProgram(*M, std::move(O));
  ASSERT_FALSE(R.Trapped) << C.Name << ": " << R.TrapReason;
  EXPECT_EQ(R.ExitCode, C.Expected) << C.Name;
}

const SemCase Cases[] = {
    {"int_division_truncates",
     "int main() { return (int) ((-7) / 2 * 10 + (-7) % 2); }",
     -31}, // C semantics: -7/2 == -3, -7%2 == -1.
    {"shift_ops",
     "int main() { long a = 1; return (int) ((a << 5) | (64 >> 2)); }",
     48},
    {"bitwise_ops",
     "int main() { return (0xF0 & 0x3C) ^ (0x0F | 0x30); }",
     0x30 ^ 0x3F},
    {"comparison_chain",
     "int main() { return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) "
     "+ (4 == 4) + (4 != 4); }",
     4},
    {"logical_short_circuit_and",
     R"(long g;
        long bump() { g = g + 1; return 0; }
        int main() { long r = (0 != 0) && (bump() != 0); return (int)(g * 10 + r); })",
     0}, // bump never runs.
    {"logical_short_circuit_or",
     R"(long g;
        long bump() { g = g + 1; return 1; }
        int main() { long r = (1 == 1) || (bump() != 0); return (int)(g * 10 + r); })",
     1}, // bump never runs, r == 1.
    {"ternary_selects",
     "int main() { long a = 7; return (int) (a > 5 ? a * 2 : a - 5); }",
     14},
    {"compound_assignment",
     "int main() { long a = 10; a += 5; a -= 3; a *= 4; a /= 6; "
     "return (int) a; }",
     8},
    {"pre_post_increment",
     "int main() { long a = 5; long b = a++; long c = ++a; "
     "return (int) (a * 100 + b * 10 + c); }",
     757},
    {"while_with_break_continue",
     R"(int main() {
          long s = 0; long i = 0;
          while (1) {
            i++;
            if (i > 100) break;
            if (i % 3 == 0) continue;
            s += i;
          }
          return (int) (s % 1000);
        })",
     367}, // sum 1..100 minus multiples of 3 = 5050-1683=3367.
    {"nested_for_loops",
     R"(int main() {
          long s = 0;
          for (long i = 0; i < 10; i++)
            for (long j = i; j < 10; j++)
              s += 1;
          return (int) s;
        })",
     55},
    {"pointer_arith_and_deref",
     R"(int main() {
          long *a = (long*) malloc(10 * 8);
          for (long i = 0; i < 10; i++) a[i] = i * i;
          long *p = a + 3;
          long v = *p + *(p + 2) + p[4];
          free(a);
          return (int) v; // 9 + 25 + 49
        })",
     83},
    {"pointer_compound_advance",
     R"(int main() {
          long *a = (long*) malloc(8 * 8);
          for (long i = 0; i < 8; i++) a[i] = i;
          long *p = a;
          p += 5;
          long x = *p;
          p -= 2;
          x = x * 10 + *p;
          free(a);
          return (int) x; // 53
        })",
     53},
    {"struct_by_pointer_chain",
     R"(struct n { long v; struct n *next; };
        int main() {
          struct n *a = (struct n*) malloc(3 * sizeof(struct n));
          a[0].v = 1; a[1].v = 2; a[2].v = 3;
          a[0].next = &a[1]; a[1].next = &a[2]; a[2].next = 0;
          long s = 0;
          struct n *p = &a[0];
          while (p != 0) { s = s * 10 + p->v; p = p->next; }
          free(a);
          return (int) s;
        })",
     123},
    {"nested_struct_dot_access",
     R"(struct in { long a; long b; };
        struct out { long x; struct in i; long y; };
        int main() {
          struct out o;
          o.x = 1; o.i.a = 2; o.i.b = 3; o.y = 4;
          return (int) (o.x * 1000 + o.i.a * 100 + o.i.b * 10 + o.y);
        })",
     1234},
    {"global_array_indexing",
     R"(long t[16];
        int main() {
          for (long i = 0; i < 16; i++) t[i] = 16 - i;
          return (int) (t[0] + t[15]);
        })",
     17},
    {"struct_array_field",
     R"(struct s { long pad; long vals[4]; };
        int main() {
          struct s x;
          for (long i = 0; i < 4; i++) x.vals[i] = i * 7;
          return (int) (x.vals[1] + x.vals[3]);
        })",
     28},
    {"char_short_truncation",
     R"(int main() {
          char c = (char) 300;   // 300 mod 256 = 44
          short s = (short) 70000; // 70000 mod 65536 = 4464
          return (int) ((long) c + (long) s);
        })",
     44 + 4464},
    {"negative_char_sign_extends",
     R"(int main() {
          char c = (char) 200; // -56 as signed char
          long l = c;
          return (int) (l + 100); // 44
        })",
     44},
    {"float_to_int_truncation",
     "int main() { double d = 9.99; return (int) d * 10 + (int) (-2.7); }",
     88},
    {"mixed_int_float_promotion",
     "int main() { long i = 7; double d = i / 2.0; "
     "return (int) (d * 10.0); }",
     35},
    {"float32_rounding",
     R"(int main() {
          float f = 0.1;
          double d = f;        // widened f32 value differs from 0.1
          if (d == 0.1) return 1;
          return 2;
        })",
     2},
    {"recursion_ackermann_small",
     R"(long ack(long m, long n) {
          if (m == 0) return n + 1;
          if (n == 0) return ack(m - 1, 1);
          return ack(m - 1, ack(m, n - 1));
        }
        int main() { return (int) ack(2, 3); })",
     9},
    {"mutual_recursion",
     R"(long isOdd(long n);
        long isEven(long n) { if (n == 0) return 1; return isOdd(n - 1); }
        long isOdd(long n) { if (n == 0) return 0; return isEven(n - 1); }
        int main() { return (int) (isEven(10) * 10 + isOdd(7)); })",
     11},
    {"function_pointer_in_struct",
     R"(struct ops { long (*apply)(long); long bias; };
        long dbl(long x) { return 2 * x; }
        int main() {
          struct ops o;
          o.apply = dbl;
          o.bias = 3;
          return (int) (o.apply(10) + o.bias);
        })",
     23},
    {"unary_minus_and_not",
     "int main() { long a = 5; return (int) (-a + 10 * !0 + !7); }",
     5},
    {"bitnot",
     "int main() { return (int) (~0 + ~5 + 12); }",
     5}, // -1 + -6 + 12
    {"hex_literals",
     "int main() { return 0xFF - 0x0F; }",
     240},
    {"calloc_zeroes",
     R"(int main() {
          long *p = (long*) calloc(8, 8);
          long s = 0;
          for (long i = 0; i < 8; i++) s += p[i];
          free(p);
          return (int) s;
        })",
     0},
    {"sizeof_values",
     R"(struct s { char c; long l; };   // padded to 16
        int main() {
          return (int) (sizeof(struct s) + sizeof(long) * 100
                        + sizeof(int) * 10 + sizeof(char));
        })",
     16 + 800 + 40 + 1},
    {"for_without_init_or_step",
     R"(int main() {
          long i = 0; long s = 0;
          for (; i < 5;) { s += i; i++; }
          return (int) s;
        })",
     10},
    {"assignment_is_expression",
     "int main() { long a; long b; a = b = 21; return (int) (a + b); }",
     42},
    {"modulo_in_loop_guard",
     R"(int main() {
          long s = 0;
          for (long i = 1; i <= 30; i++)
            if (i % 5 == 0 || i % 7 == 0) s += i;
          return (int) s; // 5+10+15+20+25+30 + 7+14+21+28 = 175
        })",
     175},
};

INSTANTIATE_TEST_SUITE_P(Language, Semantics, ::testing::ValuesIn(Cases),
                         [](const ::testing::TestParamInfo<SemCase> &I) {
                           return I.param.Name;
                         });

} // namespace
