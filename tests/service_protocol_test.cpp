//===- tests/service_protocol_test.cpp - Protocol robustness tests --------===//
//
// Frame-level robustness of the advisory daemon:
//
//  - the deterministic frame fuzzer (fixed seed, >= 200 malformed
//    frames: truncated length prefixes, zero/oversized declared
//    lengths, garbage opcodes, hostile inner string lengths, mid-frame
//    disconnects, byte soup) never crashes or wedges the daemon, never
//    draws a success reply, and leaves the accumulated state
//    fingerprint bit-identical;
//  - the oracle is non-vacuous: a daemon built with
//    DaemonConfig::InjectFrameBug (garbage opcodes answered as Ping)
//    makes the same sweep FAIL;
//  - interleaved half-written frames from two concurrent connections
//    parse independently — framing state is per-connection;
//  - protocol violations inside a Batch body are structured inner
//    errors, and the connection closes without taking state down;
//  - BodyReader arithmetic survives hostile lengths (unit level).
//
//===----------------------------------------------------------------------===//

#include "service/AdvisoryDaemon.h"
#include "service/FrameFuzzer.h"
#include "service/ServiceClient.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unistd.h>

using namespace slo;
using namespace slo::service;

namespace {

const char *TuA = R"(extern void print_i64(long v);
struct S { long x; long y; };
struct S* s_make() {
  struct S *p = (struct S*) malloc(4 * sizeof(struct S));
  for (long i = 0; i < 4; i++) { p[i].x = i; p[i].y = 2 * i; }
  return p;
}
long s_sum(struct S *p) {
  long t = 0;
  for (long i = 0; i < 4; i++) { t = t + p[i].x; }
  return t;
}
)";

std::unique_ptr<AdvisoryDaemon> makeDaemon(bool InjectFrameBug = false) {
  DaemonConfig Config;
  Config.Summary.Lint = false;
  // Tight timeouts keep the fuzz sweep fast: a stalled injection costs
  // 200ms, not 5s.
  Config.FrameTimeoutMillis = 200;
  Config.InjectFrameBug = InjectFrameBug;
  return std::make_unique<AdvisoryDaemon>(std::move(Config));
}

/// Socketpair connect hook for runFrameFuzz.
std::function<int()> socketpairConnect(AdvisoryDaemon &D) {
  return [&D]() -> int {
    int Fds[2];
    if (!makeSocketPair(Fds))
      return -1;
    if (!D.adoptConnection(Fds[0])) {
      ::close(Fds[1]);
      return -1;
    }
    return Fds[1];
  };
}

FrameFuzzOptions fuzzOptions() {
  FrameFuzzOptions O;
  O.Seed = 42;
  O.Count = 210; // >= 200 malformed frames, fixed seed.
  O.ReplyTimeoutMillis = 1000;
  return O;
}

//===----------------------------------------------------------------------===//
// The fuzz sweep
//===----------------------------------------------------------------------===//

TEST(ServiceProtocolTest, FuzzSweepNeverCrashesAndStateIsUntouched) {
  auto D = makeDaemon();

  // Ingest real state first; the sweep must not move a bit of it.
  {
    int Fds[2];
    ASSERT_TRUE(makeSocketPair(Fds));
    ASSERT_TRUE(D->adoptConnection(Fds[0]));
    ServiceClient C(Fds[1]);
    ASSERT_TRUE(C.putSource("a.minic", TuA).ok());
  }
  uint64_t Before = D->state().fingerprint();

  FrameFuzzReport Report;
  EXPECT_TRUE(runFrameFuzz(fuzzOptions(), socketpairConnect(*D), Report))
      << Report.FirstViolation;
  EXPECT_EQ(Report.Sent, 210u);
  EXPECT_EQ(Report.Violations, 0u);
  // Reply-expected categories must actually draw structured errors —
  // a sweep where nothing ever answered would be vacuous too.
  EXPECT_GT(Report.Replied, 50u);
  EXPECT_GE(Report.ProbesOk, 210u / 16);

  EXPECT_EQ(D->state().fingerprint(), Before);
  EXPECT_EQ(D->state().moduleCount(), 1u);

  // And the daemon still serves real work after the abuse.
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  ASSERT_TRUE(D->adoptConnection(Fds[0]));
  ServiceClient C(Fds[1]);
  ServiceReply R = C.getAdvice(false);
  ASSERT_TRUE(R.Transport);
  EXPECT_EQ(R.Op, Opcode::Advice);
}

TEST(ServiceProtocolTest, FuzzOracleCatchesInjectedFrameBug) {
  // Non-vacuity: the deliberately broken dispatcher (garbage opcode
  // answered as Ping) must make the sweep fail.
  auto D = makeDaemon(/*InjectFrameBug=*/true);
  FrameFuzzReport Report;
  EXPECT_FALSE(runFrameFuzz(fuzzOptions(), socketpairConnect(*D), Report));
  EXPECT_GT(Report.Violations, 0u);
  EXPECT_NE(Report.FirstViolation.find("success reply"), std::string::npos)
      << Report.FirstViolation;
}

TEST(ServiceProtocolTest, FuzzFramesAreDeterministicPerSeed) {
  for (size_t I = 0; I < 40; ++I) {
    unsigned CatA = 0, CatB = 0, CatC = 0;
    std::string A = fuzzFrameBytes(42, I, CatA);
    std::string B = fuzzFrameBytes(42, I, CatB);
    std::string C = fuzzFrameBytes(43, I, CatC);
    EXPECT_EQ(A, B) << "index " << I;
    EXPECT_EQ(CatA, CatB);
    // Different seeds diverge somewhere (not necessarily every index:
    // the zero-length category is content-free).
    (void)C;
  }
  unsigned Cat = 0;
  EXPECT_NE(fuzzFrameBytes(42, 3, Cat), fuzzFrameBytes(43, 3, Cat));
}

//===----------------------------------------------------------------------===//
// Interleaved half-written frames from two connections
//===----------------------------------------------------------------------===//

TEST(ServiceProtocolTest, InterleavedHalfFramesParsePerConnection) {
  auto D = makeDaemon();
  int A[2], B[2];
  ASSERT_TRUE(makeSocketPair(A));
  ASSERT_TRUE(makeSocketPair(B));
  ASSERT_TRUE(D->adoptConnection(A[0]));
  ASSERT_TRUE(D->adoptConnection(B[0]));

  std::string PingFrame = encodeFrame(Opcode::Ping, "");
  std::atomic<bool> Failed{false};

  // Each thread dribbles its frame one byte at a time with yields in
  // between, maximizing interleaving across the two connections.
  auto Dribble = [&](int Fd) {
    for (char Byte : PingFrame) {
      if (!writeAll(Fd, std::string(1, Byte), 1000)) {
        Failed = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Frame F;
    if (readFrame(Fd, F, DefaultMaxFrameBytes, 5000, 5000) !=
            ReadStatus::Ok ||
        F.Op != Opcode::Pong)
      Failed = true;
  };
  std::thread T1(Dribble, A[1]);
  std::thread T2(Dribble, B[1]);
  T1.join();
  T2.join();
  EXPECT_FALSE(Failed.load());
  ::close(A[1]);
  ::close(B[1]);
}

//===----------------------------------------------------------------------===//
// Batch-level violations
//===----------------------------------------------------------------------===//

TEST(ServiceProtocolTest, MalformedInnerBatchFrameIsStructuredError) {
  auto D = makeDaemon();
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  ASSERT_TRUE(D->adoptConnection(Fds[0]));
  ServiceClient C(Fds[1]);

  // Batch declaring two inner frames, delivering garbage where the
  // second should be.
  std::string Body;
  appendU32(Body, 2);
  Body += encodeFrame(Opcode::Ping, "");
  Body += "\xff\xff\xff"; // Not a parseable inner frame.
  ServiceReply R = C.call(Opcode::Batch, Body);
  ASSERT_TRUE(R.Transport);
  ASSERT_EQ(R.Op, Opcode::BatchReply);
  ASSERT_EQ(R.Inner.size(), 2u);
  EXPECT_EQ(R.Inner[0].Op, Opcode::Pong);
  EXPECT_EQ(R.Inner[1].Op, Opcode::Error);
  EXPECT_EQ(R.Inner[1].Code, static_cast<uint16_t>(ErrCode::Malformed));

  // The violation closed the connection...
  Frame F;
  EXPECT_EQ(readFrame(Fds[1], F, DefaultMaxFrameBytes, 2000, 2000),
            ReadStatus::Eof);
  C.close();

  // ...but not the daemon.
  int G[2];
  ASSERT_TRUE(makeSocketPair(G));
  ASSERT_TRUE(D->adoptConnection(G[0]));
  ServiceClient C2(G[1]);
  EXPECT_EQ(C2.ping().Op, Opcode::Pong);
}

TEST(ServiceProtocolTest, NestedBatchAndShutdownInsideBatchRejected) {
  auto D = makeDaemon();
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  ASSERT_TRUE(D->adoptConnection(Fds[0]));
  ServiceClient C(Fds[1]);

  std::string Inner;
  appendU32(Inner, 1);
  Inner += encodeFrame(Opcode::Ping, "");
  std::string Body;
  appendU32(Body, 1);
  Body += encodeFrame(Opcode::Batch, Inner);
  ServiceReply R = C.call(Opcode::Batch, Body);
  ASSERT_TRUE(R.Transport);
  ASSERT_EQ(R.Op, Opcode::BatchReply);
  ASSERT_EQ(R.Inner.size(), 1u);
  EXPECT_EQ(R.Inner[0].Op, Opcode::Error);

  // Shutdown smuggled inside a Batch is rejected the same way — and
  // must NOT begin a drain.
  int G[2];
  ASSERT_TRUE(makeSocketPair(G));
  ASSERT_TRUE(D->adoptConnection(G[0]));
  ServiceClient C2(G[1]);
  std::string Body2;
  appendU32(Body2, 1);
  Body2 += encodeFrame(Opcode::Shutdown, "");
  ServiceReply R2 = C2.call(Opcode::Batch, Body2);
  ASSERT_TRUE(R2.Transport);
  ASSERT_EQ(R2.Op, Opcode::BatchReply);
  ASSERT_EQ(R2.Inner.size(), 1u);
  EXPECT_EQ(R2.Inner[0].Op, Opcode::Error);
  EXPECT_FALSE(D->stopping());
}

//===----------------------------------------------------------------------===//
// Trace-context framing (unit level; the fuzz sweep's category 8
// exercises the same decoders through the daemon)
//===----------------------------------------------------------------------===//

/// A hand-built Traced body: u32 ext length, u8 version, u64 trace id,
/// u64 request id, optional padding, then the inner frame bytes.
std::string tracedBodyRaw(uint32_t ExtLen, uint8_t Version,
                          const std::string &Padding,
                          const std::string &InnerFrame) {
  std::string Body;
  appendU32(Body, ExtLen);
  Body.push_back(static_cast<char>(Version));
  appendU64(Body, 0x1111222233334444ull);
  appendU64(Body, 0x5555666677778888ull);
  Body += Padding;
  Body += InnerFrame;
  return Body;
}

TEST(ServiceProtocolTest, TracedRequestRoundTripsAndSkipsFutureExt) {
  TraceContext Ctx;
  Ctx.TraceId = 0xAABB;
  Ctx.RequestId = 0xCCDD;
  std::string Body = encodeTraced(Ctx, Opcode::PutSource, "payload");
  {
    BodyReader R(Body);
    TraceContext Out;
    Frame Inner;
    ASSERT_TRUE(decodeTracedRequest(R, Out, Inner, DefaultMaxFrameBytes));
    EXPECT_TRUE(R.atEnd());
    EXPECT_EQ(Out.Version, TraceContextVersion);
    EXPECT_EQ(Out.TraceId, 0xAABBu);
    EXPECT_EQ(Out.RequestId, 0xCCDDu);
    EXPECT_EQ(Inner.Op, Opcode::PutSource);
    EXPECT_EQ(std::string(Inner.Body.begin(), Inner.Body.end()), "payload");
  }
  // Forward compatibility: a future version appends fields inside the
  // ext; a v1 reader skips them via the declared length (17 known bytes
  // + 4 unknown).
  std::string Future = tracedBodyRaw(17 + 4, 2, std::string(4, '\xEE'),
                                     encodeFrame(Opcode::Ping, ""));
  BodyReader R(Future);
  TraceContext Out;
  Frame Inner;
  ASSERT_TRUE(decodeTracedRequest(R, Out, Inner, DefaultMaxFrameBytes));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Out.Version, 2);
  EXPECT_EQ(Inner.Op, Opcode::Ping);
}

TEST(ServiceProtocolTest, TracedRequestRejectsMalformedExt) {
  const std::string Ping = encodeFrame(Opcode::Ping, "");
  const struct {
    const char *What;
    std::string Body;
  } Cases[] = {
      {"version 0", tracedBodyRaw(17, 0, "", Ping)},
      {"ext shorter than known fields", tracedBodyRaw(16, 1, "", Ping)},
      {"ext length overruns the body", tracedBodyRaw(0xFFFFFF, 1, "", Ping)},
      {"truncated inner frame",
       tracedBodyRaw(17, 1, "", Ping.substr(0, Ping.size() - 1))},
      {"missing inner frame", tracedBodyRaw(17, 1, "", "")},
  };
  for (const auto &C : Cases) {
    BodyReader R(C.Body);
    TraceContext Ctx;
    Frame Inner;
    EXPECT_FALSE(decodeTracedRequest(R, Ctx, Inner, DefaultMaxFrameBytes))
        << C.What;
  }
}

TEST(ServiceProtocolTest, TracedReplyBoundsHostileSpanCount) {
  // A reply claiming 2^31 spans in a tiny body must fail the bound
  // check, not reserve gigabytes.
  std::string Body;
  appendU32(Body, 17);
  Body.push_back(1);
  appendU64(Body, 1);
  appendU64(Body, 2);
  appendU32(Body, 0x80000000u);
  Body += "tiny";
  BodyReader R(Body);
  TraceContext Ctx;
  std::vector<DaemonSpan> Spans;
  Frame Inner;
  EXPECT_FALSE(decodeTracedReply(R, Ctx, Spans, Inner, DefaultMaxFrameBytes));
  EXPECT_TRUE(Spans.empty());

  // And the well-formed round trip through the real encoder works.
  TraceContext C2;
  C2.TraceId = 5;
  C2.RequestId = 6;
  std::vector<DaemonSpan> In;
  In.push_back({"read", 0, 10});
  In.push_back({"render", 10, 20});
  std::string Reply =
      encodeTracedReplyBody(C2, In, encodeFrame(Opcode::Ok, ""));
  BodyReader R2(Reply);
  ASSERT_TRUE(decodeTracedReply(R2, Ctx, Spans, Inner, DefaultMaxFrameBytes));
  EXPECT_TRUE(R2.atEnd());
  EXPECT_EQ(Ctx.TraceId, 5u);
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_EQ(Spans[0].Name, "read");
  EXPECT_EQ(Spans[1].Name, "render");
  EXPECT_EQ(Spans[1].DurMicros, 20u);
  EXPECT_EQ(Inner.Op, Opcode::Ok);
}

TEST(ServiceProtocolTest, DaemonRejectsMalformedTraceExtOverTheWire) {
  // The wire-level check: a Traced frame with ext version 0 draws
  // Error(Malformed) and closes the connection, state untouched.
  auto D = makeDaemon();
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  ASSERT_TRUE(D->adoptConnection(Fds[0]));
  ServiceClient C(Fds[1]);
  ServiceReply R = C.call(
      Opcode::Traced, tracedBodyRaw(17, 0, "", encodeFrame(Opcode::Ping, "")));
  ASSERT_TRUE(R.Transport);
  EXPECT_EQ(R.Op, Opcode::Error);
  EXPECT_EQ(R.Code, static_cast<uint16_t>(ErrCode::Malformed));
  EXPECT_EQ(D->state().moduleCount(), 0u);
}

//===----------------------------------------------------------------------===//
// BodyReader hostile-length arithmetic (unit level)
//===----------------------------------------------------------------------===//

TEST(ServiceProtocolTest, BodyReaderRejectsHostileLengths) {
  // Inner string claims 0xfffffff0 bytes in a 10-byte body: must fail,
  // not wrap or overread.
  std::string Body;
  appendU32(Body, 0xfffffff0u);
  Body += "abcdef";
  BodyReader R(Body);
  std::string S;
  EXPECT_FALSE(R.readString(S));
  EXPECT_TRUE(R.failed());
  // A failed cursor stays failed.
  uint8_t V = 0;
  EXPECT_FALSE(R.readU8(V));
  EXPECT_FALSE(R.atEnd());
}

TEST(ServiceProtocolTest, ReadFrameRejectsZeroAndOversizedLengths) {
  int Fds[2];
  ASSERT_TRUE(makeSocketPair(Fds));
  std::string Zero;
  appendU32(Zero, 0);
  ASSERT_TRUE(writeAll(Fds[0], Zero, 1000));
  Frame F;
  EXPECT_EQ(readFrame(Fds[1], F, DefaultMaxFrameBytes, 1000, 1000),
            ReadStatus::BadLength);

  std::string Huge;
  appendU32(Huge, DefaultMaxFrameBytes + 1);
  ASSERT_TRUE(writeAll(Fds[0], Huge, 1000));
  EXPECT_EQ(readFrame(Fds[1], F, DefaultMaxFrameBytes, 1000, 1000),
            ReadStatus::TooLarge);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

} // namespace
