//===- tests/pointsto_test.cpp - Points-to & refinement unit tests --------===//

#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "analysis/PointsTo.h"
#include "frontend/Frontend.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct Refined {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
  LegalityResult Legal;
  PointsToResult PT;
  DiagnosticEngine Diags;
  RefinementResult Refinement;
};

static Refined refine(const char *Src) {
  Refined R;
  R.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> FeDiags;
  R.M = compileMiniC(*R.Ctx, "t", Src, FeDiags);
  EXPECT_TRUE(R.M) << (FeDiags.empty() ? "?" : FeDiags[0]);
  R.Legal = analyzeLegality(*R.M);
  R.PT = analyzePointsTo(*R.M);
  R.Refinement = refineLegality(*R.M, R.Legal, R.PT, &R.Diags);
  return R;
}

static RecordType *record(Refined &R, const char *Name) {
  RecordType *Rec = R.Ctx->getTypes().lookupRecord(Name);
  EXPECT_NE(Rec, nullptr) << Name;
  return Rec;
}

static const SiteProof *proofFor(const TypeRefinement &TR, Violation Kind) {
  for (const SiteProof &P : TR.Proofs)
    if (P.Site->Kind == Kind)
      return &P;
  return nullptr;
}

TEST(PointsToTest, LocalAllocationDoesNotEscape) {
  Refined R = refine(R"(
    struct s { long a; long b; long c; };
    int main() {
      struct s *l = (struct s*) malloc(4 * sizeof(struct s));
      l->a = 1;
      return (int) l->a;
    }
  )");
  std::vector<PointsToResult::ObjectID> Objs =
      R.PT.objectsViewedAs(record(R, "s"));
  ASSERT_EQ(Objs.size(), 1u);
  const MemObject &O = R.PT.object(Objs[0]);
  EXPECT_EQ(O.K, MemObject::Kind::Heap);
  EXPECT_EQ(O.Escape, EscapeState::NoEscape);
}

TEST(PointsToTest, GlobalPointerEscapesGlobally) {
  Refined R = refine(R"(
    struct s { long a; long b; long c; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      p->a = 1;
      return 0;
    }
  )");
  std::vector<PointsToResult::ObjectID> Objs =
      R.PT.objectsViewedAs(record(R, "s"));
  ASSERT_EQ(Objs.size(), 1u);
  EXPECT_EQ(R.PT.object(Objs[0]).Escape, EscapeState::GlobalEscape);
}

TEST(PointsToTest, WrapperMallocCastDischarged) {
  // The paper invalidates wrapper-allocated types (CSTT); the points-to
  // refinement proves the cast benign, but the type stays untransformable
  // because the allocation site is not rewritable.
  Refined R = refine(R"(
    struct s { long a; long b; };
    struct s *p;
    void *wrap(long bytes) { return malloc(bytes); }
    int main() {
      p = (struct s*) wrap(10 * sizeof(struct s));
      p->a = 1;
      return 0;
    }
  )");
  RecordType *Rec = record(R, "s");
  const TypeLegality &L = R.Legal.get(Rec);
  ASSERT_TRUE(L.hasViolation(Violation::CSTT))
      << violationMaskToString(L.Violations);

  const TypeRefinement *TR = R.Refinement.get(Rec);
  ASSERT_NE(TR, nullptr);
  const SiteProof *P = proofFor(*TR, Violation::CSTT);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->Discharged) << P->Fact;
  EXPECT_TRUE(TR->ProvenLegal);
  EXPECT_TRUE(R.Refinement.isProvenLegal(Rec));
  // wrap's malloc is not a rewritable allocation site of 's'.
  EXPECT_FALSE(TR->TransformSafe);
}

TEST(PointsToTest, RoundTripThroughUntypedPointerDischarged) {
  // s* -> long* -> s* with no dereference of the untyped alias: both the
  // CSTF and the CSTT site are proven benign, and the direct malloc makes
  // the type transformable.
  Refined R = refine(R"(
    struct s { long a; long b; long c; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(8 * sizeof(struct s));
      long *raw = (long*) p;
      struct s *q = (struct s*) raw;
      q->a = 1;
      return (int) q->a;
    }
  )");
  RecordType *Rec = record(R, "s");
  const TypeLegality &L = R.Legal.get(Rec);
  ASSERT_TRUE(L.hasViolation(Violation::CSTF))
      << violationMaskToString(L.Violations);
  ASSERT_TRUE(L.hasViolation(Violation::CSTT))
      << violationMaskToString(L.Violations);

  const TypeRefinement *TR = R.Refinement.get(Rec);
  ASSERT_NE(TR, nullptr);
  const SiteProof *F = proofFor(*TR, Violation::CSTF);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->Discharged) << F->Fact;
  const SiteProof *T = proofFor(*TR, Violation::CSTT);
  ASSERT_NE(T, nullptr);
  EXPECT_TRUE(T->Discharged) << T->Fact;
  EXPECT_TRUE(TR->ProvenLegal);
  EXPECT_TRUE(TR->TransformSafe);
}

TEST(PointsToTest, DereferencedForeignAliasBlocksCSTF) {
  // raw[0] reads the layout through a foreign-typed alias: the CSTF site
  // must NOT be discharged.
  Refined R = refine(R"(
    struct s { long a; long b; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      long *raw = (long*) p;
      return (int) raw[0];
    }
  )");
  RecordType *Rec = record(R, "s");
  ASSERT_TRUE(R.Legal.get(Rec).hasViolation(Violation::CSTF));
  const TypeRefinement *TR = R.Refinement.get(Rec);
  ASSERT_NE(TR, nullptr);
  const SiteProof *F = proofFor(*TR, Violation::CSTF);
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Discharged) << F->Fact;
  EXPECT_FALSE(TR->ProvenLegal);
  EXPECT_FALSE(R.Refinement.isProvenLegal(Rec));
}

TEST(PointsToTest, FieldAddrInCallArgSetsAttrs) {
  // Regression: a field address passed directly as a call argument is
  // tolerated (no ATKN), but must still record the escape information.
  Refined R = refine(R"(
    struct s { long a; long b; };
    struct s *p;
    void sink(long *x) { *x = 3; }
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      sink(&p->b);
      return 0;
    }
  )");
  RecordType *Rec = record(R, "s");
  const TypeLegality &L = R.Legal.get(Rec);
  EXPECT_FALSE(L.hasViolation(Violation::ATKN))
      << violationMaskToString(L.Violations);
  EXPECT_TRUE(L.Attrs.PassedToFunction);
  const Function *Sink = nullptr;
  for (const auto &F : R.M->functions())
    if (F->getName() == "sink")
      Sink = F.get();
  ASSERT_NE(Sink, nullptr);
  EXPECT_TRUE(L.EscapesTo.count(Sink));
}

TEST(PointsToTest, StashedFieldAddressDischargedWhenContained) {
  // &p->b stored to a global but only used inside analyzed code: ATKN is
  // flagged, then discharged, and the planner is told to keep field 1
  // live.
  Refined R = refine(R"(
    struct s { long a; long b; long c; };
    struct s *p;
    long *stash;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      stash = &p->b;
      *stash = 7;
      return 0;
    }
  )");
  RecordType *Rec = record(R, "s");
  ASSERT_TRUE(R.Legal.get(Rec).hasViolation(Violation::ATKN));
  const TypeRefinement *TR = R.Refinement.get(Rec);
  ASSERT_NE(TR, nullptr);
  const SiteProof *P = proofFor(*TR, Violation::ATKN);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->Discharged) << P->Fact;
  EXPECT_TRUE(TR->ProvenLegal);
  EXPECT_EQ(TR->AddressTakenLiveFields.count(1u), 1u);
}

TEST(PointsToTest, ExternalEscapeBlocksDischarge) {
  // The stashed field address reaches an external function: nothing can
  // be proven about the callee, so the ATKN site stays undischarged.
  Refined R = refine(R"(
    extern void sink(long *x);
    struct s { long a; long b; };
    struct s *p;
    long *stash;
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      stash = &p->b;
      sink(stash);
      return 0;
    }
  )");
  RecordType *Rec = record(R, "s");
  ASSERT_TRUE(R.Legal.get(Rec).hasViolation(Violation::ATKN));
  const TypeRefinement *TR = R.Refinement.get(Rec);
  ASSERT_NE(TR, nullptr);
  const SiteProof *P = proofFor(*TR, Violation::ATKN);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(P->Discharged) << P->Fact;
  EXPECT_FALSE(TR->ProvenLegal);
}

TEST(PointsToTest, IndirectCallResolvedButNotProven) {
  // IND is never discharged (the paper's Relax column does not forgive
  // it either), but the resolved target set is reported.
  Refined R = refine(R"(
    struct s { long a; };
    struct s *p;
    void taker(struct s *q) { q->a = 1; }
    int main() {
      p = (struct s*) malloc(4 * sizeof(struct s));
      void (*fn)(struct s*);
      fn = taker;
      fn(p);
      return 0;
    }
  )");
  RecordType *Rec = record(R, "s");
  ASSERT_TRUE(R.Legal.get(Rec).hasViolation(Violation::IND));
  const TypeRefinement *TR = R.Refinement.get(Rec);
  ASSERT_NE(TR, nullptr);
  EXPECT_EQ(TR->ResolvedIndirectSites, 1u);
  EXPECT_FALSE(TR->ProvenLegal);

  // The solver itself resolves the site to exactly 'taker'.
  const IndirectCallInst *IC = nullptr;
  for (const auto &F : R.M->functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (const auto *C = dyn_cast<IndirectCallInst>(I.get()))
          IC = C;
  ASSERT_NE(IC, nullptr);
  PointsToResult::CallTargets T = R.PT.callTargets(IC);
  EXPECT_TRUE(T.Complete);
  ASSERT_EQ(T.Targets.size(), 1u);
  EXPECT_EQ(T.Targets[0]->getName(), "taker");
}

TEST(PointsToTest, DistinctAllocationsDoNotAlias) {
  Refined R = refine(R"(
    struct a { long x; long y; long z; };
    struct b { long u; long v; long w; };
    struct a *pa;
    struct b *pb;
    int main() {
      pa = (struct a*) malloc(4 * sizeof(struct a));
      pb = (struct b*) malloc(4 * sizeof(struct b));
      pa->x = 1;
      pb->u = 2;
      return 0;
    }
  )");
  std::vector<PointsToResult::ObjectID> A =
      R.PT.objectsViewedAs(record(R, "a"));
  std::vector<PointsToResult::ObjectID> B =
      R.PT.objectsViewedAs(record(R, "b"));
  ASSERT_EQ(A.size(), 1u);
  ASSERT_EQ(B.size(), 1u);
  EXPECT_NE(A[0], B[0]);
  EXPECT_GE(R.PT.stats().NumObjects, 2u);
}

} // namespace
