//===- tests/linker_test.cpp - Cross-module linking tests -----------------===//
//
// The fuzzer compiles whole programs through compileProgram (per-TU
// front end, then link); these tests pin down the linker's cross-module
// contracts directly:
//  - same-name structs with conflicting field lists produce a structured
//    diagnostic, never a silent merge;
//  - identical struct definitions across TUs unify and run;
//  - an extern function resolved in another TU round-trips through a
//    function-pointer global (declaration and definition unify to one
//    Function the pointer call dispatches to);
//  - duplicate definitions and global type mismatches are fatal, not
//    silently last-writer-wins.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "ir/Module.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

TEST(Linker, ConflictingStructFieldListsAreDiagnosed) {
  const char *TU1 = R"(
    struct shared { long a; long b; };
    long first() { struct shared s; s.a = 1; return s.a; }
  )";
  const char *TU2 = R"(
    struct shared { long a; double weight; };
    long second() { struct shared s; s.a = 2; return s.a; }
    int main() { return 0; }
  )";
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, "conflict", {TU1, TU2}, Diags);
  EXPECT_EQ(M, nullptr);
  ASSERT_FALSE(Diags.empty());
  bool Mentioned = false;
  for (const std::string &D : Diags)
    Mentioned |= D.find("conflicting redefinition of 'struct shared'") !=
                 std::string::npos;
  EXPECT_TRUE(Mentioned) << Diags.front();
}

TEST(Linker, MatchingStructDefinitionsUnifyAndRun) {
  const char *TU1 = R"(
    extern void print_i64(long v);
    struct pair { long x; long y; };
    extern long total(struct pair *p, long n);
    int main() {
      struct pair *p = (struct pair*) malloc(4 * sizeof(struct pair));
      for (long i = 0; i < 4; i++) { p[i].x = i; p[i].y = i * 10; }
      print_i64(total(p, 4));
      free(p);
      return 0;
    }
  )";
  const char *TU2 = R"(
    struct pair { long x; long y; };
    long total(struct pair *p, long n) {
      long s = 0;
      for (long i = 0; i < n; i++) { s += p[i].x + p[i].y; }
      return s;
    }
  )";
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, "match", {TU1, TU2}, Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags.front());
  // One unified record type, not one per TU.
  EXPECT_NE(Ctx.getTypes().lookupRecord("pair"), nullptr);
  RunResult R = runProgram(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.PrintedInts.size(), 1u);
  // sum(i + 10i) for i in 0..3 = 11 * 6.
  EXPECT_EQ(R.PrintedInts[0], 66);
}

TEST(Linker, ExternFunctionPointerUnificationRoundTrips) {
  // TU1 only sees a declaration of 'twice', stores it in a
  // function-pointer global, and calls through the pointer; TU2 provides
  // the definition. After linking, the indirect call must reach the
  // definition.
  const char *TU1 = R"(
    extern void print_i64(long v);
    extern long twice(long x);
    long (*dispatch)(long);
    int main() {
      dispatch = twice;
      print_i64(dispatch(21));
      return 0;
    }
  )";
  const char *TU2 = R"(
    long twice(long x) { return x * 2; }
  )";
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, "fnptr", {TU1, TU2}, Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags.front());
  // The declaration must have been replaced by the definition, not kept
  // alongside it.
  const Function *Twice = M->lookupFunction("twice");
  ASSERT_NE(Twice, nullptr);
  EXPECT_FALSE(Twice->isDeclaration());
  RunResult R = runProgram(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.PrintedInts.size(), 1u);
  EXPECT_EQ(R.PrintedInts[0], 42);
}

TEST(LinkerDeathTest, DuplicateFunctionDefinitionIsFatal) {
  const char *TU1 = "long f() { return 1; }\nint main() { return 0; }\n";
  const char *TU2 = "long f() { return 2; }\n";
  EXPECT_DEATH(
      {
        IRContext Ctx;
        std::vector<std::string> Diags;
        compileProgram(Ctx, "dup", {TU1, TU2}, Diags);
      },
      "duplicate definition of function 'f'");
}

TEST(LinkerDeathTest, FunctionSignatureMismatchIsFatal) {
  const char *TU1 = R"(
    extern long f(long x);
    int main() { return (int) f(1); }
  )";
  const char *TU2 = "double f(double x) { return x; }\n";
  EXPECT_DEATH(
      {
        IRContext Ctx;
        std::vector<std::string> Diags;
        compileProgram(Ctx, "sig", {TU1, TU2}, Diags);
      },
      "signature mismatch for function 'f'");
}

TEST(LinkerDeathTest, GlobalTypeMismatchIsFatal) {
  const char *TU1 = "long counter;\nint main() { return 0; }\n";
  const char *TU2 = "double counter;\n";
  EXPECT_DEATH(
      {
        IRContext Ctx;
        std::vector<std::string> Diags;
        compileProgram(Ctx, "glob", {TU1, TU2}, Diags);
      },
      "for global 'counter'");
}

} // namespace
