//===- tests/ir_edge_test.cpp - Verifier/interpreter edge cases -----------===//

#include "frontend/Frontend.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

TEST(VerifierEdge, UseBeforeDefAcrossBlocksRejected) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  Module M(Ctx, "m");
  Function *F =
      M.createFunction(T.getFunctionType(T.getI64(), {T.getI1()}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Left = F->createBlock("left");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  B.createCondBr(F->getArg(0), Left, Join);
  B.setInsertPoint(Left);
  Value *OnlyInLeft =
      B.createBinary(Instruction::OpAdd, Ctx.getInt64(1), Ctx.getInt64(2));
  B.createBr(Join);
  B.setInsertPoint(Join);
  B.createRet(OnlyInLeft); // Left does not dominate Join.
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("definition"), std::string::npos);
}

TEST(VerifierEdge, BranchToForeignFunctionRejected) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  Module M(Ctx, "m");
  Function *A =
      M.createFunction(T.getFunctionType(T.getVoidType(), {}), "a");
  Function *Bf =
      M.createFunction(T.getFunctionType(T.getVoidType(), {}), "b");
  BasicBlock *ABB = A->createBlock("entry");
  BasicBlock *BBB = Bf->createBlock("entry");
  IRBuilder B(Ctx);
  B.setInsertPoint(BBB);
  B.createRet();
  B.setInsertPoint(ABB);
  B.createBr(BBB); // Cross-function branch.
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(VerifierEdge, ReturnTypeMismatchRejected) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  Module M(Ctx, "m");
  Function *F = M.createFunction(T.getFunctionType(T.getI64(), {}), "f");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(Ctx.getConstantInt(T.getI32(), 1)); // i32 vs i64.
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(VerifierEdge, FieldAddrBaseTypeMismatchRejected) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  Module M(Ctx, "m");
  RecordType *R1 = T.getOrCreateRecord("r1");
  R1->setFields({{"a", T.getI64(), 0, 0}});
  RecordType *R2 = T.getOrCreateRecord("r2");
  R2->setFields({{"b", T.getI64(), 0, 0}});
  Function *F = M.createFunction(
      T.getFunctionType(T.getVoidType(), {T.getPointerType(R1)}), "f");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  // Accessing r2 through an r1*: inconsistent.
  B.createFieldAddr(F->getArg(0), R2, 0);
  B.createRet();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(InterpreterEdge, DeepRecursionTrapsNotCrashes) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t",
                        "long f(long n) { return f(n + 1); }"
                        "int main() { return (int) f(0); }",
                        Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("depth"), std::string::npos)
      << R.TrapReason;
}

TEST(InterpreterEdge, UnknownExternTraps) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t",
                        "extern void no_such_builtin(long v);"
                        "int main() { no_such_builtin(1); return 0; }",
                        Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("no_such_builtin"), std::string::npos);
}

TEST(InterpreterEdge, DivisionByZeroTraps) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(
      Ctx, "t", "long z; int main() { return (int) (7 / z); }", Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("zero"), std::string::npos);
}

TEST(InterpreterEdge, WildPointerWriteTraps) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t", R"(
    int main() {
      long *p = (long*) 12;   // Below the null guard.
      *p = 1;
      return 0;
    }
  )",
                        Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  EXPECT_TRUE(R.Trapped);
}

TEST(InterpreterEdge, FreeNullIsNoop) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t", R"(
    int main() {
      long *p = 0;
      free(p);
      return 7;
    }
  )",
                        Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(InterpreterEdge, HeapReuseAfterFree) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t", R"(
    extern void print_i64(long v);
    int main() {
      long total = 0;
      for (long r = 0; r < 100; r++) {
        long *p = (long*) malloc(64 * 8);
        p[0] = r;
        total += p[0];
        free(p);
      }
      print_i64(total);
      return 0;
    }
  )",
                        Diags);
  ASSERT_TRUE(M);
  RunResult R = runProgram(*M);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.PrintedInts[0], 4950);
  // The free list must recycle: 100 allocations of one size stay flat.
  EXPECT_LE(R.HeapBytesAllocated, 100u * 512u + 1024u);
}

TEST(PrinterEdge, AllWorkloadIrPrintsWithoutPlaceholders) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t", R"(
    extern void print_f64(double v);
    struct s { long a; double b; struct s *next; };
    struct s *g;
    int main() {
      g = (struct s*) malloc(4 * sizeof(struct s));
      memset(g, 0, 4 * sizeof(struct s));
      g[1].a = 3;
      g[1].b = 2.5;
      g[0].next = &g[1];
      double (*f)(double);
      print_f64(g[0].next->b);
      long *raw = (long*) g;
      g = (struct s*) realloc(g, 8 * sizeof(struct s));
      free(g);
      return (int) *raw;
    }
  )",
                        Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);
  std::string S = printModule(*M);
  EXPECT_EQ(S.find("<?>"), std::string::npos) << S;
  // Representative constructs all render.
  for (const char *Needle :
       {"malloc", "memset", "realloc", "free", "bitcast", "fieldaddr",
        "indexaddr", "sizeof(s)", "struct s"})
    EXPECT_NE(S.find(Needle), std::string::npos) << Needle;
}

TEST(TypeEdge, EmptyishRecordHasSizeOne) {
  IRContext Ctx;
  RecordType *R = Ctx.getTypes().getOrCreateRecord("empty");
  R->setFields({});
  EXPECT_EQ(R->getSize(), 1u);
}

TEST(TypeEdge, ArrayFieldAlignment) {
  IRContext Ctx;
  TypeContext &T = Ctx.getTypes();
  RecordType *R = T.getOrCreateRecord("witharr");
  R->setFields({{"c", T.getI8(), 0, 0},
                {"arr", T.getArrayType(T.getI64(), 3), 0, 0},
                {"d", T.getI8(), 0, 0}});
  EXPECT_EQ(R->getField(1).Offset, 8u);
  EXPECT_EQ(R->getField(2).Offset, 32u);
  EXPECT_EQ(R->getSize(), 40u);
}

} // namespace
