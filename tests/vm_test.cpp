//===- tests/vm_test.cpp - Walker vs bytecode-VM parity -------------------===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
// The threaded bytecode VM must be bit-identical to the tree walker in
// every observable output: printed values, exit code, instruction and
// cycle counts, stall cycles, cache level statistics, first-level miss
// events, heap/leak census, trap reason, attribution partitions, and
// collected profiles. This suite pins that contract per opcode family,
// per superinstruction, and across all twelve Table 1 workloads; the
// differential fuzzer's engine-parity oracle extends it to random
// programs.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "observability/CounterRegistry.h"
#include "observability/MissAttribution.h"
#include "profile/FeedbackIO.h"
#include "runtime/Interpreter.h"
#include "runtime/VM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

struct Built {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Built buildSource(const char *Src) {
  Built B;
  B.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  B.M = compileMiniC(*B.Ctx, "t", Src, Diags);
  EXPECT_TRUE(B.M) << (Diags.empty() ? "?" : Diags[0]);
  return B;
}

static Built buildWorkload(const Workload &W) {
  Built B;
  B.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  B.M = compileProgram(*B.Ctx, W.Name, W.Sources, Diags);
  EXPECT_TRUE(B.M) << W.Name << ": " << (Diags.empty() ? "?" : Diags[0]);
  return B;
}

/// Every observable field of a RunResult must match.
static void expectSameResult(const RunResult &W, const RunResult &V,
                             const std::string &What) {
  EXPECT_EQ(W.Trapped, V.Trapped) << What;
  EXPECT_EQ(W.TrapReason, V.TrapReason) << What;
  EXPECT_EQ(W.ExitCode, V.ExitCode) << What;
  EXPECT_EQ(W.Instructions, V.Instructions) << What;
  EXPECT_EQ(W.Cycles, V.Cycles) << What;
  EXPECT_EQ(W.MemStallCycles, V.MemStallCycles) << What;
  EXPECT_EQ(W.Loads, V.Loads) << What;
  EXPECT_EQ(W.Stores, V.Stores) << What;
  EXPECT_EQ(W.L1.Hits, V.L1.Hits) << What;
  EXPECT_EQ(W.L1.Misses, V.L1.Misses) << What;
  EXPECT_EQ(W.L2.Hits, V.L2.Hits) << What;
  EXPECT_EQ(W.L2.Misses, V.L2.Misses) << What;
  EXPECT_EQ(W.L3.Hits, V.L3.Hits) << What;
  EXPECT_EQ(W.L3.Misses, V.L3.Misses) << What;
  EXPECT_EQ(W.FirstLevelMisses, V.FirstLevelMisses) << What;
  EXPECT_EQ(W.PrintedInts, V.PrintedInts) << What;
  EXPECT_EQ(W.PrintedFloats, V.PrintedFloats) << What;
  EXPECT_EQ(W.HeapBytesAllocated, V.HeapBytesAllocated) << What;
  EXPECT_EQ(W.HeapAllocations, V.HeapAllocations) << What;
  EXPECT_EQ(W.HeapLiveAllocs, V.HeapLiveAllocs) << What;
  EXPECT_EQ(W.HeapLiveBytes, V.HeapLiveBytes) << What;
}

/// Runs \p M under both engines with identical options and asserts
/// bit-identical results. Returns the walker's result for additional
/// assertions.
static RunResult expectParity(const Module &M,
                              RunOptions Base = RunOptions()) {
  RunOptions WO = Base;
  WO.Engine = ExecEngine::Walker;
  RunResult W = runProgram(M, std::move(WO));
  RunOptions VO = Base;
  VO.Engine = ExecEngine::VM;
  RunResult V = runProgram(M, std::move(VO));
  expectSameResult(W, V, M.getName());
  return W;
}

static RunResult expectSourceParity(const char *Src,
                                    RunOptions Base = RunOptions()) {
  Built B = buildSource(Src);
  if (!B.M) {
    RunResult R;
    R.Trapped = true;
    return R;
  }
  return expectParity(*B.M, std::move(Base));
}

//===----------------------------------------------------------------------===//
// Per-opcode parity
//===----------------------------------------------------------------------===//

TEST(VmParityTest, IntegerAluOps) {
  RunResult R = expectSourceParity(R"(
    extern void print_i64(long v);
    int main() {
      long a = 1234567;
      long b = -89;
      long s = 0;
      s += a + b; s += a - b; s += a * b; s += a / b; s += a % b;
      s += a & b; s += a | b; s += a ^ b;
      s += a << 3; s += a >> 2; s += b >> 2;
      s += (a == b); s += (a != b); s += (a < b);
      s += (a <= b); s += (a > b); s += (a >= b);
      print_i64(s);
      return (int) (s % 251);
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
}

TEST(VmParityTest, IntegerWrapAndEdgeCases) {
  // Signed-overflow wrap, INT64_MIN shifts, i_abs(INT64_MIN): the DInst
  // contract cases both engines must agree on exactly.
  RunResult R = expectSourceParity(R"(
    extern void print_i64(long v);
    extern long i_abs(long v);
    int main() {
      long min = (-9223372036854775807 - 1);
      long max = 9223372036854775807;
      print_i64(max + 1);       // wraps to INT64_MIN
      print_i64(min - 1);       // wraps to INT64_MAX
      print_i64(max * 3);
      print_i64(min << 1);      // wraps to 0
      print_i64(min >> 63);     // arithmetic: -1
      print_i64(i_abs(min));    // wraps to INT64_MIN
      print_i64(min % (0-1));   // 0, not a fault
      return 0;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
}

TEST(VmParityTest, DivisionOverflowTrapsIdentically) {
  RunResult R = expectSourceParity(R"(
    int main() {
      long min = (-9223372036854775807 - 1);
      long d = 0 - 1;
      return (int) (min / d);
    }
  )");
  EXPECT_TRUE(R.Trapped);
  EXPECT_EQ(R.TrapReason, "integer division overflow");
}

TEST(VmParityTest, DivisionByZeroTrapsIdentically) {
  RunResult R = expectSourceParity(R"(
    int main() { long z = 0; return (int) (7 / z); }
  )");
  EXPECT_TRUE(R.Trapped);
  EXPECT_EQ(R.TrapReason, "integer division by zero");
}

TEST(VmParityTest, FloatOpsAndBuiltins) {
  RunResult R = expectSourceParity(R"(
    extern void print_f64(double v);
    extern double f_sqrt(double x);
    extern double f_fabs(double x);
    extern double f_exp(double x);
    extern double f_log(double x);
    extern double f_floor(double x);
    int main() {
      double a = 3.5;
      double b = -1.25;
      double s = 0.0;
      s += a + b; s += a - b; s += a * b; s += a / b;
      s += f_sqrt(2.0) + f_fabs(b) + f_exp(0.5) + f_log(7.0) + f_floor(a);
      s += (a < b) + (a >= b) + (a == a) + (a != b);
      float nf = (float) s;  // fptrunc round-trip
      print_f64(nf);
      print_f64(s);
      return (int) s;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
}

TEST(VmParityTest, FpToSiSaturationAndNan) {
  RunResult R = expectSourceParity(R"(
    extern void print_i64(long v);
    int main() {
      double huge = 1.0e300;
      double z = 0.0;
      double nan = z / z;
      print_i64((long) huge);       // saturates to INT64_MAX
      print_i64((long) (0.0 - huge)); // saturates to INT64_MIN
      print_i64((long) nan);        // 0
      print_i64((long) 2147483648.5);
      return 0;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
}

TEST(VmParityTest, NarrowLoadsStoresAndCasts) {
  RunResult R = expectSourceParity(R"(
    extern void print_i64(long v);
    extern void print_f64(double v);
    struct mix { char c; short s; int i; long l; float f; double d; };
    int main() {
      struct mix *m = (struct mix*) malloc(sizeof(struct mix));
      m->c = (char) 300;     // truncates
      m->s = (short) 70000;  // truncates
      m->i = (int) 5000000000; // truncates
      m->l = -1;
      m->f = (float) 1.1;    // loses precision
      m->d = 2.2;
      print_i64(m->c); print_i64(m->s); print_i64(m->i); print_i64(m->l);
      print_f64(m->f); print_f64(m->d);
      long back = (long) m->c + (long) m->s + (long) m->i;
      free(m);
      return (int) (back % 113);
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
}

TEST(VmParityTest, CallsRecursionAndIndirectCalls) {
  RunResult R = expectSourceParity(R"(
    extern void print_i64(long v);
    long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    long twice(long x) { return 2 * x; }
    long thrice(long x) { return 3 * x; }
    int main() {
      long (*f)(long) = twice;
      long s = f(10);
      f = thrice;
      s += f(10);
      s += fib(15);
      print_i64(s);
      return (int) s;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
}

TEST(VmParityTest, HeapOpsAndLeakCensus) {
  RunResult R = expectSourceParity(R"(
    int main() {
      long *a = (long*) malloc(64);
      long *b = (long*) calloc(8, 8);
      a = (long*) realloc(a, 256);
      for (long i = 0; i < 8; i++) b[i] = i;
      long s = 0;
      for (long i = 0; i < 8; i++) s += b[i];
      free(b);
      // a is deliberately leaked: the census must agree across engines.
      return (int) s;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.HeapLiveAllocs, 1u);
}

TEST(VmParityTest, MemsetMemcpyBulkOps) {
  RunResult R = expectSourceParity(R"(
    int main() {
      char *a = (char*) malloc(1000);
      char *b = (char*) malloc(1000);
      memset(a, 7, 1000);
      memcpy(b, a, 1000);
      long s = 0;
      for (long i = 0; i < 1000; i++) s += b[i];
      free(a); free(b);
      return (int) (s % 251); // 7000 % 251
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
}

TEST(VmParityTest, InvalidAccessTrapsIdentically) {
  expectSourceParity(R"(
    int main() { long *p = (long*) 0; return (int) *p; }
  )");
  expectSourceParity(R"(
    int main() { long x = 5; free(&x); return 0; }
  )");
  expectSourceParity(R"(
    int main() {
      long (*f)(long);  // Zero-initialized: a null indirect call.
      return (int) f(1);
    }
  )");
  expectSourceParity(R"(
    extern long mystery(long x);
    int main() { return (int) mystery(3); }
  )");
}

TEST(VmParityTest, StackOverflowAndCallDepthTraps) {
  RunOptions O;
  O.MaxCallDepth = 64;
  RunResult R = expectSourceParity(R"(
    long down(long n) { return n == 0 ? 0 : 1 + down(n - 1); }
    int main() { return (int) down(1000000); }
  )",
                                   O);
  EXPECT_TRUE(R.Trapped);
}

TEST(VmParityTest, InstructionBudgetTrapsAtSameCount) {
  // The budget check runs between every two instructions — including
  // between the two halves of a fused superinstruction — so both
  // engines must stop at exactly the same instruction count, with the
  // same partial cycle total, across a range of budgets.
  Built B = buildSource(R"(
    struct node { long v; long pad; };
    int main() {
      struct node *n = (struct node*) malloc(16 * sizeof(struct node));
      long s = 0;
      for (long r = 0; r < 100; r++)
        for (long i = 0; i < 16; i++) { n[i].v = i; s += n[i].v; }
      free(n);
      return (int) s;
    }
  )");
  ASSERT_TRUE(B.M);
  for (uint64_t Budget : {1ull, 7ull, 100ull, 1001ull, 5003ull}) {
    RunOptions O;
    O.MaxInstructions = Budget;
    RunResult R = expectParity(*B.M, O);
    EXPECT_TRUE(R.Trapped) << Budget;
    EXPECT_EQ(R.TrapReason, "instruction budget exceeded");
  }
}

//===----------------------------------------------------------------------===//
// Superinstructions
//===----------------------------------------------------------------------===//

TEST(VmParityTest, SuperinstructionsFireAndStayBitIdentical) {
  // A field-access-dominated loop: the compile must fuse the
  // single-use field-address + load/store pairs (visible through the
  // vm.superinstructions counter), and the fused execution must still
  // match the walker exactly.
  Built B = buildSource(R"(
    extern void print_f64(double v);
    struct pt { long x; long y; double w; };
    int main() {
      struct pt *a = (struct pt*) malloc(500 * sizeof(struct pt));
      for (long i = 0; i < 500; i++) { a[i].x = i; a[i].y = 2 * i; a[i].w = 0.5; }
      long s = 0;
      double ws = 0.0;
      for (long r = 0; r < 20; r++)
        for (long i = 0; i < 500; i++) { s += a[i].x + a[i].y; ws += a[i].w; }
      free(a);
      print_f64(ws);
      return (int) (s % 1009);
    }
  )");
  ASSERT_TRUE(B.M);
  expectParity(*B.M);

  CounterRegistry C;
  RunOptions O;
  O.Engine = ExecEngine::VM;
  O.Counters = &C;
  runProgram(*B.M, std::move(O));
  EXPECT_GT(C.value("vm.superinstructions"), 0u);
  EXPECT_GT(C.value("vm.cache_fastpath_hits"), 0u);
}

//===----------------------------------------------------------------------===//
// Instrumented runs: attribution and profile parity
//===----------------------------------------------------------------------===//

TEST(VmParityTest, AttributionAndProfileBitIdentical) {
  Built B = buildSource(R"(
    struct rec { long hot; long a; long b; long c; double cold; };
    long work(struct rec *r, long n) {
      long s = 0;
      for (long i = 0; i < n; i++) { s += r[i].hot; r[i].a = s; }
      return s;
    }
    int main() {
      struct rec *r = (struct rec*) calloc(2000, sizeof(struct rec));
      long s = 0;
      for (long rep = 0; rep < 5; rep++) s += work(r, 2000);
      free(r);
      return (int) (s % 127);
    }
  )");
  ASSERT_TRUE(B.M);

  MissAttribution WA, VA;
  FeedbackFile WF, VF;
  RunOptions WO;
  WO.Engine = ExecEngine::Walker;
  WO.Cache = CacheConfig::scaledItanium();
  WO.Attribution = &WA;
  WO.Profile = &WF;
  RunResult W = runProgram(*B.M, std::move(WO));

  RunOptions VO;
  VO.Engine = ExecEngine::VM;
  VO.Cache = CacheConfig::scaledItanium();
  VO.Attribution = &VA;
  VO.Profile = &VF;
  RunResult V = runProgram(*B.M, std::move(VO));

  expectSameResult(W, V, "attributed run");

  // The attribution partitions must agree string-for-string, and both
  // must preserve the partition invariant.
  EXPECT_EQ(WA.renderHeatmapJson(), VA.renderHeatmapJson());
  EXPECT_EQ(WA.totalMisses(), W.FirstLevelMisses);
  EXPECT_EQ(VA.totalMisses(), V.FirstLevelMisses);

  // Collected profiles must serialize identically: same entry counts,
  // edge counts, and field cache statistics, in the same order.
  EXPECT_EQ(serializeFeedback(*B.M, WF), serializeFeedback(*B.M, VF));
}

//===----------------------------------------------------------------------===//
// Whole-workload sweep: all twelve Table 1 benchmarks
//===----------------------------------------------------------------------===//

TEST(VmParityTest, AllWorkloadsBitIdentical) {
  for (const Workload &W : allWorkloads()) {
    Built B = buildWorkload(W);
    ASSERT_TRUE(B.M) << W.Name;

    MissAttribution WA, VA;
    RunOptions WO;
    WO.Engine = ExecEngine::Walker;
    WO.IntParams = W.TrainParams;
    WO.Cache = CacheConfig::scaledItanium();
    WO.Attribution = &WA;
    RunResult WR = runProgram(*B.M, std::move(WO));

    RunOptions VO;
    VO.Engine = ExecEngine::VM;
    VO.IntParams = W.TrainParams;
    VO.Cache = CacheConfig::scaledItanium();
    VO.Attribution = &VA;
    RunResult VR = runProgram(*B.M, std::move(VO));

    expectSameResult(WR, VR, W.Name);
    EXPECT_FALSE(WR.Trapped) << W.Name << ": " << WR.TrapReason;
    EXPECT_EQ(WA.renderHeatmapJson(), VA.renderHeatmapJson()) << W.Name;
    EXPECT_EQ(VA.totalMisses(), VR.FirstLevelMisses) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// Non-vacuity and engine selection
//===----------------------------------------------------------------------===//

TEST(VmParityTest, InjectVmBugIsDetectable) {
  // The deliberate mis-charge must move the VM's cycle count off the
  // walker's while leaving semantics alone — proving the parity
  // comparison above can actually fail.
  Built B = buildSource(R"(
    int main() {
      long *a = (long*) malloc(800);
      long s = 0;
      for (long i = 0; i < 100; i++) a[i] = i;
      for (long i = 0; i < 100; i++) s += a[i];
      free(a);
      return (int) (s % 251);
    }
  )");
  ASSERT_TRUE(B.M);

  RunOptions WO;
  WO.Engine = ExecEngine::Walker;
  RunResult W = runProgram(*B.M, std::move(WO));

  RunOptions VO;
  VO.Engine = ExecEngine::VM;
  VO.InjectVmBug = true;
  RunResult V = runProgram(*B.M, std::move(VO));

  EXPECT_EQ(W.ExitCode, V.ExitCode);
  EXPECT_EQ(W.Instructions, V.Instructions);
  EXPECT_NE(W.Cycles, V.Cycles);

  // The walker ignores the flag entirely.
  RunOptions WB;
  WB.Engine = ExecEngine::Walker;
  WB.InjectVmBug = true;
  RunResult W2 = runProgram(*B.M, std::move(WB));
  EXPECT_EQ(W.Cycles, W2.Cycles);
}

TEST(VmParityTest, EngineNameParsing) {
  ExecEngine E;
  EXPECT_TRUE(parseEngineName("walker", E));
  EXPECT_EQ(E, ExecEngine::Walker);
  EXPECT_TRUE(parseEngineName("vm", E));
  EXPECT_EQ(E, ExecEngine::VM);
  EXPECT_FALSE(parseEngineName("", E));
  EXPECT_FALSE(parseEngineName("VM", E));
  EXPECT_FALSE(parseEngineName("walkerr", E));
  EXPECT_FALSE(parseEngineName("interpreter", E));
}

} // namespace
