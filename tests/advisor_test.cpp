//===- tests/advisor_test.cpp - Advisory tool and correlation tests -------===//

#include "advisor/AdvisorReport.h"
#include "advisor/Correlation.h"
#include "frontend/Frontend.h"
#include "pipeline/Pipeline.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

TEST(CorrelationTest, PerfectCorrelation) {
  EXPECT_NEAR(pearsonCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0,
              1e-12);
}

TEST(CorrelationTest, PerfectAntiCorrelation) {
  EXPECT_NEAR(pearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(CorrelationTest, UncorrelatedIsNearZero) {
  // Symmetric pattern with zero covariance.
  EXPECT_NEAR(pearsonCorrelation({1, 2, 3, 4}, {1, -1, -1, 1}), 0.0,
              1e-12);
}

TEST(CorrelationTest, ConstantVectorGivesZero) {
  EXPECT_EQ(pearsonCorrelation({5, 5, 5}, {1, 2, 3}), 0.0);
}

TEST(CorrelationTest, ExcludingAnOutlierChangesR) {
  // x and y agree except on index 0, which dominates.
  std::vector<double> X = {100, 1, 2, 3, 4};
  std::vector<double> Y = {100, 4, 3, 2, 1};
  double R = pearsonCorrelation(X, Y);
  double RPrime = pearsonCorrelationExcluding(X, Y, 0);
  EXPECT_GT(R, 0.9);      // The shared outlier dominates.
  EXPECT_LT(RPrime, 0.0); // Without it the rest anti-correlates.
}

TEST(CorrelationTest, ExcludeIsOrderInsensitive) {
  std::vector<double> X = {1, 5, 2, 8};
  std::vector<double> Y = {2, 4, 1, 9};
  EXPECT_NEAR(pearsonCorrelationExcluding(X, Y, 3),
              pearsonCorrelation({1, 5, 2}, {2, 4, 1}), 1e-12);
}

struct AdvisorFixture : public ::testing::Test {
  void SetUp() override {
    std::vector<std::string> Diags;
    M = compileMiniC(Ctx, "adv", R"(
      extern void print_i64(long v);
      struct hotcold {
        long hot;
        long cold;
        long deadf;   // written only
        long unusedf; // untouched
      };
      struct hotcold *p;
      void pin(struct hotcold *q) { }
      int main() {
        p = (struct hotcold*) malloc(2048 * sizeof(struct hotcold));
        pin(p);
        long s = 0;
        for (long i = 0; i < 2048; i++) {
          p[i].hot = i;
          p[i].cold = 2 * i;
          p[i].deadf = 3 * i;
        }
        for (long r = 0; r < 2; r++)
          for (long k = 0; k < 4; k++)
            for (long m = 0; m < 2; m++)
              for (long i = 0; i < 2048; i++)
                s += p[i].hot;
        for (long i = 0; i < 2048; i++)
          s += p[i].cold;
        print_i64(s);
        free(p);
        return 0;
      }
    )",
                     Diags);
    ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);
    RunOptions O;
    O.Profile = &Train;
    RunResult R = runProgram(*M, std::move(O));
    ASSERT_FALSE(R.Trapped) << R.TrapReason;

    PipelineOptions Opts;
    Opts.Scheme = WeightScheme::PBO;
    Opts.AnalyzeOnly = true;
    Result = runStructLayoutPipeline(*M, Opts, &Train);

    In.M = M.get();
    In.Legal = &Result.Legality;
    In.Stats = &Result.Stats;
    In.Cache = &Train;
    In.Plans = &Result.Plans;
  }

  IRContext Ctx;
  std::unique_ptr<Module> M;
  FeedbackFile Train;
  PipelineResult Result;
  AdvisorInputs In;
};

TEST_F(AdvisorFixture, ReportContainsHeaderBlock) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  EXPECT_NE(S.find("Type     : hotcold"), std::string::npos) << S;
  EXPECT_NE(S.find("Fields   : 4, 32 bytes"), std::string::npos) << S;
  EXPECT_NE(S.find("Hotness"), std::string::npos);
  EXPECT_NE(S.find("Status   : *OK*"), std::string::npos) << S;
}

TEST_F(AdvisorFixture, HotFieldShowsFullBarAndColdLess) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  // The hot field has the 100% bar.
  EXPECT_NE(S.find("|##########| \"hot\""), std::string::npos) << S;
  // The cold field's bar is not full.
  EXPECT_EQ(S.find("|##########| \"cold\""), std::string::npos) << S;
}

TEST_F(AdvisorFixture, UnusedAndDeadAreMarked) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  EXPECT_NE(S.find("\"unusedf\" *unused*"), std::string::npos) << S;
  EXPECT_NE(S.find("*dead*"), std::string::npos) << S;
}

TEST_F(AdvisorFixture, ReadWriteBarsReflectDominance) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  // hot is read 16x more than written: uppercase R bar.
  EXPECT_NE(S.find("RRRR"), std::string::npos) << S;
  // deadf is written only: uppercase W bar.
  EXPECT_NE(S.find("WWWW"), std::string::npos) << S;
}

TEST_F(AdvisorFixture, CacheLinesPresentWhenProfiled) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  EXPECT_NE(S.find("miss :"), std::string::npos) << S;
  EXPECT_NE(S.find("[cyc]"), std::string::npos) << S;
}

TEST_F(AdvisorFixture, AffinityEdgesPrinted) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  EXPECT_NE(S.find("aff  :"), std::string::npos) << S;
  EXPECT_NE(S.find("--> hot"), std::string::npos) << S;
}

TEST_F(AdvisorFixture, FullReportSortsTypesAndSkipsCold) {
  std::string S = renderAdvisorReport(In);
  EXPECT_NE(S.find("hotcold"), std::string::npos);
}

TEST_F(AdvisorFixture, TransformLinePresent) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  EXPECT_NE(S.find("Transform: Splitting"), std::string::npos) << S;
}

TEST_F(AdvisorFixture, VcgGraphIsWellFormed) {
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  const TypeFieldStats *Stats = Result.Stats.get(Rec);
  std::string S = renderVcgGraph(*Stats);
  EXPECT_EQ(S.find("graph: {"), 0u);
  EXPECT_NE(S.find("node: { title: \"hot\""), std::string::npos) << S;
  EXPECT_NE(S.rfind("}\n"), std::string::npos);
  // One node per field.
  size_t Count = 0, Pos = 0;
  while ((Pos = S.find("node: {", Pos)) != std::string::npos) {
    ++Count;
    Pos += 6;
  }
  EXPECT_EQ(Count, 4u);
}

TEST_F(AdvisorFixture, MtNotesGroupByReadWrite) {
  In.MtNotes = true;
  RecordType *Rec = Ctx.getTypes().lookupRecord("hotcold");
  std::string S = renderTypeReport(In, Rec);
  EXPECT_NE(S.find("MT note"), std::string::npos) << S;
  EXPECT_NE(S.find("write-heavy"), std::string::npos) << S;
}

} // namespace
