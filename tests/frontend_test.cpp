//===- tests/frontend_test.cpp - MiniC frontend unit tests ----------------===//

#include "frontend/Frontend.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

/// Compiles a single source and expects success.
static std::unique_ptr<Module> compileOk(IRContext &Ctx, const char *Src) {
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "test", Src, Diags);
  EXPECT_TRUE(M) << (Diags.empty() ? "no diagnostics" : Diags[0]);
  return M;
}

/// Compiles a single source and expects failure; returns the first
/// diagnostic.
static std::string compileFail(const char *Src) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "test", Src, Diags);
  EXPECT_FALSE(M);
  return Diags.empty() ? "" : Diags[0];
}

TEST(FrontendTest, EmptyMainCompiles) {
  IRContext Ctx;
  auto M = compileOk(Ctx, "int main() { return 0; }");
  ASSERT_TRUE(M);
  Function *Main = M->lookupFunction("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_FALSE(Main->isDeclaration());
}

TEST(FrontendTest, StructLayoutMatchesDeclaration) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    struct node {
      int number;
      long pred;
      double potential;
      struct node *child;
    };
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  RecordType *R = Ctx.getTypes().lookupRecord("node");
  ASSERT_NE(R, nullptr);
  ASSERT_EQ(R->getNumFields(), 4u);
  EXPECT_EQ(R->getField(0).Name, "number");
  EXPECT_EQ(R->getField(0).Offset, 0u);
  EXPECT_EQ(R->getField(1).Offset, 8u);
  EXPECT_EQ(R->getField(2).Offset, 16u);
  EXPECT_EQ(R->getField(3).Offset, 24u);
  EXPECT_EQ(R->getSize(), 32u);
}

TEST(FrontendTest, MallocProducesBitcastWithTaggedSizeof) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    struct s { long a; long b; };
    struct s *p;
    int main() {
      p = (struct s*) malloc(10 * sizeof(struct s));
      return 0;
    }
  )");
  ASSERT_TRUE(M);
  Function *Main = M->lookupFunction("main");
  bool SawMalloc = false, SawTaggedSizeof = false, SawBitcast = false;
  for (const auto &BB : Main->blocks()) {
    for (const auto &I : BB->instructions()) {
      if (auto *Mal = dyn_cast<MallocInst>(I.get())) {
        SawMalloc = true;
        // Size operand is a Mul whose RHS is the attributed constant.
        if (auto *Mul = dyn_cast<BinaryInst>(Mal->getSizeBytes())) {
          for (Value *Op : Mul->operands())
            if (auto *C = dyn_cast<ConstantInt>(Op))
              if (C->isSizeOf() &&
                  C->getSizeOfRecord()->getRecordName() == "s")
                SawTaggedSizeof = true;
        }
      }
      if (auto *C = dyn_cast<CastInst>(I.get()))
        if (C->getOpcode() == Instruction::OpBitcast &&
            C->getType()->isPointer())
          SawBitcast = true;
    }
  }
  EXPECT_TRUE(SawMalloc);
  EXPECT_TRUE(SawTaggedSizeof);
  EXPECT_TRUE(SawBitcast);
}

TEST(FrontendTest, FieldAccessLowersToFieldAddr) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    struct pt { double x; double y; };
    double take(struct pt *p) { return p->y; }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  Function *F = M->lookupFunction("take");
  bool Saw = false;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (auto *FA = dyn_cast<FieldAddrInst>(I.get())) {
        EXPECT_EQ(FA->getField().Name, "y");
        EXPECT_EQ(FA->getFieldIndex(), 1u);
        Saw = true;
      }
  EXPECT_TRUE(Saw);
}

TEST(FrontendTest, ControlFlowConstructs) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    long collatz(long n) {
      long steps = 0;
      while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
      }
      return steps;
    }
    long sum(long k) {
      long s = 0;
      for (long i = 0; i < k; i++) {
        if (i == 7) continue;
        if (i > 100) break;
        s += i;
      }
      return s;
    }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  verifyModuleOrDie(*M);
}

TEST(FrontendTest, ShortCircuitAndTernary) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    long f(long a, long b) {
      long r = (a > 0 && b > 0) ? a : b;
      if (a == 1 || b == 2) r = r + 1;
      return r;
    }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  verifyModuleOrDie(*M);
}

TEST(FrontendTest, FunctionPointersLowerToIndirectCalls) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    long inc(long x) { return x + 1; }
    long apply(long v) {
      long (*fn)(long);
      fn = inc;
      return fn(v);
    }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  Function *F = M->lookupFunction("apply");
  bool SawICall = false;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (isa<IndirectCallInst>(I.get()))
        SawICall = true;
  EXPECT_TRUE(SawICall);
}

TEST(FrontendTest, ExternFunctionsAreLibraryFunctions) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    extern void print_i64(long v);
    int main() { print_i64(42); return 0; }
  )");
  ASSERT_TRUE(M);
  Function *P = M->lookupFunction("print_i64");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->isLibFunction());
  EXPECT_TRUE(P->isDeclaration());
  EXPECT_FALSE(M->lookupFunction("main")->isLibFunction());
}

TEST(FrontendTest, GlobalsAndArrays) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    long table[16];
    long scale = 3;
    long get(long i) { return table[i] * scale; }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  GlobalVariable *Tab = M->lookupGlobal("table");
  ASSERT_NE(Tab, nullptr);
  EXPECT_TRUE(Tab->getValueType()->isArray());
  GlobalVariable *S = M->lookupGlobal("scale");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->hasIntInit());
  EXPECT_EQ(S->getIntInit(), 3);
}

TEST(FrontendTest, NestedStructsAndDotAccess) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    struct inner { long a; long b; };
    struct outer { long x; struct inner in; };
    long f() {
      struct outer o;
      o.in.b = 5;
      return o.in.b + o.x;
    }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  verifyModuleOrDie(*M);
  RecordType *Outer = Ctx.getTypes().lookupRecord("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_TRUE(Outer->getField(1).Ty->isRecord());
}

TEST(FrontendTest, AddressOfFieldCompiles) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    struct s { long a; long b; };
    long *grab(struct s *p) { return &p->b; }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  verifyModuleOrDie(*M);
}

TEST(FrontendTest, MemsetMemcpyFreeBuiltins) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    struct s { long a; long b; };
    int main() {
      struct s *p = (struct s*) malloc(4 * sizeof(struct s));
      struct s *q = (struct s*) malloc(4 * sizeof(struct s));
      memset(p, 0, 4 * sizeof(struct s));
      memcpy(q, p, 4 * sizeof(struct s));
      free(p);
      free(q);
      return 0;
    }
  )");
  ASSERT_TRUE(M);
  Function *Main = M->lookupFunction("main");
  int Memsets = 0, Memcpys = 0, Frees = 0;
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instructions()) {
      Memsets += isa<MemsetInst>(I.get());
      Memcpys += isa<MemcpyInst>(I.get());
      Frees += isa<FreeInst>(I.get());
    }
  EXPECT_EQ(Memsets, 1);
  EXPECT_EQ(Memcpys, 1);
  EXPECT_EQ(Frees, 2);
}

TEST(FrontendTest, ErrorUndeclaredIdentifier) {
  std::string D = compileFail("int main() { return nope; }");
  EXPECT_NE(D.find("undeclared"), std::string::npos) << D;
}

TEST(FrontendTest, ErrorUnknownField) {
  std::string D = compileFail(R"(
    struct s { long a; };
    int main() { struct s x; x.b = 1; return 0; }
  )");
  EXPECT_NE(D.find("no field named"), std::string::npos) << D;
}

TEST(FrontendTest, ErrorIncompleteType) {
  std::string D = compileFail(R"(
    int main() { struct never x; return 0; }
  )");
  EXPECT_NE(D.find("incomplete"), std::string::npos) << D;
}

TEST(FrontendTest, ErrorSizeofIncompleteType) {
  // Found by the differential fuzzer's reducer: dropping a struct
  // definition while a sizeof use survives must be a diagnostic, not an
  // assertion failure in RecordType::getSize().
  std::string D = compileFail(R"(
    int main() {
      struct never *p = (struct never*) malloc(4 * sizeof(struct never));
      free(p);
      return 0;
    }
  )");
  EXPECT_NE(D.find("incomplete type 'struct never'"), std::string::npos) << D;
}

TEST(FrontendTest, ErrorBadCall) {
  std::string D = compileFail(R"(
    long f(long a) { return a; }
    int main() { return (int) f(1, 2); }
  )");
  EXPECT_NE(D.find("arguments"), std::string::npos) << D;
}

TEST(FrontendTest, ErrorSyntax) {
  std::string D = compileFail("int main( { return 0; }");
  EXPECT_FALSE(D.empty());
}

TEST(FrontendTest, MultiTuProgramLinks) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, "prog",
                          {R"(
      struct shared { long v; };
      long get(struct shared *s);
      long run() { struct shared x; x.v = 7; return get(&x); }
      int main() { return (int) run(); }
    )",
                           R"(
      struct shared { long v; };
      long get(struct shared *s) { return s->v; }
    )"},
                          Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "" : Diags[0]);
  Function *Get = M->lookupFunction("get");
  ASSERT_NE(Get, nullptr);
  EXPECT_FALSE(Get->isDeclaration());
}

TEST(FrontendTest, MultiTuConflictingStructFails) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileProgram(Ctx, "prog",
                          {"struct s { long a; }; int main() { return 0; }",
                           "struct s { double a; }; long f() { return 1; }"},
                          Diags);
  EXPECT_FALSE(M);
}

TEST(FrontendTest, CastsBetweenRecordPointers) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    struct a { long x; };
    struct b { long y; };
    long peek(struct a *p) {
      struct b *q = (struct b*) p;
      return q->y;
    }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  Function *F = M->lookupFunction("peek");
  bool SawBitcast = false;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->getOpcode() == Instruction::OpBitcast)
        SawBitcast = true;
  EXPECT_TRUE(SawBitcast);
}

TEST(FrontendTest, FloatArithmeticAndConversions) {
  IRContext Ctx;
  auto M = compileOk(Ctx, R"(
    double mix(long i, float f) {
      double d = i * 2.5;
      return d + f / 3;
    }
    int main() { return 0; }
  )");
  ASSERT_TRUE(M);
  verifyModuleOrDie(*M);
}

} // namespace
