//===- tests/interpreter_test.cpp - Interpreter and cache sim tests -------===//

#include "frontend/Frontend.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

/// Compiles and runs one source; fails the test on compile errors.
static RunResult runSource(const char *Src, RunOptions Opts = RunOptions()) {
  static std::vector<std::unique_ptr<IRContext>> Contexts;
  static std::vector<std::unique_ptr<Module>> Modules;
  Contexts.push_back(std::make_unique<IRContext>());
  std::vector<std::string> Diags;
  auto M = compileMiniC(*Contexts.back(), "t", Src, Diags);
  EXPECT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);
  if (!M) {
    RunResult R;
    R.Trapped = true;
    return R;
  }
  Modules.push_back(std::move(M));
  return runProgram(*Modules.back(), std::move(Opts));
}

TEST(InterpreterTest, ReturnsExitCode) {
  RunResult R = runSource("int main() { return 42; }");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(InterpreterTest, ArithmeticAndLoops) {
  RunResult R = runSource(R"(
    int main() {
      long s = 0;
      for (long i = 1; i <= 100; i++) s += i;
      return (int) s; // 5050
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 5050);
}

TEST(InterpreterTest, CollatzControlFlow) {
  RunResult R = runSource(R"(
    long collatz(long n) {
      long steps = 0;
      while (n != 1) {
        if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
        steps++;
      }
      return steps;
    }
    int main() { return (int) collatz(27); } // 111 steps
  )");
  EXPECT_EQ(R.ExitCode, 111);
}

TEST(InterpreterTest, HeapStructsAndFields) {
  RunResult R = runSource(R"(
    struct pt { long x; long y; double w; };
    int main() {
      struct pt *a = (struct pt*) malloc(10 * sizeof(struct pt));
      for (long i = 0; i < 10; i++) {
        a[i].x = i;
        a[i].y = i * 2;
        a[i].w = 0.5;
      }
      long s = 0;
      for (long i = 0; i < 10; i++) s += a[i].x + a[i].y;
      free(a);
      return (int) s; // 3*45 = 135
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 135);
}

TEST(InterpreterTest, PointerChasingList) {
  RunResult R = runSource(R"(
    struct node { long v; struct node *next; };
    int main() {
      struct node *head = 0;
      for (long i = 0; i < 50; i++) {
        struct node *n = (struct node*) malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
      }
      long s = 0;
      struct node *p = head;
      while (p != 0) { s += p->v; p = p->next; }
      return (int) s; // 1225
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 1225);
}

TEST(InterpreterTest, PrintBuiltinsRecordOutput) {
  RunResult R = runSource(R"(
    extern void print_i64(long v);
    extern void print_f64(double v);
    int main() {
      print_i64(7);
      print_i64(-3);
      print_f64(2.5);
      return 0;
    }
  )");
  ASSERT_EQ(R.PrintedInts.size(), 2u);
  EXPECT_EQ(R.PrintedInts[0], 7);
  EXPECT_EQ(R.PrintedInts[1], -3);
  ASSERT_EQ(R.PrintedFloats.size(), 1u);
  EXPECT_DOUBLE_EQ(R.PrintedFloats[0], 2.5);
}

TEST(InterpreterTest, MathBuiltins) {
  RunResult R = runSource(R"(
    extern double f_sqrt(double x);
    extern double f_fabs(double x);
    int main() {
      double a = f_sqrt(81.0) + f_fabs(-3.0);
      return (int) a; // 12
    }
  )");
  EXPECT_EQ(R.ExitCode, 12);
}

TEST(InterpreterTest, RecursionWorks) {
  RunResult R = runSource(R"(
    long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { return (int) fib(15); } // 610
  )");
  EXPECT_EQ(R.ExitCode, 610);
}

TEST(InterpreterTest, FunctionPointerDispatch) {
  RunResult R = runSource(R"(
    long twice(long x) { return 2 * x; }
    long thrice(long x) { return 3 * x; }
    int main() {
      long (*f)(long);
      long s = 0;
      f = twice;  s += f(10);
      f = thrice; s += f(10);
      return (int) s; // 50
    }
  )");
  EXPECT_EQ(R.ExitCode, 50);
}

TEST(InterpreterTest, MemsetMemcpyReallocSemantics) {
  RunResult R = runSource(R"(
    int main() {
      long *a = (long*) malloc(8 * 8);
      memset(a, 0, 64);
      long s = 0;
      for (long i = 0; i < 8; i++) { a[i] = i; }
      long *b = (long*) malloc(64);
      memcpy(b, a, 64);
      b = (long*) realloc(b, 128);
      for (long i = 0; i < 8; i++) s += b[i];
      free(a); free(b);
      return (int) s; // 28
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 28);
}

TEST(InterpreterTest, ReallocShrinkAcrossBucketsPreservesPrefix) {
  // Grow a block across several 16-byte size buckets, then shrink it
  // back down; the surviving prefix must be byte-identical throughout.
  RunResult R = runSource(R"(
    int main() {
      long *a = (long*) malloc(4 * 8);   // 32 bytes -> 32-byte bucket
      for (long i = 0; i < 4; i++) a[i] = i + 100;
      a = (long*) realloc(a, 20 * 8);    // 160 bytes: new bucket
      for (long i = 4; i < 20; i++) a[i] = i + 100;
      a = (long*) realloc(a, 3 * 8);     // shrink below the original
      long s = 0;
      for (long i = 0; i < 3; i++) s += a[i]; // 100+101+102
      free(a);
      return (int) s;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 303);
  EXPECT_EQ(R.HeapLiveAllocs, 0u);
}

TEST(InterpreterTest, FreeOfNullIsANoOp) {
  RunResult R = runSource(R"(
    int main() {
      long *p = 0;
      free(p);
      free(p);
      return 7;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_EQ(R.HeapLiveAllocs, 0u);
}

TEST(InterpreterTest, CallocZeroCountYieldsValidFreeableBlock) {
  RunResult R = runSource(R"(
    int main() {
      long *p = (long*) calloc(0, 8);
      if (p == 0) return 1;
      free(p);
      return 0;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.HeapAllocations, 1u);
  EXPECT_EQ(R.HeapLiveAllocs, 0u);
}

TEST(InterpreterTest, CallocZeroFillsEveryElement) {
  RunResult R = runSource(R"(
    int main() {
      long *p = (long*) calloc(16, 8);
      long s = 0;
      for (long i = 0; i < 16; i++) s += p[i];
      free(p);
      return (int) (s + 9);
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 9);
}

TEST(InterpreterTest, MemcpyBetweenSplitStyleSubRecords) {
  // Hand-written hot/cold sub-records of the kind the split transform
  // produces: memcpy within and across the two arrays must move exactly
  // the bytes asked for.
  RunResult R = runSource(R"(
    struct hot { long k; struct cold_part *rest; };
    struct cold_part { long a; long b; };
    int main() {
      struct hot *h = (struct hot*) malloc(8 * sizeof(struct hot));
      struct cold_part *c =
          (struct cold_part*) malloc(8 * sizeof(struct cold_part));
      for (long i = 0; i < 8; i++) {
        h[i].k = i;
        h[i].rest = &c[i];
        c[i].a = i * 10;
        c[i].b = i * 100;
      }
      // Copy the first half of the cold array over the second half.
      memcpy(&c[4], &c[0], 4 * sizeof(struct cold_part));
      long s = 0;
      for (long i = 0; i < 8; i++) s += h[i].rest->a + h[i].rest->b;
      // halves identical now: 2 * (0+110+220+330) = 1320
      free(h); free(c);
      return (int) s;
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.ExitCode, 1320);
  EXPECT_EQ(R.HeapLiveAllocs, 0u);
}

TEST(InterpreterTest, LeakCensusReportsLiveBlocks) {
  RunResult R = runSource(R"(
    int main() {
      long *a = (long*) malloc(24);  // rounds to 32
      long *b = (long*) malloc(64);
      long *c = (long*) malloc(8);   // rounds to 16
      free(b);
      return (int) (a[0] * 0 + c[0] * 0);
    }
  )");
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.HeapAllocations, 3u);
  EXPECT_EQ(R.HeapLiveAllocs, 2u);
  EXPECT_EQ(R.HeapLiveBytes, 32u + 16u);
}

TEST(InterpreterTest, NullDereferenceTraps) {
  RunResult R = runSource(R"(
    struct s { long a; };
    int main() {
      struct s *p = 0;
      return (int) p->a;
    }
  )");
  EXPECT_TRUE(R.Trapped);
}

TEST(InterpreterTest, DoubleFreeTraps) {
  RunResult R = runSource(R"(
    int main() {
      long *p = (long*) malloc(8);
      free(p);
      free(p);
      return 0;
    }
  )");
  EXPECT_TRUE(R.Trapped);
}

TEST(InterpreterTest, InstructionBudgetStopsRunaway) {
  RunOptions Opts;
  Opts.MaxInstructions = 10000;
  RunResult R = runSource("int main() { while (1) { } return 0; }", Opts);
  EXPECT_TRUE(R.Trapped);
}

// The DInst contract pins every arithmetic corner the host's C++ would
// otherwise leave undefined or implementation-defined; these regression
// tests hold both engines to it (runProgram dispatches on SLO_ENGINE,
// and the vm_test parity suite re-checks each case cross-engine).

TEST(InterpreterTest, SignedOverflowWrapsTwosComplement) {
  RunResult R = runSource(R"(
    extern void print_i64(long v);
    int main() {
      long max = 9223372036854775807;
      long min = (-9223372036854775807 - 1);
      print_i64(max + 1);   // INT64_MIN
      print_i64(min - 1);   // INT64_MAX
      print_i64(max * 2);   // -2
      print_i64(min << 1);  // 0
      print_i64(min >> 63); // arithmetic shift: -1
      return 0;
    }
  )");
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.PrintedInts.size(), 5u);
  EXPECT_EQ(R.PrintedInts[0], INT64_MIN);
  EXPECT_EQ(R.PrintedInts[1], INT64_MAX);
  EXPECT_EQ(R.PrintedInts[2], -2);
  EXPECT_EQ(R.PrintedInts[3], 0);
  EXPECT_EQ(R.PrintedInts[4], -1);
}

TEST(InterpreterTest, DivisionOverflowTraps) {
  // INT64_MIN / -1 overflows; the host would fault (SIGFPE on x86), so
  // the contract makes it a trap like division by zero.
  RunResult R = runSource(R"(
    int main() {
      long min = (-9223372036854775807 - 1);
      long d = 0 - 1;
      return (int) (min / d);
    }
  )");
  EXPECT_TRUE(R.Trapped);
  EXPECT_EQ(R.TrapReason, "integer division overflow");
}

TEST(InterpreterTest, RemainderByMinusOneIsZero) {
  // INT64_MIN % -1 is mathematically 0 but faults on real hardware; the
  // contract defines every `x % -1` as 0 rather than trapping.
  RunResult R = runSource(R"(
    extern void print_i64(long v);
    int main() {
      long min = (-9223372036854775807 - 1);
      long d = 0 - 1;
      print_i64(min % d);
      print_i64(7 % d);
      return 0;
    }
  )");
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.PrintedInts.size(), 2u);
  EXPECT_EQ(R.PrintedInts[0], 0);
  EXPECT_EQ(R.PrintedInts[1], 0);
}

TEST(InterpreterTest, FpToSiSaturatesAndNanIsZero) {
  RunResult R = runSource(R"(
    extern void print_i64(long v);
    int main() {
      double huge = 1.0e300;
      double z = 0.0;
      print_i64((long) huge);         // saturates high
      print_i64((long) (0.0 - huge)); // saturates low
      print_i64((long) (z / z));      // NaN -> 0
      return 0;
    }
  )");
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.PrintedInts.size(), 3u);
  EXPECT_EQ(R.PrintedInts[0], INT64_MAX);
  EXPECT_EQ(R.PrintedInts[1], INT64_MIN);
  EXPECT_EQ(R.PrintedInts[2], 0);
}

TEST(InterpreterTest, NarrowStoresTruncateToFieldWidth) {
  RunResult R = runSource(R"(
    extern void print_i64(long v);
    struct n { char c; short s; int i; };
    int main() {
      struct n *p = (struct n*) malloc(sizeof(struct n));
      p->c = (char) 257;          // 1
      p->s = (short) 65537;       // 1
      p->i = (int) 4294967297;    // 1
      print_i64(p->c);
      print_i64(p->s);
      print_i64(p->i);
      p->c = (char) 128;          // sign-extends back to -128
      print_i64(p->c);
      free(p);
      return 0;
    }
  )");
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.PrintedInts.size(), 4u);
  EXPECT_EQ(R.PrintedInts[0], 1);
  EXPECT_EQ(R.PrintedInts[1], 1);
  EXPECT_EQ(R.PrintedInts[2], 1);
  EXPECT_EQ(R.PrintedInts[3], -128);
}

TEST(InterpreterTest, IAbsOfMinWraps) {
  RunResult R = runSource(R"(
    extern void print_i64(long v);
    extern long i_abs(long v);
    int main() {
      long min = (-9223372036854775807 - 1);
      print_i64(i_abs(min)); // wraps to INT64_MIN, like labs()
      print_i64(i_abs(-7));
      return 0;
    }
  )");
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.PrintedInts.size(), 2u);
  EXPECT_EQ(R.PrintedInts[0], INT64_MIN);
  EXPECT_EQ(R.PrintedInts[1], 7);
}

TEST(InterpreterTest, ParamsConfigureGlobals) {
  RunOptions Opts;
  Opts.IntParams["param_n"] = 12;
  RunResult R = runSource(R"(
    long param_n;
    int main() { return (int) (param_n * 2); }
  )",
                          Opts);
  EXPECT_EQ(R.ExitCode, 24);
}

TEST(InterpreterTest, GlobalInitializersApply) {
  RunResult R = runSource(R"(
    long a = 5;
    long b = -3;
    int main() { return (int) (a + b); }
  )");
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(InterpreterTest, EdgeProfileCountsLoopIterations) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t", R"(
    long work(long n) {
      long s = 0;
      for (long i = 0; i < n; i++) s += i;
      return s;
    }
    int main() { return (int) (work(100) % 97); }
  )",
                        Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);
  FeedbackFile FB;
  RunOptions Opts;
  Opts.Profile = &FB;
  RunResult R = runProgram(*M, std::move(Opts));
  EXPECT_FALSE(R.Trapped);
  const Function *Work = M->lookupFunction("work");
  EXPECT_EQ(FB.getEntryCount(Work), 1u);
  // Some block in `work` must have run 100 or 101 times (the loop).
  uint64_t MaxCount = 0;
  for (const auto &BB : Work->blocks())
    MaxCount = std::max(MaxCount, FB.getBlockCount(BB.get()));
  EXPECT_GE(MaxCount, 100u);
}

TEST(InterpreterTest, FieldCacheEventsAreAttributed) {
  IRContext Ctx;
  std::vector<std::string> Diags;
  auto M = compileMiniC(Ctx, "t", R"(
    struct rec { long hot; long pad1; long pad2; long pad3;
                 long pad4; long pad5; long pad6; long pad7; };
    struct rec *arr;
    long param_n;
    int main() {
      arr = (struct rec*) malloc(param_n * sizeof(struct rec));
      long s = 0;
      for (long i = 0; i < param_n; i++) arr[i].hot = i;
      for (long r = 0; r < 4; r++)
        for (long i = 0; i < param_n; i++) s += arr[i].hot;
      return (int) (s % 127);
    }
  )",
                        Diags);
  ASSERT_TRUE(M) << (Diags.empty() ? "?" : Diags[0]);
  FeedbackFile FB;
  RunOptions Opts;
  Opts.Profile = &FB;
  Opts.IntParams["param_n"] = 4096; // 256 KiB of recs: misses in L1.
  RunResult R = runProgram(*M, std::move(Opts));
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  const RecordType *Rec = Ctx.getTypes().lookupRecord("rec");
  const FieldCacheStats *S = FB.getFieldStats(Rec, 0);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Loads, 4u * 4096u);
  EXPECT_EQ(S->Stores, 4096u);
  // Each struct is 64 bytes = one L1 line; with 16 KiB L1 and 256 KiB of
  // data every fresh pass misses on every element.
  EXPECT_GT(S->Misses, 3u * 4096u);
}

TEST(CacheSimTest, SequentialAccessHitsWithinLine) {
  CacheSim C;
  // 8 consecutive 8-byte words: 1 miss + 7 hits per 64-byte line.
  uint64_t Misses = 0;
  for (uint64_t A = 0; A < 64 * 8; A += 8)
    Misses += C.access(1000000 + A, 8, false, false).FirstLevelMiss;
  EXPECT_EQ(Misses, 8u);
  EXPECT_EQ(C.l1Stats().Hits, 56u);
}

TEST(CacheSimTest, RepeatedAccessIsAHit) {
  CacheSim C;
  EXPECT_TRUE(C.access(4096, 8, false, false).FirstLevelMiss);
  EXPECT_FALSE(C.access(4096, 8, false, false).FirstLevelMiss);
  EXPECT_FALSE(C.access(4100, 8, false, false).FirstLevelMiss);
}

TEST(CacheSimTest, CapacityEviction) {
  CacheConfig Cfg;
  Cfg.L1 = {1024, 64, 2, 1}; // Tiny L1: 16 lines.
  CacheSim C(Cfg);
  // Touch 64 distinct lines, then re-touch the first: must miss again.
  for (uint64_t I = 0; I < 64; ++I)
    C.access(1 << 20 | (I * 64), 8, false, false);
  EXPECT_TRUE(C.access(1 << 20, 8, false, false).FirstLevelMiss);
}

TEST(CacheSimTest, LruKeepsHotLine) {
  CacheConfig Cfg;
  Cfg.L1 = {128, 64, 2, 1}; // 1 set, 2 ways.
  CacheSim C(Cfg);
  C.access(0x10000, 8, false, false); // line A
  C.access(0x20000, 8, false, false); // line B
  C.access(0x10000, 8, false, false); // A again (now MRU)
  C.access(0x30000, 8, false, false); // line C evicts B (LRU)
  EXPECT_FALSE(C.access(0x10000, 8, false, false).FirstLevelMiss);
  EXPECT_TRUE(C.access(0x20000, 8, false, false).FirstLevelMiss);
}

TEST(CacheSimTest, FpBypassesL1) {
  CacheSim C;
  CacheAccessResult First = C.access(1 << 21, 8, false, /*IsFp=*/true);
  EXPECT_TRUE(First.FirstLevelMiss); // Counted at L2 for FP.
  EXPECT_EQ(C.l1Stats().Hits + C.l1Stats().Misses, 0u);
  CacheAccessResult Second = C.access(1 << 21, 8, false, /*IsFp=*/true);
  EXPECT_FALSE(Second.FirstLevelMiss);
  EXPECT_EQ(Second.Latency, C.config().L2.HitLatency);
}

TEST(CacheSimTest, StoresAreCheaper) {
  CacheSim C;
  unsigned LoadLat = C.access(1 << 22, 8, false, false).Latency;
  C.reset();
  unsigned StoreLat = C.access(1 << 22, 8, true, false).Latency;
  EXPECT_LT(StoreLat, LoadLat);
}

} // namespace
