//===- tests/transform_test.cpp - Splitting/peeling transformation tests --===//

#include "analysis/Legality.h"
#include "analysis/WeightSchemes.h"
#include "frontend/Frontend.h"
#include "ir/IRPrinter.h"
#include "runtime/Interpreter.h"
#include "transform/LayoutPlanner.h"
#include "transform/Transform.h"

#include <gtest/gtest.h>

using namespace slo;

namespace {

/// A program whose record has interleaved hot and cold fields, a dead
/// field, and an unused field; prints checksums of all live data.
const char *SplitWorkload = R"(
  extern void print_i64(long v);
  struct item {
    long hot_a;
    long cold_x;
    long hot_b;
    long cold_y;
    long dead_z;   // written, never read
    long unused_w; // never touched
  };
  struct item *arr;
  long param_n;
  void pin(struct item *p) { }   // escape: blocks peeling, not splitting
  int main() {
    long n = param_n;
    arr = (struct item*) malloc(n * sizeof(struct item));
    pin(arr);
    for (long i = 0; i < n; i++) {
      arr[i].hot_a = i;
      arr[i].hot_b = 2 * i;
      arr[i].cold_x = 3 * i;
      arr[i].cold_y = 4 * i;
      arr[i].dead_z = 5 * i;
    }
    long hot = 0;
    // Deeply nested so the static estimator sees the hot/cold contrast
    // (static loop weights grow with nesting depth, not trip counts).
    for (long r = 0; r < 2; r++)
      for (long k = 0; k < 2; k++)
        for (long m = 0; m < 5; m++)
          for (long i = 0; i < n; i++)
            hot += arr[i].hot_a + arr[i].hot_b;
    long cold = 0;
    for (long i = 0; i < n; i++)
      cold += arr[i].cold_x + arr[i].cold_y;
    print_i64(hot);
    print_i64(cold);
    free(arr);
    return 0;
  }
)";

/// The paper's 179.art shape: one global pointer, per-field peelable.
const char *PeelWorkload = R"(
  extern void print_f64(double v);
  struct neuron {
    double i_val;
    double w_val;
    double x_val;
    double y_val;
  };
  struct neuron *f1;
  long param_n;
  int main() {
    f1 = (struct neuron*) malloc(param_n * sizeof(struct neuron));
    for (long i = 0; i < param_n; i++) {
      f1[i].i_val = i * 0.5;
      f1[i].w_val = i * 0.25;
      f1[i].x_val = 1.0;
      f1[i].y_val = 2.0;
    }
    double s = 0.0;
    for (long r = 0; r < 10; r++)
      for (long i = 0; i < param_n; i++)
        s += f1[i].w_val;
    print_f64(s);
    double t = 0.0;
    for (long i = 0; i < param_n; i++)
      t += f1[i].i_val + f1[i].x_val + f1[i].y_val;
    print_f64(t);
    free(f1);
    return 0;
  }
)";

struct Compiled {
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<Module> M;
};

static Compiled compile(const char *Src) {
  Compiled C;
  C.Ctx = std::make_unique<IRContext>();
  std::vector<std::string> Diags;
  C.M = compileMiniC(*C.Ctx, "t", Src, Diags);
  EXPECT_TRUE(C.M) << (Diags.empty() ? "?" : Diags[0]);
  return C;
}

static RunOptions withN(int64_t N) {
  RunOptions O;
  O.IntParams["param_n"] = N;
  return O;
}

/// Plans with the static (ISPBO) heuristics.
static std::vector<TypePlan> planStatic(Module &M, LegalityResult &Legal,
                                        PlannerOptions Opts = {}) {
  SchemeInputs In;
  In.M = &M;
  FieldStatsResult Stats = computeSchemeFieldStats(WeightScheme::ISPBO, In);
  return planLayout(M, Legal, Stats, Opts);
}

TEST(PlannerTest, SplitWorkloadPlan) {
  Compiled C = compile(SplitWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  RecordType *Item = C.Ctx->getTypes().lookupRecord("item");
  ASSERT_TRUE(Legal.get(Item).isLegal()) << violationMaskToString(
      Legal.get(Item).Violations);

  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  const TypePlan *ItemPlan = nullptr;
  for (const TypePlan &P : Plans)
    if (P.Rec == Item)
      ItemPlan = &P;
  ASSERT_NE(ItemPlan, nullptr);
  EXPECT_EQ(ItemPlan->Kind, TransformKind::Split) << ItemPlan->Reason;
  // hot_a/hot_b hot (20 reps); cold_x/cold_y cold; dead_z dead; unused_w
  // unused.
  EXPECT_EQ(ItemPlan->HotFields.size(), 2u);
  EXPECT_EQ(ItemPlan->ColdFields.size(), 2u);
  EXPECT_EQ(ItemPlan->DeadFields.size(), 1u);
  EXPECT_EQ(ItemPlan->UnusedFields.size(), 1u);
  EXPECT_EQ(ItemPlan->DeadFields[0], 4u);
  EXPECT_EQ(ItemPlan->UnusedFields[0], 5u);
}

TEST(SplitTest, PreservesSemantics) {
  Compiled Ref = compile(SplitWorkload);
  RunResult Before = runProgram(*Ref.M, withN(500));
  ASSERT_FALSE(Before.Trapped) << Before.TrapReason;

  Compiled C = compile(SplitWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  TransformSummary Summary = applyPlans(*C.M, Plans, Legal);
  ASSERT_EQ(Summary.TypesTransformed, 1u);

  RunResult After = runProgram(*C.M, withN(500));
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts);
  EXPECT_EQ(Before.ExitCode, After.ExitCode);
}

TEST(SplitTest, NewLayoutShrinksHotRecord) {
  Compiled C = compile(SplitWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  TransformSummary Summary = applyPlans(*C.M, Plans, Legal);
  ASSERT_EQ(Summary.Applied.size(), 1u);
  const SplitResult &S = Summary.Applied[0].Split;
  ASSERT_NE(S.HotRec, nullptr);
  ASSERT_NE(S.ColdRec, nullptr);
  // Hot: hot_a + hot_b + link = 24 bytes (down from 48).
  EXPECT_EQ(S.HotRec->getNumFields(), 3u);
  EXPECT_EQ(S.HotRec->getSize(), 24u);
  EXPECT_EQ(S.ColdRec->getNumFields(), 2u);
  EXPECT_EQ(S.ColdRec->getSize(), 16u);
  EXPECT_EQ(S.HotRec->getField(S.LinkFieldIndex).Name, "cold_link");
}

TEST(SplitTest, ImprovesHotLoopCycles) {
  // The whole point of the paper: fewer cycles after splitting on a
  // workload dominated by hot-field scans.
  Compiled Ref = compile(SplitWorkload);
  RunResult Before = runProgram(*Ref.M, withN(20000));
  ASSERT_FALSE(Before.Trapped);

  Compiled C = compile(SplitWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  applyPlans(*C.M, Plans, Legal);
  RunResult After = runProgram(*C.M, withN(20000));
  ASSERT_FALSE(After.Trapped) << After.TrapReason;

  EXPECT_EQ(Before.PrintedInts, After.PrintedInts);
  EXPECT_LT(After.Cycles, Before.Cycles);
}

TEST(PeelTest, WorkloadIsPeelable) {
  Compiled C = compile(PeelWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  RecordType *Neuron = C.Ctx->getTypes().lookupRecord("neuron");
  PeelabilityInfo Info =
      analyzePeelability(*C.M, Neuron, Legal.get(Neuron));
  EXPECT_TRUE(Info.Peelable) << Info.Reason;
}

TEST(PeelTest, PreservesSemantics) {
  Compiled Ref = compile(PeelWorkload);
  RunResult Before = runProgram(*Ref.M, withN(300));
  ASSERT_FALSE(Before.Trapped) << Before.TrapReason;

  Compiled C = compile(PeelWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  TransformSummary Summary = applyPlans(*C.M, Plans, Legal);
  ASSERT_EQ(Summary.TypesTransformed, 1u);
  ASSERT_EQ(Summary.Applied[0].Plan.Kind, TransformKind::Peel);
  EXPECT_EQ(Summary.Applied[0].Peel.GroupRecs.size(), 4u);

  RunResult After = runProgram(*C.M, withN(300));
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  ASSERT_EQ(Before.PrintedFloats.size(), After.PrintedFloats.size());
  for (size_t I = 0; I < Before.PrintedFloats.size(); ++I)
    EXPECT_DOUBLE_EQ(Before.PrintedFloats[I], After.PrintedFloats[I]);
}

TEST(PeelTest, ImprovesSingleFieldScan) {
  // 50000 neurons = 1.6 MiB; with a 1 MiB L3 the unpeeled scan goes to
  // memory while the peeled per-field array (400 KiB) fits in L3.
  RunOptions Opts = withN(50000);
  Opts.Cache.L3.SizeBytes = 1 << 20;

  Compiled Ref = compile(PeelWorkload);
  RunResult Before = runProgram(*Ref.M, Opts);
  ASSERT_FALSE(Before.Trapped);

  Compiled C = compile(PeelWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  applyPlans(*C.M, Plans, Legal);
  RunResult After = runProgram(*C.M, Opts);
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  // The w_val scan touches 1/4 of the memory: cycles must drop clearly.
  EXPECT_LT(After.Cycles, Before.Cycles * 9 / 10);
}

TEST(PeelTest, RecursivePointerBlocksPeeling) {
  Compiled C = compile(R"(
    struct node { long v; struct node *next; };
    struct node *head;
    long param_n;
    int main() {
      head = (struct node*) malloc(10 * sizeof(struct node));
      return 0;
    }
  )");
  LegalityResult Legal = analyzeLegality(*C.M);
  RecordType *Node = C.Ctx->getTypes().lookupRecord("node");
  PeelabilityInfo Info = analyzePeelability(*C.M, Node, Legal.get(Node));
  EXPECT_FALSE(Info.Peelable);
}

TEST(PeelTest, EscapeToFunctionBlocksPeeling) {
  Compiled C = compile(R"(
    struct pt { double x; double y; };
    struct pt *arr;
    void helper(struct pt *p) { p->x = 1.0; }
    int main() {
      arr = (struct pt*) malloc(8 * sizeof(struct pt));
      helper(arr);
      return 0;
    }
  )");
  LegalityResult Legal = analyzeLegality(*C.M);
  RecordType *Pt = C.Ctx->getTypes().lookupRecord("pt");
  PeelabilityInfo Info = analyzePeelability(*C.M, Pt, Legal.get(Pt));
  EXPECT_FALSE(Info.Peelable);
}

TEST(SplitTest, CallocAndConstantCountsWork) {
  const char *Src = R"(
    extern void print_i64(long v);
    struct rec { long a; long b; long c; long d; };
    struct rec *r;
    int main() {
      r = (struct rec*) calloc(64, sizeof(struct rec));
      long s0 = 0;
      for (long i = 0; i < 64; i++) s0 += r[i].a + r[i].b;
      for (long i = 0; i < 64; i++) { r[i].a = i; r[i].b = i + 1; }
      long s = s0;
      for (long k = 0; k < 30; k++)
        for (long i = 0; i < 64; i++) s += r[i].a + r[i].b;
      for (long i = 0; i < 64; i++) { r[i].c = 1; r[i].d = 2; }
      for (long i = 0; i < 64; i++) s += r[i].c * r[i].d;
      print_i64(s);
      free(r);
      return 0;
    }
  )";
  Compiled Ref = compile(Src);
  RunResult Before = runProgram(*Ref.M);
  ASSERT_FALSE(Before.Trapped) << Before.TrapReason;

  Compiled C = compile(Src);
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  TransformSummary Summary = applyPlans(*C.M, Plans, Legal);
  RunResult After = runProgram(*C.M);
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts);
  (void)Summary;
}

TEST(PlannerTest, IllegalTypesAreNotPlanned) {
  Compiled C = compile(R"(
    extern void consume(void *p);
    struct esc { long a; long b; long c; };
    struct esc *e;
    int main() {
      e = (struct esc*) malloc(16 * sizeof(struct esc));
      consume(e);
      return 0;
    }
  )");
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  for (const TypePlan &P : Plans)
    EXPECT_EQ(P.Kind, TransformKind::None) << P.Rec->getRecordName();
}

TEST(PlannerTest, SmallAllocationBlocksTransform) {
  Compiled C = compile(R"(
    struct one { long a; long b; long c; };
    struct one *p;
    int main() {
      p = (struct one*) malloc(sizeof(struct one));
      p->a = 1;
      return (int) p->a;
    }
  )");
  LegalityResult Legal = analyzeLegality(*C.M);
  RecordType *One = C.Ctx->getTypes().lookupRecord("one");
  EXPECT_TRUE(Legal.get(One).hasViolation(Violation::SMAL));
}

TEST(SplitTest, ForcedPlanSplitsChosenFields) {
  // The §2.4 experiment shape: force specific fields out regardless of
  // the heuristics (used by the hot-split ablation bench).
  Compiled Ref = compile(SplitWorkload);
  RunResult Before = runProgram(*Ref.M, withN(400));

  Compiled C = compile(SplitWorkload);
  LegalityResult Legal = analyzeLegality(*C.M);
  RecordType *Item = C.Ctx->getTypes().lookupRecord("item");
  TypePlan Plan;
  Plan.Rec = Item;
  Plan.Kind = TransformKind::Split;
  Plan.HotFields = {1, 3};    // Force the COLD fields to stay...
  Plan.ColdFields = {0, 2};   // ...and split out the HOT ones.
  Plan.DeadFields = {4};
  Plan.UnusedFields = {5};
  TransformSummary Summary = applyPlans(*C.M, {Plan}, Legal);
  ASSERT_EQ(Summary.TypesTransformed, 1u);

  RunResult After = runProgram(*C.M, withN(400));
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts);
}

TEST(SplitTest, MultipleTypesInOneProgram) {
  const char *Src = R"(
    extern void print_i64(long v);
    struct a { long h; long c1; long c2; long c3; };
    struct b { double h; double c1; double c2; double c3; };
    struct a *pa;
    struct b *pb;
    long param_n;
    int main() {
      pa = (struct a*) malloc(param_n * sizeof(struct a));
      pb = (struct b*) malloc(param_n * sizeof(struct b));
      for (long i = 0; i < param_n; i++) {
        pa[i].h = i; pa[i].c1 = i; pa[i].c2 = i; pa[i].c3 = i;
        pb[i].h = 1.0; pb[i].c1 = 0.0; pb[i].c2 = 0.0; pb[i].c3 = 0.0;
      }
      long s = 0;
      double f = 0.0;
      for (long r = 0; r < 25; r++)
        for (long i = 0; i < param_n; i++) { s += pa[i].h; f += pb[i].h; }
      s += (long) f;
      for (long i = 0; i < param_n; i++)
        s += pa[i].c1 + pa[i].c2 + pa[i].c3;
      print_i64(s);
      free(pa);
      free(pb);
      return 0;
    }
  )";
  Compiled Ref = compile(Src);
  RunResult Before = runProgram(*Ref.M, withN(600));
  ASSERT_FALSE(Before.Trapped);

  Compiled C = compile(Src);
  LegalityResult Legal = analyzeLegality(*C.M);
  std::vector<TypePlan> Plans = planStatic(*C.M, Legal);
  TransformSummary Summary = applyPlans(*C.M, Plans, Legal);
  EXPECT_EQ(Summary.TypesTransformed, 2u);
  RunResult After = runProgram(*C.M, withN(600));
  ASSERT_FALSE(After.Trapped) << After.TrapReason;
  EXPECT_EQ(Before.PrintedInts, After.PrintedInts);
}

} // namespace
