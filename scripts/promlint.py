#!/usr/bin/env python3
"""Prometheus text-exposition linter for the daemon's GetMetrics output.

Reads an exposition document from a file argument (or stdin) and checks
the subset of the format the advisory daemon emits:

  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label names match
    [a-zA-Z_][a-zA-Z0-9_]*;
  - every sample belongs to a family introduced by a # TYPE line, and
    TYPE is counter or histogram;
  - histogram families are complete: _bucket samples with strictly
    increasing numeric le values, a mandatory le="+Inf" bucket,
    cumulative bucket values that never decrease, and _sum/_count
    samples whose _count equals the +Inf bucket;
  - sample values parse as numbers.

Exits 0 with a one-line summary when the document is clean, 1 with one
line per finding otherwise. Used by scripts/check.sh on the live
daemon's `slo_client --metrics-prom` output, so a rendering regression
fails CI with a named reason instead of a confused Prometheus scraper.

Usage:
  promlint.py [FILE]
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\S+)?$"
)


def parse_labels(raw, lineno, findings):
    labels = {}
    if not raw:
        return labels
    for part in raw.split(","):
        if not part:
            continue
        if "=" not in part:
            findings.append(f"line {lineno}: malformed label '{part}'")
            continue
        k, v = part.split("=", 1)
        if not LABEL_NAME.match(k):
            findings.append(f"line {lineno}: bad label name '{k}'")
        if len(v) < 2 or v[0] != '"' or v[-1] != '"':
            findings.append(f"line {lineno}: label value not quoted: {part}")
            continue
        labels[k] = v[1:-1]
    return labels


def parse_value(raw, lineno, findings):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        findings.append(f"line {lineno}: sample value '{raw}' is not a number")
        return None


def lint(text):
    findings = []
    types = {}  # family name -> declared type
    # family -> {"buckets": [(le, value)], "sum": v, "count": v}
    hists = {}
    samples = 0

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                findings.append(f"line {lineno}: malformed comment: {line}")
                continue
            if parts[1] == "TYPE":
                if len(parts) < 4:
                    findings.append(f"line {lineno}: malformed TYPE line: {line}")
                    continue
                name, kind = parts[2], parts[3].strip()
                if not METRIC_NAME.match(name):
                    findings.append(f"line {lineno}: bad metric name '{name}'")
                if kind not in ("counter", "histogram"):
                    findings.append(
                        f"line {lineno}: unexpected TYPE '{kind}' for {name}"
                    )
                if name in types:
                    findings.append(f"line {lineno}: duplicate TYPE for {name}")
                types[name] = kind
                if kind == "histogram":
                    hists[name] = {"buckets": [], "sum": None, "count": None}
            continue

        m = SAMPLE.match(line)
        if not m:
            findings.append(f"line {lineno}: unparseable sample: {line}")
            continue
        samples += 1
        name = m.group("name")
        labels = parse_labels(m.group("labels"), lineno, findings)
        value = parse_value(m.group("value"), lineno, findings)
        if value is None:
            continue

        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            findings.append(
                f"line {lineno}: sample '{name}' has no preceding # TYPE"
            )
            continue

        if types[family] == "histogram":
            h = hists[family]
            if name == family + "_bucket":
                le = labels.get("le")
                if le is None:
                    findings.append(
                        f"line {lineno}: {name} bucket without an le label"
                    )
                    continue
                bound = math.inf if le == "+Inf" else parse_value(
                    le, lineno, findings
                )
                if bound is None:
                    continue
                h["buckets"].append((lineno, bound, value))
            elif name == family + "_sum":
                h["sum"] = value
            elif name == family + "_count":
                h["count"] = value
            else:
                findings.append(
                    f"line {lineno}: '{name}' is not a valid histogram "
                    f"sample of family {family}"
                )

    for family, h in sorted(hists.items()):
        buckets = h["buckets"]
        if not buckets:
            findings.append(f"{family}: histogram has no _bucket samples")
            continue
        prev_bound, prev_value = -math.inf, -math.inf
        for lineno, bound, value in buckets:
            if bound <= prev_bound:
                findings.append(
                    f"line {lineno}: {family} le bounds not strictly "
                    f"increasing ({prev_bound} then {bound})"
                )
            if value < prev_value:
                findings.append(
                    f"line {lineno}: {family} cumulative bucket value "
                    f"decreased ({prev_value} then {value})"
                )
            prev_bound, prev_value = bound, value
        if buckets[-1][1] != math.inf:
            findings.append(f"{family}: missing the mandatory le=\"+Inf\" bucket")
        if h["count"] is None:
            findings.append(f"{family}: missing _count sample")
        elif buckets[-1][1] == math.inf and h["count"] != buckets[-1][2]:
            findings.append(
                f"{family}: _count {h['count']} != +Inf bucket "
                f"{buckets[-1][2]}"
            )
        if h["sum"] is None:
            findings.append(f"{family}: missing _sum sample")

    return findings, samples, len(types)


def self_test():
    """The linter must reject what it claims to reject: each broken
    document below trips at least one finding, and the clean one none."""
    clean = (
        "# TYPE slo_frames counter\n"
        "slo_frames 5\n"
        "# HELP slo_lat latency (microseconds)\n"
        "# TYPE slo_lat histogram\n"
        'slo_lat_bucket{le="10"} 2\n'
        'slo_lat_bucket{le="20"} 3\n'
        'slo_lat_bucket{le="+Inf"} 3\n'
        "slo_lat_sum 27\n"
        "slo_lat_count 3\n"
    )
    broken = {
        "untyped sample": "slo_orphan 1\n",
        "bad metric name": "# TYPE 9bad counter\n9bad 1\n",
        "non-monotone le": (
            "# TYPE slo_h histogram\n"
            'slo_h_bucket{le="20"} 1\n'
            'slo_h_bucket{le="10"} 2\n'
            'slo_h_bucket{le="+Inf"} 2\n'
            "slo_h_sum 3\nslo_h_count 2\n"
        ),
        "decreasing cumulative": (
            "# TYPE slo_h histogram\n"
            'slo_h_bucket{le="10"} 3\n'
            'slo_h_bucket{le="20"} 2\n'
            'slo_h_bucket{le="+Inf"} 3\n'
            "slo_h_sum 3\nslo_h_count 3\n"
        ),
        "missing +Inf": (
            "# TYPE slo_h histogram\n"
            'slo_h_bucket{le="10"} 1\n'
            "slo_h_sum 3\nslo_h_count 1\n"
        ),
        "count != +Inf": (
            "# TYPE slo_h histogram\n"
            'slo_h_bucket{le="+Inf"} 3\n'
            "slo_h_sum 3\nslo_h_count 4\n"
        ),
        "missing _sum": (
            "# TYPE slo_h histogram\n"
            'slo_h_bucket{le="+Inf"} 1\n'
            "slo_h_count 1\n"
        ),
        "non-numeric value": "# TYPE slo_c counter\nslo_c banana\n",
    }
    ok, _, _ = lint(clean)
    if ok:
        print("self-test FAILED: clean document rejected:")
        for f in ok:
            print(f"  {f}")
        return 1
    for what, doc in broken.items():
        findings, _, _ = lint(doc)
        if not findings:
            print(f"self-test FAILED: '{what}' document accepted")
            return 1
    print(f"self-test ok: clean passes, {len(broken)} broken documents fail")
    return 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) > 2:
        print("usage: promlint.py [--self-test] [FILE]", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1]) as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    findings, samples, families = lint(text)
    if findings:
        print(f"promlint FAILED ({len(findings)} finding(s)):")
        for f in findings:
            print(f"  {f}")
        return 1
    print(f"promlint ok: {samples} samples across {families} families")
    return 0


if __name__ == "__main__":
    sys.exit(main())
