#!/usr/bin/env bash
# Full check: build and test plain, then again under ASan+UBSan.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "=== sanitized build (ASan+UBSan) ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSLO_ENABLE_SANITIZERS=ON
cmake --build build-asan -j"$(nproc)"
# The interpreter recurses on the host stack for simulated calls; ASan's
# enlarged frames need more than the default 8 MiB to reach the
# interpreter's own MaxCallDepth trap (see DeepRecursionTrapsNotCrashes).
ulimit -s 262144 2>/dev/null || true
ctest --test-dir build-asan --output-on-failure -j"$(nproc)"

echo "=== all checks passed ==="
