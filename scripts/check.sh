#!/usr/bin/env bash
# Full check: build and test plain, then again under ASan+UBSan. Both
# ctest legs always run; the script exits nonzero if either failed, so a
# plain-leg failure is never masked by a green sanitized leg.
set -euo pipefail

cd "$(dirname "$0")/.."

# nproc is a coreutils extra some minimal images lack; POSIX getconf is
# the fallback.
jobs() {
  if command -v nproc >/dev/null 2>&1; then
    nproc
  else
    getconf _NPROCESSORS_ONLN
  fi
}
J="$(jobs)"

# Pass a compiler launcher (ccache in CI) through to both builds.
LAUNCHER_ARGS=()
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
  LAUNCHER_ARGS+=("-DCMAKE_CXX_COMPILER_LAUNCHER=${CMAKE_CXX_COMPILER_LAUNCHER}")
fi

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "${LAUNCHER_ARGS[@]}"
cmake --build build -j"$J"
PLAIN_RC=0
ctest --test-dir build --output-on-failure -j"$J" || PLAIN_RC=$?

# A short differential-fuzz sweep (fixed seed, so reproducible) plus the
# committed corpus. Failures drop minimized repros next to the build.
echo "=== differential fuzz (corpus + 50 random programs) ==="
FUZZ_RC=0
./build/examples/slo_fuzz --runs 50 --seed 1 --minimize \
  --corpus tests/corpus --out build/fuzz-repros || FUZZ_RC=$?

# Lint leg: the layout-hazard suite over the 12 embedded workloads and
# the committed seed corpus. Error-severity findings fail the leg;
# layout-pin notes are expected (they demote types instead). A short
# injected-hazard sweep proves the lint oracle is alive in both
# directions: it must flag injected hazards, and a broken lint
# (--inject-lint-bug) must be caught.
echo "=== lint (workloads + corpus + injected hazards) ==="
LINT_RC=0
./build/examples/slo_lint --workloads || LINT_RC=$?
for f in tests/corpus/*.minic; do
  ./build/examples/slo_lint "$f" || LINT_RC=$?
done
./build/examples/slo_fuzz --runs 10 --seed 3 --inject-hazard uaf \
  || LINT_RC=$?
./build/examples/slo_fuzz --runs 10 --seed 3 --inject-hazard uninit \
  || LINT_RC=$?
if ./build/examples/slo_fuzz --runs 5 --seed 3 --inject-hazard uaf \
    --inject-lint-bug >/dev/null 2>&1; then
  echo "lint oracle is vacuous: --inject-lint-bug was not caught"
  LINT_RC=1
fi

# VM engine leg: the bytecode VM must be a drop-in replacement for the
# tree walker. The whole suite runs again with SLO_ENGINE=vm (runProgram
# dispatches on it), then a 500-program differential sweep holds the
# engine-parity oracle — output, cycles, misses, leak census, and
# miss-attribution partitions bit-identical between the engines — and an
# injected VM mis-charge (--inject-vm-bug) proves that oracle can
# actually fail.
echo "=== VM engine (full suite + 500-run parity sweep) ==="
VM_RC=0
SLO_ENGINE=vm ctest --test-dir build --output-on-failure -j"$J" || VM_RC=$?
./build/examples/slo_fuzz --runs 500 --seed 11 --engine-parity --minimize \
  --out build/fuzz-repros || VM_RC=$?
if ./build/examples/slo_fuzz --runs 5 --seed 11 --engine-parity \
    --inject-vm-bug >/dev/null 2>&1; then
  echo "engine-parity oracle is vacuous: --inject-vm-bug was not caught"
  VM_RC=1
fi

# Engine wall-time gate: the VM exists to make simulation affordable, so
# bench_table3 must show it staying well ahead of the walker while
# producing bit-identical rows. The 2.5x floor is deliberately below the
# 3.6-3.9x an idle box measures (see EXPERIMENTS.md) so a loaded CI box
# does not flake; the engines run back to back, serially, for a fair
# wall-time pair.
echo "=== engine wall-time gate (walker vs vm) ==="
ENGINE_RC=0
(cd build \
  && SLO_BENCH_THREADS=1 ./bench/bench_table3_performance --engine=walker \
  && mv BENCH_table3.json BENCH_table3_walker.json \
  && SLO_BENCH_THREADS=1 ./bench/bench_table3_performance --engine=vm \
  && mv BENCH_table3.json BENCH_table3_vm.json) || ENGINE_RC=$?
python3 scripts/bench_compare.py --engine-compare \
  build/BENCH_table3_walker.json build/BENCH_table3_vm.json || ENGINE_RC=$?

# Sampled-profile smoke: collect a sampled (Caliper stand-in) DMISS
# profile through the driver, write it out, plan from the file in a
# second process, then run a short fuzz sweep where every oracle must
# hold with the planner fed sampled data.
echo "=== sampled-profile smoke (collection -> file -> advice) ==="
SAMPLED_RC=0
./build/examples/slo_driver --scheme=DMISS --sample-period 61 \
  --profile-out build/sampled.profile --run examples/sample.minic \
  >/dev/null || SAMPLED_RC=$?
./build/examples/slo_driver --scheme=DMISS \
  --profile-in build/sampled.profile --advise examples/sample.minic \
  >/dev/null || SAMPLED_RC=$?
./build/examples/slo_fuzz --runs 25 --seed 2 --sampled-profiles \
  || SAMPLED_RC=$?

# Incremental leg: advise the two-TU example cold (populating the
# summary cache), again warm (every summary served from disk), and the
# rendered advice — text and JSON — must be byte-identical; then a short
# incremental-parity fuzz sweep (mutate one TU, warm vs from-scratch
# cold) with its vacuity check: serving deliberately stale summaries
# (--inject-stale-summary) must be caught.
echo "=== incremental pipeline (cold vs warm byte-identity) ==="
INC_RC=0
rm -rf build/inc-cache
./build/examples/slo_driver --summary-cache build/inc-cache \
  --advice-json=build/advice-cold.json \
  examples/incremental_a.minic examples/incremental_b.minic \
  > build/advice-cold.txt 2>/dev/null || INC_RC=$?
./build/examples/slo_driver --summary-cache build/inc-cache \
  --advice-json=build/advice-warm.json \
  examples/incremental_a.minic examples/incremental_b.minic \
  > build/advice-warm.txt 2>/dev/null || INC_RC=$?
cmp build/advice-cold.txt build/advice-warm.txt \
  || { echo "warm advice text diverged from cold"; INC_RC=1; }
cmp build/advice-cold.json build/advice-warm.json \
  || { echo "warm advice JSON diverged from cold"; INC_RC=1; }
./build/examples/slo_fuzz --runs 20 --seed 21 --incremental-parity \
  --out build/fuzz-repros || INC_RC=$?
if ./build/examples/slo_fuzz --runs 5 --seed 21 --incremental-parity \
    --inject-stale-summary >/dev/null 2>&1; then
  echo "incremental-parity oracle is vacuous: --inject-stale-summary was not caught"
  INC_RC=1
fi

# Service leg: start the advisory daemon on an ephemeral port, stream
# the two-TU example through the wire protocol, and the served advice
# must be byte-identical to the monolithic slo_driver run; then a
# concurrent hammer, a 200-frame protocol-fuzz sweep against the live
# daemon, the observability smokes (GetMetrics JSON + Prometheus lint,
# a traced request whose merged Chrome trace carries daemon spans while
# the advice bytes stay untouched), a clean shutdown, the fuzz oracle's
# vacuity check (a daemon started with --inject-frame-bug must be
# caught), the flight-recorder dump check on an induced mid-frame
# stall, and the service bench (run with --overhead, which pairs a
# telemetry-free daemon in-process) gated against its checked-in
# baseline plus the telemetry overhead budget.
echo "=== advisory service (daemon parity + frame fuzz + bench gate) ==="
SVC_RC=0
rm -f build/served.port build/served-bug.port
./build/examples/slo_served --port=0 --port-file=build/served.port &
SVC_PID=$!
for _ in $(seq 1 100); do [[ -s build/served.port ]] && break; sleep 0.1; done
if [[ ! -s build/served.port ]]; then
  echo "slo_served did not publish a port"
  SVC_RC=1
  kill "$SVC_PID" 2>/dev/null || true
else
  ./build/examples/slo_client --port-file=build/served.port \
    --put-source incremental_a.minic=examples/incremental_a.minic \
    --put-source incremental_b.minic=examples/incremental_b.minic \
    --get-advice > build/advice-served.txt || SVC_RC=$?
  rm -rf build/svc-cache
  ./build/examples/slo_driver --summary-cache build/svc-cache \
    examples/incremental_a.minic examples/incremental_b.minic \
    > build/advice-oneshot.txt 2>/dev/null || SVC_RC=$?
  cmp build/advice-served.txt build/advice-oneshot.txt \
    || { echo "served advice diverged from the one-shot driver"; SVC_RC=1; }
  ./build/examples/slo_client --port-file=build/served.port \
    --put-source incremental_a.minic=examples/incremental_a.minic \
    --put-source incremental_b.minic=examples/incremental_b.minic \
    --hammer 4 --hammer-rounds 5 >/dev/null || SVC_RC=$?
  ./build/examples/slo_client --port-file=build/served.port \
    --fuzz-frames 200 --seed 7 || SVC_RC=$?
  # Observability smokes against the live daemon: GetMetrics must parse
  # as JSON and lint cleanly as Prometheus text, and a traced request
  # must yield a merged Chrome trace carrying daemon-side spans while
  # leaving the advice bytes untouched (trace ids never leak into
  # advice).
  ./build/examples/slo_client --port-file=build/served.port --metrics \
    > build/served-metrics.json || SVC_RC=$?
  python3 -c "import json,sys; json.load(open('build/served-metrics.json'))" \
    || { echo "GetMetrics JSON does not parse"; SVC_RC=1; }
  ./build/examples/slo_client --port-file=build/served.port --metrics-prom \
    | python3 scripts/promlint.py || SVC_RC=$?
  ./build/examples/slo_client --port-file=build/served.port \
    --get-advice --trace-json=build/advice-trace.json \
    > build/advice-traced.txt || SVC_RC=$?
  cmp build/advice-traced.txt build/advice-oneshot.txt \
    || { echo "traced advice diverged from the one-shot driver"; SVC_RC=1; }
  for span in daemon/read daemon/lock-wait daemon/merge daemon/render; do
    grep -q "$span" build/advice-trace.json \
      || { echo "merged trace is missing the $span span"; SVC_RC=1; }
  done
  ./build/examples/slo_client --port-file=build/served.port \
    --shutdown >/dev/null || SVC_RC=$?
  wait "$SVC_PID" || { echo "slo_served exited nonzero"; SVC_RC=1; }
fi
./build/examples/slo_served --port=0 --port-file=build/served-bug.port \
  --inject-frame-bug &
BUG_PID=$!
for _ in $(seq 1 100); do [[ -s build/served-bug.port ]] && break; sleep 0.1; done
if [[ ! -s build/served-bug.port ]]; then
  echo "buggy slo_served did not publish a port"
  SVC_RC=1
  kill "$BUG_PID" 2>/dev/null || true
else
  if ./build/examples/slo_client --port-file=build/served-bug.port \
      --fuzz-frames 100 --seed 7 >/dev/null 2>&1; then
    echo "frame-fuzz oracle is vacuous: --inject-frame-bug was not caught"
    SVC_RC=1
  fi
  ./build/examples/slo_client --port-file=build/served-bug.port \
    --shutdown >/dev/null 2>&1 || true
  wait "$BUG_PID" 2>/dev/null || true
fi
# The always-on flight recorder: a client stalling mid-frame past the
# daemon's stall budget must leave a structured post-mortem dump with
# the timeout reason on the daemon's stderr.
rm -f build/served-fr.port
./build/examples/slo_served --port=0 --port-file=build/served-fr.port \
  --timeout-ms=300 2> build/served-fr.err &
FR_PID=$!
for _ in $(seq 1 100); do [[ -s build/served-fr.port ]] && break; sleep 0.1; done
if [[ ! -s build/served-fr.port ]]; then
  echo "flight-recorder slo_served did not publish a port"
  SVC_RC=1
  kill "$FR_PID" 2>/dev/null || true
else
  ./build/examples/slo_client --port-file=build/served-fr.port \
    --stall-ms 1000 >/dev/null 2>&1 || true
  ./build/examples/slo_client --port-file=build/served-fr.port \
    --shutdown >/dev/null || SVC_RC=1
  wait "$FR_PID" || { echo "flight-recorder slo_served exited nonzero"; SVC_RC=1; }
  grep -q '"flight_recorder"' build/served-fr.err \
    && grep -q '"reason": "timeout"' build/served-fr.err \
    || { echo "stalled frame produced no flight-recorder timeout dump"; SVC_RC=1; }
fi
python3 scripts/promlint.py --self-test || SVC_RC=$?
# --overhead pairs a second daemon with null registries (the no-clock
# contract) in the same process, alternating single requests between
# the two so machine drift cancels — always-on telemetry earns its keep
# only if the median paired on/off QPS ratio stays within a few percent.
(cd build && ./bench/bench_service --overhead --out BENCH_service.json) \
  || SVC_RC=$?
python3 scripts/bench_compare.py --service build/BENCH_service.json \
  || SVC_RC=$?
python3 scripts/bench_compare.py \
  --service-overhead build/BENCH_service.json || SVC_RC=$?

echo "=== sanitized build (ASan+UBSan) ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSLO_ENABLE_SANITIZERS=ON "${LAUNCHER_ARGS[@]}"
cmake --build build-asan -j"$J"
# The interpreter recurses on the host stack for simulated calls; ASan's
# enlarged frames need more than the default 8 MiB to reach the
# interpreter's own MaxCallDepth trap (see DeepRecursionTrapsNotCrashes).
ulimit -s 262144 2>/dev/null || true
ASAN_RC=0
ctest --test-dir build-asan --output-on-failure -j"$J" || ASAN_RC=$?

if [[ $PLAIN_RC -ne 0 || $ASAN_RC -ne 0 || $FUZZ_RC -ne 0 || $SAMPLED_RC -ne 0 || $LINT_RC -ne 0 || $VM_RC -ne 0 || $ENGINE_RC -ne 0 || $INC_RC -ne 0 || $SVC_RC -ne 0 ]]; then
  echo "=== FAILED (plain ctest: $PLAIN_RC, sanitized ctest: $ASAN_RC, fuzz: $FUZZ_RC, sampled smoke: $SAMPLED_RC, lint: $LINT_RC, vm engine: $VM_RC, engine gate: $ENGINE_RC, incremental: $INC_RC, service: $SVC_RC) ==="
  exit 1
fi
echo "=== all checks passed ==="
