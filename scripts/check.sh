#!/usr/bin/env bash
# Full check: build and test plain, then again under ASan+UBSan. Both
# ctest legs always run; the script exits nonzero if either failed, so a
# plain-leg failure is never masked by a green sanitized leg.
set -euo pipefail

cd "$(dirname "$0")/.."

# nproc is a coreutils extra some minimal images lack; POSIX getconf is
# the fallback.
jobs() {
  if command -v nproc >/dev/null 2>&1; then
    nproc
  else
    getconf _NPROCESSORS_ONLN
  fi
}
J="$(jobs)"

# Pass a compiler launcher (ccache in CI) through to both builds.
LAUNCHER_ARGS=()
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
  LAUNCHER_ARGS+=("-DCMAKE_CXX_COMPILER_LAUNCHER=${CMAKE_CXX_COMPILER_LAUNCHER}")
fi

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "${LAUNCHER_ARGS[@]}"
cmake --build build -j"$J"
PLAIN_RC=0
ctest --test-dir build --output-on-failure -j"$J" || PLAIN_RC=$?

# A short differential-fuzz sweep (fixed seed, so reproducible) plus the
# committed corpus. Failures drop minimized repros next to the build.
echo "=== differential fuzz (corpus + 50 random programs) ==="
FUZZ_RC=0
./build/examples/slo_fuzz --runs 50 --seed 1 --minimize \
  --corpus tests/corpus --out build/fuzz-repros || FUZZ_RC=$?

# Lint leg: the layout-hazard suite over the 12 embedded workloads and
# the committed seed corpus. Error-severity findings fail the leg;
# layout-pin notes are expected (they demote types instead). A short
# injected-hazard sweep proves the lint oracle is alive in both
# directions: it must flag injected hazards, and a broken lint
# (--inject-lint-bug) must be caught.
echo "=== lint (workloads + corpus + injected hazards) ==="
LINT_RC=0
./build/examples/slo_lint --workloads || LINT_RC=$?
for f in tests/corpus/*.minic; do
  ./build/examples/slo_lint "$f" || LINT_RC=$?
done
./build/examples/slo_fuzz --runs 10 --seed 3 --inject-hazard uaf \
  || LINT_RC=$?
./build/examples/slo_fuzz --runs 10 --seed 3 --inject-hazard uninit \
  || LINT_RC=$?
if ./build/examples/slo_fuzz --runs 5 --seed 3 --inject-hazard uaf \
    --inject-lint-bug >/dev/null 2>&1; then
  echo "lint oracle is vacuous: --inject-lint-bug was not caught"
  LINT_RC=1
fi

# Sampled-profile smoke: collect a sampled (Caliper stand-in) DMISS
# profile through the driver, write it out, plan from the file in a
# second process, then run a short fuzz sweep where every oracle must
# hold with the planner fed sampled data.
echo "=== sampled-profile smoke (collection -> file -> advice) ==="
SAMPLED_RC=0
./build/examples/slo_driver --scheme=DMISS --sample-period 61 \
  --profile-out build/sampled.profile --run examples/sample.minic \
  >/dev/null || SAMPLED_RC=$?
./build/examples/slo_driver --scheme=DMISS \
  --profile-in build/sampled.profile --advise examples/sample.minic \
  >/dev/null || SAMPLED_RC=$?
./build/examples/slo_fuzz --runs 25 --seed 2 --sampled-profiles \
  || SAMPLED_RC=$?

echo "=== sanitized build (ASan+UBSan) ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSLO_ENABLE_SANITIZERS=ON "${LAUNCHER_ARGS[@]}"
cmake --build build-asan -j"$J"
# The interpreter recurses on the host stack for simulated calls; ASan's
# enlarged frames need more than the default 8 MiB to reach the
# interpreter's own MaxCallDepth trap (see DeepRecursionTrapsNotCrashes).
ulimit -s 262144 2>/dev/null || true
ASAN_RC=0
ctest --test-dir build-asan --output-on-failure -j"$J" || ASAN_RC=$?

if [[ $PLAIN_RC -ne 0 || $ASAN_RC -ne 0 || $FUZZ_RC -ne 0 || $SAMPLED_RC -ne 0 || $LINT_RC -ne 0 ]]; then
  echo "=== FAILED (plain ctest: $PLAIN_RC, sanitized ctest: $ASAN_RC, fuzz: $FUZZ_RC, sampled smoke: $SAMPLED_RC, lint: $LINT_RC) ==="
  exit 1
fi
echo "=== all checks passed ==="
