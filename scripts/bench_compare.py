#!/usr/bin/env python3
"""Bench-gate comparator for syzygy-slo CI.

Compares a freshly produced BENCH_table3.json against the checked-in
baseline (bench/baselines/BENCH_table3.json) and fails when simulated
first-level miss counts or speedup ratios drift beyond tolerance.

The simulator is deterministic — cycles and miss counts are simulation
results, not wall times — so the tolerances mainly guard against
intentional-but-unreviewed changes to the cache model, the workloads, or
the transformations. Wall-clock artifacts (BENCH_compile_time.json) are
checked for presence and schema only, never gated numerically.

A second leg gates BENCH_profile_quality.json (the sampled-PMU
advice-stability sweep): at the artifact's default sampling period,
planning from a sampled profile must select the identical transform set
as planning from the exact profile on every workload — advice_stable is
a hard invariant there, not a tolerance. The sweep is seeded and fully
simulated, so stability flags compare exactly against the baseline and
only tau/opt_misses get tolerances.

A third leg gates the execution engines against each other: given a
walker-engine and a vm-engine BENCH_table3.json from the same tree, the
VM must have produced bit-identical simulation rows (cycles, misses,
perf percentages — the VM is an optimization of the simulator's hot
loop, never of its results) while spending at least --min-speedup times
less simulator wall time. The engine field of each artifact is checked
literally, so a build that silently fell back to the walker cannot pass
the gate by comparing the walker against itself.

A fifth leg gates BENCH_service.json (the advisory-daemon bench): the
daemon's advice after concurrent ingest must be byte-identical to the
monolithic one-shot run over the same TU set (advice_identical is a
hard invariant), both load phases must have actually run (positive op
counts), and throughput/latency are held to generous ratio floors
against the checked-in baseline — QPS may not collapse below
--min-qps-ratio of baseline, ingest p99 may not blow past
--max-p99-ratio times baseline. Wall clock is not byte-stable, so the
ratios are deliberately loose; only the identity flag is exact.

A sixth leg gates telemetry overhead on a `bench_service --overhead`
artifact. That mode runs a second, telemetry-free daemon in the same
process and alternates single requests between the two daemons, so each
round's on/off QPS ratio is paired against identical machine load —
comparing two separate bench invocations instead confounds the tax with
drift between them (observed swings exceed the budget in both
directions). The gate requires the paired-ratio fields to be present (a
plain run cannot pass by omission), serve-equals-oneshot on BOTH
daemons, self-consistent daemon-side counts, and a median on/off QPS
ratio of at least (1 - --max-overhead) — the gate that keeps always-on
telemetry honest about its cost.

A fourth leg gates BENCH_incremental.json (the cold-vs-warm summary
cache bench): the warm run must render advice byte-identical to the
cold run that populated the cache, the 1-TU-invalidated run must render
advice byte-identical to a from-scratch cold run while recomputing
exactly one TU, and the warm run must be at least --min-warm-speedup
times faster than cold. Identity flags and reuse counts are exact
invariants; only the speedup is a (wall-clock) threshold, deliberately
set well below what an idle box measures.

Usage:
  bench_compare.py --current BENCH_table3.json \
      [--baseline bench/baselines/BENCH_table3.json] \
      [--compile-time BENCH_compile_time.json] \
      [--profile-quality BENCH_profile_quality.json] \
      [--profile-quality-baseline bench/baselines/BENCH_profile_quality.json] \
      [--miss-tolerance 0.05] [--perf-tolerance 2.0] [--tau-tolerance 0.05]
  bench_compare.py --engine-compare WALKER.json VM.json [--min-speedup 2.5]
  bench_compare.py --incremental BENCH_incremental.json \
      [--min-warm-speedup 10.0]
  bench_compare.py --service BENCH_service.json \
      [--service-baseline bench/baselines/BENCH_service.json] \
      [--min-qps-ratio 0.2] [--max-p99-ratio 5.0]
  bench_compare.py --service-overhead BENCH_service.json \
      [--max-overhead 0.05]   # artifact from bench_service --overhead
  bench_compare.py --self-test [--baseline ...] [--profile-quality-baseline ...]

--self-test injects a 10% miss-count regression into a copy of the
table3 baseline and an advice-stability flip (what a too-coarse sampling
period produces) into a copy of the profile-quality baseline, and
asserts the gate rejects both (and that the unmodified baselines pass);
CI runs it so a silently broken comparator cannot turn the gate green.
The engine leg self-tests on synthesized artifacts: a clean pair must
pass, and a wrong engine field, a single diverging row, and an
insufficient speedup must each be rejected. The incremental leg
likewise: a clean synthesized artifact must pass, and a flipped
identity flag, an insufficient warm speedup, and wrong invalidation
counts must each be rejected. The service leg likewise: a clean
synthesized artifact must pass against a synthesized baseline, and a
flipped advice_identical flag, a QPS collapse, a p99 blow-up, and an
empty load phase must each be rejected.
"""

import argparse
import copy
import json
import sys


def load_json(path, what):
    """Reads a JSON artifact; any failure is a one-line error, never a
    traceback (a stale CI cache or a hand-edited baseline must produce a
    message a human can act on)."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        raise SystemExit(f"{path}: cannot read {what}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise SystemExit(
            f"{path}: malformed JSON in {what} "
            f"(line {e.lineno}, column {e.colno}: {e.msg})"
        )


def require_keys(row, keys, path, kind):
    """Every key the comparators index must exist up front; a missing one
    is a schema error named after the key, not a KeyError traceback."""
    for k in keys:
        if k not in row:
            raise SystemExit(f"{path}: {kind} record is missing key '{k}': {row}")


def load_rows(path):
    doc = load_json(path, "table3 artifact")
    if not isinstance(doc, dict) or doc.get("table") != "table3" \
            or "rows" not in doc:
        raise SystemExit(f"{path}: not a BENCH_table3.json artifact")
    rows = {}
    for row in doc["rows"]:
        require_keys(
            row,
            ("benchmark", "pbo", "base_misses", "opt_misses", "perf_percent"),
            path,
            "table3",
        )
        key = (row["benchmark"], bool(row["pbo"]))
        if key in rows:
            raise SystemExit(f"{path}: duplicate row for {key}")
        rows[key] = row
    return rows


def rel_drift(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return abs(cur - base) / base


def compare(baseline, current, miss_tol, perf_tol):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    for key in baseline:
        if key not in current:
            failures.append(f"{key[0]} (pbo={key[1]}): row missing from current run")
    for key in current:
        if key not in baseline:
            failures.append(
                f"{key[0]} (pbo={key[1]}): new row not in baseline "
                "(regenerate bench/baselines/BENCH_table3.json)"
            )
    for key, base in sorted(baseline.items()):
        cur = current.get(key)
        if cur is None:
            continue
        name = f"{key[0]} (pbo={'yes' if key[1] else 'no'})"
        for field in ("base_misses", "opt_misses"):
            drift = rel_drift(base[field], cur[field])
            if drift > miss_tol:
                failures.append(
                    f"{name}: {field} drifted {drift:.1%} "
                    f"({base[field]} -> {cur[field]}, tolerance {miss_tol:.1%})"
                )
        perf_delta = abs(cur["perf_percent"] - base["perf_percent"])
        if perf_delta > perf_tol:
            failures.append(
                f"{name}: perf_percent moved {perf_delta:.2f}pp "
                f"({base['perf_percent']:.2f} -> {cur['perf_percent']:.2f}, "
                f"tolerance {perf_tol:.2f}pp)"
            )
    return failures


def load_quality(path):
    """Loads a BENCH_profile_quality.json artifact: (default_period, rows)
    with rows keyed by (benchmark, period)."""
    doc = load_json(path, "profile-quality artifact")
    if not isinstance(doc, dict) or doc.get("bench") != "profile_quality" \
            or "rows" not in doc:
        raise SystemExit(f"{path}: not a BENCH_profile_quality.json artifact")
    default_period = doc.get("default_period")
    if not isinstance(default_period, int):
        raise SystemExit(f"{path}: missing integer default_period")
    rows = {}
    for row in doc["rows"]:
        require_keys(
            row,
            ("benchmark", "period", "advice_stable", "partition_stable",
             "tau", "opt_misses"),
            path,
            "profile-quality",
        )
        key = (row["benchmark"], int(row["period"]))
        if key in rows:
            raise SystemExit(f"{path}: duplicate row for {key}")
        rows[key] = row
    return default_period, rows


def check_quality_stability(default_period, rows):
    """The advice-stability invariant on one artifact: at the default
    sampling period, every workload plans the same transform set from
    sampled data as from exact data."""
    failures = []
    checked = 0
    for (bench, period), row in sorted(rows.items()):
        if period != default_period:
            continue
        checked += 1
        if not row["advice_stable"]:
            failures.append(
                f"{bench}: advice UNSTABLE at default period {default_period} "
                "(sampled profile plans a different transform set than exact)"
            )
    if checked == 0:
        failures.append(f"no rows at default period {default_period}")
    return failures


def compare_quality(base, current, miss_tol, tau_tol):
    """Drift of a profile-quality sweep against its baseline. Stability
    flags are exact (the sweep is seeded and fully simulated); tau and
    opt_misses get tolerances."""
    base_period, base_rows = base
    cur_period, cur_rows = current
    failures = []
    if base_period != cur_period:
        failures.append(
            f"default_period changed {base_period} -> {cur_period} "
            "(regenerate the baseline if intentional)"
        )
    for key in base_rows:
        if key not in cur_rows:
            failures.append(f"{key[0]} (period={key[1]}): row missing from current run")
    for key in cur_rows:
        if key not in base_rows:
            failures.append(
                f"{key[0]} (period={key[1]}): new row not in baseline "
                "(regenerate bench/baselines/BENCH_profile_quality.json)"
            )
    for key, b in sorted(base_rows.items()):
        c = cur_rows.get(key)
        if c is None:
            continue
        name = f"{key[0]} (period={key[1]})"
        for flag in ("advice_stable", "partition_stable"):
            if bool(b[flag]) != bool(c[flag]):
                failures.append(
                    f"{name}: {flag} changed {b[flag]} -> {c[flag]}"
                )
        tau_delta = abs(c["tau"] - b["tau"])
        if tau_delta > tau_tol:
            failures.append(
                f"{name}: tau moved {tau_delta:.3f} "
                f"({b['tau']:.3f} -> {c['tau']:.3f}, tolerance {tau_tol:.3f})"
            )
        drift = rel_drift(b["opt_misses"], c["opt_misses"])
        if drift > miss_tol:
            failures.append(
                f"{name}: opt_misses drifted {drift:.1%} "
                f"({b['opt_misses']} -> {c['opt_misses']}, tolerance {miss_tol:.1%})"
            )
    return failures


def load_engine_doc(path):
    """Loads a table3 artifact for the engine leg, keeping the top-level
    engine and sim_wall_ms fields the row-drift leg ignores."""
    doc = load_json(path, "table3 artifact")
    if not isinstance(doc, dict) or doc.get("table") != "table3" \
            or "rows" not in doc:
        raise SystemExit(f"{path}: not a BENCH_table3.json artifact")
    require_keys(doc, ("engine", "sim_wall_ms"), path, "table3 engine")
    return doc


def engine_compare(walker, vm, min_speedup):
    """The walker-vs-VM gate: identical simulation rows, bounded wall
    time. Returns a list of human-readable failure strings."""
    failures = []
    # Engine fields are literal: a binary that silently fell back to the
    # walker must not pass by comparing the walker against itself.
    if walker["engine"] != "walker":
        failures.append(
            f"walker artifact ran engine '{walker['engine']}', expected 'walker'"
        )
    if vm["engine"] != "vm":
        failures.append(
            f"vm artifact ran engine '{vm['engine']}', expected 'vm'"
        )

    # Simulation rows must be bit-identical, every field: the VM is an
    # optimization of the simulator's hot loop, never of its results.
    wrows = {(r.get("benchmark"), bool(r.get("pbo"))): r for r in walker["rows"]}
    vrows = {(r.get("benchmark"), bool(r.get("pbo"))): r for r in vm["rows"]}
    for key in sorted(set(wrows) | set(vrows)):
        name = f"{key[0]} (pbo={'yes' if key[1] else 'no'})"
        w, v = wrows.get(key), vrows.get(key)
        if w is None or v is None:
            failures.append(
                f"{name}: row present only in the "
                f"{'walker' if v is None else 'vm'} artifact"
            )
            continue
        for field in sorted(set(w) | set(v)):
            if w.get(field) != v.get(field):
                failures.append(
                    f"{name}: {field} diverges between engines "
                    f"(walker {w.get(field)!r}, vm {v.get(field)!r})"
                )

    if vm["sim_wall_ms"] <= 0:
        failures.append(f"vm artifact has non-positive sim_wall_ms")
    else:
        speedup = walker["sim_wall_ms"] / vm["sim_wall_ms"]
        if speedup < min_speedup:
            failures.append(
                f"vm engine speedup {speedup:.2f}x below the {min_speedup:.2f}x "
                f"floor (walker {walker['sim_wall_ms']:.1f} ms, "
                f"vm {vm['sim_wall_ms']:.1f} ms)"
            )
    return failures


def engine_self_test(min_speedup):
    """Engine-leg self-test on synthesized artifacts (the leg compares
    two fresh runs, not a baseline, so there is nothing on disk to
    perturb): a clean pair passes; a wrong engine field, one diverging
    row, and an insufficient speedup are each rejected."""
    rows = [
        {"benchmark": "181.mcf", "pbo": False, "types": 4, "transformed": 2,
         "split_dead": 1, "base_cycles": 1000, "opt_cycles": 900,
         "base_misses": 50, "opt_misses": 40, "perf_percent": 10.0},
        {"benchmark": "moldyn", "pbo": True, "types": 3, "transformed": 1,
         "split_dead": 0, "base_cycles": 2000, "opt_cycles": 1600,
         "base_misses": 80, "opt_misses": 60, "perf_percent": 20.0},
    ]
    walker = {"table": "table3", "engine": "walker", "sim_wall_ms": 1000.0,
              "rows": copy.deepcopy(rows)}
    vm = {"table": "table3", "engine": "vm", "sim_wall_ms": 250.0,
          "rows": copy.deepcopy(rows)}

    if engine_compare(walker, vm, min_speedup):
        print("self-test FAILED: clean engine pair does not pass")
        return 1

    rejected = []
    fallback = copy.deepcopy(vm)
    fallback["engine"] = "walker"  # Silent fall-back to the walker.
    rejected += engine_compare(walker, fallback, min_speedup) or [None]

    diverged = copy.deepcopy(vm)
    diverged["rows"][0]["opt_cycles"] += 1
    drift = engine_compare(walker, diverged, min_speedup)

    slow = copy.deepcopy(vm)
    slow["sim_wall_ms"] = walker["sim_wall_ms"] / (min_speedup * 0.5)
    lag = engine_compare(walker, slow, min_speedup)

    if rejected == [None] or not drift or not lag:
        print(
            "self-test FAILED: engine gate accepted a wrong engine field, "
            "a diverging row, or an insufficient speedup"
        )
        return 1
    print("self-test ok: engine pair passes, injected engine failures fail:")
    for f in [r for r in rejected if r] + drift + lag:
        print(f"  {f}")
    return 0


def load_incremental(path):
    """Loads a BENCH_incremental.json artifact (see bench_incremental.cpp)."""
    doc = load_json(path, "incremental artifact")
    if not isinstance(doc, dict) or doc.get("bench") != "incremental":
        raise SystemExit(f"{path}: not a BENCH_incremental.json artifact")
    require_keys(
        doc,
        ("tus", "cold_wall_ms", "warm_wall_ms", "warm_speedup",
         "warm_advice_identical", "invalidated_advice_identical",
         "warm_reused", "warm_recomputed",
         "invalidated_reused", "invalidated_recomputed"),
        path,
        "incremental",
    )
    return doc


def incremental_gate(doc, min_warm_speedup):
    """The cold-vs-warm gate: byte-identical advice is an invariant, the
    speedup floor is the reason the cache exists. Returns a list of
    human-readable failure strings."""
    failures = []
    tus = doc["tus"]
    if not doc["warm_advice_identical"]:
        failures.append(
            "warm run rendered different advice than the cold run that "
            "populated the cache (cached summaries are not round-trip exact)"
        )
    if not doc["invalidated_advice_identical"]:
        failures.append(
            "1-TU-invalidated warm run rendered different advice than a "
            "from-scratch cold run (stale summaries leaked into the merge)"
        )
    # Reuse counts are exact: a warm run that silently recomputed would
    # still be byte-identical, so identity alone cannot catch a cache
    # that never hits.
    if doc["warm_recomputed"] != 0 or doc["warm_reused"] != tus:
        failures.append(
            f"warm run reused {doc['warm_reused']}/{tus} and recomputed "
            f"{doc['warm_recomputed']} (expected all reused, none recomputed)"
        )
    if doc["invalidated_recomputed"] != 1 or doc["invalidated_reused"] != tus - 1:
        failures.append(
            f"invalidated run reused {doc['invalidated_reused']}/{tus} and "
            f"recomputed {doc['invalidated_recomputed']} (expected exactly "
            "the mutated TU recomputed)"
        )
    if doc["warm_speedup"] < min_warm_speedup:
        failures.append(
            f"warm speedup {doc['warm_speedup']:.1f}x below the "
            f"{min_warm_speedup:.1f}x floor (cold {doc['cold_wall_ms']:.1f} ms, "
            f"warm {doc['warm_wall_ms']:.1f} ms)"
        )
    return failures


def incremental_self_test(min_warm_speedup):
    """Incremental-leg self-test on a synthesized artifact (the leg gates
    a fresh run, not a baseline): a clean artifact passes; a flipped
    identity flag, an insufficient speedup, and wrong invalidation
    counts are each rejected."""
    clean = {
        "bench": "incremental", "tus": 201, "seed": 42,
        "cold_wall_ms": 600.0, "warm_wall_ms": 12.0,
        "invalidated_wall_ms": 14.0, "warm_speedup": 50.0,
        "warm_advice_identical": True, "invalidated_advice_identical": True,
        "warm_reused": 201, "warm_recomputed": 0,
        "invalidated_reused": 200, "invalidated_recomputed": 1,
    }
    if incremental_gate(clean, min_warm_speedup):
        print("self-test FAILED: clean incremental artifact does not pass")
        return 1

    stale = copy.deepcopy(clean)
    stale["invalidated_advice_identical"] = False  # A stale summary leaked.
    flagged = incremental_gate(stale, min_warm_speedup)

    slow = copy.deepcopy(clean)
    slow["warm_speedup"] = min_warm_speedup * 0.5
    lag = incremental_gate(slow, min_warm_speedup)

    cold_warm = copy.deepcopy(clean)
    cold_warm["warm_reused"] = 0  # A cache that never hits.
    cold_warm["warm_recomputed"] = clean["tus"]
    miss = incremental_gate(cold_warm, min_warm_speedup)

    if not flagged or not lag or not miss:
        print(
            "self-test FAILED: incremental gate accepted a flipped identity "
            "flag, an insufficient warm speedup, or a never-hitting cache"
        )
        return 1
    print(
        "self-test ok: incremental artifact passes, injected incremental "
        "failures fail:"
    )
    for f in flagged + lag + miss:
        print(f"  {f}")
    return 0


def load_service(path):
    """Loads a BENCH_service.json artifact (see bench_service.cpp)."""
    doc = load_json(path, "service artifact")
    if not isinstance(doc, dict) or doc.get("bench") != "service":
        raise SystemExit(f"{path}: not a BENCH_service.json artifact")
    require_keys(
        doc,
        ("tus", "producers", "readers", "ingest_ops", "ingest_p50_ms",
         "ingest_p99_ms", "ingest_retries", "advice_requests", "advice_qps",
         "advice_identical"),
        path,
        "service",
    )
    return doc


def service_gate(doc, baseline, min_qps_ratio, max_p99_ratio):
    """The advisory-daemon gate: byte-identity is exact, load phases must
    have run, and throughput/latency stay within generous ratio floors of
    the baseline (wall clock is not byte-stable, so the ratios are loose
    by design). Returns a list of human-readable failure strings."""
    failures = []
    if not doc["advice_identical"]:
        failures.append(
            "daemon advice after concurrent ingest differs from the "
            "monolithic one-shot run (serve-equals-oneshot broken)"
        )
    if doc["ingest_ops"] <= 0:
        failures.append("ingest phase performed zero operations")
    if doc["advice_requests"] <= 0:
        failures.append("advice phase answered zero requests")
    if baseline["advice_qps"] > 0:
        ratio = doc["advice_qps"] / baseline["advice_qps"]
        if ratio < min_qps_ratio:
            failures.append(
                f"advice QPS collapsed to {ratio:.2f}x of baseline "
                f"({baseline['advice_qps']:.1f} -> {doc['advice_qps']:.1f}, "
                f"floor {min_qps_ratio:.2f}x)"
            )
    if baseline["ingest_p99_ms"] > 0:
        ratio = doc["ingest_p99_ms"] / baseline["ingest_p99_ms"]
        if ratio > max_p99_ratio:
            failures.append(
                f"ingest p99 blew up to {ratio:.2f}x of baseline "
                f"({baseline['ingest_p99_ms']:.2f} ms -> "
                f"{doc['ingest_p99_ms']:.2f} ms, ceiling {max_p99_ratio:.2f}x)"
            )
    return failures


def service_self_test(min_qps_ratio, max_p99_ratio):
    """Service-leg self-test on synthesized artifacts: a clean artifact
    passes against a synthesized baseline; a flipped identity flag, a QPS
    collapse, a p99 blow-up, and an empty load phase are each rejected."""
    base = {
        "bench": "service", "tus": 25, "seed": 42, "producers": 4,
        "readers": 4, "ingest_ops": 240, "ingest_wall_ms": 900.0,
        "ingest_p50_ms": 12.0, "ingest_p99_ms": 36.0, "ingest_retries": 0,
        "advice_requests": 4000, "advice_wall_ms": 1500.0,
        "advice_qps": 2600.0, "advice_identical": True,
    }
    if service_gate(base, base, min_qps_ratio, max_p99_ratio):
        print("self-test FAILED: clean service artifact does not pass")
        return 1

    diverged = copy.deepcopy(base)
    diverged["advice_identical"] = False  # Serve != oneshot.
    broken = service_gate(diverged, base, min_qps_ratio, max_p99_ratio)

    collapsed = copy.deepcopy(base)
    collapsed["advice_qps"] = base["advice_qps"] * min_qps_ratio * 0.5
    slow = service_gate(collapsed, base, min_qps_ratio, max_p99_ratio)

    spiked = copy.deepcopy(base)
    spiked["ingest_p99_ms"] = base["ingest_p99_ms"] * max_p99_ratio * 2.0
    tail = service_gate(spiked, base, min_qps_ratio, max_p99_ratio)

    idle = copy.deepcopy(base)
    idle["ingest_ops"] = 0  # A bench that measured nothing.
    empty = service_gate(idle, base, min_qps_ratio, max_p99_ratio)

    if not broken or not slow or not tail or not empty:
        print(
            "self-test FAILED: service gate accepted a flipped identity "
            "flag, a QPS collapse, a p99 blow-up, or an empty load phase"
        )
        return 1
    print("self-test ok: service artifact passes, injected service failures fail:")
    for f in broken + slow + tail + empty:
        print(f"  {f}")
    return 0


def service_overhead_gate(art, max_overhead):
    """The telemetry-overhead gate, fed by one `bench_service --overhead`
    artifact. That mode runs a second, telemetry-free daemon in the same
    process and alternates single requests between the two, so each
    round's on/off QPS ratio is paired against identical machine load —
    comparing two separate bench invocations instead confounds the tax
    with drift between them. The gate requires the telemetry-on label,
    the paired-ratio fields, serve-equals-oneshot on BOTH daemons,
    self-consistent daemon-side counts, and a median on/off QPS ratio of
    at least 1 - max_overhead. Returns human-readable failure strings."""
    failures = []
    if art.get("telemetry") != "on":
        failures.append(
            f"artifact ran telemetry '{art.get('telemetry')}', expected 'on'"
        )
    ratio = art.get("overhead_qps_ratio")
    if ratio is None or art.get("advice_qps_on") is None or \
            art.get("advice_qps_off") is None:
        failures.append(
            "artifact has no paired on/off measurement -- run "
            "bench_service --overhead"
        )
        return failures
    if not art["advice_identical"]:
        failures.append(
            "telemetry-on daemon broke serve-equals-oneshot "
            "(telemetry must never change advice bytes)"
        )
    if not art.get("advice_identical_off", False):
        failures.append(
            "telemetry-off daemon broke serve-equals-oneshot"
        )
    if art["advice_requests"] <= 0:
        failures.append("bench answered zero advice requests")
    if not art.get("telemetry_consistent", True):
        failures.append(
            "daemon-side telemetry is inconsistent "
            "(PutSource histogram count != ops+retries, or GetMetrics "
            "disagrees with the in-process registry)"
        )
    if ratio < 1.0 - max_overhead:
        failures.append(
            f"telemetry costs {1.0 - ratio:.1%} of advice QPS "
            f"(median paired on/off ratio {ratio:.3f}, "
            f"budget {max_overhead:.1%})"
        )
    return failures


def service_overhead_self_test(max_overhead):
    """Overhead-leg self-test on synthesized artifacts (the leg gates a
    fresh run, nothing on disk to perturb): a clean --overhead artifact
    passes; a run without the paired measurement, a ratio past the
    budget, an inconsistent daemon count, and a diverged off-daemon are
    each rejected."""
    art = {
        "bench": "service", "tus": 25, "seed": 42, "producers": 4,
        "readers": 4, "telemetry": "on", "ingest_ops": 240,
        "ingest_wall_ms": 900.0, "ingest_p50_ms": 12.0,
        "ingest_p99_ms": 36.0, "ingest_retries": 0,
        "advice_requests": 4000, "advice_wall_ms": 1500.0,
        "advice_qps": 2600.0, "daemon_put_source_count": 240,
        "daemon_put_source_p50_us": 3300,
        "daemon_put_source_p99_us": 28000,
        "advice_qps_on": 2560.0, "advice_qps_off": 2600.0,
        "overhead_qps_ratio": 1.0 - max_overhead * 0.5,
        "advice_identical_off": True,
        "telemetry_consistent": True, "advice_identical": True,
    }
    if service_overhead_gate(art, max_overhead):
        print("self-test FAILED: clean overhead artifact does not pass")
        return 1

    unpaired = copy.deepcopy(art)  # A plain run without --overhead.
    for key in ("overhead_qps_ratio", "advice_qps_on", "advice_qps_off"):
        del unpaired[key]
    missing = service_overhead_gate(unpaired, max_overhead)

    costly = copy.deepcopy(art)
    costly["overhead_qps_ratio"] = 1.0 - max_overhead * 3.0
    slow = service_overhead_gate(costly, max_overhead)

    miscounted = copy.deepcopy(art)
    miscounted["telemetry_consistent"] = False
    skew = service_overhead_gate(miscounted, max_overhead)

    diverged = copy.deepcopy(art)
    diverged["advice_identical_off"] = False
    broken = service_overhead_gate(diverged, max_overhead)

    if not missing or not slow or not skew or not broken:
        print(
            "self-test FAILED: overhead gate accepted a run without the "
            "paired measurement, an over-budget QPS cost, an inconsistent "
            "daemon count, or a diverged off-daemon"
        )
        return 1
    print(
        "self-test ok: overhead artifact passes, injected overhead "
        "failures fail:"
    )
    for f in missing + slow + skew + broken:
        print(f"  {f}")
    return 0


def check_compile_time(path):
    """Presence/schema check only: google-benchmark JSON with benchmarks."""
    doc = load_json(path, "compile-time artifact")
    benches = doc.get("benchmarks") if isinstance(doc, dict) else None
    if not isinstance(benches, list) or not benches:
        raise SystemExit(f"{path}: no benchmarks in artifact")
    for b in benches:
        if "name" not in b or "real_time" not in b:
            raise SystemExit(f"{path}: malformed benchmark entry: {b}")
    print(f"ok: {path} contains {len(benches)} compile-time measurements")


def self_test(baseline_rows, quality, miss_tol, perf_tol, tau_tol):
    clean = compare(baseline_rows, baseline_rows, miss_tol, perf_tol)
    if clean:
        print("self-test FAILED: baseline does not pass against itself:")
        for f in clean:
            print(f"  {f}")
        return 1

    regressed = copy.deepcopy(baseline_rows)
    victim = sorted(regressed)[0]
    regressed[victim]["opt_misses"] = int(
        regressed[victim]["opt_misses"] * 1.10
    )
    failures = compare(baseline_rows, regressed, miss_tol, perf_tol)
    if not failures:
        print(
            "self-test FAILED: a 10% opt_misses regression on "
            f"{victim} was not rejected"
        )
        return 1
    print("self-test ok: baseline passes, injected 10% miss regression fails:")
    for f in failures:
        print(f"  {f}")

    # Profile-quality leg: the baseline must satisfy the stability
    # invariant and pass against itself, and flipping one advice_stable
    # flag at the default period — exactly what collecting with a
    # too-coarse sampling period produces — must be rejected.
    default_period, qrows = quality
    broken = check_quality_stability(default_period, qrows)
    if broken:
        print("self-test FAILED: quality baseline violates stability invariant:")
        for f in broken:
            print(f"  {f}")
        return 1
    if compare_quality(quality, quality, miss_tol, tau_tol):
        print("self-test FAILED: quality baseline does not pass against itself")
        return 1

    coarse = copy.deepcopy(qrows)
    qvictim = sorted(k for k in coarse if k[1] == default_period)[0]
    coarse[qvictim]["advice_stable"] = False
    stab = check_quality_stability(default_period, coarse)
    drift = compare_quality(quality, (default_period, coarse), miss_tol, tau_tol)
    if not stab or not drift:
        print(
            "self-test FAILED: an advice-stability flip on "
            f"{qvictim} was not rejected"
        )
        return 1
    print("self-test ok: quality baseline passes, injected advice flip fails:")
    for f in stab + drift:
        print(f"  {f}")
    if engine_self_test(min_speedup=2.5):
        return 1
    if incremental_self_test(min_warm_speedup=10.0):
        return 1
    if service_self_test(min_qps_ratio=0.2, max_p99_ratio=5.0):
        return 1
    return service_overhead_self_test(max_overhead=0.05)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/baselines/BENCH_table3.json")
    ap.add_argument("--current", help="freshly produced BENCH_table3.json")
    ap.add_argument(
        "--compile-time",
        help="BENCH_compile_time.json to presence/schema-check (not gated)",
    )
    ap.add_argument(
        "--miss-tolerance",
        type=float,
        default=0.05,
        help="max relative drift in base/opt miss counts (default 5%%)",
    )
    ap.add_argument(
        "--perf-tolerance",
        type=float,
        default=2.0,
        help="max absolute drift in perf_percent, in points (default 2.0)",
    )
    ap.add_argument(
        "--profile-quality",
        help="freshly produced BENCH_profile_quality.json to gate",
    )
    ap.add_argument(
        "--profile-quality-baseline",
        default="bench/baselines/BENCH_profile_quality.json",
    )
    ap.add_argument(
        "--tau-tolerance",
        type=float,
        default=0.05,
        help="max absolute drift in Kendall tau per row (default 0.05)",
    )
    ap.add_argument(
        "--engine-compare",
        nargs=2,
        metavar=("WALKER_JSON", "VM_JSON"),
        help="gate a walker-engine table3 artifact against a vm-engine "
        "one: rows must be bit-identical and the vm at least "
        "--min-speedup times faster in simulator wall time",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=2.5,
        help="minimum walker/vm simulator wall-time ratio for "
        "--engine-compare (default 2.5; deliberately below the 3.6-3.9x "
        "an idle box measures, so a loaded CI box does not flake)",
    )
    ap.add_argument(
        "--incremental",
        help="freshly produced BENCH_incremental.json to gate: warm and "
        "invalidated advice must be byte-identical to cold, reuse counts "
        "exact, warm speedup at least --min-warm-speedup",
    )
    ap.add_argument(
        "--min-warm-speedup",
        type=float,
        default=10.0,
        help="minimum cold/warm wall-time ratio for --incremental "
        "(default 10.0; an idle box measures ~45-55x, so a loaded CI box "
        "does not flake)",
    )
    ap.add_argument(
        "--service",
        help="freshly produced BENCH_service.json to gate: daemon advice "
        "must be byte-identical to one-shot, load phases non-empty, "
        "QPS/p99 within ratio floors of --service-baseline",
    )
    ap.add_argument(
        "--service-baseline",
        default="bench/baselines/BENCH_service.json",
    )
    ap.add_argument(
        "--min-qps-ratio",
        type=float,
        default=0.2,
        help="minimum current/baseline advice QPS ratio for --service "
        "(default 0.2; deliberately loose, wall clock is not byte-stable "
        "and CI boxes vary widely)",
    )
    ap.add_argument(
        "--max-p99-ratio",
        type=float,
        default=5.0,
        help="maximum current/baseline ingest p99 ratio for --service "
        "(default 5.0; loose for the same reason)",
    )
    ap.add_argument(
        "--service-overhead",
        metavar="SERVICE_JSON",
        help="gate a bench_service --overhead artifact: that mode pairs "
        "a telemetry-free daemon against the telemetry-on one in the "
        "same process (alternating single requests, so drift cancels); "
        "requires serve-equals-oneshot on both daemons, self-consistent "
        "daemon counts, and a median on/off QPS ratio of at least "
        "1 - --max-overhead",
    )
    ap.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="maximum fraction of advice QPS always-on telemetry may "
        "cost for --service-overhead (default 5%%)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate rejects an injected 10%% miss regression, "
        "an injected advice-stability flip, an injected engine "
        "divergence, and an injected incremental-cache failure",
    )
    args = ap.parse_args()

    # The engine leg compares two fresh artifacts against each other and
    # needs no baseline on disk.
    if args.engine_compare and not args.self_test:
        walker = load_engine_doc(args.engine_compare[0])
        vm = load_engine_doc(args.engine_compare[1])
        failures = engine_compare(walker, vm, args.min_speedup)
        if failures:
            print(f"engine gate FAILED ({len(failures)} finding(s)):")
            for f in failures:
                print(f"  {f}")
            return 1
        print(
            f"engine gate ok: {len(vm['rows'])} rows bit-identical, vm "
            f"{walker['sim_wall_ms'] / vm['sim_wall_ms']:.2f}x faster "
            f"({walker['sim_wall_ms']:.1f} ms -> {vm['sim_wall_ms']:.1f} ms, "
            f"floor {args.min_speedup:.2f}x)"
        )
        return 0

    # The overhead leg gates one fresh --overhead artifact (the on/off
    # pairing happened inside the bench) and needs no baseline on disk.
    if args.service_overhead and not args.self_test:
        art = load_service(args.service_overhead)
        failures = service_overhead_gate(art, args.max_overhead)
        if failures:
            print(f"service overhead gate FAILED ({len(failures)} finding(s)):")
            for f in failures:
                print(f"  {f}")
            return 1
        ratio = art["overhead_qps_ratio"]
        print(
            f"service overhead gate ok: telemetry costs "
            f"{max(1.0 - ratio, 0.0):.1%} of advice QPS (median paired "
            f"on/off ratio {ratio:.3f}, {art['advice_qps_off']:.1f} off vs "
            f"{art['advice_qps_on']:.1f} on, budget {args.max_overhead:.1%})"
        )
        return 0

    # The service leg gates one fresh artifact against its identity
    # invariant and loose throughput/latency ratios vs the baseline.
    if args.service and not args.self_test:
        doc = load_service(args.service)
        baseline = load_service(args.service_baseline)
        failures = service_gate(
            doc, baseline, args.min_qps_ratio, args.max_p99_ratio
        )
        if failures:
            print(f"service gate FAILED ({len(failures)} finding(s)):")
            for f in failures:
                print(f"  {f}")
            return 1
        print(
            f"service gate ok: {doc['tus']} TUs, {doc['producers']} "
            f"producers, advice byte-identical to one-shot, "
            f"{doc['advice_qps']:.1f} qps "
            f"({doc['advice_qps'] / baseline['advice_qps']:.2f}x of "
            f"baseline, floor {args.min_qps_ratio:.2f}x), ingest p99 "
            f"{doc['ingest_p99_ms']:.2f} ms "
            f"(ceiling {args.max_p99_ratio:.2f}x of baseline)"
        )
        return 0

    # The incremental leg gates one fresh artifact against invariants and
    # a speedup floor; no baseline on disk is involved.
    if args.incremental and not args.self_test:
        doc = load_incremental(args.incremental)
        failures = incremental_gate(doc, args.min_warm_speedup)
        if failures:
            print(f"incremental gate FAILED ({len(failures)} finding(s)):")
            for f in failures:
                print(f"  {f}")
            return 1
        print(
            f"incremental gate ok: {doc['tus']} TUs, warm "
            f"{doc['warm_speedup']:.1f}x faster than cold "
            f"({doc['cold_wall_ms']:.1f} ms -> {doc['warm_wall_ms']:.1f} ms, "
            f"floor {args.min_warm_speedup:.1f}x), advice byte-identical on "
            "warm and 1-TU-invalidated runs"
        )
        return 0

    baseline = load_rows(args.baseline)

    if args.self_test:
        quality = load_quality(args.profile_quality_baseline)
        return self_test(
            baseline,
            quality,
            args.miss_tolerance,
            args.perf_tolerance,
            args.tau_tolerance,
        )

    if not args.current and not args.profile_quality:
        ap.error("--current or --profile-quality is required unless --self-test")

    if args.compile_time:
        check_compile_time(args.compile_time)

    failures = []
    gated = []
    if args.current:
        current = load_rows(args.current)
        failures += compare(
            baseline, current, args.miss_tolerance, args.perf_tolerance
        )
        gated.append(f"{len(current)} table3 rows")
    if args.profile_quality:
        qcurrent = load_quality(args.profile_quality)
        failures += check_quality_stability(*qcurrent)
        failures += compare_quality(
            load_quality(args.profile_quality_baseline),
            qcurrent,
            args.miss_tolerance,
            args.tau_tolerance,
        )
        gated.append(f"{len(qcurrent[1])} profile-quality rows")
    if failures:
        print(f"bench gate FAILED ({len(failures)} drift(s)):")
        for f in failures:
            print(f"  {f}")
        print(
            "if this change is intentional, regenerate the baseline(s):\n"
            "  ./build/bench/bench_table3_performance && "
            "cp BENCH_table3.json bench/baselines/\n"
            "  ./build/bench/bench_profile_quality && "
            "cp BENCH_profile_quality.json bench/baselines/"
        )
        return 1
    print(
        f"bench gate ok: {', '.join(gated)} within tolerance "
        f"(miss {args.miss_tolerance:.1%}, perf {args.perf_tolerance}pp, "
        f"tau {args.tau_tolerance})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
