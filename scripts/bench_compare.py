#!/usr/bin/env python3
"""Bench-gate comparator for syzygy-slo CI.

Compares a freshly produced BENCH_table3.json against the checked-in
baseline (bench/baselines/BENCH_table3.json) and fails when simulated
first-level miss counts or speedup ratios drift beyond tolerance.

The simulator is deterministic — cycles and miss counts are simulation
results, not wall times — so the tolerances mainly guard against
intentional-but-unreviewed changes to the cache model, the workloads, or
the transformations. Wall-clock artifacts (BENCH_compile_time.json) are
checked for presence and schema only, never gated numerically.

Usage:
  bench_compare.py --current BENCH_table3.json \
      [--baseline bench/baselines/BENCH_table3.json] \
      [--compile-time BENCH_compile_time.json] \
      [--miss-tolerance 0.05] [--perf-tolerance 2.0]
  bench_compare.py --self-test [--baseline ...]

--self-test injects a 10% miss-count regression into a copy of the
baseline and asserts the gate rejects it (and that the unmodified
baseline passes); CI runs it so a silently broken comparator cannot turn
the gate green.
"""

import argparse
import copy
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("table") != "table3" or "rows" not in doc:
        raise SystemExit(f"{path}: not a BENCH_table3.json artifact")
    rows = {}
    for row in doc["rows"]:
        key = (row["benchmark"], bool(row["pbo"]))
        if key in rows:
            raise SystemExit(f"{path}: duplicate row for {key}")
        rows[key] = row
    return rows


def rel_drift(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return abs(cur - base) / base


def compare(baseline, current, miss_tol, perf_tol):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    for key in baseline:
        if key not in current:
            failures.append(f"{key[0]} (pbo={key[1]}): row missing from current run")
    for key in current:
        if key not in baseline:
            failures.append(
                f"{key[0]} (pbo={key[1]}): new row not in baseline "
                "(regenerate bench/baselines/BENCH_table3.json)"
            )
    for key, base in sorted(baseline.items()):
        cur = current.get(key)
        if cur is None:
            continue
        name = f"{key[0]} (pbo={'yes' if key[1] else 'no'})"
        for field in ("base_misses", "opt_misses"):
            drift = rel_drift(base[field], cur[field])
            if drift > miss_tol:
                failures.append(
                    f"{name}: {field} drifted {drift:.1%} "
                    f"({base[field]} -> {cur[field]}, tolerance {miss_tol:.1%})"
                )
        perf_delta = abs(cur["perf_percent"] - base["perf_percent"])
        if perf_delta > perf_tol:
            failures.append(
                f"{name}: perf_percent moved {perf_delta:.2f}pp "
                f"({base['perf_percent']:.2f} -> {cur['perf_percent']:.2f}, "
                f"tolerance {perf_tol:.2f}pp)"
            )
    return failures


def check_compile_time(path):
    """Presence/schema check only: google-benchmark JSON with benchmarks."""
    with open(path) as f:
        doc = json.load(f)
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        raise SystemExit(f"{path}: no benchmarks in artifact")
    for b in benches:
        if "name" not in b or "real_time" not in b:
            raise SystemExit(f"{path}: malformed benchmark entry: {b}")
    print(f"ok: {path} contains {len(benches)} compile-time measurements")


def self_test(baseline_rows, miss_tol, perf_tol):
    clean = compare(baseline_rows, baseline_rows, miss_tol, perf_tol)
    if clean:
        print("self-test FAILED: baseline does not pass against itself:")
        for f in clean:
            print(f"  {f}")
        return 1

    regressed = copy.deepcopy(baseline_rows)
    victim = sorted(regressed)[0]
    regressed[victim]["opt_misses"] = int(
        regressed[victim]["opt_misses"] * 1.10
    )
    failures = compare(baseline_rows, regressed, miss_tol, perf_tol)
    if not failures:
        print(
            "self-test FAILED: a 10% opt_misses regression on "
            f"{victim} was not rejected"
        )
        return 1
    print("self-test ok: baseline passes, injected 10% miss regression fails:")
    for f in failures:
        print(f"  {f}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/baselines/BENCH_table3.json")
    ap.add_argument("--current", help="freshly produced BENCH_table3.json")
    ap.add_argument(
        "--compile-time",
        help="BENCH_compile_time.json to presence/schema-check (not gated)",
    )
    ap.add_argument(
        "--miss-tolerance",
        type=float,
        default=0.05,
        help="max relative drift in base/opt miss counts (default 5%%)",
    )
    ap.add_argument(
        "--perf-tolerance",
        type=float,
        default=2.0,
        help="max absolute drift in perf_percent, in points (default 2.0)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate rejects an injected 10%% miss regression",
    )
    args = ap.parse_args()

    baseline = load_rows(args.baseline)

    if args.self_test:
        return self_test(baseline, args.miss_tolerance, args.perf_tolerance)

    if not args.current:
        ap.error("--current is required unless --self-test")

    if args.compile_time:
        check_compile_time(args.compile_time)

    current = load_rows(args.current)
    failures = compare(baseline, current, args.miss_tolerance, args.perf_tolerance)
    if failures:
        print(f"bench gate FAILED ({len(failures)} drift(s) vs {args.baseline}):")
        for f in failures:
            print(f"  {f}")
        print(
            "if this change is intentional, regenerate the baseline:\n"
            "  ./build/bench/bench_table3_performance && "
            "cp BENCH_table3.json bench/baselines/"
        )
        return 1
    print(
        f"bench gate ok: {len(current)} rows within tolerance "
        f"(miss {args.miss_tolerance:.1%}, perf {args.perf_tolerance}pp)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
