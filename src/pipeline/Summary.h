//===- pipeline/Summary.h - Per-TU layout summaries ------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-translation-unit layout summaries, the unit of the incremental
/// pipeline (the paper's S3 IELF-annotation design: analysis artifacts
/// persist across compiles). A ModuleSummary captures everything the IPA
/// merge needs from one TU — record schemas with content fingerprints,
/// legality masks and violation sites, escape tuples, refinement
/// verdicts, lint layout-pinnings, field access statistics and affinity
/// graphs, and the TU's diagnostics — projected onto names so it is
/// IR-free and serializable.
///
/// Serialization is exact: doubles round-trip as bit patterns, strings
/// are escaped losslessly, and the record ends with a checksum line. The
/// cache-equivalence oracle (warm advice bit-identical to cold) reduces
/// to this exactness: both cold and warm runs merge ModuleSummary values,
/// the only difference being whether they were just computed or just
/// deserialized.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_PIPELINE_SUMMARY_H
#define SLO_PIPELINE_SUMMARY_H

#include "analysis/Legality.h"
#include "analysis/WeightSchemes.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace slo {

class Module;

/// Bumped whenever the serialized layout changes; a cache entry with a
/// different version is ignored (treated as a miss), never half-loaded.
constexpr unsigned SummaryFormatVersion = 1;

/// FNV-1a 64-bit over \p Len bytes, continuing from \p Seed.
uint64_t fnv1a(const void *Data, size_t Len,
               uint64_t Seed = 0xcbf29ce484222325ull);
uint64_t fnv1a(const std::string &S,
               uint64_t Seed = 0xcbf29ce484222325ull);

/// One record type as one TU declared it.
struct RecordSchemaSummary {
  struct FieldInfo {
    std::string Name;
    std::string TypeName; // Rendered spelling ("i64", "node*", ...).
    uint64_t Offset = 0;
    uint64_t Size = 0;
  };

  std::string Name;
  /// True when the TU saw the definition (fields are only meaningful
  /// then); false for opaque forward references (pointer-only use).
  bool Complete = false;
  /// FNV-1a over the definition (name, size, field names/types/offsets);
  /// 0 for opaque references.
  uint64_t LocalFingerprint = 0;
  /// The program-wide fingerprint of this record at the time the summary
  /// was written: the defining TU's LocalFingerprint, or 0 when no TU
  /// defines the record. Stamped by the incremental driver before the
  /// summary is cached; a warm run invalidates any summary whose stamp
  /// disagrees with the current program-wide value — that is how a
  /// schema change in a *dependency* TU invalidates its users.
  uint64_t ResolvedFingerprint = 0;
  uint64_t Size = 0;
  std::vector<FieldInfo> Fields;
};

/// One violation occurrence, projected onto names (ViolationSite minus
/// the instruction pointer).
struct SiteSummary {
  uint32_t Kind = 0; // violationBit of the test that fired.
  std::string Function;
  std::string Detail;
  /// Callee name for LIBC/ESCP sites; the IPA merge drops an ESCP site
  /// whose Symbol is defined by some TU of the program.
  std::string Symbol;
};

/// Packs TypeAttributes into a serializable bit mask.
uint32_t packTypeAttributes(const TypeAttributes &A);
TypeAttributes unpackTypeAttributes(uint32_t Bits, unsigned PtrValueStores);

/// Everything one TU knows about one record type.
struct TypeSummary {
  std::string TypeName;
  uint32_t Violations = 0;
  uint32_t AttrBits = 0; // packTypeAttributes
  uint64_t PtrValueStores = 0;
  std::vector<SiteSummary> Sites;
  /// Refinement verdicts (per-TU points-to proofs).
  bool ProvenLegal = false;
  bool TransformSafe = false;
  /// Fields with discharged address-taken sites (must stay live).
  std::vector<unsigned> ForceLiveFields;
  /// Lint layout-pinning (demotes the type out of Proven at merge).
  bool Pinned = false;
  std::string PinReason;
  /// Structural peelability verdict in this TU.
  bool Peelable = false;
  /// The TU actually uses the type (violations, attributes, sites or
  /// stats); a TU that merely declares a record does not count as a
  /// referencing TU in the merge.
  bool Referenced = false;
  /// Field statistics (meaningful only when HaveStats).
  bool HaveStats = false;
  std::vector<double> Reads;
  std::vector<double> Writes;
  std::vector<double> Hotness;
  /// Affinity graph edges (i <= j), sorted by key.
  std::vector<std::pair<std::pair<unsigned, unsigned>, double>> Affinity;
};

/// The complete per-TU summary.
struct ModuleSummary {
  std::string ModuleName;
  /// Content hash of the TU source (seeded with the options key), the
  /// cache validity test.
  uint64_t SourceHash = 0;
  /// summaryOptionsKey of the options the summary was computed under.
  uint64_t OptionsKey = 0;
  /// Functions this TU defines (ESCP resolution set).
  std::vector<std::string> DefinedFunctions;
  /// Every record type the TU mentions, in type-creation order.
  std::vector<RecordSchemaSummary> Schemas;
  /// Per-type facts, in legality-analysis order.
  std::vector<TypeSummary> Types;
  /// The TU's refinement/lint diagnostics, in emission order.
  std::vector<Diagnostic> Diags;
};

/// What the per-TU analyses run under. Only static weighting schemes are
/// usable incrementally (profiles are whole-program artifacts).
struct SummaryOptions {
  WeightScheme Scheme = WeightScheme::ISPBO;
  double IspboExponent = 1.5;
  LegalityOptions Legality;
  /// Run the lint suite per TU and record pinnings in the summary.
  bool Lint = true;
};

/// Folds every option that affects summary contents into one key; a
/// change of options invalidates every cache entry (the key seeds the
/// source hash).
uint64_t summaryOptionsKey(const SummaryOptions &Opts);

/// True for the schemes that need no profile (SPBO/ISPBO*).
bool isStaticScheme(WeightScheme S);

/// Content fingerprint of a completed record definition (0 for opaque
/// records).
uint64_t recordSchemaFingerprint(const RecordType *Rec);

/// Runs the per-TU analyses (legality, points-to, lint, refinement,
/// static field stats, peelability) over \p M — a single translation
/// unit compiled in its own IRContext — and projects the results into a
/// summary. The caller stamps ModuleName/SourceHash/OptionsKey and the
/// schema ResolvedFingerprints. \p Opts.Scheme must be a static scheme.
ModuleSummary computeModuleSummary(const Module &M,
                                   const SummaryOptions &Opts);

/// Exact, versioned, checksummed text serialization.
std::string serializeModuleSummary(const ModuleSummary &S);

/// Strict deserialization: returns false (with \p Error set) on version
/// mismatch, checksum mismatch, truncation, or any malformed line. On
/// failure \p S is left untouched — a corrupt entry is never half-loaded.
bool deserializeModuleSummary(const std::string &Text, ModuleSummary &S,
                              std::string &Error);

} // namespace slo

#endif // SLO_PIPELINE_SUMMARY_H
