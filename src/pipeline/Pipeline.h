//===- pipeline/Pipeline.h - FE -> IPA -> BE driver ------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Packages the whole flow of the paper's framework behind one call,
/// mirroring the SYZYGY -ipo structure: the front end collects legality
/// and affinity summaries, IPA aggregates them, evaluates the weighting
/// scheme, runs the heuristics, and the back end applies the chosen
/// transformations.
///
/// Typical use:
///   IRContext Ctx;
///   auto M = compileProgramOrDie(Ctx, "prog", Sources);
///   FeedbackFile Train;                        // optional PBO run
///   runProgram(*M, trainOptions(&Train));
///   PipelineOptions Opts;
///   Opts.Scheme = WeightScheme::PBO;
///   PipelineResult R = runStructLayoutPipeline(*M, Opts, &Train);
///
//===----------------------------------------------------------------------===//

#ifndef SLO_PIPELINE_PIPELINE_H
#define SLO_PIPELINE_PIPELINE_H

#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "analysis/WeightSchemes.h"
#include "analysis/lint/Lint.h"
#include "support/Diagnostics.h"
#include "transform/LayoutPlanner.h"
#include "transform/Transform.h"

namespace slo {

class CounterRegistry;
class Tracer;

struct PipelineOptions {
  /// Which hotness/affinity weighting to use. PBO/PPBO/DMISS/DLAT need a
  /// feedback file.
  WeightScheme Scheme = WeightScheme::ISPBO;
  /// The paper's E exponent for ISPBO.
  double IspboExponent = 1.5;
  LegalityOptions Legality;
  PlannerOptions Planner;
  /// Analyze and plan, but do not rewrite the module (advisor-only mode,
  /// the paper's reporting option).
  bool AnalyzeOnly = false;
  /// Run the points-to refinement and let per-site proofs (not the Relax
  /// flag) admit types the blanket legality tests rejected.
  bool UseProvenLegality = true;
  /// Run the lint suite (analysis/lint/) between points-to and the
  /// refinement. Findings land in PipelineResult::Lint (and in Diags),
  /// and layout pinnings demote punned types out of Proven before the
  /// planner sees them. Requires UseProvenLegality for the pinnings to
  /// matter (lint still runs and reports without it).
  bool Lint = false;

  /// Observability hooks, both default off (null). Trace records one
  /// span per FE/IPA/BE stage; Counters receives "pipeline.*",
  /// "pointsto.*", and "planner.*" totals.
  Tracer *Trace = nullptr;
  CounterRegistry *Counters = nullptr;
};

struct PipelineResult {
  LegalityResult Legality;
  /// Per-site discharge proofs over Legality's violation sites. Only
  /// populated when PipelineOptions::UseProvenLegality is set.
  RefinementResult Refined;
  /// Structured diagnostics from the refinement (discharges, failures,
  /// notes) and, under PipelineOptions::Lint, one per lint finding;
  /// render with DiagnosticEngine::renderText/renderJson.
  DiagnosticEngine Diags;
  /// Lint findings and pinnings (PipelineOptions::Lint only).
  LintResult Lint;
  FieldStatsResult Stats;
  std::vector<TypePlan> Plans;
  TransformSummary Summary;
};

/// Runs legality + profitability analysis, plans, and (unless
/// AnalyzeOnly) transforms \p M in place. \p Train supplies profile data
/// for the profile-based schemes (may be null for the static schemes).
PipelineResult runStructLayoutPipeline(Module &M, const PipelineOptions &Opts,
                                       const FeedbackFile *Train = nullptr,
                                       const FeedbackFile *Ref = nullptr);

} // namespace slo

#endif // SLO_PIPELINE_PIPELINE_H
