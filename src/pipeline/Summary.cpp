//===- pipeline/Summary.cpp - Per-TU layout summaries ---------------------===//

#include "pipeline/Summary.h"

#include "analysis/LegalityRefine.h"
#include "analysis/PointsTo.h"
#include "analysis/lint/Lint.h"
#include "ir/Module.h"
#include "transform/StructPeel.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace slo;

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

uint64_t slo::fnv1a(const void *Data, size_t Len, uint64_t Seed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t slo::fnv1a(const std::string &S, uint64_t Seed) {
  return fnv1a(S.data(), S.size(), Seed);
}

bool slo::isStaticScheme(WeightScheme S) {
  return S == WeightScheme::SPBO || S == WeightScheme::ISPBO ||
         S == WeightScheme::ISPBO_NO || S == WeightScheme::ISPBO_W;
}

uint64_t slo::summaryOptionsKey(const SummaryOptions &Opts) {
  uint64_t H = fnv1a("slo-summary", 11);
  uint64_t V = SummaryFormatVersion;
  H = fnv1a(&V, sizeof V, H);
  H = fnv1a(weightSchemeName(Opts.Scheme), std::strlen(weightSchemeName(Opts.Scheme)), H);
  uint64_t Bits;
  std::memcpy(&Bits, &Opts.IspboExponent, sizeof Bits);
  H = fnv1a(&Bits, sizeof Bits, H);
  H = fnv1a(&Opts.Legality.SmallAllocThreshold,
            sizeof Opts.Legality.SmallAllocThreshold, H);
  unsigned char Lint = Opts.Lint ? 1 : 0;
  H = fnv1a(&Lint, 1, H);
  return H;
}

uint64_t slo::recordSchemaFingerprint(const RecordType *Rec) {
  if (Rec->isOpaque())
    return 0;
  uint64_t H = fnv1a(Rec->getRecordName());
  uint64_t Size = Rec->getSize();
  H = fnv1a(&Size, sizeof Size, H);
  for (const Field &F : Rec->fields()) {
    H = fnv1a(F.Name, H);
    H = fnv1a(F.Ty->getName(), H);
    H = fnv1a(&F.Offset, sizeof F.Offset, H);
  }
  // Fingerprints double as "defined" markers, so a real definition must
  // never fingerprint to the opaque sentinel 0.
  return H == 0 ? 1 : H;
}

//===----------------------------------------------------------------------===//
// Attribute packing
//===----------------------------------------------------------------------===//

uint32_t slo::packTypeAttributes(const TypeAttributes &A) {
  uint32_t B = 0;
  B |= A.HasGlobalVar ? 1u << 0 : 0;
  B |= A.HasLocalVar ? 1u << 1 : 0;
  B |= A.HasGlobalPtr ? 1u << 2 : 0;
  B |= A.HasLocalPtr ? 1u << 3 : 0;
  B |= A.HasStaticArray ? 1u << 4 : 0;
  B |= A.DynamicallyAllocated ? 1u << 5 : 0;
  B |= A.Freed ? 1u << 6 : 0;
  B |= A.Reallocated ? 1u << 7 : 0;
  B |= A.HasRecursivePtrField ? 1u << 8 : 0;
  B |= A.PassedToFunction ? 1u << 9 : 0;
  return B;
}

TypeAttributes slo::unpackTypeAttributes(uint32_t Bits,
                                         unsigned PtrValueStores) {
  TypeAttributes A;
  A.HasGlobalVar = (Bits & (1u << 0)) != 0;
  A.HasLocalVar = (Bits & (1u << 1)) != 0;
  A.HasGlobalPtr = (Bits & (1u << 2)) != 0;
  A.HasLocalPtr = (Bits & (1u << 3)) != 0;
  A.HasStaticArray = (Bits & (1u << 4)) != 0;
  A.DynamicallyAllocated = (Bits & (1u << 5)) != 0;
  A.Freed = (Bits & (1u << 6)) != 0;
  A.Reallocated = (Bits & (1u << 7)) != 0;
  A.HasRecursivePtrField = (Bits & (1u << 8)) != 0;
  A.PassedToFunction = (Bits & (1u << 9)) != 0;
  A.PtrValueStores = PtrValueStores;
  return A;
}

//===----------------------------------------------------------------------===//
// computeModuleSummary
//===----------------------------------------------------------------------===//

ModuleSummary slo::computeModuleSummary(const Module &M,
                                        const SummaryOptions &Opts) {
  ModuleSummary S;
  S.ModuleName = M.getName();

  LegalityResult Legal = analyzeLegality(M, Opts.Legality);
  PointsToResult PT = analyzePointsTo(M);
  DiagnosticEngine Diags;
  LintResult LR;
  if (Opts.Lint) {
    LR = runLint(M, &PT, &Legal);
    reportLintFindings(LR, Diags);
  }
  RefinementResult Refined = refineLegality(
      M, Legal, PT, &Diags, Opts.Lint ? &LR.Pinnings : nullptr);

  // Only the static schemes can run per TU (profiles are whole-program
  // artifacts); a profile scheme falls back to the paper's default.
  SchemeInputs In;
  In.M = &M;
  In.Exponent = Opts.IspboExponent;
  // A lone TU cannot see its external callers: treat every uncalled
  // definition as a potential entry so its accesses keep nonzero weight.
  In.SeedUncalledDefinitions = true;
  WeightScheme Scheme =
      isStaticScheme(Opts.Scheme) ? Opts.Scheme : WeightScheme::ISPBO;
  FieldStatsResult Stats = computeSchemeFieldStats(Scheme, In);

  for (const auto &F : M.functions())
    if (!F->isDeclaration() && !F->isLibFunction())
      S.DefinedFunctions.push_back(F->getName());

  for (RecordType *Rec : M.getTypes().records()) {
    RecordSchemaSummary RS;
    RS.Name = Rec->getRecordName();
    RS.Complete = !Rec->isOpaque();
    if (RS.Complete) {
      RS.LocalFingerprint = recordSchemaFingerprint(Rec);
      RS.Size = Rec->getSize();
      for (const Field &F : Rec->fields()) {
        RecordSchemaSummary::FieldInfo FI;
        FI.Name = F.Name;
        FI.TypeName = F.Ty->getName();
        FI.Offset = F.Offset;
        FI.Size = F.Ty->getSize();
        RS.Fields.push_back(std::move(FI));
      }
    }
    S.Schemas.push_back(std::move(RS));
  }

  for (RecordType *Rec : Legal.types()) {
    const TypeLegality &L = Legal.get(Rec);
    TypeSummary T;
    T.TypeName = Rec->getRecordName();
    T.Violations = L.Violations;
    T.AttrBits = packTypeAttributes(L.Attrs);
    T.PtrValueStores = L.Attrs.PtrValueStores;
    for (const ViolationSite &VS : L.Sites) {
      SiteSummary SS;
      SS.Kind = violationBit(VS.Kind);
      SS.Function = VS.Function;
      SS.Detail = VS.Detail;
      SS.Symbol = VS.Symbol;
      T.Sites.push_back(std::move(SS));
    }
    if (const TypeRefinement *TR = Refined.get(Rec)) {
      T.ProvenLegal = TR->ProvenLegal;
      T.TransformSafe = TR->TransformSafe;
      T.ForceLiveFields.assign(TR->AddressTakenLiveFields.begin(),
                               TR->AddressTakenLiveFields.end());
    }
    if (Opts.Lint && LR.Pinnings.isPinned(Rec)) {
      T.Pinned = true;
      T.PinReason = LR.Pinnings.Reasons.at(Rec);
    }
    if (const TypeFieldStats *FS = Stats.get(Rec)) {
      T.HaveStats = true;
      T.Reads = FS->Reads;
      T.Writes = FS->Writes;
      T.Hotness = FS->Hotness;
      for (const auto &E : FS->Affinity)
        T.Affinity.push_back({E.first, E.second});
    }
    bool StrictLegal = L.isLegal(/*Relax=*/false);
    bool Aggregate = L.Attrs.HasGlobalVar || L.Attrs.HasLocalVar ||
                     L.Attrs.HasStaticArray;
    if (StrictLegal && T.HaveStats && L.Attrs.DynamicallyAllocated &&
        !L.Attrs.Reallocated && !Aggregate)
      T.Peelable = analyzePeelability(M, Rec, L).Peelable;
    T.Referenced = T.Violations != 0 || T.AttrBits != 0 ||
                   T.PtrValueStores != 0 || !T.Sites.empty() || T.HaveStats;
    S.Types.push_back(std::move(T));
  }

  S.Diags = Diags.all();
  return S;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

/// Lossless token escaping: '%', space, control bytes and DEL become
/// %XX; the empty string encodes as a bare "%" (never a valid escape).
std::string escapeToken(const std::string &S) {
  if (S.empty())
    return "%";
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    if (C == '%' || C <= 0x20 || C == 0x7f) {
      char Buf[8];
      std::snprintf(Buf, sizeof Buf, "%%%02X", C);
      Out += Buf;
    } else {
      Out += static_cast<char>(C);
    }
  }
  return Out;
}

bool hexVal(char C, unsigned &V) {
  if (C >= '0' && C <= '9') {
    V = static_cast<unsigned>(C - '0');
    return true;
  }
  if (C >= 'A' && C <= 'F') {
    V = static_cast<unsigned>(C - 'A' + 10);
    return true;
  }
  if (C >= 'a' && C <= 'f') {
    V = static_cast<unsigned>(C - 'a' + 10);
    return true;
  }
  return false;
}

bool unescapeToken(const std::string &T, std::string &Out) {
  if (T == "%") {
    Out.clear();
    return true;
  }
  Out.clear();
  Out.reserve(T.size());
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I] != '%') {
      Out += T[I];
      continue;
    }
    unsigned Hi, Lo;
    if (I + 2 >= T.size() || !hexVal(T[I + 1], Hi) || !hexVal(T[I + 2], Lo))
      return false;
    Out += static_cast<char>(Hi * 16 + Lo);
    I += 2;
  }
  return true;
}

std::string hex64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof Buf, "%016llx", static_cast<unsigned long long>(V));
  return Buf;
}

std::string doubleBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof Bits);
  return hex64(Bits);
}

bool parseU64(const std::string &T, uint64_t &V, int Base) {
  if (T.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  V = std::strtoull(T.c_str(), &End, Base);
  return errno == 0 && End && *End == '\0';
}

bool parseDoubleBits(const std::string &T, double &D) {
  uint64_t Bits;
  if (!parseU64(T, Bits, 16))
    return false;
  std::memcpy(&D, &Bits, sizeof D);
  return true;
}

void splitTokens(const std::string &Line, std::vector<std::string> &Toks) {
  Toks.clear();
  size_t I = 0;
  while (I < Line.size()) {
    size_t J = Line.find(' ', I);
    if (J == std::string::npos)
      J = Line.size();
    if (J > I)
      Toks.push_back(Line.substr(I, J - I));
    I = J + 1;
  }
}

// TypeSummary flag bits.
constexpr uint32_t FlagProven = 1u << 0;
constexpr uint32_t FlagTransformSafe = 1u << 1;
constexpr uint32_t FlagPinned = 1u << 2;
constexpr uint32_t FlagPeelable = 1u << 3;
constexpr uint32_t FlagReferenced = 1u << 4;
constexpr uint32_t FlagHaveStats = 1u << 5;

/// Strict line-cursor over the serialized text.
struct LineCursor {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  std::string Error;

  bool next(std::vector<std::string> &Toks, const char *Expect) {
    if (Pos >= Lines.size()) {
      Error = std::string("truncated: expected '") + Expect + "' line";
      return false;
    }
    splitTokens(Lines[Pos++], Toks);
    if (Toks.empty() || Toks[0] != Expect) {
      Error = std::string("malformed: expected '") + Expect + "' line";
      return false;
    }
    return true;
  }
};

} // namespace

std::string slo::serializeModuleSummary(const ModuleSummary &S) {
  std::string B;
  B += "SLOSUM " + std::to_string(SummaryFormatVersion) + "\n";
  B += "module " + escapeToken(S.ModuleName) + "\n";
  B += "srchash " + hex64(S.SourceHash) + "\n";
  B += "optkey " + hex64(S.OptionsKey) + "\n";
  B += "funcs " + std::to_string(S.DefinedFunctions.size()) + "\n";
  for (const std::string &F : S.DefinedFunctions)
    B += "fn " + escapeToken(F) + "\n";
  B += "schemas " + std::to_string(S.Schemas.size()) + "\n";
  for (const RecordSchemaSummary &RS : S.Schemas) {
    B += "schema " + escapeToken(RS.Name) + " " +
         std::string(RS.Complete ? "1" : "0") + " " +
         hex64(RS.LocalFingerprint) + " " + hex64(RS.ResolvedFingerprint) +
         " " + std::to_string(RS.Size) + " " +
         std::to_string(RS.Fields.size()) + "\n";
    for (const RecordSchemaSummary::FieldInfo &FI : RS.Fields)
      B += "field " + std::to_string(FI.Offset) + " " +
           std::to_string(FI.Size) + " " + escapeToken(FI.TypeName) + " " +
           escapeToken(FI.Name) + "\n";
  }
  B += "types " + std::to_string(S.Types.size()) + "\n";
  for (const TypeSummary &T : S.Types) {
    uint32_t Flags = 0;
    Flags |= T.ProvenLegal ? FlagProven : 0;
    Flags |= T.TransformSafe ? FlagTransformSafe : 0;
    Flags |= T.Pinned ? FlagPinned : 0;
    Flags |= T.Peelable ? FlagPeelable : 0;
    Flags |= T.Referenced ? FlagReferenced : 0;
    Flags |= T.HaveStats ? FlagHaveStats : 0;
    char Buf[64];
    std::snprintf(Buf, sizeof Buf, "%x %x %llu %x", T.Violations, T.AttrBits,
                  static_cast<unsigned long long>(T.PtrValueStores), Flags);
    B += "type " + escapeToken(T.TypeName) + " " + Buf + "\n";
    if (T.Pinned)
      B += "pin " + escapeToken(T.PinReason) + "\n";
    B += "sites " + std::to_string(T.Sites.size()) + "\n";
    for (const SiteSummary &SS : T.Sites) {
      std::snprintf(Buf, sizeof Buf, "%x", SS.Kind);
      B += "site " + std::string(Buf) + " " + escapeToken(SS.Function) + " " +
           escapeToken(SS.Symbol) + " " + escapeToken(SS.Detail) + "\n";
    }
    B += "forcelive " + std::to_string(T.ForceLiveFields.size());
    for (unsigned I : T.ForceLiveFields)
      B += " " + std::to_string(I);
    B += "\n";
    if (T.HaveStats) {
      B += "stats " + std::to_string(T.Hotness.size()) + "\n";
      const char *Names[3] = {"reads", "writes", "hot"};
      const std::vector<double> *Vecs[3] = {&T.Reads, &T.Writes, &T.Hotness};
      for (int K = 0; K < 3; ++K) {
        B += Names[K];
        for (double D : *Vecs[K])
          B += " " + doubleBits(D);
        B += "\n";
      }
      B += "aff " + std::to_string(T.Affinity.size()) + "\n";
      for (const auto &E : T.Affinity)
        B += "edge " + std::to_string(E.first.first) + " " +
             std::to_string(E.first.second) + " " + doubleBits(E.second) +
             "\n";
    } else {
      B += "stats 0\n";
    }
  }
  B += "diags " + std::to_string(S.Diags.size()) + "\n";
  for (const Diagnostic &D : S.Diags)
    B += "diag " + std::to_string(static_cast<unsigned>(D.Severity)) + " " +
         escapeToken(D.Code) + " " + escapeToken(D.RecordName) + " " +
         escapeToken(D.Function) + " " + escapeToken(D.Site) + " " +
         escapeToken(D.Message) + " " + escapeToken(D.Fact) + "\n";
  B += "end " + hex64(fnv1a(B)) + "\n";
  return B;
}

bool slo::deserializeModuleSummary(const std::string &Text, ModuleSummary &S,
                                   std::string &Error) {
  // Split into lines, remembering each line's start offset so the
  // checksum can cover the exact byte prefix.
  LineCursor C;
  std::vector<size_t> Starts;
  size_t I = 0;
  while (I < Text.size()) {
    size_t J = Text.find('\n', I);
    if (J == std::string::npos) {
      Error = "truncated: unterminated final line";
      return false;
    }
    Starts.push_back(I);
    C.Lines.push_back(Text.substr(I, J - I));
    I = J + 1;
  }
  if (C.Lines.size() < 2) {
    Error = "truncated: no content";
    return false;
  }

  // Checksum first: the last line must be "end <fnv of everything
  // before it>". Anything else — truncation, bit rot, a partial write —
  // fails here before any field is parsed.
  {
    std::vector<std::string> Toks;
    splitTokens(C.Lines.back(), Toks);
    uint64_t Want;
    if (Toks.size() != 2 || Toks[0] != "end" || !parseU64(Toks[1], Want, 16)) {
      Error = "truncated: missing 'end' checksum line";
      return false;
    }
    uint64_t Got = fnv1a(Text.data(), Starts.back());
    if (Got != Want) {
      Error = "checksum mismatch (corrupt entry)";
      return false;
    }
  }

  ModuleSummary Out;
  std::vector<std::string> T;
  uint64_t N;

  if (!C.next(T, "SLOSUM")) {
    Error = C.Error;
    return false;
  }
  if (T.size() != 2 || !parseU64(T[1], N, 10) || N != SummaryFormatVersion) {
    Error = "format version mismatch";
    return false;
  }

  auto Fail = [&](const std::string &E) {
    Error = E.empty() ? std::string("malformed summary") : E;
    return false;
  };

  if (!C.next(T, "module") || T.size() != 2 ||
      !unescapeToken(T[1], Out.ModuleName))
    return Fail(C.Error);
  if (!C.next(T, "srchash") || T.size() != 2 ||
      !parseU64(T[1], Out.SourceHash, 16))
    return Fail(C.Error);
  if (!C.next(T, "optkey") || T.size() != 2 ||
      !parseU64(T[1], Out.OptionsKey, 16))
    return Fail(C.Error);

  if (!C.next(T, "funcs") || T.size() != 2 || !parseU64(T[1], N, 10))
    return Fail(C.Error);
  for (uint64_t K = 0; K < N; ++K) {
    std::string Name;
    if (!C.next(T, "fn") || T.size() != 2 || !unescapeToken(T[1], Name))
      return Fail(C.Error);
    Out.DefinedFunctions.push_back(std::move(Name));
  }

  if (!C.next(T, "schemas") || T.size() != 2 || !parseU64(T[1], N, 10))
    return Fail(C.Error);
  for (uint64_t K = 0; K < N; ++K) {
    RecordSchemaSummary RS;
    uint64_t NFields;
    if (!C.next(T, "schema") || T.size() != 7 ||
        !unescapeToken(T[1], RS.Name) || (T[2] != "0" && T[2] != "1") ||
        !parseU64(T[3], RS.LocalFingerprint, 16) ||
        !parseU64(T[4], RS.ResolvedFingerprint, 16) ||
        !parseU64(T[5], RS.Size, 10) || !parseU64(T[6], NFields, 10))
      return Fail(C.Error);
    RS.Complete = T[2] == "1";
    for (uint64_t F = 0; F < NFields; ++F) {
      RecordSchemaSummary::FieldInfo FI;
      if (!C.next(T, "field") || T.size() != 5 ||
          !parseU64(T[1], FI.Offset, 10) || !parseU64(T[2], FI.Size, 10) ||
          !unescapeToken(T[3], FI.TypeName) || !unescapeToken(T[4], FI.Name))
        return Fail(C.Error);
      RS.Fields.push_back(std::move(FI));
    }
    Out.Schemas.push_back(std::move(RS));
  }

  if (!C.next(T, "types") || T.size() != 2 || !parseU64(T[1], N, 10))
    return Fail(C.Error);
  for (uint64_t K = 0; K < N; ++K) {
    TypeSummary TS;
    uint64_t Viol, Attrs, Flags, M;
    if (!C.next(T, "type") || T.size() != 6 ||
        !unescapeToken(T[1], TS.TypeName) || !parseU64(T[2], Viol, 16) ||
        !parseU64(T[3], Attrs, 16) || !parseU64(T[4], TS.PtrValueStores, 10) ||
        !parseU64(T[5], Flags, 16))
      return Fail(C.Error);
    TS.Violations = static_cast<uint32_t>(Viol);
    TS.AttrBits = static_cast<uint32_t>(Attrs);
    TS.ProvenLegal = (Flags & FlagProven) != 0;
    TS.TransformSafe = (Flags & FlagTransformSafe) != 0;
    TS.Pinned = (Flags & FlagPinned) != 0;
    TS.Peelable = (Flags & FlagPeelable) != 0;
    TS.Referenced = (Flags & FlagReferenced) != 0;
    TS.HaveStats = (Flags & FlagHaveStats) != 0;
    if (TS.Pinned) {
      if (!C.next(T, "pin") || T.size() != 2 ||
          !unescapeToken(T[1], TS.PinReason))
        return Fail(C.Error);
    }
    if (!C.next(T, "sites") || T.size() != 2 || !parseU64(T[1], M, 10))
      return Fail(C.Error);
    for (uint64_t J = 0; J < M; ++J) {
      SiteSummary SS;
      uint64_t Kind;
      if (!C.next(T, "site") || T.size() != 5 || !parseU64(T[1], Kind, 16) ||
          !unescapeToken(T[2], SS.Function) ||
          !unescapeToken(T[3], SS.Symbol) || !unescapeToken(T[4], SS.Detail))
        return Fail(C.Error);
      SS.Kind = static_cast<uint32_t>(Kind);
      TS.Sites.push_back(std::move(SS));
    }
    if (!C.next(T, "forcelive") || T.size() < 2 || !parseU64(T[1], M, 10) ||
        T.size() != 2 + M)
      return Fail(C.Error);
    for (uint64_t J = 0; J < M; ++J) {
      uint64_t F;
      if (!parseU64(T[2 + J], F, 10))
        return Fail(C.Error);
      TS.ForceLiveFields.push_back(static_cast<unsigned>(F));
    }
    uint64_t NStats;
    if (!C.next(T, "stats") || T.size() != 2 || !parseU64(T[1], NStats, 10))
      return Fail(C.Error);
    if (TS.HaveStats) {
      const char *Names[3] = {"reads", "writes", "hot"};
      std::vector<double> *Vecs[3] = {&TS.Reads, &TS.Writes, &TS.Hotness};
      for (int V = 0; V < 3; ++V) {
        if (!C.next(T, Names[V]) || T.size() != 1 + NStats)
          return Fail(C.Error);
        for (uint64_t J = 0; J < NStats; ++J) {
          double D;
          if (!parseDoubleBits(T[1 + J], D))
            return Fail(C.Error);
          Vecs[V]->push_back(D);
        }
      }
      if (!C.next(T, "aff") || T.size() != 2 || !parseU64(T[1], M, 10))
        return Fail(C.Error);
      for (uint64_t J = 0; J < M; ++J) {
        uint64_t A, Bt;
        double W;
        if (!C.next(T, "edge") || T.size() != 4 || !parseU64(T[1], A, 10) ||
            !parseU64(T[2], Bt, 10) || !parseDoubleBits(T[3], W))
          return Fail(C.Error);
        TS.Affinity.push_back({{static_cast<unsigned>(A),
                                static_cast<unsigned>(Bt)},
                               W});
      }
    } else if (NStats != 0) {
      return Fail("malformed: stats on a type without HaveStats");
    }
    Out.Types.push_back(std::move(TS));
  }

  if (!C.next(T, "diags") || T.size() != 2 || !parseU64(T[1], N, 10))
    return Fail(C.Error);
  for (uint64_t K = 0; K < N; ++K) {
    Diagnostic D;
    uint64_t Sev;
    if (!C.next(T, "diag") || T.size() != 8 || !parseU64(T[1], Sev, 10) ||
        Sev > static_cast<uint64_t>(DiagSeverity::Error) ||
        !unescapeToken(T[2], D.Code) || !unescapeToken(T[3], D.RecordName) ||
        !unescapeToken(T[4], D.Function) || !unescapeToken(T[5], D.Site) ||
        !unescapeToken(T[6], D.Message) || !unescapeToken(T[7], D.Fact))
      return Fail(C.Error);
    D.Severity = static_cast<DiagSeverity>(Sev);
    Out.Diags.push_back(std::move(D));
  }

  if (C.Pos != C.Lines.size() - 1) {
    Error = "malformed: trailing content before 'end'";
    return false;
  }
  S = std::move(Out);
  return true;
}
