//===- pipeline/SummaryCache.h - On-disk summary cache ---------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk store for per-TU ModuleSummary records, one file per
/// translation unit under a cache directory. Writes are atomic (temp
/// file + rename, like the feedback loader), so a crashed or concurrent
/// writer can never leave a half-written entry; reads treat any
/// deserialization failure — corruption, truncation, a format-version
/// bump — as a miss with a diagnostic, never as an error: the pipeline
/// falls back to a cold computation for that TU.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_PIPELINE_SUMMARYCACHE_H
#define SLO_PIPELINE_SUMMARYCACHE_H

#include "pipeline/Summary.h"

#include <mutex>
#include <string>

namespace slo {

class DiagnosticEngine;

class SummaryCache {
public:
  /// \p Dir may not exist yet (created on first store); empty disables
  /// the cache entirely (every load is a miss, every store a no-op).
  explicit SummaryCache(std::string Dir);

  bool enabled() const { return !Dir.empty(); }

  enum class LoadStatus {
    Hit,     ///< Entry read and deserialized.
    Miss,    ///< No entry on disk (or cache disabled).
    Corrupt, ///< Entry exists but failed deserialization; ignored.
  };

  /// Loads the entry for \p ModuleName into \p Out. A Corrupt result
  /// appends a warning to \p Diags (when non-null) and leaves \p Out
  /// untouched. Thread-safe.
  LoadStatus load(const std::string &ModuleName, ModuleSummary &Out,
                  DiagnosticEngine *Diags);

  /// Atomically writes the entry for \p S.ModuleName (temp + rename).
  /// Returns false (with a warning in \p Diags) on I/O failure.
  /// Thread-safe.
  bool store(const ModuleSummary &S, DiagnosticEngine *Diags);

  struct CacheStats {
    unsigned Hits = 0;
    unsigned Misses = 0;
    unsigned Corrupt = 0;
    unsigned Stores = 0;
  };
  CacheStats stats() const;

  /// The on-disk path an entry for \p ModuleName would use.
  std::string pathFor(const std::string &ModuleName) const;

private:
  std::string Dir;
  mutable std::mutex Mutex;
  CacheStats Stats;
};

} // namespace slo

#endif // SLO_PIPELINE_SUMMARYCACHE_H
