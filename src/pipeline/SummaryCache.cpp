//===- pipeline/SummaryCache.cpp - On-disk summary cache ------------------===//

#include "pipeline/SummaryCache.h"

#include "support/Diagnostics.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace slo;

SummaryCache::SummaryCache(std::string CacheDir) : Dir(std::move(CacheDir)) {}

std::string SummaryCache::pathFor(const std::string &ModuleName) const {
  // Module names are user-controlled; keep only filename-safe bytes.
  std::string Safe;
  for (char C : ModuleName) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == '-' || C == '.';
    Safe += Ok ? C : '_';
  }
  if (Safe.empty())
    Safe = "_";
  // Disambiguate names that collide after sanitization.
  return Dir + "/" + Safe + "-" + std::to_string(fnv1a(ModuleName) & 0xffff) +
         ".slosum";
}

SummaryCache::LoadStatus SummaryCache::load(const std::string &ModuleName,
                                            ModuleSummary &Out,
                                            DiagnosticEngine *Diags) {
  if (!enabled()) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Misses;
    return LoadStatus::Miss;
  }
  std::string Path = pathFor(ModuleName);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Misses;
    return LoadStatus::Miss;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  ModuleSummary S;
  if (!deserializeModuleSummary(Buf.str(), S, Error)) {
    if (Diags) {
      Diagnostic &D = Diags->report(DiagSeverity::Warning, "summary-cache",
                                    "ignoring unusable cache entry (" + Error +
                                        "); falling back to cold analysis");
      D.Function = ModuleName;
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Corrupt;
    return LoadStatus::Corrupt;
  }
  Out = std::move(S);
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Hits;
  return LoadStatus::Hit;
}

bool SummaryCache::store(const ModuleSummary &S, DiagnosticEngine *Diags) {
  if (!enabled())
    return true;
  // Best-effort recursive creation; the open below reports real errors.
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);

  static std::atomic<unsigned> TmpCounter{0};
  std::string Path = pathFor(S.ModuleName);
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF) {
      if (Diags)
        Diags->report(DiagSeverity::Warning, "summary-cache",
                      "cannot write cache entry '" + Tmp + "'");
      return false;
    }
    OutF << serializeModuleSummary(S);
    OutF.flush();
    if (!OutF) {
      if (Diags)
        Diags->report(DiagSeverity::Warning, "summary-cache",
                      "short write to cache entry '" + Tmp + "'");
      std::remove(Tmp.c_str());
      return false;
    }
  }
  // rename(2) is atomic within a filesystem: readers see either the old
  // entry or the complete new one, never a prefix.
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Diags)
      Diags->report(DiagSeverity::Warning, "summary-cache",
                    "cannot commit cache entry '" + Path + "'");
    std::remove(Tmp.c_str());
    return false;
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Stores;
  return true;
}

SummaryCache::CacheStats SummaryCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}
