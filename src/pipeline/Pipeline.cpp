//===- pipeline/Pipeline.cpp - FE -> IPA -> BE driver ---------------------===//

#include "pipeline/Pipeline.h"

#include "analysis/PointsTo.h"

using namespace slo;

PipelineResult slo::runStructLayoutPipeline(Module &M,
                                            const PipelineOptions &Opts,
                                            const FeedbackFile *Train,
                                            const FeedbackFile *Ref) {
  PipelineResult R;

  // FE phase: single-pass legality tests and attribute collection,
  // refined by the points-to analysis into per-site proofs.
  R.Legality = analyzeLegality(M, Opts.Legality);
  if (Opts.UseProvenLegality) {
    PointsToResult PT = analyzePointsTo(M);
    R.Refined = refineLegality(M, R.Legality, PT, &R.Diags);
  }

  // IPA phase: profitability analysis under the selected weighting.
  SchemeInputs In;
  In.M = &M;
  In.TrainProfile = Train;
  In.RefProfile = Ref;
  In.UninstrumentedProfile = Train;
  In.Exponent = Opts.IspboExponent;
  R.Stats = computeSchemeFieldStats(Opts.Scheme, In);

  // Heuristics: the threshold T_s depends on whether hotness came from a
  // profile (3%) or static estimation (7.5%).
  PlannerOptions Planner = Opts.Planner;
  Planner.HotnessFromProfile = Opts.Scheme == WeightScheme::PBO ||
                               Opts.Scheme == WeightScheme::PPBO ||
                               Opts.Scheme == WeightScheme::DMISS ||
                               Opts.Scheme == WeightScheme::DLAT ||
                               Opts.Scheme == WeightScheme::DMISS_NO;
  R.Plans = planLayout(M, R.Legality, R.Stats, Planner,
                       Opts.UseProvenLegality ? &R.Refined : nullptr);

  // BE phase.
  if (!Opts.AnalyzeOnly)
    R.Summary = applyPlans(M, R.Plans, R.Legality);
  return R;
}
