//===- pipeline/Pipeline.cpp - FE -> IPA -> BE driver ---------------------===//

#include "pipeline/Pipeline.h"

#include "analysis/PointsTo.h"
#include "observability/CounterRegistry.h"
#include "observability/Tracer.h"

using namespace slo;

namespace {

void publishPipelineCounters(CounterRegistry &C, const PipelineResult &R,
                             const PointsToStats *PT) {
  C.add("pipeline.types_analyzed",
        static_cast<uint64_t>(R.Legality.types().size()));
  C.add("pipeline.plans", static_cast<uint64_t>(R.Plans.size()));
  uint64_t Planned = 0;
  for (const TypePlan &P : R.Plans)
    Planned += P.Kind != TransformKind::None;
  C.add("planner.types_planned", Planned);
  C.add("transform.types_transformed", R.Summary.TypesTransformed);
  C.add("transform.fields_split_or_dead", R.Summary.FieldsSplitOrDead);
  C.add("diag.count", static_cast<uint64_t>(R.Diags.all().size()));
  if (PT) {
    C.add("pointsto.value_nodes", PT->NumValueNodes);
    C.add("pointsto.objects", PT->NumObjects);
    C.add("pointsto.cells", PT->NumCells);
    C.add("pointsto.copy_edges", PT->NumCopyEdges);
    C.add("pointsto.complex_constraints", PT->NumComplexConstraints);
    C.add("pointsto.solver_passes", PT->SolverPasses);
    C.add("pointsto.nodes_collapsed", PT->NodesCollapsed);
  }
}

} // namespace

PipelineResult slo::runStructLayoutPipeline(Module &M,
                                            const PipelineOptions &Opts,
                                            const FeedbackFile *Train,
                                            const FeedbackFile *Ref) {
  PipelineResult R;
  TraceSpan Whole(Opts.Trace, "pipeline", "phase");
  PointsToStats PTStats;
  bool HavePT = false;

  // FE phase: single-pass legality tests and attribute collection,
  // refined by the points-to analysis into per-site proofs.
  {
    TraceSpan S(Opts.Trace, "FE/legality", "phase");
    R.Legality = analyzeLegality(M, Opts.Legality);
  }
  if (Opts.UseProvenLegality || Opts.Lint) {
    PointsToResult PT;
    {
      TraceSpan S(Opts.Trace, "FE/points-to", "phase");
      PT = analyzePointsTo(M);
    }
    PTStats = PT.stats();
    HavePT = true;
    if (Opts.Lint) {
      LintOptions LO;
      LO.Trace = Opts.Trace;
      LO.Counters = Opts.Counters;
      R.Lint = runLint(M, &PT, &R.Legality, LO);
      reportLintFindings(R.Lint, R.Diags);
    }
    if (Opts.UseProvenLegality) {
      TraceSpan S(Opts.Trace, "FE/refine-legality", "phase");
      R.Refined = refineLegality(M, R.Legality, PT, &R.Diags,
                                 Opts.Lint ? &R.Lint.Pinnings : nullptr);
    }
  }

  // IPA phase: profitability analysis under the selected weighting.
  {
    TraceSpan S(Opts.Trace, "IPA/field-stats", "phase");
    SchemeInputs In;
    In.M = &M;
    In.TrainProfile = Train;
    In.RefProfile = Ref;
    In.UninstrumentedProfile = Train;
    In.Exponent = Opts.IspboExponent;
    R.Stats = computeSchemeFieldStats(Opts.Scheme, In);
  }

  // Heuristics: the threshold T_s depends on whether hotness came from a
  // profile (3%) or static estimation (7.5%).
  {
    TraceSpan S(Opts.Trace, "IPA/plan", "phase");
    PlannerOptions Planner = Opts.Planner;
    Planner.HotnessFromProfile = Opts.Scheme == WeightScheme::PBO ||
                                 Opts.Scheme == WeightScheme::PPBO ||
                                 Opts.Scheme == WeightScheme::DMISS ||
                                 Opts.Scheme == WeightScheme::DLAT ||
                                 Opts.Scheme == WeightScheme::DMISS_NO;
    R.Plans = planLayout(M, R.Legality, R.Stats, Planner,
                         Opts.UseProvenLegality ? &R.Refined : nullptr);
  }

  // BE phase.
  if (!Opts.AnalyzeOnly) {
    TraceSpan S(Opts.Trace, "BE/apply-plans", "phase");
    R.Summary = applyPlans(M, R.Plans, R.Legality);
  }

  if (Opts.Counters)
    publishPipelineCounters(*Opts.Counters, R, HavePT ? &PTStats : nullptr);
  return R;
}
