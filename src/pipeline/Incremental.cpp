//===- pipeline/Incremental.cpp - Incremental FE->IPA->BE advice ----------===//

#include "pipeline/Incremental.h"

#include "frontend/Frontend.h"
#include "ir/Module.h"
#include "observability/CounterRegistry.h"
#include "observability/Tracer.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>

using namespace slo;

const char *slo::tuStateName(TuState S) {
  switch (S) {
  case TuState::Recomputed:
    return "recomputed";
  case TuState::Reused:
    return "reused";
  case TuState::SchemaInvalidated:
    return "schema-invalidated";
  }
  return "?";
}

uint64_t slo::sourceHashForTu(const std::string &Source,
                              uint64_t OptionsKey) {
  return fnv1a(Source, OptionsKey ^ 0x516c6f2d73756d6dull);
}

//===----------------------------------------------------------------------===//
// IPA merge
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t RelaxableMask = (1u << 0) | (1u << 1) | (1u << 2);

/// Per-type accumulator over TUs.
struct TypeAcc {
  uint32_t Violations = 0;
  uint32_t AttrBits = 0;
  uint64_t PtrValueStores = 0;
  std::vector<std::string> EscpSymbols; // ESCP site targets.
  std::vector<std::string> LibcSymbols; // LIBC site targets.
  unsigned RefTus = 0;
  bool AllProven = true;
  bool AllProvenSafe = true;
  bool Pinned = false;
  std::string PinReason;
  bool SinglePeelable = false;
  std::set<unsigned> ForceLive;
  bool HaveStats = false;
  bool StatsConflict = false;
  std::vector<double> Reads, Writes, Hotness;
  std::map<std::pair<unsigned, unsigned>, double> Affinity;
};

} // namespace

MergedProgram
slo::mergeModuleSummaries(const std::vector<ModuleSummary> &Summaries,
                          const PlannerOptions &PlannerOpts) {
  MergedProgram MP;

  // Program-wide defined-function set (the ESCP resolution universe).
  std::set<std::string> FnSet;
  std::vector<std::string> DupFns;
  for (const ModuleSummary &S : Summaries)
    for (const std::string &F : S.DefinedFunctions)
      if (!FnSet.insert(F).second)
        DupFns.push_back(F);
  MP.DefinedFunctions.assign(FnSet.begin(), FnSet.end());

  // Authoritative record schemas: first complete definition wins;
  // disagreeing later definitions are conflicts (the linker would
  // reject this program).
  struct AuthSchema {
    const RecordSchemaSummary *RS = nullptr;
    const std::string *Tu = nullptr;
  };
  std::map<std::string, AuthSchema> Auth;
  std::map<std::string, std::pair<std::string, std::string>> Conflicts;
  for (const ModuleSummary &S : Summaries)
    for (const RecordSchemaSummary &RS : S.Schemas) {
      if (!RS.Complete)
        continue;
      auto It = Auth.find(RS.Name);
      if (It == Auth.end()) {
        Auth[RS.Name] = {&RS, &S.ModuleName};
      } else if (It->second.RS->LocalFingerprint != RS.LocalFingerprint &&
                 !Conflicts.count(RS.Name)) {
        Conflicts[RS.Name] = {*It->second.Tu, S.ModuleName};
      }
    }

  // Accumulate per-type facts. std::map keys the output by name, which
  // is the deterministic advice order.
  std::map<std::string, TypeAcc> Types;
  for (const ModuleSummary &S : Summaries)
    for (const TypeSummary &T : S.Types) {
      TypeAcc &A = Types[T.TypeName];
      A.Violations |= T.Violations;
      A.AttrBits |= T.AttrBits;
      A.PtrValueStores += T.PtrValueStores;
      for (const SiteSummary &Site : T.Sites) {
        if (Site.Kind == violationBit(Violation::ESCP))
          A.EscpSymbols.push_back(Site.Symbol);
        else if (Site.Kind == violationBit(Violation::LIBC))
          A.LibcSymbols.push_back(Site.Symbol);
      }
      if (T.Referenced) {
        ++A.RefTus;
        A.AllProven = A.AllProven && T.ProvenLegal;
        A.AllProvenSafe =
            A.AllProvenSafe && T.ProvenLegal && T.TransformSafe;
        // Peeling owns the type's single global pointer wholesale, so it
        // only survives the merge when exactly one TU references the
        // type and that TU proved it peelable.
        A.SinglePeelable = A.RefTus == 1 && T.Peelable;
      }
      if (T.Pinned && !A.Pinned) {
        A.Pinned = true;
        A.PinReason = T.PinReason;
      }
      A.ForceLive.insert(T.ForceLiveFields.begin(), T.ForceLiveFields.end());
      if (T.HaveStats) {
        if (!A.HaveStats) {
          A.HaveStats = true;
          A.Reads = T.Reads;
          A.Writes = T.Writes;
          A.Hotness = T.Hotness;
        } else if (A.Reads.size() == T.Reads.size() &&
                   A.Hotness.size() == T.Hotness.size()) {
          for (size_t I = 0; I < T.Reads.size(); ++I) {
            A.Reads[I] += T.Reads[I];
            A.Writes[I] += T.Writes[I];
            A.Hotness[I] += T.Hotness[I];
          }
        } else {
          A.StatsConflict = true;
        }
        for (const auto &E : T.Affinity)
          A.Affinity[E.first] += E.second;
      }
    }

  // Finalize rows.
  for (auto &Entry : Types) {
    const std::string &Name = Entry.first;
    TypeAcc &A = Entry.second;
    MergedTypeAdvice M;
    M.Name = Name;
    auto AuthIt = Auth.find(Name);
    if (AuthIt != Auth.end()) {
      const RecordSchemaSummary &RS = *AuthIt->second.RS;
      M.NumFields = static_cast<unsigned>(RS.Fields.size());
      M.Size = RS.Size;
      for (const auto &FI : RS.Fields)
        M.FieldNames.push_back(FI.Name);
    }

    // Escape resolution: the per-TU FE flags every escape to a
    // declaration — LIBC for 'extern' prototypes (MiniC's library
    // marker), ESCP for plain forward declarations. The IPA merge
    // forgives exactly the sites whose target is defined by some TU of
    // this program: the linker would resolve those calls (ANDing away
    // lib-ness), so the monolithic pipeline never records them.
    uint32_t Viol = A.Violations;
    auto ResolveKind = [&](Violation V, const std::vector<std::string> &Syms) {
      if (!(Viol & violationBit(V)))
        return;
      for (const std::string &Sym : Syms)
        if (Sym.empty() || !FnSet.count(Sym))
          return; // At least one target stays external: bit stands.
      Viol &= ~violationBit(V);
    };
    ResolveKind(Violation::ESCP, A.EscpSymbols);
    ResolveKind(Violation::LIBC, A.LibcSymbols);
    M.Violations = Viol;
    M.AttrBits = A.AttrBits;
    M.PtrValueStores = A.PtrValueStores;
    M.ReferencingTus = A.RefTus;
    M.Pinned = A.Pinned;
    M.PinReason = A.PinReason;

    M.Legal = Viol == 0;
    // Lint pinnings demote proofs, never blanket legality (mirrors
    // refineLegality).
    bool Demoted = A.Pinned && !M.Legal;
    M.Proven = M.Legal || (A.RefTus > 0 && A.AllProven && !Demoted);
    M.Relax = (Viol & ~RelaxableMask) == 0;

    bool StatsUsable = A.HaveStats && !A.StatsConflict &&
                       A.Hotness.size() == M.NumFields && M.NumFields > 0;
    M.HaveStats = StatsUsable;
    if (StatsUsable) {
      M.Reads = A.Reads;
      M.Writes = A.Writes;
      M.Hotness = A.Hotness;
      M.Affinity = A.Affinity;
    }

    PlannerTypeInput In;
    In.NumFields = M.NumFields;
    In.StrictLegal = M.Legal;
    In.Proven = A.RefTus > 0 && A.AllProvenSafe && !Demoted;
    In.Violations = Viol;
    TypeAttributes Attrs = unpackTypeAttributes(
        A.AttrBits, static_cast<unsigned>(A.PtrValueStores));
    In.DynamicallyAllocated = Attrs.DynamicallyAllocated;
    In.Reallocated = Attrs.Reallocated;
    In.HasAggregateInstance =
        Attrs.HasGlobalVar || Attrs.HasLocalVar || Attrs.HasStaticArray;
    In.HaveStats = StatsUsable;
    if (StatsUsable) {
      In.Reads = M.Reads;
      In.Writes = M.Writes;
      In.Hotness = M.Hotness;
    }
    In.ForceLive = A.ForceLive.empty() ? nullptr : &A.ForceLive;
    In.Peelable = A.SinglePeelable;
    M.Plan = decideTypePlan(In, PlannerOpts);

    MP.Types.push_back(std::move(M));
  }

  // Cross-TU consistency diagnostics, deterministic order.
  for (const auto &C : Conflicts) {
    Diagnostic &D = MP.MergeDiags.emplace_back();
    D.Severity = DiagSeverity::Error;
    D.Code = "merge";
    D.RecordName = C.first;
    D.Message = "conflicting redefinition of 'struct " + C.first + "' (" +
                C.second.first + " vs " + C.second.second + ")";
  }
  std::sort(DupFns.begin(), DupFns.end());
  DupFns.erase(std::unique(DupFns.begin(), DupFns.end()), DupFns.end());
  for (const std::string &F : DupFns) {
    Diagnostic &D = MP.MergeDiags.emplace_back();
    D.Severity = DiagSeverity::Error;
    D.Code = "merge";
    D.Function = F;
    D.Message = "duplicate definition of function '" + F + "'";
  }
  for (const MergedTypeAdvice &M : MP.Types)
    if (Types[M.Name].StatsConflict) {
      Diagnostic &D = MP.MergeDiags.emplace_back();
      D.Severity = DiagSeverity::Error;
      D.Code = "merge";
      D.RecordName = M.Name;
      D.Message = "mismatched field statistics for 'struct " + M.Name +
                  "' across TUs (schema conflict); statistics dropped";
    }

  return MP;
}

//===----------------------------------------------------------------------===//
// Advice rendering
//===----------------------------------------------------------------------===//

namespace {

std::string fieldList(const MergedTypeAdvice &M,
                      const std::vector<unsigned> &Idx) {
  if (Idx.empty())
    return "-";
  std::string Out;
  for (unsigned I : Idx) {
    if (!Out.empty())
      Out += ",";
    Out += I < M.FieldNames.size() ? M.FieldNames[I]
                                   : "#" + std::to_string(I);
  }
  return Out;
}

std::string pct(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "%.1f", V);
  return Buf;
}

std::string jsonFieldArray(const MergedTypeAdvice &M,
                           const std::vector<unsigned> &Idx) {
  std::string Out = "[";
  for (size_t I = 0; I < Idx.size(); ++I) {
    if (I)
      Out += ",";
    unsigned F = Idx[I];
    Out += "\"" +
           escapeJson(F < M.FieldNames.size() ? M.FieldNames[F]
                                              : "#" + std::to_string(F)) +
           "\"";
  }
  return Out + "]";
}

std::string hotnessBits(const std::vector<double> &H) {
  std::string Out = "[";
  for (size_t I = 0; I < H.size(); ++I) {
    uint64_t Bits;
    std::memcpy(&Bits, &H[I], sizeof Bits);
    char Buf[24];
    std::snprintf(Buf, sizeof Buf, "\"%016llx\"",
                  static_cast<unsigned long long>(Bits));
    if (I)
      Out += ",";
    Out += Buf;
  }
  return Out + "]";
}

struct Census {
  unsigned Legal = 0, Proven = 0, Relax = 0, Total = 0;
};

Census censusOf(const MergedProgram &MP) {
  Census C;
  for (const MergedTypeAdvice &M : MP.Types) {
    ++C.Total;
    C.Legal += M.Legal;
    C.Proven += M.Proven;
    C.Relax += M.Relax;
  }
  return C;
}

std::vector<double> relativeHotnessVec(const std::vector<double> &H) {
  double Max = 0.0;
  for (double V : H)
    Max = std::max(Max, V);
  std::vector<double> Out(H.size(), 0.0);
  if (Max <= 0.0)
    return Out;
  for (size_t I = 0; I < H.size(); ++I)
    Out[I] = 100.0 * H[I] / Max;
  return Out;
}

} // namespace

std::string slo::renderAdviceText(const MergedProgram &MP,
                                  const std::vector<ModuleSummary> &Summaries,
                                  WeightScheme Scheme) {
  std::string O;
  O += "== syzygy-slo incremental advice ==\n";
  O += "scheme " + std::string(weightSchemeName(Scheme)) + "\n";
  O += "tus " + std::to_string(Summaries.size()) + "\n";
  O += "functions " + std::to_string(MP.DefinedFunctions.size()) + "\n";
  Census C = censusOf(MP);
  O += "-- census --\n";
  O += "legal " + std::to_string(C.Legal) + " proven " +
       std::to_string(C.Proven) + " relax " + std::to_string(C.Relax) +
       " total " + std::to_string(C.Total) + "\n";
  O += "-- types --\n";
  for (const MergedTypeAdvice &M : MP.Types) {
    TypeAttributes Attrs = unpackTypeAttributes(
        M.AttrBits, static_cast<unsigned>(M.PtrValueStores));
    std::string AttrStr = Attrs.toString();
    O += "type " + M.Name + " fields=" + std::to_string(M.NumFields) +
         " size=" + std::to_string(M.Size) + " refs=" +
         std::to_string(M.ReferencingTus) + " legal=" +
         (M.Legal ? "1" : "0") + " proven=" + (M.Proven ? "1" : "0") +
         " relax=" + (M.Relax ? "1" : "0") + " viol=" +
         (M.Violations ? violationMaskToString(M.Violations) : "-") +
         " attrs=" + (AttrStr.empty() ? "-" : AttrStr) + "\n";
    if (M.Pinned)
      O += "  pinned " + M.PinReason + "\n";
    O += "  plan " + std::string(transformKindName(M.Plan.Kind)) +
         " reason=" + M.Plan.Reason + "\n";
    if (M.Plan.Kind == TransformKind::Split) {
      O += "  hot " + fieldList(M, M.Plan.HotFields) + " cold " +
           fieldList(M, M.Plan.ColdFields) + " dead " +
           fieldList(M, M.Plan.DeadFields) + " unused " +
           fieldList(M, M.Plan.UnusedFields) + "\n";
    } else if (M.Plan.Kind == TransformKind::Peel) {
      O += "  peel";
      for (const auto &G : M.Plan.PeelGroups)
        O += " [" + fieldList(M, G) + "]";
      O += " dead " + fieldList(M, M.Plan.DeadFields) + " unused " +
           fieldList(M, M.Plan.UnusedFields) + "\n";
    }
    if (M.HaveStats) {
      std::vector<double> Rel = relativeHotnessVec(M.Hotness);
      O += "  hotness";
      for (unsigned I = 0; I < M.NumFields; ++I)
        O += " " +
             (I < M.FieldNames.size() ? M.FieldNames[I]
                                      : "#" + std::to_string(I)) +
             "=" + pct(Rel[I]) + "%";
      O += "\n";
    }
  }
  O += "-- diagnostics --\n";
  for (const Diagnostic &D : MP.MergeDiags)
    O += D.renderText() + "\n"; // Component is already "merge".
  for (const ModuleSummary &S : Summaries)
    for (const Diagnostic &D : S.Diags)
      O += "[" + S.ModuleName + "] " + D.renderText() + "\n";
  return O;
}

std::string slo::renderAdviceJson(const MergedProgram &MP,
                                  const std::vector<ModuleSummary> &Summaries,
                                  WeightScheme Scheme) {
  Census C = censusOf(MP);
  std::string O;
  O += "{\n";
  O += "  \"format\": \"slo-incremental-advice-v1\",\n";
  O += "  \"scheme\": \"" + std::string(weightSchemeName(Scheme)) + "\",\n";
  O += "  \"tus\": " + std::to_string(Summaries.size()) + ",\n";
  O += "  \"census\": {\"legal\": " + std::to_string(C.Legal) +
       ", \"proven\": " + std::to_string(C.Proven) +
       ", \"relax\": " + std::to_string(C.Relax) +
       ", \"total\": " + std::to_string(C.Total) + "},\n";
  O += "  \"types\": [\n";
  for (size_t I = 0; I < MP.Types.size(); ++I) {
    const MergedTypeAdvice &M = MP.Types[I];
    O += "    {\"name\": \"" + escapeJson(M.Name) + "\"";
    O += ", \"fields\": " + std::to_string(M.NumFields);
    O += ", \"size\": " + std::to_string(M.Size);
    O += ", \"refs\": " + std::to_string(M.ReferencingTus);
    O += ", \"legal\": " + std::string(M.Legal ? "true" : "false");
    O += ", \"proven\": " + std::string(M.Proven ? "true" : "false");
    O += ", \"relax\": " + std::string(M.Relax ? "true" : "false");
    O += ", \"violations\": \"" +
         escapeJson(M.Violations ? violationMaskToString(M.Violations)
                                 : "") +
         "\"";
    O += ", \"plan\": \"" + std::string(transformKindName(M.Plan.Kind)) +
         "\"";
    O += ", \"reason\": \"" + escapeJson(M.Plan.Reason) + "\"";
    O += ", \"hot\": " + jsonFieldArray(M, M.Plan.HotFields);
    O += ", \"cold\": " + jsonFieldArray(M, M.Plan.ColdFields);
    O += ", \"dead\": " + jsonFieldArray(M, M.Plan.DeadFields);
    O += ", \"unused\": " + jsonFieldArray(M, M.Plan.UnusedFields);
    O += ", \"hotness_bits\": " + hotnessBits(M.Hotness);
    O += "}";
    O += I + 1 < MP.Types.size() ? ",\n" : "\n";
  }
  O += "  ],\n";
  O += "  \"diagnostics\": [\n";
  std::vector<std::string> DiagRows;
  for (const Diagnostic &D : MP.MergeDiags)
    DiagRows.push_back("    {\"module\": \"<merge>\", \"diagnostic\": " +
                       D.renderJson() + "}");
  for (const ModuleSummary &S : Summaries)
    for (const Diagnostic &D : S.Diags)
      DiagRows.push_back("    {\"module\": \"" + escapeJson(S.ModuleName) +
                         "\", \"diagnostic\": " + D.renderJson() + "}");
  for (size_t I = 0; I < DiagRows.size(); ++I)
    O += DiagRows[I] + (I + 1 < DiagRows.size() ? ",\n" : "\n");
  O += "  ]\n";
  O += "}\n";
  return O;
}

//===----------------------------------------------------------------------===//
// The incremental driver
//===----------------------------------------------------------------------===//

namespace {

struct TuSlot {
  ModuleSummary S;
  bool FromCache = false;
  bool Failed = false;
  std::vector<std::string> Errors;
  DiagnosticEngine CacheDiags;
  TuState State = TuState::Recomputed;
};

} // namespace

IncrementalResult slo::runIncrementalAdvice(const std::vector<TuSource> &TUs,
                                            const IncrementalOptions &Opts) {
  IncrementalResult R;
  TraceSpan Whole(Opts.Trace, "incremental", "phase");
  uint64_t OptKey = summaryOptionsKey(Opts.Summary);
  SummaryCache Cache(Opts.CacheDir);

  unsigned Threads = Opts.Threads ? Opts.Threads
                                  : std::thread::hardware_concurrency();
  if (Threads == 0)
    Threads = 1;
  ThreadPool Pool(Threads);

  std::vector<TuSlot> Slots(TUs.size());

  // Compiles and analyzes one TU from scratch, in its own IRContext
  // (thread isolation: no shared type uniquing between workers).
  auto ComputeTu = [&](size_t I) {
    TuSlot &SL = Slots[I];
    SL.FromCache = false;
    IRContext Ctx;
    std::vector<std::string> FeDiags;
    std::unique_ptr<Module> M =
        compileMiniC(Ctx, TUs[I].Name, TUs[I].Source, FeDiags);
    if (!M) {
      SL.Failed = true;
      SL.Errors = std::move(FeDiags);
      return;
    }
    SL.S = computeModuleSummary(*M, Opts.Summary);
    SL.S.ModuleName = TUs[I].Name;
    SL.S.SourceHash = sourceHashForTu(TUs[I].Source, OptKey);
    SL.S.OptionsKey = OptKey;
  };

  auto CollectFailures = [&]() {
    for (size_t I = 0; I < Slots.size(); ++I)
      if (Slots[I].Failed)
        for (const std::string &E : Slots[I].Errors)
          R.Errors.push_back(TUs[I].Name + ": " + E);
    return !R.Errors.empty();
  };

  // FE phase: parallel load-or-compute into index-addressed slots.
  {
    TraceSpan S(Opts.Trace, "FE/parallel-summaries", "phase");
    for (size_t I = 0; I < TUs.size(); ++I)
      Pool.enqueue([&, I] {
        uint64_t Hash = sourceHashForTu(TUs[I].Source, OptKey);
        ModuleSummary Cached;
        SummaryCache::LoadStatus St =
            Cache.load(TUs[I].Name, Cached, &Slots[I].CacheDiags);
        if (St == SummaryCache::LoadStatus::Hit &&
            Cached.ModuleName == TUs[I].Name &&
            Cached.OptionsKey == OptKey &&
            (Opts.InjectStaleSummary || Cached.SourceHash == Hash)) {
          Slots[I].S = std::move(Cached);
          Slots[I].FromCache = true;
          Slots[I].State = TuState::Reused;
          return;
        }
        ComputeTu(I);
      });
    Pool.wait();
  }
  if (CollectFailures())
    return R;

  // IPA schema re-validation: a cached summary whose recorded
  // program-wide record fingerprints disagree with the current
  // authoritative ones was computed against a different dependency
  // schema — recompute it. Iterate to a fixpoint, since a recomputed TU
  // can shift the authoritative map. Terminates: each round strictly
  // shrinks the set of cache-loaded slots.
  auto BuildAuthoritative = [&]() {
    std::map<std::string, uint64_t> A;
    for (const TuSlot &SL : Slots)
      for (const RecordSchemaSummary &RS : SL.S.Schemas)
        if (RS.Complete && !A.count(RS.Name))
          A[RS.Name] = RS.LocalFingerprint;
    return A;
  };

  std::map<std::string, uint64_t> Authoritative = BuildAuthoritative();
  if (!Opts.InjectStaleSummary) {
    TraceSpan S(Opts.Trace, "IPA/schema-fixpoint", "phase");
    while (true) {
      std::vector<size_t> Invalid;
      for (size_t I = 0; I < Slots.size(); ++I) {
        if (!Slots[I].FromCache)
          continue;
        for (const RecordSchemaSummary &RS : Slots[I].S.Schemas) {
          auto It = Authoritative.find(RS.Name);
          uint64_t Want = It == Authoritative.end() ? 0 : It->second;
          if (RS.ResolvedFingerprint != Want) {
            Invalid.push_back(I);
            break;
          }
        }
      }
      if (Invalid.empty())
        break;
      for (size_t I : Invalid) {
        Slots[I].State = TuState::SchemaInvalidated;
        Pool.enqueue([&, I] { ComputeTu(I); });
      }
      Pool.wait();
      if (CollectFailures())
        return R;
      Authoritative = BuildAuthoritative();
    }
  }

  // Stamp the program-wide fingerprints and persist fresh summaries.
  // Stamping must precede the store: the next (warm) run validates
  // against exactly these stamps.
  {
    TraceSpan S(Opts.Trace, "IPA/store", "phase");
    for (TuSlot &SL : Slots) {
      for (RecordSchemaSummary &RS : SL.S.Schemas) {
        auto It = Authoritative.find(RS.Name);
        RS.ResolvedFingerprint = It == Authoritative.end() ? 0 : It->second;
      }
      if (!SL.FromCache)
        Cache.store(SL.S, &SL.CacheDiags);
    }
  }

  // IPA merge + BE rendering, shared verbatim with a warm run.
  {
    TraceSpan S(Opts.Trace, "IPA/merge", "phase");
    R.Summaries.reserve(Slots.size());
    for (TuSlot &SL : Slots)
      R.Summaries.push_back(std::move(SL.S));
    PlannerOptions Planner = Opts.Planner;
    Planner.HotnessFromProfile = false; // Static schemes only.
    R.Merged = mergeModuleSummaries(R.Summaries, Planner);
  }
  {
    TraceSpan S(Opts.Trace, "BE/render", "phase");
    R.AdviceText =
        renderAdviceText(R.Merged, R.Summaries, Opts.Summary.Scheme);
    R.AdviceJson =
        renderAdviceJson(R.Merged, R.Summaries, Opts.Summary.Scheme);
  }

  for (size_t I = 0; I < Slots.size(); ++I) {
    R.TuStates.push_back(Slots[I].State);
    switch (Slots[I].State) {
    case TuState::Reused:
      ++R.TusReused;
      break;
    case TuState::Recomputed:
      ++R.TusRecomputed;
      break;
    case TuState::SchemaInvalidated:
      ++R.TusSchemaInvalidated;
      break;
    }
    for (const Diagnostic &D : Slots[I].CacheDiags.all())
      R.CacheDiags.push_back(D);
  }
  R.Cache = Cache.stats();
  R.Ok = true;

  if (Opts.Counters) {
    Opts.Counters->add("incremental.tus", TUs.size());
    Opts.Counters->add("incremental.reused", R.TusReused);
    Opts.Counters->add("incremental.recomputed", R.TusRecomputed);
    Opts.Counters->add("incremental.schema_invalidated",
                       R.TusSchemaInvalidated);
    Opts.Counters->add("incremental.cache_corrupt", R.Cache.Corrupt);
  }
  return R;
}
