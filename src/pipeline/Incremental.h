//===- pipeline/Incremental.h - Incremental FE->IPA->BE advice -*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental, parallel advisory pipeline (the ROADMAP's "re-advise
/// in milliseconds when one TU changes"):
///
///   FE   each translation unit is parsed and analyzed independently, in
///        its own IRContext, fanned out over a ThreadPool; results land
///        in index-addressed slots, so the outcome is deterministic
///        regardless of scheduling. A TU whose content hash matches its
///        summary-cache entry skips analysis entirely.
///   IPA  per-TU ModuleSummary records are aggregated: violation masks
///        OR, attributes OR, statistics and affinity edges sum, escape
///        sites (LIBC/ESCP) resolve against the program-wide
///        defined-function set,
///        Proven requires every referencing TU's proof. Cached summaries
///        are re-validated against program-wide record-schema
///        fingerprints and recomputed to a fixpoint, so a schema change
///        in a *dependency* TU invalidates its users.
///   BE   the merged facts drive decideTypePlan (the same §2.4 heuristic
///        core the monolithic planner uses) and render as deterministic
///        advice text/JSON.
///
/// The pipeline is advisory-only: there is no linked module to rewrite.
/// Its correctness contract is cache equivalence — a warm run produces
/// byte-identical advice, diagnostics and census columns to a cold run —
/// enforced by the incremental-parity fuzz oracle and the check.sh leg.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_PIPELINE_INCREMENTAL_H
#define SLO_PIPELINE_INCREMENTAL_H

#include "pipeline/Summary.h"
#include "pipeline/SummaryCache.h"
#include "transform/LayoutPlanner.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace slo {

class CounterRegistry;
class Tracer;

/// One translation unit: a module name and its MiniC source text.
struct TuSource {
  std::string Name;
  std::string Source;
};

struct IncrementalOptions {
  /// Per-TU analysis knobs (scheme must be static; profile schemes fall
  /// back to ISPBO).
  SummaryOptions Summary;
  PlannerOptions Planner;
  /// Summary cache directory; empty runs fully cold with no persistence.
  std::string CacheDir;
  /// FE fan-out width; 0 uses the hardware concurrency.
  unsigned Threads = 0;
  /// Test-only: serve cache entries without the source-hash and schema
  /// re-validation, i.e. deliberately use stale summaries. The
  /// incremental-parity oracle must catch the resulting advice drift
  /// (its non-vacuity check).
  bool InjectStaleSummary = false;

  Tracer *Trace = nullptr;
  CounterRegistry *Counters = nullptr;
};

/// How each TU's summary was obtained this run.
enum class TuState {
  Recomputed,        ///< Cold: compiled and analyzed this run.
  Reused,            ///< Warm: loaded from the summary cache.
  SchemaInvalidated, ///< Cached, but recomputed because a dependency's
                     ///< record schema changed.
};

const char *tuStateName(TuState S);

/// Merged (program-wide) advice for one record type.
struct MergedTypeAdvice {
  std::string Name;
  /// From the authoritative (defining) schema; 0 when no TU defines the
  /// record.
  unsigned NumFields = 0;
  uint64_t Size = 0;
  std::vector<std::string> FieldNames;
  /// OR of per-TU masks, with LIBC/ESCP cleared when every escape
  /// target of that kind is defined by some TU of the program.
  uint32_t Violations = 0;
  uint32_t AttrBits = 0;
  uint64_t PtrValueStores = 0;
  /// The Table 1 census columns; Legal <= Proven <= Relax holds by
  /// construction.
  bool Legal = false;
  bool Proven = false;
  bool Relax = false;
  bool Pinned = false;
  std::string PinReason;
  unsigned ReferencingTus = 0;
  bool HaveStats = false;
  std::vector<double> Reads;
  std::vector<double> Writes;
  std::vector<double> Hotness;
  std::map<std::pair<unsigned, unsigned>, double> Affinity;
  PlanDecision Plan;
};

/// The IPA merge result over all TUs.
struct MergedProgram {
  std::vector<std::string> DefinedFunctions; ///< Sorted, unique.
  std::vector<MergedTypeAdvice> Types;       ///< Sorted by name.
  /// Cross-TU consistency findings: conflicting record redefinitions,
  /// duplicate function definitions, mismatched statistics vectors.
  std::vector<Diagnostic> MergeDiags;
};

struct IncrementalResult {
  /// False when any TU failed to compile (Errors lists why, in TU
  /// order); everything else is only meaningful when true.
  bool Ok = false;
  std::vector<std::string> Errors;

  std::vector<ModuleSummary> Summaries; ///< Per TU, input order.
  MergedProgram Merged;
  /// Deterministic advice renderings. Cache statistics and cache
  /// diagnostics are deliberately excluded: these strings must be
  /// byte-identical between cold and warm runs.
  std::string AdviceText;
  std::string AdviceJson;

  /// Per-TU provenance, input order.
  std::vector<TuState> TuStates;
  unsigned TusReused = 0;
  unsigned TusRecomputed = 0;
  unsigned TusSchemaInvalidated = 0;
  /// Cache-layer observations (corrupt-entry fallbacks land here, not in
  /// the advice).
  std::vector<Diagnostic> CacheDiags;
  SummaryCache::CacheStats Cache;
};

/// Content hash of one TU under an options key (the cache validity
/// test). The key seeds the hash, so an options change misses cleanly.
uint64_t sourceHashForTu(const std::string &Source, uint64_t OptionsKey);

/// The pure IPA merge + planning step: summaries in, program advice out.
/// Shared verbatim by cold and warm runs — cache equivalence reduces to
/// ModuleSummary round-trip exactness.
MergedProgram mergeModuleSummaries(const std::vector<ModuleSummary> &Summaries,
                                   const PlannerOptions &PlannerOpts);

/// Deterministic advice renderings of a merged program.
std::string renderAdviceText(const MergedProgram &MP,
                             const std::vector<ModuleSummary> &Summaries,
                             WeightScheme Scheme);
std::string renderAdviceJson(const MergedProgram &MP,
                             const std::vector<ModuleSummary> &Summaries,
                             WeightScheme Scheme);

/// Runs the full incremental pipeline over \p TUs.
IncrementalResult runIncrementalAdvice(const std::vector<TuSource> &TUs,
                                       const IncrementalOptions &Opts);

} // namespace slo

#endif // SLO_PIPELINE_INCREMENTAL_H
