//===- runtime/VM.cpp - Threaded bytecode VM ------------------------------===//
//
// The fast execution tier. Differences from the tree walker are purely
// mechanical — never semantic:
//
//  - Dispatch is a computed-goto threaded loop (per-opcode indirect
//    branches, so the host branch predictor learns opcode pairs), with
//    a portable switch fallback when labels-as-values are unavailable.
//  - Operands are always frame slots: constants were materialized into
//    per-function constant slots at compile time, killing the
//    slot-vs-immediate branch the walker pays on every operand.
//  - Run totals (instructions, cycles, stalls, loads, stores) live in
//    host registers inside the loop and are flushed to the members only
//    around calls and exits.
//  - Single-use field-address + load/store pairs run as one fused
//    superinstruction (the dominant pattern in SLO workloads), with the
//    inter-instruction budget check replayed so trap timing is
//    bit-identical to the walker's.
//  - Non-straddling first-level cache hits take CacheSim's inline fast
//    path; instrumented runs use side-table (site, PC) context computed
//    at compile time and inline-cached FieldCacheStats / edge-counter
//    pointers instead of per-event map lookups.
//
// Anything observable — output, cycles, misses, leak census,
// attribution partitions, trap reasons and timing — must match the
// walker bit for bit; the engine-parity differential-fuzz oracle and
// the vm_test suite hold both engines to that.
//
//===----------------------------------------------------------------------===//

#include "runtime/VM.h"

#include "observability/CounterRegistry.h"
#include "observability/MissAttribution.h"
#include "observability/SampledPmu.h"
#include "observability/Tracer.h"
#include "runtime/Bytecode.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

using namespace slo;
using namespace slo::engine;

// Computed-goto threading needs GNU labels-as-values; everything else
// falls back to a plain switch loop with identical handler bodies.
// SLO_VM_FORCE_SWITCH forces the fallback (used to test it on GCC).
#if defined(__GNUC__) && !defined(SLO_VM_FORCE_SWITCH)
#define SLO_VM_THREADED 1
#else
#define SLO_VM_THREADED 0
#endif

namespace {

// Width-specialized simulated-memory accessors. SimMemory::readInt takes
// a runtime byte count, which the host compiler lowers to a library
// memcpy call; these switch on the (always 1/2/4/8) width so every arm
// is a single fixed-size move the compiler inlines. Semantics are
// exactly readInt/writeInt/readFloat/writeFloat's.
inline int64_t vmLoadInt(const uint8_t *P, unsigned Bytes, bool SignExtend) {
  switch (Bytes) {
  case 1: {
    uint8_t V;
    std::memcpy(&V, P, 1);
    return SignExtend ? static_cast<int64_t>(static_cast<int8_t>(V))
                      : static_cast<int64_t>(V);
  }
  case 2: {
    uint16_t V;
    std::memcpy(&V, P, 2);
    return SignExtend ? static_cast<int64_t>(static_cast<int16_t>(V))
                      : static_cast<int64_t>(V);
  }
  case 4: {
    uint32_t V;
    std::memcpy(&V, P, 4);
    return SignExtend ? static_cast<int64_t>(static_cast<int32_t>(V))
                      : static_cast<int64_t>(V);
  }
  case 8: {
    uint64_t V;
    std::memcpy(&V, P, 8);
    return static_cast<int64_t>(V);
  }
  default: { // Unreachable for MiniC types; keep readInt's behaviour.
    uint64_t Raw = 0;
    std::memcpy(&Raw, P, Bytes);
    if (SignExtend) {
      uint64_t SignBit = 1ull << (Bytes * 8 - 1);
      if (Raw & SignBit)
        Raw |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(Raw);
  }
  }
}

inline void vmStoreInt(uint8_t *P, unsigned Bytes, int64_t V) {
  switch (Bytes) {
  case 1:
    std::memcpy(P, &V, 1);
    return;
  case 2:
    std::memcpy(P, &V, 2);
    return;
  case 4:
    std::memcpy(P, &V, 4);
    return;
  case 8:
    std::memcpy(P, &V, 8);
    return;
  default:
    std::memcpy(P, &V, Bytes);
    return;
  }
}

inline double vmLoadFloat(const uint8_t *P, unsigned Bytes) {
  if (Bytes == 4) {
    float F;
    std::memcpy(&F, P, 4);
    return F;
  }
  double D;
  std::memcpy(&D, P, 8);
  return D;
}

inline void vmStoreFloat(uint8_t *P, unsigned Bytes, double V) {
  if (Bytes == 4) {
    float F = static_cast<float>(V);
    std::memcpy(P, &F, 4);
    return;
  }
  std::memcpy(P, &V, 8);
}

} // namespace

class VM::Impl {
public:
  Impl(const Module &M, RunOptions Opts)
      : M(M), Opts(std::move(Opts)), Cache(this->Opts.Cache) {
    if (this->Opts.Attribution)
      Cache.setMissSink(this->Opts.Attribution);
  }

  RunResult run(const std::string &EntryName);

private:
  BCFunction &compiledFunction(uint32_t Idx);

  Reg executeFunction(BCFunction &BF, size_t FrameBase, unsigned Depth);
  Reg callFunction(const Function *F, uint32_t FIdx, const uint32_t *ArgSlots,
                   unsigned NumArgs, Reg *&Frame, size_t FrameBase,
                   unsigned Depth);
  Reg callBuiltin(uint16_t Kind, const Function *F, const uint32_t *ArgSlots,
                  unsigned NumArgs, const Reg *Frame);

  /// The instrumented access path: identical event sequence to the
  /// walker's simulateAccess, with the (site, PC) context and the
  /// profile-stats pointer coming from the precomputed side table
  /// instead of per-access recomputation and map lookups.
  void instrAccess(uint64_t Addr, unsigned Bytes, bool IsFp, bool IsStore,
                   AccessSide &S, uint64_t &Cyc, uint64_t &StallC,
                   uint64_t &Ld, uint64_t &St);

  /// Registers a human-readable label ("function+codeindex") for the
  /// packed PC token on its first attributed miss. PC tokens index the
  /// original DInst stream, so labels match the walker's exactly.
  void labelPc(uint64_t Pc) {
    uint32_t FIdx = static_cast<uint32_t>(Pc >> 32);
    uint32_t Idx = static_cast<uint32_t>(Pc);
    if (PcLabeled.size() <= FIdx)
      PcLabeled.resize(FuncList.size());
    std::vector<bool> &Seen = PcLabeled[FIdx];
    if (Seen.empty())
      Seen.resize(CompiledFns[FIdx]->NumDInsts);
    if (Seen[Idx])
      return;
    Seen[Idx] = true;
    Opts.Attribution->notePcLabel(
        Pc, formatString("%s+%u", FuncList[FIdx]->getName().c_str(), Idx));
  }

  void ensureArena(size_t End) {
    if (End > RegArena.size())
      RegArena.resize(std::max(End, RegArena.size() * 2));
  }

  void trap(const std::string &Reason) {
    if (!Result.Trapped) {
      Result.Trapped = true;
      Result.TrapReason = Reason;
    }
  }

  const Module &M;
  RunOptions Opts;
  CacheSim Cache;
  RunResult Result;
  SimMemory SM;

  std::unordered_map<const GlobalVariable *, uint64_t> GlobalAddr;
  std::vector<const Function *> FuncList;
  std::unordered_map<const Function *, uint32_t> FuncIndex;
  std::vector<std::unique_ptr<BCFunction>> CompiledFns;
  CompileOptions CO;

  std::vector<Reg> RegArena; // Register frames of the live call chain.
  size_t ArenaTop = 0;

  /// [FuncIdx][DInstIdx] -> PC label already registered with the sink.
  std::vector<std::vector<bool>> PcLabeled;

  // Run totals; mirrored into RunResult at the end of the run. Inside
  // the dispatch loop these live in locals, synced around calls.
  uint64_t Instructions = 0, Cycles = 0, MemStall = 0;
  uint64_t NLoads = 0, NStores = 0;
  uint64_t FastHits = 0; // Cache fast-path completions ("vm.*" counter).

  friend class VM;
};

BCFunction &VM::Impl::compiledFunction(uint32_t Idx) {
  if (!CompiledFns[Idx]) {
    // Decode on first call — the same laziness (and therefore the same
    // attribution/PMU site registration order) as the walker — then
    // compile straight to bytecode; the DInst stream is transient.
    DecodedFunction DF;
    DF.FuncIdx = Idx;
    DecodeContext Ctx;
    Ctx.GlobalAddr = &GlobalAddr;
    Ctx.FuncIndex = &FuncIndex;
    Ctx.Attribution = Opts.Attribution;
    Ctx.Pmu = Opts.Pmu;
    decodeFunction(FuncList[Idx], DF, Ctx);
    auto BF = std::make_unique<BCFunction>();
    compileFunction(DF, *BF, CO);
    CompiledFns[Idx] = std::move(BF);
  }
  return *CompiledFns[Idx];
}

void VM::Impl::instrAccess(uint64_t Addr, unsigned Bytes, bool IsFp,
                           bool IsStore, AccessSide &S, uint64_t &Cyc,
                           uint64_t &StallC, uint64_t &Ld, uint64_t &St) {
  // Stack slots model register-promoted locals: free, not simulated.
  if (SM.isStackAddress(Addr))
    return;
  if (IsStore)
    ++St;
  else
    ++Ld;
  ++Cyc; // Issue cost of a real memory operation.
  if (!Opts.SimulateCache)
    return;
  CacheAccessResult A;
  if (!Opts.Pmu && Cache.tryFirstLevelHit(Addr, Bytes, IsFp)) {
    // First-level hit with no PMU and no attribution sink attached
    // (tryFirstLevelHit refuses when one is): zero stall, no miss
    // event, and the latency is the constant first-level hit latency —
    // exactly the CacheAccessResult access() would have produced. This
    // is the common case of a profile (train) run.
    const CacheConfig &CC = Cache.config();
    A.Latency =
        IsFp && CC.FpBypassesL1 ? CC.L2.HitLatency : CC.L1.HitLatency;
    if (IsStore)
      A.Latency /= CC.StoreCostDivisor ? CC.StoreCostDivisor : 1;
  } else {
    if (Opts.Attribution)
      Cache.setAccessContext(S.Site, S.Pc);
    A = Cache.access(Addr, Bytes, IsStore, IsFp);
    Cyc += A.Stall;
    StallC += A.Stall;
    if (Opts.Attribution && A.FirstLevelMiss)
      labelPc(S.Pc);
    if (Opts.Pmu)
      Opts.Pmu->observeAccess(S.PmuSite, IsStore, A.FirstLevelMiss,
                              A.Latency);
  }

  // Exact field collection; with a PMU attached the field events come
  // from the sampled estimates flushed at end of run instead.
  if (!Opts.Profile || !S.Attrib || Opts.Pmu)
    return;
  if (!S.Stats)
    S.Stats = &Opts.Profile->fieldStats(S.Attrib->getRecord(),
                                        S.Attrib->getFieldIndex());
  FieldCacheStats &FS = *S.Stats;
  if (IsStore) {
    ++FS.Stores;
  } else {
    ++FS.Loads;
    FS.TotalLatency += static_cast<double>(A.Latency);
  }
  if (A.FirstLevelMiss)
    ++FS.Misses;
}

Reg VM::Impl::callBuiltin(uint16_t Kind, const Function *F,
                          const uint32_t *ArgSlots, unsigned NumArgs,
                          const Reg *Frame) {
  Reg R;
  R.I = 0;
  Reg A0;
  A0.I = 0;
  if (NumArgs > 0)
    A0 = Frame[ArgSlots[0]];
  switch (Kind) {
  case BK_PrintI64:
    Result.PrintedInts.push_back(A0.I);
    return R;
  case BK_PrintF64:
    Result.PrintedFloats.push_back(A0.F);
    return R;
  case BK_Sqrt:
    R.F = std::sqrt(A0.F);
    return R;
  case BK_Fabs:
    R.F = std::fabs(A0.F);
    return R;
  case BK_Exp:
    R.F = std::exp(A0.F);
    return R;
  case BK_Log:
    R.F = std::log(A0.F);
    return R;
  case BK_Floor:
    R.F = std::floor(A0.F);
    return R;
  case BK_IAbs:
    // Two's-complement negate: i_abs(INT64_MIN) wraps to INT64_MIN
    // (DInst contract; matches the walker).
    R.I = A0.I < 0 ? static_cast<int64_t>(0ull - static_cast<uint64_t>(A0.I))
                   : A0.I;
    return R;
  default:
    trap("call to unimplemented library function '" + F->getName() + "'");
    return R;
  }
}

Reg VM::Impl::callFunction(const Function *F, uint32_t FIdx,
                           const uint32_t *ArgSlots, unsigned NumArgs,
                           Reg *&Frame, size_t FrameBase, unsigned Depth) {
  Reg Void;
  Void.I = 0;
  if (F->isDeclaration())
    return callBuiltin(classifyBuiltin(F->getName()), F, ArgSlots, NumArgs,
                       Frame);
  if (Depth + 1 > Opts.MaxCallDepth) {
    trap("call depth limit exceeded in '" + F->getName() + "'");
    return Void;
  }

  BCFunction &BF = compiledFunction(FIdx);
  size_t CalleeBase = ArenaTop;
  ensureArena(CalleeBase + static_cast<size_t>(BF.FrameSlots));
  Frame = RegArena.data() + FrameBase; // The arena may have moved.
  Reg *CalleeFrame = RegArena.data() + CalleeBase;
  Reg Zero;
  Zero.I = 0;
  std::fill(CalleeFrame, CalleeFrame + BF.NumSlots, Zero);
  if (!BF.Consts.empty())
    std::memcpy(CalleeFrame + BF.NumSlots, BF.Consts.data(),
                BF.Consts.size() * sizeof(Reg));
  for (unsigned A = 0; A < NumArgs; ++A)
    CalleeFrame[A] = Frame[ArgSlots[A]];
  ArenaTop = CalleeBase + static_cast<size_t>(BF.FrameSlots);

  Reg R = executeFunction(BF, CalleeBase, Depth + 1);

  ArenaTop = CalleeBase;
  Frame = RegArena.data() + FrameBase;
  return R;
}

Reg VM::Impl::executeFunction(BCFunction &BF, size_t FrameBase,
                              unsigned Depth) {
  Reg Void;
  Void.I = 0;
  if (SM.StackTop + BF.FrameSize > SM.StackLimit) {
    trap("simulated stack overflow in '" + BF.F->getName() + "'");
    return Void;
  }
  uint64_t MemFrameBase = SM.StackTop;
  SM.StackTop += BF.FrameSize;
  SM.ensureMem(SM.StackTop);

  Reg *Frame = RegArena.data() + FrameBase;
  for (const auto &[SlotIdx, Off] : BF.Allocas)
    Frame[SlotIdx].I = static_cast<int64_t>(MemFrameBase + Off);

  if (Opts.Profile) {
    if (!BF.EntryCount)
      BF.EntryCount = Opts.Profile->entryCounter(BF.F);
    ++*BF.EntryCount;
  }

  Reg RetVal = Void;
  const BCInst *Code = BF.Code.data();
  const BCInst *D = nullptr;
  uint32_t PC = 0;
  const uint64_t Budget = Opts.MaxInstructions;
  const bool SimCache = Opts.SimulateCache;

  // Hot-loop caches of the simulated address space: the backing store's
  // base/size (refreshed whenever something may have grown it — calls,
  // heap ops, an ensureMem on this path) and the stack bounds, which are
  // fixed for the whole run at layout time.
  uint8_t *MemBase = SM.Mem.data();
  uint64_t MemSize = SM.Mem.size();
  const uint64_t StkBase = SM.StackBase, StkLimit = SM.StackLimit;
#define VM_REFRESH_MEM() (MemBase = SM.Mem.data(), MemSize = SM.Mem.size())

  // Run totals in host registers; synced with the members around calls
  // (the only re-entry points) and at every exit.
  uint64_t Instr = Instructions, Cyc = Cycles, StallC = MemStall;
  uint64_t Ld = NLoads, St = NStores, FH = FastHits;

#define VM_SYNC_OUT()                                                        \
  (Instructions = Instr, Cycles = Cyc, MemStall = StallC, NLoads = Ld,       \
   NStores = St, FastHits = FH)
#define VM_SYNC_IN()                                                         \
  (Instr = Instructions, Cyc = Cycles, StallC = MemStall, Ld = NLoads,       \
   St = NStores, FH = FastHits)

// Per-instruction prologue, identical to the walker's: count, charge
// the base cost, stop on budget exhaustion, then execute.
#if SLO_VM_THREADED
#define VM_CASE(OP) L_##OP:
#define VM_NEXT()                                                            \
  do {                                                                       \
    D = Code + PC;                                                           \
    ++Instr;                                                                 \
    Cyc += D->Cost;                                                          \
    if (Instr > Budget)                                                      \
      goto out;                                                              \
    ++PC;                                                                    \
    goto *Labels[static_cast<unsigned>(D->Op)];                              \
  } while (0)

  static const void *Labels[] = {
      &&L_Nop,        &&L_LoadFast,    &&L_StoreFast,   &&L_LoadInstr,
      &&L_StoreInstr, &&L_StackLoad,   &&L_StackStore,
      &&L_FieldLoadFast, &&L_FieldStoreFast,
      &&L_FieldLoadInstr, &&L_FieldStoreInstr,
      &&L_IndexLoadFast, &&L_IndexStoreFast,
      &&L_IndexLoadInstr, &&L_IndexStoreInstr, &&L_FieldAddr,
      &&L_IndexAddr,  &&L_Add,         &&L_Sub,         &&L_Mul,
      &&L_SDiv,       &&L_SRem,        &&L_And,         &&L_Or,
      &&L_Xor,        &&L_Shl,         &&L_AShr,        &&L_FAdd,
      &&L_FSub,       &&L_FMul,        &&L_FDiv,        &&L_ICmpEQ,
      &&L_ICmpNE,     &&L_ICmpSLT,     &&L_ICmpSLE,     &&L_ICmpSGT,
      &&L_ICmpSGE,    &&L_FCmpEQ,      &&L_FCmpNE,      &&L_FCmpLT,
      &&L_FCmpLE,     &&L_FCmpGT,      &&L_FCmpGE,      &&L_Trunc,
      &&L_Move,       &&L_FPTrunc,     &&L_SIToFP,      &&L_FPToSI,
      &&L_CallBuiltin, &&L_Call,       &&L_ICall,       &&L_Ret,
      &&L_RetVoid,    &&L_Br,          &&L_BrProf,      &&L_CondBr,
      &&L_CondBrProf,
      &&L_CmpBrEQ,    &&L_CmpBrNE,     &&L_CmpBrSLT,    &&L_CmpBrSLE,
      &&L_CmpBrSGT,   &&L_CmpBrSGE,    &&L_FCmpBrEQ,    &&L_FCmpBrNE,
      &&L_FCmpBrLT,   &&L_FCmpBrLE,    &&L_FCmpBrGT,    &&L_FCmpBrGE,
      &&L_Malloc,     &&L_Calloc,      &&L_Realloc,
      &&L_Free,       &&L_Memset,      &&L_Memcpy,      &&L_TrapNoTerm,
      &&L_StackLoad2, &&L_NopN,
      &&L_StackFieldLoadFast, &&L_StackFieldStoreFast,
      &&L_StackFieldLoadInstr, &&L_StackFieldStoreInstr,
      &&L_StackFieldAddr,      &&L_StackIndexAddr2,
      &&L_AddStackStore,       &&L_SubStackStore,   &&L_FAddStackStore,
      &&L_FSubStackStore,      &&L_FMulStackStore,
      &&L_StackFieldChainLoadFast, &&L_StackFieldChainLoadInstr,
      &&L_StackIndexFieldLoadFast, &&L_StackIndexFieldLoadInstr,
      &&L_StackIndexFieldAddr, &&L_StackLoad2FMul,  &&L_NopStackStore,
  };
  static_assert(sizeof(Labels) / sizeof(Labels[0]) ==
                    static_cast<unsigned>(BCOp::NumOps_),
                "dispatch table out of sync with BCOp");
  VM_NEXT(); // Enter the threaded loop.
#else
#define VM_CASE(OP) case BCOp::OP:
#define VM_NEXT() break

  for (;;) {
    D = Code + PC;
    ++Instr;
    Cyc += D->Cost;
    if (Instr > Budget)
      goto out;
    ++PC;
    switch (D->Op) {
#endif

  // -- Memory: measurement-mode (Fast) opcodes -----------------------------

#define VM_CHECK_ADDR(ADDR, BYTES, WHAT)                                     \
  do {                                                                       \
    if ((ADDR)-NullGuard >= FuncAddrBase - NullGuard) {                      \
      trap(formatString(WHAT " at invalid address 0x%llx",                   \
                        static_cast<unsigned long long>(ADDR)));             \
      goto out;                                                              \
    }                                                                        \
    if ((ADDR) + (BYTES) > MemSize) {                                        \
      SM.ensureMem((ADDR) + (BYTES));                                        \
      VM_REFRESH_MEM();                                                      \
    }                                                                        \
  } while (0)

// Shared tail of the un-instrumented load/store opcodes: stack accesses
// are free; others count, pay the issue cycle, and go through the cache
// (inline first-level hit probe; out-of-line full walk on miss or
// straddle — inlining the walk at every site bloats the dispatch loop).
// The _W form takes the width and float flag explicitly for chain
// opcodes whose intermediate access differs from the Bytes/Flags fields
// (which describe the chain's final access).
#define VM_FAST_SIM_W(ADDR, BYTES, ISFP, ISSTORE, CTR)                       \
  do {                                                                       \
    if (!((ADDR) >= StkBase && (ADDR) < StkLimit)) {                         \
      ++CTR;                                                                 \
      ++Cyc;                                                                 \
      if (SimCache) {                                                        \
        if (Cache.tryFirstLevelHit(ADDR, BYTES, ISFP)) {                     \
          ++FH;                                                              \
        } else {                                                             \
          CacheAccessResult A = Cache.access(ADDR, BYTES, ISSTORE, ISFP);    \
          Cyc += A.Stall;                                                    \
          StallC += A.Stall;                                                 \
        }                                                                    \
      }                                                                      \
    }                                                                        \
  } while (0)

#define VM_FAST_SIM(ADDR, ISSTORE, CTR)                                      \
  VM_FAST_SIM_W(ADDR, D->Bytes, D->Flags & BCF_Float, ISSTORE, CTR)

#define VM_DO_LOAD(ADDR)                                                     \
  do {                                                                       \
    VM_CHECK_ADDR(ADDR, D->Bytes, "load");                                   \
    Reg R;                                                                   \
    if (D->Flags & BCF_Float)                                                \
      R.F = vmLoadFloat(MemBase + (ADDR), D->Bytes);                         \
    else                                                                     \
      R.I = vmLoadInt(MemBase + (ADDR), D->Bytes,                            \
                      D->Flags & BCF_SignExtend);                            \
    Frame[D->Dst] = R;                                                       \
  } while (0)

// VSLOT is the frame slot holding the stored value (B for the plain and
// field forms, Dst for the index-fused forms where B is the index).
#define VM_DO_STORE_FROM(ADDR, VSLOT)                                        \
  do {                                                                       \
    VM_CHECK_ADDR(ADDR, D->Bytes, "store");                                  \
    Reg V = Frame[VSLOT];                                                    \
    if (D->Flags & BCF_Float)                                                \
      vmStoreFloat(MemBase + (ADDR), D->Bytes, V.F);                         \
    else                                                                     \
      vmStoreInt(MemBase + (ADDR), D->Bytes, V.I);                           \
  } while (0)

#define VM_DO_STORE(ADDR) VM_DO_STORE_FROM(ADDR, D->B)

  VM_CASE(Nop) { VM_NEXT(); }

  VM_CASE(LoadFast) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I);
    VM_DO_LOAD(Addr);
    VM_FAST_SIM(Addr, false, Ld);
    VM_NEXT();
  }

  VM_CASE(StoreFast) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I);
    VM_DO_STORE(Addr);
    VM_FAST_SIM(Addr, true, St);
    VM_NEXT();
  }

  VM_CASE(LoadInstr) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I);
    VM_DO_LOAD(Addr);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, false,
                BF.Access[D->C], Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  VM_CASE(StoreInstr) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I);
    VM_DO_STORE(Addr);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, true, BF.Access[D->C],
                Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  // Accesses proven at compile time to target the current frame (the
  // address operand is this function's alloca, access in-bounds): no
  // trap is possible and neither engine simulates stack accesses, so
  // the handler is just the move. Entry's ensureMem(StackTop) keeps
  // MemBase valid for the whole frame.

  VM_CASE(StackLoad) {
    const uint8_t *P =
        MemBase + MemFrameBase + static_cast<uint64_t>(D->Extra);
    Reg R;
    if (D->Flags & BCF_Float)
      R.F = vmLoadFloat(P, D->Bytes);
    else
      R.I = vmLoadInt(P, D->Bytes, D->Flags & BCF_SignExtend);
    Frame[D->Dst] = R;
    VM_NEXT();
  }

  VM_CASE(StackStore) {
    uint8_t *P = MemBase + MemFrameBase + static_cast<uint64_t>(D->Extra);
    Reg V = Frame[D->B];
    if (D->Flags & BCF_Float)
      vmStoreFloat(P, D->Bytes, V.F);
    else
      vmStoreInt(P, D->Bytes, V.I);
    VM_NEXT();
  }

  // Two stack loads in one dispatch: the first's width/flags sit in the
  // low nibble / low flag pair, the second's in the high ones. The
  // walker's between-instruction budget check is replayed between the
  // halves (both loads have BaseCost 0 — pinned at fusion time).
  VM_CASE(StackLoad2) {
    const uint8_t *P1 =
        MemBase + MemFrameBase + static_cast<uint64_t>(D->Extra);
    Reg R1;
    if (D->Flags & BCF_Float)
      R1.F = vmLoadFloat(P1, D->Bytes & 15);
    else
      R1.I = vmLoadInt(P1, D->Bytes & 15, D->Flags & BCF_SignExtend);
    Frame[D->Dst] = R1;
    ++Instr;
    if (Instr > Budget)
      goto out;
    const uint8_t *P2 = MemBase + MemFrameBase + D->B;
    Reg R2;
    if (D->Flags & (BCF_Float << 2))
      R2.F = vmLoadFloat(P2, D->Bytes >> 4);
    else
      R2.I = vmLoadInt(P2, D->Bytes >> 4, D->Flags & (BCF_SignExtend << 2));
    Frame[static_cast<int32_t>(D->A)] = R2;
    VM_NEXT();
  }

  // A consecutive same-cost Nops. The dispatch prologue counted and
  // charged the head; the rest are counted and charged here, stopping
  // exactly where the walker's per-instruction budget check would.
  VM_CASE(NopN) {
    uint64_t Rem = D->A - 1;
    uint64_t Left = Budget - Instr; // Prologue ensured Instr <= Budget.
    if (Rem > Left) {
      Instr += Left + 1;
      Cyc += (Left + 1) * D->Cost;
      goto out;
    }
    Instr += Rem;
    Cyc += Rem * D->Cost;
    VM_NEXT();
  }

  // "p->f" with p an in-frame local: stack pointer load (free, never
  // simulated) + field address + access — three instructions in one
  // dispatch. The two budget-check replays charge the costs pinned at
  // fusion time (load 0, address 1, access 0); the field-address
  // arithmetic itself is pure, so running it after the checks is not
  // observable.
#define VM_STACK_FIELD_ADDR()                                                \
  uint64_t Ptr;                                                              \
  std::memcpy(&Ptr, MemBase + MemFrameBase + D->B, 8);                       \
  ++Instr;                                                                   \
  ++Cyc;                                                                     \
  if (Instr > Budget)                                                        \
    goto out;                                                                \
  ++Instr;                                                                   \
  if (Instr > Budget)                                                        \
    goto out;                                                                \
  uint64_t Addr = Ptr + static_cast<uint64_t>(D->Extra)

  VM_CASE(StackFieldLoadFast) {
    VM_STACK_FIELD_ADDR();
    VM_DO_LOAD(Addr);
    VM_FAST_SIM(Addr, false, Ld);
    VM_NEXT();
  }

  VM_CASE(StackFieldStoreFast) {
    VM_STACK_FIELD_ADDR();
    VM_DO_STORE_FROM(Addr, D->Dst);
    VM_FAST_SIM(Addr, true, St);
    VM_NEXT();
  }

  VM_CASE(StackFieldLoadInstr) {
    VM_STACK_FIELD_ADDR();
    VM_DO_LOAD(Addr);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, false,
                BF.Access[D->C], Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  VM_CASE(StackFieldStoreInstr) {
    VM_STACK_FIELD_ADDR();
    VM_DO_STORE_FROM(Addr, D->Dst);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, true, BF.Access[D->C],
                Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  // "&p->f" with p an in-frame local and the address kept live: stack
  // pointer load + field address in one dispatch. The replayed budget
  // check charges the address half's pinned cost of 1.
  VM_CASE(StackFieldAddr) {
    uint64_t Ptr;
    std::memcpy(&Ptr, MemBase + MemFrameBase + D->B, 8);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    Frame[D->Dst].I =
        static_cast<int64_t>(Ptr + static_cast<uint64_t>(D->Extra));
    VM_NEXT();
  }

  // "x = a <op> b" with x a register-promoted local: binary op + stack
  // store of its (otherwise dead) result in one dispatch. The store
  // half replays the budget check before the memory write, exactly
  // where the walker checks between the two instructions.

#define VM_BIN_STACK_STORE_INT(EXPR)                                         \
  do {                                                                       \
    int64_t V = (EXPR);                                                      \
    ++Instr;                                                                 \
    if (Instr > Budget)                                                      \
      goto out;                                                              \
    vmStoreInt(MemBase + MemFrameBase + D->C, D->Bytes, V);                  \
    VM_NEXT();                                                               \
  } while (0)

#define VM_BIN_STACK_STORE_FP(EXPR)                                         \
  do {                                                                       \
    double V = (EXPR);                                                       \
    ++Instr;                                                                 \
    if (Instr > Budget)                                                      \
      goto out;                                                              \
    vmStoreFloat(MemBase + MemFrameBase + D->C, D->Bytes, V);                \
    VM_NEXT();                                                               \
  } while (0)

  VM_CASE(AddStackStore) {
    VM_BIN_STACK_STORE_INT(static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) +
        static_cast<uint64_t>(Frame[D->B].I)));
  }

  VM_CASE(SubStackStore) {
    VM_BIN_STACK_STORE_INT(static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) -
        static_cast<uint64_t>(Frame[D->B].I)));
  }

  VM_CASE(FAddStackStore) {
    VM_BIN_STACK_STORE_FP(Frame[D->A].F + Frame[D->B].F);
  }

  VM_CASE(FSubStackStore) {
    VM_BIN_STACK_STORE_FP(Frame[D->A].F - Frame[D->B].F);
  }

  VM_CASE(FMulStackStore) {
    VM_BIN_STACK_STORE_FP(Frame[D->A].F * Frame[D->B].F);
  }

  // "&a[i]" with a and i both in-frame locals: base load + index load +
  // element address in one dispatch. The two budget-check replays
  // charge the pinned costs (base load 0, index load 0, address 1); the
  // index half keeps its width and sign-extension in Bytes/Flags.
  VM_CASE(StackIndexAddr2) {
    uint64_t Base;
    std::memcpy(&Base, MemBase + MemFrameBase + D->A, 8);
    ++Instr;
    if (Instr > Budget)
      goto out;
    int64_t Index = vmLoadInt(MemBase + MemFrameBase + D->B, D->Bytes,
                              D->Flags & BCF_SignExtend);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    Frame[D->Dst].I = static_cast<int64_t>(
        Base + static_cast<uint64_t>(Index) * static_cast<uint64_t>(D->Extra));
    VM_NEXT();
  }

  // "x = p->f->g" with p an in-frame local: five instructions, two
  // simulated accesses, one dispatch. Costs replay as 0+1+0+1+0; the
  // intermediate access (trap check, load, simulation) runs before the
  // second field address's replayed budget check, exactly where the
  // walker executes it. The chased pointer is held in a local because
  // VM_CHECK_ADDR may grow memory and move MemBase.
  VM_CASE(StackFieldChainLoadFast) {
    uint64_t Ptr;
    std::memcpy(&Ptr, MemBase + MemFrameBase + D->B, 8);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out; // Before the first field address.
    ++Instr;
    if (Instr > Budget)
      goto out; // Before the intermediate load.
    uint64_t Addr1 = Ptr + (static_cast<uint64_t>(D->Extra) & 0xffffffff);
    VM_CHECK_ADDR(Addr1, 8, "load");
    uint64_t Chased;
    std::memcpy(&Chased, MemBase + Addr1, 8);
    VM_FAST_SIM_W(Addr1, 8, false, false, Ld);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out; // Before the second field address.
    ++Instr;
    if (Instr > Budget)
      goto out; // Before the final load.
    uint64_t Addr2 = Chased + (static_cast<uint64_t>(D->Extra) >> 32);
    VM_DO_LOAD(Addr2);
    VM_FAST_SIM(Addr2, false, Ld);
    VM_NEXT();
  }

  VM_CASE(StackFieldChainLoadInstr) {
    uint64_t Ptr;
    std::memcpy(&Ptr, MemBase + MemFrameBase + D->B, 8);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    ++Instr;
    if (Instr > Budget)
      goto out;
    uint64_t Addr1 = Ptr + (static_cast<uint64_t>(D->Extra) & 0xffffffff);
    VM_CHECK_ADDR(Addr1, 8, "load");
    uint64_t Chased;
    std::memcpy(&Chased, MemBase + Addr1, 8);
    instrAccess(Addr1, 8, false, false, BF.Access[D->C], Cyc, StallC, Ld,
                St);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    ++Instr;
    if (Instr > Budget)
      goto out;
    uint64_t Addr2 = Chased + (static_cast<uint64_t>(D->Extra) >> 32);
    VM_DO_LOAD(Addr2);
    instrAccess(Addr2, D->Bytes, D->Flags & BCF_Float, false,
                BF.Access[D->C + 1], Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  // "x = a[i].f" with a and i in-frame locals: five instructions, one
  // simulated access, one dispatch. Costs replay as 0+0+1+1+0 (pinned
  // at fusion time); the address arithmetic is pure, so folding it past
  // the replayed checks is not observable.
  VM_CASE(StackIndexFieldLoadFast) {
    uint64_t Base;
    std::memcpy(&Base, MemBase + MemFrameBase + D->A, 8);
    ++Instr;
    if (Instr > Budget)
      goto out; // Before the index load.
    uint64_t Index;
    std::memcpy(&Index, MemBase + MemFrameBase + D->B, 8);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out; // Before the element address.
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out; // Before the field address.
    ++Instr;
    if (Instr > Budget)
      goto out; // Before the load.
    uint64_t Addr = Base +
                    Index * (static_cast<uint64_t>(D->Extra) & 0xffffffff) +
                    (static_cast<uint64_t>(D->Extra) >> 32);
    VM_DO_LOAD(Addr);
    VM_FAST_SIM(Addr, false, Ld);
    VM_NEXT();
  }

  VM_CASE(StackIndexFieldLoadInstr) {
    uint64_t Base;
    std::memcpy(&Base, MemBase + MemFrameBase + D->A, 8);
    ++Instr;
    if (Instr > Budget)
      goto out;
    uint64_t Index;
    std::memcpy(&Index, MemBase + MemFrameBase + D->B, 8);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    ++Instr;
    if (Instr > Budget)
      goto out;
    uint64_t Addr = Base +
                    Index * (static_cast<uint64_t>(D->Extra) & 0xffffffff) +
                    (static_cast<uint64_t>(D->Extra) >> 32);
    VM_DO_LOAD(Addr);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, false,
                BF.Access[D->C], Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  // "&a[i].f" kept live: the same chain minus the access. Costs replay
  // as 0 + 0 + 1 + 1.
  VM_CASE(StackIndexFieldAddr) {
    uint64_t Base;
    std::memcpy(&Base, MemBase + MemFrameBase + D->A, 8);
    ++Instr;
    if (Instr > Budget)
      goto out;
    uint64_t Index;
    std::memcpy(&Index, MemBase + MemFrameBase + D->B, 8);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    Frame[D->Dst].I = static_cast<int64_t>(
        Base + Index * (static_cast<uint64_t>(D->Extra) & 0xffffffff) +
        (static_cast<uint64_t>(D->Extra) >> 32));
    VM_NEXT();
  }

  // "x * y" with x and y double locals: two stack loads + FMul in one
  // dispatch. Costs replay as 0 + 0 + 1.
  VM_CASE(StackLoad2FMul) {
    double X;
    std::memcpy(&X, MemBase + MemFrameBase + D->A, 8);
    ++Instr;
    if (Instr > Budget)
      goto out;
    double Y;
    std::memcpy(&Y, MemBase + MemFrameBase + D->B, 8);
    ++Instr;
    ++Cyc;
    if (Instr > Budget)
      goto out;
    Frame[D->Dst].F = X * Y;
    VM_NEXT();
  }

  // Singleton Nop (mid-block alloca placeholder) + stack store:
  // "int x = init;". The store half (cost 0, pinned) replays the budget
  // check before the write.
  VM_CASE(NopStackStore) {
    ++Instr;
    if (Instr > Budget)
      goto out;
    Reg V = Frame[D->B];
    uint8_t *P = MemBase + MemFrameBase + static_cast<uint64_t>(D->Extra);
    if (D->Flags & BCF_Float)
      vmStoreFloat(P, D->Bytes, V.F);
    else
      vmStoreInt(P, D->Bytes, V.I);
    VM_NEXT();
  }

  // -- Superinstructions: fused field-address + access ---------------------
  //
  // The dispatch prologue counted and charged the field-address half;
  // the second half counts the access and replays the walker's
  // between-instruction budget check before executing it (an access
  // DInst has BaseCost 0, so there is nothing more to charge).

#define VM_FUSED_SECOND_HALF()                                               \
  do {                                                                       \
    ++Instr;                                                                 \
    if (Instr > Budget)                                                      \
      goto out;                                                              \
  } while (0)

  VM_CASE(FieldLoadFast) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I) +
                    static_cast<uint64_t>(D->Extra);
    VM_FUSED_SECOND_HALF();
    VM_DO_LOAD(Addr);
    VM_FAST_SIM(Addr, false, Ld);
    VM_NEXT();
  }

  VM_CASE(FieldStoreFast) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I) +
                    static_cast<uint64_t>(D->Extra);
    VM_FUSED_SECOND_HALF();
    VM_DO_STORE(Addr);
    VM_FAST_SIM(Addr, true, St);
    VM_NEXT();
  }

  VM_CASE(FieldLoadInstr) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I) +
                    static_cast<uint64_t>(D->Extra);
    VM_FUSED_SECOND_HALF();
    VM_DO_LOAD(Addr);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, false,
                BF.Access[D->C], Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  VM_CASE(FieldStoreInstr) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I) +
                    static_cast<uint64_t>(D->Extra);
    VM_FUSED_SECOND_HALF();
    VM_DO_STORE(Addr);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, true, BF.Access[D->C],
                Cyc, StallC, Ld, St);
    VM_NEXT();
  }

#define VM_INDEX_ADDR()                                                      \
  (static_cast<uint64_t>(Frame[D->A].I) +                                    \
   static_cast<uint64_t>(Frame[D->B].I) * static_cast<uint64_t>(D->Extra))

  VM_CASE(IndexLoadFast) {
    uint64_t Addr = VM_INDEX_ADDR();
    VM_FUSED_SECOND_HALF();
    VM_DO_LOAD(Addr);
    VM_FAST_SIM(Addr, false, Ld);
    VM_NEXT();
  }

  VM_CASE(IndexStoreFast) {
    uint64_t Addr = VM_INDEX_ADDR();
    VM_FUSED_SECOND_HALF();
    VM_DO_STORE_FROM(Addr, D->Dst);
    VM_FAST_SIM(Addr, true, St);
    VM_NEXT();
  }

  VM_CASE(IndexLoadInstr) {
    uint64_t Addr = VM_INDEX_ADDR();
    VM_FUSED_SECOND_HALF();
    VM_DO_LOAD(Addr);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, false,
                BF.Access[D->C], Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  VM_CASE(IndexStoreInstr) {
    uint64_t Addr = VM_INDEX_ADDR();
    VM_FUSED_SECOND_HALF();
    VM_DO_STORE_FROM(Addr, D->Dst);
    instrAccess(Addr, D->Bytes, D->Flags & BCF_Float, true, BF.Access[D->C],
                Cyc, StallC, Ld, St);
    VM_NEXT();
  }

  // -- Address arithmetic and ALU ops --------------------------------------
  //
  // Integer arithmetic wraps modulo 2^64 (DInst contract): computed in
  // uint64_t so there is no signed-overflow UB on either engine.

  VM_CASE(FieldAddr) {
    Frame[D->Dst].I = static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) + static_cast<uint64_t>(D->Extra));
    VM_NEXT();
  }

  VM_CASE(IndexAddr) {
    Frame[D->Dst].I = static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) +
        static_cast<uint64_t>(Frame[D->B].I) * static_cast<uint64_t>(D->Extra));
    VM_NEXT();
  }

  VM_CASE(Add) {
    Frame[D->Dst].I = static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) +
        static_cast<uint64_t>(Frame[D->B].I));
    VM_NEXT();
  }

  VM_CASE(Sub) {
    Frame[D->Dst].I = static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) -
        static_cast<uint64_t>(Frame[D->B].I));
    VM_NEXT();
  }

  VM_CASE(Mul) {
    Frame[D->Dst].I = static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) *
        static_cast<uint64_t>(Frame[D->B].I));
    VM_NEXT();
  }

  VM_CASE(SDiv) {
    int64_t AV = Frame[D->A].I, BV = Frame[D->B].I;
    if (BV == 0) {
      trap("integer division by zero");
      goto out;
    }
    if (AV == INT64_MIN && BV == -1) {
      trap("integer division overflow");
      goto out;
    }
    Frame[D->Dst].I = AV / BV;
    VM_NEXT();
  }

  VM_CASE(SRem) {
    int64_t AV = Frame[D->A].I, BV = Frame[D->B].I;
    if (BV == 0) {
      trap("integer remainder by zero");
      goto out;
    }
    Frame[D->Dst].I = BV == -1 ? 0 : AV % BV;
    VM_NEXT();
  }

  VM_CASE(And) {
    Frame[D->Dst].I = Frame[D->A].I & Frame[D->B].I;
    VM_NEXT();
  }

  VM_CASE(Or) {
    Frame[D->Dst].I = Frame[D->A].I | Frame[D->B].I;
    VM_NEXT();
  }

  VM_CASE(Xor) {
    Frame[D->Dst].I = Frame[D->A].I ^ Frame[D->B].I;
    VM_NEXT();
  }

  VM_CASE(Shl) {
    Frame[D->Dst].I = static_cast<int64_t>(
        static_cast<uint64_t>(Frame[D->A].I) << (Frame[D->B].I & 63));
    VM_NEXT();
  }

  VM_CASE(AShr) {
    Frame[D->Dst].I = Frame[D->A].I >> (Frame[D->B].I & 63);
    VM_NEXT();
  }

  VM_CASE(FAdd) {
    Frame[D->Dst].F = Frame[D->A].F + Frame[D->B].F;
    VM_NEXT();
  }

  VM_CASE(FSub) {
    Frame[D->Dst].F = Frame[D->A].F - Frame[D->B].F;
    VM_NEXT();
  }

  VM_CASE(FMul) {
    Frame[D->Dst].F = Frame[D->A].F * Frame[D->B].F;
    VM_NEXT();
  }

  VM_CASE(FDiv) {
    Frame[D->Dst].F = Frame[D->A].F / Frame[D->B].F;
    VM_NEXT();
  }

#define VM_CMP(OP, FIELD, REL)                                               \
  VM_CASE(OP) {                                                              \
    Frame[D->Dst].I = Frame[D->A].FIELD REL Frame[D->B].FIELD ? 1 : 0;       \
    VM_NEXT();                                                               \
  }
  VM_CMP(ICmpEQ, I, ==)
  VM_CMP(ICmpNE, I, !=)
  VM_CMP(ICmpSLT, I, <)
  VM_CMP(ICmpSLE, I, <=)
  VM_CMP(ICmpSGT, I, >)
  VM_CMP(ICmpSGE, I, >=)
  VM_CMP(FCmpEQ, F, ==)
  VM_CMP(FCmpNE, F, !=)
  VM_CMP(FCmpLT, F, <)
  VM_CMP(FCmpLE, F, <=)
  VM_CMP(FCmpGT, F, >)
  VM_CMP(FCmpGE, F, >=)
#undef VM_CMP

  VM_CASE(Trunc) {
    uint64_t Mask = (1ull << D->Extra) - 1;
    uint64_t U = static_cast<uint64_t>(Frame[D->A].I) & Mask;
    if (D->Extra > 1 && (U & (1ull << (D->Extra - 1))))
      U |= ~Mask;
    Frame[D->Dst].I = static_cast<int64_t>(U);
    VM_NEXT();
  }

  VM_CASE(Move) {
    Frame[D->Dst] = Frame[D->A];
    VM_NEXT();
  }

  VM_CASE(FPTrunc) {
    Frame[D->Dst].F =
        static_cast<double>(static_cast<float>(Frame[D->A].F));
    VM_NEXT();
  }

  VM_CASE(SIToFP) {
    double F = static_cast<double>(Frame[D->A].I);
    if (D->Extra == 32)
      F = static_cast<float>(F);
    Frame[D->Dst].F = F;
    VM_NEXT();
  }

  VM_CASE(FPToSI) {
    // DInst contract: NaN -> 0, out-of-range saturates (the host cast
    // would be UB).
    double F = Frame[D->A].F;
    int64_t R;
    if (F != F)
      R = 0;
    else if (F >= 9223372036854775808.0)
      R = INT64_MAX;
    else if (F < -9223372036854775808.0)
      R = INT64_MIN;
    else
      R = static_cast<int64_t>(F);
    Frame[D->Dst].I = R;
    VM_NEXT();
  }

  // -- Calls and returns ---------------------------------------------------

  VM_CASE(CallBuiltin) {
    CallSide &S = BF.Calls[D->C];
    Reg R = callBuiltin(S.Builtin, S.Callee, BF.ArgPool.data() + D->A, D->B,
                        Frame);
    if (D->Dst >= 0)
      Frame[D->Dst] = R;
    if (Result.Trapped)
      goto out;
    VM_NEXT();
  }

  VM_CASE(Call) {
    CallSide &S = BF.Calls[D->C];
    VM_SYNC_OUT();
    Reg R = callFunction(S.Callee, S.CalleeIdx, BF.ArgPool.data() + D->A,
                         D->B, Frame, FrameBase, Depth);
    VM_SYNC_IN();
    VM_REFRESH_MEM(); // Callee stack/heap growth may have moved Mem.
    if (D->Dst >= 0)
      Frame[D->Dst] = R;
    if (Result.Trapped)
      goto out;
    VM_NEXT();
  }

  VM_CASE(ICall) {
    uint64_t Target =
        static_cast<uint64_t>(Frame[static_cast<uint32_t>(D->Extra)].I);
    uint64_t Rel = Target - FuncAddrBase;
    if (Target < FuncAddrBase || (Rel & 15) != 0 ||
        (Rel >> 4) >= FuncList.size()) {
      trap("indirect call through a non-function pointer");
      goto out;
    }
    uint32_t FIdx = static_cast<uint32_t>(Rel >> 4);
    VM_SYNC_OUT();
    Reg R = callFunction(FuncList[FIdx], FIdx, BF.ArgPool.data() + D->A,
                         D->B, Frame, FrameBase, Depth);
    VM_SYNC_IN();
    VM_REFRESH_MEM();
    if (D->Dst >= 0)
      Frame[D->Dst] = R;
    if (Result.Trapped)
      goto out;
    VM_NEXT();
  }

  VM_CASE(Ret) {
    RetVal = Frame[D->A];
    goto out;
  }

  VM_CASE(RetVoid) { goto out; }

  // -- Branches ------------------------------------------------------------

  VM_CASE(Br) {
    PC = D->B;
    VM_NEXT();
  }

  VM_CASE(BrProf) {
    BranchSide &S = BF.Branches[D->C];
    if (!S.Edge0)
      S.Edge0 = Opts.Profile->edgeCounter(S.From, S.To0);
    ++*S.Edge0;
    PC = D->B;
    VM_NEXT();
  }

  VM_CASE(CondBr) {
    PC = Frame[D->A].I != 0 ? D->B : D->C;
    VM_NEXT();
  }

  VM_CASE(CondBrProf) {
    BranchSide &S = BF.Branches[static_cast<size_t>(D->Extra)];
    if (Frame[D->A].I != 0) {
      if (!S.Edge0)
        S.Edge0 = Opts.Profile->edgeCounter(S.From, S.To0);
      ++*S.Edge0;
      PC = D->B;
    } else {
      if (!S.Edge1)
        S.Edge1 = Opts.Profile->edgeCounter(S.From, S.To1);
      ++*S.Edge1;
      PC = D->C;
    }
    VM_NEXT();
  }

  // Fused compare + conditional branch. The dispatch prologue counted
  // and charged the compare; the branch half replays the walker's
  // between-instruction budget check and charges its own BaseCost
  // (carried in Bytes). The compare's dead result slot (single use, and
  // that use is this branch) is not written.

#define VM_CMPBR(OP, FIELD, REL)                                             \
  VM_CASE(OP) {                                                              \
    bool Taken = Frame[D->A].FIELD REL Frame[D->B].FIELD;                    \
    ++Instr;                                                                 \
    Cyc += D->Bytes;                                                         \
    if (Instr > Budget)                                                      \
      goto out;                                                              \
    PC = Taken ? D->C : static_cast<uint32_t>(D->Extra);                     \
    VM_NEXT();                                                               \
  }
  VM_CMPBR(CmpBrEQ, I, ==)
  VM_CMPBR(CmpBrNE, I, !=)
  VM_CMPBR(CmpBrSLT, I, <)
  VM_CMPBR(CmpBrSLE, I, <=)
  VM_CMPBR(CmpBrSGT, I, >)
  VM_CMPBR(CmpBrSGE, I, >=)
  VM_CMPBR(FCmpBrEQ, F, ==)
  VM_CMPBR(FCmpBrNE, F, !=)
  VM_CMPBR(FCmpBrLT, F, <)
  VM_CMPBR(FCmpBrLE, F, <=)
  VM_CMPBR(FCmpBrGT, F, >)
  VM_CMPBR(FCmpBrGE, F, >=)
#undef VM_CMPBR

  // -- Heap and bulk memory ------------------------------------------------

  VM_CASE(Malloc) {
    Frame[D->Dst].I = static_cast<int64_t>(
        SM.heapAlloc(static_cast<uint64_t>(Frame[D->A].I), 0xAA));
    VM_REFRESH_MEM();
    VM_NEXT();
  }

  VM_CASE(Calloc) {
    uint64_t N = static_cast<uint64_t>(Frame[D->A].I);
    uint64_t Sz = static_cast<uint64_t>(Frame[D->B].I);
    Frame[D->Dst].I = static_cast<int64_t>(SM.heapAlloc(N * Sz, 0x00));
    VM_REFRESH_MEM();
    VM_NEXT();
  }

  VM_CASE(Realloc) {
    uint64_t Old = static_cast<uint64_t>(Frame[D->A].I);
    uint64_t NewSize = static_cast<uint64_t>(Frame[D->B].I);
    uint64_t NewAddr = SM.heapAlloc(NewSize, 0xAA);
    if (Old != 0) {
      auto It = SM.LiveAllocs.find(Old);
      if (It == SM.LiveAllocs.end()) {
        trap("realloc of a non-heap address");
        goto out;
      }
      uint64_t CopyBytes = std::min(It->second, NewSize);
      SM.ensureMem(NewAddr + CopyBytes);
      std::memmove(SM.Mem.data() + NewAddr, SM.Mem.data() + Old, CopyBytes);
      SM.heapFree(Old);
    }
    Frame[D->Dst].I = static_cast<int64_t>(NewAddr);
    VM_REFRESH_MEM();
    VM_NEXT();
  }

  VM_CASE(Free) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I);
    if (!SM.heapFree(Addr)) {
      trap(formatString("free of a non-heap address 0x%llx",
                        static_cast<unsigned long long>(Addr)));
      goto out;
    }
    VM_NEXT();
  }

  VM_CASE(Memset) {
    uint64_t Addr = static_cast<uint64_t>(Frame[D->A].I);
    int64_t Byte = Frame[D->B].I;
    uint64_t Size = static_cast<uint64_t>(Frame[D->C].I);
    VM_CHECK_ADDR(Addr, Size, "memset");
    std::memset(SM.Mem.data() + Addr, static_cast<int>(Byte & 0xff), Size);
    // Touch one cache line per 64 bytes, with the chunk's real width
    // so misaligned streams pay for the lines they straddle.
    if (SimCache) {
      uint64_t Pc = BF.Bulk[static_cast<size_t>(D->Extra)].Pc;
      if (Opts.Attribution)
        Cache.setAccessContext(MissAttribution::MemsetSite, Pc);
      for (uint64_t Off = 0; Off < Size; Off += 64) {
        CacheAccessResult A = Cache.access(
            Addr + Off,
            static_cast<unsigned>(std::min<uint64_t>(64, Size - Off)),
            /*IsStore=*/true, false);
        Cyc += A.Stall;
        if (Opts.Attribution && A.FirstLevelMiss)
          labelPc(Pc);
        if (Opts.Pmu)
          Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/true,
                                  A.FirstLevelMiss, A.Latency);
      }
    }
    VM_NEXT();
  }

  VM_CASE(Memcpy) {
    uint64_t Dst = static_cast<uint64_t>(Frame[D->A].I);
    uint64_t Src = static_cast<uint64_t>(Frame[D->B].I);
    uint64_t Size = static_cast<uint64_t>(Frame[D->C].I);
    VM_CHECK_ADDR(Dst, Size, "memcpy");
    VM_CHECK_ADDR(Src, Size, "memcpy");
    std::memmove(SM.Mem.data() + Dst, SM.Mem.data() + Src, Size);
    if (SimCache) {
      uint64_t Pc = BF.Bulk[static_cast<size_t>(D->Extra)].Pc;
      if (Opts.Attribution)
        Cache.setAccessContext(MissAttribution::MemcpySite, Pc);
      for (uint64_t Off = 0; Off < Size; Off += 64) {
        unsigned W =
            static_cast<unsigned>(std::min<uint64_t>(64, Size - Off));
        CacheAccessResult RdA =
            Cache.access(Src + Off, W, /*IsStore=*/false, false);
        CacheAccessResult WrA =
            Cache.access(Dst + Off, W, /*IsStore=*/true, false);
        Cyc += RdA.Stall + WrA.Stall;
        if (Opts.Attribution && (RdA.FirstLevelMiss || WrA.FirstLevelMiss))
          labelPc(Pc);
        if (Opts.Pmu) {
          Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/false,
                                  RdA.FirstLevelMiss, RdA.Latency);
          Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/true,
                                  WrA.FirstLevelMiss, WrA.Latency);
        }
      }
    }
    VM_NEXT();
  }

  VM_CASE(TrapNoTerm) {
    --Instr; // The fall-through itself is not executed.
    trap("block fell through without a terminator");
    goto out;
  }

#if !SLO_VM_THREADED
    case BCOp::NumOps_:
      SLO_UNREACHABLE("bad bytecode opcode");
    }
  }
#endif

out:
  VM_SYNC_OUT();
  SM.StackTop = MemFrameBase;
  return RetVal;

#undef VM_SYNC_OUT
#undef VM_SYNC_IN
#undef VM_CASE
#undef VM_NEXT
#undef VM_CHECK_ADDR
#undef VM_FAST_SIM
#undef VM_FAST_SIM_W
#undef VM_DO_LOAD
#undef VM_DO_STORE
#undef VM_DO_STORE_FROM
#undef VM_BIN_STACK_STORE_INT
#undef VM_BIN_STACK_STORE_FP
#undef VM_INDEX_ADDR
#undef VM_FUSED_SECOND_HALF
#undef VM_STACK_FIELD_ADDR
#undef VM_REFRESH_MEM
}

RunResult VM::Impl::run(const std::string &EntryName) {
  std::string SpanName = Opts.Trace ? "vm/" + M.getName() : std::string();
  TraceSpan Span(Opts.Trace, SpanName.c_str(), "run");
  const Function *Entry = M.lookupFunction(EntryName);
  if (!Entry || Entry->isDeclaration()) {
    trap("entry function '" + EntryName + "' is not defined");
    return Result;
  }
  layoutAddressSpace(M, Opts.IntParams, SM, GlobalAddr, FuncList, FuncIndex);
  CompiledFns.resize(FuncList.size());
  RegArena.resize(4096);
  CO.Instrument =
      Opts.Attribution != nullptr || Opts.Pmu != nullptr || Opts.Profile;
  CO.Profile = Opts.Profile != nullptr;
  CO.InjectVmBug = Opts.InjectVmBug;

  uint32_t EntryIdx = FuncIndex.at(Entry);
  BCFunction &BF = compiledFunction(EntryIdx);
  ensureArena(static_cast<size_t>(BF.FrameSlots));
  Reg Zero;
  Zero.I = 0;
  std::fill(RegArena.begin(), RegArena.begin() + BF.NumSlots, Zero);
  if (!BF.Consts.empty())
    std::memcpy(RegArena.data() + BF.NumSlots, BF.Consts.data(),
                BF.Consts.size() * sizeof(Reg));
  ArenaTop = static_cast<size_t>(BF.FrameSlots);
  Reg R = executeFunction(BF, 0, 0);

  if (Instructions > Opts.MaxInstructions)
    trap("instruction budget exceeded");
  Result.Instructions = Instructions;
  Result.Cycles = Cycles;
  Result.MemStallCycles = MemStall;
  Result.Loads = NLoads;
  Result.Stores = NStores;
  Result.ExitCode = R.I;
  Result.HeapBytesAllocated = SM.HeapBytesAllocated;
  Result.HeapAllocations = SM.HeapAllocations;
  Result.HeapLiveAllocs = SM.LiveAllocs.size();
  for (const auto &[Addr, Size] : SM.LiveAllocs) {
    (void)Addr;
    Result.HeapLiveBytes += Size;
  }
  Result.L1 = Cache.l1Stats();
  Result.L2 = Cache.l2Stats();
  Result.L3 = Cache.l3Stats();
  Result.FirstLevelMisses = Cache.firstLevelMissEvents();

  if (Opts.Pmu) {
    Opts.Pmu->finishRun();
    if (Opts.Profile) {
      for (const SampledPmu::SiteEstimate &E : Opts.Pmu->estimates()) {
        FieldCacheStats &S = Opts.Profile->fieldStats(
            static_cast<const RecordType *>(E.RecordKey), E.FieldIndex);
        S.Loads += E.Loads;
        S.Stores += E.Stores;
        S.Misses += E.Misses;
        S.TotalLatency += E.TotalLatency;
      }
    }
    if (Opts.Counters)
      Opts.Pmu->publishCounters(*Opts.Counters);
  }

  if (Opts.Counters) {
    CounterRegistry &C = *Opts.Counters;
    C.add("vm.instructions", Result.Instructions);
    C.add("vm.cycles", Result.Cycles);
    C.add("vm.mem_stall_cycles", Result.MemStallCycles);
    C.add("vm.loads", Result.Loads);
    C.add("vm.stores", Result.Stores);
    C.add("vm.heap_allocations", Result.HeapAllocations);
    C.add("vm.heap_bytes", Result.HeapBytesAllocated);
    C.add("vm.heap_leaked_allocs", Result.HeapLiveAllocs);
    C.add("vm.heap_leaked_bytes", Result.HeapLiveBytes);
    uint64_t Compiled = 0, BcInsts = 0, Fused = 0;
    for (const auto &CF : CompiledFns)
      if (CF) {
        ++Compiled;
        BcInsts += CF->Code.size();
        Fused += CF->NumFused;
      }
    C.add("vm.functions_compiled", Compiled);
    C.add("vm.bytecode_insts", BcInsts);
    C.add("vm.superinstructions", Fused);
    C.add("vm.cache_fastpath_hits", FastHits);
    C.add("vm.traps", Result.Trapped ? 1 : 0);
    Cache.publishCounters(C);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

VM::VM(const Module &M, RunOptions Opts)
    : P(std::make_unique<Impl>(M, std::move(Opts))) {}

VM::~VM() = default;

RunResult VM::run(const std::string &EntryName) { return P->run(EntryName); }
