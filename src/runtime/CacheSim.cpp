//===- runtime/CacheSim.cpp - Data cache simulator ------------------------===//

#include "runtime/CacheSim.h"

#include "observability/CounterRegistry.h"

#include <algorithm>
#include <cassert>

using namespace slo;

static unsigned log2Exact(uint64_t V) {
  unsigned S = 0;
  while ((1ull << S) < V)
    ++S;
  assert((1ull << S) == V && "cache geometry must be a power of two");
  return S;
}

/// Largest S with 2^S <= V (V > 0).
static unsigned log2Floor(uint64_t V) {
  assert(V > 0 && "log2Floor of zero");
  unsigned S = 0;
  while ((2ull << S) <= V)
    ++S;
  return S;
}

void CacheSim::Level::configure(const CacheLevelConfig &C) {
  LineShift = log2Exact(C.LineBytes);
  Ways = C.Ways;
  NumSets = C.SizeBytes / (static_cast<uint64_t>(C.LineBytes) * C.Ways);
  if (NumSets == 0)
    NumSets = 1;
  // Round the set count down to a power of two for cheap indexing (the
  // capacity shrinks accordingly for non-power-of-two geometries).
  NumSets = 1ull << log2Floor(NumSets);
  SetShift = log2Exact(NumSets);
  Entries.assign(NumSets * Ways, Way());
  UseCounter = 0;
}

void CacheSim::Level::clear() {
  for (Way &W : Entries)
    W = Way();
  UseCounter = 0;
}

bool CacheSim::Level::touch(uint64_t Addr) {
  uint64_t Line = Addr >> LineShift;
  uint64_t Set = Line & (NumSets - 1);
  uint64_t Tag = Line >> SetShift;
  Way *Base = &Entries[Set * Ways];
  ++UseCounter;
  // One pass finds both a hit and the LRU (or an invalid) victim.
  Way *Victim = Base;
  for (unsigned W = 0; W < Ways; ++W) {
    Way &Candidate = Base[W];
    if (Candidate.Tag == Tag) {
      Candidate.LastUse = UseCounter;
      return true;
    }
    if (Candidate.Tag == InvalidTag) {
      Victim = &Candidate;
    } else if (Victim->Tag != InvalidTag &&
               Candidate.LastUse < Victim->LastUse) {
      Victim = &Candidate;
    }
  }
  Victim->Tag = Tag;
  Victim->LastUse = UseCounter;
  return false;
}

CacheSim::CacheSim(const CacheConfig &Config) : Config(Config) {
  L1.configure(Config.L1);
  L2.configure(Config.L2);
  L3.configure(Config.L3);
}

void CacheSim::reset() {
  L1.clear();
  L2.clear();
  L3.clear();
  L1Stats = CacheLevelStats();
  L2Stats = CacheLevelStats();
  L3Stats = CacheLevelStats();
  FirstLevelMissEvents = 0;
}

void CacheSim::publishCounters(CounterRegistry &Counters) const {
  Counters.add("cachesim.l1.hits", L1Stats.Hits);
  Counters.add("cachesim.l1.misses", L1Stats.Misses);
  Counters.add("cachesim.l2.hits", L2Stats.Hits);
  Counters.add("cachesim.l2.misses", L2Stats.Misses);
  Counters.add("cachesim.l3.hits", L3Stats.Hits);
  Counters.add("cachesim.l3.misses", L3Stats.Misses);
  Counters.add("cachesim.first_level_miss_events", FirstLevelMissEvents);
}

unsigned CacheSim::lookupLine(uint64_t Addr, bool UseL1,
                              bool &FirstLevelMiss) {
  // Look up level by level; the first hit's latency is charged. LRU
  // state below the hit level is refreshed only on the miss path (lazy
  // inclusion).
  if (UseL1) {
    if (L1.touch(Addr)) {
      ++L1Stats.Hits;
      return Config.L1.HitLatency;
    }
    ++L1Stats.Misses;
    FirstLevelMiss = true;
  }
  if (L2.touch(Addr)) {
    ++L2Stats.Hits;
    return Config.L2.HitLatency;
  }
  ++L2Stats.Misses;
  // For FP accesses L2 is the first level (Itanium FP bypasses L1).
  if (!UseL1)
    FirstLevelMiss = true;
  if (L3.touch(Addr)) {
    ++L3Stats.Hits;
    return Config.L3.HitLatency;
  }
  ++L3Stats.Misses;
  return Config.MemoryLatency;
}

CacheAccessResult CacheSim::access(uint64_t Addr, unsigned Bytes,
                                   bool IsStore, bool IsFp) {
  if (Bytes == 0)
    Bytes = 1;
  bool UseL1 = !(IsFp && Config.FpBypassesL1);

  bool FirstLevelMiss = false;
  unsigned Latency = lookupLine(Addr, UseL1, FirstLevelMiss);

  // An access that crosses a line boundary at its first level also fills
  // the line holding its last byte: a second full stateful walk, so both
  // fills land in the level statistics. Where the two spans share a line
  // at an outer level, the second walk naturally hits the line the first
  // walk just filled — no double fill. The access is charged the worse
  // of the two fills and fires at most one first-level miss event (the
  // event a PMU would attribute to the instruction).
  const Level &First = UseL1 ? L1 : L2;
  uint64_t Last = Addr + Bytes - 1;
  if ((Addr >> First.lineShift()) != (Last >> First.lineShift())) {
    unsigned SecondLatency = lookupLine(Last, UseL1, FirstLevelMiss);
    Latency = std::max(Latency, SecondLatency);
  }

  unsigned FirstLevelHit =
      UseL1 ? Config.L1.HitLatency : Config.L2.HitLatency;
  unsigned Stall = Latency > FirstLevelHit ? Latency - FirstLevelHit : 0;
  if (IsStore) {
    unsigned Div = Config.StoreCostDivisor ? Config.StoreCostDivisor : 1;
    Latency = Latency / Div;
    Stall = Stall / Div;
  }
  if (FirstLevelMiss)
    ++FirstLevelMissEvents;
  // The attribution sink sees every access the simulator sees, so the
  // per-site miss counts partition FirstLevelMissEvents exactly.
  if (Sink)
    Sink->recordAccess(CtxSite, CtxPc, IsStore, FirstLevelMiss, Latency);
  CacheAccessResult R;
  R.Latency = Latency;
  R.Stall = Stall;
  R.FirstLevelMiss = FirstLevelMiss;
  return R;
}
