//===- runtime/CacheSim.h - Data cache simulator ---------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, three-level data cache simulator standing in
/// for the Itanium 2 memory hierarchy of the paper's HP rx2600 testbed:
/// L1D 16 KiB / 64 B lines, L2 256 KiB / 128 B lines, L3 6 MiB / 128 B
/// lines (the paper's "6 MB of L2 cache" names the last on-chip level).
/// Floating point loads bypass the first level on Itanium, so their
/// events are counted at the second level ("L2 for floating point values
/// and L1 for everything else", paper §3.2); the simulator models exactly
/// that.
///
/// Accesses carry their byte width: an access whose span crosses a line
/// boundary at its first level touches both lines (both fills show up in
/// the level statistics, and each fill walks outward independently), is
/// charged the worse of the two fills, and counts as at most one
/// first-level miss event — which is what the PMU would attribute to the
/// instruction. Field reordering and
/// splitting are exactly the transformations that move fields onto and
/// off line boundaries, so straddles must cost something or the
/// simulator under-charges the layouts it is supposed to judge.
///
/// The simulator is driven with simulated addresses by the interpreter;
/// it returns a latency in cycles per access and counts the first-level
/// miss events that the advisory tool attributes to structure fields.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_RUNTIME_CACHESIM_H
#define SLO_RUNTIME_CACHESIM_H

#include "observability/MissAttribution.h"

#include <cstdint>
#include <vector>

namespace slo {

class CounterRegistry;

/// Geometry and latency of one cache level.
struct CacheLevelConfig {
  uint64_t SizeBytes = 0;
  unsigned LineBytes = 64;
  unsigned Ways = 4;
  unsigned HitLatency = 1;
};

/// Whole-hierarchy configuration (defaults approximate a 1.5 GHz Itanium
/// 2 "Madison": 16K/64B/4-way L1D at 1 cycle, 256K/128B/8-way L2 at 6
/// cycles, 6M/128B/12-way L3 at 14 cycles, ~210-cycle memory).
struct CacheConfig {
  CacheLevelConfig L1{16 * 1024, 64, 4, 1};
  CacheLevelConfig L2{256 * 1024, 128, 8, 6};
  CacheLevelConfig L3{6 * 1024 * 1024, 128, 12, 14};
  unsigned MemoryLatency = 210;
  /// Itanium: floating point loads/stores bypass L1D.
  bool FpBypassesL1 = true;
  /// Stores retire through the store buffer; they cost
  /// latency / StoreCostDivisor cycles.
  unsigned StoreCostDivisor = 4;

  /// A hierarchy scaled down ~12x (8K/64K/512K) with the same latencies.
  /// The interpreted workloads are ~50x smaller than the paper's SPEC
  /// runs; scaling the caches with the problem sizes preserves which
  /// level each data structure lives in, which is what drives the
  /// paper's results (standard simulation-scaling practice; see
  /// EXPERIMENTS.md).
  static CacheConfig scaledItanium() {
    CacheConfig C;
    C.L1 = {8 * 1024, 64, 4, 1};
    C.L2 = {64 * 1024, 128, 8, 6};
    C.L3 = {512 * 1024, 128, 12, 14};
    C.MemoryLatency = 210;
    return C;
  }
};

/// Result of one simulated access.
struct CacheAccessResult {
  /// Total access latency in cycles (what the PMU's DLAT-style counters
  /// see and the advisor reports). For a line-straddling access this is
  /// the worse of the two fills.
  unsigned Latency = 0;
  /// Pipeline stall cycles charged to the program: the excess of the
  /// latency over the first-level hit latency for this access kind. A
  /// first-level hit is fully pipelined (free); only going further out
  /// stalls, which is how wide in-order machines like Itanium behave.
  unsigned Stall = 0;
  /// Miss at the first level that serves this access kind (the event the
  /// PMU would attribute). At most one per access, even when a straddle
  /// fills two lines.
  bool FirstLevelMiss = false;
};

/// Aggregate statistics per level.
struct CacheLevelStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// The three-level simulator.
class CacheSim {
public:
  explicit CacheSim(const CacheConfig &Config = CacheConfig());

  /// Simulates a data access of \p Bytes bytes at \p Addr. When
  /// [Addr, Addr+Bytes) crosses a line boundary at the access's first
  /// level, both lines are looked up (each fill walking outward as
  /// needed); the reported latency is the worse of the two fills and
  /// FirstLevelMiss fires at most once. Deliberately out-of-line:
  /// inlining the three-level walk into the engines' dispatch loops
  /// measures slower (code bloat and register spills) than the call.
  /// Pair with tryFirstLevelHit for the hit-dominated case.
  CacheAccessResult access(uint64_t Addr, unsigned Bytes, bool IsStore,
                           bool IsFp);

  /// Fast path: attempts to complete a non-straddling access that hits
  /// at its first level, with no attribution sink attached. On success
  /// it performs exactly the state updates access() would (LRU refresh
  /// plus the hit statistic) and returns true — such an access has zero
  /// stall and fires no miss event, so the caller owes nothing further.
  /// On failure nothing has changed and the caller must run the full
  /// access(). IsStore is irrelevant here: the store-buffer divisor
  /// only scales latency, and a first-level hit's stall is zero either
  /// way.
  bool tryFirstLevelHit(uint64_t Addr, unsigned Bytes, bool IsFp) {
    if (Sink)
      return false;
    if (Bytes == 0)
      Bytes = 1;
    bool UseL1 = !(IsFp && Config.FpBypassesL1);
    Level &First = UseL1 ? L1 : L2;
    if (((Addr ^ (Addr + Bytes - 1)) >> First.lineShift()) != 0)
      return false; // Straddle: take the two-walk path.
    if (!First.touchHit(Addr))
      return false;
    ++(UseL1 ? L1Stats : L2Stats).Hits;
    return true;
  }

  const CacheLevelStats &l1Stats() const { return L1Stats; }
  const CacheLevelStats &l2Stats() const { return L2Stats; }
  const CacheLevelStats &l3Stats() const { return L3Stats; }

  /// First-level miss events: at most one per access (what a PMU would
  /// attribute to the instruction). Note L1Stats.Misses can exceed this
  /// because a straddling access may fill two lines.
  uint64_t firstLevelMissEvents() const { return FirstLevelMissEvents; }

  /// Attaches a per-field miss attribution sink: every subsequent access
  /// is recorded against the current attribution context. Null detaches
  /// (the guarded fast path: one branch per access).
  void setMissSink(MissAttribution *S) { Sink = S; }
  MissAttribution *missSink() const { return Sink; }

  /// Sets the attribution context for subsequent accesses: the
  /// (record, field) site and an opaque access-PC token. The driver of
  /// the simulator (the interpreter) updates this before each access.
  void setAccessContext(MissAttribution::SiteId Site, uint64_t Pc) {
    CtxSite = Site;
    CtxPc = Pc;
  }

  /// Publishes the level statistics and the miss-event count into
  /// \p Counters under "cachesim.*".
  void publishCounters(CounterRegistry &Counters) const;

  /// Clears all cache state and statistics.
  void reset();

  const CacheConfig &config() const { return Config; }

private:
  /// One set-associative level.
  class Level {
  public:
    void configure(const CacheLevelConfig &C);
    /// Returns true on hit; on miss the line is filled (LRU victim).
    bool touch(uint64_t Addr);
    /// Hit-only probe: on hit refreshes LRU exactly like touch() and
    /// returns true; on miss returns false with no state changed (no
    /// fill, no use-counter bump), so a subsequent touch() replays the
    /// access identically.
    bool touchHit(uint64_t Addr) {
      uint64_t Line = Addr >> LineShift;
      uint64_t Set = Line & (NumSets - 1);
      uint64_t Tag = Line >> SetShift;
      Way *Base = &Entries[Set * Ways];
      for (unsigned W = 0; W < Ways; ++W) {
        if (Base[W].Tag == Tag) {
          Base[W].LastUse = ++UseCounter;
          return true;
        }
      }
      return false;
    }
    void clear();
    unsigned lineShift() const { return LineShift; }

  private:
    /// An invalid way holds InvalidTag, which no simulated address can
    /// produce (tags are addresses shifted right). 16 bytes, so a 4-way
    /// set scans in one host cache line. Interleaving tag and LRU stamp
    /// beats split arrays here: a probe touches one line, not two.
    static constexpr uint64_t InvalidTag = ~0ull;
    struct Way {
      uint64_t Tag = InvalidTag;
      uint64_t LastUse = 0;
    };
    unsigned LineShift = 6;
    unsigned SetShift = 0; // log2(NumSets), precomputed for indexing.
    uint64_t NumSets = 1;
    unsigned Ways = 1;
    std::vector<Way> Entries; // NumSets * Ways.
    uint64_t UseCounter = 0;
  };

  /// One full hierarchy walk for the line holding \p Addr. A straddling
  /// access runs two walks; where the spans share a line at an outer
  /// level the second walk hits the line the first walk just filled, so
  /// nothing is double-filled.
  unsigned lookupLine(uint64_t Addr, bool UseL1, bool &FirstLevelMiss);

  CacheConfig Config;
  Level L1, L2, L3;
  CacheLevelStats L1Stats, L2Stats, L3Stats;
  uint64_t FirstLevelMissEvents = 0;

  MissAttribution *Sink = nullptr;
  MissAttribution::SiteId CtxSite = MissAttribution::UntypedSite;
  uint64_t CtxPc = 0;
};

} // namespace slo

#endif // SLO_RUNTIME_CACHESIM_H
