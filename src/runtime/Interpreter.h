//===- runtime/Interpreter.h - IR interpreter with cache model -*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a whole-program module under a simulated memory hierarchy.
/// The interpreter plays three roles from the paper's toolchain:
///
///  1. The execution platform (the HP rx2600): "runtime" is reported in
///     simulated cycles (a per-opcode base cost plus cache stalls), which
///     is what the Table 3 performance comparisons use.
///  2. The instrumented binary of the PBO collection phase: it records
///     exact CFG edge counts into a FeedbackFile.
///  3. The PMU + HP Caliper: every load/store through a field address is
///     attributed to its (record, field) with miss and latency counts —
///     exactly by default, or through the SampledPmu emulation (period
///     sampling with jitter and skid) when RunOptions::Pmu is set.
///
/// Heap, stack, and globals live in one flat simulated address space, so
/// layout transformations change real simulated addresses and therefore
/// real cache behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_RUNTIME_INTERPRETER_H
#define SLO_RUNTIME_INTERPRETER_H

#include "ir/Module.h"
#include "profile/FeedbackFile.h"
#include "runtime/CacheSim.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace slo {

class CounterRegistry;
class MissAttribution;
class SampledPmu;
class Tracer;

/// Which execution engine runs the module. Both engines are bit-
/// identical in every observable output (printed values, exit code,
/// cycles, misses, leak census, attribution partitions) — enforced by
/// the engine-parity differential-fuzz oracle — and differ only in wall
/// time: the tree walker is the simple reference implementation; the
/// threaded bytecode VM is the fast tier the benches use.
enum class ExecEngine {
  /// Resolve from the SLO_ENGINE environment variable ("walker" or
  /// "vm"; any other value is a fatal error so a typo can never
  /// silently fall back), defaulting to the walker when unset.
  Auto,
  Walker,
  VM,
};

/// Parses an engine name ("walker" or "vm") as used by the --engine
/// driver flags and the SLO_ENGINE variable. Returns false on any other
/// string.
bool parseEngineName(const std::string &Name, ExecEngine &Out);

/// Resolves Auto against the SLO_ENGINE environment variable; fatal
/// error on an unrecognized value (never a silent fallback).
ExecEngine resolveEngine(ExecEngine E);

/// Execution options.
struct RunOptions {
  /// Values assigned to named integer globals before execution; the
  /// workloads read their problem sizes from such "param_*" globals,
  /// which is how train vs reference inputs are expressed.
  std::map<std::string, int64_t> IntParams;

  /// When set, edge counts and d-cache field events are recorded here
  /// (the PBO collection run). Edge counts are always exact — they come
  /// from instrumentation, not the PMU. Field cache events are exact
  /// unless a sampled PMU is attached (below).
  FeedbackFile *Profile = nullptr;

  /// Simulate the cache hierarchy (and charge stall cycles).
  bool SimulateCache = true;
  CacheConfig Cache;

  /// When set, field d-cache events are collected through the Caliper
  /// stand-in instead of exactly: every simulated access feeds the PMU's
  /// sampled event counters, and at the end of the run the period-scaled
  /// per-field estimates are flushed into Profile (when one is attached).
  /// One SampledPmu per run, like the attribution sink.
  SampledPmu *Pmu = nullptr;

  /// Observability hooks; all default off (null), and the null paths are
  /// single-branch guards so a plain run pays nothing measurable.
  /// When set, every simulated access is attributed to
  /// (record, field, access PC) — exact, unlike the sampled
  /// FeedbackFile attribution — and the per-site miss counts partition
  /// the simulator's first-level miss event total.
  MissAttribution *Attribution = nullptr;
  /// When set, the run records an "interpret/<module>" span.
  Tracer *Trace = nullptr;
  /// When set, run totals and cache level statistics are published under
  /// "interp.*" / "cachesim.*" after the run.
  CounterRegistry *Counters = nullptr;

  /// Execution guards.
  uint64_t MaxInstructions = 4000000000ull;
  unsigned MaxCallDepth = 4096;

  /// Engine selection for runProgram (the Interpreter and VM classes
  /// are their engines regardless of this field).
  ExecEngine Engine = ExecEngine::Auto;

  /// Test hook for the engine-parity oracle: makes the VM deliberately
  /// mis-charge load cycles so the oracle must detect the divergence.
  /// Ignored by the walker.
  bool InjectVmBug = false;
};

/// Everything a run produces.
struct RunResult {
  bool Trapped = false;
  std::string TrapReason;
  int64_t ExitCode = 0;

  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
  uint64_t MemStallCycles = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  CacheLevelStats L1;
  CacheLevelStats L2;
  CacheLevelStats L3;
  /// First-level miss events (at most one per access; the PMU event).
  uint64_t FirstLevelMisses = 0;

  /// Output of the print_i64 / print_f64 library builtins, in order.
  /// Semantic-equivalence tests compare these across transformations.
  std::vector<int64_t> PrintedInts;
  std::vector<double> PrintedFloats;

  uint64_t HeapBytesAllocated = 0;
  uint64_t HeapAllocations = 0;

  /// Heap-leak census at exit: allocations that were never freed, and
  /// their total (alignment-padded) bytes. The differential fuzz oracle
  /// compares these across transform-off/transform-on runs: a rewrite
  /// that drops a free-site rewrite turns a leak-free program into a
  /// leaking one, which output comparison alone cannot see.
  uint64_t HeapLiveAllocs = 0;
  uint64_t HeapLiveBytes = 0;
};

/// Interprets one module. The module must outlive the interpreter.
class Interpreter {
public:
  Interpreter(const Module &M, RunOptions Opts = RunOptions());
  ~Interpreter();
  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;

  /// Executes \p EntryName (default "main") and returns the results.
  RunResult run(const std::string &EntryName = "main");

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

/// Convenience: compile-free execution helper used all over the tests and
/// benches. Runs \p M with \p Opts under the engine Opts.Engine selects
/// (tree walker by default, or the bytecode VM) and returns the result.
RunResult runProgram(const Module &M, RunOptions Opts = RunOptions());

} // namespace slo

#endif // SLO_RUNTIME_INTERPRETER_H
