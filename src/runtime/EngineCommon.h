//===- runtime/EngineCommon.h - Shared execution-engine state --*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State and helpers shared by the two execution engines (the tree
/// walker in Interpreter.cpp and the threaded bytecode VM in VM.cpp).
/// Both engines must produce bit-identical results — output, cycles,
/// misses, leak census, attribution partitions — and the cheapest way to
/// guarantee that for everything address-dependent is to share the code
/// that lays out and mutates the simulated address space. Anything here
/// is engine-agnostic: the engines differ only in how they dispatch
/// instructions, never in what an instruction does to this state.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_RUNTIME_ENGINECOMMON_H
#define SLO_RUNTIME_ENGINECOMMON_H

#include "ir/Module.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace slo {
namespace engine {

/// One runtime value: integers and pointers in I, floats in F.
union Reg {
  int64_t I;
  double F;
};

/// A decode-time-resolved operand: a frame slot index, or an immediate
/// (constants, global addresses, function addresses).
struct Operand {
  int32_t Slot = -1; // >= 0: frame slot; < 0: use Imm.
  Reg Imm{};
};

/// Fetches an operand value.
inline Reg get(const Operand &O, const Reg *Frame) {
  return O.Slot >= 0 ? Frame[O.Slot] : O.Imm;
}

/// Library builtins, resolved from the callee name once at decode time.
enum BuiltinKind : uint16_t {
  BK_NotBuiltin = 0,
  BK_PrintI64,
  BK_PrintF64,
  BK_Sqrt,
  BK_Fabs,
  BK_Exp,
  BK_Log,
  BK_Floor,
  BK_IAbs,
  BK_Unknown, // Declaration with no implementation: traps when called.
};

inline BuiltinKind classifyBuiltin(const std::string &Name) {
  if (Name == "print_i64")
    return BK_PrintI64;
  if (Name == "print_f64")
    return BK_PrintF64;
  if (Name == "f_sqrt")
    return BK_Sqrt;
  if (Name == "f_fabs")
    return BK_Fabs;
  if (Name == "f_exp")
    return BK_Exp;
  if (Name == "f_log")
    return BK_Log;
  if (Name == "f_floor")
    return BK_Floor;
  if (Name == "i_abs")
    return BK_IAbs;
  return BK_Unknown;
}

constexpr uint64_t NullGuard = 4096;          // Addresses below this trap.
constexpr uint64_t FuncAddrBase = 1ull << 48; // Function "addresses".
constexpr uint64_t StackBytes = 16ull << 20;

/// Free-list bucketing: sizes are 16-aligned; exact-size buckets up to
/// SmallFreeMax index a vector, larger sizes hash.
constexpr uint64_t SmallFreeMax = 4096;

/// The simulated flat address space: globals, stack, and a bump-with-
/// free-lists heap, plus the allocation bookkeeping the leak census
/// reads at exit. Every address either engine hands to the cache
/// simulator comes out of this struct, so sharing it makes address
/// parity between the engines structural rather than coincidental.
struct SimMemory {
  std::vector<uint8_t> Mem;
  uint64_t StackBase = 0, StackTop = 0, StackLimit = 0;
  uint64_t HeapBump = 0;
  std::unordered_map<uint64_t, uint64_t> LiveAllocs; // addr -> size
  std::vector<std::vector<uint64_t>> SmallFree;      // [size/16] -> addrs
  std::unordered_map<uint64_t, std::vector<uint64_t>> LargeFree;
  uint64_t HeapBytesAllocated = 0;
  uint64_t HeapAllocations = 0;

  void ensureMem(uint64_t End) {
    if (End > Mem.size())
      Mem.resize(std::max<uint64_t>(End, Mem.size() * 2), 0);
  }

  /// True when [Addr, Addr+Size) is a program-addressable range (and
  /// backing storage exists). False means the engine must trap.
  bool checkAddr(uint64_t Addr, uint64_t Size) {
    if (Addr < NullGuard || Addr >= FuncAddrBase)
      return false;
    ensureMem(Addr + Size);
    return true;
  }

  bool isStackAddress(uint64_t Addr) const {
    return Addr >= StackBase && Addr < StackLimit;
  }

  std::vector<uint64_t> &freeBucket(uint64_t Size) {
    if (Size <= SmallFreeMax)
      return SmallFree[Size / 16];
    return LargeFree[Size];
  }

  uint64_t heapAlloc(uint64_t Size, uint8_t Fill) {
    if (Size == 0)
      Size = 1;
    Size = alignTo(Size, 16);
    uint64_t Addr = 0;
    std::vector<uint64_t> &Bucket = freeBucket(Size);
    if (!Bucket.empty()) {
      Addr = Bucket.back();
      Bucket.pop_back();
    } else {
      Addr = HeapBump;
      HeapBump += Size;
    }
    ensureMem(Addr + Size);
    std::memset(Mem.data() + Addr, Fill, Size);
    LiveAllocs[Addr] = Size;
    HeapBytesAllocated += Size;
    ++HeapAllocations;
    return Addr;
  }

  /// Returns false for a free of a non-heap address (the engine traps).
  /// free(NULL) is a no-op.
  bool heapFree(uint64_t Addr) {
    if (Addr == 0)
      return true;
    auto It = LiveAllocs.find(Addr);
    if (It == LiveAllocs.end())
      return false;
    freeBucket(It->second).push_back(Addr);
    LiveAllocs.erase(It);
    return true;
  }

  int64_t readInt(uint64_t Addr, unsigned Bytes, bool SignExtend) const {
    uint64_t Raw = 0;
    std::memcpy(&Raw, Mem.data() + Addr, Bytes);
    if (Bytes == 8)
      return static_cast<int64_t>(Raw);
    if (SignExtend) {
      uint64_t SignBit = 1ull << (Bytes * 8 - 1);
      if (Raw & SignBit)
        Raw |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(Raw);
  }

  void writeInt(uint64_t Addr, unsigned Bytes, int64_t V) {
    std::memcpy(Mem.data() + Addr, &V, Bytes);
  }

  double readFloat(uint64_t Addr, unsigned Bytes) const {
    if (Bytes == 4) {
      float F;
      std::memcpy(&F, Mem.data() + Addr, 4);
      return F;
    }
    double D;
    std::memcpy(&D, Mem.data() + Addr, 8);
    return D;
  }

  void writeFloat(uint64_t Addr, unsigned Bytes, double V) {
    if (Bytes == 4) {
      float F = static_cast<float>(V);
      std::memcpy(Mem.data() + Addr, &F, 4);
      return;
    }
    std::memcpy(Mem.data() + Addr, &V, 8);
  }
};

/// Lays out globals (with initializers and run-parameter overrides),
/// numbers the functions, and places the stack and heap regions. Both
/// engines call this with identical inputs and therefore agree on every
/// simulated address before the first instruction runs.
inline void layoutAddressSpace(
    const Module &M, const std::map<std::string, int64_t> &IntParams,
    SimMemory &SM,
    std::unordered_map<const GlobalVariable *, uint64_t> &GlobalAddr,
    std::vector<const Function *> &FuncList,
    std::unordered_map<const Function *, uint32_t> &FuncIndex) {
  uint64_t Cursor = NullGuard;
  for (const auto &G : M.globals()) {
    Type *VT = G->getValueType();
    Cursor = alignTo(Cursor, std::max<unsigned>(VT->getAlign(), 8));
    GlobalAddr[G.get()] = Cursor;
    SM.ensureMem(Cursor + VT->getSize());
    Cursor += VT->getSize();
  }
  // Apply scalar initializers, then parameter overrides.
  for (const auto &G : M.globals()) {
    if (!G->hasIntInit())
      continue;
    if (auto *IT = dyn_cast<IntType>(G->getValueType()))
      SM.writeInt(GlobalAddr[G.get()], static_cast<unsigned>(IT->getSize()),
                  G->getIntInit());
  }
  for (const auto &[Name, V] : IntParams) {
    GlobalVariable *G = M.lookupGlobal(Name);
    if (!G)
      reportFatalError("run parameter refers to unknown global '" + Name +
                       "'");
    auto *IT = dyn_cast<IntType>(G->getValueType());
    if (!IT)
      reportFatalError("run parameter global '" + Name +
                       "' is not an integer");
    SM.writeInt(GlobalAddr[G], static_cast<unsigned>(IT->getSize()), V);
  }

  for (const auto &F : M.functions()) {
    FuncIndex[F.get()] = static_cast<uint32_t>(FuncList.size());
    FuncList.push_back(F.get());
  }

  SM.SmallFree.resize(SmallFreeMax / 16 + 1);
  SM.StackBase = alignTo(SM.Mem.size() + 64, 4096);
  SM.StackTop = SM.StackBase;
  SM.StackLimit = SM.StackBase + StackBytes;
  SM.HeapBump = alignTo(SM.StackLimit + 4096, 4096);
  SM.ensureMem(SM.StackBase);
}

} // namespace engine
} // namespace slo

#endif // SLO_RUNTIME_ENGINECOMMON_H
