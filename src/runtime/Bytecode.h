//===- runtime/Bytecode.h - Decoded IR and flat bytecode -------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two lowered program representations shared by the execution engines:
///
///  1. The pre-decoded DInst stream (one record per IR instruction,
///     operands resolved to flat register slots or immediates). The tree
///     walker executes this directly; it is also the input to (2).
///  2. A flat, register-based bytecode (BCInst) compiled from the DInst
///     stream for the threaded VM: constants are materialized into
///     dedicated frame slots so operand fetch is always one indexed
///     load, cold instrumentation data moves to side tables, adjacent
///     field-address + load/store pairs fuse into superinstructions, and
///     every opcode is pre-specialized on which observability hooks are
///     live for the run.
///
/// ## The DInst contract
///
/// Both engines must implement these semantics exactly; the engine-
/// parity differential-fuzz oracle holds them to it. Any divergence is a
/// bug in one engine and is fixed on the tree-walker side first.
///
///  - Integer arithmetic (Add, Sub, Mul, FieldAddr, IndexAddr) wraps
///    modulo 2^64 (two's complement); there is no undefined behaviour
///    on overflow.
///  - Shl/AShr mask the shift amount to [0, 63]. AShr is an arithmetic
///    (sign-propagating) shift.
///  - SDiv/SRem trap on a zero divisor. SDiv traps on INT64_MIN / -1
///    (the quotient 2^63 is unrepresentable — modelled as the hardware
///    divide fault it would raise). SRem with divisor -1 is 0 for every
///    dividend, including INT64_MIN.
///  - FPToSI: NaN converts to 0; values outside [INT64_MIN, INT64_MAX]
///    saturate to the nearest bound.
///  - i_abs of INT64_MIN wraps to INT64_MIN (two's complement negate).
///  - Narrow integer stores truncate to the low Bytes bytes; narrow
///    loads sign-extend, except i1 which zero-extends.
///  - Per instruction the engine (in this order) counts it, charges
///    BaseCost cycles, stops if the instruction budget is exceeded, and
///    only then executes it. A trap ends execution after the trapping
///    instruction's side effects up to the trap point.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_RUNTIME_BYTECODE_H
#define SLO_RUNTIME_BYTECODE_H

#include "runtime/EngineCommon.h"

namespace slo {

struct FieldCacheStats;
class MissAttribution;
class SampledPmu;

namespace engine {

/// Decoded opcodes. Mostly 1:1 with Instruction::Opcode; the no-op casts
/// (sext/zext/bitcast/ptrtoint/inttoptr/fpext) collapse into Move, and
/// TrapNoTerm marks a block that falls through without a terminator.
enum class DOp : uint8_t {
  Nop, // alloca: frame address was materialized at function entry
  Load,
  Store,
  FieldAddr,
  IndexAddr,
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  FAdd,
  FSub,
  FMul,
  FDiv,
  ICmpEQ,
  ICmpNE,
  ICmpSLT,
  ICmpSLE,
  ICmpSGT,
  ICmpSGE,
  FCmpEQ,
  FCmpNE,
  FCmpLT,
  FCmpLE,
  FCmpGT,
  FCmpGE,
  Trunc,
  Move,
  FPTrunc,
  SIToFP,
  FPToSI,
  Call,
  ICall,
  Ret,
  Br,
  CondBr,
  Malloc,
  Calloc,
  Realloc,
  Free,
  Memset,
  Memcpy,
  TrapNoTerm,
};

/// One pre-decoded instruction.
struct DInst {
  DOp Op = DOp::Nop;
  uint8_t BaseCost = 1;
  uint8_t Bytes = 0;       // Load/store access width.
  bool IsFloat = false;    // Load/store value type is floating point.
  bool SignExtend = false; // Integer loads: sign-extend (i1 zero-extends).
  uint16_t Builtin = BK_NotBuiltin; // Direct calls to declarations.
  int32_t ResultSlot = -1;
  uint32_t CalleeIdx = 0;            // Direct calls: function index.
  Operand A, B, C;                   // Generic operands.
  int64_t Extra = 0;                 // Field offset / elem size / bits.
  uint32_t Target0 = 0, Target1 = 0; // Branch targets: DInst index.
  uint32_t ArgsBegin = 0;            // Calls: first operand in ArgPool.
  uint16_t NumArgs = 0;
  const Function *Callee = nullptr;        // Direct calls.
  const FieldAddrInst *Attrib = nullptr;   // Load/store d-cache attribution.
  const BasicBlock *FromBB = nullptr;      // Branches: edge profiling.
  const BasicBlock *ToBB0 = nullptr, *ToBB1 = nullptr;
  uint32_t Site = 0;    // MissAttribution site id (0 = untyped traffic).
  uint32_t PmuSite = 0; // SampledPmu site id (0 = untyped traffic).
};

/// Precomputed execution form of one function: the decoded code stream,
/// call-argument operand pool, and the register/stack frame shape.
struct DecodedFunction {
  const Function *F = nullptr;
  uint32_t FuncIdx = 0;
  int32_t NumSlots = 0;
  uint64_t FrameSize = 0;
  std::vector<DInst> Code;
  std::vector<Operand> ArgPool;
  /// (result slot, frame offset) of every alloca; materialized at entry.
  std::vector<std::pair<int32_t, uint64_t>> Allocas;
};

/// Module-level context the decoder resolves operands against. Site
/// registration happens at decode time, so for attribution/PMU parity
/// both engines must decode functions in the same (first-call) order.
struct DecodeContext {
  const std::unordered_map<const GlobalVariable *, uint64_t> *GlobalAddr;
  const std::unordered_map<const Function *, uint32_t> *FuncIndex;
  MissAttribution *Attribution = nullptr;
  SampledPmu *Pmu = nullptr;
};

/// Decodes \p F into \p DF (DF.FuncIdx must be set by the caller). Never
/// mutates the Module; any number of decodes may run concurrently over
/// one module.
void decodeFunction(const Function *F, DecodedFunction &DF,
                    const DecodeContext &Ctx);

//===----------------------------------------------------------------------===//
// Flat bytecode (the threaded VM's executable form)
//===----------------------------------------------------------------------===//

/// Bytecode opcodes. Memory and branch opcodes come in two flavours
/// selected at compile time for the whole run: the *Fast* forms assume
/// no attribution sink, no PMU, and no profile collection (the
/// measurement configuration benchmarks run in), while the *Instr*
/// forms carry a side-table index with precomputed (site, PC) context
/// and inline-cached profile pointers. Field*/Index* opcodes are the
/// fused address-computation + load/store superinstructions, and the
/// CmpBr* group fuses a single-use compare into the conditional branch
/// that consumes it.
enum class BCOp : uint8_t {
  Nop,
  LoadFast,
  StoreFast,
  LoadInstr,
  StoreInstr,
  StackLoad,  // dst = *(frame + imm)  [address proven to be an in-frame
  StackStore, // *(frame + imm) = b     alloca: never trapping, never
              //  simulated — one opcode serves both run modes]
  FieldLoadFast,  // dst = *(a + imm)   [fused FieldAddr + Load]
  FieldStoreFast, // *(a + imm) = b     [fused FieldAddr + Store]
  FieldLoadInstr,
  FieldStoreInstr,
  IndexLoadFast,  // dst = *(a + b * imm)   [fused IndexAddr + Load]
  IndexStoreFast, // *(a + b * imm) = dst   [fused IndexAddr + Store;
                  //  the value slot rides in Dst, B is the index]
  IndexLoadInstr,
  IndexStoreInstr,
  FieldAddr, // dst = a + imm
  IndexAddr, // dst = a + b * imm
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  FAdd,
  FSub,
  FMul,
  FDiv,
  ICmpEQ,
  ICmpNE,
  ICmpSLT,
  ICmpSLE,
  ICmpSGT,
  ICmpSGE,
  FCmpEQ,
  FCmpNE,
  FCmpLT,
  FCmpLE,
  FCmpGT,
  FCmpGE,
  Trunc,
  Move,
  FPTrunc,
  SIToFP,
  FPToSI,
  CallBuiltin,
  Call,
  ICall,
  Ret,
  RetVoid,
  Br,
  BrProf,
  CondBr,
  CondBrProf,
  // Fused compare + conditional branch (non-profiled runs): A/B are the
  // compare operands, C / Extra the true / false targets, Bytes the
  // branch half's BaseCost. Order mirrors the ICmp*/FCmp* group above.
  CmpBrEQ,
  CmpBrNE,
  CmpBrSLT,
  CmpBrSLE,
  CmpBrSGT,
  CmpBrSGE,
  FCmpBrEQ,
  FCmpBrNE,
  FCmpBrLT,
  FCmpBrLE,
  FCmpBrGT,
  FCmpBrGE,
  Malloc,
  Calloc,
  Realloc,
  Free,
  Memset,
  Memcpy,
  TrapNoTerm,
  // Multi-instruction superinstructions over provably-stack operands
  // (see the StackLoad/StackStore comment above). Each counts all its
  // constituent instructions and replays the walker's
  // between-instruction budget checks.
  StackLoad2,          // Two adjacent stack loads: dst = *(frame+extra),
                       // a = *(frame+b); widths/flags packed per half.
  NopN,                // A consecutive same-cost Nops (alloca runs).
  StackFieldLoadFast,  // dst = (*(i64*)(frame+b))->field[extra]
  StackFieldStoreFast, // (*(i64*)(frame+b))->field[extra] = dst
  StackFieldLoadInstr,
  StackFieldStoreInstr,
  StackFieldAddr,      // dst = *(i64*)(frame+b) + extra: stack pointer
                       //   load + field address whose result is multi-used
                       //   (the single-use case folds the access too).
  StackIndexAddr2,     // dst = *(i64*)(frame+a) + idx(frame+b) * extra:
                       //   stack base and index loads + element address.
  // Binary op + trailing stack store of its single-use result
  // ("x = a <op> b" with x a register-promoted local). The op's cost
  // rides in the dispatch prologue; the store half (cost 0, pinned)
  // replays the budget check. C holds the frame offset; Bytes/Flags
  // describe the store.
  AddStackStore,
  SubStackStore,
  FAddStackStore,
  FSubStackStore,
  FMulStackStore,
  // Chain superinstructions over the hot pointer-chase and array-walk
  // shapes the bigram profile surfaces (mcf's "p->f->g", moldyn's
  // "a[i].f"). Each counts every constituent instruction, replays the
  // between-instruction budget checks with the costs pinned at fusion
  // time, and performs each simulated access before the next replayed
  // check — exactly where the walker would perform it.
  StackFieldChainLoadFast,  // q = (*(i64*)(frame+b)) + extra.lo, then
                            //   dst = load(*q + extra.hi): two field
                            //   chases, two simulated accesses. The
                            //   intermediate pointer load is pinned to
                            //   8-byte integer; Bytes/Flags describe the
                            //   final load. Instr form: C and C+1 are the
                            //   two access sides.
  StackFieldChainLoadInstr,
  StackIndexFieldLoadFast,  // dst = load(*(i64*)(frame+a) +
                            //   *(i64*)(frame+b) * extra.lo + extra.hi):
                            //   "a[i].f" with a and i locals. One
                            //   simulated access (side C in Instr form).
  StackIndexFieldLoadInstr,
  StackIndexFieldAddr,      // dst = *(i64*)(frame+a) +
                            //   *(i64*)(frame+b) * extra.lo + extra.hi:
                            //   "&a[i].f" kept live; no access.
  StackLoad2FMul,           // dst = *(f64*)(frame+a) * *(f64*)(frame+b):
                            //   two double stack loads feeding the FMul
                            //   immediately after them.
  NopStackStore,            // Singleton Nop (alloca placeholder) + stack
                            //   store: "int x = init;" mid-block. B is
                            //   the value slot, Extra the frame offset.
  NumOps_,
};

/// One bytecode instruction. 32 bytes; operand fields are frame-slot
/// indices (constants live in per-function constant slots appended to
/// the frame, so there is no slot-vs-immediate branch at run time).
struct BCInst {
  BCOp Op = BCOp::Nop;
  uint8_t Cost = 1;  // Cycles charged at dispatch.
  uint8_t Bytes = 0; // Access width.
  uint8_t Flags = 0; // See BCF_* below.
  int32_t Dst = -1;
  uint32_t A = 0; // Slot / cond slot / ArgsBegin (calls).
  uint32_t B = 0; // Slot / branch target / NumArgs (calls).
  uint32_t C = 0; // Slot / false target / side-table index.
  int64_t Extra = 0; // Field offset / elem size / bits / side index.
};

enum : uint8_t {
  BCF_Float = 1 << 0,      // Load/store value type is floating point.
  BCF_SignExtend = 1 << 1, // Integer loads sign-extend.
};

/// Cold per-access data for the *Instr* memory opcodes, indexed by
/// BCInst::C. Stats is the inline cache: resolved through
/// FeedbackFile::fieldStats on the first execution (matching the
/// walker's first-touch interning order) and hit directly afterwards.
struct AccessSide {
  uint64_t Pc = 0; // Packed (FuncIdx << 32) | original DInst index.
  const FieldAddrInst *Attrib = nullptr;
  uint32_t Site = 0;
  uint32_t PmuSite = 0;
  FieldCacheStats *Stats = nullptr;
};

/// Cold per-branch data for the *Prof* branch opcodes, indexed by
/// BCInst::C. Edge counter pointers are inline caches resolved on the
/// first time each direction is taken (so the set of interned edges
/// matches the walker's exactly).
struct BranchSide {
  const BasicBlock *From = nullptr;
  const BasicBlock *To0 = nullptr, *To1 = nullptr;
  uint64_t *Edge0 = nullptr, *Edge1 = nullptr;
};

/// Cold per-call-site data, indexed by BCInst::C.
struct CallSide {
  const Function *Callee = nullptr;
  uint32_t CalleeIdx = 0;
  uint16_t Builtin = BK_NotBuiltin;
};

/// Cold data for memset/memcpy (attribution PC), indexed by BCInst::Extra.
struct BulkSide {
  uint64_t Pc = 0;
};

/// One compiled function.
struct BCFunction {
  const Function *F = nullptr;
  uint32_t FuncIdx = 0;
  int32_t NumSlots = 0;   // Arg + result slots (zero-filled at entry).
  int32_t FrameSlots = 0; // NumSlots + materialized constants.
  uint64_t FrameSize = 0; // Simulated stack bytes (allocas).
  uint32_t NumDInsts = 0; // Size of the source DInst stream (PC labels).
  uint32_t NumFused = 0;  // Superinstructions emitted.
  std::vector<BCInst> Code;
  std::vector<Reg> Consts;       // Values of slots [NumSlots, FrameSlots).
  std::vector<uint32_t> ArgPool; // Argument slots for calls.
  std::vector<std::pair<int32_t, uint64_t>> Allocas;
  std::vector<AccessSide> Access;
  std::vector<BranchSide> Branches;
  std::vector<CallSide> Calls;
  std::vector<BulkSide> Bulk;
  uint64_t *EntryCount = nullptr; // Inline-cached entry counter.
};

/// Which hooks are live for the run; decides Fast vs Instr opcode
/// selection for the whole compiled module.
struct CompileOptions {
  bool Instrument = false; // Attribution, PMU, or profile attached.
  bool Profile = false;    // Edge/entry counting (subset of Instrument).
  /// Test hook for the engine-parity oracle: deliberately mis-charge
  /// every load-family opcode by one cycle so a working oracle must
  /// flag the divergence (proves the oracle is not vacuous).
  bool InjectVmBug = false;
};

/// Compiles a decoded function to flat bytecode. Deterministic: the
/// same DF and options always produce the same code.
void compileFunction(const DecodedFunction &DF, BCFunction &BF,
                     const CompileOptions &CO);

} // namespace engine
} // namespace slo

#endif // SLO_RUNTIME_BYTECODE_H
