//===- runtime/Interpreter.cpp - IR interpreter with cache model ----------===//

#include "runtime/Interpreter.h"

#include "support/Casting.h"
#include "support/Error.h"
#include "support/Format.h"

#include <cmath>
#include <cstring>

using namespace slo;

namespace {

/// One runtime value: integers and pointers in I, floats in F.
union Reg {
  int64_t I;
  double F;
};

/// Precomputed execution layout of one function: value slots and fixed
/// frame offsets for every alloca.
struct FunctionLayout {
  int NumSlots = 0;
  uint64_t FrameSize = 0;
  std::map<const AllocaInst *, uint64_t> AllocaOffset;
};

constexpr uint64_t NullGuard = 4096;       // Addresses below this trap.
constexpr uint64_t FuncAddrBase = 1ull << 48; // Function "addresses".
constexpr uint64_t StackBytes = 16ull << 20;

} // namespace

/// The interpreter implementation.
class Interpreter::Impl {
public:
  Impl(const Module &M, RunOptions Opts)
      : M(M), Opts(std::move(Opts)), Cache(this->Opts.Cache) {}

  RunResult run(const std::string &EntryName);

private:
  // -- Setup --
  void layoutGlobals();
  const FunctionLayout &getLayout(const Function *F);

  // -- Memory --
  void ensureMem(uint64_t End) {
    if (End > Mem.size())
      Mem.resize(std::max<uint64_t>(End, Mem.size() * 2), 0);
  }
  bool checkAddr(uint64_t Addr, uint64_t Size, const char *What) {
    if (Addr < NullGuard || Addr >= FuncAddrBase) {
      trap(formatString("%s at invalid address 0x%llx", What,
                        static_cast<unsigned long long>(Addr)));
      return false;
    }
    ensureMem(Addr + Size);
    return true;
  }
  uint64_t heapAlloc(uint64_t Size, uint8_t Fill);
  bool heapFree(uint64_t Addr);

  int64_t readInt(uint64_t Addr, unsigned Bytes, bool SignExtend);
  void writeInt(uint64_t Addr, unsigned Bytes, int64_t V);
  double readFloat(uint64_t Addr, unsigned Bytes);
  void writeFloat(uint64_t Addr, unsigned Bytes, double V);

  // -- Execution --
  Reg evalValue(const Value *V, const std::vector<Reg> &Frame);
  Reg executeCall(const Function *F, const std::vector<Reg> &Args,
                  unsigned Depth);
  Reg callBuiltin(const Function *F, const std::vector<Reg> &Args);
  void simulateAccess(uint64_t Addr, const Type *Ty, bool IsStore,
                      const Value *PtrOperand);

  void trap(const std::string &Reason) {
    if (!Result.Trapped) {
      Result.Trapped = true;
      Result.TrapReason = Reason;
    }
  }
  bool running() const {
    return !Result.Trapped && Result.Instructions <= Opts.MaxInstructions;
  }

  /// Per-opcode base cost in cycles. Loads and stores are charged by
  /// their handlers instead: accesses to the simulated stack model
  /// register-promoted locals (a real compiler runs mem2reg) and are
  /// free, while data accesses cost one issue cycle plus cache stalls.
  static unsigned baseCost(Instruction::Opcode Op) {
    switch (Op) {
    case Instruction::OpMul:
      return 2;
    case Instruction::OpSDiv:
    case Instruction::OpSRem:
    case Instruction::OpFDiv:
      return 16;
    case Instruction::OpLoad:
    case Instruction::OpStore:
      return 0;
    default:
      return 1;
    }
  }

  bool isStackAddress(uint64_t Addr) const {
    return Addr >= StackBase && Addr < StackLimit;
  }

  const Module &M;
  RunOptions Opts;
  CacheSim Cache;
  RunResult Result;

  std::vector<uint8_t> Mem;
  uint64_t StackBase = 0, StackTop = 0, StackLimit = 0;
  uint64_t HeapBump = 0;
  std::map<uint64_t, uint64_t> LiveAllocs;          // addr -> size
  std::map<uint64_t, std::vector<uint64_t>> FreeLists; // size -> addrs

  std::map<const GlobalVariable *, uint64_t> GlobalAddr;
  std::map<const Function *, uint64_t> FuncAddr;
  std::map<uint64_t, const Function *> FuncByAddr;
  std::map<const Function *, FunctionLayout> Layouts;
  uint64_t SampleTick = 0;

  friend class Interpreter;
};

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

void Interpreter::Impl::layoutGlobals() {
  uint64_t Cursor = NullGuard;
  for (const auto &G : M.globals()) {
    Type *VT = G->getValueType();
    Cursor = alignTo(Cursor, std::max<unsigned>(VT->getAlign(), 8));
    GlobalAddr[G.get()] = Cursor;
    ensureMem(Cursor + VT->getSize());
    Cursor += VT->getSize();
  }
  // Apply scalar initializers, then parameter overrides.
  for (const auto &G : M.globals()) {
    if (!G->hasIntInit())
      continue;
    if (auto *IT = dyn_cast<IntType>(G->getValueType()))
      writeInt(GlobalAddr[G.get()], static_cast<unsigned>(IT->getSize()),
               G->getIntInit());
  }
  for (const auto &[Name, V] : Opts.IntParams) {
    GlobalVariable *G = M.lookupGlobal(Name);
    if (!G)
      reportFatalError("run parameter refers to unknown global '" + Name +
                       "'");
    auto *IT = dyn_cast<IntType>(G->getValueType());
    if (!IT)
      reportFatalError("run parameter global '" + Name +
                       "' is not an integer");
    writeInt(GlobalAddr[G], static_cast<unsigned>(IT->getSize()), V);
  }

  uint64_t FIdx = 0;
  for (const auto &F : M.functions()) {
    uint64_t A = FuncAddrBase + (FIdx++ << 4);
    FuncAddr[F.get()] = A;
    FuncByAddr[A] = F.get();
  }

  StackBase = alignTo(Mem.size() + 64, 4096);
  StackTop = StackBase;
  StackLimit = StackBase + StackBytes;
  HeapBump = alignTo(StackLimit + 4096, 4096);
  ensureMem(StackBase);
}

const FunctionLayout &Interpreter::Impl::getLayout(const Function *F) {
  auto It = Layouts.find(F);
  if (It != Layouts.end())
    return It->second;
  FunctionLayout L;
  int Slot = static_cast<int>(F->getNumArgs());
  uint64_t Frame = 0;
  for (const auto &BB : F->blocks()) {
    for (const auto &I : BB->instructions()) {
      if (!I->getType()->isVoid())
        I->setSlot(Slot++);
      if (const auto *A = dyn_cast<AllocaInst>(I.get())) {
        Type *Ty = A->getAllocatedType();
        Frame = alignTo(Frame, std::max<unsigned>(Ty->getAlign(), 1));
        L.AllocaOffset[A] = Frame;
        Frame += Ty->getSize();
      }
    }
  }
  L.NumSlots = Slot;
  L.FrameSize = alignTo(Frame, 16);
  return Layouts.emplace(F, std::move(L)).first->second;
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

uint64_t Interpreter::Impl::heapAlloc(uint64_t Size, uint8_t Fill) {
  if (Size == 0)
    Size = 1;
  Size = alignTo(Size, 16);
  uint64_t Addr = 0;
  auto It = FreeLists.find(Size);
  if (It != FreeLists.end() && !It->second.empty()) {
    Addr = It->second.back();
    It->second.pop_back();
  } else {
    Addr = HeapBump;
    HeapBump += Size;
  }
  ensureMem(Addr + Size);
  std::memset(Mem.data() + Addr, Fill, Size);
  LiveAllocs[Addr] = Size;
  Result.HeapBytesAllocated += Size;
  ++Result.HeapAllocations;
  return Addr;
}

bool Interpreter::Impl::heapFree(uint64_t Addr) {
  if (Addr == 0)
    return true; // free(NULL) is a no-op.
  auto It = LiveAllocs.find(Addr);
  if (It == LiveAllocs.end()) {
    trap(formatString("free of a non-heap address 0x%llx",
                      static_cast<unsigned long long>(Addr)));
    return false;
  }
  FreeLists[It->second].push_back(Addr);
  LiveAllocs.erase(It);
  return true;
}

int64_t Interpreter::Impl::readInt(uint64_t Addr, unsigned Bytes,
                                   bool SignExtend) {
  uint64_t Raw = 0;
  std::memcpy(&Raw, Mem.data() + Addr, Bytes);
  if (Bytes == 8)
    return static_cast<int64_t>(Raw);
  if (SignExtend) {
    uint64_t SignBit = 1ull << (Bytes * 8 - 1);
    if (Raw & SignBit)
      Raw |= ~((SignBit << 1) - 1);
  }
  return static_cast<int64_t>(Raw);
}

void Interpreter::Impl::writeInt(uint64_t Addr, unsigned Bytes, int64_t V) {
  std::memcpy(Mem.data() + Addr, &V, Bytes);
}

double Interpreter::Impl::readFloat(uint64_t Addr, unsigned Bytes) {
  if (Bytes == 4) {
    float F;
    std::memcpy(&F, Mem.data() + Addr, 4);
    return F;
  }
  double D;
  std::memcpy(&D, Mem.data() + Addr, 8);
  return D;
}

void Interpreter::Impl::writeFloat(uint64_t Addr, unsigned Bytes, double V) {
  if (Bytes == 4) {
    float F = static_cast<float>(V);
    std::memcpy(Mem.data() + Addr, &F, 4);
    return;
  }
  std::memcpy(Mem.data() + Addr, &V, 8);
}

//===----------------------------------------------------------------------===//
// Cache simulation and attribution
//===----------------------------------------------------------------------===//

void Interpreter::Impl::simulateAccess(uint64_t Addr, const Type *Ty,
                                       bool IsStore,
                                       const Value *PtrOperand) {
  // Stack slots model register-promoted locals: free, not simulated.
  if (isStackAddress(Addr))
    return;
  if (IsStore)
    ++Result.Stores;
  else
    ++Result.Loads;
  ++Result.Cycles; // Issue cost of a real memory operation.
  if (!Opts.SimulateCache)
    return;
  bool IsFp = Ty->isFloat();
  CacheAccessResult A = Cache.access(Addr, IsStore, IsFp);
  Result.Cycles += A.Stall;
  Result.MemStallCycles += A.Stall;

  if (!Opts.Profile)
    return;
  const auto *FA = dyn_cast<FieldAddrInst>(PtrOperand);
  if (!FA)
    return;
  if (Opts.CacheSamplePeriod > 1 &&
      (SampleTick++ % Opts.CacheSamplePeriod) != 0)
    return;
  FieldCacheStats &S =
      Opts.Profile->fieldStats(FA->getRecord(), FA->getFieldIndex());
  uint64_t Scale = Opts.CacheSamplePeriod;
  if (IsStore) {
    S.Stores += Scale;
  } else {
    S.Loads += Scale;
    S.TotalLatency += static_cast<double>(A.Latency) * Scale;
  }
  if (A.FirstLevelMiss)
    S.Misses += Scale;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

Reg Interpreter::Impl::evalValue(const Value *V,
                                 const std::vector<Reg> &Frame) {
  Reg R;
  R.I = 0;
  switch (V->getKind()) {
  case Value::VK_ConstantInt:
    R.I = cast<ConstantInt>(V)->getValue();
    return R;
  case Value::VK_ConstantFloat:
    R.F = cast<ConstantFloat>(V)->getValue();
    return R;
  case Value::VK_ConstantNull:
    return R;
  case Value::VK_GlobalVariable:
    R.I = static_cast<int64_t>(GlobalAddr.at(cast<GlobalVariable>(V)));
    return R;
  case Value::VK_Function:
    R.I = static_cast<int64_t>(FuncAddr.at(cast<Function>(V)));
    return R;
  case Value::VK_Argument:
    return Frame[cast<Argument>(V)->getIndex()];
  case Value::VK_Instruction:
    return Frame[static_cast<size_t>(cast<Instruction>(V)->getSlot())];
  }
  SLO_UNREACHABLE("unknown value kind");
}

Reg Interpreter::Impl::callBuiltin(const Function *F,
                                   const std::vector<Reg> &Args) {
  Reg R;
  R.I = 0;
  const std::string &Name = F->getName();
  if (Name == "print_i64") {
    Result.PrintedInts.push_back(Args[0].I);
    return R;
  }
  if (Name == "print_f64") {
    Result.PrintedFloats.push_back(Args[0].F);
    return R;
  }
  if (Name == "f_sqrt") {
    R.F = std::sqrt(Args[0].F);
    return R;
  }
  if (Name == "f_fabs") {
    R.F = std::fabs(Args[0].F);
    return R;
  }
  if (Name == "f_exp") {
    R.F = std::exp(Args[0].F);
    return R;
  }
  if (Name == "f_log") {
    R.F = std::log(Args[0].F);
    return R;
  }
  if (Name == "f_floor") {
    R.F = std::floor(Args[0].F);
    return R;
  }
  if (Name == "i_abs") {
    R.I = Args[0].I < 0 ? -Args[0].I : Args[0].I;
    return R;
  }
  trap("call to unimplemented library function '" + Name + "'");
  return R;
}

Reg Interpreter::Impl::executeCall(const Function *F,
                                   const std::vector<Reg> &Args,
                                   unsigned Depth) {
  Reg Void;
  Void.I = 0;
  if (F->isDeclaration())
    return callBuiltin(F, Args);
  if (Depth > Opts.MaxCallDepth) {
    trap("call depth limit exceeded in '" + F->getName() + "'");
    return Void;
  }

  const FunctionLayout &L = getLayout(F);
  if (StackTop + L.FrameSize > StackLimit) {
    trap("simulated stack overflow in '" + F->getName() + "'");
    return Void;
  }
  uint64_t FrameBase = StackTop;
  StackTop += L.FrameSize;
  ensureMem(StackTop);

  std::vector<Reg> Frame(static_cast<size_t>(L.NumSlots));
  for (size_t I = 0; I < Args.size(); ++I)
    Frame[I] = Args[I];
  for (const auto &[A, Off] : L.AllocaOffset)
    Frame[static_cast<size_t>(A->getSlot())].I =
        static_cast<int64_t>(FrameBase + Off);

  if (Opts.Profile)
    Opts.Profile->countEntry(F);

  Reg RetVal = Void;
  const BasicBlock *BB = F->getEntry();
  bool Done = false;
  while (!Done && running()) {
    const BasicBlock *NextBB = nullptr;
    for (const auto &IPtr : BB->instructions()) {
      const Instruction &I = *IPtr;
      ++Result.Instructions;
      Result.Cycles += baseCost(I.getOpcode());
      if (!running())
        break;

      switch (I.getOpcode()) {
      case Instruction::OpAlloca:
        break; // Frame addresses were precomputed.
      case Instruction::OpLoad: {
        const auto &Ld = static_cast<const LoadInst &>(I);
        uint64_t Addr =
            static_cast<uint64_t>(evalValue(Ld.getPointer(), Frame).I);
        Type *Ty = Ld.getType();
        unsigned Bytes = static_cast<unsigned>(Ty->getSize());
        if (!checkAddr(Addr, Bytes, "load"))
          break;
        Reg R;
        if (Ty->isFloat())
          R.F = readFloat(Addr, Bytes);
        else
          R.I = readInt(Addr, Bytes,
                        !(Ty->isInt() && cast<IntType>(Ty)->getBits() == 1));
        Frame[static_cast<size_t>(I.getSlot())] = R;
        simulateAccess(Addr, Ty, /*IsStore=*/false, Ld.getPointer());
        break;
      }
      case Instruction::OpStore: {
        const auto &St = static_cast<const StoreInst &>(I);
        uint64_t Addr =
            static_cast<uint64_t>(evalValue(St.getPointer(), Frame).I);
        Type *Ty = St.getStoredValue()->getType();
        unsigned Bytes = static_cast<unsigned>(Ty->getSize());
        if (!checkAddr(Addr, Bytes, "store"))
          break;
        Reg V = evalValue(St.getStoredValue(), Frame);
        if (Ty->isFloat())
          writeFloat(Addr, Bytes, V.F);
        else
          writeInt(Addr, Bytes, V.I);
        simulateAccess(Addr, Ty, /*IsStore=*/true, St.getPointer());
        break;
      }
      case Instruction::OpFieldAddr: {
        const auto &FA = static_cast<const FieldAddrInst &>(I);
        Reg Base = evalValue(FA.getBase(), Frame);
        Reg R;
        R.I = Base.I + static_cast<int64_t>(FA.getField().Offset);
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpIndexAddr: {
        const auto &IA = static_cast<const IndexAddrInst &>(I);
        Reg Base = evalValue(IA.getBase(), Frame);
        Reg Idx = evalValue(IA.getIndex(), Frame);
        uint64_t ElemSize =
            cast<PointerType>(IA.getType())->getPointee()->getSize();
        Reg R;
        R.I = Base.I + Idx.I * static_cast<int64_t>(ElemSize);
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpAdd:
      case Instruction::OpSub:
      case Instruction::OpMul:
      case Instruction::OpSDiv:
      case Instruction::OpSRem:
      case Instruction::OpAnd:
      case Instruction::OpOr:
      case Instruction::OpXor:
      case Instruction::OpShl:
      case Instruction::OpAShr:
      case Instruction::OpFAdd:
      case Instruction::OpFSub:
      case Instruction::OpFMul:
      case Instruction::OpFDiv: {
        Reg A = evalValue(I.getOperand(0), Frame);
        Reg B = evalValue(I.getOperand(1), Frame);
        Reg R;
        R.I = 0;
        switch (I.getOpcode()) {
        case Instruction::OpAdd:
          R.I = A.I + B.I;
          break;
        case Instruction::OpSub:
          R.I = A.I - B.I;
          break;
        case Instruction::OpMul:
          R.I = A.I * B.I;
          break;
        case Instruction::OpSDiv:
          if (B.I == 0) {
            trap("integer division by zero");
            break;
          }
          R.I = A.I / B.I;
          break;
        case Instruction::OpSRem:
          if (B.I == 0) {
            trap("integer remainder by zero");
            break;
          }
          R.I = A.I % B.I;
          break;
        case Instruction::OpAnd:
          R.I = A.I & B.I;
          break;
        case Instruction::OpOr:
          R.I = A.I | B.I;
          break;
        case Instruction::OpXor:
          R.I = A.I ^ B.I;
          break;
        case Instruction::OpShl:
          R.I = A.I << (B.I & 63);
          break;
        case Instruction::OpAShr:
          R.I = A.I >> (B.I & 63);
          break;
        case Instruction::OpFAdd:
          R.F = A.F + B.F;
          break;
        case Instruction::OpFSub:
          R.F = A.F - B.F;
          break;
        case Instruction::OpFMul:
          R.F = A.F * B.F;
          break;
        case Instruction::OpFDiv:
          R.F = A.F / B.F;
          break;
        default:
          break;
        }
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpICmpEQ:
      case Instruction::OpICmpNE:
      case Instruction::OpICmpSLT:
      case Instruction::OpICmpSLE:
      case Instruction::OpICmpSGT:
      case Instruction::OpICmpSGE:
      case Instruction::OpFCmpEQ:
      case Instruction::OpFCmpNE:
      case Instruction::OpFCmpLT:
      case Instruction::OpFCmpLE:
      case Instruction::OpFCmpGT:
      case Instruction::OpFCmpGE: {
        Reg A = evalValue(I.getOperand(0), Frame);
        Reg B = evalValue(I.getOperand(1), Frame);
        bool C = false;
        switch (I.getOpcode()) {
        case Instruction::OpICmpEQ:
          C = A.I == B.I;
          break;
        case Instruction::OpICmpNE:
          C = A.I != B.I;
          break;
        case Instruction::OpICmpSLT:
          C = A.I < B.I;
          break;
        case Instruction::OpICmpSLE:
          C = A.I <= B.I;
          break;
        case Instruction::OpICmpSGT:
          C = A.I > B.I;
          break;
        case Instruction::OpICmpSGE:
          C = A.I >= B.I;
          break;
        case Instruction::OpFCmpEQ:
          C = A.F == B.F;
          break;
        case Instruction::OpFCmpNE:
          C = A.F != B.F;
          break;
        case Instruction::OpFCmpLT:
          C = A.F < B.F;
          break;
        case Instruction::OpFCmpLE:
          C = A.F <= B.F;
          break;
        case Instruction::OpFCmpGT:
          C = A.F > B.F;
          break;
        case Instruction::OpFCmpGE:
          C = A.F >= B.F;
          break;
        default:
          break;
        }
        Reg R;
        R.I = C ? 1 : 0;
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpTrunc: {
        Reg A = evalValue(I.getOperand(0), Frame);
        unsigned Bits = cast<IntType>(I.getType())->getBits();
        Reg R;
        if (Bits >= 64) {
          R.I = A.I;
        } else {
          uint64_t Mask = (1ull << Bits) - 1;
          uint64_t U = static_cast<uint64_t>(A.I) & Mask;
          if (Bits > 1 && (U & (1ull << (Bits - 1))))
            U |= ~Mask;
          R.I = static_cast<int64_t>(U);
        }
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpSExt:
      case Instruction::OpZExt:
      case Instruction::OpBitcast:
      case Instruction::OpPtrToInt:
      case Instruction::OpIntToPtr: {
        // Register representation is canonical; these are no-ops at
        // runtime (sign/zero extension happened at produce time).
        Frame[static_cast<size_t>(I.getSlot())] =
            evalValue(I.getOperand(0), Frame);
        break;
      }
      case Instruction::OpFPExt:
      case Instruction::OpFPTrunc: {
        Reg A = evalValue(I.getOperand(0), Frame);
        Reg R;
        R.F = I.getOpcode() == Instruction::OpFPTrunc
                  ? static_cast<double>(static_cast<float>(A.F))
                  : A.F;
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpSIToFP: {
        Reg A = evalValue(I.getOperand(0), Frame);
        Reg R;
        R.F = static_cast<double>(A.I);
        if (cast<FloatType>(I.getType())->getBits() == 32)
          R.F = static_cast<float>(R.F);
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpFPToSI: {
        Reg A = evalValue(I.getOperand(0), Frame);
        Reg R;
        R.I = static_cast<int64_t>(A.F);
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpCall: {
        const auto &C = static_cast<const CallInst &>(I);
        std::vector<Reg> CallArgs;
        CallArgs.reserve(C.getNumArgs());
        for (unsigned A = 0; A < C.getNumArgs(); ++A)
          CallArgs.push_back(evalValue(C.getArg(A), Frame));
        Reg R = executeCall(C.getCallee(), CallArgs, Depth + 1);
        if (!I.getType()->isVoid())
          Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpICall: {
        const auto &C = static_cast<const IndirectCallInst &>(I);
        uint64_t Target =
            static_cast<uint64_t>(evalValue(C.getCalleePtr(), Frame).I);
        auto It = FuncByAddr.find(Target);
        if (It == FuncByAddr.end()) {
          trap("indirect call through a non-function pointer");
          break;
        }
        std::vector<Reg> CallArgs;
        CallArgs.reserve(C.getNumArgs());
        for (unsigned A = 0; A < C.getNumArgs(); ++A)
          CallArgs.push_back(evalValue(C.getArg(A), Frame));
        Reg R = executeCall(It->second, CallArgs, Depth + 1);
        if (!I.getType()->isVoid())
          Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpRet: {
        const auto &Rt = static_cast<const RetInst &>(I);
        if (Rt.hasValue())
          RetVal = evalValue(Rt.getValue(), Frame);
        Done = true;
        break;
      }
      case Instruction::OpBr: {
        const auto &Br = static_cast<const BrInst &>(I);
        NextBB = Br.getTarget();
        break;
      }
      case Instruction::OpCondBr: {
        const auto &CBr = static_cast<const CondBrInst &>(I);
        bool C = evalValue(CBr.getCondition(), Frame).I != 0;
        NextBB = C ? CBr.getTrueTarget() : CBr.getFalseTarget();
        break;
      }
      case Instruction::OpMalloc: {
        const auto &Mal = static_cast<const MallocInst &>(I);
        uint64_t Size =
            static_cast<uint64_t>(evalValue(Mal.getSizeBytes(), Frame).I);
        Reg R;
        R.I = static_cast<int64_t>(heapAlloc(Size, 0xAA));
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpCalloc: {
        const auto &Cal = static_cast<const CallocInst &>(I);
        uint64_t N = static_cast<uint64_t>(evalValue(Cal.getCount(), Frame).I);
        uint64_t Sz =
            static_cast<uint64_t>(evalValue(Cal.getElemSize(), Frame).I);
        Reg R;
        R.I = static_cast<int64_t>(heapAlloc(N * Sz, 0x00));
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpRealloc: {
        const auto &Re = static_cast<const ReallocInst &>(I);
        uint64_t Old = static_cast<uint64_t>(evalValue(Re.getPtr(), Frame).I);
        uint64_t NewSize =
            static_cast<uint64_t>(evalValue(Re.getSizeBytes(), Frame).I);
        uint64_t NewAddr = heapAlloc(NewSize, 0xAA);
        if (Old != 0) {
          auto It = LiveAllocs.find(Old);
          if (It == LiveAllocs.end()) {
            trap("realloc of a non-heap address");
            break;
          }
          uint64_t CopyBytes = std::min(It->second, NewSize);
          ensureMem(NewAddr + CopyBytes);
          std::memmove(Mem.data() + NewAddr, Mem.data() + Old, CopyBytes);
          heapFree(Old);
        }
        Reg R;
        R.I = static_cast<int64_t>(NewAddr);
        Frame[static_cast<size_t>(I.getSlot())] = R;
        break;
      }
      case Instruction::OpFree: {
        const auto &Fr = static_cast<const FreeInst &>(I);
        heapFree(static_cast<uint64_t>(evalValue(Fr.getPtr(), Frame).I));
        break;
      }
      case Instruction::OpMemset: {
        const auto &Ms = static_cast<const MemsetInst &>(I);
        uint64_t Addr = static_cast<uint64_t>(evalValue(Ms.getPtr(), Frame).I);
        int64_t Byte = evalValue(Ms.getByte(), Frame).I;
        uint64_t Size =
            static_cast<uint64_t>(evalValue(Ms.getSizeBytes(), Frame).I);
        if (!checkAddr(Addr, Size, "memset"))
          break;
        std::memset(Mem.data() + Addr, static_cast<int>(Byte & 0xff), Size);
        // Touch one cache line per 64 bytes.
        if (Opts.SimulateCache)
          for (uint64_t Off = 0; Off < Size; Off += 64)
            Result.Cycles +=
                Cache.access(Addr + Off, /*IsStore=*/true, false).Stall;
        break;
      }
      case Instruction::OpMemcpy: {
        const auto &Mc = static_cast<const MemcpyInst &>(I);
        uint64_t Dst = static_cast<uint64_t>(evalValue(Mc.getDst(), Frame).I);
        uint64_t Src = static_cast<uint64_t>(evalValue(Mc.getSrc(), Frame).I);
        uint64_t Size =
            static_cast<uint64_t>(evalValue(Mc.getSizeBytes(), Frame).I);
        if (!checkAddr(Dst, Size, "memcpy") || !checkAddr(Src, Size, "memcpy"))
          break;
        std::memmove(Mem.data() + Dst, Mem.data() + Src, Size);
        if (Opts.SimulateCache) {
          for (uint64_t Off = 0; Off < Size; Off += 64) {
            Result.Cycles +=
                Cache.access(Src + Off, /*IsStore=*/false, false).Stall;
            Result.Cycles +=
                Cache.access(Dst + Off, /*IsStore=*/true, false).Stall;
          }
        }
        break;
      }
      }
      if (Result.Trapped || Done || NextBB)
        break;
    }
    if (Result.Trapped)
      break;
    if (NextBB) {
      if (Opts.Profile)
        Opts.Profile->countEdge(BB, NextBB);
      BB = NextBB;
    } else if (!Done) {
      trap("block fell through without a terminator");
    }
  }

  StackTop = FrameBase;
  return RetVal;
}

RunResult Interpreter::Impl::run(const std::string &EntryName) {
  const Function *Entry = M.lookupFunction(EntryName);
  if (!Entry || Entry->isDeclaration()) {
    trap("entry function '" + EntryName + "' is not defined");
    return Result;
  }
  layoutGlobals();
  std::vector<Reg> Args(Entry->getNumArgs());
  for (Reg &A : Args)
    A.I = 0;
  Reg R = executeCall(Entry, Args, 0);
  if (Result.Instructions > Opts.MaxInstructions)
    trap("instruction budget exceeded");
  Result.ExitCode = R.I;
  Result.L1 = Cache.l1Stats();
  Result.L2 = Cache.l2Stats();
  Result.L3 = Cache.l3Stats();
  return Result;
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(const Module &M, RunOptions Opts)
    : P(std::make_unique<Impl>(M, std::move(Opts))) {}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const std::string &EntryName) {
  return P->run(EntryName);
}

RunResult slo::runProgram(const Module &M, RunOptions Opts) {
  Interpreter I(M, std::move(Opts));
  return I.run();
}
