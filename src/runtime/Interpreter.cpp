//===- runtime/Interpreter.cpp - IR interpreter with cache model ----------===//
//
// Execution strategy: every function is pre-decoded, on first call, into
// a dense stream of DInst records whose operands are resolved to flat
// register-slot indices or immediate values. The dispatch loop then runs
// over plain vectors — no std::map lookups, no Value-kind switches, no
// per-call allocation (frames live in a register arena) — because this
// loop is under every cycle count the benchmark harnesses report, and
// its wall-clock time bounds how much simulation the repo can afford.
// Decoding never mutates the Module, so any number of interpreters may
// run concurrently over one module (the parallel bench harness does).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "observability/CounterRegistry.h"
#include "observability/MissAttribution.h"
#include "observability/SampledPmu.h"
#include "observability/Tracer.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

using namespace slo;

namespace {

/// One runtime value: integers and pointers in I, floats in F.
union Reg {
  int64_t I;
  double F;
};

/// A decode-time-resolved operand: a frame slot index, or an immediate
/// (constants, global addresses, function addresses).
struct Operand {
  int32_t Slot = -1; // >= 0: frame slot; < 0: use Imm.
  Reg Imm{};
};

/// Library builtins, resolved from the callee name once at decode time.
enum BuiltinKind : uint16_t {
  BK_NotBuiltin = 0,
  BK_PrintI64,
  BK_PrintF64,
  BK_Sqrt,
  BK_Fabs,
  BK_Exp,
  BK_Log,
  BK_Floor,
  BK_IAbs,
  BK_Unknown, // Declaration with no implementation: traps when called.
};

/// Decoded opcodes. Mostly 1:1 with Instruction::Opcode; the no-op casts
/// (sext/zext/bitcast/ptrtoint/inttoptr/fpext) collapse into Move, and
/// TrapNoTerm marks a block that falls through without a terminator.
enum class DOp : uint8_t {
  Nop, // alloca: frame address was materialized at function entry
  Load,
  Store,
  FieldAddr,
  IndexAddr,
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  FAdd,
  FSub,
  FMul,
  FDiv,
  ICmpEQ,
  ICmpNE,
  ICmpSLT,
  ICmpSLE,
  ICmpSGT,
  ICmpSGE,
  FCmpEQ,
  FCmpNE,
  FCmpLT,
  FCmpLE,
  FCmpGT,
  FCmpGE,
  Trunc,
  Move,
  FPTrunc,
  SIToFP,
  FPToSI,
  Call,
  ICall,
  Ret,
  Br,
  CondBr,
  Malloc,
  Calloc,
  Realloc,
  Free,
  Memset,
  Memcpy,
  TrapNoTerm,
};

/// One pre-decoded instruction.
struct DInst {
  DOp Op = DOp::Nop;
  uint8_t BaseCost = 1;
  uint8_t Bytes = 0;       // Load/store access width.
  bool IsFloat = false;    // Load/store value type is floating point.
  bool SignExtend = false; // Integer loads: sign-extend (i1 zero-extends).
  uint16_t Builtin = BK_NotBuiltin; // Direct calls to declarations.
  int32_t ResultSlot = -1;
  uint32_t CalleeIdx = 0;            // Direct calls: function index.
  Operand A, B, C;                   // Generic operands.
  int64_t Extra = 0;                 // Field offset / elem size / bits.
  uint32_t Target0 = 0, Target1 = 0; // Branch targets: DInst index.
  uint32_t ArgsBegin = 0;            // Calls: first operand in ArgPool.
  uint16_t NumArgs = 0;
  const Function *Callee = nullptr;        // Direct calls.
  const FieldAddrInst *Attrib = nullptr;   // Load/store d-cache attribution.
  const BasicBlock *FromBB = nullptr;      // Branches: edge profiling.
  const BasicBlock *ToBB0 = nullptr, *ToBB1 = nullptr;
  uint32_t Site = 0;    // MissAttribution site id (0 = untyped traffic).
  uint32_t PmuSite = 0; // SampledPmu site id (0 = untyped traffic).
};

/// Fetches an operand value.
inline Reg get(const Operand &O, const Reg *Frame) {
  return O.Slot >= 0 ? Frame[O.Slot] : O.Imm;
}

/// Precomputed execution form of one function: the decoded code stream,
/// call-argument operand pool, and the register/stack frame shape.
struct DecodedFunction {
  const Function *F = nullptr;
  uint32_t FuncIdx = 0;
  int32_t NumSlots = 0;
  uint64_t FrameSize = 0;
  std::vector<DInst> Code;
  std::vector<Operand> ArgPool;
  /// (result slot, frame offset) of every alloca; materialized at entry.
  std::vector<std::pair<int32_t, uint64_t>> Allocas;
};

constexpr uint64_t NullGuard = 4096;          // Addresses below this trap.
constexpr uint64_t FuncAddrBase = 1ull << 48; // Function "addresses".
constexpr uint64_t StackBytes = 16ull << 20;

/// Free-list bucketing: sizes are 16-aligned; exact-size buckets up to
/// SmallFreeMax index a vector, larger sizes hash.
constexpr uint64_t SmallFreeMax = 4096;

BuiltinKind classifyBuiltin(const std::string &Name) {
  if (Name == "print_i64")
    return BK_PrintI64;
  if (Name == "print_f64")
    return BK_PrintF64;
  if (Name == "f_sqrt")
    return BK_Sqrt;
  if (Name == "f_fabs")
    return BK_Fabs;
  if (Name == "f_exp")
    return BK_Exp;
  if (Name == "f_log")
    return BK_Log;
  if (Name == "f_floor")
    return BK_Floor;
  if (Name == "i_abs")
    return BK_IAbs;
  return BK_Unknown;
}

} // namespace

/// The interpreter implementation.
class Interpreter::Impl {
public:
  Impl(const Module &M, RunOptions Opts)
      : M(M), Opts(std::move(Opts)), Cache(this->Opts.Cache) {
    if (this->Opts.Attribution)
      Cache.setMissSink(this->Opts.Attribution);
  }

  RunResult run(const std::string &EntryName);

private:
  // -- Setup --
  void layoutGlobals();
  const DecodedFunction &decodedFunction(uint32_t Idx);
  void decodeInto(const Function *F, DecodedFunction &DF);

  // -- Memory --
  void ensureMem(uint64_t End) {
    if (End > Mem.size())
      Mem.resize(std::max<uint64_t>(End, Mem.size() * 2), 0);
  }
  bool checkAddr(uint64_t Addr, uint64_t Size, const char *What) {
    if (Addr < NullGuard || Addr >= FuncAddrBase) {
      trap(formatString("%s at invalid address 0x%llx", What,
                        static_cast<unsigned long long>(Addr)));
      return false;
    }
    ensureMem(Addr + Size);
    return true;
  }
  uint64_t heapAlloc(uint64_t Size, uint8_t Fill);
  bool heapFree(uint64_t Addr);
  std::vector<uint64_t> &freeBucket(uint64_t Size) {
    if (Size <= SmallFreeMax)
      return SmallFree[Size / 16];
    return LargeFree[Size];
  }

  int64_t readInt(uint64_t Addr, unsigned Bytes, bool SignExtend);
  void writeInt(uint64_t Addr, unsigned Bytes, int64_t V);
  double readFloat(uint64_t Addr, unsigned Bytes);
  void writeFloat(uint64_t Addr, unsigned Bytes, double V);

  // -- Execution --
  Reg executeFunction(const DecodedFunction &DF, size_t FrameBase,
                      unsigned Depth);
  Reg callFunction(const Function *F, uint32_t FIdx, const Operand *ArgOps,
                   unsigned NumArgs, Reg *&Frame, size_t FrameBase,
                   unsigned Depth);
  Reg callBuiltin(uint16_t Kind, const Function *F, const Operand *ArgOps,
                  unsigned NumArgs, const Reg *Frame);
  void simulateAccess(uint64_t Addr, unsigned Bytes, bool IsFp, bool IsStore,
                      const FieldAddrInst *Attrib, uint32_t Site,
                      uint32_t PmuSite, uint64_t Pc);

  /// Registers a human-readable label ("function+codeindex") for the
  /// packed PC token on its first attributed miss; per-PC bitmap keeps
  /// the miss path at one vector test after the first.
  void labelPc(uint64_t Pc) {
    uint32_t FIdx = static_cast<uint32_t>(Pc >> 32);
    uint32_t Idx = static_cast<uint32_t>(Pc);
    if (PcLabeled.size() <= FIdx)
      PcLabeled.resize(FuncList.size());
    std::vector<bool> &Seen = PcLabeled[FIdx];
    if (Seen.empty())
      Seen.resize(DecodedFns[FIdx]->Code.size());
    if (Seen[Idx])
      return;
    Seen[Idx] = true;
    Opts.Attribution->notePcLabel(
        Pc, formatString("%s+%u", FuncList[FIdx]->getName().c_str(), Idx));
  }

  void ensureArena(size_t End) {
    if (End > RegArena.size())
      RegArena.resize(std::max(End, RegArena.size() * 2));
  }

  void trap(const std::string &Reason) {
    if (!Result.Trapped) {
      Result.Trapped = true;
      Result.TrapReason = Reason;
    }
  }

  bool isStackAddress(uint64_t Addr) const {
    return Addr >= StackBase && Addr < StackLimit;
  }

  const Module &M;
  RunOptions Opts;
  CacheSim Cache;
  RunResult Result;

  std::vector<uint8_t> Mem;
  uint64_t StackBase = 0, StackTop = 0, StackLimit = 0;
  uint64_t HeapBump = 0;
  std::unordered_map<uint64_t, uint64_t> LiveAllocs; // addr -> size
  std::vector<std::vector<uint64_t>> SmallFree;      // [size/16] -> addrs
  std::unordered_map<uint64_t, std::vector<uint64_t>> LargeFree;

  std::unordered_map<const GlobalVariable *, uint64_t> GlobalAddr;
  std::vector<const Function *> FuncList; // Index == (addr-base)>>4.
  std::unordered_map<const Function *, uint32_t> FuncIndex;
  std::vector<std::unique_ptr<DecodedFunction>> DecodedFns;

  std::vector<Reg> RegArena; // Register frames of the live call chain.
  size_t ArenaTop = 0;

  /// [FuncIdx][CodeIdx] -> PC label already registered with the sink.
  std::vector<std::vector<bool>> PcLabeled;

  friend class Interpreter;
};

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

void Interpreter::Impl::layoutGlobals() {
  uint64_t Cursor = NullGuard;
  for (const auto &G : M.globals()) {
    Type *VT = G->getValueType();
    Cursor = alignTo(Cursor, std::max<unsigned>(VT->getAlign(), 8));
    GlobalAddr[G.get()] = Cursor;
    ensureMem(Cursor + VT->getSize());
    Cursor += VT->getSize();
  }
  // Apply scalar initializers, then parameter overrides.
  for (const auto &G : M.globals()) {
    if (!G->hasIntInit())
      continue;
    if (auto *IT = dyn_cast<IntType>(G->getValueType()))
      writeInt(GlobalAddr[G.get()], static_cast<unsigned>(IT->getSize()),
               G->getIntInit());
  }
  for (const auto &[Name, V] : Opts.IntParams) {
    GlobalVariable *G = M.lookupGlobal(Name);
    if (!G)
      reportFatalError("run parameter refers to unknown global '" + Name +
                       "'");
    auto *IT = dyn_cast<IntType>(G->getValueType());
    if (!IT)
      reportFatalError("run parameter global '" + Name +
                       "' is not an integer");
    writeInt(GlobalAddr[G], static_cast<unsigned>(IT->getSize()), V);
  }

  for (const auto &F : M.functions()) {
    FuncIndex[F.get()] = static_cast<uint32_t>(FuncList.size());
    FuncList.push_back(F.get());
  }
  DecodedFns.resize(FuncList.size());

  SmallFree.resize(SmallFreeMax / 16 + 1);
  RegArena.resize(4096);

  StackBase = alignTo(Mem.size() + 64, 4096);
  StackTop = StackBase;
  StackLimit = StackBase + StackBytes;
  HeapBump = alignTo(StackLimit + 4096, 4096);
  ensureMem(StackBase);
}

const DecodedFunction &Interpreter::Impl::decodedFunction(uint32_t Idx) {
  if (!DecodedFns[Idx]) {
    auto DF = std::make_unique<DecodedFunction>();
    DF->FuncIdx = Idx;
    decodeInto(FuncList[Idx], *DF);
    DecodedFns[Idx] = std::move(DF);
  }
  return *DecodedFns[Idx];
}

void Interpreter::Impl::decodeInto(const Function *F, DecodedFunction &DF) {
  DF.F = F;
  // Pass 1: assign a flat register slot to every value-producing
  // instruction and a frame offset to every alloca. The mapping is local
  // to this decode; the Module is never written.
  std::unordered_map<const Instruction *, int32_t> Slot;
  int32_t NextSlot = static_cast<int32_t>(F->getNumArgs());
  uint64_t Frame = 0;
  for (const auto &BB : F->blocks()) {
    for (const auto &I : BB->instructions()) {
      if (!I->getType()->isVoid())
        Slot[I.get()] = NextSlot++;
      if (const auto *A = dyn_cast<AllocaInst>(I.get())) {
        Type *Ty = A->getAllocatedType();
        Frame = alignTo(Frame, std::max<unsigned>(Ty->getAlign(), 1));
        DF.Allocas.push_back({Slot[I.get()], Frame});
        Frame += Ty->getSize();
      }
    }
  }
  DF.NumSlots = NextSlot;
  DF.FrameSize = alignTo(Frame, 16);

  auto operandFor = [&](const Value *V) -> Operand {
    Operand O;
    switch (V->getKind()) {
    case Value::VK_ConstantInt:
      O.Imm.I = cast<ConstantInt>(V)->getValue();
      return O;
    case Value::VK_ConstantFloat:
      O.Imm.F = cast<ConstantFloat>(V)->getValue();
      return O;
    case Value::VK_ConstantNull:
      O.Imm.I = 0;
      return O;
    case Value::VK_GlobalVariable:
      O.Imm.I =
          static_cast<int64_t>(GlobalAddr.at(cast<GlobalVariable>(V)));
      return O;
    case Value::VK_Function:
      O.Imm.I = static_cast<int64_t>(
          FuncAddrBase |
          (static_cast<uint64_t>(FuncIndex.at(cast<Function>(V))) << 4));
      return O;
    case Value::VK_Argument:
      O.Slot = static_cast<int32_t>(cast<Argument>(V)->getIndex());
      return O;
    case Value::VK_Instruction:
      O.Slot = Slot.at(cast<Instruction>(V));
      return O;
    }
    SLO_UNREACHABLE("unknown value kind");
  };

  auto resultSlot = [&](const Instruction &I) -> int32_t {
    return I.getType()->isVoid() ? -1 : Slot.at(&I);
  };

  // Pass 2: emit one DInst per instruction. Branch targets are recorded
  // as block numbers and patched to code indices once every block's
  // start offset is known.
  std::vector<uint32_t> BlockStart(F->size(), 0);
  for (const auto &BB : F->blocks()) {
    BlockStart[BB->getNumber()] = static_cast<uint32_t>(DF.Code.size());
    for (const auto &IPtr : BB->instructions()) {
      const Instruction &I = *IPtr;
      DInst D;
      D.ResultSlot = resultSlot(I);
      switch (I.getOpcode()) {
      case Instruction::OpAlloca:
        D.Op = DOp::Nop; // Frame address materialized at entry.
        break;
      case Instruction::OpLoad: {
        const auto &Ld = static_cast<const LoadInst &>(I);
        Type *Ty = Ld.getType();
        D.Op = DOp::Load;
        D.BaseCost = 0;
        D.A = operandFor(Ld.getPointer());
        D.Bytes = static_cast<uint8_t>(Ty->getSize());
        D.IsFloat = Ty->isFloat();
        D.SignExtend =
            !(Ty->isInt() && cast<IntType>(Ty)->getBits() == 1);
        D.Attrib = dyn_cast<FieldAddrInst>(Ld.getPointer());
        if (D.Attrib && Opts.Attribution)
          D.Site = Opts.Attribution->registerField(
              D.Attrib->getRecord()->getRecordName(),
              D.Attrib->getField().Name);
        if (D.Attrib && Opts.Pmu)
          D.PmuSite = Opts.Pmu->registerSite(D.Attrib->getRecord(),
                                             D.Attrib->getFieldIndex());
        break;
      }
      case Instruction::OpStore: {
        const auto &St = static_cast<const StoreInst &>(I);
        Type *Ty = St.getStoredValue()->getType();
        D.Op = DOp::Store;
        D.BaseCost = 0;
        D.A = operandFor(St.getPointer());
        D.B = operandFor(St.getStoredValue());
        D.Bytes = static_cast<uint8_t>(Ty->getSize());
        D.IsFloat = Ty->isFloat();
        D.Attrib = dyn_cast<FieldAddrInst>(St.getPointer());
        if (D.Attrib && Opts.Attribution)
          D.Site = Opts.Attribution->registerField(
              D.Attrib->getRecord()->getRecordName(),
              D.Attrib->getField().Name);
        if (D.Attrib && Opts.Pmu)
          D.PmuSite = Opts.Pmu->registerSite(D.Attrib->getRecord(),
                                             D.Attrib->getFieldIndex());
        break;
      }
      case Instruction::OpFieldAddr: {
        const auto &FA = static_cast<const FieldAddrInst &>(I);
        D.Op = DOp::FieldAddr;
        D.A = operandFor(FA.getBase());
        D.Extra = static_cast<int64_t>(FA.getField().Offset);
        break;
      }
      case Instruction::OpIndexAddr: {
        const auto &IA = static_cast<const IndexAddrInst &>(I);
        D.Op = DOp::IndexAddr;
        D.A = operandFor(IA.getBase());
        D.B = operandFor(IA.getIndex());
        D.Extra = static_cast<int64_t>(
            cast<PointerType>(IA.getType())->getPointee()->getSize());
        break;
      }
#define BINARY_CASE(OPC, COST)                                               \
  case Instruction::Op##OPC:                                                 \
    D.Op = DOp::OPC;                                                         \
    D.BaseCost = COST;                                                       \
    D.A = operandFor(I.getOperand(0));                                       \
    D.B = operandFor(I.getOperand(1));                                       \
    break;
        BINARY_CASE(Add, 1)
        BINARY_CASE(Sub, 1)
        BINARY_CASE(Mul, 2)
        BINARY_CASE(SDiv, 16)
        BINARY_CASE(SRem, 16)
        BINARY_CASE(And, 1)
        BINARY_CASE(Or, 1)
        BINARY_CASE(Xor, 1)
        BINARY_CASE(Shl, 1)
        BINARY_CASE(AShr, 1)
        BINARY_CASE(FAdd, 1)
        BINARY_CASE(FSub, 1)
        BINARY_CASE(FMul, 1)
        BINARY_CASE(FDiv, 16)
        BINARY_CASE(ICmpEQ, 1)
        BINARY_CASE(ICmpNE, 1)
        BINARY_CASE(ICmpSLT, 1)
        BINARY_CASE(ICmpSLE, 1)
        BINARY_CASE(ICmpSGT, 1)
        BINARY_CASE(ICmpSGE, 1)
        BINARY_CASE(FCmpEQ, 1)
        BINARY_CASE(FCmpNE, 1)
        BINARY_CASE(FCmpLT, 1)
        BINARY_CASE(FCmpLE, 1)
        BINARY_CASE(FCmpGT, 1)
        BINARY_CASE(FCmpGE, 1)
#undef BINARY_CASE
      case Instruction::OpTrunc: {
        unsigned Bits = cast<IntType>(I.getType())->getBits();
        D.A = operandFor(I.getOperand(0));
        if (Bits >= 64) {
          D.Op = DOp::Move;
        } else {
          D.Op = DOp::Trunc;
          D.Extra = Bits;
        }
        break;
      }
      case Instruction::OpSExt:
      case Instruction::OpZExt:
      case Instruction::OpBitcast:
      case Instruction::OpPtrToInt:
      case Instruction::OpIntToPtr:
      case Instruction::OpFPExt:
        // Register representation is canonical; these are moves at
        // runtime (sign/zero extension happened at produce time).
        D.Op = DOp::Move;
        D.A = operandFor(I.getOperand(0));
        break;
      case Instruction::OpFPTrunc:
        D.Op = DOp::FPTrunc;
        D.A = operandFor(I.getOperand(0));
        break;
      case Instruction::OpSIToFP:
        D.Op = DOp::SIToFP;
        D.A = operandFor(I.getOperand(0));
        D.Extra = cast<FloatType>(I.getType())->getBits();
        break;
      case Instruction::OpFPToSI:
        D.Op = DOp::FPToSI;
        D.A = operandFor(I.getOperand(0));
        break;
      case Instruction::OpCall: {
        const auto &C = static_cast<const CallInst &>(I);
        D.Op = DOp::Call;
        D.Callee = C.getCallee();
        D.CalleeIdx = FuncIndex.at(C.getCallee());
        if (C.getCallee()->isDeclaration())
          D.Builtin = classifyBuiltin(C.getCallee()->getName());
        D.ArgsBegin = static_cast<uint32_t>(DF.ArgPool.size());
        D.NumArgs = static_cast<uint16_t>(C.getNumArgs());
        for (unsigned A = 0; A < C.getNumArgs(); ++A)
          DF.ArgPool.push_back(operandFor(C.getArg(A)));
        break;
      }
      case Instruction::OpICall: {
        const auto &C = static_cast<const IndirectCallInst &>(I);
        D.Op = DOp::ICall;
        D.A = operandFor(C.getCalleePtr());
        D.ArgsBegin = static_cast<uint32_t>(DF.ArgPool.size());
        D.NumArgs = static_cast<uint16_t>(C.getNumArgs());
        for (unsigned A = 0; A < C.getNumArgs(); ++A)
          DF.ArgPool.push_back(operandFor(C.getArg(A)));
        break;
      }
      case Instruction::OpRet: {
        const auto &Rt = static_cast<const RetInst &>(I);
        D.Op = DOp::Ret;
        if (Rt.hasValue()) {
          D.Extra = 1;
          D.A = operandFor(Rt.getValue());
        }
        break;
      }
      case Instruction::OpBr: {
        const auto &Br = static_cast<const BrInst &>(I);
        D.Op = DOp::Br;
        D.Target0 = Br.getTarget()->getNumber();
        D.FromBB = BB.get();
        D.ToBB0 = Br.getTarget();
        break;
      }
      case Instruction::OpCondBr: {
        const auto &CBr = static_cast<const CondBrInst &>(I);
        D.Op = DOp::CondBr;
        D.A = operandFor(CBr.getCondition());
        D.Target0 = CBr.getTrueTarget()->getNumber();
        D.Target1 = CBr.getFalseTarget()->getNumber();
        D.FromBB = BB.get();
        D.ToBB0 = CBr.getTrueTarget();
        D.ToBB1 = CBr.getFalseTarget();
        break;
      }
      case Instruction::OpMalloc:
        D.Op = DOp::Malloc;
        D.A = operandFor(static_cast<const MallocInst &>(I).getSizeBytes());
        break;
      case Instruction::OpCalloc: {
        const auto &Cal = static_cast<const CallocInst &>(I);
        D.Op = DOp::Calloc;
        D.A = operandFor(Cal.getCount());
        D.B = operandFor(Cal.getElemSize());
        break;
      }
      case Instruction::OpRealloc: {
        const auto &Re = static_cast<const ReallocInst &>(I);
        D.Op = DOp::Realloc;
        D.A = operandFor(Re.getPtr());
        D.B = operandFor(Re.getSizeBytes());
        break;
      }
      case Instruction::OpFree:
        D.Op = DOp::Free;
        D.A = operandFor(static_cast<const FreeInst &>(I).getPtr());
        break;
      case Instruction::OpMemset: {
        const auto &Ms = static_cast<const MemsetInst &>(I);
        D.Op = DOp::Memset;
        D.A = operandFor(Ms.getPtr());
        D.B = operandFor(Ms.getByte());
        D.C = operandFor(Ms.getSizeBytes());
        break;
      }
      case Instruction::OpMemcpy: {
        const auto &Mc = static_cast<const MemcpyInst &>(I);
        D.Op = DOp::Memcpy;
        D.A = operandFor(Mc.getDst());
        D.B = operandFor(Mc.getSrc());
        D.C = operandFor(Mc.getSizeBytes());
        break;
      }
      }
      DF.Code.push_back(D);
    }
    if (!BB->getTerminator()) {
      DInst D;
      D.Op = DOp::TrapNoTerm;
      D.BaseCost = 0;
      DF.Code.push_back(D);
    }
  }

  // Patch branch targets from block numbers to code indices.
  for (DInst &D : DF.Code) {
    if (D.Op == DOp::Br) {
      D.Target0 = BlockStart[D.Target0];
    } else if (D.Op == DOp::CondBr) {
      D.Target0 = BlockStart[D.Target0];
      D.Target1 = BlockStart[D.Target1];
    }
  }
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

uint64_t Interpreter::Impl::heapAlloc(uint64_t Size, uint8_t Fill) {
  if (Size == 0)
    Size = 1;
  Size = alignTo(Size, 16);
  uint64_t Addr = 0;
  std::vector<uint64_t> &Bucket = freeBucket(Size);
  if (!Bucket.empty()) {
    Addr = Bucket.back();
    Bucket.pop_back();
  } else {
    Addr = HeapBump;
    HeapBump += Size;
  }
  ensureMem(Addr + Size);
  std::memset(Mem.data() + Addr, Fill, Size);
  LiveAllocs[Addr] = Size;
  Result.HeapBytesAllocated += Size;
  ++Result.HeapAllocations;
  return Addr;
}

bool Interpreter::Impl::heapFree(uint64_t Addr) {
  if (Addr == 0)
    return true; // free(NULL) is a no-op.
  auto It = LiveAllocs.find(Addr);
  if (It == LiveAllocs.end()) {
    trap(formatString("free of a non-heap address 0x%llx",
                      static_cast<unsigned long long>(Addr)));
    return false;
  }
  freeBucket(It->second).push_back(Addr);
  LiveAllocs.erase(It);
  return true;
}

int64_t Interpreter::Impl::readInt(uint64_t Addr, unsigned Bytes,
                                   bool SignExtend) {
  uint64_t Raw = 0;
  std::memcpy(&Raw, Mem.data() + Addr, Bytes);
  if (Bytes == 8)
    return static_cast<int64_t>(Raw);
  if (SignExtend) {
    uint64_t SignBit = 1ull << (Bytes * 8 - 1);
    if (Raw & SignBit)
      Raw |= ~((SignBit << 1) - 1);
  }
  return static_cast<int64_t>(Raw);
}

void Interpreter::Impl::writeInt(uint64_t Addr, unsigned Bytes, int64_t V) {
  std::memcpy(Mem.data() + Addr, &V, Bytes);
}

double Interpreter::Impl::readFloat(uint64_t Addr, unsigned Bytes) {
  if (Bytes == 4) {
    float F;
    std::memcpy(&F, Mem.data() + Addr, 4);
    return F;
  }
  double D;
  std::memcpy(&D, Mem.data() + Addr, 8);
  return D;
}

void Interpreter::Impl::writeFloat(uint64_t Addr, unsigned Bytes, double V) {
  if (Bytes == 4) {
    float F = static_cast<float>(V);
    std::memcpy(Mem.data() + Addr, &F, 4);
    return;
  }
  std::memcpy(Mem.data() + Addr, &V, 8);
}

//===----------------------------------------------------------------------===//
// Cache simulation and attribution
//===----------------------------------------------------------------------===//

void Interpreter::Impl::simulateAccess(uint64_t Addr, unsigned Bytes,
                                       bool IsFp, bool IsStore,
                                       const FieldAddrInst *Attrib,
                                       uint32_t Site, uint32_t PmuSite,
                                       uint64_t Pc) {
  // Stack slots model register-promoted locals: free, not simulated.
  if (isStackAddress(Addr))
    return;
  if (IsStore)
    ++Result.Stores;
  else
    ++Result.Loads;
  ++Result.Cycles; // Issue cost of a real memory operation.
  if (!Opts.SimulateCache)
    return;
  if (Opts.Attribution)
    Cache.setAccessContext(Site, Pc);
  CacheAccessResult A = Cache.access(Addr, Bytes, IsStore, IsFp);
  Result.Cycles += A.Stall;
  Result.MemStallCycles += A.Stall;
  if (Opts.Attribution && A.FirstLevelMiss)
    labelPc(Pc);
  if (Opts.Pmu)
    Opts.Pmu->observeAccess(PmuSite, IsStore, A.FirstLevelMiss, A.Latency);

  // Exact field collection; with a PMU attached the field events come
  // from the sampled estimates flushed at end of run instead.
  if (!Opts.Profile || !Attrib || Opts.Pmu)
    return;
  FieldCacheStats &S =
      Opts.Profile->fieldStats(Attrib->getRecord(), Attrib->getFieldIndex());
  if (IsStore) {
    ++S.Stores;
  } else {
    ++S.Loads;
    S.TotalLatency += static_cast<double>(A.Latency);
  }
  if (A.FirstLevelMiss)
    ++S.Misses;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

Reg Interpreter::Impl::callBuiltin(uint16_t Kind, const Function *F,
                                   const Operand *ArgOps, unsigned NumArgs,
                                   const Reg *Frame) {
  Reg R;
  R.I = 0;
  Reg A0;
  A0.I = 0;
  if (NumArgs > 0)
    A0 = get(ArgOps[0], Frame);
  switch (Kind) {
  case BK_PrintI64:
    Result.PrintedInts.push_back(A0.I);
    return R;
  case BK_PrintF64:
    Result.PrintedFloats.push_back(A0.F);
    return R;
  case BK_Sqrt:
    R.F = std::sqrt(A0.F);
    return R;
  case BK_Fabs:
    R.F = std::fabs(A0.F);
    return R;
  case BK_Exp:
    R.F = std::exp(A0.F);
    return R;
  case BK_Log:
    R.F = std::log(A0.F);
    return R;
  case BK_Floor:
    R.F = std::floor(A0.F);
    return R;
  case BK_IAbs:
    R.I = A0.I < 0 ? -A0.I : A0.I;
    return R;
  default:
    trap("call to unimplemented library function '" + F->getName() + "'");
    return R;
  }
}

/// Calls \p F with the given argument operands (evaluated in the caller's
/// frame). \p Frame is the caller's frame pointer and is refreshed if the
/// register arena reallocates.
Reg Interpreter::Impl::callFunction(const Function *F, uint32_t FIdx,
                                    const Operand *ArgOps, unsigned NumArgs,
                                    Reg *&Frame, size_t FrameBase,
                                    unsigned Depth) {
  Reg Void;
  Void.I = 0;
  if (F->isDeclaration())
    return callBuiltin(classifyBuiltin(F->getName()), F, ArgOps, NumArgs,
                       Frame);
  if (Depth + 1 > Opts.MaxCallDepth) {
    trap("call depth limit exceeded in '" + F->getName() + "'");
    return Void;
  }

  const DecodedFunction &DF = decodedFunction(FIdx);
  size_t CalleeBase = ArenaTop;
  ensureArena(CalleeBase + static_cast<size_t>(DF.NumSlots));
  Frame = RegArena.data() + FrameBase; // The arena may have moved.
  Reg *CalleeFrame = RegArena.data() + CalleeBase;
  Reg Zero;
  Zero.I = 0;
  std::fill(CalleeFrame, CalleeFrame + DF.NumSlots, Zero);
  for (unsigned A = 0; A < NumArgs; ++A)
    CalleeFrame[A] = get(ArgOps[A], Frame);
  ArenaTop = CalleeBase + static_cast<size_t>(DF.NumSlots);

  Reg R = executeFunction(DF, CalleeBase, Depth + 1);

  ArenaTop = CalleeBase;
  Frame = RegArena.data() + FrameBase;
  return R;
}

Reg Interpreter::Impl::executeFunction(const DecodedFunction &DF,
                                       size_t FrameBase, unsigned Depth) {
  Reg Void;
  Void.I = 0;
  if (StackTop + DF.FrameSize > StackLimit) {
    trap("simulated stack overflow in '" + DF.F->getName() + "'");
    return Void;
  }
  uint64_t MemFrameBase = StackTop;
  StackTop += DF.FrameSize;
  ensureMem(StackTop);

  Reg *Frame = RegArena.data() + FrameBase;
  for (const auto &[SlotIdx, Off] : DF.Allocas)
    Frame[SlotIdx].I = static_cast<int64_t>(MemFrameBase + Off);

  if (Opts.Profile)
    Opts.Profile->countEntry(DF.F);

  Reg RetVal = Void;
  const DInst *Code = DF.Code.data();
  uint32_t PC = 0;
  for (;;) {
    const DInst &D = Code[PC];
    ++Result.Instructions;
    Result.Cycles += D.BaseCost;
    if (Result.Instructions > Opts.MaxInstructions)
      break;
    ++PC;
    switch (D.Op) {
    case DOp::Nop:
      break;
    case DOp::Load: {
      uint64_t Addr = static_cast<uint64_t>(get(D.A, Frame).I);
      if (!checkAddr(Addr, D.Bytes, "load"))
        break;
      Reg R;
      if (D.IsFloat)
        R.F = readFloat(Addr, D.Bytes);
      else
        R.I = readInt(Addr, D.Bytes, D.SignExtend);
      Frame[D.ResultSlot] = R;
      simulateAccess(Addr, D.Bytes, D.IsFloat, /*IsStore=*/false, D.Attrib,
                     D.Site, D.PmuSite,
                     (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1));
      break;
    }
    case DOp::Store: {
      uint64_t Addr = static_cast<uint64_t>(get(D.A, Frame).I);
      if (!checkAddr(Addr, D.Bytes, "store"))
        break;
      Reg V = get(D.B, Frame);
      if (D.IsFloat)
        writeFloat(Addr, D.Bytes, V.F);
      else
        writeInt(Addr, D.Bytes, V.I);
      simulateAccess(Addr, D.Bytes, D.IsFloat, /*IsStore=*/true, D.Attrib,
                     D.Site, D.PmuSite,
                     (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1));
      break;
    }
    case DOp::FieldAddr: {
      Reg R;
      R.I = get(D.A, Frame).I + D.Extra;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::IndexAddr: {
      Reg R;
      R.I = get(D.A, Frame).I + get(D.B, Frame).I * D.Extra;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Add: {
      Reg R;
      R.I = get(D.A, Frame).I + get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Sub: {
      Reg R;
      R.I = get(D.A, Frame).I - get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Mul: {
      Reg R;
      R.I = get(D.A, Frame).I * get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::SDiv: {
      int64_t B = get(D.B, Frame).I;
      if (B == 0) {
        trap("integer division by zero");
        break;
      }
      Reg R;
      R.I = get(D.A, Frame).I / B;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::SRem: {
      int64_t B = get(D.B, Frame).I;
      if (B == 0) {
        trap("integer remainder by zero");
        break;
      }
      Reg R;
      R.I = get(D.A, Frame).I % B;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::And: {
      Reg R;
      R.I = get(D.A, Frame).I & get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Or: {
      Reg R;
      R.I = get(D.A, Frame).I | get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Xor: {
      Reg R;
      R.I = get(D.A, Frame).I ^ get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Shl: {
      Reg R;
      R.I = get(D.A, Frame).I << (get(D.B, Frame).I & 63);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::AShr: {
      Reg R;
      R.I = get(D.A, Frame).I >> (get(D.B, Frame).I & 63);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FAdd: {
      Reg R;
      R.F = get(D.A, Frame).F + get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FSub: {
      Reg R;
      R.F = get(D.A, Frame).F - get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FMul: {
      Reg R;
      R.F = get(D.A, Frame).F * get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FDiv: {
      Reg R;
      R.F = get(D.A, Frame).F / get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
#define CMP_CASE(OPC, EXPR)                                                  \
  case DOp::OPC: {                                                           \
    Reg LHS = get(D.A, Frame), RHS = get(D.B, Frame);                        \
    (void)LHS;                                                               \
    (void)RHS;                                                               \
    Reg R;                                                                   \
    R.I = (EXPR) ? 1 : 0;                                                    \
    Frame[D.ResultSlot] = R;                                                 \
    break;                                                                   \
  }
      CMP_CASE(ICmpEQ, LHS.I == RHS.I)
      CMP_CASE(ICmpNE, LHS.I != RHS.I)
      CMP_CASE(ICmpSLT, LHS.I < RHS.I)
      CMP_CASE(ICmpSLE, LHS.I <= RHS.I)
      CMP_CASE(ICmpSGT, LHS.I > RHS.I)
      CMP_CASE(ICmpSGE, LHS.I >= RHS.I)
      CMP_CASE(FCmpEQ, LHS.F == RHS.F)
      CMP_CASE(FCmpNE, LHS.F != RHS.F)
      CMP_CASE(FCmpLT, LHS.F < RHS.F)
      CMP_CASE(FCmpLE, LHS.F <= RHS.F)
      CMP_CASE(FCmpGT, LHS.F > RHS.F)
      CMP_CASE(FCmpGE, LHS.F >= RHS.F)
#undef CMP_CASE
    case DOp::Trunc: {
      uint64_t Mask = (1ull << D.Extra) - 1;
      uint64_t U = static_cast<uint64_t>(get(D.A, Frame).I) & Mask;
      if (D.Extra > 1 && (U & (1ull << (D.Extra - 1))))
        U |= ~Mask;
      Reg R;
      R.I = static_cast<int64_t>(U);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Move:
      Frame[D.ResultSlot] = get(D.A, Frame);
      break;
    case DOp::FPTrunc: {
      Reg R;
      R.F = static_cast<double>(static_cast<float>(get(D.A, Frame).F));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::SIToFP: {
      Reg R;
      R.F = static_cast<double>(get(D.A, Frame).I);
      if (D.Extra == 32)
        R.F = static_cast<float>(R.F);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FPToSI: {
      Reg R;
      R.I = static_cast<int64_t>(get(D.A, Frame).F);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Call: {
      Reg R;
      if (D.Builtin != BK_NotBuiltin)
        R = callBuiltin(D.Builtin, D.Callee, DF.ArgPool.data() + D.ArgsBegin,
                        D.NumArgs, Frame);
      else
        R = callFunction(D.Callee, D.CalleeIdx,
                         DF.ArgPool.data() + D.ArgsBegin, D.NumArgs, Frame,
                         FrameBase, Depth);
      if (D.ResultSlot >= 0)
        Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::ICall: {
      uint64_t Target = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t Rel = Target - FuncAddrBase;
      if (Target < FuncAddrBase || (Rel & 15) != 0 ||
          (Rel >> 4) >= FuncList.size()) {
        trap("indirect call through a non-function pointer");
        break;
      }
      uint32_t FIdx = static_cast<uint32_t>(Rel >> 4);
      Reg R = callFunction(FuncList[FIdx], FIdx,
                           DF.ArgPool.data() + D.ArgsBegin, D.NumArgs, Frame,
                           FrameBase, Depth);
      if (D.ResultSlot >= 0)
        Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Ret:
      if (D.Extra)
        RetVal = get(D.A, Frame);
      StackTop = MemFrameBase;
      return RetVal;
    case DOp::Br:
      if (Opts.Profile)
        Opts.Profile->countEdge(D.FromBB, D.ToBB0);
      PC = D.Target0;
      break;
    case DOp::CondBr: {
      bool C = get(D.A, Frame).I != 0;
      const BasicBlock *To = C ? D.ToBB0 : D.ToBB1;
      if (Opts.Profile)
        Opts.Profile->countEdge(D.FromBB, To);
      PC = C ? D.Target0 : D.Target1;
      break;
    }
    case DOp::Malloc: {
      uint64_t Size = static_cast<uint64_t>(get(D.A, Frame).I);
      Reg R;
      R.I = static_cast<int64_t>(heapAlloc(Size, 0xAA));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Calloc: {
      uint64_t N = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t Sz = static_cast<uint64_t>(get(D.B, Frame).I);
      Reg R;
      R.I = static_cast<int64_t>(heapAlloc(N * Sz, 0x00));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Realloc: {
      uint64_t Old = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t NewSize = static_cast<uint64_t>(get(D.B, Frame).I);
      uint64_t NewAddr = heapAlloc(NewSize, 0xAA);
      if (Old != 0) {
        auto It = LiveAllocs.find(Old);
        if (It == LiveAllocs.end()) {
          trap("realloc of a non-heap address");
          break;
        }
        uint64_t CopyBytes = std::min(It->second, NewSize);
        ensureMem(NewAddr + CopyBytes);
        std::memmove(Mem.data() + NewAddr, Mem.data() + Old, CopyBytes);
        heapFree(Old);
      }
      Reg R;
      R.I = static_cast<int64_t>(NewAddr);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Free:
      heapFree(static_cast<uint64_t>(get(D.A, Frame).I));
      break;
    case DOp::Memset: {
      uint64_t Addr = static_cast<uint64_t>(get(D.A, Frame).I);
      int64_t Byte = get(D.B, Frame).I;
      uint64_t Size = static_cast<uint64_t>(get(D.C, Frame).I);
      if (!checkAddr(Addr, Size, "memset"))
        break;
      std::memset(Mem.data() + Addr, static_cast<int>(Byte & 0xff), Size);
      // Touch one cache line per 64 bytes, with the chunk's real width
      // so misaligned streams pay for the lines they straddle.
      if (Opts.SimulateCache) {
        uint64_t Pc = (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1);
        if (Opts.Attribution)
          Cache.setAccessContext(MissAttribution::MemsetSite, Pc);
        for (uint64_t Off = 0; Off < Size; Off += 64) {
          CacheAccessResult A =
              Cache.access(Addr + Off,
                           static_cast<unsigned>(
                               std::min<uint64_t>(64, Size - Off)),
                           /*IsStore=*/true, false);
          Result.Cycles += A.Stall;
          if (Opts.Attribution && A.FirstLevelMiss)
            labelPc(Pc);
          if (Opts.Pmu)
            Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/true,
                                    A.FirstLevelMiss, A.Latency);
        }
      }
      break;
    }
    case DOp::Memcpy: {
      uint64_t Dst = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t Src = static_cast<uint64_t>(get(D.B, Frame).I);
      uint64_t Size = static_cast<uint64_t>(get(D.C, Frame).I);
      if (!checkAddr(Dst, Size, "memcpy") || !checkAddr(Src, Size, "memcpy"))
        break;
      std::memmove(Mem.data() + Dst, Mem.data() + Src, Size);
      if (Opts.SimulateCache) {
        uint64_t Pc = (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1);
        if (Opts.Attribution)
          Cache.setAccessContext(MissAttribution::MemcpySite, Pc);
        for (uint64_t Off = 0; Off < Size; Off += 64) {
          unsigned W =
              static_cast<unsigned>(std::min<uint64_t>(64, Size - Off));
          CacheAccessResult RdA =
              Cache.access(Src + Off, W, /*IsStore=*/false, false);
          CacheAccessResult WrA =
              Cache.access(Dst + Off, W, /*IsStore=*/true, false);
          Result.Cycles += RdA.Stall + WrA.Stall;
          if (Opts.Attribution && (RdA.FirstLevelMiss || WrA.FirstLevelMiss))
            labelPc(Pc);
          if (Opts.Pmu) {
            Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/false,
                                    RdA.FirstLevelMiss, RdA.Latency);
            Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/true,
                                    WrA.FirstLevelMiss, WrA.Latency);
          }
        }
      }
      break;
    }
    case DOp::TrapNoTerm:
      --Result.Instructions; // The fall-through itself is not executed.
      trap("block fell through without a terminator");
      break;
    }
    if (Result.Trapped)
      break;
  }

  StackTop = MemFrameBase;
  return RetVal;
}

RunResult Interpreter::Impl::run(const std::string &EntryName) {
  std::string SpanName =
      Opts.Trace ? "interpret/" + M.getName() : std::string();
  TraceSpan Span(Opts.Trace, SpanName.c_str(), "run");
  const Function *Entry = M.lookupFunction(EntryName);
  if (!Entry || Entry->isDeclaration()) {
    trap("entry function '" + EntryName + "' is not defined");
    return Result;
  }
  layoutGlobals();

  uint32_t EntryIdx = FuncIndex.at(Entry);
  const DecodedFunction &DF = decodedFunction(EntryIdx);
  ensureArena(static_cast<size_t>(DF.NumSlots));
  Reg Zero;
  Zero.I = 0;
  std::fill(RegArena.begin(), RegArena.begin() + DF.NumSlots, Zero);
  ArenaTop = static_cast<size_t>(DF.NumSlots);
  Reg R = executeFunction(DF, 0, 0);

  if (Result.Instructions > Opts.MaxInstructions)
    trap("instruction budget exceeded");
  Result.ExitCode = R.I;
  Result.HeapLiveAllocs = LiveAllocs.size();
  for (const auto &[Addr, Size] : LiveAllocs) {
    (void)Addr;
    Result.HeapLiveBytes += Size;
  }
  Result.L1 = Cache.l1Stats();
  Result.L2 = Cache.l2Stats();
  Result.L3 = Cache.l3Stats();
  Result.FirstLevelMisses = Cache.firstLevelMissEvents();

  if (Opts.Pmu) {
    Opts.Pmu->finishRun();
    if (Opts.Profile) {
      for (const SampledPmu::SiteEstimate &E : Opts.Pmu->estimates()) {
        FieldCacheStats &S = Opts.Profile->fieldStats(
            static_cast<const RecordType *>(E.RecordKey), E.FieldIndex);
        S.Loads += E.Loads;
        S.Stores += E.Stores;
        S.Misses += E.Misses;
        S.TotalLatency += E.TotalLatency;
      }
    }
    if (Opts.Counters)
      Opts.Pmu->publishCounters(*Opts.Counters);
  }

  if (Opts.Counters) {
    CounterRegistry &C = *Opts.Counters;
    C.add("interp.instructions", Result.Instructions);
    C.add("interp.cycles", Result.Cycles);
    C.add("interp.mem_stall_cycles", Result.MemStallCycles);
    C.add("interp.loads", Result.Loads);
    C.add("interp.stores", Result.Stores);
    C.add("interp.heap_allocations", Result.HeapAllocations);
    C.add("interp.heap_bytes", Result.HeapBytesAllocated);
    C.add("interp.heap_leaked_allocs", Result.HeapLiveAllocs);
    C.add("interp.heap_leaked_bytes", Result.HeapLiveBytes);
    uint64_t Decoded = 0;
    for (const auto &DF : DecodedFns)
      Decoded += DF != nullptr;
    C.add("interp.functions_decoded", Decoded);
    C.add("interp.traps", Result.Trapped ? 1 : 0);
    Cache.publishCounters(C);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(const Module &M, RunOptions Opts)
    : P(std::make_unique<Impl>(M, std::move(Opts))) {}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const std::string &EntryName) {
  return P->run(EntryName);
}

RunResult slo::runProgram(const Module &M, RunOptions Opts) {
  Interpreter I(M, std::move(Opts));
  return I.run();
}
