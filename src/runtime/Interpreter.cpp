//===- runtime/Interpreter.cpp - IR interpreter with cache model ----------===//
//
// The tree-walker engine: the simple reference implementation of the
// DInst contract (runtime/Bytecode.h). Every function is pre-decoded, on
// first call, into a dense stream of DInst records whose operands are
// resolved to flat register-slot indices or immediate values; the
// dispatch loop then runs over plain vectors — no std::map lookups, no
// Value-kind switches, no per-call allocation (frames live in a register
// arena). Decoding never mutates the Module, so any number of
// interpreters may run concurrently over one module (the parallel bench
// harness does).
//
// The threaded bytecode VM (runtime/VM.cpp) is the fast tier; it must
// match this engine bit for bit in every observable output, so semantic
// fixes land here first and the engine-parity fuzz oracle keeps the two
// aligned.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "observability/CounterRegistry.h"
#include "observability/MissAttribution.h"
#include "observability/SampledPmu.h"
#include "observability/Tracer.h"
#include "runtime/Bytecode.h"
#include "runtime/VM.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace slo;
using namespace slo::engine;

/// The interpreter implementation.
class Interpreter::Impl {
public:
  Impl(const Module &M, RunOptions Opts)
      : M(M), Opts(std::move(Opts)), Cache(this->Opts.Cache) {
    if (this->Opts.Attribution)
      Cache.setMissSink(this->Opts.Attribution);
  }

  RunResult run(const std::string &EntryName);

private:
  // -- Setup --
  const DecodedFunction &decodedFunction(uint32_t Idx);

  // -- Memory --
  bool checkAddr(uint64_t Addr, uint64_t Size, const char *What) {
    if (!SM.checkAddr(Addr, Size)) {
      trap(formatString("%s at invalid address 0x%llx", What,
                        static_cast<unsigned long long>(Addr)));
      return false;
    }
    return true;
  }
  bool heapFree(uint64_t Addr) {
    if (!SM.heapFree(Addr)) {
      trap(formatString("free of a non-heap address 0x%llx",
                        static_cast<unsigned long long>(Addr)));
      return false;
    }
    return true;
  }

  // -- Execution --
  Reg executeFunction(const DecodedFunction &DF, size_t FrameBase,
                      unsigned Depth);
  Reg callFunction(const Function *F, uint32_t FIdx, const Operand *ArgOps,
                   unsigned NumArgs, Reg *&Frame, size_t FrameBase,
                   unsigned Depth);
  Reg callBuiltin(uint16_t Kind, const Function *F, const Operand *ArgOps,
                  unsigned NumArgs, const Reg *Frame);
  void simulateAccess(uint64_t Addr, unsigned Bytes, bool IsFp, bool IsStore,
                      const FieldAddrInst *Attrib, uint32_t Site,
                      uint32_t PmuSite, uint64_t Pc);

  /// Registers a human-readable label ("function+codeindex") for the
  /// packed PC token on its first attributed miss; per-PC bitmap keeps
  /// the miss path at one vector test after the first.
  void labelPc(uint64_t Pc) {
    uint32_t FIdx = static_cast<uint32_t>(Pc >> 32);
    uint32_t Idx = static_cast<uint32_t>(Pc);
    if (PcLabeled.size() <= FIdx)
      PcLabeled.resize(FuncList.size());
    std::vector<bool> &Seen = PcLabeled[FIdx];
    if (Seen.empty())
      Seen.resize(DecodedFns[FIdx]->Code.size());
    if (Seen[Idx])
      return;
    Seen[Idx] = true;
    Opts.Attribution->notePcLabel(
        Pc, formatString("%s+%u", FuncList[FIdx]->getName().c_str(), Idx));
  }

  void ensureArena(size_t End) {
    if (End > RegArena.size())
      RegArena.resize(std::max(End, RegArena.size() * 2));
  }

  void trap(const std::string &Reason) {
    if (!Result.Trapped) {
      Result.Trapped = true;
      Result.TrapReason = Reason;
    }
  }

  const Module &M;
  RunOptions Opts;
  CacheSim Cache;
  RunResult Result;
  SimMemory SM;

  std::unordered_map<const GlobalVariable *, uint64_t> GlobalAddr;
  std::vector<const Function *> FuncList; // Index == (addr-base)>>4.
  std::unordered_map<const Function *, uint32_t> FuncIndex;
  std::vector<std::unique_ptr<DecodedFunction>> DecodedFns;

  std::vector<Reg> RegArena; // Register frames of the live call chain.
  size_t ArenaTop = 0;

  /// [FuncIdx][CodeIdx] -> PC label already registered with the sink.
  std::vector<std::vector<bool>> PcLabeled;

  friend class Interpreter;
};

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

const DecodedFunction &Interpreter::Impl::decodedFunction(uint32_t Idx) {
  if (!DecodedFns[Idx]) {
    auto DF = std::make_unique<DecodedFunction>();
    DF->FuncIdx = Idx;
    DecodeContext Ctx;
    Ctx.GlobalAddr = &GlobalAddr;
    Ctx.FuncIndex = &FuncIndex;
    Ctx.Attribution = Opts.Attribution;
    Ctx.Pmu = Opts.Pmu;
    decodeFunction(FuncList[Idx], *DF, Ctx);
    DecodedFns[Idx] = std::move(DF);
  }
  return *DecodedFns[Idx];
}

//===----------------------------------------------------------------------===//
// Cache simulation and attribution
//===----------------------------------------------------------------------===//

void Interpreter::Impl::simulateAccess(uint64_t Addr, unsigned Bytes,
                                       bool IsFp, bool IsStore,
                                       const FieldAddrInst *Attrib,
                                       uint32_t Site, uint32_t PmuSite,
                                       uint64_t Pc) {
  // Stack slots model register-promoted locals: free, not simulated.
  if (SM.isStackAddress(Addr))
    return;
  if (IsStore)
    ++Result.Stores;
  else
    ++Result.Loads;
  ++Result.Cycles; // Issue cost of a real memory operation.
  if (!Opts.SimulateCache)
    return;
  if (Opts.Attribution)
    Cache.setAccessContext(Site, Pc);
  CacheAccessResult A = Cache.access(Addr, Bytes, IsStore, IsFp);
  Result.Cycles += A.Stall;
  Result.MemStallCycles += A.Stall;
  if (Opts.Attribution && A.FirstLevelMiss)
    labelPc(Pc);
  if (Opts.Pmu)
    Opts.Pmu->observeAccess(PmuSite, IsStore, A.FirstLevelMiss, A.Latency);

  // Exact field collection; with a PMU attached the field events come
  // from the sampled estimates flushed at end of run instead.
  if (!Opts.Profile || !Attrib || Opts.Pmu)
    return;
  FieldCacheStats &S =
      Opts.Profile->fieldStats(Attrib->getRecord(), Attrib->getFieldIndex());
  if (IsStore) {
    ++S.Stores;
  } else {
    ++S.Loads;
    S.TotalLatency += static_cast<double>(A.Latency);
  }
  if (A.FirstLevelMiss)
    ++S.Misses;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

Reg Interpreter::Impl::callBuiltin(uint16_t Kind, const Function *F,
                                   const Operand *ArgOps, unsigned NumArgs,
                                   const Reg *Frame) {
  Reg R;
  R.I = 0;
  Reg A0;
  A0.I = 0;
  if (NumArgs > 0)
    A0 = get(ArgOps[0], Frame);
  switch (Kind) {
  case BK_PrintI64:
    Result.PrintedInts.push_back(A0.I);
    return R;
  case BK_PrintF64:
    Result.PrintedFloats.push_back(A0.F);
    return R;
  case BK_Sqrt:
    R.F = std::sqrt(A0.F);
    return R;
  case BK_Fabs:
    R.F = std::fabs(A0.F);
    return R;
  case BK_Exp:
    R.F = std::exp(A0.F);
    return R;
  case BK_Log:
    R.F = std::log(A0.F);
    return R;
  case BK_Floor:
    R.F = std::floor(A0.F);
    return R;
  case BK_IAbs:
    // Two's-complement negate: i_abs(INT64_MIN) wraps to INT64_MIN
    // (DInst contract; -A0.I would be signed-overflow UB).
    R.I = A0.I < 0 ? static_cast<int64_t>(0ull - static_cast<uint64_t>(A0.I))
                   : A0.I;
    return R;
  default:
    trap("call to unimplemented library function '" + F->getName() + "'");
    return R;
  }
}

/// Calls \p F with the given argument operands (evaluated in the caller's
/// frame). \p Frame is the caller's frame pointer and is refreshed if the
/// register arena reallocates.
Reg Interpreter::Impl::callFunction(const Function *F, uint32_t FIdx,
                                    const Operand *ArgOps, unsigned NumArgs,
                                    Reg *&Frame, size_t FrameBase,
                                    unsigned Depth) {
  Reg Void;
  Void.I = 0;
  if (F->isDeclaration())
    return callBuiltin(classifyBuiltin(F->getName()), F, ArgOps, NumArgs,
                       Frame);
  if (Depth + 1 > Opts.MaxCallDepth) {
    trap("call depth limit exceeded in '" + F->getName() + "'");
    return Void;
  }

  const DecodedFunction &DF = decodedFunction(FIdx);
  size_t CalleeBase = ArenaTop;
  ensureArena(CalleeBase + static_cast<size_t>(DF.NumSlots));
  Frame = RegArena.data() + FrameBase; // The arena may have moved.
  Reg *CalleeFrame = RegArena.data() + CalleeBase;
  Reg Zero;
  Zero.I = 0;
  std::fill(CalleeFrame, CalleeFrame + DF.NumSlots, Zero);
  for (unsigned A = 0; A < NumArgs; ++A)
    CalleeFrame[A] = get(ArgOps[A], Frame);
  ArenaTop = CalleeBase + static_cast<size_t>(DF.NumSlots);

  Reg R = executeFunction(DF, CalleeBase, Depth + 1);

  ArenaTop = CalleeBase;
  Frame = RegArena.data() + FrameBase;
  return R;
}

Reg Interpreter::Impl::executeFunction(const DecodedFunction &DF,
                                       size_t FrameBase, unsigned Depth) {
  Reg Void;
  Void.I = 0;
  if (SM.StackTop + DF.FrameSize > SM.StackLimit) {
    trap("simulated stack overflow in '" + DF.F->getName() + "'");
    return Void;
  }
  uint64_t MemFrameBase = SM.StackTop;
  SM.StackTop += DF.FrameSize;
  SM.ensureMem(SM.StackTop);

  Reg *Frame = RegArena.data() + FrameBase;
  for (const auto &[SlotIdx, Off] : DF.Allocas)
    Frame[SlotIdx].I = static_cast<int64_t>(MemFrameBase + Off);

  if (Opts.Profile)
    Opts.Profile->countEntry(DF.F);

  Reg RetVal = Void;
  const DInst *Code = DF.Code.data();
  uint32_t PC = 0;
  for (;;) {
    const DInst &D = Code[PC];
    ++Result.Instructions;
    Result.Cycles += D.BaseCost;
    if (Result.Instructions > Opts.MaxInstructions)
      break;
    ++PC;
    switch (D.Op) {
    case DOp::Nop:
      break;
    case DOp::Load: {
      uint64_t Addr = static_cast<uint64_t>(get(D.A, Frame).I);
      if (!checkAddr(Addr, D.Bytes, "load"))
        break;
      Reg R;
      if (D.IsFloat)
        R.F = SM.readFloat(Addr, D.Bytes);
      else
        R.I = SM.readInt(Addr, D.Bytes, D.SignExtend);
      Frame[D.ResultSlot] = R;
      simulateAccess(Addr, D.Bytes, D.IsFloat, /*IsStore=*/false, D.Attrib,
                     D.Site, D.PmuSite,
                     (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1));
      break;
    }
    case DOp::Store: {
      uint64_t Addr = static_cast<uint64_t>(get(D.A, Frame).I);
      if (!checkAddr(Addr, D.Bytes, "store"))
        break;
      Reg V = get(D.B, Frame);
      if (D.IsFloat)
        SM.writeFloat(Addr, D.Bytes, V.F);
      else
        SM.writeInt(Addr, D.Bytes, V.I);
      simulateAccess(Addr, D.Bytes, D.IsFloat, /*IsStore=*/true, D.Attrib,
                     D.Site, D.PmuSite,
                     (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1));
      break;
    }
    // Integer arithmetic (including address arithmetic) wraps modulo
    // 2^64 — DInst contract — so it is computed in uint64_t; the signed
    // form would be UB on overflow and free to diverge across engines.
    case DOp::FieldAddr: {
      Reg R;
      R.I = static_cast<int64_t>(static_cast<uint64_t>(get(D.A, Frame).I) +
                                 static_cast<uint64_t>(D.Extra));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::IndexAddr: {
      Reg R;
      R.I = static_cast<int64_t>(static_cast<uint64_t>(get(D.A, Frame).I) +
                                 static_cast<uint64_t>(get(D.B, Frame).I) *
                                     static_cast<uint64_t>(D.Extra));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Add: {
      Reg R;
      R.I = static_cast<int64_t>(static_cast<uint64_t>(get(D.A, Frame).I) +
                                 static_cast<uint64_t>(get(D.B, Frame).I));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Sub: {
      Reg R;
      R.I = static_cast<int64_t>(static_cast<uint64_t>(get(D.A, Frame).I) -
                                 static_cast<uint64_t>(get(D.B, Frame).I));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Mul: {
      Reg R;
      R.I = static_cast<int64_t>(static_cast<uint64_t>(get(D.A, Frame).I) *
                                 static_cast<uint64_t>(get(D.B, Frame).I));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::SDiv: {
      int64_t B = get(D.B, Frame).I;
      if (B == 0) {
        trap("integer division by zero");
        break;
      }
      int64_t A = get(D.A, Frame).I;
      // INT64_MIN / -1 overflows (the quotient 2^63 is unrepresentable);
      // modelled as the hardware divide fault it would raise. The host
      // idiv would SIGFPE.
      if (A == INT64_MIN && B == -1) {
        trap("integer division overflow");
        break;
      }
      Reg R;
      R.I = A / B;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::SRem: {
      int64_t B = get(D.B, Frame).I;
      if (B == 0) {
        trap("integer remainder by zero");
        break;
      }
      // Divisor -1: remainder is 0 for every dividend, including
      // INT64_MIN (where the host irem would SIGFPE).
      Reg R;
      R.I = B == -1 ? 0 : get(D.A, Frame).I % B;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::And: {
      Reg R;
      R.I = get(D.A, Frame).I & get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Or: {
      Reg R;
      R.I = get(D.A, Frame).I | get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Xor: {
      Reg R;
      R.I = get(D.A, Frame).I ^ get(D.B, Frame).I;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Shl: {
      // Shifted as unsigned: shifting into/out of the sign bit is
      // well-defined wrap, not UB.
      Reg R;
      R.I = static_cast<int64_t>(static_cast<uint64_t>(get(D.A, Frame).I)
                                 << (get(D.B, Frame).I & 63));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::AShr: {
      Reg R;
      R.I = get(D.A, Frame).I >> (get(D.B, Frame).I & 63);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FAdd: {
      Reg R;
      R.F = get(D.A, Frame).F + get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FSub: {
      Reg R;
      R.F = get(D.A, Frame).F - get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FMul: {
      Reg R;
      R.F = get(D.A, Frame).F * get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FDiv: {
      Reg R;
      R.F = get(D.A, Frame).F / get(D.B, Frame).F;
      Frame[D.ResultSlot] = R;
      break;
    }
#define CMP_CASE(OPC, EXPR)                                                  \
  case DOp::OPC: {                                                           \
    Reg LHS = get(D.A, Frame), RHS = get(D.B, Frame);                        \
    (void)LHS;                                                               \
    (void)RHS;                                                               \
    Reg R;                                                                   \
    R.I = (EXPR) ? 1 : 0;                                                    \
    Frame[D.ResultSlot] = R;                                                 \
    break;                                                                   \
  }
      CMP_CASE(ICmpEQ, LHS.I == RHS.I)
      CMP_CASE(ICmpNE, LHS.I != RHS.I)
      CMP_CASE(ICmpSLT, LHS.I < RHS.I)
      CMP_CASE(ICmpSLE, LHS.I <= RHS.I)
      CMP_CASE(ICmpSGT, LHS.I > RHS.I)
      CMP_CASE(ICmpSGE, LHS.I >= RHS.I)
      CMP_CASE(FCmpEQ, LHS.F == RHS.F)
      CMP_CASE(FCmpNE, LHS.F != RHS.F)
      CMP_CASE(FCmpLT, LHS.F < RHS.F)
      CMP_CASE(FCmpLE, LHS.F <= RHS.F)
      CMP_CASE(FCmpGT, LHS.F > RHS.F)
      CMP_CASE(FCmpGE, LHS.F >= RHS.F)
#undef CMP_CASE
    case DOp::Trunc: {
      uint64_t Mask = (1ull << D.Extra) - 1;
      uint64_t U = static_cast<uint64_t>(get(D.A, Frame).I) & Mask;
      if (D.Extra > 1 && (U & (1ull << (D.Extra - 1))))
        U |= ~Mask;
      Reg R;
      R.I = static_cast<int64_t>(U);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Move:
      Frame[D.ResultSlot] = get(D.A, Frame);
      break;
    case DOp::FPTrunc: {
      Reg R;
      R.F = static_cast<double>(static_cast<float>(get(D.A, Frame).F));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::SIToFP: {
      Reg R;
      R.F = static_cast<double>(get(D.A, Frame).I);
      if (D.Extra == 32)
        R.F = static_cast<float>(R.F);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::FPToSI: {
      // DInst contract: NaN converts to 0; out-of-range values saturate
      // (the bare host cast would be UB for both).
      double F = get(D.A, Frame).F;
      Reg R;
      if (F != F)
        R.I = 0;
      else if (F >= 9223372036854775808.0)
        R.I = INT64_MAX;
      else if (F < -9223372036854775808.0)
        R.I = INT64_MIN;
      else
        R.I = static_cast<int64_t>(F);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Call: {
      Reg R;
      if (D.Builtin != BK_NotBuiltin)
        R = callBuiltin(D.Builtin, D.Callee, DF.ArgPool.data() + D.ArgsBegin,
                        D.NumArgs, Frame);
      else
        R = callFunction(D.Callee, D.CalleeIdx,
                         DF.ArgPool.data() + D.ArgsBegin, D.NumArgs, Frame,
                         FrameBase, Depth);
      if (D.ResultSlot >= 0)
        Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::ICall: {
      uint64_t Target = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t Rel = Target - FuncAddrBase;
      if (Target < FuncAddrBase || (Rel & 15) != 0 ||
          (Rel >> 4) >= FuncList.size()) {
        trap("indirect call through a non-function pointer");
        break;
      }
      uint32_t FIdx = static_cast<uint32_t>(Rel >> 4);
      Reg R = callFunction(FuncList[FIdx], FIdx,
                           DF.ArgPool.data() + D.ArgsBegin, D.NumArgs, Frame,
                           FrameBase, Depth);
      if (D.ResultSlot >= 0)
        Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Ret:
      if (D.Extra)
        RetVal = get(D.A, Frame);
      SM.StackTop = MemFrameBase;
      return RetVal;
    case DOp::Br:
      if (Opts.Profile)
        Opts.Profile->countEdge(D.FromBB, D.ToBB0);
      PC = D.Target0;
      break;
    case DOp::CondBr: {
      bool C = get(D.A, Frame).I != 0;
      const BasicBlock *To = C ? D.ToBB0 : D.ToBB1;
      if (Opts.Profile)
        Opts.Profile->countEdge(D.FromBB, To);
      PC = C ? D.Target0 : D.Target1;
      break;
    }
    case DOp::Malloc: {
      uint64_t Size = static_cast<uint64_t>(get(D.A, Frame).I);
      Reg R;
      R.I = static_cast<int64_t>(SM.heapAlloc(Size, 0xAA));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Calloc: {
      uint64_t N = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t Sz = static_cast<uint64_t>(get(D.B, Frame).I);
      Reg R;
      R.I = static_cast<int64_t>(SM.heapAlloc(N * Sz, 0x00));
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Realloc: {
      uint64_t Old = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t NewSize = static_cast<uint64_t>(get(D.B, Frame).I);
      uint64_t NewAddr = SM.heapAlloc(NewSize, 0xAA);
      if (Old != 0) {
        auto It = SM.LiveAllocs.find(Old);
        if (It == SM.LiveAllocs.end()) {
          trap("realloc of a non-heap address");
          break;
        }
        uint64_t CopyBytes = std::min(It->second, NewSize);
        SM.ensureMem(NewAddr + CopyBytes);
        std::memmove(SM.Mem.data() + NewAddr, SM.Mem.data() + Old, CopyBytes);
        SM.heapFree(Old);
      }
      Reg R;
      R.I = static_cast<int64_t>(NewAddr);
      Frame[D.ResultSlot] = R;
      break;
    }
    case DOp::Free:
      heapFree(static_cast<uint64_t>(get(D.A, Frame).I));
      break;
    case DOp::Memset: {
      uint64_t Addr = static_cast<uint64_t>(get(D.A, Frame).I);
      int64_t Byte = get(D.B, Frame).I;
      uint64_t Size = static_cast<uint64_t>(get(D.C, Frame).I);
      if (!checkAddr(Addr, Size, "memset"))
        break;
      std::memset(SM.Mem.data() + Addr, static_cast<int>(Byte & 0xff), Size);
      // Touch one cache line per 64 bytes, with the chunk's real width
      // so misaligned streams pay for the lines they straddle.
      if (Opts.SimulateCache) {
        uint64_t Pc = (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1);
        if (Opts.Attribution)
          Cache.setAccessContext(MissAttribution::MemsetSite, Pc);
        for (uint64_t Off = 0; Off < Size; Off += 64) {
          CacheAccessResult A =
              Cache.access(Addr + Off,
                           static_cast<unsigned>(
                               std::min<uint64_t>(64, Size - Off)),
                           /*IsStore=*/true, false);
          Result.Cycles += A.Stall;
          if (Opts.Attribution && A.FirstLevelMiss)
            labelPc(Pc);
          if (Opts.Pmu)
            Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/true,
                                    A.FirstLevelMiss, A.Latency);
        }
      }
      break;
    }
    case DOp::Memcpy: {
      uint64_t Dst = static_cast<uint64_t>(get(D.A, Frame).I);
      uint64_t Src = static_cast<uint64_t>(get(D.B, Frame).I);
      uint64_t Size = static_cast<uint64_t>(get(D.C, Frame).I);
      if (!checkAddr(Dst, Size, "memcpy") || !checkAddr(Src, Size, "memcpy"))
        break;
      std::memmove(SM.Mem.data() + Dst, SM.Mem.data() + Src, Size);
      if (Opts.SimulateCache) {
        uint64_t Pc = (static_cast<uint64_t>(DF.FuncIdx) << 32) | (PC - 1);
        if (Opts.Attribution)
          Cache.setAccessContext(MissAttribution::MemcpySite, Pc);
        for (uint64_t Off = 0; Off < Size; Off += 64) {
          unsigned W =
              static_cast<unsigned>(std::min<uint64_t>(64, Size - Off));
          CacheAccessResult RdA =
              Cache.access(Src + Off, W, /*IsStore=*/false, false);
          CacheAccessResult WrA =
              Cache.access(Dst + Off, W, /*IsStore=*/true, false);
          Result.Cycles += RdA.Stall + WrA.Stall;
          if (Opts.Attribution && (RdA.FirstLevelMiss || WrA.FirstLevelMiss))
            labelPc(Pc);
          if (Opts.Pmu) {
            Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/false,
                                    RdA.FirstLevelMiss, RdA.Latency);
            Opts.Pmu->observeAccess(SampledPmu::UntypedSite, /*IsStore=*/true,
                                    WrA.FirstLevelMiss, WrA.Latency);
          }
        }
      }
      break;
    }
    case DOp::TrapNoTerm:
      --Result.Instructions; // The fall-through itself is not executed.
      trap("block fell through without a terminator");
      break;
    }
    if (Result.Trapped)
      break;
  }

  SM.StackTop = MemFrameBase;
  return RetVal;
}

RunResult Interpreter::Impl::run(const std::string &EntryName) {
  std::string SpanName =
      Opts.Trace ? "interpret/" + M.getName() : std::string();
  TraceSpan Span(Opts.Trace, SpanName.c_str(), "run");
  const Function *Entry = M.lookupFunction(EntryName);
  if (!Entry || Entry->isDeclaration()) {
    trap("entry function '" + EntryName + "' is not defined");
    return Result;
  }
  layoutAddressSpace(M, Opts.IntParams, SM, GlobalAddr, FuncList, FuncIndex);
  DecodedFns.resize(FuncList.size());
  RegArena.resize(4096);

  uint32_t EntryIdx = FuncIndex.at(Entry);
  const DecodedFunction &DF = decodedFunction(EntryIdx);
  ensureArena(static_cast<size_t>(DF.NumSlots));
  Reg Zero;
  Zero.I = 0;
  std::fill(RegArena.begin(), RegArena.begin() + DF.NumSlots, Zero);
  ArenaTop = static_cast<size_t>(DF.NumSlots);
  Reg R = executeFunction(DF, 0, 0);

  if (Result.Instructions > Opts.MaxInstructions)
    trap("instruction budget exceeded");
  Result.ExitCode = R.I;
  Result.HeapBytesAllocated = SM.HeapBytesAllocated;
  Result.HeapAllocations = SM.HeapAllocations;
  Result.HeapLiveAllocs = SM.LiveAllocs.size();
  for (const auto &[Addr, Size] : SM.LiveAllocs) {
    (void)Addr;
    Result.HeapLiveBytes += Size;
  }
  Result.L1 = Cache.l1Stats();
  Result.L2 = Cache.l2Stats();
  Result.L3 = Cache.l3Stats();
  Result.FirstLevelMisses = Cache.firstLevelMissEvents();

  if (Opts.Pmu) {
    Opts.Pmu->finishRun();
    if (Opts.Profile) {
      for (const SampledPmu::SiteEstimate &E : Opts.Pmu->estimates()) {
        FieldCacheStats &S = Opts.Profile->fieldStats(
            static_cast<const RecordType *>(E.RecordKey), E.FieldIndex);
        S.Loads += E.Loads;
        S.Stores += E.Stores;
        S.Misses += E.Misses;
        S.TotalLatency += E.TotalLatency;
      }
    }
    if (Opts.Counters)
      Opts.Pmu->publishCounters(*Opts.Counters);
  }

  if (Opts.Counters) {
    CounterRegistry &C = *Opts.Counters;
    C.add("interp.instructions", Result.Instructions);
    C.add("interp.cycles", Result.Cycles);
    C.add("interp.mem_stall_cycles", Result.MemStallCycles);
    C.add("interp.loads", Result.Loads);
    C.add("interp.stores", Result.Stores);
    C.add("interp.heap_allocations", Result.HeapAllocations);
    C.add("interp.heap_bytes", Result.HeapBytesAllocated);
    C.add("interp.heap_leaked_allocs", Result.HeapLiveAllocs);
    C.add("interp.heap_leaked_bytes", Result.HeapLiveBytes);
    uint64_t Decoded = 0;
    for (const auto &DF : DecodedFns)
      Decoded += DF != nullptr;
    C.add("interp.functions_decoded", Decoded);
    C.add("interp.traps", Result.Trapped ? 1 : 0);
    Cache.publishCounters(C);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(const Module &M, RunOptions Opts)
    : P(std::make_unique<Impl>(M, std::move(Opts))) {}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const std::string &EntryName) {
  return P->run(EntryName);
}

bool slo::parseEngineName(const std::string &Name, ExecEngine &Out) {
  if (Name == "walker") {
    Out = ExecEngine::Walker;
    return true;
  }
  if (Name == "vm") {
    Out = ExecEngine::VM;
    return true;
  }
  return false;
}

ExecEngine slo::resolveEngine(ExecEngine E) {
  if (E != ExecEngine::Auto)
    return E;
  const char *Env = std::getenv("SLO_ENGINE");
  if (!Env || !*Env)
    return ExecEngine::Walker;
  ExecEngine Out;
  if (!parseEngineName(Env, Out))
    reportFatalError(std::string("SLO_ENGINE must be 'walker' or 'vm', got '") +
                     Env + "'");
  return Out;
}

RunResult slo::runProgram(const Module &M, RunOptions Opts) {
  if (resolveEngine(Opts.Engine) == ExecEngine::VM) {
    VM V(M, std::move(Opts));
    return V.run();
  }
  Interpreter I(M, std::move(Opts));
  return I.run();
}
