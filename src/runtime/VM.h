//===- runtime/VM.h - Threaded bytecode VM engine --------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast execution tier: functions are compiled on first call from
/// their pre-decoded DInst streams into a flat, register-based bytecode
/// (runtime/Bytecode.h) and dispatched by a computed-goto threaded loop
/// (a portable switch fallback is used when GNU labels-as-values are
/// unavailable). Semantics are bit-identical to the tree walker in
/// runtime/Interpreter.cpp — same output, cycle counts, miss counts,
/// leak census, and attribution partitions — which the engine-parity
/// differential-fuzz oracle enforces. Observability: publishes "vm.*"
/// counters and records a "vm/<module>" trace span.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_RUNTIME_VM_H
#define SLO_RUNTIME_VM_H

#include "runtime/Interpreter.h"

namespace slo {

/// Executes one module through the bytecode tier. The module must
/// outlive the VM. Same interface contract as Interpreter.
class VM {
public:
  VM(const Module &M, RunOptions Opts = RunOptions());
  ~VM();
  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;

  /// Executes \p EntryName (default "main") and returns the results.
  RunResult run(const std::string &EntryName = "main");

private:
  class Impl;
  std::unique_ptr<Impl> P;
};

} // namespace slo

#endif // SLO_RUNTIME_VM_H
