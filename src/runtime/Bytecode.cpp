//===- runtime/Bytecode.cpp - IR decode and bytecode compile --------------===//
//
// Pass structure:
//   decodeFunction: IR -> DInst stream (slot assignment + operand
//     resolution; moved verbatim from the tree walker, which still
//     executes this form directly).
//   compileFunction: DInst stream -> flat bytecode. Materializes
//     constants into per-function constant slots, moves instrumentation
//     data into cold side tables, fuses single-use field-address +
//     load/store pairs into superinstructions, and picks Fast vs Instr
//     opcode flavours once for the whole run.
//
//===----------------------------------------------------------------------===//

#include "runtime/Bytecode.h"

#include "observability/MissAttribution.h"
#include "observability/SampledPmu.h"

#include <unordered_map>

using namespace slo;
using namespace slo::engine;

//===----------------------------------------------------------------------===//
// Decode (IR -> DInst)
//===----------------------------------------------------------------------===//

void engine::decodeFunction(const Function *F, DecodedFunction &DF,
                            const DecodeContext &Ctx) {
  DF.F = F;
  // Pass 1: assign a flat register slot to every value-producing
  // instruction and a frame offset to every alloca. The mapping is local
  // to this decode; the Module is never written.
  std::unordered_map<const Instruction *, int32_t> Slot;
  int32_t NextSlot = static_cast<int32_t>(F->getNumArgs());
  uint64_t Frame = 0;
  for (const auto &BB : F->blocks()) {
    for (const auto &I : BB->instructions()) {
      if (!I->getType()->isVoid())
        Slot[I.get()] = NextSlot++;
      if (const auto *A = dyn_cast<AllocaInst>(I.get())) {
        Type *Ty = A->getAllocatedType();
        Frame = alignTo(Frame, std::max<unsigned>(Ty->getAlign(), 1));
        DF.Allocas.push_back({Slot[I.get()], Frame});
        Frame += Ty->getSize();
      }
    }
  }
  DF.NumSlots = NextSlot;
  DF.FrameSize = alignTo(Frame, 16);

  auto operandFor = [&](const Value *V) -> Operand {
    Operand O;
    switch (V->getKind()) {
    case Value::VK_ConstantInt:
      O.Imm.I = cast<ConstantInt>(V)->getValue();
      return O;
    case Value::VK_ConstantFloat:
      O.Imm.F = cast<ConstantFloat>(V)->getValue();
      return O;
    case Value::VK_ConstantNull:
      O.Imm.I = 0;
      return O;
    case Value::VK_GlobalVariable:
      O.Imm.I =
          static_cast<int64_t>(Ctx.GlobalAddr->at(cast<GlobalVariable>(V)));
      return O;
    case Value::VK_Function:
      O.Imm.I = static_cast<int64_t>(
          FuncAddrBase |
          (static_cast<uint64_t>(Ctx.FuncIndex->at(cast<Function>(V)))
           << 4));
      return O;
    case Value::VK_Argument:
      O.Slot = static_cast<int32_t>(cast<Argument>(V)->getIndex());
      return O;
    case Value::VK_Instruction:
      O.Slot = Slot.at(cast<Instruction>(V));
      return O;
    }
    SLO_UNREACHABLE("unknown value kind");
  };

  auto resultSlot = [&](const Instruction &I) -> int32_t {
    return I.getType()->isVoid() ? -1 : Slot.at(&I);
  };

  // Pass 2: emit one DInst per instruction. Branch targets are recorded
  // as block numbers and patched to code indices once every block's
  // start offset is known.
  std::vector<uint32_t> BlockStart(F->size(), 0);
  for (const auto &BB : F->blocks()) {
    BlockStart[BB->getNumber()] = static_cast<uint32_t>(DF.Code.size());
    for (const auto &IPtr : BB->instructions()) {
      const Instruction &I = *IPtr;
      DInst D;
      D.ResultSlot = resultSlot(I);
      switch (I.getOpcode()) {
      case Instruction::OpAlloca:
        D.Op = DOp::Nop; // Frame address materialized at entry.
        break;
      case Instruction::OpLoad: {
        const auto &Ld = static_cast<const LoadInst &>(I);
        Type *Ty = Ld.getType();
        D.Op = DOp::Load;
        D.BaseCost = 0;
        D.A = operandFor(Ld.getPointer());
        D.Bytes = static_cast<uint8_t>(Ty->getSize());
        D.IsFloat = Ty->isFloat();
        D.SignExtend =
            !(Ty->isInt() && cast<IntType>(Ty)->getBits() == 1);
        D.Attrib = dyn_cast<FieldAddrInst>(Ld.getPointer());
        if (D.Attrib && Ctx.Attribution)
          D.Site = Ctx.Attribution->registerField(
              D.Attrib->getRecord()->getRecordName(),
              D.Attrib->getField().Name);
        if (D.Attrib && Ctx.Pmu)
          D.PmuSite = Ctx.Pmu->registerSite(D.Attrib->getRecord(),
                                            D.Attrib->getFieldIndex());
        break;
      }
      case Instruction::OpStore: {
        const auto &St = static_cast<const StoreInst &>(I);
        Type *Ty = St.getStoredValue()->getType();
        D.Op = DOp::Store;
        D.BaseCost = 0;
        D.A = operandFor(St.getPointer());
        D.B = operandFor(St.getStoredValue());
        D.Bytes = static_cast<uint8_t>(Ty->getSize());
        D.IsFloat = Ty->isFloat();
        D.Attrib = dyn_cast<FieldAddrInst>(St.getPointer());
        if (D.Attrib && Ctx.Attribution)
          D.Site = Ctx.Attribution->registerField(
              D.Attrib->getRecord()->getRecordName(),
              D.Attrib->getField().Name);
        if (D.Attrib && Ctx.Pmu)
          D.PmuSite = Ctx.Pmu->registerSite(D.Attrib->getRecord(),
                                            D.Attrib->getFieldIndex());
        break;
      }
      case Instruction::OpFieldAddr: {
        const auto &FA = static_cast<const FieldAddrInst &>(I);
        D.Op = DOp::FieldAddr;
        D.A = operandFor(FA.getBase());
        D.Extra = static_cast<int64_t>(FA.getField().Offset);
        break;
      }
      case Instruction::OpIndexAddr: {
        const auto &IA = static_cast<const IndexAddrInst &>(I);
        D.Op = DOp::IndexAddr;
        D.A = operandFor(IA.getBase());
        D.B = operandFor(IA.getIndex());
        D.Extra = static_cast<int64_t>(
            cast<PointerType>(IA.getType())->getPointee()->getSize());
        break;
      }
#define BINARY_CASE(OPC, COST)                                               \
  case Instruction::Op##OPC:                                                 \
    D.Op = DOp::OPC;                                                         \
    D.BaseCost = COST;                                                       \
    D.A = operandFor(I.getOperand(0));                                       \
    D.B = operandFor(I.getOperand(1));                                       \
    break;
        BINARY_CASE(Add, 1)
        BINARY_CASE(Sub, 1)
        BINARY_CASE(Mul, 2)
        BINARY_CASE(SDiv, 16)
        BINARY_CASE(SRem, 16)
        BINARY_CASE(And, 1)
        BINARY_CASE(Or, 1)
        BINARY_CASE(Xor, 1)
        BINARY_CASE(Shl, 1)
        BINARY_CASE(AShr, 1)
        BINARY_CASE(FAdd, 1)
        BINARY_CASE(FSub, 1)
        BINARY_CASE(FMul, 1)
        BINARY_CASE(FDiv, 16)
        BINARY_CASE(ICmpEQ, 1)
        BINARY_CASE(ICmpNE, 1)
        BINARY_CASE(ICmpSLT, 1)
        BINARY_CASE(ICmpSLE, 1)
        BINARY_CASE(ICmpSGT, 1)
        BINARY_CASE(ICmpSGE, 1)
        BINARY_CASE(FCmpEQ, 1)
        BINARY_CASE(FCmpNE, 1)
        BINARY_CASE(FCmpLT, 1)
        BINARY_CASE(FCmpLE, 1)
        BINARY_CASE(FCmpGT, 1)
        BINARY_CASE(FCmpGE, 1)
#undef BINARY_CASE
      case Instruction::OpTrunc: {
        unsigned Bits = cast<IntType>(I.getType())->getBits();
        D.A = operandFor(I.getOperand(0));
        if (Bits >= 64) {
          D.Op = DOp::Move;
        } else {
          D.Op = DOp::Trunc;
          D.Extra = Bits;
        }
        break;
      }
      case Instruction::OpSExt:
      case Instruction::OpZExt:
      case Instruction::OpBitcast:
      case Instruction::OpPtrToInt:
      case Instruction::OpIntToPtr:
      case Instruction::OpFPExt:
        // Register representation is canonical; these are moves at
        // runtime (sign/zero extension happened at produce time).
        D.Op = DOp::Move;
        D.A = operandFor(I.getOperand(0));
        break;
      case Instruction::OpFPTrunc:
        D.Op = DOp::FPTrunc;
        D.A = operandFor(I.getOperand(0));
        break;
      case Instruction::OpSIToFP:
        D.Op = DOp::SIToFP;
        D.A = operandFor(I.getOperand(0));
        D.Extra = cast<FloatType>(I.getType())->getBits();
        break;
      case Instruction::OpFPToSI:
        D.Op = DOp::FPToSI;
        D.A = operandFor(I.getOperand(0));
        break;
      case Instruction::OpCall: {
        const auto &C = static_cast<const CallInst &>(I);
        D.Op = DOp::Call;
        D.Callee = C.getCallee();
        D.CalleeIdx = Ctx.FuncIndex->at(C.getCallee());
        if (C.getCallee()->isDeclaration())
          D.Builtin = classifyBuiltin(C.getCallee()->getName());
        D.ArgsBegin = static_cast<uint32_t>(DF.ArgPool.size());
        D.NumArgs = static_cast<uint16_t>(C.getNumArgs());
        for (unsigned A = 0; A < C.getNumArgs(); ++A)
          DF.ArgPool.push_back(operandFor(C.getArg(A)));
        break;
      }
      case Instruction::OpICall: {
        const auto &C = static_cast<const IndirectCallInst &>(I);
        D.Op = DOp::ICall;
        D.A = operandFor(C.getCalleePtr());
        D.ArgsBegin = static_cast<uint32_t>(DF.ArgPool.size());
        D.NumArgs = static_cast<uint16_t>(C.getNumArgs());
        for (unsigned A = 0; A < C.getNumArgs(); ++A)
          DF.ArgPool.push_back(operandFor(C.getArg(A)));
        break;
      }
      case Instruction::OpRet: {
        const auto &Rt = static_cast<const RetInst &>(I);
        D.Op = DOp::Ret;
        if (Rt.hasValue()) {
          D.Extra = 1;
          D.A = operandFor(Rt.getValue());
        }
        break;
      }
      case Instruction::OpBr: {
        const auto &Br = static_cast<const BrInst &>(I);
        D.Op = DOp::Br;
        D.Target0 = Br.getTarget()->getNumber();
        D.FromBB = BB.get();
        D.ToBB0 = Br.getTarget();
        break;
      }
      case Instruction::OpCondBr: {
        const auto &CBr = static_cast<const CondBrInst &>(I);
        D.Op = DOp::CondBr;
        D.A = operandFor(CBr.getCondition());
        D.Target0 = CBr.getTrueTarget()->getNumber();
        D.Target1 = CBr.getFalseTarget()->getNumber();
        D.FromBB = BB.get();
        D.ToBB0 = CBr.getTrueTarget();
        D.ToBB1 = CBr.getFalseTarget();
        break;
      }
      case Instruction::OpMalloc:
        D.Op = DOp::Malloc;
        D.A = operandFor(static_cast<const MallocInst &>(I).getSizeBytes());
        break;
      case Instruction::OpCalloc: {
        const auto &Cal = static_cast<const CallocInst &>(I);
        D.Op = DOp::Calloc;
        D.A = operandFor(Cal.getCount());
        D.B = operandFor(Cal.getElemSize());
        break;
      }
      case Instruction::OpRealloc: {
        const auto &Re = static_cast<const ReallocInst &>(I);
        D.Op = DOp::Realloc;
        D.A = operandFor(Re.getPtr());
        D.B = operandFor(Re.getSizeBytes());
        break;
      }
      case Instruction::OpFree:
        D.Op = DOp::Free;
        D.A = operandFor(static_cast<const FreeInst &>(I).getPtr());
        break;
      case Instruction::OpMemset: {
        const auto &Ms = static_cast<const MemsetInst &>(I);
        D.Op = DOp::Memset;
        D.A = operandFor(Ms.getPtr());
        D.B = operandFor(Ms.getByte());
        D.C = operandFor(Ms.getSizeBytes());
        break;
      }
      case Instruction::OpMemcpy: {
        const auto &Mc = static_cast<const MemcpyInst &>(I);
        D.Op = DOp::Memcpy;
        D.A = operandFor(Mc.getDst());
        D.B = operandFor(Mc.getSrc());
        D.C = operandFor(Mc.getSizeBytes());
        break;
      }
      }
      DF.Code.push_back(D);
    }
    if (!BB->getTerminator()) {
      DInst D;
      D.Op = DOp::TrapNoTerm;
      D.BaseCost = 0;
      DF.Code.push_back(D);
    }
  }

  // Patch branch targets from block numbers to code indices.
  for (DInst &D : DF.Code) {
    if (D.Op == DOp::Br) {
      D.Target0 = BlockStart[D.Target0];
    } else if (D.Op == DOp::CondBr) {
      D.Target0 = BlockStart[D.Target0];
      D.Target1 = BlockStart[D.Target1];
    }
  }
}

//===----------------------------------------------------------------------===//
// Compile (DInst -> flat bytecode)
//===----------------------------------------------------------------------===//

void engine::compileFunction(const DecodedFunction &DF, BCFunction &BF,
                             const CompileOptions &CO) {
  BF.F = DF.F;
  BF.FuncIdx = DF.FuncIdx;
  BF.NumSlots = DF.NumSlots;
  BF.FrameSize = DF.FrameSize;
  BF.Allocas = DF.Allocas;
  BF.NumDInsts = static_cast<uint32_t>(DF.Code.size());

  // Constant materialization: each distinct immediate bit pattern gets
  // one constant slot appended after the register slots, copied into the
  // frame at call entry. Operand fetch then never branches on
  // slot-vs-immediate.
  std::unordered_map<uint64_t, uint32_t> ConstSlot;
  auto slotOf = [&](const Operand &O) -> uint32_t {
    if (O.Slot >= 0)
      return static_cast<uint32_t>(O.Slot);
    uint64_t Key = static_cast<uint64_t>(O.Imm.I);
    auto [It, Inserted] = ConstSlot.try_emplace(
        Key,
        static_cast<uint32_t>(DF.NumSlots + BF.Consts.size()));
    if (Inserted)
      BF.Consts.push_back(O.Imm);
    return It->second;
  };

  // Frame offset per alloca result slot (-1 otherwise). A slot is
  // assigned to exactly one instruction and an alloca's slot is written
  // only by the frame-entry materialization, so an access whose address
  // operand is an alloca slot provably targets the current frame: it
  // can neither trap nor be simulated (stack accesses model
  // register-promoted locals on both engines).
  std::vector<int64_t> AllocaOff(static_cast<size_t>(DF.NumSlots), -1);
  for (const auto &[SlotIdx, Off] : DF.Allocas)
    AllocaOff[static_cast<size_t>(SlotIdx)] = static_cast<int64_t>(Off);
  auto stackOffset = [&](const Operand &Address, unsigned Bytes) -> int64_t {
    if (Address.Slot < 0)
      return -1;
    int64_t Off = AllocaOff[static_cast<size_t>(Address.Slot)];
    // The access must stay inside the frame, or the walker's bounds
    // check (and its memory growth) would be observable.
    if (Off < 0 || static_cast<uint64_t>(Off) + Bytes > DF.FrameSize)
      return -1;
    return Off;
  };

  // Slot use counts decide superinstruction fusion: a field address
  // consumed exactly once, by the load/store immediately after it, is
  // folded into that access. Fused pairs never span block boundaries:
  // every block ends with a terminator, so the successor of any
  // non-terminator is in the same block and is never a branch target.
  std::vector<uint32_t> Uses(static_cast<size_t>(DF.NumSlots), 0);
  auto countUse = [&](const Operand &O) {
    if (O.Slot >= 0)
      ++Uses[static_cast<size_t>(O.Slot)];
  };
  for (const DInst &D : DF.Code) {
    countUse(D.A);
    countUse(D.B);
    countUse(D.C);
  }
  for (const Operand &O : DF.ArgPool)
    countUse(O);

  const bool Instr = CO.Instrument;

  // Head test for the three-way "stack pointer load + field address +
  // access" fusion: a pointer-width integer load from an in-frame
  // alloca, single-used as the base of the next instruction's field
  // address, itself single-used as the address of the access after
  // that. The BaseCost guards pin the costs the handler replays
  // (load 0, address 1, access 0).
  auto stackFieldAt = [&](uint32_t J) -> bool {
    if (J + 2 >= DF.Code.size())
      return false;
    const DInst &P = DF.Code[J];
    if (P.Op != DOp::Load || P.IsFloat || P.Bytes != 8 || P.BaseCost != 0 ||
        P.ResultSlot < 0 || Uses[static_cast<size_t>(P.ResultSlot)] != 1 ||
        stackOffset(P.A, P.Bytes) < 0 ||
        stackOffset(P.A, P.Bytes) > 0xffffffff)
      return false;
    const DInst &F1 = DF.Code[J + 1];
    if (F1.Op != DOp::FieldAddr || F1.A.Slot != P.ResultSlot ||
        F1.BaseCost != 1 || F1.ResultSlot < 0 ||
        Uses[static_cast<size_t>(F1.ResultSlot)] != 1)
      return false;
    const DInst &M = DF.Code[J + 2];
    if (M.BaseCost != 0)
      return false;
    if (M.Op == DOp::Load)
      return M.A.Slot == F1.ResultSlot;
    return M.Op == DOp::Store && M.A.Slot == F1.ResultSlot &&
           M.B.Slot != F1.ResultSlot;
  };

  // Head test for the "stack base load + stack index load + element
  // address" fusion: a pointer-width base and an integer index, each
  // loaded from an in-frame alloca and single-used as the corresponding
  // operand of the IndexAddr immediately after them. The BaseCost
  // guards pin the replayed costs (load 0, load 0, address 1).
  auto stackIndexAt = [&](uint32_t J) -> bool {
    if (J + 2 >= DF.Code.size())
      return false;
    const DInst &P1 = DF.Code[J];
    if (P1.Op != DOp::Load || P1.IsFloat || P1.Bytes != 8 ||
        P1.BaseCost != 0 || P1.ResultSlot < 0 ||
        Uses[static_cast<size_t>(P1.ResultSlot)] != 1 ||
        stackOffset(P1.A, P1.Bytes) < 0 ||
        stackOffset(P1.A, P1.Bytes) > 0xffffffff)
      return false;
    const DInst &P2 = DF.Code[J + 1];
    if (P2.Op != DOp::Load || P2.IsFloat || P2.Bytes > 8 ||
        P2.BaseCost != 0 || P2.ResultSlot < 0 ||
        Uses[static_cast<size_t>(P2.ResultSlot)] != 1 ||
        stackOffset(P2.A, P2.Bytes) < 0 ||
        stackOffset(P2.A, P2.Bytes) > 0xffffffff)
      return false;
    const DInst &IA = DF.Code[J + 2];
    return IA.Op == DOp::IndexAddr && IA.BaseCost == 1 &&
           IA.ResultSlot >= 0 && IA.A.Slot == P1.ResultSlot &&
           IA.B.Slot == P2.ResultSlot;
  };
  // Extends stackFieldAt to the five-way pointer chase "x = p->f->g":
  // the fused load's pointer-width integer result is itself single-used
  // as the base of a second field address, single-used by the load after
  // that. Both field offsets must fit 32 bits (they share Extra).
  auto stackFieldChainAt = [&](uint32_t J) -> bool {
    if (J + 4 >= DF.Code.size() || !stackFieldAt(J))
      return false;
    const DInst &F1 = DF.Code[J + 1];
    if (F1.Extra < 0 || F1.Extra > 0xffffffff)
      return false;
    const DInst &M = DF.Code[J + 2];
    if (M.Op != DOp::Load || M.IsFloat || M.Bytes != 8 || M.ResultSlot < 0 ||
        Uses[static_cast<size_t>(M.ResultSlot)] != 1)
      return false;
    const DInst &F2 = DF.Code[J + 3];
    if (F2.Op != DOp::FieldAddr || F2.A.Slot != M.ResultSlot ||
        F2.BaseCost != 1 || F2.ResultSlot < 0 ||
        Uses[static_cast<size_t>(F2.ResultSlot)] != 1 || F2.Extra < 0 ||
        F2.Extra > 0xffffffff)
      return false;
    const DInst &L2 = DF.Code[J + 4];
    return L2.Op == DOp::Load && L2.BaseCost == 0 && L2.ResultSlot >= 0 &&
           L2.A.Slot == F2.ResultSlot;
  };

  // Extends stackIndexAt to "a[i].f": the element address is single-used
  // by the field address immediately after it. Returns 2 when that
  // address is in turn single-used by the load after it (fuse the access
  // too), 1 when only the address chain fuses, 0 otherwise. The index
  // load is pinned to 8 bytes so Bytes/Flags stay free for the final
  // access; element size and field offset share Extra, so both must fit
  // 32 bits.
  auto stackIndexFieldAt = [&](uint32_t J) -> int {
    if (J + 3 >= DF.Code.size() || !stackIndexAt(J))
      return 0;
    if (DF.Code[J + 1].Bytes != 8)
      return 0;
    const DInst &IA = DF.Code[J + 2];
    if (IA.Extra < 0 || IA.Extra > 0xffffffff ||
        Uses[static_cast<size_t>(IA.ResultSlot)] != 1)
      return 0;
    const DInst &F1 = DF.Code[J + 3];
    if (F1.Op != DOp::FieldAddr || F1.A.Slot != IA.ResultSlot ||
        F1.BaseCost != 1 || F1.ResultSlot < 0 || F1.Extra < 0 ||
        F1.Extra > 0xffffffff)
      return 0;
    if (J + 4 < DF.Code.size() &&
        Uses[static_cast<size_t>(F1.ResultSlot)] == 1) {
      const DInst &L = DF.Code[J + 4];
      if (L.Op == DOp::Load && L.BaseCost == 0 && L.ResultSlot >= 0 &&
          L.A.Slot == F1.ResultSlot)
        return 2;
    }
    return 1;
  };

  // Head test for "x * y" with x and y double locals: two 8-byte float
  // stack loads single-used, in order, as the operands of the FMul
  // immediately after them.
  auto stackLoad2FMulAt = [&](uint32_t J) -> bool {
    if (J + 2 >= DF.Code.size())
      return false;
    auto FloatLocal = [&](const DInst &P) {
      return P.Op == DOp::Load && P.IsFloat && P.Bytes == 8 &&
             P.BaseCost == 0 && P.ResultSlot >= 0 &&
             Uses[static_cast<size_t>(P.ResultSlot)] == 1 &&
             stackOffset(P.A, P.Bytes) >= 0 &&
             stackOffset(P.A, P.Bytes) <= 0xffffffff;
    };
    const DInst &P1 = DF.Code[J];
    const DInst &P2 = DF.Code[J + 1];
    const DInst &M = DF.Code[J + 2];
    return FloatLocal(P1) && FloatLocal(P2) && M.Op == DOp::FMul &&
           M.BaseCost == 1 && M.ResultSlot >= 0 &&
           M.A.Slot == P1.ResultSlot && M.B.Slot == P2.ResultSlot;
  };

  auto accessSide = [&](const DInst &D, uint32_t OrigIdx) -> uint32_t {
    AccessSide S;
    S.Pc = (static_cast<uint64_t>(DF.FuncIdx) << 32) | OrigIdx;
    S.Attrib = D.Attrib;
    S.Site = D.Site;
    S.PmuSite = D.PmuSite;
    BF.Access.push_back(S);
    return static_cast<uint32_t>(BF.Access.size() - 1);
  };

  // Map from DInst index to emitted bytecode index, for branch-target
  // patching. Both halves of a fused pair map to the fused instruction
  // (only block starts are ever branch targets, and a fused pair never
  // spans a block boundary, so a target always lands on the first half).
  std::vector<uint32_t> Map(DF.Code.size(), 0);
  std::vector<uint32_t> BranchFixups; // Bytecode indices to re-target.

  for (uint32_t Idx = 0; Idx < DF.Code.size(); ++Idx) {
    const DInst &D = DF.Code[Idx];
    Map[Idx] = static_cast<uint32_t>(BF.Code.size());
    BCInst BI;
    BI.Cost = D.BaseCost;

    // Five-way fusion: the pointer chase "x = p->f->g" (mcf's hot
    // shape). Intermediate results (the first load's address, the
    // chased pointer, the second address) are all dead after the chain,
    // so only the final load writes the frame. Costs replay as
    // 0+1+0+1+0 (pinned by the head test); the intermediate access is
    // simulated before the second field address's budget check, exactly
    // where the walker performs it.
    if (!CO.InjectVmBug && stackFieldChainAt(Idx)) {
      const DInst &F1 = DF.Code[Idx + 1];
      const DInst &M = DF.Code[Idx + 2];
      const DInst &F2 = DF.Code[Idx + 3];
      const DInst &L2 = DF.Code[Idx + 4];
      BI.Op = Instr ? BCOp::StackFieldChainLoadInstr
                    : BCOp::StackFieldChainLoadFast;
      BI.B = static_cast<uint32_t>(stackOffset(D.A, D.Bytes));
      BI.Extra = static_cast<int64_t>(
          static_cast<uint64_t>(F1.Extra) |
          (static_cast<uint64_t>(F2.Extra) << 32));
      BI.Dst = L2.ResultSlot;
      BI.Bytes = L2.Bytes;
      BI.Flags = static_cast<uint8_t>((L2.IsFloat ? BCF_Float : 0) |
                                      (L2.SignExtend ? BCF_SignExtend : 0));
      if (Instr) {
        BI.C = accessSide(M, Idx + 2); // Intermediate access; final is C+1.
        accessSide(L2, Idx + 4);
      }
      BF.NumFused += 4;
      for (uint32_t J = Idx + 1; J <= Idx + 4; ++J)
        Map[J] = Map[Idx];
      BF.Code.push_back(BI);
      Idx += 4;
      continue;
    }

    // Three-way fusion: a pointer-width stack load whose single use is
    // the field address immediately after it, itself single-used by the
    // access after that ("p->f" with p a local, which MiniC re-loads at
    // every use). One dispatch counts three instructions. Cost replay
    // is hard-coded in the handler (0 + 1 + 0), hence the BaseCost
    // guards in stackFieldAt. Skipped under bug injection so the
    // injected cost bump on plain loads stays observable.
    if (!CO.InjectVmBug && stackFieldAt(Idx)) {
      const DInst &N1 = DF.Code[Idx + 1];
      const DInst &N2 = DF.Code[Idx + 2];
      bool FuseLoad = N2.Op == DOp::Load;
      BI.Op = FuseLoad
                  ? (Instr ? BCOp::StackFieldLoadInstr
                           : BCOp::StackFieldLoadFast)
                  : (Instr ? BCOp::StackFieldStoreInstr
                           : BCOp::StackFieldStoreFast);
      BI.B = static_cast<uint32_t>(stackOffset(D.A, D.Bytes)); // Ptr slot.
      BI.Extra = N1.Extra;                                     // Field imm.
      BI.Dst = FuseLoad ? N2.ResultSlot : static_cast<int32_t>(slotOf(N2.B));
      BI.Bytes = N2.Bytes;
      BI.Flags = static_cast<uint8_t>((N2.IsFloat ? BCF_Float : 0) |
                                      (N2.SignExtend ? BCF_SignExtend : 0));
      if (Instr)
        BI.C = accessSide(N2, Idx + 2);
      BF.NumFused += 2;
      Map[Idx + 1] = Map[Idx];
      Map[Idx + 2] = Map[Idx];
      BF.Code.push_back(BI);
      Idx += 2;
      continue;
    }

    // Four/five-way fusion: "&a[i].f" / "x = a[i].f" with a and i
    // locals (moldyn's hot shape). Costs replay as 0+0+1+1(+0); in the
    // five-way form the access is simulated after the last replayed
    // check, where the walker executes the load.
    if (!CO.InjectVmBug) {
      if (int Kind = stackIndexFieldAt(Idx)) {
        const DInst &P2 = DF.Code[Idx + 1];
        const DInst &IA = DF.Code[Idx + 2];
        const DInst &F1 = DF.Code[Idx + 3];
        BI.A = static_cast<uint32_t>(stackOffset(D.A, D.Bytes));   // Base.
        BI.B = static_cast<uint32_t>(stackOffset(P2.A, P2.Bytes)); // Index.
        BI.Extra = static_cast<int64_t>(
            static_cast<uint64_t>(IA.Extra) |
            (static_cast<uint64_t>(F1.Extra) << 32));
        uint32_t Last = Idx + 3;
        if (Kind == 2) {
          const DInst &L = DF.Code[Idx + 4];
          BI.Op = Instr ? BCOp::StackIndexFieldLoadInstr
                        : BCOp::StackIndexFieldLoadFast;
          BI.Dst = L.ResultSlot;
          BI.Bytes = L.Bytes;
          BI.Flags = static_cast<uint8_t>(
              (L.IsFloat ? BCF_Float : 0) |
              (L.SignExtend ? BCF_SignExtend : 0));
          if (Instr)
            BI.C = accessSide(L, Idx + 4);
          Last = Idx + 4;
        } else {
          BI.Op = BCOp::StackIndexFieldAddr;
          BI.Dst = F1.ResultSlot;
        }
        BF.NumFused += Last - Idx;
        for (uint32_t J = Idx + 1; J <= Last; ++J)
          Map[J] = Map[Idx];
        BF.Code.push_back(BI);
        Idx = Last;
        continue;
      }
    }

    // Three-way fusion: base and index both loaded from in-frame
    // allocas and single-used by the element address after them
    // ("a[i]" with a and i locals). One dispatch counts three
    // instructions; costs replay as 0 + 0 + 1 (pinned by the BaseCost
    // guards in stackIndexAt).
    if (!CO.InjectVmBug && stackIndexAt(Idx)) {
      const DInst &P2 = DF.Code[Idx + 1];
      const DInst &IA = DF.Code[Idx + 2];
      BI.Op = BCOp::StackIndexAddr2;
      BI.A = static_cast<uint32_t>(stackOffset(D.A, D.Bytes));   // Base.
      BI.B = static_cast<uint32_t>(stackOffset(P2.A, P2.Bytes)); // Index.
      BI.Extra = IA.Extra;                                       // Elem size.
      BI.Dst = IA.ResultSlot;
      BI.Bytes = P2.Bytes;
      BI.Flags = static_cast<uint8_t>(P2.SignExtend ? BCF_SignExtend : 0);
      BF.NumFused += 2;
      Map[Idx + 1] = Map[Idx];
      Map[Idx + 2] = Map[Idx];
      BF.Code.push_back(BI);
      Idx += 2;
      continue;
    }

    // Two-way fusion: stack pointer load single-used by the field
    // address after it, whose own result stays live ("&p->f" kept in a
    // register; the single-use case is the three-way fusion above).
    if (!CO.InjectVmBug && D.Op == DOp::Load && !D.IsFloat && D.Bytes == 8 &&
        D.BaseCost == 0 && D.ResultSlot >= 0 &&
        Uses[static_cast<size_t>(D.ResultSlot)] == 1 &&
        Idx + 1 < DF.Code.size()) {
      const DInst &N = DF.Code[Idx + 1];
      int64_t Off = stackOffset(D.A, D.Bytes);
      if (N.Op == DOp::FieldAddr && N.A.Slot == D.ResultSlot &&
          N.BaseCost == 1 && N.ResultSlot >= 0 && Off >= 0 &&
          Off <= 0xffffffff) {
        BI.Op = BCOp::StackFieldAddr;
        BI.B = static_cast<uint32_t>(Off); // Pointer's frame offset.
        BI.Extra = N.Extra;                // Field offset.
        BI.Dst = N.ResultSlot;
        ++BF.NumFused;
        Map[Idx + 1] = Map[Idx];
        BF.Code.push_back(BI);
        ++Idx;
        continue;
      }
    }

    // Three-way fusion: two double stack loads single-used, in order,
    // by the FMul after them ("x * y" with x, y locals — moldyn's force
    // kernel). Costs replay as 0 + 0 + 1, pinned by the head test.
    if (!CO.InjectVmBug && stackLoad2FMulAt(Idx)) {
      const DInst &P2 = DF.Code[Idx + 1];
      const DInst &M = DF.Code[Idx + 2];
      BI.Op = BCOp::StackLoad2FMul;
      BI.A = static_cast<uint32_t>(stackOffset(D.A, D.Bytes));
      BI.B = static_cast<uint32_t>(stackOffset(P2.A, P2.Bytes));
      BI.Dst = M.ResultSlot;
      BF.NumFused += 2;
      Map[Idx + 1] = Map[Idx];
      Map[Idx + 2] = Map[Idx];
      BF.Code.push_back(BI);
      Idx += 2;
      continue;
    }

    // Two adjacent stack loads in one dispatch. The second must not be
    // the head of a three-way fusion (those save more). Widths and
    // float/sign-extend flags are packed per half (low/high nibble,
    // low/high flag pair).
    if (!CO.InjectVmBug && D.Op == DOp::Load && D.BaseCost == 0 &&
        D.ResultSlot >= 0 && D.Bytes <= 8 && Idx + 1 < DF.Code.size()) {
      const DInst &N = DF.Code[Idx + 1];
      int64_t Off1 = stackOffset(D.A, D.Bytes);
      int64_t Off2 = N.Op == DOp::Load && N.BaseCost == 0 &&
                             N.ResultSlot >= 0 && N.Bytes <= 8
                         ? stackOffset(N.A, N.Bytes)
                         : -1;
      if (Off1 >= 0 && Off2 >= 0 && Off2 <= 0xffffffff &&
          !stackFieldAt(Idx + 1) && !stackIndexAt(Idx + 1) &&
          !stackLoad2FMulAt(Idx + 1)) {
        BI.Op = BCOp::StackLoad2;
        BI.Dst = D.ResultSlot;
        BI.A = static_cast<uint32_t>(N.ResultSlot);
        BI.B = static_cast<uint32_t>(Off2);
        BI.Extra = Off1;
        BI.Bytes = static_cast<uint8_t>(D.Bytes | (N.Bytes << 4));
        BI.Flags = static_cast<uint8_t>(
            (D.IsFloat ? BCF_Float : 0) | (D.SignExtend ? BCF_SignExtend : 0) |
            ((N.IsFloat ? BCF_Float : 0) | (N.SignExtend ? BCF_SignExtend : 0))
                << 2);
        ++BF.NumFused;
        Map[Idx + 1] = Map[Idx];
        BF.Code.push_back(BI);
        ++Idx;
        continue;
      }
    }

    // A run of same-cost Nops (alloca placeholders at entry, collapsed
    // casts) becomes one dispatch that counts and charges the whole
    // run, emulating budget expiry mid-run exactly.
    if (D.Op == DOp::Nop) {
      uint32_t End = Idx + 1;
      while (End < DF.Code.size() && DF.Code[End].Op == DOp::Nop &&
             DF.Code[End].BaseCost == D.BaseCost)
        ++End;
      if (End - Idx >= 2) {
        BI.Op = BCOp::NopN;
        BI.A = End - Idx; // Run length, counting the dispatched head.
        BF.NumFused += End - Idx - 1;
        for (uint32_t J = Idx + 1; J < End; ++J)
          Map[J] = Map[Idx];
        BF.Code.push_back(BI);
        Idx = End - 1;
        continue;
      }
      // A singleton Nop (mid-block alloca placeholder) followed by a
      // stack store is "int x = init;": fuse the pair. The head's cost
      // rides in BI.Cost; the store half (cost 0, pinned) replays the
      // budget check.
      if (!CO.InjectVmBug && Idx + 1 < DF.Code.size()) {
        const DInst &N = DF.Code[Idx + 1];
        int64_t Off = N.Op == DOp::Store && N.BaseCost == 0
                          ? stackOffset(N.A, N.Bytes)
                          : -1;
        if (Off >= 0) {
          BI.Op = BCOp::NopStackStore;
          BI.B = slotOf(N.B);
          BI.Extra = Off;
          BI.Bytes = N.Bytes;
          BI.Flags = static_cast<uint8_t>(N.IsFloat ? BCF_Float : 0);
          ++BF.NumFused;
          Map[Idx + 1] = Map[Idx];
          BF.Code.push_back(BI);
          ++Idx;
          continue;
        }
      }
    }

    // Superinstruction fusion: FieldAddr whose single use is the
    // immediately following load/store's address operand.
    if (D.Op == DOp::FieldAddr && D.ResultSlot >= 0 &&
        Uses[static_cast<size_t>(D.ResultSlot)] == 1 &&
        Idx + 1 < DF.Code.size()) {
      const DInst &N = DF.Code[Idx + 1];
      bool FuseLoad = N.Op == DOp::Load && N.A.Slot == D.ResultSlot;
      bool FuseStore = N.Op == DOp::Store && N.A.Slot == D.ResultSlot &&
                       N.B.Slot != D.ResultSlot;
      if (FuseLoad || FuseStore) {
        BI.Op = FuseLoad ? (Instr ? BCOp::FieldLoadInstr : BCOp::FieldLoadFast)
                         : (Instr ? BCOp::FieldStoreInstr
                                  : BCOp::FieldStoreFast);
        BI.A = slotOf(D.A);        // Record base pointer.
        BI.Extra = D.Extra;        // Field offset.
        BI.Dst = N.ResultSlot;     // Load result (unused for stores).
        if (FuseStore)
          BI.B = slotOf(N.B);      // Stored value.
        BI.Bytes = N.Bytes;
        BI.Flags = static_cast<uint8_t>((N.IsFloat ? BCF_Float : 0) |
                                        (N.SignExtend ? BCF_SignExtend : 0));
        if (Instr)
          BI.C = accessSide(N, Idx + 1); // Attribute at the access PC.
        if (CO.InjectVmBug && FuseLoad)
          ++BI.Cost;
        ++BF.NumFused;
        Map[Idx + 1] = Map[Idx];
        BF.Code.push_back(BI);
        ++Idx; // Consume the fused access.
        continue;
      }
    }

    // Same fusion for an element address consumed exactly once, by the
    // load/store immediately after it (array sweeps: art, moldyn). The
    // store's value slot rides in Dst because B carries the index.
    if (D.Op == DOp::IndexAddr && D.ResultSlot >= 0 &&
        Uses[static_cast<size_t>(D.ResultSlot)] == 1 &&
        Idx + 1 < DF.Code.size()) {
      const DInst &N = DF.Code[Idx + 1];
      bool FuseLoad = N.Op == DOp::Load && N.A.Slot == D.ResultSlot;
      bool FuseStore = N.Op == DOp::Store && N.A.Slot == D.ResultSlot &&
                       N.B.Slot != D.ResultSlot;
      if (FuseLoad || FuseStore) {
        BI.Op = FuseLoad ? (Instr ? BCOp::IndexLoadInstr : BCOp::IndexLoadFast)
                         : (Instr ? BCOp::IndexStoreInstr
                                  : BCOp::IndexStoreFast);
        BI.A = slotOf(D.A);   // Element base pointer.
        BI.B = slotOf(D.B);   // Index.
        BI.Extra = D.Extra;   // Element size.
        BI.Dst = FuseLoad ? N.ResultSlot
                          : static_cast<int32_t>(slotOf(N.B));
        BI.Bytes = N.Bytes;
        BI.Flags = static_cast<uint8_t>((N.IsFloat ? BCF_Float : 0) |
                                        (N.SignExtend ? BCF_SignExtend : 0));
        if (Instr)
          BI.C = accessSide(N, Idx + 1);
        if (CO.InjectVmBug && FuseLoad)
          ++BI.Cost;
        ++BF.NumFused;
        Map[Idx + 1] = Map[Idx];
        BF.Code.push_back(BI);
        ++Idx;
        continue;
      }
    }

    // Fused binary op + stack store of its single-use result
    // ("x = a <op> b" with x a register-promoted local, which MiniC
    // stores back after every expression). The op's own cost rides in
    // the dispatch prologue; the store half's cost is pinned at 0.
    if (!CO.InjectVmBug && D.ResultSlot >= 0 &&
        Uses[static_cast<size_t>(D.ResultSlot)] == 1 &&
        Idx + 1 < DF.Code.size() &&
        (D.Op == DOp::Add || D.Op == DOp::Sub || D.Op == DOp::FAdd ||
         D.Op == DOp::FSub || D.Op == DOp::FMul)) {
      const DInst &N = DF.Code[Idx + 1];
      int64_t Off = N.Op == DOp::Store && N.BaseCost == 0 &&
                            N.B.Slot == D.ResultSlot
                        ? stackOffset(N.A, N.Bytes)
                        : -1;
      if (Off >= 0 && Off <= 0xffffffff) {
        switch (D.Op) {
        case DOp::Add:  BI.Op = BCOp::AddStackStore; break;
        case DOp::Sub:  BI.Op = BCOp::SubStackStore; break;
        case DOp::FAdd: BI.Op = BCOp::FAddStackStore; break;
        case DOp::FSub: BI.Op = BCOp::FSubStackStore; break;
        default:        BI.Op = BCOp::FMulStackStore; break;
        }
        BI.A = slotOf(D.A);
        BI.B = slotOf(D.B);
        BI.Dst = D.ResultSlot; // Dead (single use is the store); kept
                               // for disassembly only.
        BI.C = static_cast<uint32_t>(Off);
        BI.Bytes = N.Bytes;
        BI.Flags = static_cast<uint8_t>(N.IsFloat ? BCF_Float : 0);
        ++BF.NumFused;
        Map[Idx + 1] = Map[Idx];
        BF.Code.push_back(BI);
        ++Idx;
        continue;
      }
    }

    // Fused compare + conditional branch: a compare whose single use is
    // the immediately following CondBr's condition. Profiled runs keep
    // the pair split so CondBrProf's edge counters stay per-branch.
    if (D.Op >= DOp::ICmpEQ && D.Op <= DOp::FCmpGE && !CO.Profile &&
        D.ResultSlot >= 0 && Uses[static_cast<size_t>(D.ResultSlot)] == 1 &&
        Idx + 1 < DF.Code.size()) {
      const DInst &N = DF.Code[Idx + 1];
      if (N.Op == DOp::CondBr && N.A.Slot == D.ResultSlot) {
        BI.Op = static_cast<BCOp>(static_cast<unsigned>(BCOp::CmpBrEQ) +
                                  (static_cast<unsigned>(D.Op) -
                                   static_cast<unsigned>(DOp::ICmpEQ)));
        BI.A = slotOf(D.A);
        BI.B = slotOf(D.B);
        BI.Bytes = N.BaseCost; // Charged when the branch half replays
                               // the between-instruction budget check.
        BI.C = N.Target0;      // DInst indices; remapped below.
        BI.Extra = static_cast<int64_t>(N.Target1);
        ++BF.NumFused;
        Map[Idx + 1] = Map[Idx];
        BranchFixups.push_back(static_cast<uint32_t>(BF.Code.size()));
        BF.Code.push_back(BI);
        ++Idx;
        continue;
      }
    }

    switch (D.Op) {
    case DOp::Nop:
      BI.Op = BCOp::Nop;
      break;
    case DOp::Load:
      if (int64_t Off = stackOffset(D.A, D.Bytes); Off >= 0) {
        BI.Op = BCOp::StackLoad; // Serves both run modes.
        BI.Extra = Off;
      } else {
        BI.Op = Instr ? BCOp::LoadInstr : BCOp::LoadFast;
        BI.A = slotOf(D.A);
        if (Instr)
          BI.C = accessSide(D, Idx);
      }
      BI.Dst = D.ResultSlot;
      BI.Bytes = D.Bytes;
      BI.Flags = static_cast<uint8_t>((D.IsFloat ? BCF_Float : 0) |
                                      (D.SignExtend ? BCF_SignExtend : 0));
      if (CO.InjectVmBug)
        ++BI.Cost;
      break;
    case DOp::Store:
      if (int64_t Off = stackOffset(D.A, D.Bytes); Off >= 0) {
        BI.Op = BCOp::StackStore;
        BI.Extra = Off;
      } else {
        BI.Op = Instr ? BCOp::StoreInstr : BCOp::StoreFast;
        BI.A = slotOf(D.A);
        if (Instr)
          BI.C = accessSide(D, Idx);
      }
      BI.B = slotOf(D.B);
      BI.Bytes = D.Bytes;
      BI.Flags = static_cast<uint8_t>(D.IsFloat ? BCF_Float : 0);
      break;
    case DOp::FieldAddr:
      BI.Op = BCOp::FieldAddr;
      BI.A = slotOf(D.A);
      BI.Extra = D.Extra;
      BI.Dst = D.ResultSlot;
      break;
    case DOp::IndexAddr:
      BI.Op = BCOp::IndexAddr;
      BI.A = slotOf(D.A);
      BI.B = slotOf(D.B);
      BI.Extra = D.Extra;
      BI.Dst = D.ResultSlot;
      break;
#define BIN_CASE(OPC)                                                        \
  case DOp::OPC:                                                             \
    BI.Op = BCOp::OPC;                                                       \
    BI.A = slotOf(D.A);                                                      \
    BI.B = slotOf(D.B);                                                      \
    BI.Dst = D.ResultSlot;                                                   \
    break;
      BIN_CASE(Add)
      BIN_CASE(Sub)
      BIN_CASE(Mul)
      BIN_CASE(SDiv)
      BIN_CASE(SRem)
      BIN_CASE(And)
      BIN_CASE(Or)
      BIN_CASE(Xor)
      BIN_CASE(Shl)
      BIN_CASE(AShr)
      BIN_CASE(FAdd)
      BIN_CASE(FSub)
      BIN_CASE(FMul)
      BIN_CASE(FDiv)
      BIN_CASE(ICmpEQ)
      BIN_CASE(ICmpNE)
      BIN_CASE(ICmpSLT)
      BIN_CASE(ICmpSLE)
      BIN_CASE(ICmpSGT)
      BIN_CASE(ICmpSGE)
      BIN_CASE(FCmpEQ)
      BIN_CASE(FCmpNE)
      BIN_CASE(FCmpLT)
      BIN_CASE(FCmpLE)
      BIN_CASE(FCmpGT)
      BIN_CASE(FCmpGE)
#undef BIN_CASE
    case DOp::Trunc:
      BI.Op = BCOp::Trunc;
      BI.A = slotOf(D.A);
      BI.Extra = D.Extra;
      BI.Dst = D.ResultSlot;
      break;
    case DOp::Move:
      BI.Op = BCOp::Move;
      BI.A = slotOf(D.A);
      BI.Dst = D.ResultSlot;
      break;
    case DOp::FPTrunc:
      BI.Op = BCOp::FPTrunc;
      BI.A = slotOf(D.A);
      BI.Dst = D.ResultSlot;
      break;
    case DOp::SIToFP:
      BI.Op = BCOp::SIToFP;
      BI.A = slotOf(D.A);
      BI.Extra = D.Extra;
      BI.Dst = D.ResultSlot;
      break;
    case DOp::FPToSI:
      BI.Op = BCOp::FPToSI;
      BI.A = slotOf(D.A);
      BI.Dst = D.ResultSlot;
      break;
    case DOp::Call:
    case DOp::ICall: {
      CallSide S;
      S.Callee = D.Callee;
      S.CalleeIdx = D.CalleeIdx;
      S.Builtin = D.Builtin;
      BF.Calls.push_back(S);
      uint32_t SideIdx = static_cast<uint32_t>(BF.Calls.size() - 1);
      if (D.Op == DOp::ICall) {
        BI.Op = BCOp::ICall;
        BI.Extra = static_cast<int64_t>(slotOf(D.A)); // Callee pointer.
      } else {
        BI.Op = D.Builtin != BK_NotBuiltin ? BCOp::CallBuiltin : BCOp::Call;
      }
      BI.A = static_cast<uint32_t>(BF.ArgPool.size());
      BI.B = D.NumArgs;
      BI.C = SideIdx;
      BI.Dst = D.ResultSlot;
      for (unsigned AIdx = 0; AIdx < D.NumArgs; ++AIdx)
        BF.ArgPool.push_back(slotOf(DF.ArgPool[D.ArgsBegin + AIdx]));
      break;
    }
    case DOp::Ret:
      if (D.Extra) {
        BI.Op = BCOp::Ret;
        BI.A = slotOf(D.A);
      } else {
        BI.Op = BCOp::RetVoid;
      }
      break;
    case DOp::Br: {
      BI.Op = CO.Profile ? BCOp::BrProf : BCOp::Br;
      BI.B = D.Target0; // DInst index; remapped below.
      if (CO.Profile) {
        BranchSide S;
        S.From = D.FromBB;
        S.To0 = D.ToBB0;
        BF.Branches.push_back(S);
        BI.C = static_cast<uint32_t>(BF.Branches.size() - 1);
      }
      BranchFixups.push_back(static_cast<uint32_t>(BF.Code.size()));
      break;
    }
    case DOp::CondBr: {
      BI.Op = CO.Profile ? BCOp::CondBrProf : BCOp::CondBr;
      BI.A = slotOf(D.A);
      BI.B = D.Target0;
      BI.C = D.Target1;
      if (CO.Profile) {
        BranchSide S;
        S.From = D.FromBB;
        S.To0 = D.ToBB0;
        S.To1 = D.ToBB1;
        BF.Branches.push_back(S);
        BI.Extra = static_cast<int64_t>(BF.Branches.size() - 1);
      }
      BranchFixups.push_back(static_cast<uint32_t>(BF.Code.size()));
      break;
    }
    case DOp::Malloc:
      BI.Op = BCOp::Malloc;
      BI.A = slotOf(D.A);
      BI.Dst = D.ResultSlot;
      break;
    case DOp::Calloc:
      BI.Op = BCOp::Calloc;
      BI.A = slotOf(D.A);
      BI.B = slotOf(D.B);
      BI.Dst = D.ResultSlot;
      break;
    case DOp::Realloc:
      BI.Op = BCOp::Realloc;
      BI.A = slotOf(D.A);
      BI.B = slotOf(D.B);
      BI.Dst = D.ResultSlot;
      break;
    case DOp::Free:
      BI.Op = BCOp::Free;
      BI.A = slotOf(D.A);
      break;
    case DOp::Memset:
    case DOp::Memcpy: {
      BI.Op = D.Op == DOp::Memset ? BCOp::Memset : BCOp::Memcpy;
      BI.A = slotOf(D.A);
      BI.B = slotOf(D.B);
      BI.C = slotOf(D.C);
      BulkSide S;
      S.Pc = (static_cast<uint64_t>(DF.FuncIdx) << 32) | Idx;
      BF.Bulk.push_back(S);
      BI.Extra = static_cast<int64_t>(BF.Bulk.size() - 1);
      break;
    }
    case DOp::TrapNoTerm:
      BI.Op = BCOp::TrapNoTerm;
      break;
    }
    BF.Code.push_back(BI);
  }

  // Re-target branches from DInst indices to bytecode indices. The
  // fused compare-and-branch forms keep their targets in C/Extra (B is
  // a compare operand there).
  for (uint32_t BIdx : BranchFixups) {
    BCInst &BI = BF.Code[BIdx];
    if (BI.Op >= BCOp::CmpBrEQ && BI.Op <= BCOp::FCmpBrGE) {
      BI.C = Map[BI.C];
      BI.Extra = static_cast<int64_t>(Map[static_cast<size_t>(BI.Extra)]);
    } else {
      BI.B = Map[BI.B];
      if (BI.Op == BCOp::CondBr || BI.Op == BCOp::CondBrProf)
        BI.C = Map[BI.C];
    }
  }

  BF.FrameSlots = DF.NumSlots + static_cast<int32_t>(BF.Consts.size());
}
