//===- support/Random.h - Deterministic PRNG ------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic xorshift64* PRNG used by the workload generator so that
/// generated benchmark programs (and therefore the Table 1 census) are
/// reproducible across platforms and standard library versions.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SUPPORT_RANDOM_H
#define SLO_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace slo {

/// Deterministic xorshift64* pseudo-random number generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability \p P (clamped to [0, 1]).
  bool nextChance(double P) { return nextDouble() < P; }

  /// Derives an independent child stream. The child's seed is a splitmix64
  /// finalizer over one draw from this stream, so (a) the child sequence is
  /// decorrelated from the parent's continuation, and (b) a sequence of
  /// split() calls made in a fixed order yields the same children no matter
  /// when — or on which thread — each child is later consumed. Parallel
  /// fuzz shards split all their streams up front on the submitting thread
  /// and are therefore reproducible independent of scheduling.
  Rng split() {
    uint64_t S = next() + 0x9e3779b97f4a7c15ULL;
    S = (S ^ (S >> 30)) * 0xbf58476d1ce4e5b9ULL;
    S = (S ^ (S >> 27)) * 0x94d049bb133111ebULL;
    S ^= S >> 31;
    return Rng(S);
  }

private:
  uint64_t State;
};

} // namespace slo

#endif // SLO_SUPPORT_RANDOM_H
