//===- support/Diagnostics.h - Structured diagnostics ----------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small structured diagnostics engine shared by the legality analysis,
/// the points-to refinement, the verifier, and the advisory tool. Each
/// diagnostic carries a severity, a machine-readable code (a violation
/// name like "CSTT", "verifier", "proof", ...), the record type and
/// function it concerns, a rendered site provenance, a human-readable
/// message, and — for refinement proofs — the machine-checkable fact that
/// justifies the verdict. Diagnostics render as one-line text or as JSON
/// objects, so the advisory output can be consumed by tooling.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SUPPORT_DIAGNOSTICS_H
#define SLO_SUPPORT_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace slo {

enum class DiagSeverity {
  /// Informational (e.g. a resolved indirect-call target set).
  Note,
  /// A positive analysis result (e.g. a discharged violation).
  Remark,
  /// A negative analysis result that does not invalidate the module.
  Warning,
  /// A structural problem (verifier findings).
  Error,
};

const char *severityName(DiagSeverity S);

/// One diagnostic record.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Note;
  /// Machine-readable code: a violation name ("CSTT", "ATKN", ...),
  /// "verifier", "proof", ...
  std::string Code;
  /// Record type concerned, when any.
  std::string RecordName;
  /// Enclosing function, when any.
  std::string Function;
  /// Rendered site provenance ("bitcast 'p' in 'use_4'"), when any.
  std::string Site;
  /// Human-readable text.
  std::string Message;
  /// Machine-checkable justification for proof diagnostics ("pts(src)=
  /// {heap:...}; views={T}; escape=NoEscape"), empty otherwise.
  std::string Fact;

  std::string renderText() const;
  std::string renderJson() const;
};

/// Collects diagnostics and renders them as text or JSON.
class DiagnosticEngine {
public:
  /// Appends a diagnostic and returns it for field-by-field completion.
  Diagnostic &report(DiagSeverity S, std::string Code, std::string Message);

  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  size_t count(DiagSeverity S) const;
  bool hasErrors() const { return count(DiagSeverity::Error) > 0; }

  /// One line per diagnostic.
  std::string renderText() const;
  /// A JSON array of diagnostic objects.
  std::string renderJson() const;

private:
  std::vector<Diagnostic> Diags;
};

/// Escapes \p S for inclusion in a JSON string literal.
std::string escapeJson(const std::string &S);

} // namespace slo

#endif // SLO_SUPPORT_DIAGNOSTICS_H
