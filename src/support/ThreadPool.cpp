//===- support/ThreadPool.cpp - Fixed-size worker thread pool -------------===//

#include "support/ThreadPool.h"

using namespace slo;

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = 1;
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return Stopping || !Tasks.empty(); });
      // Drain the queue even when stopping so a destructor that races
      // with late enqueues still runs everything that was scheduled.
      if (Tasks.empty())
        return;
      Task = std::move(Tasks.front());
      Tasks.pop_front();
      ++Active;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Active;
      if (Tasks.empty() && Active == 0)
        Idle.notify_all();
    }
  }
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Tasks.push_back(std::move(Task));
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Tasks.empty() && Active == 0; });
}
