//===- support/Casting.h - isa/cast/dyn_cast -------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style opt-in RTTI. Classes participate by providing a static
/// `classof(const Base *)` predicate; these templates then give the usual
/// isa<> / cast<> / dyn_cast<> vocabulary without enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SUPPORT_CASTING_H
#define SLO_SUPPORT_CASTING_H

#include <cassert>

namespace slo {

/// Returns true if \p V is an instance of To.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> to incompatible type");
  return static_cast<To *>(V);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> to incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns nullptr if \p V is not a To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return (V && To::classof(V)) ? static_cast<To *>(V) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *V) {
  return (V && To::classof(V)) ? static_cast<const To *>(V) : nullptr;
}

} // namespace slo

#endif // SLO_SUPPORT_CASTING_H
