//===- support/Format.h - printf-style string formatting ------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string formatting utilities used by the printers, the advisory
/// report, and the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SUPPORT_FORMAT_H
#define SLO_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace slo {

/// Formats \p Fmt with printf semantics into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Right-pads \p S with spaces to at least \p Width characters.
std::string padRight(const std::string &S, size_t Width);

/// Left-pads \p S with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

} // namespace slo

#endif // SLO_SUPPORT_FORMAT_H
