//===- support/Error.cpp - Fatal error reporting --------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void slo::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "slo fatal error: %s\n", Msg.c_str());
  std::fflush(stderr);
  std::abort();
}
