//===- support/Format.cpp - printf-style string formatting ---------------===//

#include "support/Format.h"

#include <cstdio>
#include <vector>

std::string slo::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::vector<char> Buf(static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return std::string(Buf.data(), static_cast<size_t>(Needed));
}

std::string slo::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string slo::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}
