//===- support/Error.h - Fatal error reporting ----------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting helpers used across the library. The library follows
/// the LLVM convention of not using exceptions; unrecoverable conditions
/// abort with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SUPPORT_ERROR_H
#define SLO_SUPPORT_ERROR_H

#include <string>

namespace slo {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable internal
/// errors and for malformed user input in contexts that cannot propagate
/// a diagnostic.
[[noreturn]] void reportFatalError(const std::string &Msg);

} // namespace slo

/// Marks a point in the code that must never be reached. Aborts with the
/// given message when executed.
#define SLO_UNREACHABLE(MSG)                                                   \
  ::slo::reportFatalError(std::string("unreachable executed: ") + (MSG))

#endif // SLO_SUPPORT_ERROR_H
