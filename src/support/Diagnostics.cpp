//===- support/Diagnostics.cpp - Structured diagnostics -------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <sstream>

using namespace slo;

const char *slo::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Remark:
    return "remark";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "?";
}

std::string slo::escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string Diagnostic::renderText() const {
  std::ostringstream OS;
  OS << severityName(Severity) << " [" << Code << "]";
  if (!RecordName.empty())
    OS << " type '" << RecordName << "'";
  if (!Function.empty())
    OS << " in '" << Function << "'";
  if (!Site.empty())
    OS << " at " << Site;
  OS << ": " << Message;
  if (!Fact.empty())
    OS << " {" << Fact << "}";
  return OS.str();
}

std::string Diagnostic::renderJson() const {
  std::ostringstream OS;
  OS << "{\"severity\": \"" << severityName(Severity) << "\", \"code\": \""
     << escapeJson(Code) << "\"";
  if (!RecordName.empty())
    OS << ", \"record\": \"" << escapeJson(RecordName) << "\"";
  if (!Function.empty())
    OS << ", \"function\": \"" << escapeJson(Function) << "\"";
  if (!Site.empty())
    OS << ", \"site\": \"" << escapeJson(Site) << "\"";
  OS << ", \"message\": \"" << escapeJson(Message) << "\"";
  if (!Fact.empty())
    OS << ", \"fact\": \"" << escapeJson(Fact) << "\"";
  OS << "}";
  return OS.str();
}

Diagnostic &DiagnosticEngine::report(DiagSeverity S, std::string Code,
                                     std::string Message) {
  Diagnostic D;
  D.Severity = S;
  D.Code = std::move(Code);
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
  return Diags.back();
}

size_t DiagnosticEngine::count(DiagSeverity S) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == S)
      ++N;
  return N;
}

std::string DiagnosticEngine::renderText() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.renderText();
    Out += "\n";
  }
  return Out;
}

std::string DiagnosticEngine::renderJson() const {
  std::string Out = "[";
  for (size_t I = 0; I < Diags.size(); ++I) {
    if (I)
      Out += ",\n ";
    Out += Diags[I].renderJson();
  }
  Out += "]";
  return Out;
}
