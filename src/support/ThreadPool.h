//===- support/ThreadPool.h - Fixed-size worker thread pool ----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool for the benchmark harnesses: the 12-workload
/// tables build and simulate every workload independently, so each can
/// run on its own worker with its own Interpreter and CacheSim. The pool
/// deliberately has no futures or task graph — callers enqueue closures
/// that write into caller-owned, index-addressed storage and then wait()
/// for quiescence, which keeps result reduction in task-submission order
/// and the harness output deterministic regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SUPPORT_THREADPOOL_H
#define SLO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slo {

class ThreadPool {
public:
  /// Spawns \p ThreadCount workers (at least one).
  explicit ThreadPool(unsigned ThreadCount);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Schedules \p Task to run on some worker. Tasks are started in
  /// enqueue order.
  void enqueue(std::function<void()> Task);

  /// Blocks until every enqueued task has finished.
  void wait();

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

private:
  void workerLoop();

  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Tasks;
  std::vector<std::thread> Workers;
  unsigned Active = 0;
  bool Stopping = false;
};

} // namespace slo

#endif // SLO_SUPPORT_THREADPOOL_H
