//===- ir/Instructions.cpp - Instruction classes --------------------------===//

#include "ir/Instructions.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "support/Casting.h"
#include "support/Error.h"

using namespace slo;

Instruction::~Instruction() { dropAllReferences(); }

void Instruction::dropAllReferences() {
  for (Value *Op : Operands)
    if (Op)
      Op->removeUser(this);
  Operands.clear();
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "operand must not be null");
  Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::appendOperand(Value *V) {
  assert(V && "operand must not be null");
  Operands.push_back(V);
  V->addUser(this);
}

const char *Instruction::getOpcodeName(Opcode Op) {
  switch (Op) {
  case OpAlloca:
    return "alloca";
  case OpLoad:
    return "load";
  case OpStore:
    return "store";
  case OpFieldAddr:
    return "fieldaddr";
  case OpIndexAddr:
    return "indexaddr";
  case OpAdd:
    return "add";
  case OpSub:
    return "sub";
  case OpMul:
    return "mul";
  case OpSDiv:
    return "sdiv";
  case OpSRem:
    return "srem";
  case OpAnd:
    return "and";
  case OpOr:
    return "or";
  case OpXor:
    return "xor";
  case OpShl:
    return "shl";
  case OpAShr:
    return "ashr";
  case OpFAdd:
    return "fadd";
  case OpFSub:
    return "fsub";
  case OpFMul:
    return "fmul";
  case OpFDiv:
    return "fdiv";
  case OpICmpEQ:
    return "icmp.eq";
  case OpICmpNE:
    return "icmp.ne";
  case OpICmpSLT:
    return "icmp.slt";
  case OpICmpSLE:
    return "icmp.sle";
  case OpICmpSGT:
    return "icmp.sgt";
  case OpICmpSGE:
    return "icmp.sge";
  case OpFCmpEQ:
    return "fcmp.eq";
  case OpFCmpNE:
    return "fcmp.ne";
  case OpFCmpLT:
    return "fcmp.lt";
  case OpFCmpLE:
    return "fcmp.le";
  case OpFCmpGT:
    return "fcmp.gt";
  case OpFCmpGE:
    return "fcmp.ge";
  case OpTrunc:
    return "trunc";
  case OpSExt:
    return "sext";
  case OpZExt:
    return "zext";
  case OpFPExt:
    return "fpext";
  case OpFPTrunc:
    return "fptrunc";
  case OpSIToFP:
    return "sitofp";
  case OpFPToSI:
    return "fptosi";
  case OpBitcast:
    return "bitcast";
  case OpPtrToInt:
    return "ptrtoint";
  case OpIntToPtr:
    return "inttoptr";
  case OpCall:
    return "call";
  case OpICall:
    return "icall";
  case OpRet:
    return "ret";
  case OpBr:
    return "br";
  case OpCondBr:
    return "condbr";
  case OpMalloc:
    return "malloc";
  case OpCalloc:
    return "calloc";
  case OpRealloc:
    return "realloc";
  case OpFree:
    return "free";
  case OpMemset:
    return "memset";
  case OpMemcpy:
    return "memcpy";
  }
  SLO_UNREACHABLE("unknown opcode");
}

static bool instHasOpcode(const Value *V, Instruction::Opcode Op) {
  const auto *I = dyn_cast<Instruction>(V);
  return I && I->getOpcode() == Op;
}

static bool instOpcodeInRange(const Value *V, Instruction::Opcode Lo,
                              Instruction::Opcode Hi) {
  const auto *I = dyn_cast<Instruction>(V);
  return I && I->getOpcode() >= Lo && I->getOpcode() <= Hi;
}

bool AllocaInst::classof(const Value *V) {
  return instHasOpcode(V, OpAlloca);
}
bool LoadInst::classof(const Value *V) { return instHasOpcode(V, OpLoad); }
bool StoreInst::classof(const Value *V) { return instHasOpcode(V, OpStore); }
bool FieldAddrInst::classof(const Value *V) {
  return instHasOpcode(V, OpFieldAddr);
}
bool IndexAddrInst::classof(const Value *V) {
  return instHasOpcode(V, OpIndexAddr);
}
bool BinaryInst::classof(const Value *V) {
  return instOpcodeInRange(V, OpAdd, OpFDiv);
}
bool CmpInst::classof(const Value *V) {
  return instOpcodeInRange(V, OpICmpEQ, OpFCmpGE);
}
bool CastInst::classof(const Value *V) {
  return instOpcodeInRange(V, OpTrunc, OpIntToPtr);
}
bool CallInst::classof(const Value *V) { return instHasOpcode(V, OpCall); }
bool IndirectCallInst::classof(const Value *V) {
  return instHasOpcode(V, OpICall);
}
bool RetInst::classof(const Value *V) { return instHasOpcode(V, OpRet); }
bool BrInst::classof(const Value *V) { return instHasOpcode(V, OpBr); }
bool CondBrInst::classof(const Value *V) {
  return instHasOpcode(V, OpCondBr);
}
bool MallocInst::classof(const Value *V) { return instHasOpcode(V, OpMalloc); }
bool CallocInst::classof(const Value *V) { return instHasOpcode(V, OpCalloc); }
bool ReallocInst::classof(const Value *V) {
  return instHasOpcode(V, OpRealloc);
}
bool FreeInst::classof(const Value *V) { return instHasOpcode(V, OpFree); }
bool MemsetInst::classof(const Value *V) { return instHasOpcode(V, OpMemset); }
bool MemcpyInst::classof(const Value *V) { return instHasOpcode(V, OpMemcpy); }

CallInst::CallInst(Function *Callee, const std::vector<Value *> &Args,
                   std::string Name)
    : Instruction(OpCall, Callee->getFunctionType()->getReturnType(),
                  std::move(Name)),
      Callee(Callee) {
  assert(Args.size() == Callee->getFunctionType()->getNumParams() &&
         "call argument count mismatch");
  for (Value *A : Args)
    appendOperand(A);
}

IndirectCallInst::IndirectCallInst(Value *CalleePtr,
                                   const std::vector<Value *> &Args,
                                   std::string Name)
    : Instruction(
          OpICall,
          cast<FunctionType>(
              cast<PointerType>(CalleePtr->getType())->getPointee())
              ->getReturnType(),
          std::move(Name)) {
  appendOperand(CalleePtr);
  for (Value *A : Args)
    appendOperand(A);
}
