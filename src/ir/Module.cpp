//===- ir/Module.cpp - Modules and global variables -----------------------===//

#include "ir/Module.h"

#include "support/Error.h"

using namespace slo;

Module::~Module() {
  // Address-taken functions and globals are operands of instructions in
  // other functions; drop every operand reference before destroying any
  // value so the use-list invariants hold throughout destruction.
  for (auto &F : Funcs)
    for (auto &BB : F->blocks())
      for (auto &I : BB->instructions())
        I->dropAllReferences();
}

Function *Module::createFunction(FunctionType *FnTy,
                                 const std::string &FnName, bool IsLib) {
  assert(!lookupFunction(FnName) && "duplicate function name");
  Funcs.emplace_back(new Function(getTypes(), FnTy, FnName, IsLib));
  Function *F = Funcs.back().get();
  F->setParent(this);
  return F;
}

GlobalVariable *Module::createGlobal(Type *ValueTy,
                                     const std::string &GlobalName) {
  assert(!lookupGlobal(GlobalName) && "duplicate global name");
  Globals.emplace_back(new GlobalVariable(getTypes(), ValueTy, GlobalName));
  return Globals.back().get();
}

Function *Module::lookupFunction(const std::string &FnName) const {
  for (const auto &F : Funcs)
    if (F->getName() == FnName)
      return F.get();
  return nullptr;
}

GlobalVariable *Module::lookupGlobal(const std::string &GlobalName) const {
  for (const auto &G : Globals)
    if (G->getName() == GlobalName)
      return G.get();
  return nullptr;
}

Function *Module::adoptFunction(std::unique_ptr<Function> F) {
  assert(F && "adopting a null function");
  F->setParent(this);
  Funcs.push_back(std::move(F));
  return Funcs.back().get();
}

GlobalVariable *Module::adoptGlobal(std::unique_ptr<GlobalVariable> G) {
  assert(G && "adopting a null global");
  Globals.push_back(std::move(G));
  return Globals.back().get();
}

void Module::removeFunction(Function *F) {
  assert(!F->hasUsers() && "removing a function that still has users");
  for (auto It = Funcs.begin(); It != Funcs.end(); ++It) {
    if (It->get() == F) {
      Funcs.erase(It);
      return;
    }
  }
  SLO_UNREACHABLE("removeFunction: function not in this module");
}

std::unique_ptr<Function> Module::releaseFunction(Function *F) {
  for (auto It = Funcs.begin(); It != Funcs.end(); ++It) {
    if (It->get() == F) {
      std::unique_ptr<Function> Out = std::move(*It);
      Funcs.erase(It);
      return Out;
    }
  }
  SLO_UNREACHABLE("releaseFunction: function not in this module");
}

void Module::reorderGlobals(const std::vector<GlobalVariable *> &NewOrder) {
  assert(NewOrder.size() == Globals.size() &&
         "reorderGlobals requires a full permutation");
  std::vector<std::unique_ptr<GlobalVariable>> Reordered;
  Reordered.reserve(Globals.size());
  for (GlobalVariable *Want : NewOrder) {
    bool Found = false;
    for (auto &Slot : Globals) {
      if (Slot.get() == Want) {
        Reordered.push_back(std::move(Slot));
        Found = true;
        break;
      }
    }
    if (!Found)
      SLO_UNREACHABLE("reorderGlobals: global not in this module");
  }
  Globals = std::move(Reordered);
}

std::vector<std::unique_ptr<Function>> Module::takeFunctions() {
  return std::move(Funcs);
}

std::vector<std::unique_ptr<GlobalVariable>> Module::takeGlobals() {
  return std::move(Globals);
}
