//===- ir/Function.h - Functions and arguments -----------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function definitions and declarations. A declaration without a body is
/// either an unresolved external (resolved by the Linker) or a library
/// function; the latter drives the paper's LIBC legality test: record
/// types escaping to a library function are invalid because they escape
/// the compilation scope.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_FUNCTION_H
#define SLO_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace slo {

class Module;
class Function;

/// A formal parameter of a function.
class Argument : public Value {
public:
  Argument(Type *Ty, std::string Name, unsigned Index, Function *Parent)
      : Value(VK_Argument, Ty, std::move(Name)), Index(Index),
        Parent(Parent) {}

  unsigned getIndex() const { return Index; }
  Function *getParent() const { return Parent; }

  static bool classof(const Value *V) { return V->getKind() == VK_Argument; }

private:
  unsigned Index;
  Function *Parent;
};

/// A function definition or declaration.
class Function : public Value {
public:
  Function(TypeContext &Types, FunctionType *FnTy, std::string Name,
           bool IsLib);
  ~Function() override;

  FunctionType *getFunctionType() const { return FnTy; }
  Type *getReturnType() const { return FnTy->getReturnType(); }

  /// True for declarations marked as standard-library functions (the
  /// paper's "marked specially in the header files" set). Escaping a
  /// record type to one of these triggers the LIBC legality violation.
  bool isLibFunction() const { return IsLib; }
  void setLibFunction(bool V) { IsLib = V; }

  bool isDeclaration() const { return Blocks.empty(); }

  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }

  Module *getParent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  /// Creates and appends a new basic block.
  BasicBlock *createBlock(const std::string &BlockName);

  /// Inserts an externally created block (used by transformations that
  /// splice in loops).
  BasicBlock *insertBlockAfter(BasicBlock *Pos,
                               std::unique_ptr<BasicBlock> BB);

  BasicBlock *getEntry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t size() const { return Blocks.size(); }

  /// Renumbers blocks 0..N-1 in layout order. Called automatically on
  /// block creation; cheap enough to call after CFG surgery.
  void renumberBlocks();

  /// Changes this function's signature to \p NewTy (same arity). Only the
  /// layout transformations use this, when a record type mentioned in the
  /// signature is replaced by a new layout. Argument types are mutated by
  /// the caller's retyping walk.
  void retype(TypeContext &Types, FunctionType *NewTy);

  static bool classof(const Value *V) { return V->getKind() == VK_Function; }

private:
  FunctionType *FnTy;
  bool IsLib;
  Module *Parent = nullptr;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace slo

#endif // SLO_IR_FUNCTION_H
