//===- ir/Instructions.h - Instruction classes -----------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the IR. The design choices that matter for the
/// paper's analyses:
///
///  - Field accesses are explicit FieldAddr instructions, so the legality
///    test ATKN ("address of a field taken") is simply "a FieldAddr result
///    has a user other than the pointer operand of a load/store".
///  - Heap management and memory streaming are intrinsic instructions
///    (Malloc/Calloc/Realloc/Free/Memset/Memcpy), so the legality tests
///    SMAL and MSET and the allocation-site rewriting are structural.
///  - malloc/calloc return i8* (C's void*) and the frontend emits an
///    explicit Bitcast to the record pointer type, exactly the situation
///    the paper's CSTT tolerance list deals with.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_INSTRUCTIONS_H
#define SLO_IR_INSTRUCTIONS_H

#include "ir/Value.h"

#include <cassert>
#include <string>
#include <vector>

namespace slo {

class BasicBlock;
class Function;

/// Base class of all instructions. Owns the operand list and keeps the
/// per-value user lists consistent.
class Instruction : public Value {
public:
  enum Opcode {
    // Memory.
    OpAlloca,
    OpLoad,
    OpStore,
    OpFieldAddr,
    OpIndexAddr,
    // Integer arithmetic / bitwise.
    OpAdd,
    OpSub,
    OpMul,
    OpSDiv,
    OpSRem,
    OpAnd,
    OpOr,
    OpXor,
    OpShl,
    OpAShr,
    // Floating point arithmetic.
    OpFAdd,
    OpFSub,
    OpFMul,
    OpFDiv,
    // Comparisons (result i1).
    OpICmpEQ,
    OpICmpNE,
    OpICmpSLT,
    OpICmpSLE,
    OpICmpSGT,
    OpICmpSGE,
    OpFCmpEQ,
    OpFCmpNE,
    OpFCmpLT,
    OpFCmpLE,
    OpFCmpGT,
    OpFCmpGE,
    // Casts.
    OpTrunc,
    OpSExt,
    OpZExt,
    OpFPExt,
    OpFPTrunc,
    OpSIToFP,
    OpFPToSI,
    OpBitcast,
    OpPtrToInt,
    OpIntToPtr,
    // Control flow.
    OpCall,
    OpICall,
    OpRet,
    OpBr,
    OpCondBr,
    // Heap and memory streaming intrinsics.
    OpMalloc,
    OpCalloc,
    OpRealloc,
    OpFree,
    OpMemset,
    OpMemcpy,
  };

  ~Instruction() override;

  Opcode getOpcode() const { return Op; }
  static const char *getOpcodeName(Opcode Op);

  BasicBlock *getParent() const { return Parent; }
  Function *getFunction() const;

  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V);
  const std::vector<Value *> &operands() const { return Operands; }

  bool isTerminator() const {
    return Op == OpRet || Op == OpBr || Op == OpCondBr;
  }

  /// Removes this instruction's operand uses. Called by BasicBlock::erase
  /// before destruction, and by the destructor as a safety net.
  void dropAllReferences();

  static bool classof(const Value *V) {
    return V->getKind() == VK_Instruction;
  }

protected:
  Instruction(Opcode Op, Type *Ty, std::string Name)
      : Value(VK_Instruction, Ty, std::move(Name)), Op(Op) {}

  void appendOperand(Value *V);

private:
  friend class BasicBlock;
  Opcode Op;
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
};

/// Stack allocation of one object of the given type; yields a pointer.
/// MiniC local variables (scalars, pointers, structs, arrays) lower to
/// allocas in the entry block.
class AllocaInst : public Instruction {
public:
  AllocaInst(TypeContext &Types, Type *Allocated, std::string Name)
      : Instruction(OpAlloca, Types.getPointerType(Allocated),
                    std::move(Name)),
        Allocated(Allocated) {}

  Type *getAllocatedType() const { return Allocated; }

  /// Retypes the alloca; used only by layout transformations.
  void setAllocatedType(TypeContext &Types, Type *NewTy) {
    Allocated = NewTy;
    mutateType(Types.getPointerType(NewTy));
  }

  static bool classof(const Value *V);

private:
  Type *Allocated;
};

/// Loads the pointee of the pointer operand.
class LoadInst : public Instruction {
public:
  LoadInst(Value *Ptr, std::string Name)
      : Instruction(OpLoad,
                    static_cast<PointerType *>(Ptr->getType())->getPointee(),
                    std::move(Name)) {
    assert(Ptr->getType()->isPointer() && "load requires a pointer");
    appendOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }

  static bool classof(const Value *V);
};

/// Stores the value operand through the pointer operand.
class StoreInst : public Instruction {
public:
  StoreInst(TypeContext &Types, Value *Val, Value *Ptr)
      : Instruction(OpStore, Types.getVoidType(), "") {
    assert(Ptr->getType()->isPointer() && "store requires a pointer");
    appendOperand(Val);
    appendOperand(Ptr);
  }

  Value *getStoredValue() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }

  static bool classof(const Value *V);
};

/// Computes the address of field \p FieldIndex of the record pointed to by
/// the base operand. The result type is pointer-to-field-type.
class FieldAddrInst : public Instruction {
public:
  FieldAddrInst(TypeContext &Types, Value *Base, RecordType *Rec,
                unsigned FieldIndex, std::string Name)
      : Instruction(OpFieldAddr,
                    Types.getPointerType(Rec->getField(FieldIndex).Ty),
                    std::move(Name)),
        Rec(Rec), FieldIndex(FieldIndex) {
    assert(Base->getType()->isPointer() && "fieldaddr requires a pointer");
    appendOperand(Base);
  }

  Value *getBase() const { return getOperand(0); }
  RecordType *getRecord() const { return Rec; }
  unsigned getFieldIndex() const { return FieldIndex; }
  const Field &getField() const { return Rec->getField(FieldIndex); }

  /// Redirects this access to field \p NewIndex of \p NewRec; used by the
  /// layout transformations when rewriting accesses to a new layout.
  void setTarget(TypeContext &Types, RecordType *NewRec, unsigned NewIndex) {
    Rec = NewRec;
    FieldIndex = NewIndex;
    mutateType(Types.getPointerType(NewRec->getField(NewIndex).Ty));
  }

  static bool classof(const Value *V);

private:
  RecordType *Rec;
  unsigned FieldIndex;
};

/// Computes base + index * sizeof(pointee); the typed form of C pointer
/// arithmetic and array indexing. Result type equals the base type.
class IndexAddrInst : public Instruction {
public:
  IndexAddrInst(Value *Base, Value *Index, std::string Name)
      : Instruction(OpIndexAddr, Base->getType(), std::move(Name)) {
    assert(Base->getType()->isPointer() && "indexaddr requires a pointer");
    assert(Index->getType()->isInt() && "index must be an integer");
    appendOperand(Base);
    appendOperand(Index);
  }

  Value *getBase() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }

  static bool classof(const Value *V);
};

/// Two-operand arithmetic or bitwise instruction.
class BinaryInst : public Instruction {
public:
  BinaryInst(Opcode Op, Value *LHS, Value *RHS, std::string Name)
      : Instruction(Op, LHS->getType(), std::move(Name)) {
    assert(Op >= OpAdd && Op <= OpFDiv && "not a binary opcode");
    assert(LHS->getType() == RHS->getType() &&
           "binary operand types must match");
    appendOperand(LHS);
    appendOperand(RHS);
  }

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V);
};

/// Comparison producing an i1.
class CmpInst : public Instruction {
public:
  CmpInst(TypeContext &Types, Opcode Op, Value *LHS, Value *RHS,
          std::string Name)
      : Instruction(Op, Types.getI1(), std::move(Name)) {
    assert(Op >= OpICmpEQ && Op <= OpFCmpGE && "not a comparison opcode");
    appendOperand(LHS);
    appendOperand(RHS);
  }

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V);
};

/// Conversion between numeric types, or pointer casts. Bitcast between
/// record pointer types is what the CSTT/CSTF legality tests inspect.
class CastInst : public Instruction {
public:
  CastInst(Opcode Op, Value *Operand, Type *DestTy, std::string Name)
      : Instruction(Op, DestTy, std::move(Name)) {
    assert(Op >= OpTrunc && Op <= OpIntToPtr && "not a cast opcode");
    appendOperand(Operand);
  }

  Value *getCastOperand() const { return getOperand(0); }

  static bool classof(const Value *V);
};

/// Direct call to a known function.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, const std::vector<Value *> &Args,
           std::string Name);

  Function *getCallee() const { return Callee; }
  /// Redirects the call; used by the Linker to resolve declarations to
  /// definitions.
  void setCallee(Function *F) { Callee = F; }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }

  static bool classof(const Value *V);

private:
  Function *Callee;
};

/// Call through a function pointer. Operand 0 is the callee; the targets
/// are unknown to the front end, which is what the IND legality test is
/// about.
class IndirectCallInst : public Instruction {
public:
  IndirectCallInst(Value *CalleePtr, const std::vector<Value *> &Args,
                   std::string Name);

  Value *getCalleePtr() const { return getOperand(0); }
  unsigned getNumArgs() const { return getNumOperands() - 1; }
  Value *getArg(unsigned I) const { return getOperand(I + 1); }

  static bool classof(const Value *V);
};

/// Function return, with an optional value.
class RetInst : public Instruction {
public:
  RetInst(TypeContext &Types, Value *Val)
      : Instruction(OpRet, Types.getVoidType(), "") {
    if (Val)
      appendOperand(Val);
  }

  bool hasValue() const { return getNumOperands() == 1; }
  Value *getValue() const { return getOperand(0); }

  static bool classof(const Value *V);
};

/// Unconditional branch.
class BrInst : public Instruction {
public:
  BrInst(TypeContext &Types, BasicBlock *Target)
      : Instruction(OpBr, Types.getVoidType(), ""), Target(Target) {}

  BasicBlock *getTarget() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }

  static bool classof(const Value *V);

private:
  BasicBlock *Target;
};

/// Conditional branch on an i1 operand.
class CondBrInst : public Instruction {
public:
  CondBrInst(TypeContext &Types, Value *Cond, BasicBlock *TrueBB,
             BasicBlock *FalseBB)
      : Instruction(OpCondBr, Types.getVoidType(), ""), TrueBB(TrueBB),
        FalseBB(FalseBB) {
    appendOperand(Cond);
  }

  Value *getCondition() const { return getOperand(0); }
  BasicBlock *getTrueTarget() const { return TrueBB; }
  BasicBlock *getFalseTarget() const { return FalseBB; }
  void setTrueTarget(BasicBlock *BB) { TrueBB = BB; }
  void setFalseTarget(BasicBlock *BB) { FalseBB = BB; }

  static bool classof(const Value *V);

private:
  BasicBlock *TrueBB;
  BasicBlock *FalseBB;
};

/// malloc(bytes): returns i8* (C's void*). The frontend emits the byte
/// count as `N * sizeof(T)` with an attributed sizeof constant, which the
/// SMAL analysis pattern-matches and the transformations rewrite.
class MallocInst : public Instruction {
public:
  MallocInst(TypeContext &Types, Value *SizeBytes, std::string Name)
      : Instruction(OpMalloc, Types.getBytePtrType(), std::move(Name)) {
    appendOperand(SizeBytes);
  }

  Value *getSizeBytes() const { return getOperand(0); }

  static bool classof(const Value *V);
};

/// calloc(count, elemsize): returns zeroed i8*.
class CallocInst : public Instruction {
public:
  CallocInst(TypeContext &Types, Value *Count, Value *ElemSize,
             std::string Name)
      : Instruction(OpCalloc, Types.getBytePtrType(), std::move(Name)) {
    appendOperand(Count);
    appendOperand(ElemSize);
  }

  Value *getCount() const { return getOperand(0); }
  Value *getElemSize() const { return getOperand(1); }

  static bool classof(const Value *V);
};

/// realloc(ptr, bytes). Types that are realloc'd are never transformed
/// (the paper collects the "re-allocated" attribute for this purpose).
class ReallocInst : public Instruction {
public:
  ReallocInst(TypeContext &Types, Value *Ptr, Value *SizeBytes,
              std::string Name)
      : Instruction(OpRealloc, Types.getBytePtrType(), std::move(Name)) {
    appendOperand(Ptr);
    appendOperand(SizeBytes);
  }

  Value *getPtr() const { return getOperand(0); }
  Value *getSizeBytes() const { return getOperand(1); }

  static bool classof(const Value *V);
};

/// free(ptr).
class FreeInst : public Instruction {
public:
  FreeInst(TypeContext &Types, Value *Ptr)
      : Instruction(OpFree, Types.getVoidType(), "") {
    appendOperand(Ptr);
  }

  Value *getPtr() const { return getOperand(0); }

  static bool classof(const Value *V);
};

/// memset(ptr, byteval, bytes). Record types reaching a memset are marked
/// invalid (the paper's MSET implementation limitation).
class MemsetInst : public Instruction {
public:
  MemsetInst(TypeContext &Types, Value *Ptr, Value *Byte, Value *SizeBytes)
      : Instruction(OpMemset, Types.getVoidType(), "") {
    appendOperand(Ptr);
    appendOperand(Byte);
    appendOperand(SizeBytes);
  }

  Value *getPtr() const { return getOperand(0); }
  Value *getByte() const { return getOperand(1); }
  Value *getSizeBytes() const { return getOperand(2); }

  static bool classof(const Value *V);
};

/// memcpy(dst, src, bytes).
class MemcpyInst : public Instruction {
public:
  MemcpyInst(TypeContext &Types, Value *Dst, Value *Src, Value *SizeBytes)
      : Instruction(OpMemcpy, Types.getVoidType(), "") {
    appendOperand(Dst);
    appendOperand(Src);
    appendOperand(SizeBytes);
  }

  Value *getDst() const { return getOperand(0); }
  Value *getSrc() const { return getOperand(1); }
  Value *getSizeBytes() const { return getOperand(2); }

  static bool classof(const Value *V);
};

} // namespace slo

#endif // SLO_IR_INSTRUCTIONS_H
