//===- ir/Module.h - Modules and global variables --------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is the IR of one translation unit (the stand-in for the
/// paper's IELF files). The Linker merges modules into a whole program
/// before the inter-procedural phase.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_MODULE_H
#define SLO_IR_MODULE_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace slo {

/// A global variable. Its Value type is pointer-to-ValueType, like an
/// LLVM global: using a global as an operand yields its address.
class GlobalVariable : public Value {
public:
  GlobalVariable(TypeContext &Types, Type *ValueTy, std::string Name)
      : Value(VK_GlobalVariable, Types.getPointerType(ValueTy),
              std::move(Name)),
        ValueTy(ValueTy) {}

  Type *getValueType() const { return ValueTy; }

  /// Retypes the global; used only by the layout transformations.
  void setValueType(TypeContext &Types, Type *NewTy) {
    ValueTy = NewTy;
    mutateType(Types.getPointerType(NewTy));
  }

  /// Scalar integer initial value (globals are otherwise zero-initialized).
  bool hasIntInit() const { return HasIntInit; }
  int64_t getIntInit() const { return IntInit; }
  void setIntInit(int64_t V) {
    HasIntInit = true;
    IntInit = V;
  }

  static bool classof(const Value *V) {
    return V->getKind() == VK_GlobalVariable;
  }

private:
  Type *ValueTy;
  bool HasIntInit = false;
  int64_t IntInit = 0;
};

/// The IR of one translation unit, or (after linking) a whole program.
class Module {
public:
  Module(IRContext &Ctx, std::string Name) : Ctx(Ctx), Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  ~Module();

  IRContext &getContext() const { return Ctx; }
  TypeContext &getTypes() const { return Ctx.getTypes(); }
  const std::string &getName() const { return Name; }

  /// Creates a function; \p IsLib marks library declarations.
  Function *createFunction(FunctionType *FnTy, const std::string &FnName,
                           bool IsLib = false);

  /// Creates a global variable of value type \p ValueTy.
  GlobalVariable *createGlobal(Type *ValueTy, const std::string &GlobalName);

  Function *lookupFunction(const std::string &FnName) const;
  GlobalVariable *lookupGlobal(const std::string &GlobalName) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Transfers ownership of \p F / \p G into this module (Linker use).
  Function *adoptFunction(std::unique_ptr<Function> F);
  GlobalVariable *adoptGlobal(std::unique_ptr<GlobalVariable> G);

  /// Removes \p F (which must have no remaining users) from the module.
  void removeFunction(Function *F);

  /// Detaches \p F from the module without destroying it; ownership passes
  /// to the caller (Linker use: the function may still have stale users
  /// that are about to be patched).
  std::unique_ptr<Function> releaseFunction(Function *F);

  /// Releases ownership of all functions and globals (Linker use).
  std::vector<std::unique_ptr<Function>> takeFunctions();
  std::vector<std::unique_ptr<GlobalVariable>> takeGlobals();

  /// Reorders the globals to \p NewOrder, which must be a permutation of
  /// the current globals. The interpreter assigns addresses in module
  /// order, so this changes data placement (the GVL phase).
  void reorderGlobals(const std::vector<GlobalVariable *> &NewOrder);

private:
  IRContext &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
};

} // namespace slo

#endif // SLO_IR_MODULE_H
