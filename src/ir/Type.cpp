//===- ir/Type.cpp - IR type system ---------------------------------------===//

#include "ir/Type.h"

#include "support/Error.h"

using namespace slo;

uint64_t VoidType::getSize() const {
  reportFatalError("void type has no size");
}

unsigned VoidType::getAlign() const {
  reportFatalError("void type has no alignment");
}

uint64_t FunctionType::getSize() const {
  reportFatalError("function type has no size");
}

unsigned FunctionType::getAlign() const {
  reportFatalError("function type has no alignment");
}

std::string FunctionType::getName() const {
  std::string S = Ret->getName() + "(";
  for (size_t I = 0; I < Params.size(); ++I) {
    if (I)
      S += ", ";
    S += Params[I]->getName();
  }
  return S + ")";
}

void RecordType::setFields(std::vector<Field> NewFields) {
  assert(!LayoutDone && "record body already set");
  Fields = std::move(NewFields);
  uint64_t Offset = 0;
  unsigned MaxAlign = 1;
  for (unsigned I = 0; I < Fields.size(); ++I) {
    Field &F = Fields[I];
    assert(F.Ty && "field has no type");
    unsigned A = F.Ty->getAlign();
    Offset = alignTo(Offset, A);
    F.Offset = Offset;
    F.Index = I;
    Offset += F.Ty->getSize();
    MaxAlign = std::max(MaxAlign, A);
  }
  Align = MaxAlign;
  Size = alignTo(Offset, MaxAlign);
  // An empty record still occupies one byte so that distinct heap objects
  // have distinct addresses (mirrors C++ rather than C, which forbids
  // empty structs).
  if (Size == 0)
    Size = 1;
  LayoutDone = true;
}

const Field *RecordType::findField(const std::string &FieldName) const {
  for (const Field &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

TypeContext::TypeContext() : VoidTy(new VoidType()) {}

IntType *TypeContext::getIntType(unsigned Bits) {
  auto &Slot = IntTypes[Bits];
  if (!Slot)
    Slot.reset(new IntType(Bits));
  return Slot.get();
}

FloatType *TypeContext::getFloatType(unsigned Bits) {
  auto &Slot = FloatTypes[Bits];
  if (!Slot)
    Slot.reset(new FloatType(Bits));
  return Slot.get();
}

PointerType *TypeContext::getPointerType(Type *Pointee) {
  auto &Slot = PointerTypes[Pointee];
  if (!Slot)
    Slot.reset(new PointerType(Pointee));
  return Slot.get();
}

ArrayType *TypeContext::getArrayType(Type *Elem, uint64_t NumElements) {
  auto &Slot = ArrayTypes[{Elem, NumElements}];
  if (!Slot)
    Slot.reset(new ArrayType(Elem, NumElements));
  return Slot.get();
}

FunctionType *TypeContext::getFunctionType(Type *Ret,
                                           std::vector<Type *> Params) {
  for (auto &FT : FunctionTypes)
    if (FT->getReturnType() == Ret && FT->getParamTypes() == Params)
      return FT.get();
  FunctionTypes.emplace_back(new FunctionType(Ret, std::move(Params)));
  return FunctionTypes.back().get();
}

RecordType *TypeContext::getOrCreateRecord(const std::string &Name) {
  auto &Slot = Records[Name];
  if (!Slot) {
    Slot.reset(new RecordType(Name));
    RecordOrder.push_back(Slot.get());
  }
  return Slot.get();
}

RecordType *TypeContext::lookupRecord(const std::string &Name) const {
  auto It = Records.find(Name);
  return It == Records.end() ? nullptr : It->second.get();
}

RecordType *TypeContext::createUniqueRecord(const std::string &BaseName) {
  std::string Name = BaseName;
  unsigned Suffix = 0;
  while (Records.count(Name))
    Name = BaseName + "." + std::to_string(++Suffix);
  return getOrCreateRecord(Name);
}

std::vector<RecordType *> TypeContext::records() const { return RecordOrder; }
