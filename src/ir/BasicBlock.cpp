//===- ir/BasicBlock.cpp - Basic blocks -----------------------------------===//

#include "ir/BasicBlock.h"

#include "support/Casting.h"
#include "support/Error.h"

using namespace slo;

BasicBlock::~BasicBlock() {
  // Destroy instructions back-to-front so that defs outlive uses, and drop
  // operand references first so cross-references within the block are safe.
  for (auto &I : Insts)
    I->dropAllReferences();
}

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(I && "appending a null instruction");
  assert(!getTerminator() && "appending past a terminator");
  I->Parent = this;
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertBefore(Instruction *Pos,
                                      std::unique_ptr<Instruction> I) {
  assert(I && "inserting a null instruction");
  I->Parent = this;
  for (auto It = Insts.begin(); It != Insts.end(); ++It) {
    if (It->get() == Pos) {
      return Insts.insert(It, std::move(I))->get();
    }
  }
  SLO_UNREACHABLE("insertBefore: position not in this block");
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUsers() && "erasing an instruction that still has users");
  for (auto It = Insts.begin(); It != Insts.end(); ++It) {
    if (It->get() == I) {
      Insts.erase(It);
      return;
    }
  }
  SLO_UNREACHABLE("erase: instruction not in this block");
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction *I) {
  for (auto It = Insts.begin(); It != Insts.end(); ++It) {
    if (It->get() == I) {
      std::unique_ptr<Instruction> Out = std::move(*It);
      Insts.erase(It);
      Out->Parent = nullptr;
      return Out;
    }
  }
  SLO_UNREACHABLE("remove: instruction not in this block");
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *T = getTerminator();
  if (!T)
    return {};
  if (auto *Br = dyn_cast<BrInst>(T))
    return {Br->getTarget()};
  if (auto *CBr = dyn_cast<CondBrInst>(T)) {
    if (CBr->getTrueTarget() == CBr->getFalseTarget())
      return {CBr->getTrueTarget()};
    return {CBr->getTrueTarget(), CBr->getFalseTarget()};
  }
  return {};
}
