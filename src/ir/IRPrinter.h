//===- ir/IRPrinter.h - Textual IR dumping ---------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules, functions, and instructions in a readable textual form
/// for debugging, golden tests, and the example programs.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_IRPRINTER_H
#define SLO_IR_IRPRINTER_H

#include <string>

namespace slo {

class Module;
class Function;
class Instruction;
class RecordType;

/// Renders the whole module: record layouts, globals, then functions.
std::string printModule(const Module &M);

/// Renders one function with numbered values.
std::string printFunction(const Function &F);

/// Renders one record type with field offsets ("struct node { ... }").
std::string printRecordLayout(const RecordType &Rec);

} // namespace slo

#endif // SLO_IR_IRPRINTER_H
