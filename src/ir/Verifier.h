//===- ir/Verifier.h - IR well-formedness checking -------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks over modules. Run after the frontend and
/// after every transformation; the property tests rely on it to catch
/// rewrites that leave the IR inconsistent.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_VERIFIER_H
#define SLO_IR_VERIFIER_H

#include <string>
#include <vector>

namespace slo {

class Module;
class Function;
class DiagnosticEngine;

/// Checks \p F and reports each problem as an error diagnostic (code
/// "verifier", function set to the offending function). Returns true when
/// no problems were found.
bool verifyFunction(const Function &F, DiagnosticEngine &Diags);

/// Checks every function of \p M, reporting into \p Diags. Returns true
/// when no problems were found.
bool verifyModule(const Module &M, DiagnosticEngine &Diags);

/// Compatibility shim: appends each problem to \p Errors as
/// "function 'name': message".
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Compatibility shim over the DiagnosticEngine-based verifyModule.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

/// Convenience wrapper that aborts with the first error. Used by tests
/// and the pipeline in assert-style positions.
void verifyModuleOrDie(const Module &M);

} // namespace slo

#endif // SLO_IR_VERIFIER_H
