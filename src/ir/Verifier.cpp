//===- ir/Verifier.cpp - IR well-formedness checking ----------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

#include <map>
#include <set>

using namespace slo;

namespace {

/// Verifier for a single function: terminator discipline, operand typing,
/// def-before-use via dominators, and CFG edge sanity.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, DiagnosticEngine &Diags)
      : F(F), Diags(Diags) {}

  bool run() {
    size_t Before = Diags.count(DiagSeverity::Error);
    checkBlocks();
    if (Diags.count(DiagSeverity::Error) == Before) {
      computeDominators();
      checkDefDominatesUse();
    }
    return Diags.count(DiagSeverity::Error) == Before;
  }

private:
  void error(const std::string &Msg) {
    Diags.report(DiagSeverity::Error, "verifier", Msg).Function = F.getName();
  }

  void checkBlocks() {
    std::set<const BasicBlock *> Owned;
    for (const auto &BB : F.blocks())
      Owned.insert(BB.get());

    for (const auto &BB : F.blocks()) {
      if (BB->empty()) {
        error("block '" + BB->getName() + "' is empty");
        continue;
      }
      if (!BB->getTerminator()) {
        error("block '" + BB->getName() + "' has no terminator");
        continue;
      }
      for (const auto &I : BB->instructions()) {
        if (I->isTerminator() && I.get() != BB->back())
          error("terminator in the middle of block '" + BB->getName() + "'");
        if (I->getParent() != BB.get())
          error("instruction parent link broken in '" + BB->getName() + "'");
        checkInstruction(*I);
      }
      for (BasicBlock *Succ : BB->successors())
        if (!Owned.count(Succ))
          error("block '" + BB->getName() +
                "' branches to a block of another function");
    }
  }

  void checkInstruction(const Instruction &I) {
    for (unsigned Op = 0; Op < I.getNumOperands(); ++Op) {
      const Value *V = I.getOperand(Op);
      if (!V) {
        error("null operand");
        continue;
      }
      if (V->getType()->isVoid())
        error("void value used as operand");
      if (const auto *OpInst = dyn_cast<Instruction>(V)) {
        if (OpInst->getFunction() != &F)
          error("operand defined in another function");
      }
      if (const auto *Arg = dyn_cast<Argument>(V)) {
        if (Arg->getParent() != &F)
          error("argument of another function used as operand");
      }
    }
    checkTypes(I);
  }

  void checkTypes(const Instruction &I) {
    switch (I.getOpcode()) {
    case Instruction::OpLoad: {
      const auto *L = cast<LoadInst>(&I);
      if (!L->getPointer()->getType()->isPointer())
        error("load from non-pointer");
      else if (cast<PointerType>(L->getPointer()->getType())->getPointee() !=
               L->getType())
        error("load type does not match pointee type");
      break;
    }
    case Instruction::OpStore: {
      const auto *S = cast<StoreInst>(&I);
      if (!S->getPointer()->getType()->isPointer())
        error("store to non-pointer");
      else if (cast<PointerType>(S->getPointer()->getType())->getPointee() !=
               S->getStoredValue()->getType())
        error("store value type does not match pointee type");
      break;
    }
    case Instruction::OpFieldAddr: {
      const auto *FA = cast<FieldAddrInst>(&I);
      const Type *BaseTy = FA->getBase()->getType();
      if (!BaseTy->isPointer())
        error("fieldaddr base is not a pointer");
      else {
        const Type *Pointee = cast<PointerType>(BaseTy)->getPointee();
        if (Pointee != FA->getRecord())
          error("fieldaddr base does not point to the accessed record");
        if (FA->getFieldIndex() >= FA->getRecord()->getNumFields())
          error("fieldaddr index out of range");
      }
      break;
    }
    case Instruction::OpCondBr:
      if (!cast<CondBrInst>(&I)->getCondition()->getType()->isInt())
        error("condbr condition is not an integer");
      break;
    case Instruction::OpRet: {
      const auto *R = cast<RetInst>(&I);
      const Type *Expected = F.getReturnType();
      if (R->hasValue()) {
        if (R->getValue()->getType() != Expected)
          error("return value type mismatch");
      } else if (!Expected->isVoid()) {
        error("missing return value in non-void function");
      }
      break;
    }
    case Instruction::OpCall: {
      const auto *C = cast<CallInst>(&I);
      const FunctionType *FT = C->getCallee()->getFunctionType();
      for (unsigned A = 0; A < C->getNumArgs(); ++A)
        if (C->getArg(A)->getType() != FT->getParamType(A))
          error("call argument type mismatch calling '" +
                C->getCallee()->getName() + "'");
      break;
    }
    default:
      break;
    }
  }

  // A small iterative dominator computation (the analysis library has the
  // full-featured one; the verifier stays self-contained so it can be
  // used below the analysis layer).
  void computeDominators() {
    const BasicBlock *Entry = F.getEntry();
    std::vector<const BasicBlock *> Order;
    std::set<const BasicBlock *> Visited;
    // Reverse post-order via iterative DFS.
    std::vector<std::pair<const BasicBlock *, size_t>> Stack;
    Stack.push_back({Entry, 0});
    Visited.insert(Entry);
    std::vector<const BasicBlock *> Post;
    while (!Stack.empty()) {
      auto &[BB, Idx] = Stack.back();
      auto Succs = BB->successors();
      if (Idx < Succs.size()) {
        const BasicBlock *S = Succs[Idx++];
        if (Visited.insert(S).second)
          Stack.push_back({S, 0});
      } else {
        Post.push_back(BB);
        Stack.pop_back();
      }
    }
    Order.assign(Post.rbegin(), Post.rend());
    for (size_t I = 0; I < Order.size(); ++I)
      RpoIndex[Order[I]] = I;
    for (const auto &BB : F.blocks()) {
      if (!Visited.count(BB.get()))
        Unreachable.insert(BB.get());
      for (const BasicBlock *S : BB->successors())
        Preds[S].push_back(BB.get());
    }

    Idom[Entry] = Entry;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const BasicBlock *BB : Order) {
        if (BB == Entry)
          continue;
        const BasicBlock *NewIdom = nullptr;
        for (const BasicBlock *P : Preds[BB]) {
          if (!Idom.count(P))
            continue;
          NewIdom = NewIdom ? intersect(P, NewIdom) : P;
        }
        if (NewIdom && Idom[BB] != NewIdom) {
          Idom[BB] = NewIdom;
          Changed = true;
        }
      }
    }
  }

  const BasicBlock *intersect(const BasicBlock *A, const BasicBlock *B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  }

  bool dominates(const BasicBlock *A, const BasicBlock *B) {
    const BasicBlock *Entry = F.getEntry();
    while (true) {
      if (B == A)
        return true;
      if (B == Entry)
        return false;
      auto It = Idom.find(B);
      if (It == Idom.end())
        return false;
      B = It->second;
    }
  }

  void checkDefDominatesUse() {
    // Map instruction -> position within its block.
    std::map<const Instruction *, unsigned> Position;
    for (const auto &BB : F.blocks()) {
      unsigned Pos = 0;
      for (const auto &I : BB->instructions())
        Position[I.get()] = Pos++;
    }
    for (const auto &BB : F.blocks()) {
      if (Unreachable.count(BB.get()))
        continue;
      for (const auto &I : BB->instructions()) {
        for (unsigned Op = 0; Op < I->getNumOperands(); ++Op) {
          const auto *Def = dyn_cast<Instruction>(I->getOperand(Op));
          if (!Def)
            continue;
          if (Unreachable.count(Def->getParent()))
            continue;
          bool Ok = Def->getParent() == BB.get()
                        ? Position[Def] < Position[I.get()]
                        : dominates(Def->getParent(), BB.get());
          if (!Ok)
            error("use of value does not follow its definition (block '" +
                  BB->getName() + "')");
        }
      }
    }
  }

  const Function &F;
  DiagnosticEngine &Diags;
  std::map<const BasicBlock *, size_t> RpoIndex;
  std::map<const BasicBlock *, std::vector<const BasicBlock *>> Preds;
  std::map<const BasicBlock *, const BasicBlock *> Idom;
  std::set<const BasicBlock *> Unreachable;
};

} // namespace

bool slo::verifyFunction(const Function &F, DiagnosticEngine &Diags) {
  if (F.isDeclaration())
    return true;
  return FunctionVerifier(F, Diags).run();
}

bool slo::verifyModule(const Module &M, DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const auto &F : M.functions())
    Ok &= verifyFunction(*F, Diags);
  return Ok;
}

namespace {

/// Renders verifier diagnostics in the legacy string format the shim
/// callers (tests, scripts) were written against.
void appendLegacyStrings(const DiagnosticEngine &Diags, size_t From,
                         std::vector<std::string> &Errors) {
  const std::vector<Diagnostic> &All = Diags.all();
  for (size_t I = From; I < All.size(); ++I)
    Errors.push_back("function '" + All[I].Function + "': " + All[I].Message);
}

} // namespace

bool slo::verifyFunction(const Function &F, std::vector<std::string> &Errors) {
  DiagnosticEngine Diags;
  bool Ok = verifyFunction(F, Diags);
  appendLegacyStrings(Diags, 0, Errors);
  return Ok;
}

bool slo::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  DiagnosticEngine Diags;
  bool Ok = verifyModule(M, Diags);
  appendLegacyStrings(Diags, 0, Errors);
  return Ok;
}

void slo::verifyModuleOrDie(const Module &M) {
  std::vector<std::string> Errors;
  if (!verifyModule(M, Errors))
    reportFatalError("module verification failed: " + Errors.front());
}
