//===- ir/Linker.h - Whole-program module linking --------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merges the modules of a program's translation units into one module,
/// the stand-in for the paper's -ipo link step where IELF files are
/// handed to the inter-procedural optimizer. Record types are already
/// unified by name through the shared TypeContext; the linker resolves
/// function declarations to definitions and merges globals.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_LINKER_H
#define SLO_IR_LINKER_H

#include <memory>
#include <string>
#include <vector>

namespace slo {

class IRContext;
class Module;

/// Links \p TUs (all sharing one IRContext) into a single module named
/// \p Name. Aborts on duplicate definitions or signature mismatches
/// (these indicate malformed workload programs, not user-recoverable
/// conditions).
std::unique_ptr<Module> linkModules(IRContext &Ctx,
                                    std::vector<std::unique_ptr<Module>> TUs,
                                    const std::string &Name);

} // namespace slo

#endif // SLO_IR_LINKER_H
