//===- ir/Value.h - Values, constants, and the IR context -----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value base class (with user tracking, which the legality analysis
/// and the transformations rely on heavily), the constant classes, and the
/// IRContext that owns types and uniques constants program-wide.
///
/// ConstantInt may carry a "sizeof" attribution: the paper points out that
/// front ends folding sizeof() into plain integers make layout changes
/// unsafe, and proposes attributed constants as the fix. We implement that
/// proposal: a constant tagged with a record type is rewritten by the
/// transformations when that record's layout changes.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_VALUE_H
#define SLO_IR_VALUE_H

#include "ir/Type.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace slo {

class Instruction;

/// Base class of everything that can appear as an instruction operand.
class Value {
public:
  enum ValueKind {
    VK_ConstantInt,
    VK_ConstantFloat,
    VK_ConstantNull,
    VK_GlobalVariable,
    VK_Argument,
    VK_Function,
    VK_Instruction,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getKind() const { return Kind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Instructions currently using this value as an operand. An instruction
  /// using the value in N operand slots appears N times.
  const std::vector<Instruction *> &users() const { return Users; }
  bool hasUsers() const { return !Users.empty(); }

  /// Rewrites every operand slot that references this value to reference
  /// \p New instead.
  void replaceAllUsesWith(Value *New);

  /// Changes the type of this value. Only the layout transformations use
  /// this, to retype values from an old record layout to a new one.
  void mutateType(Type *NewTy) { Ty = NewTy; }

protected:
  Value(ValueKind Kind, Type *Ty, std::string Name)
      : Kind(Kind), Ty(Ty), Name(std::move(Name)) {}

private:
  friend class Instruction;
  void addUser(Instruction *I) { Users.push_back(I); }
  void removeUser(Instruction *I);

  ValueKind Kind;
  Type *Ty;
  std::string Name;
  std::vector<Instruction *> Users;
};

/// Integer constant, optionally attributed as sizeof(record).
class ConstantInt : public Value {
public:
  int64_t getValue() const { return Val; }

  /// The record this constant is the size of, or nullptr if this is a
  /// plain integer constant.
  RecordType *getSizeOfRecord() const { return SizeOfRec; }
  bool isSizeOf() const { return SizeOfRec != nullptr; }

  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantInt;
  }

private:
  friend class IRContext;
  ConstantInt(IntType *Ty, int64_t Val, RecordType *SizeOfRec)
      : Value(VK_ConstantInt, Ty, ""), Val(Val), SizeOfRec(SizeOfRec) {}
  int64_t Val;
  RecordType *SizeOfRec;
};

/// Floating point constant.
class ConstantFloat : public Value {
public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantFloat;
  }

private:
  friend class IRContext;
  ConstantFloat(FloatType *Ty, double Val)
      : Value(VK_ConstantFloat, Ty, ""), Val(Val) {}
  double Val;
};

/// The null pointer constant of a given pointer type.
class ConstantNull : public Value {
public:
  static bool classof(const Value *V) {
    return V->getKind() == VK_ConstantNull;
  }

private:
  friend class IRContext;
  explicit ConstantNull(PointerType *Ty) : Value(VK_ConstantNull, Ty, "") {}
};

/// Returns true if \p V is any constant kind.
bool isConstant(const Value *V);

/// Owns the type system and uniques constants for a whole program.
///
/// One IRContext is shared by all modules of a program (the translation
/// units a MiniC frontend produces), so constants and types stay valid
/// across linking.
class IRContext {
public:
  IRContext() = default;
  IRContext(const IRContext &) = delete;
  IRContext &operator=(const IRContext &) = delete;

  TypeContext &getTypes() { return Types; }

  /// Returns the uniqued integer constant \p Val of type \p Ty. When
  /// \p SizeOfRec is non-null the constant is attributed as
  /// sizeof(SizeOfRec); attributed and plain constants of equal value are
  /// distinct values.
  ConstantInt *getConstantInt(IntType *Ty, int64_t Val,
                              RecordType *SizeOfRec = nullptr);
  /// Shorthand for an i64 constant.
  ConstantInt *getInt64(int64_t Val) {
    return getConstantInt(Types.getI64(), Val);
  }
  /// Shorthand for an i1 (boolean) constant.
  ConstantInt *getBool(bool Val) {
    return getConstantInt(Types.getI1(), Val ? 1 : 0);
  }
  /// Returns the attributed constant sizeof(\p Rec) as an i64.
  ConstantInt *getSizeOf(RecordType *Rec) {
    return getConstantInt(Types.getI64(),
                          static_cast<int64_t>(Rec->getSize()), Rec);
  }

  ConstantFloat *getConstantFloat(FloatType *Ty, double Val);
  ConstantNull *getNullPtr(PointerType *Ty);

private:
  TypeContext Types;
  std::map<std::tuple<IntType *, int64_t, RecordType *>,
           std::unique_ptr<ConstantInt>>
      IntConstants;
  std::map<std::pair<FloatType *, uint64_t>, std::unique_ptr<ConstantFloat>>
      FloatConstants;
  std::map<PointerType *, std::unique_ptr<ConstantNull>> NullConstants;
};

} // namespace slo

#endif // SLO_IR_VALUE_H
