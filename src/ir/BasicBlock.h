//===- ir/BasicBlock.h - Basic blocks --------------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks own their instructions and expose the CFG through their
/// terminators. Successor edges live in the terminator; predecessor lists
/// are computed by the analyses that need them.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_BASICBLOCK_H
#define SLO_IR_BASICBLOCK_H

#include "ir/Instructions.h"

#include <memory>
#include <string>
#include <vector>

namespace slo {

class Function;

/// A straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;
  ~BasicBlock();

  const std::string &getName() const { return Name; }
  Function *getParent() const { return Parent; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The block's terminator, or nullptr while the block is being built.
  Instruction *getTerminator() const {
    return (!Insts.empty() && Insts.back()->isTerminator()) ? back()
                                                            : nullptr;
  }

  /// Appends \p I; returns the raw pointer for convenience.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I immediately before \p Pos, which must be in this block.
  Instruction *insertBefore(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Removes and destroys \p I, which must be in this block and must have
  /// no remaining users.
  void erase(Instruction *I);

  /// Removes \p I from this block without destroying it; ownership passes
  /// to the caller.
  std::unique_ptr<Instruction> remove(Instruction *I);

  /// The successor blocks, taken from the terminator (empty for ret).
  /// Duplicate targets (condbr with identical arms) are reported once.
  std::vector<BasicBlock *> successors() const;

  /// Iteration over the owned instructions in order.
  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

  /// Position of this block within its function; assigned by Function.
  unsigned getNumber() const { return Number; }

private:
  friend class Function;
  std::string Name;
  Function *Parent = nullptr;
  unsigned Number = 0;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

} // namespace slo

#endif // SLO_IR_BASICBLOCK_H
