//===- ir/Value.cpp - Values, constants, and the IR context ---------------===//

#include "ir/Value.h"

#include "ir/Instructions.h"
#include "support/Error.h"

#include <cstring>

using namespace slo;

Value::~Value() {
  // A value must not be destroyed while instructions still reference it;
  // transformations must RAUW or erase users first.
  assert(Users.empty() && "value destroyed while still in use");
}

void Value::removeUser(Instruction *I) {
  for (size_t J = 0; J < Users.size(); ++J) {
    if (Users[J] == I) {
      Users[J] = Users.back();
      Users.pop_back();
      return;
    }
  }
  SLO_UNREACHABLE("removeUser: instruction was not a user");
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replacing a value with itself");
  // Each setOperand mutates the user list, so restart from a snapshot.
  while (!Users.empty()) {
    Instruction *U = Users.back();
    for (unsigned I = 0, E = U->getNumOperands(); I != E; ++I) {
      if (U->getOperand(I) == this) {
        U->setOperand(I, New);
        break;
      }
    }
  }
}

bool slo::isConstant(const Value *V) {
  switch (V->getKind()) {
  case Value::VK_ConstantInt:
  case Value::VK_ConstantFloat:
  case Value::VK_ConstantNull:
    return true;
  default:
    return false;
  }
}

ConstantInt *IRContext::getConstantInt(IntType *Ty, int64_t Val,
                                       RecordType *SizeOfRec) {
  auto Key = std::make_tuple(Ty, Val, SizeOfRec);
  auto &Slot = IntConstants[Key];
  if (!Slot)
    Slot.reset(new ConstantInt(Ty, Val, SizeOfRec));
  return Slot.get();
}

ConstantFloat *IRContext::getConstantFloat(FloatType *Ty, double Val) {
  // Key on the bit pattern so that -0.0 and 0.0 stay distinct and NaNs
  // do not break map ordering.
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Val), "double must be 64-bit");
  std::memcpy(&Bits, &Val, sizeof(Bits));
  auto &Slot = FloatConstants[{Ty, Bits}];
  if (!Slot)
    Slot.reset(new ConstantFloat(Ty, Val));
  return Slot.get();
}

ConstantNull *IRContext::getNullPtr(PointerType *Ty) {
  auto &Slot = NullConstants[Ty];
  if (!Slot)
    Slot.reset(new ConstantNull(Ty));
  return Slot.get();
}
