//===- ir/Function.cpp - Functions and arguments --------------------------===//

#include "ir/Function.h"

#include "support/Error.h"

using namespace slo;

Function::Function(TypeContext &Types, FunctionType *FnTy, std::string Name,
                   bool IsLib)
    : Value(VK_Function, Types.getPointerType(FnTy), std::move(Name)),
      FnTy(FnTy), IsLib(IsLib) {
  for (unsigned I = 0; I < FnTy->getNumParams(); ++I)
    Args.emplace_back(new Argument(FnTy->getParamType(I),
                                   "arg" + std::to_string(I), I, this));
}

Function::~Function() {
  // Drop all operand references up front so that cross-block references
  // (and references to this function's arguments) are gone before any
  // value is destroyed.
  for (auto &BB : Blocks)
    for (auto &I : BB->instructions())
      I->dropAllReferences();
}

BasicBlock *Function::createBlock(const std::string &BlockName) {
  Blocks.emplace_back(new BasicBlock(BlockName));
  BasicBlock *BB = Blocks.back().get();
  BB->Parent = this;
  BB->Number = static_cast<unsigned>(Blocks.size() - 1);
  return BB;
}

BasicBlock *Function::insertBlockAfter(BasicBlock *Pos,
                                       std::unique_ptr<BasicBlock> BB) {
  assert(BB && "inserting a null block");
  BB->Parent = this;
  for (auto It = Blocks.begin(); It != Blocks.end(); ++It) {
    if (It->get() == Pos) {
      BasicBlock *Out = Blocks.insert(std::next(It), std::move(BB))->get();
      renumberBlocks();
      return Out;
    }
  }
  SLO_UNREACHABLE("insertBlockAfter: position not in this function");
}

void Function::renumberBlocks() {
  for (unsigned I = 0; I < Blocks.size(); ++I)
    Blocks[I]->Number = I;
}

void Function::retype(TypeContext &Types, FunctionType *NewTy) {
  assert(NewTy->getNumParams() == FnTy->getNumParams() &&
         "retype must preserve arity");
  FnTy = NewTy;
  mutateType(Types.getPointerType(NewTy));
}
