//===- ir/IRPrinter.cpp - Textual IR dumping ------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Module.h"
#include "support/Casting.h"
#include "support/Format.h"

#include <map>
#include <sstream>

using namespace slo;

namespace {

/// Assigns stable textual names (%name or %N) to the values of one
/// function while printing it.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) {}

  std::string print() {
    std::ostringstream OS;
    OS << (F.isDeclaration() ? "declare " : "define ")
       << F.getReturnType()->getName() << " @" << F.getName() << "(";
    for (unsigned I = 0; I < F.getNumArgs(); ++I) {
      if (I)
        OS << ", ";
      Argument *A = F.getArg(I);
      OS << A->getType()->getName() << " " << ref(A);
    }
    OS << ")";
    if (F.isLibFunction())
      OS << " lib";
    if (F.isDeclaration()) {
      OS << "\n";
      return OS.str();
    }
    OS << " {\n";
    for (const auto &BB : F.blocks()) {
      OS << blockName(BB.get()) << ":\n";
      for (const auto &I : BB->instructions())
        OS << "  " << printInst(*I) << "\n";
    }
    OS << "}\n";
    return OS.str();
  }

private:
  std::string blockName(const BasicBlock *BB) {
    return BB->getName() + "." + std::to_string(BB->getNumber());
  }

  std::string ref(const Value *V) {
    switch (V->getKind()) {
    case Value::VK_ConstantInt: {
      const auto *C = cast<ConstantInt>(V);
      if (C->isSizeOf())
        return "sizeof(" + C->getSizeOfRecord()->getRecordName() + ")";
      return std::to_string(C->getValue());
    }
    case Value::VK_ConstantFloat:
      return formatString("%g", cast<ConstantFloat>(V)->getValue());
    case Value::VK_ConstantNull:
      return "null";
    case Value::VK_GlobalVariable:
      return "@" + V->getName();
    case Value::VK_Function:
      return "@" + V->getName();
    case Value::VK_Argument:
    case Value::VK_Instruction: {
      auto It = Names.find(V);
      if (It != Names.end())
        return It->second;
      std::string N = V->getName().empty()
                          ? "%" + std::to_string(NextId++)
                          : "%" + V->getName();
      // Disambiguate duplicate source names.
      if (UsedNames.count(N))
        N += "." + std::to_string(NextId++);
      UsedNames.insert({N, V});
      Names[V] = N;
      return N;
    }
    }
    return "<?>";
  }

  std::string printInst(const Instruction &I) {
    std::ostringstream OS;
    if (!I.getType()->isVoid())
      OS << ref(&I) << " = ";
    OS << Instruction::getOpcodeName(I.getOpcode());
    if (const auto *FA = dyn_cast<FieldAddrInst>(&I)) {
      OS << " " << ref(FA->getBase()) << ", "
         << FA->getRecord()->getRecordName() << "::"
         << FA->getField().Name;
      return OS.str();
    }
    if (const auto *C = dyn_cast<CallInst>(&I)) {
      OS << " @" << C->getCallee()->getName() << "(";
      for (unsigned A = 0; A < C->getNumArgs(); ++A) {
        if (A)
          OS << ", ";
        OS << ref(C->getArg(A));
      }
      OS << ")";
      return OS.str();
    }
    if (const auto *B = dyn_cast<BrInst>(&I)) {
      OS << " " << blockName(B->getTarget());
      return OS.str();
    }
    if (const auto *CB = dyn_cast<CondBrInst>(&I)) {
      OS << " " << ref(CB->getCondition()) << ", "
         << blockName(CB->getTrueTarget()) << ", "
         << blockName(CB->getFalseTarget());
      return OS.str();
    }
    if (const auto *A = dyn_cast<AllocaInst>(&I)) {
      OS << " " << A->getAllocatedType()->getName();
      return OS.str();
    }
    if (const auto *C = dyn_cast<CastInst>(&I)) {
      OS << " " << ref(C->getCastOperand()) << " to "
         << C->getType()->getName();
      return OS.str();
    }
    for (unsigned Op = 0; Op < I.getNumOperands(); ++Op) {
      OS << (Op ? ", " : " ") << ref(I.getOperand(Op));
    }
    return OS.str();
  }

  const Function &F;
  std::map<const Value *, std::string> Names;
  std::map<std::string, const Value *> UsedNames;
  unsigned NextId = 0;
};

} // namespace

std::string slo::printRecordLayout(const RecordType &Rec) {
  std::ostringstream OS;
  OS << "struct " << Rec.getRecordName() << " { // size "
     << Rec.getSize() << ", align " << Rec.getAlign() << "\n";
  for (const Field &F : Rec.fields())
    OS << formatString("  [%2u] off %3llu: %s %s\n", F.Index,
                       static_cast<unsigned long long>(F.Offset),
                       F.Ty->getName().c_str(), F.Name.c_str());
  OS << "}\n";
  return OS.str();
}

std::string slo::printFunction(const Function &F) {
  return FunctionPrinter(F).print();
}

std::string slo::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "; module " << M.getName() << "\n\n";
  for (RecordType *R : M.getTypes().records())
    if (!R->isOpaque())
      OS << printRecordLayout(*R);
  OS << "\n";
  for (const auto &G : M.globals()) {
    OS << "@" << G->getName() << " : " << G->getValueType()->getName();
    if (G->hasIntInit())
      OS << " = " << G->getIntInit();
    OS << "\n";
  }
  OS << "\n";
  for (const auto &F : M.functions())
    OS << printFunction(*F) << "\n";
  return OS.str();
}
