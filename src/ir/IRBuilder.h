//===- ir/IRBuilder.h - Instruction creation convenience -------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder that appends instructions to a current insertion block (or
/// before a given instruction). Used by the frontend IR generator, the
/// transformations, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_IRBUILDER_H
#define SLO_IR_IRBUILDER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace slo {

/// Appends newly created instructions at an insertion point.
class IRBuilder {
public:
  explicit IRBuilder(IRContext &Ctx) : Ctx(Ctx) {}

  IRContext &getContext() const { return Ctx; }
  TypeContext &getTypes() const { return Ctx.getTypes(); }

  /// Sets the insertion point to the end of \p BB.
  void setInsertPoint(BasicBlock *BB) {
    InsertBlock = BB;
    InsertBefore = nullptr;
  }

  /// Sets the insertion point immediately before \p I.
  void setInsertBefore(Instruction *I) {
    InsertBlock = I->getParent();
    InsertBefore = I;
  }

  BasicBlock *getInsertBlock() const { return InsertBlock; }

  // Memory.
  AllocaInst *createAlloca(Type *Ty, const std::string &Name) {
    return insert(new AllocaInst(getTypes(), Ty, Name));
  }
  LoadInst *createLoad(Value *Ptr, const std::string &Name = "") {
    return insert(new LoadInst(Ptr, Name));
  }
  StoreInst *createStore(Value *Val, Value *Ptr) {
    return insert(new StoreInst(getTypes(), Val, Ptr));
  }
  FieldAddrInst *createFieldAddr(Value *Base, RecordType *Rec,
                                 unsigned FieldIndex,
                                 const std::string &Name = "") {
    return insert(new FieldAddrInst(getTypes(), Base, Rec, FieldIndex, Name));
  }
  IndexAddrInst *createIndexAddr(Value *Base, Value *Index,
                                 const std::string &Name = "") {
    return insert(new IndexAddrInst(Base, Index, Name));
  }

  // Arithmetic.
  BinaryInst *createBinary(Instruction::Opcode Op, Value *LHS, Value *RHS,
                           const std::string &Name = "") {
    return insert(new BinaryInst(Op, LHS, RHS, Name));
  }
  CmpInst *createCmp(Instruction::Opcode Op, Value *LHS, Value *RHS,
                     const std::string &Name = "") {
    return insert(new CmpInst(getTypes(), Op, LHS, RHS, Name));
  }
  CastInst *createCast(Instruction::Opcode Op, Value *V, Type *DestTy,
                       const std::string &Name = "") {
    return insert(new CastInst(Op, V, DestTy, Name));
  }

  // Calls and control flow.
  CallInst *createCall(Function *Callee, const std::vector<Value *> &Args,
                       const std::string &Name = "") {
    return insert(new CallInst(Callee, Args, Name));
  }
  IndirectCallInst *createIndirectCall(Value *CalleePtr,
                                       const std::vector<Value *> &Args,
                                       const std::string &Name = "") {
    return insert(new IndirectCallInst(CalleePtr, Args, Name));
  }
  RetInst *createRet(Value *V = nullptr) {
    return insert(new RetInst(getTypes(), V));
  }
  BrInst *createBr(BasicBlock *Target) {
    return insert(new BrInst(getTypes(), Target));
  }
  CondBrInst *createCondBr(Value *Cond, BasicBlock *TrueBB,
                           BasicBlock *FalseBB) {
    return insert(new CondBrInst(getTypes(), Cond, TrueBB, FalseBB));
  }

  // Heap intrinsics.
  MallocInst *createMalloc(Value *SizeBytes, const std::string &Name = "") {
    return insert(new MallocInst(getTypes(), SizeBytes, Name));
  }
  CallocInst *createCalloc(Value *Count, Value *ElemSize,
                           const std::string &Name = "") {
    return insert(new CallocInst(getTypes(), Count, ElemSize, Name));
  }
  ReallocInst *createRealloc(Value *Ptr, Value *SizeBytes,
                             const std::string &Name = "") {
    return insert(new ReallocInst(getTypes(), Ptr, SizeBytes, Name));
  }
  FreeInst *createFree(Value *Ptr) {
    return insert(new FreeInst(getTypes(), Ptr));
  }
  MemsetInst *createMemset(Value *Ptr, Value *Byte, Value *SizeBytes) {
    return insert(new MemsetInst(getTypes(), Ptr, Byte, SizeBytes));
  }
  MemcpyInst *createMemcpy(Value *Dst, Value *Src, Value *SizeBytes) {
    return insert(new MemcpyInst(getTypes(), Dst, Src, SizeBytes));
  }

  // Constant shorthands.
  ConstantInt *getInt64(int64_t V) { return Ctx.getInt64(V); }
  ConstantInt *getInt32(int32_t V) {
    return Ctx.getConstantInt(getTypes().getI32(), V);
  }
  ConstantInt *getBool(bool V) { return Ctx.getBool(V); }
  ConstantFloat *getF64(double V) {
    return Ctx.getConstantFloat(getTypes().getF64(), V);
  }
  ConstantInt *getSizeOf(RecordType *Rec) { return Ctx.getSizeOf(Rec); }

private:
  template <typename InstT> InstT *insert(InstT *I) {
    assert(InsertBlock && "no insertion point set");
    std::unique_ptr<Instruction> Owned(I);
    if (InsertBefore)
      InsertBlock->insertBefore(InsertBefore, std::move(Owned));
    else
      InsertBlock->append(std::move(Owned));
    return I;
  }

  IRContext &Ctx;
  BasicBlock *InsertBlock = nullptr;
  Instruction *InsertBefore = nullptr;
};

} // namespace slo

#endif // SLO_IR_IRBUILDER_H
