//===- ir/Linker.cpp - Whole-program module linking -----------------------===//

#include "ir/Linker.h"

#include "ir/Module.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <map>

using namespace slo;

std::unique_ptr<Module>
slo::linkModules(IRContext &Ctx, std::vector<std::unique_ptr<Module>> TUs,
                 const std::string &Name) {
  auto Out = std::make_unique<Module>(Ctx, Name);

  // Maps a replaced declaration to the surviving function/global.
  std::map<Function *, Function *> FnReplacement;
  std::map<GlobalVariable *, GlobalVariable *> GlobalReplacement;
  // Keep replaced declarations alive until all references are patched.
  std::vector<std::unique_ptr<Function>> DeadFns;
  std::vector<std::unique_ptr<GlobalVariable>> DeadGlobals;

  for (auto &TU : TUs) {
    for (auto &F : TU->takeFunctions()) {
      Function *Existing = Out->lookupFunction(F->getName());
      if (!Existing) {
        Out->adoptFunction(std::move(F));
        continue;
      }
      if (Existing->getFunctionType() != F->getFunctionType())
        reportFatalError("linker: signature mismatch for function '" +
                         F->getName() + "'");
      if (!Existing->isDeclaration() && !F->isDeclaration())
        reportFatalError("linker: duplicate definition of function '" +
                         F->getName() + "'");
      if (Existing->isDeclaration() && !F->isDeclaration()) {
        // The new definition wins; retire the old declaration but keep it
        // alive until its remaining references are patched.
        // Propagate the library marking conservatively: a function is a
        // library function only if every view of it says so.
        F->setLibFunction(Existing->isLibFunction() && F->isLibFunction());
        Function *NewF = Out->adoptFunction(std::move(F));
        FnReplacement[Existing] = NewF;
        for (auto &[From, To] : FnReplacement)
          if (To == Existing)
            To = NewF;
        DeadFns.push_back(Out->releaseFunction(Existing));
      } else {
        // Existing definition (or both declarations): drop the new one.
        Existing->setLibFunction(Existing->isLibFunction() &&
                                 F->isLibFunction());
        FnReplacement[F.get()] = Existing;
        DeadFns.push_back(std::move(F));
      }
    }
    for (auto &G : TU->takeGlobals()) {
      GlobalVariable *Existing = Out->lookupGlobal(G->getName());
      if (!Existing) {
        Out->adoptGlobal(std::move(G));
        continue;
      }
      if (Existing->getValueType() != G->getValueType())
        reportFatalError("linker: type mismatch for global '" + G->getName() +
                         "'");
      GlobalReplacement[G.get()] = Existing;
      DeadGlobals.push_back(std::move(G));
    }
  }

  // Resolve any remaining declaration entries in the replacement map to
  // their final definitions (a declaration may have been replaced before
  // the definition arrived).
  auto Resolve = [&](Function *F) {
    while (FnReplacement.count(F))
      F = FnReplacement[F];
    return F;
  };

  // Patch direct-call callee links and operand references.
  for (const auto &F : Out->functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        if (auto *C = dyn_cast<CallInst>(I.get())) {
          Function *Target = Resolve(C->getCallee());
          if (Target != C->getCallee())
            C->setCallee(Target);
        }
      }
    }
  }
  for (auto &[From, To] : FnReplacement)
    From->replaceAllUsesWith(Resolve(To));
  for (auto &[From, To] : GlobalReplacement)
    From->replaceAllUsesWith(To);

  // Dead declarations have no users now; destroying them is safe.
  DeadFns.clear();
  DeadGlobals.clear();
  TUs.clear();
  return Out;
}
