//===- ir/Type.h - IR type system ------------------------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system. Record types carry an explicit field layout (name,
/// type, byte offset) because the whole point of the library is to create
/// new record layouts and reason about the old ones. All types are owned
/// and uniqued by a TypeContext.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_IR_TYPE_H
#define SLO_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace slo {

class TypeContext;
class RecordType;

/// Base class of all IR types.
///
/// Types are immutable once created (record types become immutable once
/// their body is set) and uniqued by the owning TypeContext, so pointer
/// equality is type equality.
class Type {
public:
  enum TypeKind {
    TK_Void,
    TK_Int,
    TK_Float,
    TK_Pointer,
    TK_Array,
    TK_Record,
    TK_Function,
  };

  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;
  virtual ~Type() = default;

  TypeKind getKind() const { return Kind; }

  bool isVoid() const { return Kind == TK_Void; }
  bool isInt() const { return Kind == TK_Int; }
  bool isFloat() const { return Kind == TK_Float; }
  bool isPointer() const { return Kind == TK_Pointer; }
  bool isArray() const { return Kind == TK_Array; }
  bool isRecord() const { return Kind == TK_Record; }
  bool isFunction() const { return Kind == TK_Function; }

  /// Returns the size of a value of this type in bytes. Void and function
  /// types have no size; asking for one is a programming error.
  virtual uint64_t getSize() const = 0;

  /// Returns the natural alignment of this type in bytes.
  virtual unsigned getAlign() const = 0;

  /// Returns a human-readable spelling of the type ("i32", "node*", ...).
  virtual std::string getName() const = 0;

protected:
  explicit Type(TypeKind K) : Kind(K) {}

private:
  TypeKind Kind;
};

/// The void type: function return type only.
class VoidType : public Type {
public:
  uint64_t getSize() const override;
  unsigned getAlign() const override;
  std::string getName() const override { return "void"; }

  static bool classof(const Type *T) { return T->getKind() == TK_Void; }

private:
  friend class TypeContext;
  VoidType() : Type(TK_Void) {}
};

/// Signed two's-complement integer type of 1, 8, 16, 32 or 64 bits.
/// The 1-bit form is the boolean result of comparisons; it occupies one
/// byte in memory.
class IntType : public Type {
public:
  unsigned getBits() const { return Bits; }
  uint64_t getSize() const override { return Bits <= 8 ? 1 : Bits / 8; }
  unsigned getAlign() const override {
    return static_cast<unsigned>(getSize());
  }
  std::string getName() const override { return "i" + std::to_string(Bits); }

  static bool classof(const Type *T) { return T->getKind() == TK_Int; }

private:
  friend class TypeContext;
  explicit IntType(unsigned Bits) : Type(TK_Int), Bits(Bits) {
    assert((Bits == 1 || Bits == 8 || Bits == 16 || Bits == 32 ||
            Bits == 64) &&
           "unsupported integer width");
  }
  unsigned Bits;
};

/// IEEE floating point type of 32 or 64 bits.
class FloatType : public Type {
public:
  unsigned getBits() const { return Bits; }
  uint64_t getSize() const override { return Bits / 8; }
  unsigned getAlign() const override { return Bits / 8; }
  std::string getName() const override { return "f" + std::to_string(Bits); }

  static bool classof(const Type *T) { return T->getKind() == TK_Float; }

private:
  friend class TypeContext;
  explicit FloatType(unsigned Bits) : Type(TK_Float), Bits(Bits) {
    assert((Bits == 32 || Bits == 64) && "unsupported float width");
  }
  unsigned Bits;
};

/// Pointer to another type. All pointers are 8 bytes (the target model is
/// a 64-bit Itanium-like machine).
class PointerType : public Type {
public:
  Type *getPointee() const { return Pointee; }
  uint64_t getSize() const override { return 8; }
  unsigned getAlign() const override { return 8; }
  std::string getName() const override { return Pointee->getName() + "*"; }

  static bool classof(const Type *T) { return T->getKind() == TK_Pointer; }

private:
  friend class TypeContext;
  explicit PointerType(Type *Pointee) : Type(TK_Pointer), Pointee(Pointee) {}
  Type *Pointee;
};

/// Fixed-size array type, used for global and local array variables.
/// Dynamically sized heap arrays are plain pointers.
class ArrayType : public Type {
public:
  Type *getElementType() const { return Elem; }
  uint64_t getNumElements() const { return NumElements; }
  uint64_t getSize() const override { return Elem->getSize() * NumElements; }
  unsigned getAlign() const override { return Elem->getAlign(); }
  std::string getName() const override {
    return Elem->getName() + "[" + std::to_string(NumElements) + "]";
  }

  static bool classof(const Type *T) { return T->getKind() == TK_Array; }

private:
  friend class TypeContext;
  ArrayType(Type *Elem, uint64_t NumElements)
      : Type(TK_Array), Elem(Elem), NumElements(NumElements) {}
  Type *Elem;
  uint64_t NumElements;
};

/// Function signature type.
class FunctionType : public Type {
public:
  Type *getReturnType() const { return Ret; }
  const std::vector<Type *> &getParamTypes() const { return Params; }
  unsigned getNumParams() const {
    return static_cast<unsigned>(Params.size());
  }
  Type *getParamType(unsigned I) const { return Params[I]; }

  uint64_t getSize() const override;
  unsigned getAlign() const override;
  std::string getName() const override;

  static bool classof(const Type *T) { return T->getKind() == TK_Function; }

private:
  friend class TypeContext;
  FunctionType(Type *Ret, std::vector<Type *> Params)
      : Type(TK_Function), Ret(Ret), Params(std::move(Params)) {}
  Type *Ret;
  std::vector<Type *> Params;
};

/// A single field of a record type.
struct Field {
  std::string Name;
  Type *Ty = nullptr;
  /// Byte offset within the record, assigned by RecordType::setFields.
  uint64_t Offset = 0;
  /// Position in declaration order, assigned by RecordType::setFields.
  unsigned Index = 0;
};

/// A named record (struct) type with an explicit field layout.
///
/// Records are created opaque (no body) and completed exactly once via
/// setFields, which computes offsets following the usual C layout rules
/// (each field aligned to its natural alignment, total size rounded up to
/// the max field alignment). Transformations never mutate an existing
/// record; they build new records and rewrite accesses.
class RecordType : public Type {
public:
  const std::string &getRecordName() const { return Name; }

  bool isOpaque() const { return !LayoutDone; }

  /// Completes the record with \p NewFields in declaration order, assigning
  /// offsets and indices. Must be called exactly once.
  void setFields(std::vector<Field> NewFields);

  unsigned getNumFields() const {
    assert(LayoutDone && "record has no body");
    return static_cast<unsigned>(Fields.size());
  }
  const Field &getField(unsigned I) const {
    assert(LayoutDone && I < Fields.size() && "field index out of range");
    return Fields[I];
  }
  const std::vector<Field> &fields() const {
    assert(LayoutDone && "record has no body");
    return Fields;
  }

  /// Returns the field named \p FieldName, or nullptr if there is none.
  const Field *findField(const std::string &FieldName) const;

  uint64_t getSize() const override {
    assert(LayoutDone && "record has no body");
    return Size;
  }
  unsigned getAlign() const override {
    assert(LayoutDone && "record has no body");
    return Align;
  }
  std::string getName() const override { return Name; }

  static bool classof(const Type *T) { return T->getKind() == TK_Record; }

private:
  friend class TypeContext;
  explicit RecordType(std::string Name)
      : Type(TK_Record), Name(std::move(Name)) {}

  std::string Name;
  std::vector<Field> Fields;
  uint64_t Size = 0;
  unsigned Align = 1;
  bool LayoutDone = false;
};

/// Owns and uniques all types of a program.
///
/// A single TypeContext is shared by every module of a program; record
/// types are unified by name across translation units, which is the
/// repository's stand-in for the paper's type-unified IPA symbol table.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  VoidType *getVoidType() { return VoidTy.get(); }
  IntType *getIntType(unsigned Bits);
  IntType *getI1() { return getIntType(1); }
  IntType *getI8() { return getIntType(8); }
  IntType *getI16() { return getIntType(16); }
  IntType *getI32() { return getIntType(32); }
  IntType *getI64() { return getIntType(64); }
  FloatType *getFloatType(unsigned Bits);
  FloatType *getF32() { return getFloatType(32); }
  FloatType *getF64() { return getFloatType(64); }
  PointerType *getPointerType(Type *Pointee);
  /// i8*, the IR spelling of C's void*.
  PointerType *getBytePtrType() { return getPointerType(getI8()); }
  ArrayType *getArrayType(Type *Elem, uint64_t NumElements);
  FunctionType *getFunctionType(Type *Ret, std::vector<Type *> Params);

  /// Returns the record named \p Name, creating an opaque one if needed.
  RecordType *getOrCreateRecord(const std::string &Name);

  /// Returns the record named \p Name, or nullptr if it does not exist.
  RecordType *lookupRecord(const std::string &Name) const;

  /// Creates a record with a name derived from \p BaseName, made unique by
  /// appending a numeric suffix when needed. Used by the transformations
  /// to create split/peeled parts ("node.hot", "node.cold", ...).
  RecordType *createUniqueRecord(const std::string &BaseName);

  /// All record types in creation order.
  std::vector<RecordType *> records() const;

private:
  std::unique_ptr<VoidType> VoidTy;
  std::map<unsigned, std::unique_ptr<IntType>> IntTypes;
  std::map<unsigned, std::unique_ptr<FloatType>> FloatTypes;
  std::map<Type *, std::unique_ptr<PointerType>> PointerTypes;
  std::map<std::pair<Type *, uint64_t>, std::unique_ptr<ArrayType>> ArrayTypes;
  std::vector<std::unique_ptr<FunctionType>> FunctionTypes;
  std::map<std::string, std::unique_ptr<RecordType>> Records;
  std::vector<RecordType *> RecordOrder;
};

/// Rounds \p Value up to the next multiple of \p Align.
inline uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(Align > 0 && "alignment must be positive");
  return (Value + Align - 1) / Align * Align;
}

} // namespace slo

#endif // SLO_IR_TYPE_H
