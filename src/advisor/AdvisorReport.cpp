//===- advisor/AdvisorReport.cpp - The advisory tool ----------------------===//

#include "advisor/AdvisorReport.h"

#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace slo;

namespace {

/// Ten-character hotness bar: '#' per 10 percent.
std::string hotnessBar(double RelPercent) {
  unsigned Filled =
      static_cast<unsigned>(std::lround(std::min(RelPercent, 100.0) / 10.0));
  return "|" + std::string(Filled, '#') + std::string(10 - Filled, '-') + "|";
}

/// Eight-character read/write mix bar. More reads than writes: uppercase
/// 'R' with lowercase 'w'; otherwise lowercase 'r' with uppercase 'W'.
std::string readWriteBar(double Reads, double Writes) {
  double Total = Reads + Writes;
  if (Total <= 0.0)
    return "|........|";
  unsigned NR =
      static_cast<unsigned>(std::lround(8.0 * Reads / Total));
  char RC = Reads >= Writes ? 'R' : 'r';
  char WC = Reads >= Writes ? 'w' : 'W';
  return "|" + std::string(NR, RC) + std::string(8 - NR, WC) + "|";
}

/// Orders the types hottest first.
std::vector<RecordType *> typesByHotness(const AdvisorInputs &In) {
  std::vector<RecordType *> Out;
  for (RecordType *R : In.Stats->types())
    Out.push_back(R);
  std::stable_sort(Out.begin(), Out.end(),
                   [&](RecordType *A, RecordType *B) {
                     return In.Stats->get(A)->typeHotness() >
                            In.Stats->get(B)->typeHotness();
                   });
  return Out;
}

const TypePlan *findPlan(const AdvisorInputs &In, RecordType *Rec) {
  if (!In.Plans)
    return nullptr;
  for (const TypePlan &P : *In.Plans)
    if (P.Rec == Rec)
      return &P;
  return nullptr;
}

/// The §3.3 multi-threading note: fields that are written at all are
/// candidates for separation from read-mostly fields to reduce coherency
/// traffic ("fields should additionally be grouped by read and write
/// counts").
void appendMtNotes(std::ostringstream &OS, const TypeFieldStats &S) {
  std::vector<unsigned> ReadMostly, WriteHeavy;
  for (unsigned I = 0; I < S.Rec->getNumFields(); ++I) {
    if (!S.isReferenced(I))
      continue;
    if (S.Writes[I] > S.Reads[I] * 0.25)
      WriteHeavy.push_back(I);
    else
      ReadMostly.push_back(I);
  }
  if (ReadMostly.empty() || WriteHeavy.empty())
    return;
  OS << "  MT note : separate write-heavy fields {";
  for (size_t I = 0; I < WriteHeavy.size(); ++I)
    OS << (I ? ", " : "") << S.Rec->getField(WriteHeavy[I]).Name;
  OS << "} from read-mostly fields {";
  for (size_t I = 0; I < ReadMostly.size(); ++I)
    OS << (I ? ", " : "") << S.Rec->getField(ReadMostly[I]).Name;
  OS << "} to avoid coherency misses\n";
}

} // namespace

std::string slo::renderTypeReport(const AdvisorInputs &In, RecordType *Rec) {
  const TypeFieldStats *S = In.Stats->get(Rec);
  const TypeLegality &L = In.Legal->get(Rec);
  std::ostringstream OS;

  // Relative/absolute type hotness over all types.
  double MaxType = 0.0, TotalType = 0.0;
  for (RecordType *R : In.Stats->types()) {
    double H = In.Stats->get(R)->typeHotness();
    MaxType = std::max(MaxType, H);
    TotalType += H;
  }
  double Mine = S->typeHotness();
  double Rel = MaxType > 0 ? 100.0 * Mine / MaxType : 0.0;
  double Abs = TotalType > 0 ? 100.0 * Mine / TotalType : 0.0;

  OS << "Type     : " << Rec->getRecordName() << "\n";
  OS << formatString("Fields   : %u, %llu bytes\n", Rec->getNumFields(),
                     static_cast<unsigned long long>(Rec->getSize()));
  OS << formatString("Hotness  : %.1f%% rel, %.1f%% abs\n", Rel, Abs);
  if (const TypePlan *P = findPlan(In, Rec)) {
    OS << "Transform: " << transformKindName(P->Kind);
    if (!P->Reason.empty())
      OS << " (" << P->Reason << ")";
    OS << "\n";
  }
  OS << "Status   : "
     << (L.isLegal() ? "*OK*" : violationMaskToString(L.Violations));
  std::string Attrs = L.Attrs.toString();
  if (!Attrs.empty())
    OS << " / " << Attrs;
  OS << "\n";
  if (In.Refined) {
    if (const TypeRefinement *TR = In.Refined->get(Rec)) {
      if (!L.isLegal() && TR->ProvenLegal)
        OS << "Proven   : legal ("
           << (TR->TransformSafe ? "transformable" : "advisory only") << ")\n";
      for (const SiteProof &P : TR->Proofs)
        OS << "  proof  : " << (P.Discharged ? "[ok]      " : "[blocked] ")
           << describeViolationSite(*P.Site) << " -- " << P.Fact << "\n";
    }
  }
  OS << std::string(69, '-') << "\n";

  std::vector<double> RelHot = S->relativeHotness();

  // Maximum miss count of the type (for the per-field miss percentage).
  double MaxMisses = 0.0;
  if (In.Cache) {
    for (unsigned I = 0; I < Rec->getNumFields(); ++I)
      if (const FieldCacheStats *C = In.Cache->getFieldStats(Rec, I))
        MaxMisses = std::max(MaxMisses, static_cast<double>(C->Misses));
  }
  double MaxEdge = 0.0;
  for (const auto &[Edge, W] : S->Affinity)
    MaxEdge = std::max(MaxEdge, W);

  for (unsigned I = 0; I < Rec->getNumFields(); ++I) {
    const Field &F = Rec->getField(I);
    OS << formatString("Field[%2u] off: %3llu:0 %s \"%s\"", I,
                       static_cast<unsigned long long>(F.Offset),
                       hotnessBar(RelHot[I]).c_str(), F.Name.c_str());
    if (!S->isReferenced(I)) {
      OS << " *unused*\n";
      continue;
    }
    if (S->Writes[I] > 0.0 && S->Reads[I] <= 0.0)
      OS << " *dead*";
    OS << "\n";
    OS << formatString("  hot  : %5.1f%%  weight: %.3e\n", RelHot[I],
                       S->Hotness[I]);
    OS << formatString("  read : %.3e, write: %.3e  %s\n", S->Reads[I],
                       S->Writes[I],
                       readWriteBar(S->Reads[I], S->Writes[I]).c_str());
    if (In.Cache) {
      if (const FieldCacheStats *C = In.Cache->getFieldStats(Rec, I)) {
        double MissPct = MaxMisses > 0
                             ? 100.0 * static_cast<double>(C->Misses) /
                                   MaxMisses
                             : 0.0;
        OS << formatString("  miss : %llu, %.1f%%, lat: %.1f [cyc]\n",
                           static_cast<unsigned long long>(C->Misses),
                           MissPct, C->averageLatency());
      }
    }
    // Unidirectional affinities in declaration order.
    for (const auto &[Edge, W] : S->Affinity) {
      if (Edge.first != I)
        continue;
      double Pct = MaxEdge > 0 ? 100.0 * W / MaxEdge : 0.0;
      OS << formatString("  aff  : %5.1f%% --> %s\n", Pct,
                         Rec->getField(Edge.second).Name.c_str());
    }
  }
  if (In.MtNotes)
    appendMtNotes(OS, *S);
  return OS.str();
}

std::string slo::renderAdvisorReport(const AdvisorInputs &In) {
  std::ostringstream OS;
  OS << "===== Structure Layout Advisory Report =====\n";
  OS << "(types sorted by hotness; legality status codes follow the "
        "paper's abbreviations)\n\n";
  unsigned Printed = 0;
  for (RecordType *Rec : typesByHotness(In)) {
    const TypeFieldStats *S = In.Stats->get(Rec);
    if (In.SkipColdTypes && S->typeHotness() <= 0.0)
      continue;
    if (In.MaxTypes && Printed >= In.MaxTypes)
      break;
    OS << renderTypeReport(In, Rec) << "\n";
    ++Printed;
  }
  if (Printed == 0)
    OS << "(no referenced record types)\n";
  return OS.str();
}

std::string slo::renderVcgGraph(const TypeFieldStats &Stats) {
  std::ostringstream OS;
  double MaxEdge = 0.0;
  for (const auto &[Edge, W] : Stats.Affinity)
    MaxEdge = std::max(MaxEdge, W);
  std::vector<double> Rel = Stats.relativeHotness();

  OS << "graph: {\n";
  OS << "  title: \"affinity:" << Stats.Rec->getRecordName() << "\"\n";
  OS << "  layoutalgorithm: forcedir\n";
  for (unsigned I = 0; I < Stats.Rec->getNumFields(); ++I) {
    const char *Color = Rel[I] >= 66.0   ? "red"
                        : Rel[I] >= 33.0 ? "orange"
                        : Rel[I] > 0.0   ? "yellow"
                                         : "white";
    OS << formatString(
        "  node: { title: \"%s\" label: \"%s\\n%.1f%%\" color: %s }\n",
        Stats.Rec->getField(I).Name.c_str(),
        Stats.Rec->getField(I).Name.c_str(), Rel[I], Color);
  }
  for (const auto &[Edge, W] : Stats.Affinity) {
    if (Edge.first == Edge.second)
      continue; // Self-affinity is shown by node color already.
    double Pct = MaxEdge > 0 ? 100.0 * W / MaxEdge : 0.0;
    unsigned Thickness = Pct >= 66.0 ? 4 : Pct >= 33.0 ? 2 : 1;
    OS << formatString("  edge: { sourcename: \"%s\" targetname: \"%s\" "
                       "thickness: %u label: \"%.0f%%\" }\n",
                       Stats.Rec->getField(Edge.first).Name.c_str(),
                       Stats.Rec->getField(Edge.second).Name.c_str(),
                       Thickness, Pct);
  }
  OS << "}\n";
  return OS.str();
}
