//===- advisor/Correlation.cpp - Linear correlation -----------------------===//

#include "advisor/Correlation.h"

#include <cassert>
#include <cmath>

using namespace slo;

double slo::pearsonCorrelation(const std::vector<double> &X,
                               const std::vector<double> &Y) {
  assert(X.size() == Y.size() && !X.empty() &&
         "correlation needs equal, non-empty vectors");
  double N = static_cast<double>(X.size());
  double MeanX = 0, MeanY = 0;
  for (size_t I = 0; I < X.size(); ++I) {
    MeanX += X[I];
    MeanY += Y[I];
  }
  MeanX /= N;
  MeanY /= N;
  double Cov = 0, VarX = 0, VarY = 0;
  for (size_t I = 0; I < X.size(); ++I) {
    double DX = X[I] - MeanX;
    double DY = Y[I] - MeanY;
    Cov += DX * DY;
    VarX += DX * DX;
    VarY += DY * DY;
  }
  if (VarX <= 0.0 || VarY <= 0.0)
    return 0.0;
  return Cov / (std::sqrt(VarX) * std::sqrt(VarY));
}

double slo::pearsonCorrelationExcluding(const std::vector<double> &X,
                                        const std::vector<double> &Y,
                                        size_t DropIndex) {
  std::vector<double> XD, YD;
  for (size_t I = 0; I < X.size(); ++I) {
    if (I == DropIndex)
      continue;
    XD.push_back(X[I]);
    YD.push_back(Y[I]);
  }
  return pearsonCorrelation(XD, YD);
}
