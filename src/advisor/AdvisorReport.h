//===- advisor/AdvisorReport.h - The advisory tool -------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's advisory tool (§3): IPA prints annotated type layouts for
/// all structure types, sorted by type hotness, in the format of the
/// paper's Figure 2:
///
///   Type     : node
///   Fields   : 15, 60 bytes
///   Hotness  : 100.0% rel, 52.6% abs
///   Transform: Splitting
///   Status   : *OK* / GPTR HEAP FREE
///   --------------------------------------------------------------
///   Field[ 0] off:   0:0 |##--------| "number"
///     hot  :   0.2%  weight: 5.367e+05
///     read : 9.375e+05, write: 2.072e+03  |RRRRRRRR|
///     miss : 2, 0.1%, lat: 9.5 [cyc]
///     aff  : 100.0% --> number
///   Field[ 1] off:   4:0 |----------| "ident" *unused*
///
/// The d-cache lines appear when a feedback file with cache events is
/// supplied; affinities are printed unidirectionally in declaration
/// order. A VCG/GDL graph emitter provides the paper's graphical output
/// for the VCG tool [19].
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ADVISOR_ADVISORREPORT_H
#define SLO_ADVISOR_ADVISORREPORT_H

#include "analysis/Affinity.h"
#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "profile/FeedbackFile.h"
#include "transform/Plan.h"

#include <string>
#include <vector>

namespace slo {

/// Everything the report renderer may consult. Only M, Legal, and Stats
/// are required.
struct AdvisorInputs {
  const Module *M = nullptr;
  const LegalityResult *Legal = nullptr;
  const FieldStatsResult *Stats = nullptr;
  /// Feedback with d-cache events (enables the miss/latency lines).
  const FeedbackFile *Cache = nullptr;
  /// Planned transformations (enables the "Transform:" line).
  const std::vector<TypePlan> *Plans = nullptr;
  /// Points-to refinement (enables the "Proven:" line and the per-site
  /// proof lines under the status).
  const RefinementResult *Refined = nullptr;
  /// Print at most this many types (0 = all).
  unsigned MaxTypes = 0;
  /// Skip types that were never referenced.
  bool SkipColdTypes = true;
  /// Append the multi-threading advice notes (§2.4/§3.3: group fields by
  /// read/write behaviour to avoid coherency traffic). Advisory only.
  bool MtNotes = false;
};

/// Renders the report for every type, hottest first.
std::string renderAdvisorReport(const AdvisorInputs &In);

/// Renders the report block for one type.
std::string renderTypeReport(const AdvisorInputs &In, RecordType *Rec);

/// Renders a VCG/GDL graph of one type's affinity graph, with edge
/// thickness and color classes by relative weight.
std::string renderVcgGraph(const TypeFieldStats &Stats);

} // namespace slo

#endif // SLO_ADVISOR_ADVISORREPORT_H
