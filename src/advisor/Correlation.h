//===- advisor/Correlation.h - Linear correlation --------------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's correlation coefficient r (§2.3) used to compare the
/// weighting schemes against the PBO baseline, and the r' variant that
/// disregards one field (the paper drops `potential`, the globally
/// hottest field, to show how much of DMISS's apparent correlation it
/// carries).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_ADVISOR_CORRELATION_H
#define SLO_ADVISOR_CORRELATION_H

#include <cstddef>
#include <vector>

namespace slo {

/// Pearson's linear correlation coefficient between \p X and \p Y
/// (equal, non-zero lengths). Returns 0 when either vector is constant.
double pearsonCorrelation(const std::vector<double> &X,
                          const std::vector<double> &Y);

/// Pearson correlation with index \p DropIndex removed from both vectors
/// (the paper's r').
double pearsonCorrelationExcluding(const std::vector<double> &X,
                                   const std::vector<double> &Y,
                                   size_t DropIndex);

} // namespace slo

#endif // SLO_ADVISOR_CORRELATION_H
