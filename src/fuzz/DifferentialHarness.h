//===- fuzz/DifferentialHarness.h - Transform-equivalence oracle -*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one MiniC program through the FE -> IPA -> BE pipeline twice —
/// transforms off and transforms on — and checks the four differential
/// oracles the paper's safety claim rests on:
///
///   Output       printed integers/doubles (bit-compared), exit code,
///                and the heap-leak census are identical across the two
///                runs. When transforms fired, the census comparison is
///                boolean (leaks vs no leaks): splitting legitimately
///                adds one cold allocation per site, so a program that
///                leaks by construction leaks more objects after it.
///   Verifier     the module verifies before and after the BE phase (the
///                BE additionally verify-or-dies after each individual
///                transform).
///   Legality     Legal <= Proven <= Relax holds for every record type,
///                and no proven-by-discharge type has an externally
///                escaping object viewed as it.
///   Attribution  MissAttribution's per-site misses partition the cache
///                simulator's first-level miss events exactly, in both
///                the base and the transformed run.
///
///   Lint         the static lint suite's must-claims agree with the
///                base run: no Error-severity memory finding on a
///                hazard-free generated program (every claim is
///                definite, so one false positive is a checker bug), an
///                injected hazard's finding class is present, a free
///                trap is predicted by a free-related finding, and the
///                leak verdict matches the heap census whenever lint
///                tracked every heap allocation.
///
/// An opt-in engine-parity oracle re-runs both the base and the
/// transformed module under the tree walker and the threaded bytecode
/// VM and requires bit-identical RunResults, miss-attribution heatmaps,
/// and collected profiles — the VM is only allowed to be faster, never
/// different.
///
/// A fifth mode (sampled profiles) makes the planner consume a sampled
/// d-cache profile collected on the base run and round-tripped through
/// the feedback text format, instead of static estimates — every oracle
/// above must still hold when the advice came from noisy sampled data,
/// and the round-trip itself becomes an oracle.
///
/// The harness runs the pipeline phases manually (rather than through
/// runStructLayoutPipeline) because the Legality oracle needs the
/// PointsToResult, which the packaged pipeline does not expose.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FUZZ_DIFFERENTIALHARNESS_H
#define SLO_FUZZ_DIFFERENTIALHARNESS_H

#include "analysis/WeightSchemes.h"
#include "fuzz/ProgramFuzzer.h"
#include "runtime/Interpreter.h"
#include "transform/LayoutPlanner.h"

#include <string>

namespace slo {

/// Which oracle a differential run failed (None = passed).
enum class FuzzOracle {
  None,
  Compile,     // the program did not compile/link
  BaseTrap,    // the untransformed run trapped
  OptTrap,     // the transformed run trapped
  Output,      // printed values / exit code diverged
  LeakCensus,  // heap-leak census diverged
  Verifier,    // module failed verification around the BE phase
  Legality,    // Legal <= Proven <= Relax (or escape admission) broken
  Attribution,  // site misses do not partition the miss events
  Profile,      // sampled profile failed the feedback-format round-trip
  Lint,         // static lint verdict contradicts observed behaviour
  EngineParity, // tree walker and bytecode VM disagreed on a module
  IncrementalParity, // warm (cached) advice diverged from a cold run
};

const char *fuzzOracleName(FuzzOracle O);

struct DifferentialOptions {
  WeightScheme Scheme = WeightScheme::ISPBO;
  double IspboExponent = 1.5;
  PlannerOptions Planner;
  /// Let per-site proofs admit types the blanket tests rejected (the
  /// production default).
  bool UseProvenLegality = true;
  /// Check the miss-partition oracle (requires cache simulation; turning
  /// it off makes runs cheaper).
  bool CheckAttribution = true;
  /// Test-only fault injection: strip the relaxable violation bits
  /// (CSTT/CSTF/ATKN) from every type's legality verdict before
  /// planning, simulating a broken legality analysis. The acceptance
  /// test proves the Output oracle catches this and the reducer shrinks
  /// the witness.
  bool InjectLegalityBug = false;
  /// Run the lint suite on the pre-transform module and cross-check the
  /// static verdicts against observed behaviour (the sixth oracle):
  /// generated programs are hazard-free by construction, so any
  /// Error-severity memory finding is a lint false positive; a base-run
  /// free trap or a heap leak that lint (with complete heap coverage)
  /// did not predict is a missed finding. Lint pinnings also feed the
  /// refinement, exactly like the production pipeline.
  bool CheckLint = true;
  /// Test-only fault injection: thread LintOptions::InjectLifetimeBug
  /// through runLint, making it blind to free(). With an injected
  /// dangling-use hazard this must flip the run into a Lint-oracle
  /// failure, proving the oracle is not vacuous.
  bool InjectLintBug = false;
  /// The hazard injectHazard() planted into the program, if any; the
  /// lint oracle then *requires* the corresponding finding class and
  /// tolerates exactly that class.
  HazardKind ExpectedHazard = HazardKind::None;
  /// Engine used for the base and transformed runs (Auto resolves
  /// against SLO_ENGINE, defaulting to the tree walker).
  ExecEngine Engine = ExecEngine::Auto;
  /// The engine-parity oracle: run both the base and the transformed
  /// module under the tree walker AND the bytecode VM and require
  /// bit-identical RunResults, miss-attribution heatmaps, and collected
  /// profiles. Off by default — it doubles the run cost — and enabled by
  /// the slo_fuzz --engine-parity leg.
  bool CheckEngineParity = false;
  /// Test-only fault injection: compile the VM's bytecode with a
  /// deliberate cycle mis-charge on loads (RunOptions::InjectVmBug).
  /// With CheckEngineParity this must flip the run into an
  /// EngineParity-oracle failure, proving the oracle is not vacuous.
  bool InjectVmBug = false;
  /// Guard for generated programs; both runs share it.
  uint64_t MaxInstructions = 200000000ull;
  /// Sampled-profiles mode: when nonzero, the base run also collects a
  /// sampled d-cache profile through the Caliper stand-in (this mean
  /// period, skid below), the profile round-trips through the feedback
  /// text format onto the transform-side module, and the planner runs
  /// from profile hotness instead of static estimates. Pair with a
  /// cache scheme (DMISS/DLAT) for the profile to actually matter.
  uint64_t SampledProfilePeriod = 0;
  unsigned SampledProfileSkid = 0;
  uint64_t SampledProfileSeed = 0x510ACA11;
};

struct DifferentialOutcome {
  bool Passed = false;
  FuzzOracle Oracle = FuzzOracle::None;
  /// Human-readable failure description (first divergence, verifier
  /// error, broken invariant).
  std::string Detail;
  /// Types the BE actually rewrote in the transformed pipeline.
  unsigned TypesTransformed = 0;
  RunResult Base;
  RunResult Opt;
};

/// Compiles \p Source twice (two contexts), runs the base module as-is
/// and the second through the full pipeline, and checks every oracle.
/// \p Name labels the program in failure details.
DifferentialOutcome
runDifferential(const std::string &Name, const std::string &Source,
                const DifferentialOptions &Opts = DifferentialOptions());

} // namespace slo

#endif // SLO_FUZZ_DIFFERENTIALHARNESS_H
