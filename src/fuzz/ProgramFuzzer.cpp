//===- fuzz/ProgramFuzzer.cpp - Random MiniC program generator ------------===//

#include "fuzz/ProgramFuzzer.h"

#include "support/Format.h"
#include "support/Random.h"

#include <algorithm>
#include <sstream>

using namespace slo;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string FuzzConfig::describe() const {
  std::ostringstream S;
  S << "seed=" << Seed << " structs=[" << MinStructs << "," << MaxStructs
    << "] fields=[" << MinFields << "," << MaxFields << "]"
    << " dbl=" << DoubleFieldChance << " narrow=" << NarrowFieldChance
    << " arr=" << ArrayFieldChance << " selfptr=" << SelfPtrFieldChance
    << " nest=" << NestedFieldChance << " fnptr=" << FnPtrFieldChance
    << " dead=" << DeadFieldChance << " calloc=" << HeapCallocChance
    << " realloc=" << HeapReallocChance << " wrap=" << WrapperAllocChance
    << " memset=" << MemsetChance << " memcpy=" << MemcpyChance
    << " leak=" << LeakChance << " pun=" << CastPunChance
    << " atkn=" << AddrTakenChance << " atarg=" << AddrArgChance
    << " gvar=" << GlobalInstanceChance << " lvar=" << LocalInstanceChance
    << " chase=" << ChaseChance << " fncall=" << FnPtrCallChance
    << " nestdepth=" << MaxLoopNest << " elems=[" << MinElements << ","
    << MaxElements << "] iters=" << MaxIterations;
  if (!SymbolPrefix.empty())
    S << " prefix=" << SymbolPrefix;
  if (!EntryName.empty())
    S << " entry=" << EntryName;
  return S.str();
}

std::string FuzzProgram::render() const {
  std::ostringstream Out;
  Out << "// slo_fuzz program '" << Name << "'\n";
  for (const std::string &Line : Banner)
    Out << "// " << Line << "\n";
  Out << "extern void print_i64(long v);\n";
  Out << "extern void print_f64(double v);\n";
  for (const FuzzStruct &S : Structs) {
    Out << "struct " << S.Name << " {\n";
    for (const std::string &F : S.Fields)
      Out << "  " << F << "\n";
    Out << "};\n";
  }
  for (const std::string &G : Globals)
    Out << G << "\n";
  for (const FuzzFunction &F : Functions) {
    Out << F.Decl << " {\n";
    for (const std::string &Stmt : F.Body)
      Out << "  " << Stmt << "\n";
    Out << "}\n";
  }
  if (EntryName.empty())
    Out << "int main() {\n";
  else
    Out << "long " << EntryName << "() {\n";
  for (const std::string &Stmt : MainBody)
    Out << "  " << Stmt << "\n";
  Out << "  return 0;\n";
  Out << "}\n";
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

namespace {

enum class FieldKind { Long, Double, Narrow, Array, SelfPtr, Nested, FnPtr };

struct FieldInfo {
  FieldKind Kind = FieldKind::Long;
  unsigned ArrayLen = 0;     // Array
  const char *NarrowTy = ""; // Narrow
  bool Dead = false;         // written in the init loop, never read
};

/// Everything decided up front for one unit (struct + use function), so
/// statement emission is a pure function of the plan.
struct UnitPlan {
  unsigned Index = 0;
  bool Pun = false;
  bool UseCalloc = false, UseRealloc = false, UseWrapper = false;
  bool UseMemset = false, UseMemcpy = false, Leak = false;
  bool AddrTaken = false, AddrArg = false;
  bool GlobalInst = false, LocalInst = false;
  bool Chase = false;
  int ChaseField = -1;
  int FnPtrField = -1;
  bool CallFnPtr = false;
  unsigned Elements = 0; // initial allocation count N
  unsigned Effective = 0; // element count after an optional realloc
  unsigned Reps = 0;
  unsigned RepNest = 1;
  std::vector<FieldInfo> Fields;
};

class ProgramBuilder {
public:
  ProgramBuilder(const FuzzConfig &Cfg) : Cfg(Cfg), R(Cfg.Seed) {}

  FuzzProgram build() {
    FuzzProgram P;
    P.Name = Cfg.Name;
    P.EntryName = Cfg.EntryName;
    P.Banner.push_back(Cfg.describe());

    unsigned Units =
        Cfg.MinStructs +
        static_cast<unsigned>(R.nextBelow(Cfg.MaxStructs - Cfg.MinStructs + 1));
    std::vector<UnitPlan> Plans;
    for (unsigned I = 0; I < Units; ++I)
      Plans.push_back(planUnit(I));

    bool NeedPeek = false;
    for (const UnitPlan &U : Plans)
      NeedPeek |= U.AddrArg;
    if (NeedPeek) {
      FuzzFunction Peek;
      Peek.Decl = formatString("long %s(long *p)", sym("peek").c_str());
      Peek.Body.push_back("return *p;");
      P.Functions.push_back(std::move(Peek));
    }

    for (const UnitPlan &U : Plans)
      emitUnit(P, U);

    for (const UnitPlan &U : Plans)
      P.MainBody.push_back(
          formatString("print_i64(%s());",
                       sym(formatString("use_%u", U.Index)).c_str()));
    return P;
  }

private:
  const FuzzConfig &Cfg;
  Rng R;

  std::string structName(unsigned I) const {
    return formatString("fz_%s_s%u", Cfg.Name.c_str(), I);
  }

  /// Function/global symbols honour the corpus namespace: "use_0"
  /// renders as fz_use_0 stand-alone and fz_<prefix>_use_0 in a corpus.
  std::string sym(const std::string &Base) const {
    return Cfg.SymbolPrefix.empty() ? "fz_" + Base
                                    : "fz_" + Cfg.SymbolPrefix + "_" + Base;
  }

  UnitPlan planUnit(unsigned I) {
    UnitPlan U;
    U.Index = I;
    U.Pun = R.nextChance(Cfg.CastPunChance);
    unsigned NumFields =
        Cfg.MinFields +
        static_cast<unsigned>(R.nextBelow(Cfg.MaxFields - Cfg.MinFields + 1));
    static const char *NarrowTys[] = {"int", "short", "char"};
    for (unsigned F = 0; F < NumFields; ++F) {
      FieldInfo FI;
      if (F >= 2 && !U.Pun) {
        if (R.nextChance(Cfg.DoubleFieldChance))
          FI.Kind = FieldKind::Double;
        else if (R.nextChance(Cfg.NarrowFieldChance)) {
          FI.Kind = FieldKind::Narrow;
          FI.NarrowTy = NarrowTys[F % 3];
        } else if (R.nextChance(Cfg.ArrayFieldChance)) {
          FI.Kind = FieldKind::Array;
          FI.ArrayLen = 2 + static_cast<unsigned>(R.nextBelow(3));
        } else if (R.nextChance(Cfg.SelfPtrFieldChance))
          FI.Kind = FieldKind::SelfPtr;
        else if (I > 0 && R.nextChance(Cfg.NestedFieldChance))
          FI.Kind = FieldKind::Nested;
        else if (R.nextChance(Cfg.FnPtrFieldChance))
          FI.Kind = FieldKind::FnPtr;
      }
      // The hot pair f0/f1 stays live; scalar/array cold fields may be
      // write-only (dead-field-removal candidates).
      if (F >= 2 &&
          (FI.Kind == FieldKind::Long || FI.Kind == FieldKind::Double ||
           FI.Kind == FieldKind::Narrow || FI.Kind == FieldKind::Array))
        FI.Dead = R.nextChance(Cfg.DeadFieldChance);
      U.Fields.push_back(FI);
    }

    for (unsigned F = 0; F < U.Fields.size(); ++F) {
      if (U.Fields[F].Kind == FieldKind::SelfPtr && U.ChaseField < 0)
        U.ChaseField = static_cast<int>(F);
      if (U.Fields[F].Kind == FieldKind::FnPtr && U.FnPtrField < 0)
        U.FnPtrField = static_cast<int>(F);
    }

    U.UseCalloc = R.nextChance(Cfg.HeapCallocChance);
    U.UseWrapper = !U.UseCalloc && R.nextChance(Cfg.WrapperAllocChance);
    U.UseRealloc = R.nextChance(Cfg.HeapReallocChance);
    U.UseMemset = R.nextChance(Cfg.MemsetChance);
    U.UseMemcpy = R.nextChance(Cfg.MemcpyChance);
    U.Leak = R.nextChance(Cfg.LeakChance);
    U.AddrTaken = R.nextChance(Cfg.AddrTakenChance);
    U.AddrArg = R.nextChance(Cfg.AddrArgChance);
    U.GlobalInst = R.nextChance(Cfg.GlobalInstanceChance);
    U.LocalInst = R.nextChance(Cfg.LocalInstanceChance);
    U.Chase = U.ChaseField >= 0 && R.nextChance(Cfg.ChaseChance);
    U.CallFnPtr = U.FnPtrField >= 0 && R.nextChance(Cfg.FnPtrCallChance);
    if (U.Pun) {
      // Pun units are the transformability probes: keep the type free of
      // planner blockers so the only thing standing between the raw
      // long* read and a layout rewrite is the CSTF legality verdict.
      U.UseRealloc = false;
      U.UseMemset = false;
      U.UseMemcpy = false;
      U.GlobalInst = false;
      U.LocalInst = false;
    }

    U.Elements =
        Cfg.MinElements +
        static_cast<unsigned>(R.nextBelow(Cfg.MaxElements - Cfg.MinElements + 1));
    U.Effective = U.UseRealloc ? U.Elements * 2 : U.Elements;
    U.Reps = 1 + static_cast<unsigned>(R.nextBelow(Cfg.MaxIterations));
    U.RepNest = 1 + static_cast<unsigned>(R.nextBelow(Cfg.MaxLoopNest));
    return U;
  }

  std::string fieldDecl(const UnitPlan &U, unsigned F) const {
    const FieldInfo &FI = U.Fields[F];
    switch (FI.Kind) {
    case FieldKind::Long:
      return formatString("long f%u;", F);
    case FieldKind::Double:
      return formatString("double f%u;", F);
    case FieldKind::Narrow:
      return formatString("%s f%u;", FI.NarrowTy, F);
    case FieldKind::Array:
      return formatString("long f%u[%u];", F, FI.ArrayLen);
    case FieldKind::SelfPtr:
      return formatString("struct %s *f%u;", structName(U.Index).c_str(), F);
    case FieldKind::Nested:
      return formatString("struct %s f%u;", structName(U.Index - 1).c_str(),
                          F);
    case FieldKind::FnPtr:
      return formatString("long (*f%u)(long);", F);
    }
    return "";
  }

  void emitUnit(FuzzProgram &P, const UnitPlan &U) {
    const std::string SN = structName(U.Index);
    const std::string ST = "struct " + SN;
    const unsigned NE = U.Effective;

    FuzzStruct S;
    S.Name = SN;
    for (unsigned F = 0; F < U.Fields.size(); ++F)
      S.Fields.push_back(fieldDecl(U, F));
    P.Structs.push_back(std::move(S));

    if (U.GlobalInst)
      P.Globals.push_back(
          formatString("%s %s;", ST.c_str(), sym(formatString("g%u", U.Index)).c_str()));

    if (U.UseWrapper) {
      FuzzFunction W;
      W.Decl = formatString("void *%s(long n)",
                           sym(formatString("alloc_%u", U.Index)).c_str());
      W.Body.push_back("return malloc(n);");
      P.Functions.push_back(std::move(W));
    }
    if (U.FnPtrField >= 0) {
      FuzzFunction FN;
      FN.Decl = formatString("long %s(long x)",
                           sym(formatString("fn_%u", U.Index)).c_str());
      FN.Body.push_back(formatString("return x * 3 + %u;", U.Index));
      P.Functions.push_back(std::move(FN));
    }

    FuzzFunction Use;
    Use.Decl = formatString("long %s()",
                             sym(formatString("use_%u", U.Index)).c_str());
    std::vector<std::string> &B = Use.Body;
    B.push_back("long s = 0;");

    // Allocation.
    if (U.UseCalloc)
      B.push_back(formatString("%s *a = (%s*) calloc(%u, sizeof(%s));",
                               ST.c_str(), ST.c_str(), U.Elements,
                               ST.c_str()));
    else if (U.UseWrapper)
      B.push_back(formatString(
          "%s *a = (%s*) %s(%u * sizeof(%s));", ST.c_str(), ST.c_str(),
          sym(formatString("alloc_%u", U.Index)).c_str(), U.Elements,
          ST.c_str()));
    else
      B.push_back(formatString("%s *a = (%s*) malloc(%u * sizeof(%s));",
                               ST.c_str(), ST.c_str(), U.Elements,
                               ST.c_str()));
    if (U.UseMemset)
      B.push_back(formatString("memset(a, 0, %u * sizeof(%s));", U.Elements,
                               ST.c_str()));
    if (U.UseRealloc)
      B.push_back(formatString("a = (%s*) realloc(a, %u * sizeof(%s));",
                               ST.c_str(), NE, ST.c_str()));

    // Initialization: every field of every element gets a value that
    // depends on (element, field), so a transform that mis-addresses any
    // field changes the printed sums.
    {
      std::ostringstream L;
      L << "for (long i = 0; i < " << NE << "; i++) {\n";
      for (unsigned F = 0; F < U.Fields.size(); ++F) {
        const FieldInfo &FI = U.Fields[F];
        switch (FI.Kind) {
        case FieldKind::Long:
          L << "    a[i].f" << F << " = i * 31 + " << (F * 7 + 1) << ";\n";
          break;
        case FieldKind::Double:
          L << "    a[i].f" << F << " = (double)(i + " << F << ") * 0.5;\n";
          break;
        case FieldKind::Narrow:
          L << "    a[i].f" << F << " = (i + " << F << ") % 99;\n";
          break;
        case FieldKind::Array:
          L << "    for (long k = 0; k < " << FI.ArrayLen << "; k++) { a[i].f"
            << F << "[k] = i + k * 3; }\n";
          break;
        case FieldKind::Nested:
          L << "    a[i].f" << F << ".f0 = i + " << F << ";\n";
          L << "    a[i].f" << F << ".f1 = i * 2 + " << F << ";\n";
          break;
        case FieldKind::FnPtr:
          L << "    a[i].f" << F << " = "
            << sym(formatString("fn_%u", U.Index)) << ";\n";
          break;
        case FieldKind::SelfPtr:
          break; // chase links are built below; other self-pointers stay
                 // unread
        }
      }
      L << "  }";
      B.push_back(L.str());
    }

    if (U.Chase) {
      std::ostringstream L;
      L << "for (long i = 0; i + 1 < " << NE << "; i++) { a[i].f"
        << U.ChaseField << " = &a[i + 1]; }\n";
      L << "  a[" << (NE - 1) << "].f" << U.ChaseField << " = &a[0];";
      B.push_back(L.str());
    }

    // The hot loop: a repetition nest around the element loop so the
    // static estimator sees f0/f1 as much hotter than the cold fields.
    {
      std::ostringstream L;
      std::string Ind;
      for (unsigned N = 0; N < U.RepNest; ++N) {
        L << Ind << (N ? "  " : "") << "for (long r" << N << " = 0; r" << N
          << " < " << U.Reps << "; r" << N << "++) {\n";
        Ind += "  ";
      }
      L << "  " << Ind << "for (long i = 0; i < " << NE << "; i++) {\n";
      L << "  " << Ind << "  s += a[i].f0 + a[i].f1 * 2;\n";
      L << "  " << Ind << "}\n";
      for (unsigned N = U.RepNest; N > 0; --N) {
        Ind.resize(Ind.size() - 2);
        L << "  " << Ind << "}" << (N > 1 ? "\n" : "");
      }
      B.push_back(L.str());
    }

    if (U.Pun) {
      std::ostringstream L;
      L << "long *raw = (long*) a;\n";
      L << "  for (long i = 0; i < " << NE * U.Fields.size()
        << "; i++) { s += raw[i]; }";
      B.push_back(L.str());
    }

    if (U.Chase) {
      std::ostringstream L;
      L << ST << " *p = a;\n";
      L << "  for (long c = 0; c < " << NE << "; c++) { s += p->f0; p = p->f"
        << U.ChaseField << "; }";
      B.push_back(L.str());
    }

    if (U.CallFnPtr)
      B.push_back(formatString("s += a[2].f%d(s %% 97);", U.FnPtrField));

    if (U.AddrTaken)
      B.push_back("long *q = &a[1].f0;\n  *q = *q + 5;\n  s += *q;");
    if (U.AddrArg)
      B.push_back(formatString("s += %s(&a[1].f1);", sym("peek").c_str()));

    if (U.UseMemcpy) {
      std::ostringstream L;
      L << ST << " *b = (" << ST << "*) malloc(" << NE << " * sizeof(" << ST
        << "));\n";
      L << "  memcpy(b, a, " << NE << " * sizeof(" << ST << "));\n";
      L << "  s += b[0].f0 + b[" << (NE - 1) << "].f1;\n";
      L << "  free(b);";
      B.push_back(L.str());
    }

    // The cold pass: one read of every live non-hot field.
    {
      bool AnyDouble = false;
      for (unsigned F = 2; F < U.Fields.size(); ++F)
        AnyDouble |= U.Fields[F].Kind == FieldKind::Double && !U.Fields[F].Dead;
      if (AnyDouble)
        B.push_back("double d = 0.0;");
      std::ostringstream L;
      L << "for (long i = 0; i < " << NE << "; i++) {\n";
      bool Any = false;
      for (unsigned F = 2; F < U.Fields.size(); ++F) {
        const FieldInfo &FI = U.Fields[F];
        if (FI.Dead)
          continue;
        switch (FI.Kind) {
        case FieldKind::Long:
        case FieldKind::Narrow:
          L << "    s += a[i].f" << F << ";\n";
          Any = true;
          break;
        case FieldKind::Double:
          L << "    d = d + a[i].f" << F << ";\n";
          Any = true;
          break;
        case FieldKind::Array:
          L << "    s += a[i].f" << F << "[0] + a[i].f" << F << "["
            << (FI.ArrayLen - 1) << "];\n";
          Any = true;
          break;
        case FieldKind::Nested:
          L << "    s += a[i].f" << F << ".f0 + a[i].f" << F << ".f1;\n";
          Any = true;
          break;
        case FieldKind::SelfPtr:
        case FieldKind::FnPtr:
          break;
        }
      }
      L << "  }";
      if (Any)
        B.push_back(L.str());
      if (AnyDouble) {
        B.push_back("print_f64(d * 0.5);");
        B.push_back("s += (long) d;");
      }
    }

    if (U.GlobalInst)
    {
      const std::string G = sym(formatString("g%u", U.Index));
      B.push_back(formatString("%s.f0 = 21 + %u;\n  s += %s.f0;", G.c_str(),
                               U.Index, G.c_str()));
    }
    if (U.LocalInst)
      B.push_back(formatString(
          "%s loc;\n  loc.f0 = 9;\n  loc.f1 = 4 + %u;\n  s += loc.f0 * "
          "loc.f1;",
          ST.c_str(), U.Index));

    if (!U.Leak)
      B.push_back("free(a);");
    B.push_back("return s % 1000003;");
    P.Functions.push_back(std::move(Use));
  }
};

} // namespace

FuzzProgram slo::generateFuzzProgram(const FuzzConfig &Cfg) {
  return ProgramBuilder(Cfg).build();
}

FuzzConfig slo::randomFuzzConfig(uint64_t Seed) {
  // A distinct stream from the program generator's: the config knobs and
  // the program dice must not be correlated.
  Rng R(Seed ^ 0xc0f1c0f1c0f1c0f1ULL);
  FuzzConfig C;
  C.Seed = Seed;
  C.Name = formatString("fz%llu", static_cast<unsigned long long>(Seed));
  C.MinStructs = 1;
  C.MaxStructs = 1 + static_cast<unsigned>(R.nextBelow(4));
  C.MinFields = 3;
  C.MaxFields = 4 + static_cast<unsigned>(R.nextBelow(5));
  C.DoubleFieldChance = R.nextDouble() * 0.3;
  C.NarrowFieldChance = R.nextDouble() * 0.3;
  C.ArrayFieldChance = R.nextDouble() * 0.25;
  C.SelfPtrFieldChance = R.nextDouble() * 0.35;
  C.NestedFieldChance = R.nextDouble() * 0.25;
  C.FnPtrFieldChance = R.nextDouble() * 0.25;
  C.DeadFieldChance = R.nextDouble() * 0.35;
  C.HeapCallocChance = R.nextDouble() * 0.4;
  C.HeapReallocChance = R.nextDouble() * 0.3;
  C.WrapperAllocChance = R.nextDouble() * 0.35;
  C.MemsetChance = R.nextDouble() * 0.35;
  C.MemcpyChance = R.nextDouble() * 0.35;
  C.LeakChance = 0.0; // generated programs balance alloc/free; the
                      // census oracle compares equality, not zero
  C.CastPunChance = R.nextDouble() * 0.3;
  C.AddrTakenChance = R.nextDouble() * 0.4;
  C.AddrArgChance = R.nextDouble() * 0.3;
  C.GlobalInstanceChance = R.nextDouble() * 0.25;
  C.LocalInstanceChance = R.nextDouble() * 0.3;
  C.ChaseChance = R.nextDouble();
  C.FnPtrCallChance = 0.5 + R.nextDouble() * 0.5;
  C.MaxLoopNest = 1 + static_cast<unsigned>(R.nextBelow(3));
  C.MinElements = 4;
  C.MaxElements = 8 + static_cast<unsigned>(R.nextBelow(41));
  C.MaxIterations = 1 + static_cast<unsigned>(R.nextBelow(4));
  return C;
}

//===----------------------------------------------------------------------===//
// Hazard injection
//===----------------------------------------------------------------------===//

const char *slo::hazardKindName(HazardKind K) {
  switch (K) {
  case HazardKind::None:
    return "none";
  case HazardKind::DanglingUse:
    return "dangling-use";
  case HazardKind::UninitRead:
    return "uninit-read";
  }
  return "?";
}

void slo::injectHazard(FuzzProgram &P, HazardKind K) {
  if (K == HazardKind::None)
    return;
  P.Banner.push_back(std::string("injected hazard: ") + hazardKindName(K));
  std::vector<std::string> &B = P.MainBody;
  if (!P.Structs.empty()) {
    // f0/f1 are always plain longs in generated structs.
    std::string ST = "struct " + P.Structs.front().Name;
    B.push_back(formatString("%s *hz = (%s*) malloc(2 * sizeof(%s));",
                             ST.c_str(), ST.c_str(), ST.c_str()));
    if (K == HazardKind::DanglingUse) {
      B.push_back("hz[0].f0 = 7;");
      B.push_back("free(hz);");
      B.push_back("print_i64(hz[0].f0);"); // freed memory is not poisoned
    } else {
      B.push_back("print_i64(hz[1].f1);"); // fresh heap fill is deterministic
      B.push_back("free(hz);");
    }
  } else {
    B.push_back("long *hz = (long*) malloc(4 * sizeof(long));");
    if (K == HazardKind::DanglingUse) {
      B.push_back("hz[0] = 7;");
      B.push_back("free(hz);");
      B.push_back("print_i64(hz[0]);");
    } else {
      B.push_back("print_i64(hz[1]);");
      B.push_back("free(hz);");
    }
  }
}

//===----------------------------------------------------------------------===//
// Multi-TU corpus generation and mutation
//===----------------------------------------------------------------------===//

std::vector<FuzzTu> slo::generateFuzzCorpus(uint64_t Seed, unsigned Units) {
  // A distinct stream from both the config sampler and the program dice.
  Rng R(Seed ^ 0x75eed5eed5eed5ULL);
  std::vector<FuzzTu> Corpus;
  for (unsigned I = 0; I < Units; ++I) {
    FuzzConfig C = randomFuzzConfig(R.split().next());
    C.Name = formatString("u%u", I);
    C.SymbolPrefix = C.Name;
    C.EntryName = formatString("fz_u%u_main", I);
    FuzzTu Tu;
    Tu.FileName = C.Name + ".minic";
    Tu.Program = generateFuzzProgram(C);
    Corpus.push_back(std::move(Tu));
  }

  // The closing TU: main extern-declares every unit entry and calls it.
  // The extern declarations flag each call site LIBC in main's summary;
  // the IPA merge must clear the bit because every entry is defined by
  // some TU of the corpus — exactly the linker's IsLib resolution.
  FuzzTu Main;
  Main.FileName = "main.minic";
  Main.Program.Name = "main";
  Main.Program.Banner.push_back(
      formatString("corpus seed=%llu units=%u (driver TU)",
                   static_cast<unsigned long long>(Seed), Units));
  Main.Program.MainBody.push_back("long s = 0;");
  for (unsigned I = 0; I < Units; ++I) {
    Main.Program.Globals.push_back(
        formatString("extern long fz_u%u_main();", I));
    Main.Program.MainBody.push_back(formatString("s += fz_u%u_main();", I));
  }
  Main.Program.MainBody.push_back("print_i64(s);");
  Corpus.push_back(std::move(Main));
  return Corpus;
}

std::string slo::mutateFuzzTu(FuzzProgram &P, uint64_t Seed) {
  Rng R(Seed ^ 0x37a7e37a7e3ULL);
  if (!P.Structs.empty()) {
    // Appending a plain long field is always valid MiniC and always
    // moves the advice: the merged census row's field count and size
    // come from this (authoritative) definition.
    FuzzStruct &S = P.Structs[R.nextBelow(P.Structs.size())];
    std::string Field =
        formatString("long zzm%u;", static_cast<unsigned>(S.Fields.size()));
    S.Fields.push_back(Field);
    P.Banner.push_back("mutation: appended '" + Field + "' to struct " +
                       S.Name);
    return "appended field '" + Field + "' to struct " + S.Name;
  }
  // Structless TU (the corpus driver): append a statement.
  unsigned K = static_cast<unsigned>(R.nextBelow(1000));
  P.MainBody.push_back(formatString("print_i64(%u);", 100000 + K));
  P.Banner.push_back("mutation: appended print statement");
  return formatString("appended print_i64(%u) to main body", 100000 + K);
}
