//===- fuzz/IncrementalParity.h - Warm-vs-cold advice oracle ---*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seventh differential oracle: the incremental pipeline's cache
/// equivalence. One run
///
///   1. generates a multi-TU corpus (unit TUs + a driver TU whose
///      extern calls exercise the IPA merge's LIBC/ESCP resolution),
///   2. runs the incremental pipeline cold against a scratch summary
///      cache, and once more with no cache at all (cold determinism),
///   3. mutates one random unit TU (a schema-moving field append),
///   4. re-runs warm against the populated cache and cold without one,
///
/// and requires the warm and cold advice renderings — text and JSON,
/// which carry the census columns, plans, diagnostics and exact hotness
/// bit patterns — to be byte-identical, the warm run to have actually
/// reused every unmutated TU (the oracle must not pass vacuously by
/// recomputing everything), and Legal <= Proven <= Relax to hold for
/// every merged type.
///
/// InjectStaleSummary serves the mutated TU's stale cache entry without
/// re-validation; the oracle MUST then fail (the non-vacuity check
/// behind slo_fuzz --inject-stale-summary).
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FUZZ_INCREMENTALPARITY_H
#define SLO_FUZZ_INCREMENTALPARITY_H

#include "fuzz/DifferentialHarness.h"
#include "pipeline/Incremental.h"

#include <string>
#include <vector>

namespace slo {

struct IncrementalParityConfig {
  uint64_t Seed = 1;
  /// Unit-TU count range, inclusive; one driver TU is always appended.
  unsigned MinTus = 2;
  unsigned MaxTus = 5;
  /// Scratch directory for the summary cache. Required; the run writes
  /// and reads real cache files so the on-disk format is exercised.
  std::string CacheDir;
  /// FE fan-out width for each pipeline run.
  unsigned Threads = 2;
  /// Fault injection: serve the stale (pre-mutation) summary on the
  /// warm leg. The parity oracle must catch the drift.
  bool InjectStaleSummary = false;
};

struct IncrementalParityOutcome {
  bool Passed = false;
  FuzzOracle Oracle = FuzzOracle::None;
  std::string Detail;
  /// The corpus as run (post-mutation), for repro writing.
  std::vector<TuSource> Corpus;
  int MutatedTu = -1;
  std::string MutationDetail;
  unsigned TusReused = 0;
  unsigned TusRecomputed = 0;
};

IncrementalParityOutcome
runIncrementalParity(const IncrementalParityConfig &Cfg);

} // namespace slo

#endif // SLO_FUZZ_INCREMENTALPARITY_H
