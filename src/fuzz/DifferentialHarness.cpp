//===- fuzz/DifferentialHarness.cpp - Transform-equivalence oracle --------===//

#include "fuzz/DifferentialHarness.h"

#include "analysis/Legality.h"
#include "analysis/LegalityRefine.h"
#include "analysis/PointsTo.h"
#include "analysis/lint/Lint.h"
#include "frontend/Frontend.h"
#include "ir/Verifier.h"
#include "observability/MissAttribution.h"
#include "observability/SampledPmu.h"
#include "profile/FeedbackIO.h"
#include "support/Format.h"
#include "transform/Transform.h"

#include <cstring>

using namespace slo;

const char *slo::fuzzOracleName(FuzzOracle O) {
  switch (O) {
  case FuzzOracle::None:
    return "none";
  case FuzzOracle::Compile:
    return "compile";
  case FuzzOracle::BaseTrap:
    return "base-trap";
  case FuzzOracle::OptTrap:
    return "opt-trap";
  case FuzzOracle::Output:
    return "output";
  case FuzzOracle::LeakCensus:
    return "leak-census";
  case FuzzOracle::Verifier:
    return "verifier";
  case FuzzOracle::Legality:
    return "legality";
  case FuzzOracle::Attribution:
    return "attribution";
  case FuzzOracle::Profile:
    return "profile";
  case FuzzOracle::Lint:
    return "lint";
  case FuzzOracle::EngineParity:
    return "engine-parity";
  case FuzzOracle::IncrementalParity:
    return "incremental-parity";
  }
  return "?";
}

namespace {

DifferentialOutcome fail(FuzzOracle O, std::string Detail) {
  DifferentialOutcome R;
  R.Passed = false;
  R.Oracle = O;
  R.Detail = std::move(Detail);
  return R;
}

uint64_t doubleBits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

/// Runs \p M with the attribution sink attached; on return \p Partition
/// holds whether the sink's miss total equals the simulator's. When
/// \p Profile and \p Pmu are set, the run also collects a sampled
/// d-cache profile.
RunResult runWithAttribution(const Module &M, uint64_t MaxInstructions,
                             bool Attribute, bool *Partition,
                             std::string *PartitionDetail,
                             FeedbackFile *Profile = nullptr,
                             SampledPmu *Pmu = nullptr,
                             ExecEngine Engine = ExecEngine::Auto) {
  MissAttribution Sink;
  RunOptions Opts;
  Opts.MaxInstructions = MaxInstructions;
  Opts.Engine = Engine;
  if (Attribute)
    Opts.Attribution = &Sink;
  Opts.Profile = Profile;
  Opts.Pmu = Pmu;
  RunResult R = runProgram(M, std::move(Opts));
  if (Attribute) {
    *Partition = Sink.totalMisses() == R.FirstLevelMisses;
    if (!*Partition)
      *PartitionDetail = formatString(
          "site misses %llu != first-level miss events %llu",
          static_cast<unsigned long long>(Sink.totalMisses()),
          static_cast<unsigned long long>(R.FirstLevelMisses));
  } else {
    *Partition = true;
  }
  return R;
}

/// The engine-parity oracle on one module: runs it under the tree
/// walker and the bytecode VM with identical options and compares every
/// observable — the full RunResult (including trap state, cycle and
/// miss totals, and the leak census), the miss-attribution heatmap, and
/// the collected edge/field profile. Returns "" on parity, else a
/// description of the first divergence.
std::string compareEngines(const Module &M, uint64_t MaxInstructions,
                           bool InjectVmBug) {
  auto RunOn = [&](ExecEngine E, MissAttribution &Sink, FeedbackFile &FB) {
    RunOptions Opts;
    Opts.MaxInstructions = MaxInstructions;
    Opts.Engine = E;
    Opts.InjectVmBug = InjectVmBug;
    Opts.Attribution = &Sink;
    Opts.Profile = &FB;
    return runProgram(M, std::move(Opts));
  };
  MissAttribution WSink, VSink;
  FeedbackFile WFb, VFb;
  RunResult W = RunOn(ExecEngine::Walker, WSink, WFb);
  RunResult V = RunOn(ExecEngine::VM, VSink, VFb);

  auto Mismatch = [](const char *Field, uint64_t A, uint64_t B) {
    return formatString("%s walker=%llu vm=%llu", Field,
                        static_cast<unsigned long long>(A),
                        static_cast<unsigned long long>(B));
  };
  if (W.Trapped != V.Trapped || W.TrapReason != V.TrapReason)
    return formatString("trap walker='%s' vm='%s'",
                        W.Trapped ? W.TrapReason.c_str() : "(none)",
                        V.Trapped ? V.TrapReason.c_str() : "(none)");
  if (W.ExitCode != V.ExitCode)
    return Mismatch("exit code", W.ExitCode, V.ExitCode);
  if (W.Instructions != V.Instructions)
    return Mismatch("instructions", W.Instructions, V.Instructions);
  if (W.Cycles != V.Cycles)
    return Mismatch("cycles", W.Cycles, V.Cycles);
  if (W.MemStallCycles != V.MemStallCycles)
    return Mismatch("mem stall cycles", W.MemStallCycles, V.MemStallCycles);
  if (W.Loads != V.Loads)
    return Mismatch("loads", W.Loads, V.Loads);
  if (W.Stores != V.Stores)
    return Mismatch("stores", W.Stores, V.Stores);
  if (W.L1.Hits != V.L1.Hits || W.L1.Misses != V.L1.Misses)
    return Mismatch("L1 misses", W.L1.Misses, V.L1.Misses);
  if (W.L2.Hits != V.L2.Hits || W.L2.Misses != V.L2.Misses)
    return Mismatch("L2 misses", W.L2.Misses, V.L2.Misses);
  if (W.L3.Hits != V.L3.Hits || W.L3.Misses != V.L3.Misses)
    return Mismatch("L3 misses", W.L3.Misses, V.L3.Misses);
  if (W.FirstLevelMisses != V.FirstLevelMisses)
    return Mismatch("first-level misses", W.FirstLevelMisses,
                    V.FirstLevelMisses);
  if (W.PrintedInts != V.PrintedInts)
    return "printed integer streams diverged";
  if (W.PrintedFloats.size() != V.PrintedFloats.size())
    return "printed float counts diverged";
  for (size_t I = 0; I < W.PrintedFloats.size(); ++I)
    if (doubleBits(W.PrintedFloats[I]) != doubleBits(V.PrintedFloats[I]))
      return formatString("printed float #%zu walker=%g vm=%g", I,
                          W.PrintedFloats[I], V.PrintedFloats[I]);
  if (W.HeapBytesAllocated != V.HeapBytesAllocated ||
      W.HeapAllocations != V.HeapAllocations)
    return Mismatch("heap allocations", W.HeapAllocations, V.HeapAllocations);
  if (W.HeapLiveAllocs != V.HeapLiveAllocs ||
      W.HeapLiveBytes != V.HeapLiveBytes)
    return Mismatch("leak census allocs", W.HeapLiveAllocs, V.HeapLiveAllocs);
  if (WSink.renderHeatmapJson() != VSink.renderHeatmapJson())
    return "miss-attribution heatmaps diverged";
  if (serializeFeedback(M, WFb) != serializeFeedback(M, VFb))
    return "collected profiles diverged";
  return "";
}

/// The Legality oracle: Legal <= Proven <= Relax per type, and no type
/// proven via discharges may have an externally escaping object viewed
/// as it. Returns an empty string when the invariant holds.
std::string checkLegalityInvariant(const LegalityResult &Legal,
                                   const RefinementResult &Refined,
                                   const PointsToResult &PT) {
  for (RecordType *Rec : Legal.types()) {
    const TypeLegality &TL = Legal.get(Rec);
    bool Strict = TL.isLegal(/*Relax=*/false);
    bool Relax = TL.isLegal(/*Relax=*/true);
    bool Proven = Refined.isProvenLegal(Rec);
    if (Strict && !Proven)
      return "type '" + Rec->getName() + "' is strictly legal but not proven";
    if (Proven && !Relax)
      return "type '" + Rec->getName() +
             "' is proven but outside the Relax upper bound (" +
             violationMaskToString(TL.Violations) + ")";
    if (Proven && !Strict) {
      for (PointsToResult::ObjectID O : PT.objectsViewedAs(Rec))
        if (PT.object(O).Escape == EscapeState::ExternalEscape)
          return "type '" + Rec->getName() +
                 "' proven by discharge but viewed by externally escaping "
                 "object " +
                 PT.object(O).describe();
    }
  }
  return "";
}

} // namespace

DifferentialOutcome slo::runDifferential(const std::string &Name,
                                         const std::string &Source,
                                         const DifferentialOptions &Opts) {
  // Two independent compilations: the base module is never touched by
  // the pipeline, so any divergence comes from the transforms alone.
  IRContext BaseCtx;
  std::vector<std::string> Diags;
  auto BaseM = compileProgram(BaseCtx, Name, {Source}, Diags);
  if (!BaseM)
    return fail(FuzzOracle::Compile,
                Diags.empty() ? "compile failed" : Diags.front());
  IRContext OptCtx;
  auto OptM = compileProgram(OptCtx, Name, {Source}, Diags);
  if (!OptM)
    return fail(FuzzOracle::Compile,
                Diags.empty() ? "compile failed (second context)"
                              : Diags.front());

  // FE analyses and the lint suite run on the pre-transform module, up
  // front, so the lint verdict exists before the behaviour it predicts
  // is observed.
  LegalityResult Legal = analyzeLegality(*OptM);
  if (Opts.InjectLegalityBug) {
    uint32_t Strip = violationBit(Violation::CSTT) |
                     violationBit(Violation::CSTF) |
                     violationBit(Violation::ATKN);
    for (RecordType *Rec : Legal.types())
      Legal.getOrCreate(Rec).Violations &= ~Strip;
  }
  PointsToResult PT = analyzePointsTo(*OptM);
  LintResult LintR;
  if (Opts.CheckLint) {
    LintOptions LO;
    LO.InjectLifetimeBug = Opts.InjectLintBug;
    LintR = runLint(*OptM, &PT, &Legal, LO);
    // The missed-finding direction for injected hazards: the planted
    // bug is statically definite, so its finding class must be present.
    if (Opts.ExpectedHazard == HazardKind::DanglingUse &&
        !LintR.has(LintKind::UseAfterFree))
      return fail(FuzzOracle::Lint,
                  "injected dangling use not flagged by lint");
    if (Opts.ExpectedHazard == HazardKind::UninitRead &&
        !LintR.has(LintKind::UninitRead))
      return fail(FuzzOracle::Lint,
                  "injected uninitialized read not flagged by lint");
    // The false-positive direction: generated programs are hazard-free
    // by construction, and every lint claim is definite, so any
    // Error-severity finding outside the injected class is a checker
    // bug.
    for (const LintFinding &F : LintR.Findings) {
      if (F.Severity != DiagSeverity::Error)
        continue;
      if (Opts.ExpectedHazard == HazardKind::DanglingUse &&
          F.Kind == LintKind::UseAfterFree)
        continue;
      if (Opts.ExpectedHazard == HazardKind::UninitRead &&
          F.Kind == LintKind::UninitRead)
        continue;
      return fail(FuzzOracle::Lint,
                  formatString("lint false positive (%s in '%s'): %s",
                               lintKindName(F.Kind), F.Function.c_str(),
                               F.Message.c_str()));
    }
  }

  // Sampled-profiles mode: the base run doubles as the collection run.
  const bool Sampled = Opts.SampledProfilePeriod > 0;
  FeedbackFile BaseProfile;
  SampledPmuConfig PmuCfg;
  PmuCfg.Period = Opts.SampledProfilePeriod;
  PmuCfg.Skid = Opts.SampledProfileSkid;
  PmuCfg.Seed = Opts.SampledProfileSeed;
  SampledPmu Pmu(PmuCfg);

  // Engine parity, transform-off: checked before the base-trap oracle so
  // programs that trap still have to trap identically in both engines.
  if (Opts.CheckEngineParity) {
    std::string D =
        compareEngines(*BaseM, Opts.MaxInstructions, Opts.InjectVmBug);
    if (!D.empty())
      return fail(FuzzOracle::EngineParity, "base module: " + D);
  }

  bool Partition = true;
  std::string PartitionDetail;
  RunResult Base =
      runWithAttribution(*BaseM, Opts.MaxInstructions, Opts.CheckAttribution,
                         &Partition, &PartitionDetail,
                         Sampled ? &BaseProfile : nullptr,
                         Sampled ? &Pmu : nullptr, Opts.Engine);
  if (Base.Trapped) {
    // The interpreter's only free-time trap is a bad free; lint claims
    // completeness for the definite cases, so an unpredicted free trap
    // indicts the lint suite rather than the program.
    if (Opts.CheckLint &&
        Base.TrapReason.find("free of a non-heap address") !=
            std::string::npos &&
        !LintR.has(LintKind::InvalidFree) && !LintR.has(LintKind::DoubleFree) &&
        !LintR.has(LintKind::UseAfterFree))
      return fail(FuzzOracle::Lint,
                  "base run trapped ('" + Base.TrapReason +
                      "') but lint reported no free-related finding");
    DifferentialOutcome R = fail(FuzzOracle::BaseTrap, Base.TrapReason);
    R.Base = Base;
    return R;
  }
  if (!Partition)
    return fail(FuzzOracle::Attribution, "base run: " + PartitionDetail);

  // Leak cross-check: lint's leak verdict is definite, and complete
  // when it tracked every heap allocation to a free or a return.
  if (Opts.CheckLint) {
    if (LintR.has(LintKind::Leak) && Base.HeapLiveAllocs == 0)
      return fail(FuzzOracle::Lint,
                  "lint reported a definite leak but the base run freed "
                  "every allocation");
    if (Base.HeapLiveAllocs > 0 && !LintR.has(LintKind::Leak) &&
        LintR.HeapCoverageComplete && LintR.BailedFunctions == 0)
      return fail(
          FuzzOracle::Lint,
          formatString("base run leaked %llu allocation(s) but lint, with "
                       "complete heap coverage, reported none",
                       static_cast<unsigned long long>(Base.HeapLiveAllocs)));
  }

  // The profile was keyed by the base module's IR; the transform-side
  // compilation consumes it the way production does — through the
  // serialized feedback format's symbolic matching. A profile our own
  // writer emitted must always parse back.
  FeedbackFile Train;
  if (Sampled) {
    std::string Text = serializeFeedback(*BaseM, BaseProfile);
    FeedbackMatchResult MR = deserializeFeedback(*OptM, Text, Train);
    if (!MR.Ok)
      return fail(FuzzOracle::Profile,
                  "sampled profile round-trip rejected: " + MR.Error);
    if (MR.DroppedEntries > 0)
      return fail(FuzzOracle::Profile,
                  formatString("sampled profile round-trip dropped %u "
                               "record(s) between identical compilations",
                               MR.DroppedEntries));
  }

  // Per-site proofs; lint's layout pinnings demote punned types out of
  // Proven, exactly like the production pipeline.
  RefinementResult Refined =
      refineLegality(*OptM, Legal, PT, nullptr,
                     Opts.CheckLint ? &LintR.Pinnings : nullptr);
  if (!Opts.InjectLegalityBug) {
    // The invariant is deliberately unchecked under injection: stripping
    // bits falsifies the Legal set itself, and the point of the
    // injection test is that the *behavioural* oracles catch the
    // resulting mis-transformation.
    std::string Broken = checkLegalityInvariant(Legal, Refined, PT);
    if (!Broken.empty())
      return fail(FuzzOracle::Legality, Broken);
  }

  std::vector<std::string> VerifyErrors;
  if (!verifyModule(*OptM, VerifyErrors))
    return fail(FuzzOracle::Verifier,
                "before BE: " + (VerifyErrors.empty() ? "?"
                                                      : VerifyErrors.front()));

  // IPA: field stats under the configured scheme, then the planner. In
  // sampled mode the scheme (and the planner's hotness) read the
  // round-tripped profile, exactly like a PBO use-phase compile.
  SchemeInputs In;
  In.M = OptM.get();
  In.Exponent = Opts.IspboExponent;
  In.TrainProfile = Sampled ? &Train : nullptr;
  FieldStatsResult Stats = computeSchemeFieldStats(Opts.Scheme, In);
  PlannerOptions Planner = Opts.Planner;
  Planner.HotnessFromProfile = Sampled;
  std::vector<TypePlan> Plans =
      planLayout(*OptM, Legal, Stats, Planner,
                 Opts.UseProvenLegality ? &Refined : nullptr);

  // BE: apply (verify-or-dies after each individual transform), then the
  // graceful end-to-end verification for the oracle.
  TransformSummary Summary = applyPlans(*OptM, Plans, Legal);
  VerifyErrors.clear();
  if (!verifyModule(*OptM, VerifyErrors))
    return fail(FuzzOracle::Verifier,
                "after BE: " + (VerifyErrors.empty() ? "?"
                                                     : VerifyErrors.front()));

  // Engine parity, transform-on: the rewritten module (new layouts, new
  // field sites, new bytecode) must also execute identically.
  if (Opts.CheckEngineParity) {
    std::string D =
        compareEngines(*OptM, Opts.MaxInstructions, Opts.InjectVmBug);
    if (!D.empty())
      return fail(FuzzOracle::EngineParity, "transformed module: " + D);
  }

  RunResult Opt =
      runWithAttribution(*OptM, Opts.MaxInstructions, Opts.CheckAttribution,
                         &Partition, &PartitionDetail, nullptr, nullptr,
                         Opts.Engine);
  DifferentialOutcome R;
  R.TypesTransformed = Summary.TypesTransformed;
  R.Base = Base;
  R.Opt = Opt;
  if (Opt.Trapped) {
    R.Passed = false;
    R.Oracle = FuzzOracle::OptTrap;
    R.Detail = Opt.TrapReason;
    return R;
  }
  if (!Partition) {
    R.Passed = false;
    R.Oracle = FuzzOracle::Attribution;
    R.Detail = "transformed run: " + PartitionDetail;
    return R;
  }

  // Output oracle: exit code, then the print streams, bit-compared.
  auto outputFail = [&](std::string Detail) {
    R.Passed = false;
    R.Oracle = FuzzOracle::Output;
    R.Detail = std::move(Detail);
    return R;
  };
  if (Base.ExitCode != Opt.ExitCode)
    return outputFail(formatString("exit code base=%lld opt=%lld",
                                   static_cast<long long>(Base.ExitCode),
                                   static_cast<long long>(Opt.ExitCode)));
  if (Base.PrintedInts.size() != Opt.PrintedInts.size())
    return outputFail(formatString(
        "printed int count base=%zu opt=%zu", Base.PrintedInts.size(),
        Opt.PrintedInts.size()));
  for (size_t I = 0; I < Base.PrintedInts.size(); ++I)
    if (Base.PrintedInts[I] != Opt.PrintedInts[I])
      return outputFail(formatString(
          "printed int #%zu base=%lld opt=%lld", I,
          static_cast<long long>(Base.PrintedInts[I]),
          static_cast<long long>(Opt.PrintedInts[I])));
  if (Base.PrintedFloats.size() != Opt.PrintedFloats.size())
    return outputFail(formatString(
        "printed float count base=%zu opt=%zu", Base.PrintedFloats.size(),
        Opt.PrintedFloats.size()));
  for (size_t I = 0; I < Base.PrintedFloats.size(); ++I)
    if (doubleBits(Base.PrintedFloats[I]) != doubleBits(Opt.PrintedFloats[I]))
      return outputFail(formatString("printed float #%zu base=%g opt=%g", I,
                                     Base.PrintedFloats[I],
                                     Opt.PrintedFloats[I]));

  // Leak-census oracle. Exact when the module was not rewritten; when
  // splits fired, the cold halves double the object count of leaked
  // sites, so only leak/no-leak equivalence is meaningful.
  if (Summary.TypesTransformed == 0) {
    if (Base.HeapLiveAllocs != Opt.HeapLiveAllocs ||
        Base.HeapLiveBytes != Opt.HeapLiveBytes) {
      R.Passed = false;
      R.Oracle = FuzzOracle::LeakCensus;
      R.Detail = formatString(
          "leaks base=%llu allocs/%llu bytes opt=%llu allocs/%llu bytes",
          static_cast<unsigned long long>(Base.HeapLiveAllocs),
          static_cast<unsigned long long>(Base.HeapLiveBytes),
          static_cast<unsigned long long>(Opt.HeapLiveAllocs),
          static_cast<unsigned long long>(Opt.HeapLiveBytes));
      return R;
    }
  } else if ((Base.HeapLiveAllocs == 0) != (Opt.HeapLiveAllocs == 0)) {
    R.Passed = false;
    R.Oracle = FuzzOracle::LeakCensus;
    R.Detail = formatString(
        "leak parity base=%llu allocs opt=%llu allocs (after %u transforms)",
        static_cast<unsigned long long>(Base.HeapLiveAllocs),
        static_cast<unsigned long long>(Opt.HeapLiveAllocs),
        Summary.TypesTransformed);
    return R;
  }

  R.Passed = true;
  R.Oracle = FuzzOracle::None;
  return R;
}
