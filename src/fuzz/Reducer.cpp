//===- fuzz/Reducer.cpp - Delta-debugging repro minimizer -----------------===//

#include "fuzz/Reducer.h"

#include <sstream>

using namespace slo;

namespace {

/// Shared attempt budget across every pass of one reduction.
struct Budget {
  unsigned Remaining;
  ReduceStats *Stats;

  bool spend() {
    if (Remaining == 0)
      return false;
    --Remaining;
    if (Stats)
      ++Stats->Attempts;
    return true;
  }
  void accepted() {
    if (Stats)
      ++Stats->Accepted;
  }
};

/// Generic "try erasing one element of a vector" pass. Walks back to
/// front (later elements depend on earlier ones more often than the
/// reverse, so removing from the tail succeeds more). Returns true when
/// anything was removed.
template <typename T, typename MakeCandidate>
bool dropElementsPass(std::vector<T> &Items, Budget &B,
                      const MakeCandidate &TryWithout) {
  bool Progress = false;
  for (size_t I = Items.size(); I-- > 0;) {
    if (!B.spend())
      return Progress;
    if (TryWithout(I)) {
      Items.erase(Items.begin() + static_cast<ptrdiff_t>(I));
      B.accepted();
      Progress = true;
    }
  }
  return Progress;
}

bool mentions(const std::string &Text, const std::string &Name) {
  return Text.find(Name) != std::string::npos;
}

/// Removes function \p I and every statement elsewhere that refers to it
/// by name (main calls, helper uses).
FuzzProgram withoutFunction(const FuzzProgram &P, size_t I) {
  FuzzProgram C = P;
  // "long fz_use_0()" -> "fz_use_0".
  std::string Decl = C.Functions[I].Decl;
  size_t Paren = Decl.find('(');
  size_t NameStart = Decl.rfind(' ', Paren);
  std::string Name = Decl.substr(NameStart + 1, Paren - NameStart - 1);
  C.Functions.erase(C.Functions.begin() + static_cast<ptrdiff_t>(I));
  auto Purge = [&](std::vector<std::string> &Stmts) {
    for (size_t S = Stmts.size(); S-- > 0;)
      if (mentions(Stmts[S], Name))
        Stmts.erase(Stmts.begin() + static_cast<ptrdiff_t>(S));
  };
  Purge(C.MainBody);
  for (FuzzFunction &F : C.Functions)
    Purge(F.Body);
  return C;
}

} // namespace

FuzzProgram slo::reduceProgram(FuzzProgram P, const FuzzPredicate &StillFails,
                               ReduceStats *Stats, unsigned MaxAttempts) {
  Budget B{MaxAttempts, Stats};
  bool Progress = true;
  while (Progress && B.Remaining > 0) {
    Progress = false;

    // 1. Whole functions, coarsest first. A dropped function takes its
    // call sites with it, so the candidate replaces P wholesale (the
    // generic pass only handles single-element erasure).
    for (size_t I = P.Functions.size(); I-- > 0;) {
      if (!B.spend())
        break;
      FuzzProgram C = withoutFunction(P, I);
      if (StillFails(C)) {
        P = std::move(C);
        B.accepted();
        Progress = true;
      }
    }

    // 2. Individual main statements.
    Progress |= dropElementsPass(P.MainBody, B, [&](size_t I) {
      FuzzProgram C = P;
      C.MainBody.erase(C.MainBody.begin() + static_cast<ptrdiff_t>(I));
      return StillFails(C);
    });

    // 3. Individual statements inside each function.
    for (size_t F = 0; F < P.Functions.size(); ++F)
      Progress |= dropElementsPass(P.Functions[F].Body, B, [&](size_t I) {
        FuzzProgram C = P;
        C.Functions[F].Body.erase(C.Functions[F].Body.begin() +
                                  static_cast<ptrdiff_t>(I));
        return StillFails(C);
      });

    // 4. Globals.
    Progress |= dropElementsPass(P.Globals, B, [&](size_t I) {
      FuzzProgram C = P;
      C.Globals.erase(C.Globals.begin() + static_cast<ptrdiff_t>(I));
      return StillFails(C);
    });

    // 5. Struct fields (compile rejects candidates with live uses).
    for (size_t S = 0; S < P.Structs.size(); ++S)
      Progress |= dropElementsPass(P.Structs[S].Fields, B, [&](size_t I) {
        FuzzProgram C = P;
        C.Structs[S].Fields.erase(C.Structs[S].Fields.begin() +
                                  static_cast<ptrdiff_t>(I));
        return StillFails(C);
      });

    // 6. Whole structs.
    Progress |= dropElementsPass(P.Structs, B, [&](size_t I) {
      FuzzProgram C = P;
      C.Structs.erase(C.Structs.begin() + static_cast<ptrdiff_t>(I));
      return StillFails(C);
    });
  }
  return P;
}

std::string slo::reduceSourceLines(
    const std::string &Source,
    const std::function<bool(const std::string &)> &StillFails,
    ReduceStats *Stats, unsigned MaxAttempts) {
  std::vector<std::string> Lines;
  {
    std::istringstream In(Source);
    std::string L;
    while (std::getline(In, L))
      Lines.push_back(L);
  }
  Budget B{MaxAttempts, Stats};

  auto Render = [](const std::vector<std::string> &Ls) {
    std::ostringstream Out;
    for (const std::string &L : Ls)
      Out << L << "\n";
    return Out.str();
  };

  size_t Chunk = Lines.size() / 2;
  while (Chunk >= 1 && B.Remaining > 0) {
    bool Progress = false;
    for (size_t Start = 0; Start + Chunk <= Lines.size();) {
      if (!B.spend())
        break;
      std::vector<std::string> Candidate;
      Candidate.reserve(Lines.size() - Chunk);
      Candidate.insert(Candidate.end(), Lines.begin(),
                       Lines.begin() + static_cast<ptrdiff_t>(Start));
      Candidate.insert(Candidate.end(),
                       Lines.begin() + static_cast<ptrdiff_t>(Start + Chunk),
                       Lines.end());
      if (StillFails(Render(Candidate))) {
        Lines = std::move(Candidate);
        B.accepted();
        Progress = true;
        // Retry the same start: the next chunk slid into place.
      } else {
        Start += Chunk;
      }
    }
    // Keep the chunk size while it makes progress (each removal shrinks
    // the line list, so this terminates); halve it on a sterile pass.
    if (!Progress)
      Chunk /= 2;
  }
  return Render(Lines);
}
