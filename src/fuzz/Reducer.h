//===- fuzz/Reducer.h - Delta-debugging repro minimizer --------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing fuzz program to a small witness. The structured
/// reducer works on FuzzProgram's construct lists, repeatedly trying to
/// drop whole functions, then individual statements, then globals,
/// struct fields, and finally whole structs; a candidate survives only
/// when the caller's predicate still fails (same oracle). Candidates
/// that no longer compile are naturally rejected by the predicate, so
/// dependencies between constructs need no modelling. A line-based
/// ddmin fallback handles failures found in corpus files, where no
/// structured form exists.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FUZZ_REDUCER_H
#define SLO_FUZZ_REDUCER_H

#include "fuzz/ProgramFuzzer.h"

#include <functional>
#include <string>

namespace slo {

/// Reduction bookkeeping, for logs and tests.
struct ReduceStats {
  unsigned Attempts = 0; // predicate evaluations
  unsigned Accepted = 0; // candidates that kept failing
};

/// Predicate over a candidate program: true when the candidate still
/// fails the *same* oracle as the original (callers must compare the
/// oracle, not just Passed, or the reducer will happily "minimize" an
/// output divergence into a compile error).
using FuzzPredicate = std::function<bool(const FuzzProgram &)>;

/// Greedily minimizes \p P under \p StillFails, to a fixpoint or until
/// \p MaxAttempts predicate evaluations. \p StillFails(P) is assumed
/// true on entry.
FuzzProgram reduceProgram(FuzzProgram P, const FuzzPredicate &StillFails,
                          ReduceStats *Stats = nullptr,
                          unsigned MaxAttempts = 4000);

/// ddmin over source lines, for failures with no structured form.
/// Removes line chunks of halving sizes while \p StillFails holds.
std::string
reduceSourceLines(const std::string &Source,
                  const std::function<bool(const std::string &)> &StillFails,
                  ReduceStats *Stats = nullptr, unsigned MaxAttempts = 4000);

} // namespace slo

#endif // SLO_FUZZ_REDUCER_H
