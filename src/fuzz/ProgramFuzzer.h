//===- fuzz/ProgramFuzzer.h - Random MiniC program generator ---*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A grammar-driven random MiniC program generator for differential
/// testing of the layout pipeline. Unlike workloads/Generator (which
/// emits programs with a *prescribed* legality census for the Table 1
/// benchmarks), this generator samples freely over the feature space —
/// struct shapes, heap intrinsics, casts, address-taking, pointer
/// chases, function pointers — while guaranteeing three properties the
/// differential oracles rely on:
///
///   1. validity: every generated program parses, compiles, and links;
///   2. termination: every loop bound is a literal constant;
///   3. determinism and trap-freedom: no input, no uninitialized reads,
///      all indices in bounds, balanced malloc/free.
///
/// Programs are kept in a structured form (structs / globals / functions
/// / statements) rather than flat text so the delta-debugging reducer
/// can drop whole constructs and re-render.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_FUZZ_PROGRAMFUZZER_H
#define SLO_FUZZ_PROGRAMFUZZER_H

#include <cstdint>
#include <string>
#include <vector>

namespace slo {

/// Generation knobs. Every knob is sampled per program unit (one unit =
/// one struct plus the function exercising it), so a single program
/// mixes features. All defaults are chosen so that a default-config
/// sweep exercises every legality test except UNSZ.
struct FuzzConfig {
  uint64_t Seed = 1;
  std::string Name = "fuzz";

  /// Multi-TU corpus mode. A nonempty SymbolPrefix namespaces every
  /// generated function and global symbol (fz_use_0 becomes
  /// fz_<prefix>_use_0, ...) so several generated units can coexist in
  /// one program; a nonempty EntryName renders the unit driver as
  /// `long <EntryName>()` instead of `int main()`. Both default to the
  /// legacy single-program behaviour.
  std::string SymbolPrefix;
  std::string EntryName;

  /// Unit (struct) count range, inclusive.
  unsigned MinStructs = 1;
  unsigned MaxStructs = 4;
  /// Fields per struct, inclusive; fields f0/f1 are always plain longs
  /// (the hot pair), the rest sample the mix below.
  unsigned MinFields = 3;
  unsigned MaxFields = 8;

  /// Field mix (per field beyond the hot pair).
  double DoubleFieldChance = 0.15;
  double NarrowFieldChance = 0.15; // int / short / char
  double ArrayFieldChance = 0.12;  // long fN[k]
  double SelfPtrFieldChance = 0.2; // struct S *fN (enables chases)
  double NestedFieldChance = 0.1;  // struct S_prev fN (NEST)
  double FnPtrFieldChance = 0.1;   // long (*fN)(long)
  /// Chance a generated field is written but never read (a dead-field
  /// candidate for the planner).
  double DeadFieldChance = 0.2;

  /// Heap-intrinsic density (per unit).
  double HeapCallocChance = 0.25;  // calloc instead of malloc
  double HeapReallocChance = 0.15; // grow the array mid-unit (REAL)
  double WrapperAllocChance = 0.2; // allocate via a void* helper (CSTT)
  double MemsetChance = 0.2;       // memset after allocation (MSET)
  double MemcpyChance = 0.2;       // memcpy into a second array (MSET)
  double LeakChance = 0.0;         // skip the free (census exercise)

  /// Cast / address-taking frequency (per unit).
  double CastPunChance = 0.12; // read through long* pun (CSTF); forces
                               // an all-long struct so the pun is valid
  double AddrTakenChance = 0.25; // &a[i].f stored to a local (ATKN)
  double AddrArgChance = 0.2;    // &a[i].f passed to a helper (tolerated)

  /// Aggregate-instance frequency (per unit). Either blocks the planner
  /// ("aggregate (non-heap) instances exist"), so they are sampled
  /// against transform coverage.
  double GlobalInstanceChance = 0.12;
  double LocalInstanceChance = 0.15;

  /// Pointer chase over the self-pointer field, when one exists.
  double ChaseChance = 0.5;
  /// Call through the function-pointer field, when one exists (IND).
  double FnPtrCallChance = 0.75;

  /// Hot-loop shape: repetition-loop nesting depth (1..) around the
  /// element loop, and the literal bounds. Deeper nests give the static
  /// hotness estimator a stronger hot/cold contrast.
  unsigned MaxLoopNest = 2;
  unsigned MinElements = 4;
  unsigned MaxElements = 48;
  unsigned MaxIterations = 4;

  /// One-line rendering of every knob, embedded in repro headers so a
  /// failure is reproducible from the file alone.
  std::string describe() const;
};

/// One struct declaration: name plus one rendered line per field
/// ("long f0;"). The reducer drops fields by erasing lines.
struct FuzzStruct {
  std::string Name;
  std::vector<std::string> Fields;
};

/// One function: the signature ("long fz_use_0()") and one rendered
/// statement per Body entry (a whole loop nest is a single entry, so
/// dropping an entry never unbalances braces).
struct FuzzFunction {
  std::string Decl;
  std::vector<std::string> Body;
};

/// A generated program in reducible form.
struct FuzzProgram {
  std::string Name;
  /// Header comment lines (seed, config) carried into render().
  std::vector<std::string> Banner;
  std::vector<FuzzStruct> Structs;
  std::vector<std::string> Globals;
  std::vector<FuzzFunction> Functions;
  std::vector<std::string> MainBody;
  /// When nonempty the driver renders as `long <EntryName>()` rather
  /// than `int main()` (multi-TU corpus units).
  std::string EntryName;

  /// Renders the program as MiniC source text.
  std::string render() const;
};

/// Generates one program. Same config (including seed) => identical
/// program, on every platform.
FuzzProgram generateFuzzProgram(const FuzzConfig &Cfg);

/// A memory hazard injectHazard can plant into a generated program.
/// Both hazards are chosen to be *dynamically silent*: the interpreter
/// fills fresh heap memory with a deterministic pattern and does not
/// poison freed blocks, so the injected program still runs identically
/// with and without transforms — only the lint verdict distinguishes a
/// hazardous program from a clean one, which is exactly what the
/// differential lint oracle cross-checks.
enum class HazardKind {
  None,
  DanglingUse, // write, free, then read the freed block
  UninitRead,  // read a freshly malloc'ed field no one wrote
};

const char *hazardKindName(HazardKind K);

/// Appends a self-contained statement block with the given hazard to
/// \p P's main. Uses the program's first struct when one exists (so the
/// hazard exercises field offsets), a plain long array otherwise.
void injectHazard(FuzzProgram &P, HazardKind K);

/// Samples a configuration for sweep \p Seed: knob values are themselves
/// randomized (within validity-preserving bounds) so a seed sweep covers
/// different regions of the feature space, not just different dice rolls
/// of one region.
FuzzConfig randomFuzzConfig(uint64_t Seed);

/// One translation unit of a generated corpus, in reducible form.
struct FuzzTu {
  std::string FileName; ///< "u0.minic", ..., "main.minic"
  FuzzProgram Program;
};

/// Generates a multi-TU corpus for the incremental pipeline: \p Units
/// self-contained unit TUs (namespaced symbols, `long fz_uK_main()`
/// entries, no `main`) plus one closing main TU that extern-declares
/// and calls every unit entry — the extern references exercise the IPA
/// merge's cross-TU LIBC/ESCP resolution. Same seed => identical
/// corpus, on every platform.
std::vector<FuzzTu> generateFuzzCorpus(uint64_t Seed, unsigned Units);

/// Deterministically mutates one generated TU: appends a fresh field to
/// a random struct when the unit has structs (a schema + advice change
/// by construction — the census row's field count and size move), or
/// appends a statement otherwise. Returns a one-line description of the
/// mutation for failure reports.
std::string mutateFuzzTu(FuzzProgram &P, uint64_t Seed);

} // namespace slo

#endif // SLO_FUZZ_PROGRAMFUZZER_H
