//===- fuzz/IncrementalParity.cpp - Warm-vs-cold advice oracle ------------===//

#include "fuzz/IncrementalParity.h"

#include "fuzz/ProgramFuzzer.h"
#include "support/Format.h"
#include "support/Random.h"

using namespace slo;

namespace {

/// First differing line of two renderings, for failure details.
std::string firstDiff(const std::string &A, const std::string &B) {
  size_t PosA = 0, PosB = 0;
  unsigned Line = 1;
  while (PosA < A.size() || PosB < B.size()) {
    size_t EndA = A.find('\n', PosA);
    size_t EndB = B.find('\n', PosB);
    std::string LA = A.substr(PosA, EndA == std::string::npos ? std::string::npos
                                                              : EndA - PosA);
    std::string LB = B.substr(PosB, EndB == std::string::npos ? std::string::npos
                                                              : EndB - PosB);
    if (LA != LB)
      return formatString("line %u: warm '%s' vs cold '%s'", Line, LA.c_str(),
                          LB.c_str());
    if (EndA == std::string::npos || EndB == std::string::npos)
      break;
    PosA = EndA + 1;
    PosB = EndB + 1;
    ++Line;
  }
  return "lengths differ";
}

IncrementalParityOutcome fail(IncrementalParityOutcome O, FuzzOracle Oracle,
                              std::string Detail) {
  O.Passed = false;
  O.Oracle = Oracle;
  O.Detail = std::move(Detail);
  return O;
}

} // namespace

IncrementalParityOutcome
slo::runIncrementalParity(const IncrementalParityConfig &Cfg) {
  IncrementalParityOutcome O;
  Rng R(Cfg.Seed ^ 0x1c9a117ULL);

  unsigned Units =
      Cfg.MinTus +
      static_cast<unsigned>(R.nextBelow(Cfg.MaxTus - Cfg.MinTus + 1));
  std::vector<FuzzTu> Corpus = generateFuzzCorpus(Cfg.Seed, Units);

  auto Render = [&Corpus]() {
    std::vector<TuSource> TUs;
    for (const FuzzTu &Tu : Corpus)
      TUs.push_back({Tu.FileName, Tu.Program.render()});
    return TUs;
  };
  std::vector<TuSource> TUs = Render();
  O.Corpus = TUs;

  IncrementalOptions Cached;
  Cached.CacheDir = Cfg.CacheDir;
  Cached.Threads = Cfg.Threads;
  IncrementalOptions Uncached;
  Uncached.Threads = Cfg.Threads;

  // Cold, populating the cache.
  IncrementalResult Cold = runIncrementalAdvice(TUs, Cached);
  if (!Cold.Ok)
    return fail(std::move(O), FuzzOracle::Compile,
                Cold.Errors.empty() ? "cold run failed" : Cold.Errors.front());

  // Cold determinism: a run with no cache at all must render the same.
  IncrementalResult Ref = runIncrementalAdvice(TUs, Uncached);
  if (Cold.AdviceText != Ref.AdviceText || Cold.AdviceJson != Ref.AdviceJson)
    return fail(std::move(O), FuzzOracle::IncrementalParity,
                "cold advice is nondeterministic: " +
                    firstDiff(Cold.AdviceText, Ref.AdviceText));

  // Mutate one random unit TU. The driver TU is exempt: unit mutations
  // append a struct field, which moves the advice by construction, so
  // the stale-summary injection below can never pass by accident.
  O.MutatedTu = static_cast<int>(R.nextBelow(Units));
  O.MutationDetail = mutateFuzzTu(Corpus[O.MutatedTu].Program, R.next());
  TUs = Render();
  O.Corpus = TUs;

  IncrementalOptions Warm = Cached;
  Warm.InjectStaleSummary = Cfg.InjectStaleSummary;
  IncrementalResult WarmRun = runIncrementalAdvice(TUs, Warm);
  IncrementalResult ColdRun = runIncrementalAdvice(TUs, Uncached);
  if (!WarmRun.Ok || !ColdRun.Ok)
    return fail(std::move(O), FuzzOracle::Compile,
                "post-mutation run failed: " +
                    (WarmRun.Errors.empty()
                         ? (ColdRun.Errors.empty() ? std::string("?")
                                                   : ColdRun.Errors.front())
                         : WarmRun.Errors.front()));
  O.TusReused = WarmRun.TusReused;
  O.TusRecomputed = WarmRun.TusRecomputed;

  // Vacuity guard: with the cache honest, exactly the mutated TU is
  // recomputed (corpus record names are TU-unique, so no schema
  // invalidation fans out). If everything recomputed, the parity below
  // would hold trivially and prove nothing.
  if (!Cfg.InjectStaleSummary &&
      (WarmRun.TusRecomputed != 1 ||
       WarmRun.TusReused != static_cast<unsigned>(TUs.size()) - 1))
    return fail(std::move(O), FuzzOracle::IncrementalParity,
                formatString("warm run reused %u / recomputed %u of %zu TUs "
                             "(expected %zu / 1)",
                             WarmRun.TusReused, WarmRun.TusRecomputed,
                             TUs.size(), TUs.size() - 1));

  // The census invariant must hold on merged facts too.
  for (const MergedTypeAdvice &T : WarmRun.Merged.Types)
    if ((T.Legal && !T.Proven) || (T.Proven && !T.Relax))
      return fail(std::move(O), FuzzOracle::Legality,
                  "merged census violates Legal <= Proven <= Relax for '" +
                      T.Name + "'");

  // The oracle proper: warm output is bit-identical to cold.
  if (WarmRun.AdviceText != ColdRun.AdviceText)
    return fail(std::move(O), FuzzOracle::IncrementalParity,
                "advice text diverged: " +
                    firstDiff(WarmRun.AdviceText, ColdRun.AdviceText));
  if (WarmRun.AdviceJson != ColdRun.AdviceJson)
    return fail(std::move(O), FuzzOracle::IncrementalParity,
                "advice JSON diverged: " +
                    firstDiff(WarmRun.AdviceJson, ColdRun.AdviceJson));

  O.Passed = true;
  return O;
}
