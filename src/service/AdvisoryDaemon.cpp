//===- service/AdvisoryDaemon.cpp - Concurrent advisory server ------------===//

#include "service/AdvisoryDaemon.h"

#include "observability/CounterRegistry.h"
#include "observability/FlightRecorder.h"
#include "observability/Histogram.h"
#include "observability/Tracer.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace slo;
using namespace slo::service;

struct AdvisoryDaemon::Conn {
  int Fd = -1;
  std::thread Thread;
  std::atomic<bool> Done{false};
};

namespace {

/// Flight-recorder event kinds (Code carries the detail).
enum FlightKind : uint16_t {
  FlightFrameIn = 1,  ///< Code = request opcode.
  FlightReplyOut = 2, ///< Code = first reply opcode; Dur = service time.
  FlightReadError = 3 ///< Code = ReadStatus.
};

FlightRecorder::Description describeFlightEvent(
    const FlightRecorder::Event &E) {
  FlightRecorder::Description D;
  switch (E.Kind) {
  case FlightFrameIn:
    D.Kind = "frame-in";
    D.Code = opcodeName(static_cast<Opcode>(E.Code));
    break;
  case FlightReplyOut:
    D.Kind = "reply-out";
    D.Code = opcodeName(static_cast<Opcode>(E.Code));
    break;
  case FlightReadError:
    D.Kind = "read-error";
    D.Code = readStatusName(static_cast<ReadStatus>(E.Code));
    break;
  default:
    D.Kind = std::to_string(E.Kind);
    D.Code = std::to_string(E.Code);
  }
  return D;
}

uint64_t microsSince(std::chrono::steady_clock::time_point Since,
                     std::chrono::steady_clock::time_point Now) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Now - Since)
          .count());
}

} // namespace

AdvisoryDaemon::AdvisoryDaemon(DaemonConfig Config)
    : Config(std::move(Config)),
      State(this->Config.Summary, this->Config.Shards) {}

AdvisoryDaemon::~AdvisoryDaemon() { stop(); }

void AdvisoryDaemon::bump(const char *Name, uint64_t N) {
  if (Config.Counters)
    Config.Counters->add(Name, N);
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

bool AdvisoryDaemon::listenTcp(uint16_t Port) {
  if (stopping() || ListenFd >= 0)
    return false;
  ListenFd = listenTcpLocalhost(Port, BoundPort);
  if (ListenFd < 0)
    return false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

bool AdvisoryDaemon::adoptConnection(int Fd) {
  if (stopping()) {
    ::close(Fd);
    return false;
  }
  auto C = std::make_unique<Conn>();
  C->Fd = Fd;
  Conn *Raw = C.get();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    if (stopping()) { // stop() may have begun after the check above.
      ::close(Fd);
      return false;
    }
    Live.fetch_add(1, std::memory_order_acq_rel);
    C->Thread = std::thread([this, Raw] { handleConnection(Raw); });
    Conns.push_back(std::move(C));
  }
  bump("service.connections_accepted");
  return true;
}

void AdvisoryDaemon::acceptLoop() {
  for (;;) {
    struct pollfd P;
    P.fd = ListenFd;
    P.events = POLLIN;
    P.revents = 0;
    // A bounded poll keeps the loop responsive to stop() even on
    // platforms where closing the listener does not wake a blocked
    // accept.
    int N = ::poll(&P, 1, 200);
    if (stopping())
      return;
    if (N <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (stopping())
        return;
      continue;
    }
    reapFinished();
    if (Live.load(std::memory_order_acquire) >= Config.MaxConnections) {
      // Over the cap: a structured rejection, not a silent RST and not
      // an unbounded thread army.
      bump("service.connections_rejected");
      writeFrame(Fd, Opcode::Error,
                 encodeErrorBody(ErrCode::Busy, "connection limit reached"),
                 Config.FrameTimeoutMillis);
      ::close(Fd);
      continue;
    }
    if (!adoptConnection(Fd))
      return;
  }
}

void AdvisoryDaemon::reapFinished() {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (auto It = Conns.begin(); It != Conns.end();) {
    if ((*It)->Done.load(std::memory_order_acquire)) {
      (*It)->Thread.join();
      It = Conns.erase(It);
    } else {
      ++It;
    }
  }
}

void AdvisoryDaemon::stop() {
  {
    std::lock_guard<std::mutex> Lock(StopMutex);
    if (!Stopped)
      drainLocked();
  }
  // Join a Shutdown-request stopper, unless we *are* it (then the owner
  // joins it later through this same path). The thread is moved out so
  // the mutex is not held across the join — the stopper's own stop()
  // ends here too.
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> SLock(StopperMutex);
    if (Stopper.joinable() &&
        Stopper.get_id() != std::this_thread::get_id())
      ToJoin = std::move(Stopper);
  }
  if (ToJoin.joinable())
    ToJoin.join();
}

void AdvisoryDaemon::drainLocked() {
  Stopped = true;
  Stopping.store(true, std::memory_order_release);

  // Stop accepting first: no new connections during the drain.
  if (ListenFd >= 0) {
    ::shutdown(ListenFd, SHUT_RDWR);
    if (Acceptor.joinable())
      Acceptor.join();
    ::close(ListenFd);
    ListenFd = -1;
  }

  // Wake every idle connection by shutting down its read side only:
  // a handler mid-request keeps its write side and flushes the
  // response (the graceful part of the drain), then sees EOF on the
  // next read and exits.
  {
    std::lock_guard<std::mutex> CLock(ConnMutex);
    for (const auto &C : Conns)
      ::shutdown(C->Fd, SHUT_RD);
  }

  // Join handlers outside ConnMutex (they briefly take it on exit).
  for (;;) {
    std::unique_ptr<Conn> C;
    {
      std::lock_guard<std::mutex> CLock(ConnMutex);
      if (Conns.empty())
        break;
      C = std::move(Conns.back());
      Conns.pop_back();
    }
    if (C->Thread.joinable())
      C->Thread.join();
  }
  bump("service.drained_stops");
}

void AdvisoryDaemon::requestStopAsync() {
  std::lock_guard<std::mutex> Lock(StopperMutex);
  if (StopRequested)
    return;
  StopRequested = true;
  Stopper = std::thread([this] { stop(); });
}

//===----------------------------------------------------------------------===//
// Connection handling
//===----------------------------------------------------------------------===//

void AdvisoryDaemon::handleConnection(Conn *C) {
  int Fd = C->Fd;
  uint64_t ConnId = NextConnId.fetch_add(1, std::memory_order_relaxed);
  FlightRecorder Recorder(Config.FlightRecorderDepth);
  // One bool gates every clock read on the request path: with no
  // histograms, no tracer, and the recorder disabled, the path is as
  // clock-free as before telemetry existed.
  const bool Timed = Config.Hist || Config.Trace || Recorder.enabled();
  auto dumpFlight = [&](const char *Reason) {
    if (!Recorder.enabled() || !Config.FlightDumpSink)
      return;
    bump("service.flight_dumps");
    Config.FlightDumpSink(Recorder.renderJson(
        Reason, "\"connection\": " + std::to_string(ConnId),
        describeFlightEvent));
  };
  for (;;) {
    Frame F;
    std::chrono::steady_clock::time_point FirstByte;
    ReadStatus S = readFrame(Fd, F, Config.MaxFrameBytes,
                             Config.IdleTimeoutMillis,
                             Config.FrameTimeoutMillis,
                             Timed ? &FirstByte : nullptr);
    if (S == ReadStatus::Eof) {
      if (stopping())
        dumpFlight("drain");
      break;
    }
    if (S != ReadStatus::Ok) {
      // Every malformed outcome is a diagnostic plus a closed
      // connection; accumulated state was never touched. The response
      // is best-effort — a peer that vanished mid-frame cannot read it.
      bump("service.frames_malformed");
      Recorder.push(FlightReadError, static_cast<uint16_t>(S), 0, 0);
      switch (S) {
      case ReadStatus::TooLarge:
        writeFrame(Fd, Opcode::Error,
                   encodeErrorBody(ErrCode::TooLarge,
                                   "declared frame length exceeds limit"),
                   Config.FrameTimeoutMillis);
        break;
      case ReadStatus::BadLength:
        writeFrame(Fd, Opcode::Error,
                   encodeErrorBody(ErrCode::Malformed,
                                   "frame length must be nonzero"),
                   Config.FrameTimeoutMillis);
        break;
      case ReadStatus::Timeout:
        bump("service.timeouts");
        writeFrame(Fd, Opcode::Error,
                   encodeErrorBody(ErrCode::Timeout,
                                   "peer stalled mid-frame"),
                   Config.FrameTimeoutMillis);
        break;
      default: // Truncated / Error: nobody is listening.
        break;
      }
      dumpFlight(readStatusName(S));
      break;
    }
    bump("service.frames");
    Recorder.push(FlightFrameIn, static_cast<uint16_t>(F.Op),
                  static_cast<uint32_t>(F.Body.size()), 0);
    std::string Response;
    bool KeepOpen;
    // A Traced request opens a stage trace even with telemetry off:
    // the client asked for spans explicitly, so the clock reads are
    // opted into per request.
    if (Timed || F.Op == Opcode::Traced) {
      if (!Timed)
        FirstByte = std::chrono::steady_clock::now();
      StageTrace ST(FirstByte);
      {
        // The frame read itself, ending where dispatch begins.
        StageTrace::Stage Read;
        Read.Name = "read";
        Read.DurMicros =
            microsSince(FirstByte, std::chrono::steady_clock::now());
        ST.Stages.push_back(Read);
      }
      KeepOpen = dispatch(C, F, Response, &ST);
      uint64_t DurUs =
          microsSince(FirstByte, std::chrono::steady_clock::now());
      if (Config.Hist) {
        Config.Hist->record(std::string("service.latency.") +
                                opcodeName(F.Op),
                            DurUs);
        for (const StageTrace::Stage &Stage : ST.Stages) {
          if (std::strcmp(Stage.Name, "lock-wait") == 0)
            Config.Hist->record("service.lock_wait_us", Stage.DurMicros);
          else if (std::strcmp(Stage.Name, "dwell") == 0)
            Config.Hist->record("service.ingest_dwell_us", Stage.DurMicros);
        }
      }
      uint16_t ReplyOp =
          Response.size() > 4 ? static_cast<uint8_t>(Response[4]) : 0;
      Recorder.push(FlightReplyOut, ReplyOp,
                    static_cast<uint32_t>(Response.size()),
                    DurUs > UINT32_MAX ? UINT32_MAX
                                       : static_cast<uint32_t>(DurUs));
    } else {
      KeepOpen = dispatch(C, F, Response, nullptr);
      uint16_t ReplyOp =
          Response.size() > 4 ? static_cast<uint8_t>(Response[4]) : 0;
      Recorder.push(FlightReplyOut, ReplyOp,
                    static_cast<uint32_t>(Response.size()), 0);
    }
    if (!Response.empty() &&
        !writeAll(Fd, Response, Config.FrameTimeoutMillis))
      break;
    if (!KeepOpen) {
      // CloseAfter on anything but an explicit Shutdown means a
      // protocol violation: the post-mortem case the recorder exists
      // for.
      if (F.Op != Opcode::Shutdown)
        dumpFlight("malformed-request");
      break;
    }
  }
  ::close(Fd);
  Live.fetch_sub(1, std::memory_order_acq_rel);
  C->Done.store(true, std::memory_order_release);
}

bool AdvisoryDaemon::dispatch(Conn *C, const Frame &F,
                              std::string &ResponseBytes, StageTrace *ST) {
  (void)C;
  bool CloseAfter = false;
  ResponseBytes = handleRequest(F, CloseAfter, ST);
  return !CloseAfter;
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

namespace {

/// RAII ingest ticket: acquired-or-rejected under the queue-depth cap.
class IngestTicket {
public:
  IngestTicket(std::atomic<unsigned> &InFlight, unsigned Depth)
      : InFlight(InFlight) {
    unsigned Cur = InFlight.fetch_add(1, std::memory_order_acq_rel);
    Held = Cur < Depth;
    if (!Held)
      InFlight.fetch_sub(1, std::memory_order_acq_rel);
  }
  ~IngestTicket() {
    if (Held)
      InFlight.fetch_sub(1, std::memory_order_acq_rel);
  }
  bool held() const { return Held; }

private:
  std::atomic<unsigned> &InFlight;
  bool Held;
};

std::string errorFrame(ErrCode Code, const std::string &Message) {
  return encodeFrame(Opcode::Error, encodeErrorBody(Code, Message));
}

std::string okFrame(const std::string &Text = std::string()) {
  std::string Body;
  appendString(Body, Text);
  return encodeFrame(Opcode::Ok, Body);
}

std::string textFrame(Opcode Op, const std::string &Text) {
  std::string Body;
  appendString(Body, Text);
  return encodeFrame(Op, Body);
}

} // namespace

std::string AdvisoryDaemon::handleIngest(const Frame &F, bool &CloseAfter,
                                         StageTrace *ST) {
  IngestTicket Ticket(IngestInFlight, Config.IngestQueueDepth);
  if (!Ticket.held()) {
    // Reject-with-retry-after: the request was NOT applied, the queue
    // never grows past its depth, and the client owns the backoff.
    bump("service.retry_after");
    std::string Body;
    appendU32(Body, Config.RetryAfterMillis);
    return encodeFrame(Opcode::RetryAfter, Body);
  }
  // Queue dwell: how long this request held ingest capacity. Tickets
  // never block, so dwell is the applied-work time under the cap —
  // the histogram that shows when the depth is the bottleneck.
  StageSpan Dwell(ST, "dwell");
  if (Config.TestIngestHook)
    Config.TestIngestHook();

  BodyReader R(F.Body);
  switch (F.Op) {
  case Opcode::PutSource: {
    std::string Module, Source;
    if (!R.readString(Module) || !R.readString(Source) || !R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad PutSource body");
    }
    bump("service.ingest_source");
    TraceSpan Span(Config.Trace, "service/put-source", "service");
    StateResult SR = State.putSource(Module, Source, ST);
    return SR.Ok ? okFrame() : errorFrame(ErrCode::CompileFailed, SR.Error);
  }
  case Opcode::PutSummary: {
    std::string Text;
    if (!R.readString(Text) || !R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad PutSummary body");
    }
    bump("service.ingest_summary");
    TraceSpan Span(Config.Trace, "service/put-summary", "service");
    StateResult SR = State.putSummary(Text, ST);
    return SR.Ok ? okFrame() : errorFrame(ErrCode::CorruptPayload, SR.Error);
  }
  case Opcode::PutProfile: {
    std::string Module, Text;
    if (!R.readString(Module) || !R.readString(Text) || !R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad PutProfile body");
    }
    bump("service.ingest_profile");
    TraceSpan Span(Config.Trace, "service/put-profile", "service");
    StateResult SR = State.putProfile(Module, Text, ST);
    if (SR.Ok)
      return okFrame();
    return errorFrame(SR.Error.rfind("unknown module", 0) == 0
                          ? ErrCode::UnknownModule
                          : ErrCode::CorruptPayload,
                      SR.Error);
  }
  default:
    CloseAfter = true;
    return errorFrame(ErrCode::Malformed, "not an ingest opcode");
  }
}

std::string AdvisoryDaemon::handleRequest(const Frame &F, bool &CloseAfter,
                                          StageTrace *ST) {
  CloseAfter = false;
  BodyReader R(F.Body);
  switch (F.Op) {
  case Opcode::Ping: {
    if (!R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "Ping carries no body");
    }
    bump("service.pings");
    std::string Body;
    appendU32(Body, ProtocolVersion);
    return encodeFrame(Opcode::Pong, Body);
  }

  case Opcode::PutSource:
  case Opcode::PutSummary:
  case Opcode::PutProfile:
    return handleIngest(F, CloseAfter, ST);

  case Opcode::GetAdvice: {
    uint8_t Json = 0;
    if (F.Body.size() > 1 || (F.Body.size() == 1 && !R.readU8(Json))) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad GetAdvice body");
    }
    bump("service.advice_requests");
    TraceSpan Span(Config.Trace, "service/get-advice", "service");
    return textFrame(Opcode::Advice, State.getAdvice(Json != 0, ST));
  }

  case Opcode::GetProfile: {
    std::string Module;
    if (!R.readString(Module) || !R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad GetProfile body");
    }
    bump("service.profile_requests");
    std::string Out;
    StateResult SR = State.getProfile(Module, Out, ST);
    return SR.Ok ? textFrame(Opcode::Profile, Out)
                 : errorFrame(ErrCode::UnknownModule, SR.Error);
  }

  case Opcode::GetMetrics: {
    uint8_t Format = 0;
    if (F.Body.size() > 1 || (F.Body.size() == 1 && !R.readU8(Format)) ||
        Format > 1) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad GetMetrics body");
    }
    bump("service.metrics_requests");
    std::string Text;
    if (Format == 0) {
      Text = "{\"counters\": ";
      Text += Config.Counters ? Config.Counters->renderJson() : "{}";
      Text += ", \"histograms\": ";
      Text += Config.Hist ? Config.Hist->renderJson() : "{}";
      Text += "}";
    } else {
      if (Config.Counters) {
        for (const auto &[Name, V] : Config.Counters->snapshot()) {
          std::string M = "slo_";
          for (char Ch : Name)
            M.push_back(std::isalnum(static_cast<unsigned char>(Ch)) ? Ch
                                                                     : '_');
          Text += "# TYPE " + M + " counter\n";
          Text += M + " " + std::to_string(V) + "\n";
        }
      }
      if (Config.Hist)
        Text += Config.Hist->renderPrometheus();
    }
    return textFrame(Opcode::Metrics, Text);
  }

  case Opcode::Traced: {
    TraceContext Ctx;
    Frame Inner;
    if (!decodeTracedRequest(R, Ctx, Inner, Config.MaxFrameBytes) ||
        !R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad Traced body");
    }
    if (Inner.Op == Opcode::Traced || Inner.Op == Opcode::Batch ||
        Inner.Op == Opcode::Shutdown) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed,
                        "opcode not allowed inside Traced");
    }
    bump("service.traced_requests");
    std::string InnerReply = handleRequest(Inner, CloseAfter, ST);
    // Return every stage recorded so far for this request — the outer
    // "read" plus whatever the inner handler added. The propagated ids
    // are echoed, never interpreted: a trace id must not be able to
    // change a single advice byte.
    std::vector<DaemonSpan> Spans;
    if (ST) {
      Spans.reserve(ST->Stages.size());
      for (const StageTrace::Stage &Stage : ST->Stages) {
        DaemonSpan S;
        S.Name = Stage.Name;
        S.StartMicros = Stage.StartMicros;
        S.DurMicros = Stage.DurMicros;
        Spans.push_back(std::move(S));
      }
    }
    return encodeFrame(Opcode::TracedReply,
                       encodeTracedReplyBody(Ctx, Spans, InnerReply));
  }

  case Opcode::GetStats: {
    if (!R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "GetStats carries no body");
    }
    bump("service.stats_requests");
    std::string Json = "{\"modules\": " + std::to_string(State.moduleCount());
    Json += ", \"counters\": ";
    Json += Config.Counters ? Config.Counters->renderJson() : "{}";
    Json += ", \"records\": " + State.renderRecordDigestsJson();
    Json += "}";
    return textFrame(Opcode::Stats, Json);
  }

  case Opcode::Batch: {
    uint32_t Count = 0;
    if (!R.readU32(Count) || Count > Config.MaxBatchFrames) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "bad Batch header");
    }
    bump("service.batches");
    std::string Inner;
    uint32_t Done = 0;
    for (uint32_t I = 0; I < Count; ++I) {
      Frame FI;
      if (!readInnerFrame(R, FI, Config.MaxFrameBytes)) {
        Inner += errorFrame(ErrCode::Malformed, "bad inner frame");
        ++Done;
        CloseAfter = true; // Remaining entries are unparseable.
        break;
      }
      if (FI.Op == Opcode::Batch || FI.Op == Opcode::Shutdown ||
          FI.Op == Opcode::Traced) {
        Inner += errorFrame(ErrCode::Malformed,
                            "opcode not allowed inside a batch");
        ++Done;
        CloseAfter = true;
        break;
      }
      bool InnerClose = false;
      Inner += handleRequest(FI, InnerClose, ST);
      ++Done;
      if (InnerClose) {
        CloseAfter = true;
        break;
      }
    }
    if (!CloseAfter && !R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "trailing bytes after batch");
    }
    std::string Body;
    appendU32(Body, Done);
    Body += Inner;
    return encodeFrame(Opcode::BatchReply, Body);
  }

  case Opcode::Shutdown: {
    if (!R.atEnd()) {
      CloseAfter = true;
      return errorFrame(ErrCode::Malformed, "Shutdown carries no body");
    }
    bump("service.shutdown_requests");
    CloseAfter = true;
    requestStopAsync();
    return okFrame("draining");
  }

  default:
    if (Config.InjectFrameBug) {
      // Deliberately broken dispatcher for the fuzz oracle's
      // non-vacuity check: garbage opcodes answered as Ping.
      std::string Body;
      appendU32(Body, ProtocolVersion);
      return encodeFrame(Opcode::Pong, Body);
    }
    bump("service.frames_malformed");
    CloseAfter = true;
    return errorFrame(ErrCode::UnknownOpcode, "unassigned opcode");
  }
}
