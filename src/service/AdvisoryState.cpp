//===- service/AdvisoryState.cpp - Sharded accumulated state --------------===//

#include "service/AdvisoryState.h"

#include "frontend/Frontend.h"
#include "ir/Module.h"
#include "profile/FeedbackIO.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <map>

using namespace slo;
using namespace slo::service;

//===----------------------------------------------------------------------===//
// Shard layout
//===----------------------------------------------------------------------===//

struct AdvisoryState::ModuleEntry {
  std::string Source;
  /// Own context per module: no type uniquing is shared across entries,
  /// so two shards never touch the same IR objects.
  std::unique_ptr<IRContext> Ctx;
  std::unique_ptr<slo::Module> M;
  ModuleSummary Summary;
  FeedbackFile Accum;
  uint64_t ProfilePayloads = 0;
};

struct AdvisoryState::StateShard {
  mutable std::mutex Mutex;
  std::map<std::string, ModuleEntry> Modules;
};

struct AdvisoryState::DigestShard {
  mutable std::mutex Mutex;
  std::map<std::pair<std::string, std::string>, RecordDigest> Records;
};

AdvisoryState::AdvisoryState(const SummaryOptions &SummaryOpts,
                             unsigned NumShards)
    : SummaryOpts(SummaryOpts), OptionsKey(summaryOptionsKey(SummaryOpts)) {
  if (NumShards == 0)
    NumShards = 1;
  for (unsigned I = 0; I < NumShards; ++I) {
    Shards.push_back(std::make_unique<StateShard>());
    DigestShards.push_back(std::make_unique<DigestShard>());
  }
}

AdvisoryState::~AdvisoryState() = default;

AdvisoryState::StateShard &AdvisoryState::shardFor(const std::string &Module) {
  return *Shards[fnv1a(Module) % Shards.size()];
}

const AdvisoryState::StateShard &
AdvisoryState::shardFor(const std::string &Module) const {
  return *Shards[fnv1a(Module) % Shards.size()];
}

//===----------------------------------------------------------------------===//
// Ingest
//===----------------------------------------------------------------------===//

StateResult AdvisoryState::putSource(const std::string &Name,
                                     const std::string &Source,
                                     StageTrace *ST) {
  // Compile and summarize outside any lock — this is the expensive part
  // and touches no shared state.
  StageSpan Compile(ST, "compile");
  auto Ctx = std::make_unique<IRContext>();
  std::vector<std::string> FeDiags;
  std::unique_ptr<slo::Module> M = compileMiniC(*Ctx, Name, Source, FeDiags);
  if (!M) {
    StateResult R;
    R.Error = FeDiags.empty() ? "compile failed" : FeDiags.front();
    return R;
  }
  ModuleSummary S = computeModuleSummary(*M, SummaryOpts);
  S.ModuleName = Name;
  S.SourceHash = sourceHashForTu(Source, OptionsKey);
  S.OptionsKey = OptionsKey;
  Compile.finish();

  StateShard &Shard = shardFor(Name);
  StageSpan LockWait(ST, "lock-wait");
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  LockWait.finish();
  ModuleEntry &E = Shard.Modules[Name];
  // Upsert replaces everything, including any accumulated profile: the
  // old profile was keyed against the old IR.
  E.Source = Source;
  // The old module must die before the context it was built in (its
  // values still reference the context-owned types and constants).
  E.M.reset();
  E.Ctx = std::move(Ctx);
  E.M = std::move(M);
  E.Summary = std::move(S);
  E.Accum = FeedbackFile();
  E.ProfilePayloads = 0;
  return {true, ""};
}

StateResult AdvisoryState::putSummary(const std::string &Text,
                                      StageTrace *ST) {
  StageSpan Parse(ST, "parse");
  ModuleSummary S;
  std::string Error;
  if (!deserializeModuleSummary(Text, S, Error)) {
    StateResult R;
    R.Error = Error;
    return R;
  }
  Parse.finish();
  StateShard &Shard = shardFor(S.ModuleName);
  StageSpan LockWait(ST, "lock-wait");
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  LockWait.finish();
  ModuleEntry &E = Shard.Modules[S.ModuleName];
  E.Source.clear();
  E.M.reset(); // Module before its context (see putSource).
  E.Ctx.reset();
  E.Summary = std::move(S);
  E.Accum = FeedbackFile();
  E.ProfilePayloads = 0;
  return {true, ""};
}

StateResult AdvisoryState::putProfile(const std::string &Name,
                                      const std::string &Text,
                                      StageTrace *ST) {
  StateShard &Shard = shardFor(Name);
  FeedbackFile Delta;
  std::map<std::string, RecordDigest> PerRecord;
  const slo::Module *M = nullptr;
  {
    // Parse under the shard lock: deserializeFeedback matches symbols
    // against the entry's IR, which a concurrent putSource may replace.
    StageSpan LockWait(ST, "lock-wait");
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    LockWait.finish();
    auto It = Shard.Modules.find(Name);
    if (It == Shard.Modules.end() || !It->second.M) {
      StateResult R;
      R.Error = It == Shard.Modules.end()
                    ? "unknown module '" + Name + "'"
                    : "module '" + Name + "' is summary-only (no IR to "
                      "match a profile against)";
      return R;
    }
    M = It->second.M.get();
    StageSpan Parse(ST, "parse");
    DiagnosticEngine Diags;
    FeedbackMatchResult MR = deserializeFeedback(*M, Text, Delta, &Diags);
    if (!MR.Ok) {
      // Atomic rejection: Delta may be garbage, the accumulation was
      // never touched.
      StateResult R;
      R.Error = MR.Error.empty() ? "corrupt feedback payload" : MR.Error;
      return R;
    }
    Parse.finish();
    StageSpan Merge(ST, "merge");
    It->second.Accum.merge(Delta); // The PR 5 multi-run merge path.
    Merge.finish();
    ++It->second.ProfilePayloads;
    // Group the delta's field events by record name while the shard
    // lock still pins the module's IR alive — Delta keys its stats by
    // RecordType pointers into the entry's context, and a concurrent
    // upsert frees that context the moment we unlock.
    for (const auto &Entry : Delta.allFieldStats()) {
      const RecordType *Rec = Entry.first.first;
      RecordDigest &D = PerRecord[Rec->getRecordName()];
      D.Loads += Entry.second.Loads;
      D.Stores += Entry.second.Stores;
      D.Misses += Entry.second.Misses;
    }
  }
  bumpDigests(Name, PerRecord);
  return {true, ""};
}

void AdvisoryState::bumpDigests(
    const std::string &ModuleName,
    const std::map<std::string, RecordDigest> &PerRecord) {
  // One digest-shard lock per record, never the module shard: the hot
  // ingest path touches only the shard its key hashes to.
  for (const auto &Entry : PerRecord) {
    std::pair<std::string, std::string> Key{ModuleName, Entry.first};
    DigestShard &Shard =
        *DigestShards[fnv1a(Entry.first, fnv1a(ModuleName)) %
                      DigestShards.size()];
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    RecordDigest &D = Shard.Records[Key];
    D.Module = ModuleName;
    D.Record = Entry.first;
    D.Loads += Entry.second.Loads;
    D.Stores += Entry.second.Stores;
    D.Misses += Entry.second.Misses;
    D.MergedPayloads += 1;
  }
}

//===----------------------------------------------------------------------===//
// Serving
//===----------------------------------------------------------------------===//

std::string AdvisoryState::getAdvice(bool Json, StageTrace *ST) const {
  // Snapshot summaries shard by shard, then order by module name: the
  // merged advice must not depend on which client's upload won which
  // race, only on the set of modules ingested.
  std::vector<ModuleSummary> Summaries;
  {
    StageSpan LockWait(ST, "lock-wait");
    for (const auto &Shard : Shards) {
      std::lock_guard<std::mutex> Lock(Shard->Mutex);
      for (const auto &Entry : Shard->Modules)
        Summaries.push_back(Entry.second.Summary);
    }
  }
  std::sort(Summaries.begin(), Summaries.end(),
            [](const ModuleSummary &A, const ModuleSummary &B) {
              return A.ModuleName < B.ModuleName;
            });
  StageSpan Merge(ST, "merge");
  PlannerOptions Planner;
  Planner.HotnessFromProfile = false; // Static schemes only (as one-shot).
  MergedProgram MP = mergeModuleSummaries(Summaries, Planner);
  Merge.finish();
  StageSpan Render(ST, "render");
  return Json ? renderAdviceJson(MP, Summaries, SummaryOpts.Scheme)
              : renderAdviceText(MP, Summaries, SummaryOpts.Scheme);
}

StateResult AdvisoryState::getProfile(const std::string &Name,
                                      std::string &Out,
                                      StageTrace *ST) const {
  const StateShard &Shard = shardFor(Name);
  StageSpan LockWait(ST, "lock-wait");
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  LockWait.finish();
  auto It = Shard.Modules.find(Name);
  if (It == Shard.Modules.end() || !It->second.M) {
    StateResult R;
    R.Error = "unknown module '" + Name + "'";
    return R;
  }
  StageSpan Render(ST, "render");
  Out = serializeFeedback(*It->second.M, It->second.Accum);
  return {true, ""};
}

std::string AdvisoryState::renderRecordDigestsJson() const {
  std::map<std::pair<std::string, std::string>, RecordDigest> All;
  for (const auto &Shard : DigestShards) {
    std::lock_guard<std::mutex> Lock(Shard->Mutex);
    for (const auto &Entry : Shard->Records)
      All[Entry.first] = Entry.second;
  }
  std::string O = "[";
  bool First = true;
  for (const auto &Entry : All) {
    const RecordDigest &D = Entry.second;
    if (!First)
      O += ",";
    First = false;
    O += "{\"module\": \"" + escapeJson(D.Module) + "\", \"record\": \"" +
         escapeJson(D.Record) + "\", \"loads\": " + std::to_string(D.Loads) +
         ", \"stores\": " + std::to_string(D.Stores) +
         ", \"misses\": " + std::to_string(D.Misses) +
         ", \"payloads\": " + std::to_string(D.MergedPayloads) + "}";
  }
  return O + "]";
}

size_t AdvisoryState::moduleCount() const {
  size_t N = 0;
  for (const auto &Shard : Shards) {
    std::lock_guard<std::mutex> Lock(Shard->Mutex);
    N += Shard->Modules.size();
  }
  return N;
}

uint64_t AdvisoryState::fingerprint() const {
  // Deterministic over content, independent of shard layout and ingest
  // order: render every module's state into a string, sort, hash.
  std::vector<std::string> Rows;
  for (const auto &Shard : Shards) {
    std::lock_guard<std::mutex> Lock(Shard->Mutex);
    for (const auto &Entry : Shard->Modules) {
      const ModuleEntry &E = Entry.second;
      std::string Row = "module " + Entry.first + "\n";
      Row += E.Source;
      Row += serializeModuleSummary(E.Summary);
      if (E.M)
        Row += serializeFeedback(*E.M, E.Accum);
      Row += "payloads " + std::to_string(E.ProfilePayloads) + "\n";
      Rows.push_back(std::move(Row));
    }
  }
  Rows.push_back(renderRecordDigestsJson());
  std::sort(Rows.begin(), Rows.end());
  uint64_t H = fnv1a("advisory-state-v1");
  for (const std::string &Row : Rows)
    H = fnv1a(Row, H);
  return H;
}
