//===- service/ServiceClient.cpp - Synchronous protocol client ------------===//

#include "service/ServiceClient.h"

#include <chrono>
#include <thread>
#include <unistd.h>

using namespace slo;
using namespace slo::service;

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

namespace {

ServiceReply decodeReply(const Frame &F, uint32_t MaxFrameBytes) {
  ServiceReply R;
  R.Op = F.Op;
  BodyReader B(F.Body);
  switch (F.Op) {
  case Opcode::Ok:
  case Opcode::Advice:
  case Opcode::Profile:
  case Opcode::Stats:
    R.Transport = B.readString(R.Text) && B.atEnd();
    break;
  case Opcode::Error:
    R.Transport = B.readU16(R.Code) && B.readString(R.Message) && B.atEnd();
    break;
  case Opcode::RetryAfter:
    R.Transport = B.readU32(R.RetryMillis) && B.atEnd();
    break;
  case Opcode::Pong:
    R.Transport = B.readU32(R.Version) && B.atEnd();
    break;
  case Opcode::BatchReply: {
    uint32_t Count = 0;
    if (!B.readU32(Count))
      break;
    bool AllOk = true;
    for (uint32_t I = 0; I < Count && AllOk; ++I) {
      Frame Inner;
      if (!readInnerFrame(B, Inner, MaxFrameBytes)) {
        AllOk = false;
        break;
      }
      R.Inner.push_back(decodeReply(Inner, MaxFrameBytes));
      AllOk = R.Inner.back().Transport;
    }
    R.Transport = AllOk && B.atEnd();
    break;
  }
  case Opcode::Metrics:
    R.Transport = B.readString(R.Text) && B.atEnd();
    break;
  case Opcode::TracedReply: {
    TraceContext Ctx;
    std::vector<DaemonSpan> Spans;
    Frame Inner;
    if (!decodeTracedReply(B, Ctx, Spans, Inner, MaxFrameBytes) ||
        !B.atEnd())
      break;
    // Unwrap: the caller sees the inner response with the trace fields
    // attached (the daemon never nests Traced inside Traced).
    R = decodeReply(Inner, MaxFrameBytes);
    R.WasTraced = true;
    R.TraceId = Ctx.TraceId;
    R.RequestId = Ctx.RequestId;
    R.Spans = std::move(Spans);
    break;
  }
  default:
    // An unexpected response opcode is still a decoded frame; leave
    // Transport false so callers treat it as a protocol violation.
    break;
  }
  return R;
}

} // namespace

ServiceReply ServiceClient::call(Opcode Op, const std::string &Body) {
  return rawCall(encodeFrame(Op, Body));
}

ServiceReply ServiceClient::rawCall(const std::string &FrameBytes) {
  ServiceReply R;
  if (Fd < 0)
    return R;
  if (!writeAll(Fd, FrameBytes, TimeoutMillis))
    return R;
  Frame F;
  ReadStatus S =
      readFrame(Fd, F, DefaultMaxFrameBytes, TimeoutMillis, TimeoutMillis);
  if (S != ReadStatus::Ok)
    return R;
  return decodeReply(F, DefaultMaxFrameBytes);
}

ServiceReply ServiceClient::ping() { return call(Opcode::Ping, ""); }

ServiceReply ServiceClient::putSource(const std::string &Module,
                                      const std::string &Source) {
  return call(Opcode::PutSource, encodePutSource(Module, Source));
}

ServiceReply ServiceClient::putSummary(const std::string &SummaryText) {
  std::string Body;
  appendString(Body, SummaryText);
  return call(Opcode::PutSummary, Body);
}

ServiceReply ServiceClient::putProfile(const std::string &Module,
                                       const std::string &Text) {
  return call(Opcode::PutProfile, encodePutProfile(Module, Text));
}

ServiceReply ServiceClient::getAdvice(bool Json) {
  std::string Body;
  Body.push_back(Json ? 1 : 0);
  return call(Opcode::GetAdvice, Body);
}

ServiceReply ServiceClient::getProfile(const std::string &Module) {
  std::string Body;
  appendString(Body, Module);
  return call(Opcode::GetProfile, Body);
}

ServiceReply ServiceClient::getStats() { return call(Opcode::GetStats, ""); }

ServiceReply ServiceClient::getMetrics(uint8_t Format) {
  std::string Body;
  Body.push_back(static_cast<char>(Format));
  return call(Opcode::GetMetrics, Body);
}

ServiceReply ServiceClient::shutdown() { return call(Opcode::Shutdown, ""); }

ServiceReply ServiceClient::tracedCall(Opcode Op, const std::string &Body,
                                       uint64_t TraceId, uint64_t RequestId) {
  TraceContext Ctx;
  Ctx.TraceId = TraceId;
  Ctx.RequestId = RequestId;
  return call(Opcode::Traced, encodeTraced(Ctx, Op, Body));
}

ServiceReply
ServiceClient::batch(const std::vector<std::pair<Opcode, std::string>> &Items) {
  std::string Body;
  appendU32(Body, static_cast<uint32_t>(Items.size()));
  for (const auto &Item : Items)
    Body += encodeFrame(Item.first, Item.second);
  return call(Opcode::Batch, Body);
}

ServiceReply ServiceClient::putWithRetry(Opcode Op, const std::string &Body,
                                         unsigned MaxAttempts,
                                         unsigned *RetriesOut) {
  ServiceReply R;
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    R = call(Op, Body);
    if (!R.Transport || R.Op != Opcode::RetryAfter)
      return R;
    if (RetriesOut)
      ++*RetriesOut;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        R.RetryMillis ? R.RetryMillis : 1));
  }
  return R;
}
