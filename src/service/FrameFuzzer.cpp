//===- service/FrameFuzzer.cpp - Protocol frame fuzzer --------------------===//

#include "service/FrameFuzzer.h"

#include "service/Protocol.h"

#include <unistd.h>

using namespace slo;
using namespace slo::service;

namespace {

/// splitmix64: deterministic, seedable, no global state.
uint64_t mix(uint64_t &S) {
  S += 0x9e3779b97f4a7c15ull;
  uint64_t Z = S;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void appendRandomBytes(std::string &Out, uint64_t &S, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Out.push_back(static_cast<char>(mix(S) & 0xff));
}

/// An opcode value no request is assigned to.
uint8_t garbageOpcode(uint64_t &S) {
  for (;;) {
    uint8_t Op = static_cast<uint8_t>(mix(S) & 0xff);
    switch (static_cast<Opcode>(Op)) {
    case Opcode::Ping:
    case Opcode::PutSource:
    case Opcode::PutSummary:
    case Opcode::PutProfile:
    case Opcode::GetAdvice:
    case Opcode::GetProfile:
    case Opcode::GetStats:
    case Opcode::Batch:
    case Opcode::Shutdown:
    case Opcode::GetMetrics:
    case Opcode::Traced:
      continue;
    default:
      return Op;
    }
  }
}

enum Category : unsigned {
  TruncatedLengthPrefix = 0,
  ZeroLength = 1,
  OversizedLength = 2,
  GarbageOpcode = 3,
  HostileBody = 4,
  MidFrameDisconnect = 5,
  ByteSoup = 6,
  MalformedTraceContext = 7,
  NumCategories = 8,
};

bool successOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Ok:
  case Opcode::Advice:
  case Opcode::Profile:
  case Opcode::Stats:
  case Opcode::Pong:
  case Opcode::BatchReply:
  case Opcode::Metrics:
  case Opcode::TracedReply:
    return true;
  default:
    return false;
  }
}

} // namespace

const char *slo::service::fuzzCategoryName(unsigned Category) {
  switch (Category) {
  case TruncatedLengthPrefix:
    return "truncated-length-prefix";
  case ZeroLength:
    return "zero-length";
  case OversizedLength:
    return "oversized-length";
  case GarbageOpcode:
    return "garbage-opcode";
  case HostileBody:
    return "hostile-body";
  case MidFrameDisconnect:
    return "mid-frame-disconnect";
  case ByteSoup:
    return "byte-soup";
  case MalformedTraceContext:
    return "malformed-trace-context";
  default:
    return "unknown";
  }
}

std::string slo::service::fuzzFrameBytes(uint64_t Seed, size_t Index,
                                         unsigned &CategoryOut) {
  uint64_t S = Seed * 0x2545f4914f6cdd1dull + Index + 1;
  (void)mix(S); // Decorrelate adjacent indices.
  CategoryOut = static_cast<unsigned>(Index % NumCategories);
  std::string Out;
  switch (CategoryOut) {
  case TruncatedLengthPrefix:
    // 1..3 bytes of a would-be length prefix, then disconnect.
    appendRandomBytes(Out, S, 1 + (mix(S) % 3));
    break;
  case ZeroLength:
    appendU32(Out, 0);
    break;
  case OversizedLength: {
    // Declared length past any sane ceiling; a correct daemon rejects
    // it before reading a single body byte.
    appendU32(Out, (8u << 20) + static_cast<uint32_t>(mix(S) & 0xffffff));
    appendRandomBytes(Out, S, 8);
    break;
  }
  case GarbageOpcode: {
    size_t BodyLen = mix(S) % 32;
    appendU32(Out, static_cast<uint32_t>(1 + BodyLen));
    Out.push_back(static_cast<char>(garbageOpcode(S)));
    appendRandomBytes(Out, S, BodyLen);
    break;
  }
  case HostileBody: {
    // A real opcode whose body cannot parse: inner string lengths that
    // overrun the frame, or nonempty bodies where none is allowed.
    switch (mix(S) % 3) {
    case 0: {
      // PutSource with an inner length claiming ~4 GiB.
      std::string Body;
      appendU32(Body, 0xfffffff0u);
      appendRandomBytes(Body, S, 6);
      Out = encodeFrame(Opcode::PutSource, Body);
      break;
    }
    case 1: {
      // GetAdvice with an over-long body.
      std::string Body;
      appendRandomBytes(Body, S, 2 + (mix(S) % 8));
      Out = encodeFrame(Opcode::GetAdvice, Body);
      break;
    }
    default: {
      // Ping with a body.
      std::string Body;
      appendRandomBytes(Body, S, 1 + (mix(S) % 16));
      Out = encodeFrame(Opcode::Ping, Body);
      break;
    }
    }
    break;
  }
  case MidFrameDisconnect: {
    // Declares a plausible length, delivers a fraction, disconnects.
    uint32_t Declared = 64 + static_cast<uint32_t>(mix(S) % 1024);
    appendU32(Out, Declared);
    Out.push_back(static_cast<char>(Opcode::PutProfile));
    appendRandomBytes(Out, S, mix(S) % (Declared / 2));
    break;
  }
  case ByteSoup:
    appendRandomBytes(Out, S, 1 + (mix(S) % 64));
    break;
  default: { // MalformedTraceContext
    // Hostile trace-context extensions in a Traced wrapper. None of
    // these may crash the daemon, corrupt the fingerprint, or draw a
    // success reply — and in particular a Traced(Shutdown) must NOT
    // start a drain (the interleaved probes would catch a dead daemon).
    TraceContext Ctx;
    Ctx.TraceId = mix(S);
    Ctx.RequestId = mix(S);
    std::string Body;
    switch (mix(S) % 6) {
    case 0: {
      // Ext length overrunning the body.
      appendU32(Body, 0xfffffff0u);
      appendRandomBytes(Body, S, 8);
      break;
    }
    case 1: {
      // Declared extension version 0 (reserved / invalid).
      appendU32(Body, 17);
      Body.push_back(0);
      appendRandomBytes(Body, S, 16);
      break;
    }
    case 2: {
      // Ext length below the known fields.
      uint32_t Short = static_cast<uint32_t>(mix(S) % 17);
      appendU32(Body, Short);
      appendRandomBytes(Body, S, Short);
      break;
    }
    case 3:
      // Well-formed wrapper around a nested Traced.
      Body = encodeTraced(Ctx, Opcode::Traced,
                          encodeTraced(Ctx, Opcode::Ping, ""));
      break;
    case 4:
      // Well-formed wrapper around Shutdown (forbidden inside Traced).
      Body = encodeTraced(Ctx, Opcode::Shutdown, "");
      break;
    default: {
      // Valid extension, then a truncated / garbage inner frame.
      appendU32(Body, 17);
      Body.push_back(1);
      appendU64(Body, Ctx.TraceId);
      appendU64(Body, Ctx.RequestId);
      appendRandomBytes(Body, S, mix(S) % 4);
      break;
    }
    }
    Out = encodeFrame(Opcode::Traced, Body);
    break;
  }
  }
  return Out;
}

bool slo::service::runFrameFuzz(const FrameFuzzOptions &Options,
                                const std::function<int()> &Connect,
                                FrameFuzzReport &Report) {
  auto Violate = [&](const std::string &What) {
    ++Report.Violations;
    if (Report.FirstViolation.empty())
      Report.FirstViolation = What;
  };

  auto Probe = [&]() {
    int Fd = Connect();
    if (Fd < 0) {
      Violate("liveness probe could not connect");
      return;
    }
    bool Alive = false;
    if (writeFrame(Fd, Opcode::Ping, "", Options.ReplyTimeoutMillis)) {
      Frame F;
      if (readFrame(Fd, F, Options.MaxFrameBytes, Options.ReplyTimeoutMillis,
                    Options.ReplyTimeoutMillis) == ReadStatus::Ok &&
          F.Op == Opcode::Pong)
        Alive = true;
    }
    ::close(Fd);
    if (Alive)
      ++Report.ProbesOk;
    else
      Violate("liveness probe got no Pong (daemon wedged or dead)");
  };

  for (size_t I = 0; I < Options.Count; ++I) {
    unsigned Category = 0;
    std::string Bytes = fuzzFrameBytes(Options.Seed, I, Category);

    int Fd = Connect();
    if (Fd < 0) {
      Violate("injection could not connect");
      continue;
    }
    ++Report.Sent;
    // The peer may legitimately reject and close mid-write; ignore
    // write errors.
    (void)writeAll(Fd, Bytes, Options.ReplyTimeoutMillis);

    bool DisconnectNow = Category == TruncatedLengthPrefix ||
                         Category == MidFrameDisconnect ||
                         Category == ByteSoup;
    if (!DisconnectNow) {
      Frame F;
      ReadStatus S =
          readFrame(Fd, F, Options.MaxFrameBytes, Options.ReplyTimeoutMillis,
                    Options.ReplyTimeoutMillis);
      if (S == ReadStatus::Ok) {
        ++Report.Replied;
        // A malformed injection must never draw a success reply — only
        // a structured Error (or silence/close). This is the check the
        // InjectFrameBug daemon trips.
        if (successOpcode(F.Op))
          Violate(std::string("success reply (") + opcodeName(F.Op) +
                  ") to malformed injection category " +
                  fuzzCategoryName(Category));
      }
    }
    ::close(Fd);

    if (Options.ProbeEvery && (I + 1) % Options.ProbeEvery == 0)
      Probe();
  }
  Probe(); // The daemon must still answer after the whole sweep.
  return Report.Violations == 0;
}
