//===- service/Protocol.h - Advisory daemon wire protocol ------*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol of the advisory daemon (DESIGN.md
/// §13). One frame on the wire is
///
///   u32 Length (LE)   count of the bytes that follow: opcode + body
///   u8  Opcode
///   u8  Body[Length - 1]
///
/// Length 0 and Length > MaxFrameBytes are protocol violations; the
/// receiver rejects them without reading a body, so a hostile length
/// prefix can never make the daemon allocate or wait for gigabytes.
/// Strings inside bodies are u32-length-prefixed byte runs; integers are
/// little-endian. The same encoding runs over TCP on localhost and over
/// a socketpair in-process in the tests — framing is transport-blind.
///
/// Parsing is split from I/O: decode functions work on byte buffers and
/// are shared by the daemon, the client, and the frame fuzzer (which
/// needs to build *malformed* frames byte by byte). I/O helpers do
/// bounded, poll-timed reads so a stalled or hostile peer costs a
/// timeout, never a wedge.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SERVICE_PROTOCOL_H
#define SLO_SERVICE_PROTOCOL_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace slo {
namespace service {

/// Protocol version, echoed in Pong responses. Bumped on any wire-format
/// change. Version 2 added GetMetrics/Metrics and the Traced/TracedReply
/// trace-context wrappers; version-1 clients interoperate unchanged (the
/// new opcodes are strictly opt-in).
constexpr uint32_t ProtocolVersion = 2;

/// Default ceiling on Length (opcode + body). A declared length above
/// the receiver's ceiling is rejected before any body byte is read.
constexpr uint32_t DefaultMaxFrameBytes = 4u << 20;

/// Request opcodes (client -> daemon).
enum class Opcode : uint8_t {
  Ping = 0x01,       ///< Body: empty. Response: Pong.
  PutSource = 0x02,  ///< Body: str module, str minic-source. Upserts the
                     ///< module: compile + summarize. Response: Ok/Error.
  PutSummary = 0x03, ///< Body: str serialized ModuleSummary. Response:
                     ///< Ok/Error (corrupt summaries change nothing).
  PutProfile = 0x04, ///< Body: str module, str feedback text. Merged into
                     ///< the module's accumulated profile. Response:
                     ///< Ok/Error.
  GetAdvice = 0x05,  ///< Body: u8 json flag. Response: Advice.
  GetProfile = 0x06, ///< Body: str module. Response: Profile (the
                     ///< accumulated feedback, re-serialized).
  GetStats = 0x07,   ///< Body: empty. Response: Stats (service counters +
                     ///< per-(module, record) ingest digests, JSON).
  Batch = 0x08,      ///< Body: u32 count, then count inner frames.
                     ///< Response: BatchReply with count inner responses.
  Shutdown = 0x09,   ///< Body: empty. Response: Ok, then the daemon
                     ///< drains and stops (admin; slo_client --shutdown).
  GetMetrics = 0x0A, ///< Body: empty, or u8 format (0 = JSON, 1 =
                     ///< Prometheus text). Response: Metrics (counters +
                     ///< histogram snapshots).
  Traced = 0x0B,     ///< Body: trace-context extension + one inner
                     ///< request frame (see encodeTraced). Response:
                     ///< TracedReply wrapping the inner response plus
                     ///< the daemon's per-stage spans. Traced, Batch and
                     ///< Shutdown may not nest inside.

  // Response opcodes (daemon -> client).
  Ok = 0x80,         ///< Body: str text (may be empty).
  Error = 0x81,      ///< Body: u16 code, str message. Protocol-level
                     ///< errors additionally close the connection.
  RetryAfter = 0x82, ///< Body: u32 millis. Ingest backpressure: the
                     ///< request was NOT applied; retry after the delay.
  Advice = 0x83,     ///< Body: str advice text or JSON.
  Profile = 0x84,    ///< Body: str serialized feedback.
  Stats = 0x85,      ///< Body: str JSON.
  BatchReply = 0x86, ///< Body: u32 count, then count inner frames.
  Pong = 0x87,       ///< Body: u32 protocol version.
  Metrics = 0x88,    ///< Body: str JSON or Prometheus text.
  TracedReply = 0x89,///< Body: echoed trace-context + span list + one
                     ///< inner response frame (see decodeTracedReply).
};

const char *opcodeName(Opcode Op);

/// Error codes carried by Error responses. Protocol violations
/// (Malformed, TooLarge, UnknownOpcode) close the connection after the
/// response; request-level errors leave it open.
enum class ErrCode : uint16_t {
  Malformed = 1,     ///< Frame or body failed to parse.
  TooLarge = 2,      ///< Declared length above the daemon's ceiling.
  UnknownOpcode = 3, ///< Well-formed frame, unassigned opcode.
  CompileFailed = 4, ///< PutSource: the TU did not compile.
  UnknownModule = 5, ///< PutProfile/GetProfile for a module never put.
  CorruptPayload = 6,///< PutSummary/PutProfile payload rejected; the
                     ///< accumulated state is untouched.
  Busy = 7,          ///< Connection cap reached.
  ShuttingDown = 8,  ///< Daemon is draining; no new requests.
  Timeout = 9,       ///< The peer stalled mid-frame.
};

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

void appendU16(std::string &Out, uint16_t V);
void appendU32(std::string &Out, uint32_t V);
void appendU64(std::string &Out, uint64_t V);
void appendString(std::string &Out, const std::string &S);

/// One complete frame: length prefix, opcode, body.
std::string encodeFrame(Opcode Op, const std::string &Body = std::string());

/// Body builders for the compound requests.
std::string encodePutSource(const std::string &Module,
                            const std::string &Source);
std::string encodePutProfile(const std::string &Module,
                             const std::string &Feedback);
std::string encodeErrorBody(ErrCode Code, const std::string &Message);

//===----------------------------------------------------------------------===//
// Trace-context extension (the Traced / TracedReply wrappers)
//===----------------------------------------------------------------------===//

/// Version of the trace-context extension carried by Traced frames.
/// Independent of ProtocolVersion: the extension is length-prefixed, so
/// a receiver skips fields added by newer versions it does not know.
constexpr uint8_t TraceContextVersion = 1;

/// Client-propagated request identity. The daemon echoes both ids in
/// the TracedReply and tags its span tree with them; it never interprets
/// them (and in particular they can never influence advice bytes).
struct TraceContext {
  uint8_t Version = TraceContextVersion;
  uint64_t TraceId = 0;
  uint64_t RequestId = 0;
};

/// One daemon-side stage span, returned in-band in a TracedReply.
/// StartMicros is relative to the daemon's receipt of the request, which
/// sidesteps cross-process clock sync: the client re-bases the spans
/// inside its own request span when merging traces.
struct DaemonSpan {
  std::string Name;
  uint64_t StartMicros = 0;
  uint64_t DurMicros = 0;
};

/// Body of a Traced request: u32 ext length, then the extension
/// (u8 version, u64 trace id, u64 request id, future fields skipped via
/// the length), then the inner frame (u32 length, opcode, body).
std::string encodeTraced(const TraceContext &Ctx, Opcode InnerOp,
                         const std::string &InnerBody);

/// Body of a TracedReply: u32 ext length, then the echoed extension plus
/// u32 span count and the spans (str name, u64 start, u64 dur), then the
/// inner response frame. \p InnerReplyFrame is a complete encoded frame.
std::string encodeTracedReplyBody(const TraceContext &Ctx,
                                  const std::vector<DaemonSpan> &Spans,
                                  const std::string &InnerReplyFrame);

class BodyReader;
struct Frame;

/// Decodes a Traced request body. Returns false on malformed framing
/// (bad ext length, unknown version 0, truncated inner frame). Trailing
/// bytes after the inner frame are the caller's atEnd() check.
bool decodeTracedRequest(BodyReader &R, TraceContext &Ctx, Frame &Inner,
                         uint32_t MaxFrameBytes);

/// Decodes a TracedReply body (extension, spans, inner response frame).
bool decodeTracedReply(BodyReader &R, TraceContext &Ctx,
                       std::vector<DaemonSpan> &Spans, Frame &Inner,
                       uint32_t MaxFrameBytes);

//===----------------------------------------------------------------------===//
// Decoding (buffer-level, shared by daemon / client / fuzzer)
//===----------------------------------------------------------------------===//

/// Bounds-checked cursor over a frame body. Every read either succeeds
/// or marks the cursor failed; a failed cursor never reads further, so
/// parse code can chain reads and test once.
class BodyReader {
public:
  BodyReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit BodyReader(const std::string &S)
      : Data(reinterpret_cast<const uint8_t *>(S.data())), Size(S.size()) {}

  bool readU8(uint8_t &V);
  bool readU16(uint16_t &V);
  bool readU32(uint32_t &V);
  bool readU64(uint64_t &V);
  /// Skips \p N bytes (unknown forward-compat extension fields).
  bool skip(size_t N);
  /// A u32-length-prefixed byte run. Fails when the declared length
  /// overruns the remaining body (the classic hostile-length bug).
  bool readString(std::string &V);

  bool failed() const { return Failed; }
  /// Every body byte must be consumed: trailing garbage is a protocol
  /// violation, not padding.
  bool atEnd() const { return !Failed && Pos == Size; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// A decoded frame: opcode plus raw body bytes.
struct Frame {
  Opcode Op = Opcode::Ping;
  std::string Body;
};

/// Decodes one inner frame (u32 length, opcode, body) from a Batch body
/// cursor. Returns false on malformed framing.
bool readInnerFrame(BodyReader &R, Frame &F, uint32_t MaxFrameBytes);

//===----------------------------------------------------------------------===//
// Frame I/O over a file descriptor
//===----------------------------------------------------------------------===//

/// Outcome of reading one frame from a peer.
enum class ReadStatus {
  Ok,        ///< A complete frame was read (well-formed at frame level).
  Eof,       ///< Clean close before any byte of a new frame.
  Truncated, ///< The peer closed mid-frame.
  TooLarge,  ///< Declared length exceeded the ceiling; body not read.
  BadLength, ///< Declared length 0 (a frame must carry an opcode).
  Timeout,   ///< The peer stalled past the deadline mid-frame.
  Error,     ///< Socket error.
};

const char *readStatusName(ReadStatus S);

/// Reads one frame from \p Fd. Blocks up to \p IdleTimeoutMillis for the
/// first byte (0 = forever, woken by ::shutdown), then up to
/// \p FrameTimeoutMillis for the remainder of the frame (0 = forever).
/// On TooLarge the declared length is left unread in the stream — the
/// caller must treat the connection as poisoned and close it.
/// \p FirstByteAt, when non-null, receives the time the first byte of
/// the frame arrived (only meaningful for Ok); null readers pay no
/// clock read, preserving the telemetry-off contract.
ReadStatus readFrame(int Fd, Frame &F, uint32_t MaxFrameBytes,
                     int IdleTimeoutMillis, int FrameTimeoutMillis,
                     std::chrono::steady_clock::time_point *FirstByteAt =
                         nullptr);

/// Writes all of \p Bytes to \p Fd. Returns false on error or on a
/// write stalled past \p TimeoutMillis (0 = forever).
bool writeAll(int Fd, const std::string &Bytes, int TimeoutMillis = 0);

/// Convenience: encode + writeAll.
bool writeFrame(int Fd, Opcode Op, const std::string &Body,
                int TimeoutMillis = 0);

//===----------------------------------------------------------------------===//
// Sockets
//===----------------------------------------------------------------------===//

/// An AF_UNIX stream socketpair for in-process transports; returns false
/// on failure. Both fds are close-on-exec.
bool makeSocketPair(int Fds[2]);

/// Binds a listening TCP socket on 127.0.0.1:\p Port (0 = ephemeral) and
/// returns the fd, or -1. \p BoundPort receives the actual port.
int listenTcpLocalhost(uint16_t Port, uint16_t &BoundPort);

/// Connects to 127.0.0.1:\p Port; returns the fd or -1.
int connectTcpLocalhost(uint16_t Port);

} // namespace service
} // namespace slo

#endif // SLO_SERVICE_PROTOCOL_H
