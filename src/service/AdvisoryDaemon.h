//===- service/AdvisoryDaemon.h - Concurrent advisory server ---*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SLO-as-a-service: the one-shot advisory driver turned into a
/// long-running server (DESIGN.md §13). Clients stream MiniC sources,
/// ModuleSummary uploads, and feedback/profile payloads over the
/// length-prefixed protocol; GET_ADVICE answers with the same
/// deterministic advice the one-shot incremental pipeline renders over
/// the union of everything ingested — byte-identical, by contract.
///
/// Concurrency model: one listener thread accepts localhost TCP
/// connections, each served by its own handler thread (tests inject
/// socketpair fds through adoptConnection and get the identical code
/// path). Handlers parse and dispatch synchronously; the accumulated
/// state is sharded (AdvisoryState), so ingest scales until the ingest
/// ticket cap. Robustness rules:
///
///  - Backpressure: at most Config.IngestQueueDepth ingest requests
///    (PutSource/PutSummary/PutProfile/Batch) are in flight at once.
///    Request N+1 is answered RetryAfter and NOT applied — a flooded
///    daemon sheds load instead of growing a queue without bound.
///  - Per-request timeout: once a frame's first byte arrives, the rest
///    must arrive within Config.FrameTimeoutMillis; a stalled peer gets
///    an Error(Timeout) (best effort) and its connection closed.
///  - Malformed frames (zero/oversized declared length, truncated
///    stream, unknown opcode, unparseable body) are answered with a
///    structured Error and the connection is closed; accumulated state
///    is untouched. The daemon itself never crashes or wedges on
///    hostile bytes — the frame fuzzer holds it to that.
///  - Graceful drain: stop() closes the listener, lets every in-flight
///    request finish and flush its response, then joins all handler
///    threads.
///
/// Observability rides the PR 3 layer: `service.*` counters in a
/// CounterRegistry and per-request trace spans in a Tracer, both
/// optional nulls.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SERVICE_ADVISORYDAEMON_H
#define SLO_SERVICE_ADVISORYDAEMON_H

#include "service/AdvisoryState.h"
#include "service/Protocol.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace slo {

class CounterRegistry;
class HistogramRegistry;
class Tracer;

namespace service {

struct DaemonConfig {
  /// Summary/scheme options; must match the one-shot oracle run.
  SummaryOptions Summary;
  /// State shard count (AdvisoryState).
  unsigned Shards = 16;
  /// Frame-size ceiling; larger declared lengths are rejected unread.
  uint32_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Max concurrently served connections; further accepts are answered
  /// Error(Busy) and closed.
  unsigned MaxConnections = 64;
  /// Max in-flight ingest requests; the next one gets RetryAfter.
  unsigned IngestQueueDepth = 8;
  /// Suggested client backoff carried in RetryAfter responses.
  uint32_t RetryAfterMillis = 20;
  /// Mid-frame stall budget per request (0 = unbounded).
  int FrameTimeoutMillis = 5000;
  /// Idle budget between requests on one connection (0 = unbounded;
  /// stop() wakes idle connections regardless).
  int IdleTimeoutMillis = 0;
  /// Batch depth cap (inner frames per Batch request).
  uint32_t MaxBatchFrames = 256;

  /// Test-only, non-vacuity injection for the frame-fuzz oracle: a
  /// deliberately buggy dispatcher that answers unknown opcodes as if
  /// they were Ping. The oracle must catch the Pong-to-garbage.
  bool InjectFrameBug = false;

  /// Test-only hook, called while an ingest ticket is held, before the
  /// request is applied. Lets tests hold ingest capacity to force
  /// backpressure and drain scenarios deterministically.
  std::function<void()> TestIngestHook;

  CounterRegistry *Counters = nullptr;
  Tracer *Trace = nullptr;

  /// Latency histograms: per-opcode service time, shard-lock wait, and
  /// ingest-queue dwell. Null disables them — and with Trace also null
  /// and FlightRecorderDepth 0, the request path reads no clock at all
  /// (the PR 3 telemetry-off contract).
  HistogramRegistry *Hist = nullptr;

  /// Per-connection flight-recorder depth (events kept). The recorder
  /// is always-on by default: a POD ring write per protocol event, no
  /// locks, no payload bytes. 0 disables it.
  unsigned FlightRecorderDepth = 64;

  /// Dump sink for flight-recorder JSON, invoked from the connection's
  /// own thread on a timeout, a malformed frame, or a drain close.
  /// Null means record but never dump (the default in tests, where the
  /// fuzzer closes thousands of connections on purpose).
  std::function<void(const std::string &)> FlightDumpSink;
};

/// The server. Construct, then listenTcp() and/or adoptConnection(),
/// then stop() (also run by the destructor).
class AdvisoryDaemon {
public:
  explicit AdvisoryDaemon(DaemonConfig Config);
  ~AdvisoryDaemon();
  AdvisoryDaemon(const AdvisoryDaemon &) = delete;
  AdvisoryDaemon &operator=(const AdvisoryDaemon &) = delete;

  /// Binds 127.0.0.1:\p Port (0 = ephemeral) and starts the accept
  /// loop. Returns false on bind failure. The bound port is in port().
  bool listenTcp(uint16_t Port);
  uint16_t port() const { return BoundPort; }

  /// Serves an already-connected stream socket (the socketpair
  /// transport) on its own handler thread, same code path as TCP.
  /// Returns false when the daemon is stopping.
  bool adoptConnection(int Fd);

  /// Graceful drain: stop accepting, finish in-flight requests, flush
  /// responses, join every thread. Idempotent.
  void stop();

  /// True once a Shutdown request or stop() began draining.
  bool stopping() const { return Stopping.load(std::memory_order_acquire); }

  /// The accumulated state (tests use fingerprint()/getAdvice()).
  AdvisoryState &state() { return State; }

  /// Connections currently being served.
  unsigned liveConnections() const {
    return Live.load(std::memory_order_acquire);
  }

private:
  struct Conn;

  void acceptLoop();
  void handleConnection(Conn *C);
  /// Dispatches one well-formed frame; returns false when the
  /// connection must close (protocol violation or Shutdown). \p ST is
  /// the per-request stage trace (null when telemetry is off).
  bool dispatch(Conn *C, const Frame &F, std::string &ResponseBytes,
                StageTrace *ST);
  /// Applies one request under the ingest/backpressure regime.
  std::string handleRequest(const Frame &F, bool &CloseAfter, StageTrace *ST);
  std::string handleIngest(const Frame &F, bool &CloseAfter, StageTrace *ST);
  void bump(const char *Name, uint64_t N = 1);
  void reapFinished();
  /// The drain body; caller holds StopMutex with Stopped still false.
  void drainLocked();
  /// Starts the drain from a handler thread (Shutdown request) without
  /// self-joining: stop() runs on a dedicated stopper thread.
  void requestStopAsync();

  DaemonConfig Config;
  AdvisoryState State;

  std::atomic<bool> Stopping{false};
  std::atomic<unsigned> Live{0};
  std::atomic<unsigned> IngestInFlight{0};
  std::atomic<uint64_t> NextConnId{1};

  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::thread Acceptor;

  std::mutex ConnMutex;
  std::vector<std::unique_ptr<Conn>> Conns;

  std::mutex StopMutex; // Serializes stop() against itself.
  bool Stopped = false;

  std::mutex StopperMutex; // Guards the Shutdown-request stopper thread.
  bool StopRequested = false;
  std::thread Stopper;
};

} // namespace service
} // namespace slo

#endif // SLO_SERVICE_ADVISORYDAEMON_H
