//===- service/AdvisoryState.h - Sharded accumulated state -----*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The advisory daemon's accumulated state, sharded for concurrent
/// ingest (DESIGN.md §13):
///
///  - Module entries (source, compiled module, ModuleSummary, and the
///    accumulated FeedbackFile) live in hash(module)-addressed shards,
///    each behind its own mutex; two clients streaming different
///    modules never contend on a lock.
///  - Profile merges run through the existing atomic paths:
///    deserializeFeedback parses the payload against the module's IR
///    into a scratch FeedbackFile (corrupt input changes nothing), then
///    FeedbackFile::merge folds it into the accumulation under the
///    shard lock — the multi-run merge of PR 5, now under contention.
///  - Per-(module, record-type) ingest digests live in a second shard
///    table keyed by the pair, accumulating symbolic load/store/miss
///    tallies in the PR 3 sharded-counter spirit: the hot ingest path
///    touches only the shard its key hashes to.
///
/// The serving contract: getAdvice() is byte-identical to a monolithic
/// one-shot run (runIncrementalAdvice with no cache) over the union of
/// every module ingested, with TUs ordered by module name. The daemon
/// sorts its summaries by name before the merge, so the answer is
/// independent of ingest interleaving — N clients racing their uploads
/// converge on the same bytes.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SERVICE_ADVISORYSTATE_H
#define SLO_SERVICE_ADVISORYSTATE_H

#include "pipeline/Incremental.h"
#include "profile/FeedbackFile.h"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slo {

class IRContext;
class Module;

namespace service {

/// Outcome of one state mutation.
struct StateResult {
  bool Ok = false;
  std::string Error; // Set when !Ok.
};

/// Optional per-request stage timing, threaded through the mutation and
/// serving paths when a request is traced or the daemon keeps latency
/// histograms. A null StageTrace* is the off switch: no clock is read
/// anywhere on the path (the telemetry-off contract of PR 3).
struct StageTrace {
  struct Stage {
    const char *Name = "";
    uint64_t StartMicros = 0; ///< Since Base (the request's receipt).
    uint64_t DurMicros = 0;
  };

  std::chrono::steady_clock::time_point Base;
  std::vector<Stage> Stages;

  explicit StageTrace(std::chrono::steady_clock::time_point Base)
      : Base(Base) {}
  StageTrace() : Base(std::chrono::steady_clock::now()) {}
};

/// Null-safe RAII recorder for one stage. With a null trace the
/// constructor and destructor are no-ops (no clock read). finish() may
/// be called early to end the stage before scope exit — timing a lock
/// acquisition reads `StageSpan W(ST, "lock-wait"); lock(); W.finish();`.
class StageSpan {
public:
  StageSpan(StageTrace *T, const char *Name) : T(T), Name(Name) {
    if (T)
      Start = std::chrono::steady_clock::now();
  }
  StageSpan(const StageSpan &) = delete;
  StageSpan &operator=(const StageSpan &) = delete;
  ~StageSpan() { finish(); }

  void finish() {
    if (!T)
      return;
    auto End = std::chrono::steady_clock::now();
    StageTrace::Stage S;
    S.Name = Name;
    S.StartMicros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Start - T->Base)
            .count());
    S.DurMicros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
            .count());
    T->Stages.push_back(S);
    T = nullptr;
  }

private:
  StageTrace *T;
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

/// Per-(module, record-type) ingest digest: what the daemon has seen
/// stream past for one record of one module.
struct RecordDigest {
  std::string Module;
  std::string Record;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Misses = 0;
  uint64_t MergedPayloads = 0;
};

/// Sharded accumulated advisory state. All public methods are
/// thread-safe; the lock granularity is one shard (module ingest) or
/// one record shard (digest bumps).
class AdvisoryState {
public:
  /// \p SummaryOpts must match the options the one-shot oracle runs
  /// with (the advice bytes depend on them).
  explicit AdvisoryState(const SummaryOptions &SummaryOpts,
                         unsigned NumShards = 16);
  ~AdvisoryState();
  AdvisoryState(const AdvisoryState &) = delete;
  AdvisoryState &operator=(const AdvisoryState &) = delete;

  /// Compiles \p Source as module \p Name and upserts its entry (source,
  /// IR, summary). On compile failure the previous entry, if any, is
  /// kept untouched. \p ST, when non-null, receives "compile" and
  /// "lock-wait" stages.
  StateResult putSource(const std::string &Name, const std::string &Source,
                        StageTrace *ST = nullptr);

  /// Upserts a summary-only entry from a serialized ModuleSummary.
  /// Corrupt payloads are rejected with the deserializer's error and
  /// change nothing. A summary-only module cannot accept profiles
  /// (there is no IR to match them against). Stages: "parse",
  /// "lock-wait".
  StateResult putSummary(const std::string &Text, StageTrace *ST = nullptr);

  /// Merges a serialized feedback payload into module \p Name's
  /// accumulated profile. The parse is atomic (corrupt input leaves the
  /// accumulation untouched); the merge runs under the shard lock.
  /// Stages: "lock-wait", "parse", "merge".
  StateResult putProfile(const std::string &Name, const std::string &Text,
                         StageTrace *ST = nullptr);

  /// Renders program-wide advice over every module ingested so far:
  /// summaries sorted by module name, merged and rendered exactly like
  /// the one-shot incremental pipeline. Stages: "lock-wait", "merge",
  /// "render".
  std::string getAdvice(bool Json, StageTrace *ST = nullptr) const;

  /// Re-serializes module \p Name's accumulated profile. Fails for
  /// unknown or summary-only modules. Stages: "lock-wait", "render".
  StateResult getProfile(const std::string &Name, std::string &Out,
                         StageTrace *ST = nullptr) const;

  /// Deterministic JSON array of per-(module, record) ingest digests,
  /// sorted by (module, record).
  std::string renderRecordDigestsJson() const;

  /// Number of modules currently held.
  size_t moduleCount() const;

  /// Order-independent fingerprint of all accumulated state (module
  /// sources, summaries, profiles, digests). The protocol fuzzer
  /// asserts malformed frames leave this bit-identical.
  uint64_t fingerprint() const;

private:
  struct ModuleEntry;
  struct StateShard;
  struct DigestShard;

  StateShard &shardFor(const std::string &Module);
  const StateShard &shardFor(const std::string &Module) const;
  /// Folds per-record tallies (record names already copied out of the
  /// module's IR — the IR itself must not be touched here, a concurrent
  /// upsert may have destroyed it) into the digest shards.
  void bumpDigests(const std::string &ModuleName,
                   const std::map<std::string, RecordDigest> &PerRecord);

  SummaryOptions SummaryOpts;
  uint64_t OptionsKey;
  std::vector<std::unique_ptr<StateShard>> Shards;
  std::vector<std::unique_ptr<DigestShard>> DigestShards;
};

} // namespace service
} // namespace slo

#endif // SLO_SERVICE_ADVISORYSTATE_H
