//===- service/ServiceClient.h - Synchronous protocol client ---*- C++ -*-===//
//
// Part of syzygy-slo, a reproduction of "Practical Structure Layout
// Optimization and Advice" (Hundt, Mannarswamy, Chakrabarti; CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small synchronous client for the advisory protocol: one connected
/// stream socket, blocking request/response round-trips, structured
/// reply decoding. Used by the slo_client example, the service tests,
/// and the service benchmark; honoring RetryAfter backoff is the
/// client's job and putWithRetry shows the intended loop.
///
//===----------------------------------------------------------------------===//

#ifndef SLO_SERVICE_SERVICECLIENT_H
#define SLO_SERVICE_SERVICECLIENT_H

#include "service/Protocol.h"

#include <string>
#include <vector>

namespace slo {
namespace service {

/// One decoded response frame.
struct ServiceReply {
  /// Transport-level success: a frame came back and its body parsed.
  bool Transport = false;
  Opcode Op = Opcode::Error;
  /// Payload text for Ok / Advice / Profile / Stats.
  std::string Text;
  /// Error details when Op == Error.
  uint16_t Code = 0;
  std::string Message;
  /// Suggested backoff when Op == RetryAfter.
  uint32_t RetryMillis = 0;
  /// Protocol version when Op == Pong.
  uint32_t Version = 0;
  /// Decoded inner replies when Op == BatchReply.
  std::vector<ServiceReply> Inner;

  /// Trace fields, filled when the wire frame was a TracedReply. The
  /// wrapper is unwrapped: Op/Text/... describe the inner response, and
  /// WasTraced marks that spans and the echoed ids are meaningful.
  bool WasTraced = false;
  uint64_t TraceId = 0;
  uint64_t RequestId = 0;
  std::vector<DaemonSpan> Spans;

  bool ok() const { return Transport && Op == Opcode::Ok; }
};

/// Blocking client over an already-connected fd (owned; closed on
/// destruction).
class ServiceClient {
public:
  explicit ServiceClient(int Fd, int TimeoutMillis = 10000)
      : Fd(Fd), TimeoutMillis(TimeoutMillis) {}
  ~ServiceClient();
  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;
  ServiceClient(ServiceClient &&O) noexcept
      : Fd(O.Fd), TimeoutMillis(O.TimeoutMillis) {
    O.Fd = -1;
  }

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// One raw round-trip: send \p Op + \p Body, decode the reply.
  /// Transport=false when the write fails or no well-formed frame comes
  /// back in time.
  ServiceReply call(Opcode Op, const std::string &Body);

  /// Sends pre-encoded raw bytes (possibly hostile), then attempts to
  /// read one reply frame. Fuzz harness entry.
  ServiceReply rawCall(const std::string &FrameBytes);

  ServiceReply ping();
  ServiceReply putSource(const std::string &Module, const std::string &Source);
  ServiceReply putSummary(const std::string &SummaryText);
  ServiceReply putProfile(const std::string &Module, const std::string &Text);
  ServiceReply getAdvice(bool Json);
  ServiceReply getProfile(const std::string &Module);
  ServiceReply getStats();
  /// \p Format 0 = JSON, 1 = Prometheus text.
  ServiceReply getMetrics(uint8_t Format = 0);
  ServiceReply shutdown();

  /// Wraps (\p Op, \p Body) in a Traced frame carrying the given ids.
  /// The reply comes back unwrapped with WasTraced set and the daemon's
  /// stage spans attached.
  ServiceReply tracedCall(Opcode Op, const std::string &Body,
                          uint64_t TraceId, uint64_t RequestId);
  /// Encodes the given (opcode, body) pairs as one Batch request.
  ServiceReply
  batch(const std::vector<std::pair<Opcode, std::string>> &Items);

  /// Ingest with RetryAfter honored: sleeps the suggested backoff and
  /// retries up to \p MaxAttempts times. Returns the final reply; the
  /// number of RetryAfter rounds is added to \p RetriesOut if non-null.
  ServiceReply putWithRetry(Opcode Op, const std::string &Body,
                            unsigned MaxAttempts = 50,
                            unsigned *RetriesOut = nullptr);

private:
  int Fd = -1;
  int TimeoutMillis;
};

} // namespace service
} // namespace slo

#endif // SLO_SERVICE_SERVICECLIENT_H
